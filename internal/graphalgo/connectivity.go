package graphalgo

import (
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

// IsKConnected reports whether g is k-connected, i.e. whether its vertex
// connectivity κ(g) is at least k. Conventions: every graph is 0-connected;
// κ(K_n) = n−1, so a graph on n ≤ k nodes is never k-connected.
//
// Fast paths handle k = 1 (union-find) and k = 2 (articulation points).
// General k uses Even's algorithm: fix W = {v_0, …, v_{k−1}};
//
//  1. for every non-adjacent pair in W, verify k internally vertex-disjoint
//     paths (Menger via unit-capacity max-flow on the vertex-split digraph);
//  2. for every u ∉ W, verify k vertex-disjoint paths from u to an auxiliary
//     node x adjacent to all of W.
//
// If κ(g) < k some separator S with |S| < k splits g; either two W-nodes
// fall on opposite sides (caught by step 1) or all W-nodes outside S sit in
// one side and any u in another side is separated from x by S (caught by
// step 2). Each flow is capped at k, so a query costs at most
// (C(k,2)+n)·k·O(m).
//
// See IsKConnectedW for the scratch-reusing form.
func IsKConnected(g *graph.Undirected, k int) bool {
	return IsKConnectedW(nil, g, k)
}

// VertexConnectivity returns κ(g) exactly: the minimum number of node
// removals that disconnect g (n−1 for the complete graph K_n, 0 for
// disconnected or trivial graphs).
func VertexConnectivity(g *graph.Undirected) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if n == 1 {
		return 0
	}
	// κ is bounded by the minimum degree; binary search the monotone
	// predicate IsKConnected over [0, minDeg+1).
	lo, hi := 0, g.MinDegree()+1 // invariant: IsKConnected(lo), !IsKConnected(hi)
	if !IsKConnected(g, 1) {
		return 0
	}
	if n-1 <= hi && IsKConnected(g, n-1) {
		return n - 1 // complete graph fast path
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if IsKConnected(g, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths between distinct non-adjacent nodes s and t
// (Menger's theorem: this equals the minimum s–t vertex cut). For adjacent
// nodes the direct edge is counted along with the disjoint paths through the
// remaining graph. It returns math.MaxInt32-safe small ints; s == t is a
// caller error reported as 0.
func VertexDisjointPaths(g *graph.Undirected, s, t int32) int {
	if s == t {
		return 0
	}
	n := g.N()
	d := newDinic(2*n, 2*n+4*g.M())
	for v := int32(0); int(v) < n; v++ {
		c := int32(1)
		if v == s || v == t {
			c = int32(math.MaxInt32) // endpoints are not internal
		}
		d.addArc(2*v, 2*v+1, c)
	}
	g.ForEachEdge(func(u, v int32) bool {
		d.addArc(2*u+1, 2*v, 1)
		d.addArc(2*v+1, 2*u, 1)
		return true
	})
	d.reset()
	return int(d.maxFlow(2*s+1, 2*t, -1))
}
