package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// EdgeConnectivity returns λ(g), the minimum number of edge removals that
// disconnect g, via the Stoer–Wagner minimum-cut algorithm with unit edge
// weights. It returns 0 for disconnected or trivial graphs.
//
// The implementation is the classic O(n³) array version, ample for the
// experiment sizes where exact λ is needed (Whitney-inequality validation
// and small-network resilience reports).
func EdgeConnectivity(g *graph.Undirected) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !IsConnected(g) {
		return 0
	}
	// Dense weight matrix; merged vertices accumulate weights.
	w := make([][]int32, n)
	for i := range w {
		w[i] = make([]int32, n)
	}
	g.ForEachEdge(func(u, v int32) bool {
		w[u][v]++
		w[v][u]++
		return true
	})

	active := make([]int32, n) // current super-vertices
	for i := range active {
		active[i] = int32(i)
	}
	best := int32(1<<31 - 1)
	inA := make([]bool, n)
	weightToA := make([]int32, n)

	for len(active) > 1 {
		// Minimum cut phase: maximum adjacency order.
		for _, v := range active {
			inA[v] = false
			weightToA[v] = 0
		}
		var prev, last int32 = -1, -1
		for i := 0; i < len(active); i++ {
			// Select the most tightly connected remaining vertex.
			sel := int32(-1)
			for _, v := range active {
				if !inA[v] && (sel == -1 || weightToA[v] > weightToA[sel]) {
					sel = v
				}
			}
			inA[sel] = true
			prev, last = last, sel
			for _, v := range active {
				if !inA[v] {
					weightToA[v] += w[sel][v]
				}
			}
		}
		// Cut-of-the-phase: last vertex against the rest.
		if weightToA[last] < best {
			best = weightToA[last]
		}
		// Merge last into prev.
		for _, v := range active {
			if v != last && v != prev {
				w[prev][v] += w[last][v]
				w[v][prev] = w[prev][v]
			}
		}
		// Remove last from active.
		for i, v := range active {
			if v == last {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	return int(best)
}
