package graphalgo

// StreamDegrees is the degree-tracking sink of the streaming pipeline: edges
// are pushed one at a time and the accumulator maintains per-vertex degrees
// plus the one summary the paper's min-degree figures need — the number of
// vertices still below a target degree k. It runs beside StreamUnionFind in
// a single edge pass (wsn.Deployer.DeployDegreeStats), so a min-degree trial
// needs O(n) memory and no graph, at any edge count.
//
// Unlike a union-find, degree counting is NOT idempotent: each unordered
// pair must be pushed at most once (every built-in channel emitter
// guarantees this), and self-loops are ignored. BelowK is monotone
// non-increasing in the stream, so once it reaches 0 the verdict
// "min degree ≥ k" is final and a producer may stop enumerating; per-vertex
// degrees and MinDegree are exact only if the full stream was consumed.
//
// The zero value is ready after Reset. Storage is reused across Reset
// calls, so repeated trials allocate nothing in steady state. Not safe for
// concurrent use.
type StreamDegrees struct {
	deg    []int32
	k      int32
	belowK int
}

// Reset reinitializes the accumulator for n vertices and target degree k,
// reusing grown storage. k ≤ 0 is vacuously satisfied by every vertex.
func (s *StreamDegrees) Reset(n, k int) {
	if cap(s.deg) < n {
		s.deg = make([]int32, n)
	}
	s.deg = s.deg[:n]
	for i := range s.deg {
		s.deg[i] = 0
	}
	s.k = int32(k)
	s.belowK = 0
	if k > 0 {
		s.belowK = n
	}
}

// Add pushes edge (u, v), incrementing both endpoint degrees. Self-loops
// are ignored; duplicate pairs must not be pushed.
func (s *StreamDegrees) Add(u, v int32) {
	if u == v {
		return
	}
	du := s.deg[u] + 1
	s.deg[u] = du
	if du == s.k {
		s.belowK--
	}
	dv := s.deg[v] + 1
	s.deg[v] = dv
	if dv == s.k {
		s.belowK--
	}
}

// K returns the target degree of the current accumulation.
func (s *StreamDegrees) K() int { return int(s.k) }

// Degree returns the current degree of vertex v (exact once the full stream
// has been consumed).
func (s *StreamDegrees) Degree(v int32) int { return int(s.deg[v]) }

// BelowK returns the number of vertices with current degree < k. It only
// decreases as edges stream in, so it is an upper bound mid-stream and
// exact once it reaches 0 or the stream ends.
func (s *StreamDegrees) BelowK() int { return s.belowK }

// AllAtLeastK reports whether every vertex has reached degree k — the
// min-degree ≥ k verdict, final as soon as it turns true (vacuously true
// for n = 0 or k ≤ 0). Producers use it as an early-exit signal.
func (s *StreamDegrees) AllAtLeastK() bool { return s.belowK == 0 }

// MinDegree returns the minimum current degree (0 when n = 0, matching
// graph.Undirected.MinDegree). Exact only if the full stream was consumed;
// after an AllAtLeastK early exit it is merely a value ≥ k.
func (s *StreamDegrees) MinDegree() int {
	if len(s.deg) == 0 {
		return 0
	}
	min := s.deg[0]
	for _, d := range s.deg[1:] {
		if d < min {
			min = d
		}
	}
	return int(min)
}
