package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// ArticulationPoints returns the cut vertices of g (vertices whose removal
// increases the number of connected components), in ascending order. The
// scan is the iterative Tarjan low-link DFS shared with IsBiconnectedW
// (Workspace.scanArticulation), so large sparse graphs cannot overflow the
// call stack.
func ArticulationPoints(g *graph.Undirected) []int32 {
	n := g.N()
	isCut := make([]bool, n)
	if !NewWorkspace().scanArticulation(g, isCut) {
		return nil
	}
	var cuts []int32
	for v := int32(0); int(v) < n; v++ {
		if isCut[v] {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// IsBiconnected reports whether g is 2-connected: at least 3 nodes,
// connected, and free of articulation points. (K2 has vertex connectivity 1,
// matching the convention κ(K_n) = n−1.) See IsBiconnectedW for the
// scratch-reusing form.
func IsBiconnected(g *graph.Undirected) bool {
	return IsBiconnectedW(nil, g)
}
