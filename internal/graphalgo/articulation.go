package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// ArticulationPoints returns the cut vertices of g (vertices whose removal
// increases the number of connected components), using an iterative Tarjan
// low-link DFS so that large sparse graphs cannot overflow the call stack.
func ArticulationPoints(g *graph.Undirected) []int32 {
	n := g.N()
	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	isCut := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}

	type frame struct {
		v    int32
		next int // index into Neighbors(v)
	}
	var stack []frame
	timer := int32(0)

	for root := int32(0); int(root) < n; root++ {
		if disc[root] != 0 {
			continue
		}
		rootChildren := 0
		timer++
		disc[root] = timer
		low[root] = timer
		stack = append(stack[:0], frame{v: root})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			v := top.v
			ns := g.Neighbors(v)
			if top.next < len(ns) {
				w := ns[top.next]
				top.next++
				if disc[w] == 0 {
					parent[w] = v
					if v == root {
						rootChildren++
					}
					timer++
					disc[w] = timer
					low[w] = timer
					stack = append(stack, frame{v: w})
				} else if w != parent[v] && disc[w] < low[v] {
					low[v] = disc[w] // back edge
				}
				continue
			}
			// Post-order: propagate low-link to parent.
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if p != root && low[v] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		if rootChildren >= 2 {
			isCut[root] = true
		}
	}

	var cuts []int32
	for v := int32(0); int(v) < n; v++ {
		if isCut[v] {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// IsBiconnected reports whether g is 2-connected: at least 3 nodes,
// connected, and free of articulation points. (K2 has vertex connectivity 1,
// matching the convention κ(K_n) = n−1.)
func IsBiconnected(g *graph.Undirected) bool {
	if g.N() < 3 {
		return false
	}
	if g.MinDegree() < 2 || !IsConnected(g) {
		return false
	}
	return len(ArticulationPoints(g)) == 0
}
