package graphalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

func TestEdgeConnectivityKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{name: "empty", g: mustGraph(t, 0, nil), want: 0},
		{name: "single", g: mustGraph(t, 1, nil), want: 0},
		{name: "disconnected", g: mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}}), want: 0},
		{name: "K2", g: completeGraph(t, 2), want: 1},
		{name: "path5", g: pathGraph(t, 5), want: 1},
		{name: "cycle7", g: cycleGraph(t, 7), want: 2},
		{name: "K5", g: completeGraph(t, 5), want: 4},
		{name: "petersen", g: petersen(t), want: 3},
		{name: "barbell", g: barbell(t), want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EdgeConnectivity(tt.g); got != tt.want {
				t.Errorf("EdgeConnectivity = %d, want %d", got, tt.want)
			}
		})
	}
}

// barbell is two K4s joined by a single bridge edge.
func barbell(t *testing.T) *graph.Undirected {
	t.Helper()
	var edges []graph.Edge
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			edges = append(edges, graph.Edge{U: u + 4, V: v + 4})
		}
	}
	edges = append(edges, graph.Edge{U: 3, V: 4})
	return mustGraph(t, 8, edges)
}

func TestQuickEdgeConnectivityAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		g := gnp(nil2t(t), r, n, 0.3+r.Float64()*0.5)
		if g.M() > 10 {
			return true // keep the brute force affordable
		}
		return EdgeConnectivity(g) == bruteEdgeConnectivity(nil2t(t), g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEdgeConnectivity100(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	g := gnp(b, r, 100, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeConnectivity(g)
	}
}
