package graphalgo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if got := uf.Count(); got != 5 {
		t.Fatalf("initial Count = %d, want 5", got)
	}
	if uf.Connected(0, 1) {
		t.Error("0 and 1 connected before any union")
	}
	if !uf.Union(0, 1) {
		t.Error("Union(0,1) reported no merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeated Union(1,0) reported a merge")
	}
	if !uf.Connected(0, 1) {
		t.Error("0 and 1 not connected after union")
	}
	if got := uf.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if !uf.Connected(1, 2) {
		t.Error("transitive connectivity failed")
	}
	if got := uf.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestUnionFindSelfUnion(t *testing.T) {
	uf := NewUnionFind(3)
	if uf.Union(1, 1) {
		t.Error("Union(v,v) reported a merge")
	}
	if got := uf.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
}

func TestUnionFindFindIdempotent(t *testing.T) {
	uf := NewUnionFind(10)
	for i := 0; i < 9; i++ {
		uf.Union(int32(i), int32(i+1))
	}
	root := uf.Find(0)
	for v := int32(0); v < 10; v++ {
		if uf.Find(v) != root {
			t.Errorf("Find(%d) != Find(0) after chain union", v)
		}
	}
	if got := uf.Count(); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestUnionFindLargestAmong(t *testing.T) {
	uf := NewUnionFind(8)
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(3, 4)
	all := make([]bool, 8)
	for i := range all {
		all[i] = true
	}
	if got := uf.LargestAmong(all); got != 3 {
		t.Errorf("LargestAmong(all) = %d, want 3", got)
	}
	// Excluding one member of the {0,1,2} component ties it with {3,4}.
	mask := append([]bool(nil), all...)
	mask[0] = false
	if got := uf.LargestAmong(mask); got != 2 {
		t.Errorf("LargestAmong(mask) = %d, want 2", got)
	}
	// Exclusion is by membership, not by root identity: excluded vertices do
	// not count even when an included vertex shares their component.
	only5 := make([]bool, 8)
	only5[5] = true
	if got := uf.LargestAmong(only5); got != 1 {
		t.Errorf("LargestAmong(singleton) = %d, want 1", got)
	}
	if got := uf.LargestAmong(make([]bool, 8)); got != 0 {
		t.Errorf("LargestAmong(none) = %d, want 0", got)
	}
}

func TestQuickUnionFindMatchesNaive(t *testing.T) {
	// Model-based test against a naive labeling structure.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 60; op++ {
			a, b := int32(r.Intn(n)), int32(r.Intn(n))
			naiveMerge := label[a] != label[b]
			if naiveMerge {
				relabel(label[a], label[b])
			}
			if uf.Union(a, b) != naiveMerge {
				return false
			}
			c, d := int32(r.Intn(n)), int32(r.Intn(n))
			if uf.Connected(c, d) != (label[c] == label[d]) {
				return false
			}
		}
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return uf.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
