package graphalgo

// StreamUnionFind is the sink of the streaming connectivity pipeline: edges
// are pushed one at a time (in any order, duplicates welcome) and the
// structure maintains, incrementally, exactly the statistics that are
// union-find-answerable — component count, largest-component size, and the
// number of isolated (still-singleton) vertices. It never sees the graph, so
// a connectivity trial over a streamed edge set needs O(n) memory regardless
// of how many edges flow through.
//
// Done reports when every vertex has been merged into one component; a
// producer can use it to stop enumerating edges early (the verdict of any
// further edge is already determined), which on the connected plateau of a
// zero–one-law sweep skips most of each draw.
//
// The zero value is ready after Reset. Like UnionFind, buffers are reused
// across Reset calls, so repeated trials allocate nothing in steady state.
// Not safe for concurrent use.
type StreamUnionFind struct {
	uf       UnionFind
	size     []int32 // component size per root (valid at root indices only)
	giant    int32   // size of the largest component so far
	isolated int     // vertices still in singleton components
}

// Reset reinitializes the structure to n singleton vertices, reusing grown
// storage.
func (s *StreamUnionFind) Reset(n int) {
	s.uf.Reset(n)
	if cap(s.size) < n {
		s.size = make([]int32, n)
	}
	s.size = s.size[:n]
	for i := range s.size {
		s.size[i] = 1
	}
	s.giant = 0
	if n > 0 {
		s.giant = 1
	}
	s.isolated = n
}

// Add pushes edge (u, v) and reports whether it merged two components.
// Self-loops and repeated edges are no-ops, mirroring the multi-edge merging
// of graph.NewFromEdges.
func (s *StreamUnionFind) Add(u, v int32) bool {
	ru, rv := s.uf.Find(u), s.uf.Find(v)
	if ru == rv {
		return false
	}
	if s.size[ru] == 1 {
		s.isolated--
	}
	if s.size[rv] == 1 {
		s.isolated--
	}
	total := s.size[ru] + s.size[rv]
	root, _ := s.uf.UnionRoot(ru, rv)
	s.size[root] = total
	if total > s.giant {
		s.giant = total
	}
	return true
}

// Done reports whether further edges cannot change any statistic: a single
// component remains (vacuously true for n ≤ 1). Producers use it as the
// early-exit signal of streaming connectivity trials.
func (s *StreamUnionFind) Done() bool { return s.uf.Count() <= 1 }

// Components returns the current number of components.
func (s *StreamUnionFind) Components() int { return s.uf.Count() }

// Connected reports whether a single component remains, following the
// convention of wsn.Report (n ≤ 1 is connected).
func (s *StreamUnionFind) Connected() bool { return s.uf.Count() <= 1 }

// GiantSize returns the size of the largest component so far (0 when n = 0).
func (s *StreamUnionFind) GiantSize() int { return int(s.giant) }

// IsolatedCount returns the number of vertices not yet touched by any
// effective edge — the degree-0 count of the streamed graph.
func (s *StreamUnionFind) IsolatedCount() int { return s.isolated }
