package graphalgo

// dinic is a unit-capacity max-flow solver (Dinic's algorithm: BFS level
// graph + DFS blocking flow). It is used on the vertex-split digraph to
// count internally vertex-disjoint paths, the Menger quantity behind
// k-connectivity testing. Capacities are integers; queries can cap the flow
// at a limit so k-connectivity tests cost at most k augmentation rounds of
// useful work.
type dinic struct {
	n     int
	head  []int32 // head[v] = first edge id of v, -1 terminated
	next  []int32 // next[e] = next edge id in v's list
	to    []int32
	cap0  []int32 // original capacities, for Reset
	cap   []int32 // residual capacities
	level []int32
	iter  []int32
	queue []int32
}

// newDinic returns a solver over n flow nodes with room for edgeHint arcs.
func newDinic(n, edgeHint int) *dinic {
	d := &dinic{}
	d.init(n, edgeHint)
	return d
}

// init readies the solver for a fresh graph over n flow nodes, reusing
// existing storage when large enough — the amortization hook of
// Workspace-backed k-connectivity tests.
func (d *dinic) init(n, edgeHint int) {
	d.n = n
	if cap(d.head) < n {
		d.head = make([]int32, n)
		d.level = make([]int32, n)
		d.iter = make([]int32, n)
	}
	d.head = d.head[:n]
	d.level = d.level[:n]
	d.iter = d.iter[:n]
	for i := range d.head {
		d.head[i] = -1
	}
	if cap(d.to) < edgeHint*2 {
		d.next = make([]int32, 0, edgeHint*2)
		d.to = make([]int32, 0, edgeHint*2)
		d.cap0 = make([]int32, 0, edgeHint*2)
		d.cap = make([]int32, 0, edgeHint*2)
	}
	d.next = d.next[:0]
	d.to = d.to[:0]
	d.cap0 = d.cap0[:0]
	d.cap = d.cap[:0]
	d.queue = d.queue[:0]
}

// addArc inserts a directed arc u→v with the given capacity and its reverse
// arc with capacity 0. Arc ids are even for forward, odd for reverse, so
// e^1 is always the partner arc.
func (d *dinic) addArc(u, v, capacity int32) {
	d.to = append(d.to, v)
	d.cap0 = append(d.cap0, capacity)
	d.next = append(d.next, d.head[u])
	d.head[u] = int32(len(d.to) - 1)

	d.to = append(d.to, u)
	d.cap0 = append(d.cap0, 0)
	d.next = append(d.next, d.head[v])
	d.head[v] = int32(len(d.to) - 1)
}

// reset restores all residual capacities to their original values.
func (d *dinic) reset() {
	d.cap = append(d.cap[:0], d.cap0...)
}

// bfsLevels builds the level graph; returns false when t is unreachable.
func (d *dinic) bfsLevels(s, t int32) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	d.queue = append(d.queue[:0], s)
	// Drain with a head index: reslicing the front away would permanently
	// consume queue capacity and defeat the workspace reuse.
	for qh := 0; qh < len(d.queue); qh++ {
		v := d.queue[qh]
		for e := d.head[v]; e != -1; e = d.next[e] {
			w := d.to[e]
			if d.cap[e] > 0 && d.level[w] == -1 {
				d.level[w] = d.level[v] + 1
				d.queue = append(d.queue, w)
			}
		}
	}
	return d.level[t] != -1
}

// dfsBlocking sends one augmenting unit along the level graph (unit
// capacities make per-path flow 1).
func (d *dinic) dfsBlocking(v, t int32) bool {
	if v == t {
		return true
	}
	for ; d.iter[v] != -1; d.iter[v] = d.next[d.iter[v]] {
		e := d.iter[v]
		w := d.to[e]
		if d.cap[e] > 0 && d.level[w] == d.level[v]+1 {
			if d.dfsBlocking(w, t) {
				d.cap[e]--
				d.cap[e^1]++
				return true
			}
		}
	}
	d.level[v] = -1 // dead end; prune
	return false
}

// maxFlow computes the max flow from s to t, stopping early once the flow
// reaches limit (pass a negative limit for unbounded). It assumes reset()
// was called since the last query.
func (d *dinic) maxFlow(s, t int32, limit int32) int32 {
	if s == t {
		return 0
	}
	var flow int32
	for d.bfsLevels(s, t) {
		copy(d.iter, d.head)
		for d.dfsBlocking(s, t) {
			flow++
			if limit >= 0 && flow >= limit {
				return flow
			}
		}
	}
	return flow
}
