package graphalgo

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// TestStreamDegreesMatchesBatch pins the accumulator against the CSR
// ground truth on random graphs across densities and seeds: per-vertex
// degrees, min degree, and the below-k count must all equal what
// graph.Undirected computes, for every k around the degree range.
func TestStreamDegreesMatchesBatch(t *testing.T) {
	var sd StreamDegrees
	for _, p := range []float64{0, 0.02, 0.2, 0.8, 1} {
		for seed := uint64(1); seed <= 4; seed++ {
			const n = 60
			g, err := randgraph.ErdosRenyi(rng.New(seed), n, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{0, 1, 2, 5, n} {
				sd.Reset(n, k)
				g.ForEachEdge(func(u, v int32) bool {
					sd.Add(u, v)
					return true
				})
				wantBelow := 0
				for v := int32(0); v < int32(n); v++ {
					if got, want := sd.Degree(v), g.Degree(v); got != want {
						t.Fatalf("p=%g seed=%d: degree(%d) = %d, want %d", p, seed, v, got, want)
					}
					if g.Degree(v) < k {
						wantBelow++
					}
				}
				if got := sd.BelowK(); got != wantBelow {
					t.Fatalf("p=%g seed=%d k=%d: BelowK = %d, want %d", p, seed, k, got, wantBelow)
				}
				if got, want := sd.AllAtLeastK(), wantBelow == 0; got != want {
					t.Fatalf("p=%g seed=%d k=%d: AllAtLeastK = %v, want %v", p, seed, k, got, want)
				}
				if got, want := sd.MinDegree(), g.MinDegree(); got != want {
					t.Fatalf("p=%g seed=%d: MinDegree = %d, want %d", p, seed, got, want)
				}
			}
		}
	}
}

// TestStreamDegreesMonotoneBelowK checks the early-exit invariant the
// deployer relies on: BelowK never increases as edges stream in, and once
// AllAtLeastK flips true it stays true.
func TestStreamDegreesMonotoneBelowK(t *testing.T) {
	const (
		n = 50
		k = 3
	)
	g, err := randgraph.ErdosRenyi(rng.New(9), n, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var sd StreamDegrees
	sd.Reset(n, k)
	prev := sd.BelowK()
	if prev != n {
		t.Fatalf("initial BelowK = %d, want %d", prev, n)
	}
	done := false
	g.ForEachEdge(func(u, v int32) bool {
		sd.Add(u, v)
		if b := sd.BelowK(); b > prev {
			t.Fatalf("BelowK rose from %d to %d", prev, b)
		} else {
			prev = b
		}
		if done && !sd.AllAtLeastK() {
			t.Fatal("AllAtLeastK flipped back to false")
		}
		done = done || sd.AllAtLeastK()
		return true
	})
}

// TestStreamDegreesEdgeCases covers the conventions: n = 0 (vacuous, min
// degree 0 like graph.MinDegree), k = 0 (vacuous), self-loops ignored, and
// Reset reuse across different sizes.
func TestStreamDegreesEdgeCases(t *testing.T) {
	var sd StreamDegrees
	sd.Reset(0, 3)
	if !sd.AllAtLeastK() || sd.BelowK() != 0 || sd.MinDegree() != 0 {
		t.Errorf("n=0: AllAtLeastK=%v BelowK=%d MinDegree=%d, want true/0/0",
			sd.AllAtLeastK(), sd.BelowK(), sd.MinDegree())
	}
	sd.Reset(5, 0)
	if !sd.AllAtLeastK() || sd.BelowK() != 0 {
		t.Errorf("k=0: AllAtLeastK=%v BelowK=%d, want true/0", sd.AllAtLeastK(), sd.BelowK())
	}
	sd.Reset(4, 1)
	sd.Add(2, 2) // self-loop: ignored
	if sd.Degree(2) != 0 || sd.BelowK() != 4 {
		t.Errorf("self-loop counted: degree(2)=%d BelowK=%d", sd.Degree(2), sd.BelowK())
	}
	sd.Add(0, 1)
	sd.Add(2, 3)
	if !sd.AllAtLeastK() || sd.MinDegree() != 1 {
		t.Errorf("after matching: AllAtLeastK=%v MinDegree=%d, want true/1", sd.AllAtLeastK(), sd.MinDegree())
	}
	// Shrinking reuse must re-zero the retained prefix.
	sd.Reset(2, 1)
	if sd.Degree(0) != 0 || sd.Degree(1) != 0 || sd.BelowK() != 2 {
		t.Errorf("reuse after shrink: degrees (%d,%d) BelowK=%d, want (0,0)/2",
			sd.Degree(0), sd.Degree(1), sd.BelowK())
	}
}

// TestStreamDegreesAllocFree pins the steady-state allocation behavior the
// 0-allocs/op deployment gate builds on.
func TestStreamDegreesAllocFree(t *testing.T) {
	var sd StreamDegrees
	edges, err := randgraph.AppendErdosRenyi(rng.New(4), 40, 0.25, make([]graph.Edge, 0, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("test draw produced no edges")
	}
	sd.Reset(40, 2) // grow once
	if avg := testing.AllocsPerRun(20, func() {
		sd.Reset(40, 2)
		for _, e := range edges {
			sd.Add(e.U, e.V)
		}
		_ = sd.AllAtLeastK()
		_ = sd.MinDegree()
	}); avg != 0 {
		t.Errorf("steady-state StreamDegrees pass allocates %.1f allocs/run, want 0", avg)
	}
}
