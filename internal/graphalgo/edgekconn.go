package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// IsKEdgeConnected reports whether g is k-edge-connected: it stays connected
// after removing any k−1 edges (λ(g) ≥ k). Edge failures are the other
// failure mode of the paper's motivation ("connectivity despite the failure
// of any (k−1) sensors OR links"); vertex k-connectivity implies this but
// not conversely.
//
// Implementation: λ(g) = min over v ≠ v₀ of maxflow(v₀, v) on the directed
// unit-capacity version of g (Menger, edge form; the global minimum cut
// separates v₀ from some vertex). Each flow is capped at k, so the test
// costs at most (n−1)·k·O(m).
func IsKEdgeConnected(g *graph.Undirected, k int) bool {
	n := g.N()
	switch {
	case k <= 0:
		return true
	case n == 0:
		return false // no graph to be connected
	case n == 1:
		return false // λ of a single vertex is 0; matches λ(K_n)=n−1 for n≥2 convention
	case g.MinDegree() < k:
		return false
	case k == 1:
		return IsConnected(g)
	}
	// Directed unit-capacity network: each undirected edge becomes two
	// opposing arcs of capacity 1.
	d := newDinic(n, 2*g.M())
	g.ForEachEdge(func(u, v int32) bool {
		d.addArc(u, v, 1)
		d.addArc(v, u, 1)
		return true
	})
	limit := int32(k)
	for v := int32(1); int(v) < n; v++ {
		d.reset()
		if d.maxFlow(0, v, limit) < limit {
			return false
		}
	}
	return true
}

// EdgeConnectivityFlow computes λ(g) exactly via n−1 uncapped max-flows.
// It cross-checks the Stoer–Wagner implementation in tests and is the
// faster choice on sparse graphs (O(n·m·λ) vs O(n³)).
func EdgeConnectivityFlow(g *graph.Undirected) int {
	n := g.N()
	if n < 2 || !IsConnected(g) {
		return 0
	}
	d := newDinic(n, 2*g.M())
	g.ForEachEdge(func(u, v int32) bool {
		d.addArc(u, v, 1)
		d.addArc(v, u, 1)
		return true
	})
	best := g.MinDegree()
	for v := int32(1); int(v) < n; v++ {
		d.reset()
		if f := int(d.maxFlow(0, v, int32(best))); f < best {
			best = f
		}
	}
	return best
}
