package graphalgo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

func TestAlgebraicConnectivityKnownValues(t *testing.T) {
	const iters = 3000
	tests := []struct {
		name string
		mk   func() float64
		want float64
	}{
		{
			name: "path 6: 2(1-cos(pi/6))",
			mk:   func() float64 { return AlgebraicConnectivity(pathGraph(t, 6), iters) },
			want: 2 * (1 - math.Cos(math.Pi/6)),
		},
		{
			name: "cycle 8: 2(1-cos(2pi/8))",
			mk:   func() float64 { return AlgebraicConnectivity(cycleGraph(t, 8), iters) },
			want: 2 * (1 - math.Cos(2*math.Pi/8)),
		},
		{
			name: "K6: n",
			mk:   func() float64 { return AlgebraicConnectivity(completeGraph(t, 6), iters) },
			want: 6,
		},
		{
			name: "K3,3: min side",
			mk:   func() float64 { return AlgebraicConnectivity(completeBipartite(t, 3, 3), iters) },
			want: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.mk()
			if math.Abs(got-tt.want) > 0.02*tt.want+0.01 {
				t.Errorf("lambda2 = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAlgebraicConnectivityDisconnectedIsZero(t *testing.T) {
	// Two disjoint triangles.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	got := AlgebraicConnectivity(g, 2000)
	if got > 1e-6 {
		t.Errorf("disconnected lambda2 = %v, want ~0", got)
	}
}

func TestAlgebraicConnectivityTrivial(t *testing.T) {
	if got := AlgebraicConnectivity(mustGraph(t, 0, nil), 100); got != 0 {
		t.Errorf("empty graph lambda2 = %v", got)
	}
	if got := AlgebraicConnectivity(mustGraph(t, 1, nil), 100); got != 0 {
		t.Errorf("single node lambda2 = %v", got)
	}
	if got := AlgebraicConnectivity(mustGraph(t, 5, nil), 100); got != 0 {
		t.Errorf("edgeless lambda2 = %v", got)
	}
}

func TestQuickFiedlerBoundsConnectivity(t *testing.T) {
	// Fiedler: λ₂ ≤ κ(G) for non-complete graphs; λ₂ > 0 iff connected.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(12)
		g := gnp(nil2t(t), r, n, 0.3+r.Float64()*0.4)
		if g.M() == n*(n-1)/2 {
			return true // skip complete graphs (λ₂ = n > κ = n−1)
		}
		lambda2 := AlgebraicConnectivity(g, 2500)
		kappa := VertexConnectivity(g)
		if IsConnected(g) != (lambda2 > 1e-6) {
			return false
		}
		// Power iteration approaches λ₂ from above through c − λ_max(M)?
		// Not monotonically — allow a small numerical tolerance.
		return lambda2 <= float64(kappa)+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAlgebraicConnectivity500(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	g := gnp(b, r, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AlgebraicConnectivity(g, 300)
	}
}
