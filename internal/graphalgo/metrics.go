package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// TriangleCount returns the number of triangles in g, counting each triangle
// once, by merging sorted adjacency lists along each edge (u < v < w
// orientation).
func TriangleCount(g *graph.Undirected) int {
	count := 0
	g.ForEachEdge(func(u, v int32) bool {
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			a, b := nu[i], nv[j]
			switch {
			case a == b:
				if a > v { // orientation u < v < w counts each triangle once
					count++
				}
				i++
				j++
			case a < b:
				i++
			default:
				j++
			}
		}
		return true
	})
	return count
}

// GlobalClusteringCoefficient returns 3·triangles / wedges, the transitivity
// of g (0 when the graph has no wedges). Random q-intersection graphs have
// strictly positive clustering even in sparse regimes — one of the ways they
// differ from Erdős–Rényi graphs with the same edge density (Bloznelis 2013,
// cited by the paper), which is why the paper's coupling analysis is needed
// at all.
func GlobalClusteringCoefficient(g *graph.Undirected) float64 {
	wedges := 0
	for v := int32(0); int(v) < g.N(); v++ {
		d := g.Degree(v)
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// KCore returns the maximal induced subgraph in which every node has degree
// at least k, as an alive mask over g's nodes (all false when the k-core is
// empty). Standard iterative peeling in O(n + m).
func KCore(g *graph.Undirected, k int) []bool {
	n := g.N()
	alive := make([]bool, n)
	deg := make([]int, n)
	var queue []int32
	for v := int32(0); int(v) < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
		if deg[v] < k {
			queue = append(queue, v)
			alive[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(v) {
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				alive[w] = false
				queue = append(queue, w)
			}
		}
	}
	return alive
}

// Degeneracy returns the graph degeneracy: the largest k for which the
// k-core is non-empty (0 for edgeless graphs).
func Degeneracy(g *graph.Undirected) int {
	// Peel by repeatedly removing a minimum-degree vertex; the largest
	// minimum degree seen is the degeneracy. Bucket queue gives O(n + m).
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := int32(0); int(v) < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := int32(0); int(v) < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	degeneracy := 0
	cur := 0
	for remaining := n; remaining > 0; remaining-- {
		// Find the lowest non-empty bucket; cur only needs to back up by one
		// per removal, keeping the scan amortised linear.
		if cur > 0 {
			cur--
		}
		for {
			for cur <= maxDeg && len(buckets[cur]) == 0 {
				cur++
			}
			v := buckets[cur][len(buckets[cur])-1]
			buckets[cur] = buckets[cur][:len(buckets[cur])-1]
			if removed[v] || deg[v] != cur {
				continue // stale entry
			}
			if cur > degeneracy {
				degeneracy = cur
			}
			removed[v] = true
			for _, w := range g.Neighbors(v) {
				if !removed[w] {
					deg[w]--
					buckets[deg[w]] = append(buckets[deg[w]], w)
				}
			}
			break
		}
	}
	return degeneracy
}
