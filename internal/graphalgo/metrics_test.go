package graphalgo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestTriangleCount(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{name: "triangle", g: cycleGraph(t, 3), want: 1},
		{name: "cycle4", g: cycleGraph(t, 4), want: 0},
		{name: "K4", g: completeGraph(t, 4), want: 4},
		{name: "K5", g: completeGraph(t, 5), want: 10},
		{name: "path", g: pathGraph(t, 6), want: 0},
		{name: "bowtie", g: mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
		}), want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TriangleCount(tt.g); got != tt.want {
				t.Errorf("TriangleCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	if got := GlobalClusteringCoefficient(completeGraph(t, 6)); math.Abs(got-1) > 1e-12 {
		t.Errorf("K6 clustering = %v, want 1", got)
	}
	if got := GlobalClusteringCoefficient(pathGraph(t, 5)); got != 0 {
		t.Errorf("path clustering = %v, want 0", got)
	}
	if got := GlobalClusteringCoefficient(mustGraph(t, 3, nil)); got != 0 {
		t.Errorf("edgeless clustering = %v, want 0", got)
	}
	// Bowtie: 2 triangles, wedges = C(2,2)*4 + C(4,2) = 4*1 + 6 = 10.
	bowtie := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
	})
	if got, want := GlobalClusteringCoefficient(bowtie), 0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("bowtie clustering = %v, want %v", got, want)
	}
}

func TestKCore(t *testing.T) {
	// A triangle with a pendant: 2-core is the triangle.
	g := mustGraph(t, 4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
	})
	alive := KCore(g, 2)
	want := []bool{true, true, true, false}
	for v := range want {
		if alive[v] != want[v] {
			t.Errorf("KCore(2)[%d] = %v, want %v", v, alive[v], want[v])
		}
	}
	// 3-core is empty.
	for v, a := range KCore(g, 3) {
		if a {
			t.Errorf("KCore(3)[%d] = true, want false", v)
		}
	}
	// 0-core keeps everything.
	for v, a := range KCore(g, 0) {
		if !a {
			t.Errorf("KCore(0)[%d] = false, want true", v)
		}
	}
}

func TestKCoreCascade(t *testing.T) {
	// Path: peeling for k=2 cascades from both ends and empties the graph.
	g := pathGraph(t, 6)
	for v, a := range KCore(g, 2) {
		if a {
			t.Errorf("path 2-core kept node %d", v)
		}
	}
}

func TestDegeneracy(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{name: "edgeless", g: mustGraph(t, 4, nil), want: 0},
		{name: "path", g: pathGraph(t, 5), want: 1},
		{name: "cycle", g: cycleGraph(t, 8), want: 2},
		{name: "K5", g: completeGraph(t, 5), want: 4},
		{name: "triangle+pendant", g: mustGraph(t, 4, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3},
		}), want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Degeneracy(tt.g); got != tt.want {
				t.Errorf("Degeneracy = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestQuickKCoreInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		g := gnp(nil2t(t), r, n, 0.2)
		k := r.Intn(5)
		alive := KCore(g, k)
		sub, _, err := graph.InducedSubgraph(g, alive)
		if err != nil {
			return false
		}
		// Everyone surviving has degree ≥ k inside the core.
		if sub.N() > 0 && sub.MinDegree() < k {
			return false
		}
		// Maximality: no discarded vertex has ≥ k alive neighbors.
		for v := int32(0); int(v) < n; v++ {
			if alive[v] {
				continue
			}
			cnt := 0
			for _, w := range g.Neighbors(v) {
				if alive[w] {
					cnt++
				}
			}
			if cnt >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickDegeneracyBoundsKCore(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		g := gnp(nil2t(t), r, n, 0.3)
		d := Degeneracy(g)
		// d-core non-empty, (d+1)-core empty.
		nonEmpty := false
		for _, a := range KCore(g, d) {
			nonEmpty = nonEmpty || a
		}
		if g.M() > 0 && !nonEmpty {
			return false
		}
		for _, a := range KCore(g, d+1) {
			if a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestHamiltonianCycleFindsObvious(t *testing.T) {
	r := rng.New(99)
	tests := []struct {
		name string
		g    *graph.Undirected
	}{
		{name: "cycle12", g: cycleGraph(t, 12)},
		{name: "K6", g: completeGraph(t, 6)},
		{name: "hypercube Q3", g: hypercube(t, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cyc, ok := HamiltonianCycle(tt.g, r, 50)
			if !ok {
				t.Fatal("no Hamiltonian cycle found")
			}
			validateHamCycle(t, tt.g, cyc)
		})
	}
}

func validateHamCycle(t *testing.T, g *graph.Undirected, cyc []int32) {
	t.Helper()
	if len(cyc) != g.N() {
		t.Fatalf("cycle length = %d, want %d", len(cyc), g.N())
	}
	seen := make([]bool, g.N())
	for i, v := range cyc {
		if seen[v] {
			t.Fatalf("node %d repeated", v)
		}
		seen[v] = true
		next := cyc[(i+1)%len(cyc)]
		if !g.HasEdge(v, next) {
			t.Fatalf("cycle step (%d,%d) is not an edge", v, next)
		}
	}
}

func TestHamiltonianCycleRejectsImpossible(t *testing.T) {
	r := rng.New(100)
	if _, ok := HamiltonianCycle(pathGraph(t, 5), r, 20); ok {
		t.Error("found Hamiltonian cycle in a path")
	}
	star := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if _, ok := HamiltonianCycle(star, r, 20); ok {
		t.Error("found Hamiltonian cycle in a star")
	}
	if _, ok := HamiltonianCycle(mustGraph(t, 0, nil), r, 5); ok {
		t.Error("found cycle in empty graph")
	}
	if cyc, ok := HamiltonianCycle(mustGraph(t, 1, nil), r, 5); !ok || len(cyc) != 1 {
		t.Error("single node should be trivially Hamiltonian")
	}
	if _, ok := HamiltonianCycle(completeGraph(t, 2), r, 5); ok {
		t.Error("K2 has no Hamiltonian cycle")
	}
}

func TestHamiltonianCycleDenseRandom(t *testing.T) {
	// Dense G(n,p) far above the Hamiltonicity threshold: the heuristic
	// should succeed.
	r := rand.New(rand.NewSource(5))
	g := gnp(t, r, 40, 0.5)
	cyc, ok := HamiltonianCycle(g, rng.New(101), 200)
	if !ok {
		t.Fatal("heuristic failed on a dense random graph")
	}
	validateHamCycle(t, g, cyc)
}

func BenchmarkTriangleCount(b *testing.B) {
	r := rand.New(rand.NewSource(14))
	g := gnp(b, r, 500, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriangleCount(g)
	}
}
