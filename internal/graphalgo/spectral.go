package graphalgo

import (
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

// AlgebraicConnectivity estimates the Fiedler value λ₂(L), the second
// smallest eigenvalue of the graph Laplacian, by projected power iteration.
// λ₂ > 0 iff the graph is connected, and by Fiedler's theorem
// λ₂ ≤ κ(G) for non-complete graphs — a spectral lower-bound companion to
// the combinatorial connectivity tests, useful as a robustness score for
// deployed WSN topologies (larger λ₂ = harder to partition).
//
// The estimate converges to a relative accuracy controlled by iters
// (suggested: 200–1000); graphs with fewer than 2 nodes return 0.
func AlgebraicConnectivity(g *graph.Undirected, iters int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	if iters < 1 {
		iters = 1
	}
	// Power iteration on M = cI − L, whose top eigenvector (after
	// projecting out the all-ones kernel of L) corresponds to λ₂(L):
	// λ₂ = c − λ_max(M restricted to 1⊥). c = 2·maxDegree ≥ λ_max(L).
	c := 2 * float64(g.MaxDegree())
	if c == 0 {
		return 0 // edgeless
	}
	deg := make([]float64, n)
	for v := int32(0); int(v) < n; v++ {
		deg[v] = float64(g.Degree(v))
	}
	// Deterministic pseudo-random start vector, orthogonal to 1.
	x := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x[i] = float64(state%2048)/1024 - 1
	}
	projectAndNormalise(x)
	y := make([]float64, n)
	var lambdaM float64
	for it := 0; it < iters; it++ {
		// y = (cI − L)x = c·x − D·x + A·x.
		for v := 0; v < n; v++ {
			y[v] = (c - deg[v]) * x[v]
		}
		for v := int32(0); int(v) < n; v++ {
			xv := x[v]
			for _, w := range g.Neighbors(v) {
				y[w] += xv
			}
		}
		projectAndNormaliseInto(y, x)
		// Rayleigh quotient after the final iteration.
		if it == iters-1 {
			lambdaM = rayleighShifted(g, deg, c, x)
		}
	}
	lambda2 := c - lambdaM
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2
}

// projectAndNormalise removes the all-ones component and scales to unit
// norm in place.
func projectAndNormalise(x []float64) {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	norm := 0.0
	for i := range x {
		x[i] -= mean
		norm += x[i] * x[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		// Degenerate start; re-seed with an alternating vector.
		for i := range x {
			if i%2 == 0 {
				x[i] = 1
			} else {
				x[i] = -1
			}
		}
		projectAndNormalise(x)
		return
	}
	for i := range x {
		x[i] /= norm
	}
}

// projectAndNormaliseInto projects src and writes the normalised result to
// dst (they may alias distinct slices of equal length).
func projectAndNormaliseInto(src, dst []float64) {
	copy(dst, src)
	projectAndNormalise(dst)
}

// rayleighShifted returns xᵀ(cI − L)x for unit x.
func rayleighShifted(g *graph.Undirected, deg []float64, c float64, x []float64) float64 {
	n := g.N()
	sum := 0.0
	for v := 0; v < n; v++ {
		sum += (c - deg[v]) * x[v] * x[v]
	}
	g.ForEachEdge(func(u, v int32) bool {
		sum += 2 * x[u] * x[v]
		return true
	})
	return sum
}
