package graphalgo

import (
	"testing"
)

// buildFlow constructs a dinic instance from an arc list.
func buildFlow(n int, arcs [][3]int32) *dinic {
	d := newDinic(n, len(arcs))
	for _, a := range arcs {
		d.addArc(a[0], a[1], a[2])
	}
	d.reset()
	return d
}

func TestDinicSimplePath(t *testing.T) {
	// 0 → 1 → 2 with capacities 2 and 1: max flow 1.
	d := buildFlow(3, [][3]int32{{0, 1, 2}, {1, 2, 1}})
	if got := d.maxFlow(0, 2, -1); got != 1 {
		t.Errorf("maxFlow = %d, want 1", got)
	}
}

func TestDinicParallelPaths(t *testing.T) {
	// Two disjoint unit paths 0→1→3 and 0→2→3.
	d := buildFlow(4, [][3]int32{
		{0, 1, 1}, {1, 3, 1},
		{0, 2, 1}, {2, 3, 1},
	})
	if got := d.maxFlow(0, 3, -1); got != 2 {
		t.Errorf("maxFlow = %d, want 2", got)
	}
}

func TestDinicNeedsResidualPush(t *testing.T) {
	// The classic case where a greedy path must be partially undone via the
	// residual arc:
	//   0→1 (1), 0→2 (1), 1→2 (1), 1→3 (1), 2→3 (1) … max flow 0→3 is 2.
	d := buildFlow(4, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {1, 2, 1}, {1, 3, 1}, {2, 3, 1},
	})
	if got := d.maxFlow(0, 3, -1); got != 2 {
		t.Errorf("maxFlow = %d, want 2", got)
	}
}

func TestDinicDisconnected(t *testing.T) {
	d := buildFlow(4, [][3]int32{{0, 1, 5}})
	if got := d.maxFlow(0, 3, -1); got != 0 {
		t.Errorf("maxFlow to unreachable sink = %d, want 0", got)
	}
}

func TestDinicSourceEqualsSink(t *testing.T) {
	d := buildFlow(2, [][3]int32{{0, 1, 1}})
	if got := d.maxFlow(0, 0, -1); got != 0 {
		t.Errorf("maxFlow(v,v) = %d, want 0", got)
	}
}

func TestDinicLimit(t *testing.T) {
	// Five parallel unit paths; limit caps the answer.
	arcs := make([][3]int32, 0, 10)
	for i := int32(1); i <= 5; i++ {
		arcs = append(arcs, [3]int32{0, i, 1}, [3]int32{i, 6, 1})
	}
	d := buildFlow(7, arcs)
	if got := d.maxFlow(0, 6, 3); got != 3 {
		t.Errorf("capped maxFlow = %d, want 3", got)
	}
	d.reset()
	if got := d.maxFlow(0, 6, -1); got != 5 {
		t.Errorf("uncapped maxFlow = %d, want 5", got)
	}
}

func TestDinicResetRestoresCapacities(t *testing.T) {
	d := buildFlow(3, [][3]int32{{0, 1, 1}, {1, 2, 1}})
	if got := d.maxFlow(0, 2, -1); got != 1 {
		t.Fatalf("first run = %d", got)
	}
	// Without reset the network is saturated.
	if got := d.maxFlow(0, 2, -1); got != 0 {
		t.Fatalf("saturated run = %d, want 0", got)
	}
	d.reset()
	if got := d.maxFlow(0, 2, -1); got != 1 {
		t.Errorf("after reset = %d, want 1", got)
	}
}

func TestDinicBipartiteMatching(t *testing.T) {
	// Max flow solves bipartite matching: left {1,2,3}, right {4,5,6},
	// edges 1-4, 1-5, 2-4, 3-6. Maximum matching is 3.
	d := buildFlow(8, [][3]int32{
		{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
		{1, 4, 1}, {1, 5, 1}, {2, 4, 1}, {3, 6, 1},
		{4, 7, 1}, {5, 7, 1}, {6, 7, 1},
	})
	if got := d.maxFlow(0, 7, -1); got != 3 {
		t.Errorf("matching flow = %d, want 3", got)
	}
}
