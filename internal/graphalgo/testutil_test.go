package graphalgo

import (
	"math/rand"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

// mustGraph builds a graph or fails the test.
func mustGraph(tb testing.TB, n int, edges []graph.Edge) *graph.Undirected {
	tb.Helper()
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		tb.Fatalf("NewFromEdges: %v", err)
	}
	return g
}

// pathGraph returns the path 0−1−…−(n−1).
func pathGraph(tb testing.TB, n int) *graph.Undirected {
	tb.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return mustGraph(tb, n, edges)
}

// cycleGraph returns the cycle on n nodes.
func cycleGraph(tb testing.TB, n int) *graph.Undirected {
	tb.Helper()
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % n)})
	}
	return mustGraph(tb, n, edges)
}

// completeGraph returns K_n.
func completeGraph(tb testing.TB, n int) *graph.Undirected {
	tb.Helper()
	g, err := graph.Complete(n)
	if err != nil {
		tb.Fatalf("Complete(%d): %v", n, err)
	}
	return g
}

// gnp samples an Erdős–Rényi graph with math/rand for test inputs (the
// library's own samplers live in randgraph and are tested separately).
func gnp(tb testing.TB, r *rand.Rand, n int, p float64) *graph.Undirected {
	tb.Helper()
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	return mustGraph(tb, n, edges)
}

// bruteVertexConnectivity computes κ by exhaustive vertex-subset removal.
// Exponential: callers keep n ≤ ~10.
func bruteVertexConnectivity(g *graph.Undirected) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	if !IsConnected(g) {
		return 0
	}
	// Try removal sets in increasing size; the first size whose removal can
	// disconnect the rest (leaving ≥ 2 nodes) is κ. If none, κ = n−1.
	for size := 1; size <= n-2; size++ {
		if bruteHasDisconnectingSet(g, size) {
			return size
		}
	}
	return n - 1
}

func bruteHasDisconnectingSet(g *graph.Undirected, size int) bool {
	n := g.N()
	alive := make([]bool, n)
	// Enumerate subsets of the given size with a simple combination walker.
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i := range alive {
			alive[i] = true
		}
		for _, v := range idx {
			alive[v] = false
		}
		sub, _, err := graph.InducedSubgraph(g, alive)
		if err == nil && sub.N() >= 2 && !IsConnected(sub) {
			return true
		}
		// Next combination.
		i := size - 1
		for i >= 0 && idx[i] == n-size+i {
			i--
		}
		if i < 0 {
			return false
		}
		idx[i]++
		for j := i + 1; j < size; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// bruteEdgeConnectivity computes λ by exhaustive edge-subset removal.
// Exponential: callers keep m small.
func bruteEdgeConnectivity(tb testing.TB, g *graph.Undirected) int {
	tb.Helper()
	if g.N() < 2 || !IsConnected(g) {
		return 0
	}
	edges := g.Edges()
	m := len(edges)
	for size := 1; size <= m; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			drop := make(map[int]bool, size)
			for _, e := range idx {
				drop[e] = true
			}
			var kept []graph.Edge
			for i, e := range edges {
				if !drop[i] {
					kept = append(kept, e)
				}
			}
			h := mustGraph(tb, g.N(), kept)
			if !IsConnected(h) {
				return size
			}
			i := size - 1
			for i >= 0 && idx[i] == m-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return m
}
