package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// HamiltonianCycle searches for a Hamiltonian cycle using the Pósa
// rotation–extension heuristic with random restarts. It returns the cycle as
// a node sequence (length n, implicitly closed) and true on success, or nil
// and false when the budget is exhausted — a false result is NOT a proof of
// non-Hamiltonicity.
//
// Random key graphs are Hamiltonian w.h.p. just above the connectivity
// threshold (Nikoletseas et al., cited in the paper's related work); the
// heuristic lets the extension experiments probe that regime.
func HamiltonianCycle(g *graph.Undirected, r *rng.Rand, restarts int) ([]int32, bool) {
	n := g.N()
	if n == 0 {
		return nil, false
	}
	if n == 1 {
		return []int32{0}, true
	}
	if n == 2 || g.MinDegree() < 2 || !IsConnected(g) {
		// A Hamiltonian cycle needs n ≥ 3, minimum degree 2, connectivity.
		return nil, false
	}
	if restarts < 1 {
		restarts = 1
	}
	pos := make([]int32, n) // pos[v] = index of v in path, -1 if unused
	for attempt := 0; attempt < restarts; attempt++ {
		if cycle, ok := posaAttempt(g, r, pos); ok {
			return cycle, true
		}
	}
	return nil, false
}

// posaAttempt runs one randomized rotation–extension pass. pos is scratch
// space of length n, overwritten.
func posaAttempt(g *graph.Undirected, r *rng.Rand, pos []int32) ([]int32, bool) {
	n := g.N()
	for i := range pos {
		pos[i] = -1
	}
	path := make([]int32, 1, n)
	path[0] = int32(r.Intn(n))
	pos[path[0]] = 0

	// Budget: rotations are cheap but can cycle; cap total steps.
	maxSteps := 20 * n * (2 + g.MaxDegree())
	for steps := 0; steps < maxSteps; steps++ {
		end := path[len(path)-1]
		ns := g.Neighbors(end)

		// Try to extend with an unused neighbor (randomized scan start).
		offset := r.Intn(len(ns))
		extended := false
		for i := range ns {
			w := ns[(i+offset)%len(ns)]
			if pos[w] == -1 {
				pos[w] = int32(len(path))
				path = append(path, w)
				extended = true
				break
			}
		}
		if extended {
			if len(path) == n {
				// Close the cycle if the endpoints are adjacent; otherwise
				// keep rotating.
				if g.HasEdge(path[0], path[len(path)-1]) {
					return append([]int32(nil), path...), true
				}
			}
			continue
		}
		// All neighbors are on the path: Pósa rotation. Pick a random
		// neighbor w at path index i; reversing path[i+1:] makes the node
		// after w the new endpoint.
		if len(path) == n && g.HasEdge(path[0], end) {
			return append([]int32(nil), path...), true
		}
		w := ns[r.Intn(len(ns))]
		i := int(pos[w])
		if i+1 >= len(path)-1 {
			continue // rotation would be a no-op
		}
		reverseSegment(path, pos, i+1, len(path)-1)
	}
	return nil, false
}

// reverseSegment reverses path[lo:hi+1] and patches pos accordingly.
func reverseSegment(path []int32, pos []int32, lo, hi int) {
	for lo < hi {
		path[lo], path[hi] = path[hi], path[lo]
		pos[path[lo]] = int32(lo)
		pos[path[hi]] = int32(hi)
		lo++
		hi--
	}
}
