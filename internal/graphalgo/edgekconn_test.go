package graphalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

func TestIsKEdgeConnectedKnown(t *testing.T) {
	tests := []struct {
		name   string
		g      *graph.Undirected
		lambda int
	}{
		{name: "two isolated", g: mustGraph(t, 2, nil), lambda: 0},
		{name: "K2", g: completeGraph(t, 2), lambda: 1},
		{name: "path5", g: pathGraph(t, 5), lambda: 1},
		{name: "cycle6", g: cycleGraph(t, 6), lambda: 2},
		{name: "K5", g: completeGraph(t, 5), lambda: 4},
		{name: "petersen", g: petersen(t), lambda: 3},
		{name: "barbell", g: barbell(t), lambda: 1},
		{name: "K3,3", g: completeBipartite(t, 3, 3), lambda: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for k := 0; k <= tt.lambda+2; k++ {
				want := k <= tt.lambda
				if got := IsKEdgeConnected(tt.g, k); got != want {
					t.Errorf("IsKEdgeConnected(k=%d) = %v, want %v", k, got, want)
				}
			}
			if got := EdgeConnectivityFlow(tt.g); got != tt.lambda {
				t.Errorf("EdgeConnectivityFlow = %d, want %d", got, tt.lambda)
			}
		})
	}
}

func TestIsKEdgeConnectedTrivia(t *testing.T) {
	if !IsKEdgeConnected(mustGraph(t, 3, nil), 0) {
		t.Error("0-edge-connectivity must always hold")
	}
	if IsKEdgeConnected(mustGraph(t, 0, nil), 1) {
		t.Error("empty graph is not 1-edge-connected")
	}
	if IsKEdgeConnected(mustGraph(t, 1, nil), 1) {
		t.Error("single vertex is not 1-edge-connected (λ = 0)")
	}
}

func TestQuickEdgeConnectivityFlowMatchesStoerWagner(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		g := gnp(nil2t(t), r, n, 0.2+r.Float64()*0.6)
		return EdgeConnectivityFlow(g) == EdgeConnectivity(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgeKConnectedConsistentWithLambda(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := gnp(nil2t(t), r, n, 0.3+r.Float64()*0.5)
		lambda := EdgeConnectivity(g)
		for k := 0; k <= lambda+2; k++ {
			if IsKEdgeConnected(g, k) != (k <= lambda) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickVertexImpliesEdgeKConnectivity(t *testing.T) {
	// κ ≥ k ⇒ λ ≥ k (Whitney): vertex k-connectivity implies edge
	// k-connectivity, the ordering the paper's failure model relies on.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := gnp(nil2t(t), r, n, 0.3+r.Float64()*0.5)
		for k := 1; k <= 4; k++ {
			if IsKConnected(g, k) && !IsKEdgeConnected(g, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsKEdgeConnected3Sparse500(b *testing.B) {
	r := rand.New(rand.NewSource(21))
	g := gnp(b, r, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsKEdgeConnected(g, 3)
	}
}
