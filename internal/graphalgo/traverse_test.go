package graphalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

func TestIsConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want bool
	}{
		{name: "empty", g: mustGraph(t, 0, nil), want: true},
		{name: "single node", g: mustGraph(t, 1, nil), want: true},
		{name: "two isolated", g: mustGraph(t, 2, nil), want: false},
		{name: "edge", g: mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}}), want: true},
		{name: "path", g: pathGraph(t, 10), want: true},
		{name: "cycle", g: cycleGraph(t, 10), want: true},
		{name: "path plus isolated", g: mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}), want: false},
		{name: "two triangles", g: mustGraph(t, 6, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		}), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsConnected(tt.g); got != tt.want {
				t.Errorf("IsConnected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2},
		{U: 4, V: 5},
	})
	comp, k := Components(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] == comp[0] || comp[3] == comp[4] {
		t.Error("3 should be isolated")
	}
	if comp[4] != comp[5] {
		t.Error("4,5 should share a component")
	}
	// Component ids are dense and ordered by first member.
	if comp[0] != 0 || comp[3] != 1 || comp[4] != 2 {
		t.Errorf("component ids = %v, want dense ordered", comp)
	}
}

func TestLargestComponentSize(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want int
	}{
		{name: "empty", g: mustGraph(t, 0, nil), want: 0},
		{name: "isolated nodes", g: mustGraph(t, 3, nil), want: 1},
		{name: "path3 + pair", g: mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
		}), want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LargestComponentSize(tt.g); got != tt.want {
				t.Errorf("LargestComponentSize = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(t, 5)
	dist := BFSDistances(g, 0)
	for v, want := range []int32{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	g2 := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	dist2 := BFSDistances(g2, 0)
	if dist2[2] != -1 {
		t.Errorf("unreachable distance = %d, want -1", dist2[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := cycleGraph(t, 6)
	p := ShortestPath(g, 0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("ShortestPath(0,3) = %v, want length-4 path", p)
	}
	// Verify consecutive hops are edges.
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path step %d: (%d,%d) is not an edge", i, p[i], p[i+1])
		}
	}
	if p := ShortestPath(g, 2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("ShortestPath(v,v) = %v", p)
	}
	g2 := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if p := ShortestPath(g2, 0, 3); p != nil {
		t.Errorf("ShortestPath across components = %v, want nil", p)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name     string
		g        *graph.Undirected
		wantD    int
		wantConn bool
	}{
		{name: "empty", g: mustGraph(t, 0, nil), wantD: 0, wantConn: true},
		{name: "single", g: mustGraph(t, 1, nil), wantD: 0, wantConn: true},
		{name: "path5", g: pathGraph(t, 5), wantD: 4, wantConn: true},
		{name: "cycle6", g: cycleGraph(t, 6), wantD: 3, wantConn: true},
		{name: "K4", g: completeGraph(t, 4), wantD: 1, wantConn: true},
		{name: "disconnected", g: mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}}), wantD: 1, wantConn: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, conn := Diameter(tt.g)
			if d != tt.wantD || conn != tt.wantConn {
				t.Errorf("Diameter = (%d, %v), want (%d, %v)", d, conn, tt.wantD, tt.wantConn)
			}
		})
	}
}

func TestQuickComponentsAgreeWithUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		g := gnp(nil2t(t), r, n, r.Float64()*0.2)
		comp, k := Components(g)
		uf := NewUnionFind(n)
		g.ForEachEdge(func(u, v int32) bool {
			uf.Union(u, v)
			return true
		})
		if uf.Count() != k {
			return false
		}
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if (comp[u] == comp[v]) != uf.Connected(u, v) {
					return false
				}
			}
		}
		return (k == 1) == IsConnected(g) || n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// nil2t adapts *testing.T for helpers inside quick closures.
func nil2t(t *testing.T) testing.TB { return t }

func TestQuickShortestPathLengthMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		g := gnp(nil2t(t), r, n, 0.15)
		src := int32(r.Intn(n))
		dist := BFSDistances(g, src)
		for dst := int32(0); int(dst) < n; dst++ {
			p := ShortestPath(g, src, dst)
			switch {
			case dist[dst] == -1 && dst != src:
				if p != nil {
					return false
				}
			default:
				if int32(len(p)-1) != dist[dst] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsConnectedSparse1000(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g := gnp(b, r, 1000, 0.008)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsConnected(g)
	}
}
