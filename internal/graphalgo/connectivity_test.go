package graphalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

func TestArticulationPoints(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want []int32
	}{
		{name: "path", g: pathGraph(t, 5), want: []int32{1, 2, 3}},
		{name: "cycle", g: cycleGraph(t, 5), want: nil},
		{name: "complete", g: completeGraph(t, 5), want: nil},
		{name: "bowtie", g: mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
		}), want: []int32{2}},
		{name: "star", g: mustGraph(t, 4, []graph.Edge{
			{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		}), want: []int32{0}},
		{name: "disconnected cycles", g: mustGraph(t, 6, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		}), want: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ArticulationPoints(tt.g)
			if len(got) != len(tt.want) {
				t.Fatalf("ArticulationPoints = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Fatalf("ArticulationPoints = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestQuickArticulationAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		g := gnp(nil2t(t), r, n, 0.35)
		got := map[int32]bool{}
		for _, v := range ArticulationPoints(g) {
			got[v] = true
		}
		_, base := Components(g)
		for v := 0; v < n; v++ {
			alive := make([]bool, n)
			for i := range alive {
				alive[i] = i != v
			}
			sub, _, err := graph.InducedSubgraph(g, alive)
			if err != nil {
				return false
			}
			_, k := Components(sub)
			// Removing v drops one node; component count rising above the
			// base count (ignoring v's own singleton effect) marks a cut
			// vertex.
			isCut := k > base && g.Degree(int32(v)) > 0
			if got[int32(v)] != isCut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIsBiconnected(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Undirected
		want bool
	}{
		{name: "K2 is not 2-connected", g: completeGraph(t, 2), want: false},
		{name: "triangle", g: cycleGraph(t, 3), want: true},
		{name: "cycle10", g: cycleGraph(t, 10), want: true},
		{name: "path", g: pathGraph(t, 4), want: false},
		{name: "bowtie", g: mustGraph(t, 5, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
		}), want: false},
		{name: "disconnected", g: mustGraph(t, 6, nil), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsBiconnected(tt.g); got != tt.want {
				t.Errorf("IsBiconnected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsKConnectedKnownGraphs(t *testing.T) {
	tests := []struct {
		name  string
		g     *graph.Undirected
		kappa int // exact vertex connectivity
	}{
		{name: "empty-2", g: mustGraph(t, 2, nil), kappa: 0},
		{name: "K2", g: completeGraph(t, 2), kappa: 1},
		{name: "path4", g: pathGraph(t, 4), kappa: 1},
		{name: "cycle5", g: cycleGraph(t, 5), kappa: 2},
		{name: "cycle12", g: cycleGraph(t, 12), kappa: 2},
		{name: "K5", g: completeGraph(t, 5), kappa: 4},
		{name: "K7", g: completeGraph(t, 7), kappa: 6},
		{name: "petersen", g: petersen(t), kappa: 3},
		{name: "K5 minus edge", g: mustGraph(t, 5, k5MinusEdge()), kappa: 3},
		{name: "two cliques sharing 2 nodes", g: twoCliquesSharing2(t), kappa: 2},
		{name: "K3,3", g: completeBipartite(t, 3, 3), kappa: 3},
		{name: "K4,7", g: completeBipartite(t, 4, 7), kappa: 4},
		{name: "hypercube Q3", g: hypercube(t, 3), kappa: 3},
		{name: "hypercube Q4", g: hypercube(t, 4), kappa: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for k := 0; k <= tt.kappa+2; k++ {
				want := k <= tt.kappa
				if got := IsKConnected(tt.g, k); got != want {
					t.Errorf("IsKConnected(k=%d) = %v, want %v", k, got, want)
				}
			}
			if got := VertexConnectivity(tt.g); got != tt.kappa {
				t.Errorf("VertexConnectivity = %d, want %d", got, tt.kappa)
			}
		})
	}
}

// petersen builds the Petersen graph (3-regular, κ = λ = 3).
func petersen(t *testing.T) *graph.Undirected {
	t.Helper()
	var edges []graph.Edge
	for i := int32(0); i < 5; i++ {
		edges = append(edges,
			graph.Edge{U: i, V: (i + 1) % 5},     // outer cycle
			graph.Edge{U: i, V: i + 5},           // spokes
			graph.Edge{U: i + 5, V: (i+2)%5 + 5}, // inner pentagram
		)
	}
	return mustGraph(t, 10, edges)
}

func k5MinusEdge() []graph.Edge {
	var edges []graph.Edge
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if u == 0 && v == 1 {
				continue
			}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return edges
}

func twoCliquesSharing2(t *testing.T) *graph.Undirected {
	t.Helper()
	// K5 on {0..4} and K5 on {3..7}: separator {3,4}, κ = 2.
	var edges []graph.Edge
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	for u := int32(3); u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return mustGraph(t, 8, edges)
}

func completeBipartite(t *testing.T, a, b int) *graph.Undirected {
	t.Helper()
	var edges []graph.Edge
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(a + v)})
		}
	}
	return mustGraph(t, a+b, edges)
}

func hypercube(t *testing.T, dim int) *graph.Undirected {
	t.Helper()
	n := 1 << dim
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	return mustGraph(t, n, edges)
}

func TestIsKConnectedTrivia(t *testing.T) {
	g := completeGraph(t, 4)
	if !IsKConnected(g, 0) {
		t.Error("0-connectivity must always hold")
	}
	if !IsKConnected(g, -2) {
		t.Error("negative k must always hold")
	}
	if IsKConnected(g, 4) {
		t.Error("K4 is not 4-connected (n ≤ k)")
	}
	single := mustGraph(t, 1, nil)
	if IsKConnected(single, 1) {
		t.Error("single node is not 1-connected under κ(K_n)=n−1 convention")
	}
}

func TestQuickVertexConnectivityAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		g := gnp(nil2t(t), r, n, 0.25+r.Float64()*0.5)
		return VertexConnectivity(g) == bruteVertexConnectivity(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickKConnectivityMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		g := gnp(nil2t(t), r, n, r.Float64())
		prev := true
		for k := 0; k <= n; k++ {
			cur := IsKConnected(g, k)
			if cur && !prev {
				return false // once false it must stay false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickWhitneyInequalities(t *testing.T) {
	// κ ≤ λ ≤ δ for every graph (Whitney 1932).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		g := gnp(nil2t(t), r, n, 0.2+r.Float64()*0.6)
		kappa := VertexConnectivity(g)
		lambda := EdgeConnectivity(g)
		delta := g.MinDegree()
		return kappa <= lambda && lambda <= delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	g := cycleGraph(t, 6)
	if got := VertexDisjointPaths(g, 0, 3); got != 2 {
		t.Errorf("cycle disjoint paths = %d, want 2", got)
	}
	k5 := completeGraph(t, 5)
	if got := VertexDisjointPaths(k5, 0, 1); got != 4 {
		t.Errorf("K5 disjoint paths = %d, want 4 (edge + 3 via others)", got)
	}
	if got := VertexDisjointPaths(g, 2, 2); got != 0 {
		t.Errorf("same-node disjoint paths = %d, want 0", got)
	}
	disc := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if got := VertexDisjointPaths(disc, 0, 3); got != 0 {
		t.Errorf("cross-component disjoint paths = %d, want 0", got)
	}
}

func TestQuickMengerMatchesConnectivity(t *testing.T) {
	// κ(G) = min over non-adjacent pairs of VertexDisjointPaths (when a
	// non-adjacent pair exists).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := gnp(nil2t(t), r, n, 0.3+r.Float64()*0.4)
		minCut := -1
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if g.HasEdge(u, v) {
					continue
				}
				c := VertexDisjointPaths(g, u, v)
				if minCut == -1 || c < minCut {
					minCut = c
				}
			}
		}
		if minCut == -1 {
			return VertexConnectivity(g) == n-1 // complete graph
		}
		return VertexConnectivity(g) == minCut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsKConnected3Sparse500(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	g := gnp(b, r, 500, 0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsKConnected(g, 3)
	}
}

func BenchmarkIsBiconnected1000(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	g := gnp(b, r, 1000, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsBiconnected(g)
	}
}
