package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// IsConnected reports whether g is connected (1-connected). The empty graph
// is vacuously connected; a single node is connected. See IsConnectedW for
// the scratch-reusing form.
func IsConnected(g *graph.Undirected) bool {
	return IsConnectedW(nil, g)
}

// Components returns, for each node, the dense id of its connected
// component, plus the number of components. Component ids are assigned in
// order of lowest-numbered member node.
func Components(g *graph.Undirected) ([]int32, int) {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if comp[w] == -1 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// LargestComponentSize returns the node count of the largest connected
// component (0 for the empty graph).
func LargestComponentSize(g *graph.Undirected) int {
	comp, k := Components(g)
	if k == 0 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// BFSDistances returns the hop distance from src to every node (-1 when
// unreachable) using breadth-first search.
func BFSDistances(g *graph.Undirected, src int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ShortestPath returns a shortest path between src and dst (inclusive), or
// nil when dst is unreachable. For src == dst it returns [src].
func ShortestPath(g *graph.Undirected, src, dst int32) []int32 {
	if src == dst {
		return []int32{src}
	}
	n := g.N()
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if prev[w] != -1 {
				continue
			}
			prev[w] = v
			if w == dst {
				// Reconstruct.
				var rev []int32
				for x := dst; x != src; x = prev[x] {
					rev = append(rev, x)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// Diameter returns the largest shortest-path distance over all connected
// pairs, and whether the graph is connected. For a disconnected graph the
// diameter of the largest structure is not meaningful for the paper's
// experiments, so ok=false is returned along with the max finite distance.
func Diameter(g *graph.Undirected) (int, bool) {
	n := g.N()
	if n == 0 {
		return 0, true
	}
	maxDist := 0
	connected := true
	for v := int32(0); int(v) < n; v++ {
		dist := BFSDistances(g, v)
		for _, d := range dist {
			if d == -1 {
				connected = false
				continue
			}
			if int(d) > maxDist {
				maxDist = int(d)
			}
		}
	}
	return maxDist, connected
}
