package graphalgo

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
)

// Workspace holds the reusable scratch of the connectivity decision
// procedures: the union-find forest of IsConnectedW, the low-link DFS arrays
// of the biconnectivity test, and the Dinic solver of general
// k-connectivity. All buffers grow to the largest graph seen and are then
// reused, so Monte Carlo loops that test one topology per trial run the
// connectivity hot path allocation-free. The zero value is ready to use; a
// Workspace is not safe for concurrent use — give each worker its own.
type Workspace struct {
	uf UnionFind

	// Low-link DFS scratch (biconnectivity).
	disc   []int32
	low    []int32
	parent []int32
	stack  []dfsFrame

	// Vertex-split max-flow solver (general k).
	d dinic
}

// dfsFrame is one explicit DFS stack entry of the iterative Tarjan scan.
type dfsFrame struct {
	v    int32
	next int // index into Neighbors(v)
}

// NewWorkspace returns an empty workspace; buffers grow on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// IsConnectedW is IsConnected through a reusable workspace (nil ws falls
// back to one-shot scratch).
func IsConnectedW(ws *Workspace, g *graph.Undirected) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.uf.Reset(n)
	g.ForEachEdge(func(u, v int32) bool {
		ws.uf.Union(u, v)
		// Once everything has merged we can stop scanning edges.
		return ws.uf.Count() > 1
	})
	return ws.uf.Count() == 1
}

// IsBiconnectedW is IsBiconnected through a reusable workspace (nil ws falls
// back to one-shot scratch): at least 3 nodes, connected, and free of
// articulation points.
func IsBiconnectedW(ws *Workspace, g *graph.Undirected) bool {
	if g.N() < 3 {
		return false
	}
	if g.MinDegree() < 2 || !IsConnectedW(ws, g) {
		return false
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	return !ws.scanArticulation(g, nil)
}

// scanArticulation runs the iterative Tarjan low-link DFS with reused
// buffers — the single implementation behind ArticulationPoints and
// IsBiconnectedW — and reports whether any cut vertex exists. With isCut
// nil it short-circuits on the first one; otherwise it marks every cut
// vertex in isCut (length n) and scans the whole graph.
func (ws *Workspace) scanArticulation(g *graph.Undirected, isCut []bool) bool {
	n := g.N()
	if cap(ws.disc) < n {
		ws.disc = make([]int32, n)
		ws.low = make([]int32, n)
		ws.parent = make([]int32, n)
	}
	disc := ws.disc[:n]
	low := ws.low[:n]
	parent := ws.parent[:n]
	for i := 0; i < n; i++ {
		disc[i] = 0 // 0 = unvisited
		parent[i] = -1
	}
	timer := int32(0)
	found := false

	for root := int32(0); int(root) < n; root++ {
		if disc[root] != 0 {
			continue
		}
		rootChildren := 0
		timer++
		disc[root] = timer
		low[root] = timer
		ws.stack = append(ws.stack[:0], dfsFrame{v: root})
		for len(ws.stack) > 0 {
			top := &ws.stack[len(ws.stack)-1]
			v := top.v
			ns := g.Neighbors(v)
			if top.next < len(ns) {
				w := ns[top.next]
				top.next++
				if disc[w] == 0 {
					parent[w] = v
					if v == root {
						rootChildren++
					}
					timer++
					disc[w] = timer
					low[w] = timer
					ws.stack = append(ws.stack, dfsFrame{v: w})
				} else if w != parent[v] && disc[w] < low[v] {
					low[v] = disc[w] // back edge
				}
				continue
			}
			// Post-order: propagate low-link to parent.
			ws.stack = ws.stack[:len(ws.stack)-1]
			p := parent[v]
			if p != -1 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if p != root && low[v] >= disc[p] {
					if isCut == nil {
						return true
					}
					isCut[p] = true
					found = true
				}
			}
		}
		if rootChildren >= 2 {
			if isCut == nil {
				return true
			}
			isCut[root] = true
			found = true
		}
	}
	return found
}

// IsKConnectedW is IsKConnected through a reusable workspace (nil ws falls
// back to one-shot scratch). See IsKConnected for the algorithm.
func IsKConnectedW(ws *Workspace, g *graph.Undirected, k int) bool {
	n := g.N()
	switch {
	case k <= 0:
		return true
	case n <= k:
		return false
	case k == 1:
		return IsConnectedW(ws, g)
	case g.MinDegree() < k:
		return false // a k-connected graph has minimum degree ≥ k
	case k == 2:
		return IsBiconnectedW(ws, g)
	}
	if ws == nil {
		ws = NewWorkspace()
	}

	// Vertex-split digraph: node v becomes v_in = 2v and v_out = 2v+1 with a
	// capacity-1 arc in→out; each undirected edge {u,v} becomes arcs
	// u_out→v_in and v_out→u_in of capacity 1 (effectively unbounded given
	// the unit vertex caps). One extra auxiliary node x = 2n feeds W.
	aux := int32(2 * n)
	d := &ws.d
	d.init(2*n+1, 2*n+4*g.M()+k)
	for v := int32(0); int(v) < n; v++ {
		d.addArc(2*v, 2*v+1, 1)
	}
	g.ForEachEdge(func(u, v int32) bool {
		d.addArc(2*u+1, 2*v, 1)
		d.addArc(2*v+1, 2*u, 1)
		return true
	})
	for i := int32(0); int(i) < k; i++ {
		d.addArc(2*i+1, aux, 1) // w_out → x for w ∈ W (x is the fan sink)
	}

	limit := int32(k)
	// Step 1: pairs inside W.
	for i := int32(0); int(i) < k; i++ {
		for j := i + 1; int(j) < k; j++ {
			if g.HasEdge(i, j) {
				// Adjacent pairs cannot be separated by a vertex cut, and in
				// the κ<k certificate two W-nodes on opposite sides of a
				// separator are never adjacent.
				continue
			}
			d.reset()
			// Source v_i_out, sink v_j_in: internal vertex caps of the
			// endpoints must not constrain the flow.
			if d.maxFlow(2*i+1, 2*j, limit) < limit {
				return false
			}
		}
	}
	// Step 2: every u outside W against the auxiliary x.
	for u := int32(k); int(u) < n; u++ {
		d.reset()
		if d.maxFlow(2*u+1, aux, limit) < limit {
			return false
		}
	}
	return true
}
