package graphalgo

import (
	"math/rand"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

// TestWorkspaceMatchesOneShot reuses one Workspace across a stream of random
// graphs of very different sizes and pins every decision against the
// one-shot functions — the reuse contract wsn.Deployer depends on (buffers
// grown by a large graph must not leak state into a smaller one).
func TestWorkspaceMatchesOneShot(t *testing.T) {
	ws := NewWorkspace()
	r := rand.New(rand.NewSource(11))
	sizes := []int{40, 3, 120, 1, 0, 75, 8, 200, 2, 60}
	for trial, n := range sizes {
		// Mix sparse and dense graphs so both connected and disconnected
		// cases appear.
		p := 0.02 + 0.3*r.Float64()
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < p {
					edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
				}
			}
		}
		g, err := graph.NewFromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := IsConnectedW(ws, g), IsConnected(g); got != want {
			t.Fatalf("trial %d (n=%d): IsConnectedW = %v, one-shot = %v", trial, n, got, want)
		}
		for k := 1; k <= 4; k++ {
			if got, want := IsKConnectedW(ws, g, k), IsKConnected(g, k); got != want {
				t.Fatalf("trial %d (n=%d, k=%d): IsKConnectedW = %v, one-shot = %v", trial, n, k, got, want)
			}
		}
		if got, want := IsBiconnectedW(ws, g), IsBiconnected(g); got != want {
			t.Fatalf("trial %d (n=%d): IsBiconnectedW = %v, one-shot = %v", trial, n, got, want)
		}
	}
}

// TestWorkspaceKnownGraphs checks the workspace variants on the small graphs
// with known connectivity used by the one-shot tests.
func TestWorkspaceKnownGraphs(t *testing.T) {
	ws := NewWorkspace()
	cycle5, err := graph.NewFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	k4, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	path3, err := graph.NewFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Undirected
		k    int
		want bool
	}{
		{"cycle5 2-connected", cycle5, 2, true},
		{"cycle5 not 3-connected", cycle5, 3, false},
		{"K4 3-connected", k4, 3, true},
		{"K4 not 4-connected", k4, 4, false},
		{"path3 connected", path3, 1, true},
		{"path3 not biconnected", path3, 2, false},
	}
	for _, c := range cases {
		if got := IsKConnectedW(ws, c.g, c.k); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	// nil workspace must behave like the one-shot form.
	if !IsKConnectedW(nil, k4, 3) {
		t.Error("nil workspace: K4 should be 3-connected")
	}
}
