package graphalgo

import (
	"math/rand"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
)

// feedGraph pushes every edge of g into the sink after resetting it to g's
// node count, returning how many pushes merged components.
func feedGraph(s *StreamUnionFind, g *graph.Undirected) int {
	s.Reset(g.N())
	merges := 0
	g.ForEachEdge(func(u, v int32) bool {
		if s.Add(u, v) {
			merges++
		}
		return true
	})
	return merges
}

// requireMatchesGraph asserts the sink's statistics equal the batch
// measurements of the graph it was fed: component count, largest-component
// size, degree-0 count, and the Report connectivity convention.
func requireMatchesGraph(t *testing.T, s *StreamUnionFind, g *graph.Undirected) {
	t.Helper()
	_, comps := Components(g)
	if got := s.Components(); got != comps {
		t.Errorf("Components() = %d, want %d", got, comps)
	}
	if want := LargestComponentSize(g); s.GiantSize() != want {
		t.Errorf("GiantSize() = %d, want %d", s.GiantSize(), want)
	}
	isolated := 0
	if hist := g.DegreeHistogram(); len(hist) > 0 {
		isolated = hist[0]
	}
	if got := s.IsolatedCount(); got != isolated {
		t.Errorf("IsolatedCount() = %d, want %d", got, isolated)
	}
	if want := comps <= 1; s.Connected() != want || s.Done() != want {
		t.Errorf("Connected()/Done() = %v/%v, want %v", s.Connected(), s.Done(), want)
	}
}

// TestStreamUnionFindMatchesBatchMeasures feeds structured and random graphs
// through the sink and compares every statistic against the batch algorithms.
func TestStreamUnionFindMatchesBatchMeasures(t *testing.T) {
	var s StreamUnionFind
	graphs := map[string]*graph.Undirected{
		"empty":      mustGraph(t, 0, nil),
		"singleton":  mustGraph(t, 1, nil),
		"two-lonely": mustGraph(t, 2, nil),
		"path":       pathGraph(t, 12),
		"cycle":      cycleGraph(t, 9),
		"complete":   completeGraph(t, 8),
		"two-comps": mustGraph(t, 7, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, // node 5, 6 isolated
		}),
	}
	r := rand.New(rand.NewSource(4))
	for i, p := range []float64{0.01, 0.05, 0.2, 0.8} {
		graphs["gnp-"+string(rune('a'+i))] = gnp(t, r, 60, p)
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			feedGraph(&s, g) // reused sink across subtests: Reset must clean up
			requireMatchesGraph(t, &s, g)
		})
	}
}

// TestStreamUnionFindIncrementalInvariants drives one sink edge by edge and
// checks the statistics stay consistent at every step, that duplicates and
// self-loops are no-ops, and that Done flips exactly when one component
// remains.
func TestStreamUnionFindIncrementalInvariants(t *testing.T) {
	var s StreamUnionFind
	s.Reset(5)
	if s.Components() != 5 || s.IsolatedCount() != 5 || s.GiantSize() != 1 || s.Done() {
		t.Fatalf("fresh state: comps=%d isolated=%d giant=%d done=%v",
			s.Components(), s.IsolatedCount(), s.GiantSize(), s.Done())
	}
	if s.Add(2, 2) {
		t.Error("self-loop reported a merge")
	}
	if !s.Add(0, 1) {
		t.Error("first edge did not merge")
	}
	if s.Add(1, 0) {
		t.Error("duplicate edge reported a merge")
	}
	if s.Components() != 4 || s.IsolatedCount() != 3 || s.GiantSize() != 2 {
		t.Fatalf("after {0,1}: comps=%d isolated=%d giant=%d",
			s.Components(), s.IsolatedCount(), s.GiantSize())
	}
	s.Add(2, 3)
	s.Add(0, 2) // merges {0,1} with {2,3}
	if s.Components() != 2 || s.IsolatedCount() != 1 || s.GiantSize() != 4 || s.Done() {
		t.Fatalf("after 3 merges: comps=%d isolated=%d giant=%d done=%v",
			s.Components(), s.IsolatedCount(), s.GiantSize(), s.Done())
	}
	s.Add(4, 1)
	if !s.Done() || !s.Connected() || s.GiantSize() != 5 || s.IsolatedCount() != 0 {
		t.Fatalf("after spanning: comps=%d isolated=%d giant=%d done=%v",
			s.Components(), s.IsolatedCount(), s.GiantSize(), s.Done())
	}
}

// TestStreamUnionFindResetReuse pins the amortization contract: a sink that
// just answered a large connected instance must come back clean for a small
// disconnected one.
func TestStreamUnionFindResetReuse(t *testing.T) {
	var s StreamUnionFind
	feedGraph(&s, completeGraph(t, 40))
	if !s.Done() {
		t.Fatal("K40 should be connected")
	}
	g := mustGraph(t, 6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	feedGraph(&s, g)
	requireMatchesGraph(t, &s, g)
}

// TestStreamUnionFindEdgeOrderIndependence shuffles the edge feed order; the
// statistics are functions of the edge set, so every order must agree.
func TestStreamUnionFindEdgeOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := gnp(t, r, 50, 0.04)
	edges := g.Edges()
	var want StreamUnionFind
	feedGraph(&want, g)
	var s StreamUnionFind
	for pass := 0; pass < 5; pass++ {
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		s.Reset(g.N())
		for _, e := range edges {
			s.Add(e.U, e.V)
		}
		if s.Components() != want.Components() || s.GiantSize() != want.GiantSize() ||
			s.IsolatedCount() != want.IsolatedCount() {
			t.Fatalf("pass %d: stats depend on edge order", pass)
		}
	}
}
