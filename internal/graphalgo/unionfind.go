// Package graphalgo implements the graph algorithms the paper's evaluation
// needs: connectivity (union-find, BFS), biconnectivity (articulation
// points), general vertex k-connectivity via Even's algorithm on top of a
// unit-capacity Dinic max-flow with vertex splitting, exact vertex and edge
// connectivity, and the structural metrics (degrees, triangles, clustering,
// k-cores, diameter) used by the extension experiments.
//
// k-connectivity is the paper's central property: a graph is k-connected iff
// it stays connected after removing any k−1 nodes (equivalently, by Menger's
// theorem, every pair of nodes is joined by k internally vertex-disjoint
// paths). Theorem 1 gives its asymptotic probability for the WSN model; this
// package supplies the exact finite-n decision procedures the Monte Carlo
// experiments rely on.
package graphalgo

// UnionFind is a disjoint-set forest with union by rank and path compression.
// The zero value is unusable; create one with NewUnionFind.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{}
	u.Reset(n)
	return u
}

// Reset reinitializes the structure to n singleton sets, reusing the
// existing storage when it is large enough — the amortization hook of
// Workspace-backed connectivity tests.
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
		u.rank = make([]int8, n)
	}
	u.parent = u.parent[:n]
	u.rank = u.rank[:n]
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.rank[i] = 0
	}
	u.count = n
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(x, y int32) bool {
	_, merged := u.UnionRoot(x, y)
	return merged
}

// UnionRoot merges the sets containing x and y and returns the surviving
// root plus whether a merge happened. The root return lets callers that keep
// per-set aggregates (e.g. StreamUnionFind's component sizes) update them
// without a second Find.
func (u *UnionFind) UnionRoot(x, y int32) (int32, bool) {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return rx, false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return rx, true
}

// Connected reports whether x and y are in the same set.
func (u *UnionFind) Connected(x, y int32) bool {
	return u.Find(x) == u.Find(y)
}

// LargestAmong returns the size of the largest set counting only the nodes v
// with include[v] true (0 when none are). Excluded nodes still glue sets
// together through prior Unions; they just do not add to any set's size —
// the query an induced-subgraph giant component needs when the union-find
// was built over the full node range. include must not be longer than the
// union-find's universe.
func (u *UnionFind) LargestAmong(include []bool) int {
	sizes := make([]int32, len(u.parent))
	best := int32(0)
	for v, ok := range include {
		if !ok {
			continue
		}
		root := u.Find(int32(v))
		sizes[root]++
		if sizes[root] > best {
			best = sizes[root]
		}
	}
	return int(best)
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }
