// Package sweepserve is the sweep-as-a-service layer: a long-running job
// server wrapping the experiment engine. Clients POST JobSpecs (figure1-style
// connectivity sweeps, cross sweeps, k-connectivity, min-degree, design-rule
// validations, attack campaigns); a bounded worker pool executes them on
// wsn.DeployerPools with PointWorkers sharding; clients poll job status,
// stream per-point progress over SSE, and fetch results as JSON or CSV.
//
// Determinism is the contract that makes the service cacheable: per-point
// seeds derive from point parameters (experiment.SweepConfig.PointSeed), so
// a grid point's result is a pure function of (code version, sweep kind,
// job label, trial budget, base seed, point parameters) — the key of the
// shared result Store. Identical in-flight jobs coalesce onto one execution
// via the sweep's journal fingerprint, overlapping grids resolve shared
// points from the store instead of recomputing them, and because the store
// persists through the PR-8 checkpoint-journal format, a restarted server
// resumes from the journal file bit-identical to a server that never died.
package sweepserve

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// Job kinds the server executes. All but KindCampaign estimate a proportion
// per grid point; KindCampaign measures the 4-component campaign vector.
const (
	// KindConnectivity estimates P[secure topology connected] on the
	// streaming union-find path: scheme axes (Ks, Qs) and on/off channel
	// driven by the Ps axis unless the spec fixes a channel. Equivalent to
	// experiment.SweepConnectivity.
	KindConnectivity = "connectivity"
	// KindKConn estimates P[k-connected] with the Xs axis carrying the
	// levels (experiment.SweepKConnectivity).
	KindKConn = "kconn"
	// KindCross estimates P[k-connected] with the Xs axis bound to a model
	// quantity — "k", "radius" or "on" (experiment.CrossSweep).
	KindCross = "cross"
	// KindMinDegree estimates P[secure min degree ≥ k] on the streaming
	// path (experiment.SweepMinDegree).
	KindMinDegree = "mindegree"
	// KindDesign is the design-rule endpoint: for each level k = 1..KMax it
	// computes the smallest ring size achieving the target k-connectivity
	// probability under Theorem 1 (core.DesignK) and validates it
	// empirically — exactly cmd/designer's sweep.
	KindDesign = "design"
	// KindKStar validates the eq. (9) connectivity threshold K* of each
	// (q, p) grid point by deploying at it — exactly cmd/kstar's sweep.
	KindKStar = "kstar"
	// KindCampaign sweeps an adversary.Timeline over an attack-budget Xs
	// axis (experiment.SweepCampaign).
	KindCampaign = "campaign"
)

// GridSpec is the JSON form of experiment.Grid.
type GridSpec struct {
	Ks []int     `json:"ks,omitempty"`
	Qs []int     `json:"qs,omitempty"`
	Ps []float64 `json:"ps,omitempty"`
	Xs []float64 `json:"xs,omitempty"`
}

// Grid converts to the engine's grid type.
func (g GridSpec) Grid() experiment.Grid {
	return experiment.Grid{Ks: g.Ks, Qs: g.Qs, Ps: g.Ps, Xs: g.Xs}
}

// ClassSpec is one sensor class of a heterogeneous scheme.
type ClassSpec struct {
	Mu   float64 `json:"mu"`
	Ring int     `json:"ring"`
}

// ChannelSpec fixes the job's channel model. Omitting it (or giving type
// "onoff" without "p") drives an on/off channel from the grid's Ps axis.
type ChannelSpec struct {
	// Type is "onoff", "alwayson", "disk" or "heteronoff".
	Type string `json:"type"`
	// P fixes the on/off probability; nil reads it from the Ps axis.
	P *float64 `json:"p,omitempty"`
	// Radius and Torus configure a disk channel.
	Radius float64 `json:"radius,omitempty"`
	Torus  bool    `json:"torus,omitempty"`
	// On is the per-class-pair on/off matrix of a heteronoff channel; its
	// dimension must equal the number of scheme classes.
	On [][]float64 `json:"on,omitempty"`
}

// JobSpec is one submitted job: everything needed to reproduce the sweep
// bit-identically, and nothing about scheduling (worker counts are the
// server's concern and never part of result identity).
type JobSpec struct {
	Kind    string   `json:"kind"`
	Sensors int      `json:"sensors"`
	Pool    int      `json:"pool"`
	Trials  int      `json:"trials"`
	Seed    uint64   `json:"seed"`
	Grid    GridSpec `json:"grid"`

	// Classes switches the scheme from q-composite (ring size on the Ks
	// axis) to heterogeneous with these fixed per-class ring sizes.
	Classes []ClassSpec `json:"classes,omitempty"`
	// Channel fixes the channel model; see ChannelSpec.
	Channel *ChannelSpec `json:"channel,omitempty"`

	// Binding names what the Xs axis drives for kind "cross": "k",
	// "radius" or "on".
	Binding string `json:"binding,omitempty"`
	// Torus selects wraparound disk distances under binding "radius".
	Torus bool `json:"torus,omitempty"`
	// K is the fixed connectivity level (kinds cross/mindegree); 0 means
	// k = 1 for cross and minimum degree ≥ 0 trivially for mindegree.
	K int `json:"k,omitempty"`

	// Target and KMax configure kind "design".
	Target float64 `json:"target,omitempty"`
	KMax   int     `json:"kmax,omitempty"`

	// Timeline is the attack campaign of kind "campaign"
	// (adversary.ParseTimeline syntax).
	Timeline string `json:"timeline,omitempty"`
}

// SpecError is a job-spec validation failure naming the offending field; the
// server returns it as a structured 400.
type SpecError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("sweepserve: spec field %q: %s", e.Field, e.Msg)
}

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// jobPlan is a validated, executable job: the canonical label and journal
// kind that key its points in the store, the grid, and exactly one runner.
type jobPlan struct {
	// kind is the journal/codec kind (experiment.KindProportion or
	// KindMeanVec(CampaignDims)); label is the canonical sweep label —
	// everything the build closures bake in that the fingerprint's
	// grid/trials/seed do not.
	kind  string
	label string
	grid  experiment.Grid

	// trialBuild runs proportion-kind jobs (every kind but campaign); the
	// manager may wrap it (Options.WrapTrialBuild) for fault injection.
	trialBuild func(pt experiment.GridPoint) (montecarlo.Trial, error)
	// campaign runs campaign-kind jobs.
	campaign *experiment.CampaignSpec
}

// schemeLabel renders the scheme half of the canonical label.
func (s *JobSpec) schemeLabel() string {
	if len(s.Classes) == 0 {
		return "qcomposite"
	}
	lbl := "hetero["
	for i, c := range s.Classes {
		if i > 0 {
			lbl += " "
		}
		lbl += fmt.Sprintf("mu=%g ring=%d", c.Mu, c.Ring)
	}
	return lbl + "]"
}

// channelLabel renders the channel half of the canonical label.
func (s *JobSpec) channelLabel() string {
	c := s.Channel
	if c == nil || (c.Type == "onoff" && c.P == nil) {
		return "onoff(axis)"
	}
	switch c.Type {
	case "onoff":
		return fmt.Sprintf("onoff(p=%g)", *c.P)
	case "alwayson":
		return "alwayson"
	case "disk":
		return fmt.Sprintf("disk(r=%g torus=%t)", c.Radius, c.Torus)
	case "heteronoff":
		return fmt.Sprintf("heteronoff%v", c.On)
	}
	return c.Type
}

// schemeFor builds the grid point's key predistribution scheme.
func (s *JobSpec) schemeFor(pt experiment.GridPoint) (keys.Scheme, error) {
	if len(s.Classes) == 0 {
		return keys.NewQComposite(s.Pool, pt.K, pt.Q)
	}
	classes := make([]keys.Class, len(s.Classes))
	for i, c := range s.Classes {
		classes[i] = keys.Class{Mu: c.Mu, RingSize: c.Ring}
	}
	return keys.NewHeterogeneous(s.Pool, pt.Q, classes)
}

// channelFor resolves the grid point's channel model, or nil when a cross
// binding supplies it from the Xs axis.
func (s *JobSpec) channelFor(pt experiment.GridPoint) (channel.Model, error) {
	c := s.Channel
	if s.Kind == KindCross && (s.Binding == "radius" || s.Binding == "on") {
		return nil, nil // bound to the Xs axis; validated to have no ChannelSpec
	}
	if c == nil || (c.Type == "onoff" && c.P == nil) {
		return channel.OnOff{P: pt.P}, nil
	}
	switch c.Type {
	case "onoff":
		return channel.OnOff{P: *c.P}, nil
	case "alwayson":
		return channel.AlwaysOn{}, nil
	case "disk":
		return channel.Disk{Radius: c.Radius, Torus: c.Torus}, nil
	case "heteronoff":
		return channel.HeterOnOff{P: c.On}, nil
	}
	return nil, fmt.Errorf("unknown channel type %q", c.Type)
}

// configFor assembles the deployment of one grid point.
func (s *JobSpec) configFor(pt experiment.GridPoint) (wsn.Config, error) {
	scheme, err := s.schemeFor(pt)
	if err != nil {
		return wsn.Config{}, err
	}
	ch, err := s.channelFor(pt)
	if err != nil {
		return wsn.Config{}, err
	}
	return wsn.Config{Sensors: s.Sensors, Scheme: scheme, Channel: ch}, nil
}

// validateChannel checks the ChannelSpec shape eagerly with named fields,
// mirroring the errors channel.Model.Validate and wsn's class-count
// agreement check would raise at deployment time.
func (s *JobSpec) validateChannel() *SpecError {
	c := s.Channel
	if c == nil {
		return nil
	}
	switch c.Type {
	case "onoff":
		if c.P != nil {
			if err := (channel.OnOff{P: *c.P}).Validate(); err != nil {
				return specErrf("channel.p", "%v", err)
			}
		}
	case "alwayson":
	case "disk":
		if err := (channel.Disk{Radius: c.Radius, Torus: c.Torus}).Validate(); err != nil {
			return specErrf("channel.radius", "%v", err)
		}
	case "heteronoff":
		if len(s.Classes) == 0 {
			return specErrf("classes", "channel type \"heteronoff\" needs a heterogeneous scheme: declare the sensor classes")
		}
		if len(c.On) != len(s.Classes) {
			return specErrf("channel.on", "on/off matrix has %d classes but the scheme declares %d — the channel and scheme share one class assignment",
				len(c.On), len(s.Classes))
		}
		if err := (channel.HeterOnOff{P: c.On}).Validate(); err != nil {
			return specErrf("channel.on", "%v", err)
		}
	case "":
		return specErrf("channel.type", "channel spec needs a type (onoff, alwayson, disk, heteronoff)")
	default:
		return specErrf("channel.type", "unknown channel type %q (want onoff, alwayson, disk or heteronoff)", c.Type)
	}
	return nil
}

// validateCommon checks the fields every kind shares.
func (s *JobSpec) validateCommon() *SpecError {
	if s.Sensors <= 0 {
		return specErrf("sensors", "sensor count %d must be positive", s.Sensors)
	}
	if s.Trials <= 0 {
		return specErrf("trials", "trial budget %d must be positive — a sweep with zero trials estimates nothing", s.Trials)
	}
	if s.Pool <= 0 {
		return specErrf("pool", "key pool size %d must be positive", s.Pool)
	}
	if len(s.Classes) > 0 && len(s.Grid.Ks) > 0 {
		return specErrf("grid.ks", "ring sizes come from the per-class declarations under a heterogeneous scheme; the Ks axis must be empty")
	}
	if err := s.validateChannel(); err != nil {
		return err
	}
	return nil
}

// validatePoints eagerly builds every grid point's deployment through the
// same constructors the sweep will use, so scheme/channel/model
// misconfigurations surface at submit time as 400s, not as failed jobs.
func (s *JobSpec) validatePoints(grid experiment.Grid) *SpecError {
	for _, pt := range grid.Points() {
		cfg, err := s.configFor(pt)
		if err != nil {
			return specErrf("spec", "grid point %v: %v", pt, err)
		}
		if cfg.Channel == nil {
			continue // cross binding supplies it per point; CrossSpec validated the axis
		}
		if _, err := wsn.NewDeployerPool(cfg); err != nil {
			return specErrf("spec", "grid point %v: %v", pt, err)
		}
	}
	return nil
}

// compile validates the spec and lowers it to an executable plan. All
// validation errors are *SpecError values naming the offending field.
func (s *JobSpec) compile() (*jobPlan, error) {
	switch s.Kind {
	case KindConnectivity, KindKConn, KindCross, KindMinDegree, KindDesign, KindKStar, KindCampaign:
	case "":
		return nil, specErrf("kind", "job needs a kind (connectivity, kconn, cross, mindegree, design, kstar, campaign)")
	default:
		return nil, specErrf("kind", "unknown job kind %q (want connectivity, kconn, cross, mindegree, design, kstar or campaign)", s.Kind)
	}
	if err := s.validateCommon(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindConnectivity:
		return s.compileConnectivity()
	case KindKConn, KindCross:
		return s.compileCross()
	case KindMinDegree:
		return s.compileMinDegree()
	case KindDesign:
		return s.compileDesign()
	case KindKStar:
		return s.compileKStar()
	case KindCampaign:
		return s.compileCampaign()
	}
	panic("unreachable")
}

// compileConnectivity lowers a connectivity job: the streaming trial of
// experiment.SweepConnectivity, point for point.
func (s *JobSpec) compileConnectivity() (*jobPlan, error) {
	grid := s.Grid.Grid()
	if err := s.validatePoints(grid); err != nil {
		return nil, err
	}
	return &jobPlan{
		kind: experiment.KindProportion,
		label: fmt.Sprintf("sweepserve/connectivity n=%d pool=%d scheme=%s channel=%s",
			s.Sensors, s.Pool, s.schemeLabel(), s.channelLabel()),
		grid: grid,
		trialBuild: func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			cfg, err := s.configFor(pt)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(cfg)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployConnectivityRand(r)
				if err != nil {
					return false, err
				}
				return st.Connected, nil
			}, nil
		},
	}, nil
}

// crossSpec resolves the job's cross-sweep bindings.
func (s *JobSpec) crossSpec() (experiment.CrossSpec, *SpecError) {
	spec := experiment.CrossSpec{
		Torus: s.Torus,
		K:     s.K,
		Build: s.configFor,
	}
	switch {
	case s.Kind == KindKConn:
		if s.Binding != "" && s.Binding != "k" {
			return spec, specErrf("binding", "kind \"kconn\" always binds the Xs axis to k; drop binding %q or use kind \"cross\"", s.Binding)
		}
		spec.Bindings = []experiment.XBinding{experiment.BindK}
	case s.Binding == "k":
		spec.Bindings = []experiment.XBinding{experiment.BindK}
	case s.Binding == "radius":
		spec.Bindings = []experiment.XBinding{experiment.BindDiskRadius}
	case s.Binding == "on":
		spec.Bindings = []experiment.XBinding{experiment.BindChannelOn}
	case s.Binding == "":
		return spec, specErrf("binding", "kind \"cross\" needs a binding for the Xs axis: \"k\", \"radius\" or \"on\"")
	default:
		return spec, specErrf("binding", "unknown Xs binding %q (want \"k\", \"radius\" or \"on\")", s.Binding)
	}
	if (s.Binding == "radius" || s.Binding == "on") && s.Channel != nil {
		// Mirrors CrossSpec.pointDeployment's channel-bound-twice error, but
		// eagerly at submit time.
		return spec, specErrf("channel", "channel bound twice: the Xs axis carries the %s while the spec also fixes a channel model",
			map[string]string{"radius": "disk radius", "on": "on probability"}[s.Binding])
	}
	return spec, nil
}

// compileCross lowers kconn and cross jobs: the CrossSweep trial —
// streaming union-find at k = 1, full deployment + exact k-connectivity
// decision at k ≥ 2 — point for point.
func (s *JobSpec) compileCross() (*jobPlan, error) {
	grid := s.Grid.Grid()
	spec, serr := s.crossSpec()
	if serr != nil {
		return nil, serr
	}
	if err := spec.Validate(grid); err != nil {
		// CrossSpec's eager validation: twice-bound axes, illegal Xs values.
		field := "grid.xs"
		if s.K != 0 {
			field = "k"
		}
		return nil, specErrf(field, "%v", err)
	}
	if err := s.validatePoints(grid); err != nil {
		return nil, err
	}
	return &jobPlan{
		kind: experiment.KindProportion,
		label: fmt.Sprintf("sweepserve/%s n=%d pool=%d scheme=%s channel=%s binding=%s torus=%t k=%d",
			s.Kind, s.Sensors, s.Pool, s.schemeLabel(), s.channelLabel(), s.Binding, s.Torus, s.K),
		grid:       grid,
		trialBuild: crossTrialBuild(spec, s.Sensors),
	}, nil
}

// crossTrialBuild is the per-point trial of experiment.CrossSweep: resolve
// the bound deployment and level, then stream (k = 1) or deploy + exact
// decision (k ≥ 2). Equivalence with CrossSweep is pinned by tests — the
// server funnels every proportion job through a trialBuild so the manager's
// WrapTrialBuild hook (fault injection in the integration suite) sees them
// all.
func crossTrialBuild(spec experiment.CrossSpec, sensors int) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
	return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
		deployCfg, k, err := spec.PointDeployment(pt)
		if err != nil {
			return nil, err
		}
		dp, err := wsn.NewDeployerPool(deployCfg)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployConnectivityRand(r)
				if err != nil {
					return false, err
				}
				return st.Connected && sensors > 1, nil
			}, nil
		}
		return func(trial int, r *rng.Rand) (bool, error) {
			d := dp.Get()
			defer dp.Put(d)
			net, err := d.DeployRand(r)
			if err != nil {
				return false, err
			}
			return net.IsKConnected(k)
		}, nil
	}
}

// compileMinDegree lowers a min-degree job: the streaming degree trial of
// experiment.SweepMinDegree, point for point.
func (s *JobSpec) compileMinDegree() (*jobPlan, error) {
	if s.K < 0 {
		return nil, specErrf("k", "min-degree level %d must be ≥ 0", s.K)
	}
	grid := s.Grid.Grid()
	if err := s.validatePoints(grid); err != nil {
		return nil, err
	}
	k := s.K
	return &jobPlan{
		kind: experiment.KindProportion,
		label: fmt.Sprintf("sweepserve/mindegree n=%d pool=%d scheme=%s channel=%s k=%d",
			s.Sensors, s.Pool, s.schemeLabel(), s.channelLabel(), k),
		grid: grid,
		trialBuild: func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			cfg, err := s.configFor(pt)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(cfg)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployDegreeStatsRand(r, k)
				if err != nil {
					return false, err
				}
				return st.MinDegreeAtLeastK, nil
			}, nil
		},
	}, nil
}

// compileDesign lowers a design job: cmd/designer's validation sweep — for
// each level k on the Xs axis (derived from KMax), deploy at the smallest
// ring size core.DesignK says achieves the target, and measure
// P[k-connected]. Bit-identical to designer's local SweepKConnectivity run.
func (s *JobSpec) compileDesign() (*jobPlan, error) {
	if s.Target <= 0 || s.Target >= 1 {
		return nil, specErrf("target", "target probability %v must be in (0,1)", s.Target)
	}
	if s.KMax < 1 {
		return nil, specErrf("kmax", "kmax %d must be ≥ 1", s.KMax)
	}
	if len(s.Grid.Xs) > 0 {
		return nil, specErrf("grid.xs", "the Xs axis of a design job carries the levels 1..kmax and is derived from kmax; leave it empty")
	}
	if len(s.Grid.Ks) > 0 {
		return nil, specErrf("grid.ks", "ring sizes of a design job come from the design rule; leave the Ks axis empty")
	}
	if len(s.Classes) > 0 {
		return nil, specErrf("classes", "the design rule covers the q-composite scheme; heterogeneous classes are not supported")
	}
	if s.Channel != nil {
		return nil, specErrf("channel", "the design rule models an on/off channel driven by the Ps axis; leave the channel spec empty")
	}
	if len(s.Grid.Qs) == 0 || len(s.Grid.Ps) == 0 {
		return nil, specErrf("grid.qs", "design jobs need the overlap (Qs) and channel (Ps) axes")
	}
	grid := s.Grid.Grid()
	grid.Xs = experiment.KLevels(s.KMax)
	spec := experiment.CrossSpec{
		Bindings: []experiment.XBinding{experiment.BindK},
		Build: func(pt experiment.GridPoint) (wsn.Config, error) {
			k, err := experiment.KOf(pt)
			if err != nil {
				return wsn.Config{}, err
			}
			ring, err := core.DesignK(s.Sensors, s.Pool, pt.Q, pt.P, k, s.Target)
			if err != nil {
				return wsn.Config{}, fmt.Errorf("design k=%d: %w", k, err)
			}
			scheme, err := keys.NewQComposite(s.Pool, ring, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: s.Sensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
		},
	}
	// Eager design-rule validation: every point must be designable.
	for _, pt := range grid.Points() {
		if _, err := spec.Build(pt); err != nil {
			return nil, specErrf("spec", "grid point %v: %v", pt, err)
		}
	}
	return &jobPlan{
		kind: experiment.KindProportion,
		label: fmt.Sprintf("sweepserve/design n=%d pool=%d target=%g kmax=%d",
			s.Sensors, s.Pool, s.Target, s.KMax),
		grid:       grid,
		trialBuild: crossTrialBuild(spec, s.Sensors),
	}, nil
}

// compileKStar lowers a kstar job: cmd/kstar's validation sweep — deploy
// each (q, p) point at its exact eq. (9) threshold K* and measure
// P[connected] on full deployments. Bit-identical to kstar's local
// SweepProportion run.
func (s *JobSpec) compileKStar() (*jobPlan, error) {
	if len(s.Grid.Qs) == 0 || len(s.Grid.Ps) == 0 {
		return nil, specErrf("grid.qs", "kstar jobs need the overlap (Qs) and channel (Ps) axes")
	}
	if len(s.Grid.Ks) > 0 || len(s.Grid.Xs) > 0 {
		return nil, specErrf("grid.ks", "kstar jobs derive the ring size from the eq. (9) threshold; leave the Ks and Xs axes empty")
	}
	if len(s.Classes) > 0 {
		return nil, specErrf("classes", "the K* threshold covers the q-composite scheme; heterogeneous classes are not supported")
	}
	if s.Channel != nil {
		return nil, specErrf("channel", "kstar jobs model an on/off channel driven by the Ps axis; leave the channel spec empty")
	}
	grid := s.Grid.Grid()
	for _, pt := range grid.Points() {
		if _, err := core.ThresholdK(s.Sensors, s.Pool, pt.Q, pt.P); err != nil {
			return nil, specErrf("spec", "grid point %v: %v", pt, err)
		}
	}
	return &jobPlan{
		kind:  experiment.KindProportion,
		label: fmt.Sprintf("sweepserve/kstar n=%d pool=%d", s.Sensors, s.Pool),
		grid:  grid,
		trialBuild: func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			exact, err := core.ThresholdK(s.Sensors, s.Pool, pt.Q, pt.P)
			if err != nil {
				return nil, err
			}
			scheme, err := keys.NewQComposite(s.Pool, exact, pt.Q)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(wsn.Config{
				Sensors: s.Sensors,
				Scheme:  scheme,
				Channel: channel.OnOff{P: pt.P},
			})
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return false, err
				}
				return net.IsConnected()
			}, nil
		},
	}, nil
}

// compileCampaign lowers a campaign job onto experiment.SweepCampaign: the
// Xs axis carries attack budgets, each point runs the budget-truncated
// timeline.
func (s *JobSpec) compileCampaign() (*jobPlan, error) {
	timeline, err := adversary.ParseTimeline(s.Timeline)
	if err != nil {
		return nil, specErrf("timeline", "%v", err)
	}
	if len(timeline) == 0 {
		return nil, specErrf("timeline", "campaign jobs need a non-empty attack timeline (e.g. \"capture:10,fail:5\")")
	}
	if len(s.Grid.Xs) == 0 {
		return nil, specErrf("grid.xs", "campaign jobs sweep the attack budget on the Xs axis; it must not be empty")
	}
	for _, x := range s.Grid.Xs {
		if x < 0 || float64(int(x)) != x {
			return nil, specErrf("grid.xs", "attack budget %v is not a non-negative integer", x)
		}
	}
	grid := s.Grid.Grid()
	if err := s.validatePoints(grid); err != nil {
		return nil, err
	}
	return &jobPlan{
		kind: experiment.KindMeanVec(experiment.CampaignDims),
		label: fmt.Sprintf("sweepserve/campaign n=%d pool=%d scheme=%s channel=%s timeline=%q",
			s.Sensors, s.Pool, s.schemeLabel(), s.channelLabel(), s.Timeline),
		grid: grid,
		campaign: &experiment.CampaignSpec{
			Timeline: timeline,
			Build:    s.configFor,
		},
	}, nil
}
