// Regression companions to the integration suite, covering the server's
// capacity and crash edges: interleaved journal sections under JobWorkers >
// 1, torn-final-line truncation across THREE server lives, queue saturation
// as 503, and Close failing queued jobs so every watcher sees a terminal
// event.
package sweepserve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/faultinject"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// TestInterleavedJournalSurvivesRestart: with JobWorkers > 1, concurrent
// jobs append their sections interleaved into the ONE shared journal file.
// The dangerous pair is two specs sharing base seed, trials and grid
// coordinates — identical parameter-derived point seeds — whose results
// differ because the deployment differs (here: sensor count, which lives
// only in the section label). A restart on the interleaved journal must
// restore every point under its own section: full cache hits per job,
// results DeepEqual each spec's offline twin.
func TestInterleavedJournalSurvivesRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "interleaved.journal")
	ks, ps := []int{6, 9}, []float64{0.4, 0.6, 0.8}
	specA := connectivitySpec(ks, ps)
	specB := connectivitySpec(ks, ps)
	specB.Sensors = testSensors + 10
	perJob := len(ks) * len(ps)

	offlineFor := func(sensors int) []experiment.ProportionResult {
		return offline(t, experiment.Grid{Ks: ks, Qs: []int{1}, Ps: ps},
			experiment.SweepConfig{Trials: testTrials, Seed: testSeed},
			func(pt experiment.GridPoint) (wsn.Config, error) {
				scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{Sensors: sensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
			})
	}
	wantA := offlineFor(testSensors)
	wantB := offlineFor(testSensors + 10)

	// Life 1: two job workers, and a rendezvous on each job's first point
	// build — both section headers hit the file before any point line, so
	// every point line of the first-writing job lands after the OTHER job's
	// header. Maximal interleaving, deterministically.
	store1, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatal(err)
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	m1 := sweepserve.NewManager(sweepserve.Options{
		Store:      store1,
		JobWorkers: 2,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			var once sync.Once
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				once.Do(func() {
					barrier.Done()
					barrier.Wait()
				})
				return build(pt)
			}
		},
	})
	srv1 := httptest.NewServer(sweepserve.NewServer(m1))
	client1 := &sweepserve.Client{Base: srv1.URL, HTTP: srv1.Client(), Poll: 2 * time.Millisecond}

	ctx := context.Background()
	var wg sync.WaitGroup
	var resA, resB []experiment.ProportionResult
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		resA, errA = client1.RunProportion(ctx, specA)
	}()
	go func() {
		defer wg.Done()
		resB, errB = client1.RunProportion(ctx, specB)
	}()
	wg.Wait()
	srv1.Close()
	m1.Close()
	store1.Close()
	if errA != nil || errB != nil {
		t.Fatalf("concurrent jobs failed: %v, %v", errA, errB)
	}
	if !reflect.DeepEqual(resA, wantA) {
		t.Errorf("life 1: spec A results differ from offline sweep")
	}
	if !reflect.DeepEqual(resB, wantB) {
		t.Errorf("life 1: spec B results differ from offline sweep")
	}

	// Life 2: restart on the interleaved journal. Both jobs' points must
	// restore — each under its own spec. (Misattribution collapses the two
	// sections onto one label, halving the restored count AND serving spec
	// A's simulations to spec B.)
	store2, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := store2.Stats().Restored; got != 2*perJob {
		t.Fatalf("restart restored %d points, want %d (every point under its own section)", got, 2*perJob)
	}
	var recomputed []experiment.GridPoint
	var mu sync.Mutex
	m2 := sweepserve.NewManager(sweepserve.Options{
		Store: store2,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				mu.Lock()
				recomputed = append(recomputed, pt)
				mu.Unlock()
				return build(pt)
			}
		},
	})
	srv2 := httptest.NewServer(sweepserve.NewServer(m2))
	defer func() {
		srv2.Close()
		m2.Close()
		store2.Close()
	}()
	client2 := &sweepserve.Client{Base: srv2.URL, HTTP: srv2.Client(), Poll: 2 * time.Millisecond}

	gotA, err := client2.RunProportion(ctx, specA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := client2.RunProportion(ctx, specB)
	if err != nil {
		t.Fatal(err)
	}
	if len(recomputed) != 0 {
		t.Errorf("restart recomputed %d points (%v), want 0 — the journal held them all", len(recomputed), recomputed)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Errorf("restarted server serves spec A results that differ from its offline sweep")
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Errorf("restarted server serves spec B results that differ from its offline sweep")
	}
}

// TestTornFinalRecordTruncatedOnReopen: a kill mid-append leaves a torn
// final line. Reopening must not only tolerate it but CUT it off — left in
// place, the next checkpoint concatenates a complete record onto the
// partial line and the restart after that reads a malformed record
// mid-file and refuses to start. Three lives: write, reopen-after-tear and
// append, reopen again clean.
func TestTornFinalRecordTruncatedOnReopen(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "torn.journal")
	spec := connectivitySpec([]int{6, 9}, []float64{0.5})
	ctx := context.Background()

	// Life 1: compute both points, journaling each.
	store1, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatal(err)
	}
	m1 := sweepserve.NewManager(sweepserve.Options{Store: store1})
	srv1 := httptest.NewServer(sweepserve.NewServer(m1))
	client1 := &sweepserve.Client{Base: srv1.URL, HTTP: srv1.Client(), Poll: 2 * time.Millisecond}
	if _, err := client1.RunProportion(ctx, spec); err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	m1.Close()
	store1.Close()

	// The kill: chop the file mid-way through its final record.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	validPrefix := torn[:bytes.LastIndexByte(torn, '\n')+1]

	// Life 2: reopen. The surviving point restores, the torn tail is
	// physically truncated, and the lost point recomputes and re-appends.
	store2, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatalf("reopen after torn final line: %v", err)
	}
	if got := store2.Stats().Restored; got != 1 {
		t.Errorf("reopen restored %d points, want 1 (the torn record's point is lost)", got)
	}
	if onDisk, err := os.ReadFile(journal); err != nil || !bytes.Equal(onDisk, validPrefix) {
		t.Errorf("torn record not truncated: file is %d bytes, want the %d-byte valid prefix (err %v)",
			len(onDisk), len(validPrefix), err)
	}
	m2 := sweepserve.NewManager(sweepserve.Options{Store: store2})
	srv2 := httptest.NewServer(sweepserve.NewServer(m2))
	client2 := &sweepserve.Client{Base: srv2.URL, HTTP: srv2.Client(), Poll: 2 * time.Millisecond}
	if _, err := client2.RunProportion(ctx, spec); err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	m2.Close()
	store2.Close()

	// Life 3: the appended-to journal must still open clean — this is the
	// restart the un-truncated tear would have broken — and now serves the
	// whole grid from cache.
	store3, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatalf("second restart refused the journal: %v", err)
	}
	defer store3.Close()
	if got := store3.Stats().Restored; got != 2 {
		t.Errorf("second restart restored %d points, want 2", got)
	}
}

// TestQueueFullReturns503: queue saturation is server capacity, not a
// client error — the submit must come back 503 with a Retry-After hint,
// not 400.
func TestQueueFullReturns503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	env := newEnv(t, sweepserve.Options{
		QueueDepth: 1,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				once.Do(func() { close(started) })
				<-release
				return build(pt)
			}
		},
	})
	// Registered after newEnv, so the wedge lifts BEFORE the env's cleanup
	// calls manager.Close (cleanups run last-in-first-out).
	t.Cleanup(func() { close(release) })
	ctx := context.Background()

	// Distinct specs so nothing coalesces: job 1 wedges the single worker,
	// job 2 fills the one queue slot, job 3 finds the queue full.
	if _, err := env.client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.3})); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := env.client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.5})); err != nil {
		t.Fatal(err)
	}

	payload, err := json.Marshal(connectivitySpec([]int{6}, []float64{0.7}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := env.http.Client().Post(env.http.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("full queue got status %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After header")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || !strings.Contains(body.Error, "queue full") {
		t.Errorf("503 body %q does not name the condition (decode err %v)", body.Error, err)
	}

	// The typed client surfaces the same condition as a plain (non-Spec)
	// error carrying the status.
	_, err = env.client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.9}))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("client submit error %v, want a 503", err)
	}
	if _, ok := err.(*sweepserve.SpecError); ok {
		t.Error("queue-full surfaced as a SpecError — it is not the client's fault")
	}
}

// TestCloseDrainsQueuedJobs: Close must leave EVERY job terminal — the
// running one cancelled by the sweep context, the queued one failed
// "shutting down" — so SSE watchers get their final event and sweepd's
// HTTP drain completes instead of timing out on a forever-"queued" job.
func TestCloseDrainsQueuedJobs(t *testing.T) {
	// Per-trial delay keeps job 1 busy long enough to call Close mid-sweep
	// while staying cancellable between trials.
	injector := faultinject.New(faultinject.Config{Seed: 1, TrialDelayProb: 1, Delay: 20 * time.Millisecond})
	started := make(chan struct{})
	var once sync.Once
	m := sweepserve.NewManager(sweepserve.Options{
		TrialWorkers: 1,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			slow := injector.ProportionBuild(build)
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				once.Do(func() { close(started) })
				return slow(pt)
			}
		},
	})
	srv := httptest.NewServer(sweepserve.NewServer(m))
	defer srv.Close()
	client := &sweepserve.Client{Base: srv.URL, HTTP: srv.Client(), Poll: 2 * time.Millisecond}
	ctx := context.Background()

	ack1, err := client.Submit(ctx, connectivitySpec([]int{6, 9}, []float64{0.3, 0.5, 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ack2, err := client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.9}))
	if err != nil {
		t.Fatal(err)
	}
	if ack2.State != sweepserve.StateQueued {
		t.Fatalf("second job state %q, want queued behind the single worker", ack2.State)
	}

	// An SSE watcher on the queued job: its stream must end with a terminal
	// event once the server closes.
	finalEvent := make(chan string, 1)
	go func() {
		resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + ack2.ID + "/events")
		if err != nil {
			finalEvent <- "transport error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		last := ""
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				last = strings.TrimPrefix(line, "event: ")
			}
		}
		finalEvent <- last
	}()

	m.Close()

	j1, ok := m.Job(ack1.ID)
	if !ok {
		t.Fatal("running job vanished")
	}
	if st := j1.Status(); st.State != sweepserve.StateDone && st.State != sweepserve.StateFailed {
		t.Errorf("running job left non-terminal after Close: %+v", st)
	}
	j2, ok := m.Job(ack2.ID)
	if !ok {
		t.Fatal("queued job vanished")
	}
	if st := j2.Status(); st.State != sweepserve.StateFailed || !strings.Contains(st.Error, "shutting down") {
		t.Errorf("queued job after Close = %+v, want failed with a shutting-down error", st)
	}
	select {
	case ev := <-finalEvent:
		if ev != "failed" {
			t.Errorf("queued job's SSE stream ended with event %q, want \"failed\"", ev)
		}
	case <-time.After(5 * time.Second):
		t.Error("queued job's SSE stream never terminated after Close")
	}

	// Submissions after Close: 503, not a hang and not a 400.
	payload, err := json.Marshal(connectivitySpec([]int{9}, []float64{0.4}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-Close submit got status %d, want %d", resp.StatusCode, http.StatusServiceUnavailable)
	}
}
