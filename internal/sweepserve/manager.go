package sweepserve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Submit failures that are the server's condition rather than the client's
// spec; the HTTP layer maps them to 503 Service Unavailable instead of 400.
var (
	// ErrQueueFull rejects a submission when the job queue is saturated.
	ErrQueueFull = errors.New("sweepserve: job queue full")
	// ErrShuttingDown rejects submissions after Close, and is the terminal
	// error of jobs still queued when the server shut down.
	ErrShuttingDown = errors.New("sweepserve: server shutting down")
)

// Progress counts a job's grid points. Cached points were resolved from the
// shared store (other jobs' work, or a previous server life via the journal
// file); Done includes them.
type Progress struct {
	Total  int `json:"total"`
	Done   int `json:"done"`
	Cached int `json:"cached"`
}

// JobStatus is the pollable snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    string   `json:"state"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
}

// Job is one submitted sweep. All mutable state is guarded by mu; readers
// take snapshots via Status and block on change via await.
type Job struct {
	id   string
	spec JobSpec
	plan *jobPlan
	cfg  experiment.SweepConfig

	mu       sync.Mutex
	state    string
	progress Progress
	result   *JobResult
	err      error
	// update is closed and replaced on every state/progress change; waiters
	// grab the current channel under mu and select on it.
	update chan struct{}
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Kind: j.spec.Kind, State: j.state, Progress: j.progress}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the terminal payload, or an error while the job is not done.
func (j *Job) Result() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("sweepserve: job %s failed: %w", j.id, j.err)
	}
	return nil, fmt.Errorf("sweepserve: job %s is %s; result not ready", j.id, j.state)
}

// await returns a channel that closes on the next state/progress change,
// plus whether the job is already terminal (in which case waiting is moot).
func (j *Job) await() (<-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.update, j.state == StateDone || j.state == StateFailed
}

// notifyLocked closes and replaces the update channel. Callers hold mu.
func (j *Job) notifyLocked() {
	close(j.update)
	j.update = make(chan struct{})
}

func (j *Job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.notifyLocked()
}

// Options configures a Manager.
type Options struct {
	// Store is the shared result cache; nil gets a fresh memory-only store.
	Store *Store
	// JobWorkers bounds concurrently executing jobs. The default 1
	// serializes job execution — submissions still return immediately and
	// queue — which maximizes cross-job cache reuse (a job sees every point
	// of the jobs ahead of it). Values > 1 are safe with a file-backed
	// store: the checkpointer keeps interleaved sections restorable.
	JobWorkers int
	// QueueDepth bounds jobs queued behind the workers; 0 means 1024. A
	// full queue rejects submissions with ErrQueueFull.
	QueueDepth int
	// PointWorkers and TrialWorkers are handed to the sweep engine
	// (SweepConfig.PointWorkers, montecarlo.Config.Workers). Scheduling
	// knobs only: never part of result identity.
	PointWorkers int
	TrialWorkers int
	// WrapTrialBuild, when set, wraps every proportion-kind job's trial
	// builder — the seam the integration suite uses to splice
	// faultinject.Injector faults into server-executed sweeps.
	WrapTrialBuild func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error)
}

// Manager owns the job table and the bounded worker pool that executes jobs
// on the sweep fabric.
type Manager struct {
	opts  Options
	store *Store

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *Job

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	// inflight maps a sweep fingerprint to its queued-or-running job:
	// submitting an identical spec while one is active coalesces onto it.
	// Terminal jobs leave the table — a re-submission becomes a new job that
	// resolves (near-)fully from the store instead.
	inflight map[string]*Job
	// coalesced counts submissions absorbed by an active identical job.
	coalesced int
}

// NewManager starts a manager and its workers.
func NewManager(opts Options) *Manager {
	if opts.Store == nil {
		opts.Store = NewStore()
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:     opts,
		store:    opts.Store,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
	}
	for range opts.JobWorkers {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Close stops accepting submissions, cancels running sweeps, waits for the
// workers to drain, then fails every job still queued — so all jobs reach a
// terminal state and their SSE/long-poll watchers get a final event instead
// of hanging through the HTTP drain window. Completed points are already
// journaled, so a close mid-job loses only the points still in flight.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	// Workers are gone and Submit rejects, so the queue can only shrink.
	for {
		select {
		case j := <-m.queue:
			m.finish(j, nil, ErrShuttingDown)
		default:
			return
		}
	}
}

// Store exposes the shared cache (for stats endpoints).
func (m *Manager) Store() *Store { return m.store }

// sweepConfig builds the engine configuration of a compiled job. The label
// is the plan's canonical label, so every spec detail the build closures
// bake in (scheme, channel, bindings, n, pool, …) is part of the journal
// identity even though the closures themselves cannot be fingerprinted.
func (m *Manager) sweepConfig(plan *jobPlan, spec *JobSpec) experiment.SweepConfig {
	return experiment.SweepConfig{
		Trials:       spec.Trials,
		Seed:         spec.Seed,
		Workers:      m.opts.TrialWorkers,
		PointWorkers: m.opts.PointWorkers,
		JournalLabel: plan.label,
	}
}

// Submit validates, registers and enqueues a job. The returned bool reports
// coalescing: true means the spec matched an active identical job and that
// job is returned instead of a new one.
func (m *Manager) Submit(spec JobSpec) (*Job, bool, error) {
	plan, err := spec.compile()
	if err != nil {
		return nil, false, err
	}
	cfg := m.sweepConfig(plan, &spec)
	fingerprint, _ := cfg.JournalFingerprint(plan.kind, plan.grid)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShuttingDown
	}
	if j, ok := m.inflight[fingerprint]; ok {
		m.coalesced++
		return j, true, nil
	}
	m.nextID++
	j := &Job{
		id:       fmt.Sprintf("job-%d", m.nextID),
		spec:     spec,
		plan:     plan,
		cfg:      cfg,
		state:    StateQueued,
		progress: Progress{Total: plan.grid.Len()},
		update:   make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.inflight[fingerprint] = j
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, j.id)
		delete(m.inflight, fingerprint)
		return nil, false, ErrQueueFull
	}
	return j, false, nil
}

// Job looks up a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Coalesced reports how many submissions were absorbed by active jobs.
func (m *Manager) Coalesced() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coalesced
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		// Check cancellation before draining the queue: once Close has
		// cancelled, queued jobs belong to Close's fail-them-all drain, and
		// a worker must not race it for them.
		select {
		case <-m.ctx.Done():
			return
		default:
		}
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job end to end: resolve cached points from the store into
// a resume stream, checkpoint fresh points back through it, and surface
// per-point progress.
func (m *Manager) run(j *Job) {
	j.setState(StateRunning)

	cfg := j.cfg
	resume, _, err := m.store.resumeFor(j.plan, cfg)
	if err != nil {
		m.finish(j, nil, err)
		return
	}
	cfg.Resume = resume
	cfg.Checkpoint, err = m.store.checkpointer(j.plan, cfg)
	if err != nil {
		m.finish(j, nil, err)
		return
	}
	cfg.PointDone = func(pt experiment.GridPoint, fromCache bool) {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.progress.Done++
		if fromCache {
			j.progress.Cached++
		}
		j.notifyLocked()
	}

	var result JobResult
	result.Kind = j.spec.Kind
	switch {
	case j.plan.trialBuild != nil:
		build := j.plan.trialBuild
		if m.opts.WrapTrialBuild != nil {
			build = m.opts.WrapTrialBuild(build)
		}
		results, err := experiment.SweepProportion(m.ctx, j.plan.grid, cfg, build)
		if err != nil {
			m.finish(j, nil, err)
			return
		}
		result.Points = proportionResults(results)
	case j.plan.campaign != nil:
		results, err := experiment.SweepCampaign(m.ctx, j.plan.grid, cfg, *j.plan.campaign)
		if err != nil {
			m.finish(j, nil, err)
			return
		}
		result.VecPoints = vecResults(results)
	default:
		m.finish(j, nil, errors.New("sweepserve: job plan has no runner"))
		return
	}
	m.finish(j, &result, nil)
}

// finish moves a job to its terminal state and retires its fingerprint from
// the coalescing table.
func (m *Manager) finish(j *Job, result *JobResult, err error) {
	fingerprint, _ := j.cfg.JournalFingerprint(j.plan.kind, j.plan.grid)
	m.mu.Lock()
	if m.inflight[fingerprint] == j {
		delete(m.inflight, fingerprint)
	}
	m.mu.Unlock()

	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.state = StateFailed
		j.err = err
	} else {
		j.state = StateDone
		j.result = result
	}
	j.notifyLocked()
}
