package sweepserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/secure-wsn/qcomposite/internal/experiment"
)

// Client is a typed client for a sweep server. Zero value is unusable; fill
// Base (e.g. "http://127.0.0.1:8080"). HTTP defaults to
// http.DefaultClient.
type Client struct {
	Base string
	HTTP *http.Client
	// Poll is the Wait polling interval; zero means 50ms.
	Poll time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeError maps non-2xx responses back to errors — structured 400s
// surface as *SpecError, so callers (and tests) can inspect the offending
// field across the wire.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode == http.StatusBadRequest {
		var spec SpecError
		if err := json.Unmarshal(body, &spec); err == nil && spec.Field != "" {
			return &spec
		}
	}
	var generic struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &generic); err == nil && generic.Error != "" {
		return fmt.Errorf("sweepserve: server returned %s: %s", resp.Status, generic.Error)
	}
	return fmt.Errorf("sweepserve: server returned %s", resp.Status)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the server's acknowledgement.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (SubmitResponse, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return SubmitResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return SubmitResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return SubmitResponse{}, decodeError(resp)
	}
	var ack SubmitResponse
	return ack, json.NewDecoder(resp.Body).Decode(&ack)
}

// Status polls a job's status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	return st, c.get(ctx, "/v1/jobs/"+id, &st)
}

// Wait polls until the job reaches a terminal state, then returns its final
// status. A failed job is NOT an error here — inspect Status.State; Wait
// errors mean the waiting itself broke (context, transport).
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result fetches a finished job's result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var jr JobResult
	if err := c.get(ctx, "/v1/jobs/"+id+"/result", &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// CSV fetches a finished job's result rendered as CSV.
func (c *Client) CSV(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/result?format=csv", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Stats fetches server statistics.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	return st, c.get(ctx, "/v1/stats", &st)
}

// RunProportion is the whole client arc for proportion-kind jobs: submit,
// wait, fetch, and rehydrate engine-level sweep results — the drop-in
// replacement for a local experiment sweep call that remote-mode commands
// (designer -server, kstar -server) build on.
func (c *Client) RunProportion(ctx context.Context, spec JobSpec) ([]experiment.ProportionResult, error) {
	ack, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	st, err := c.Wait(ctx, ack.ID)
	if err != nil {
		return nil, err
	}
	if st.State == StateFailed {
		return nil, fmt.Errorf("sweepserve: job %s failed: %s", st.ID, st.Error)
	}
	jr, err := c.Result(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	return jr.Proportions(), nil
}
