package sweepserve

import (
	"fmt"
	"io"

	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

// wilsonZ is the interval width of reported proportion estimates (95%).
const wilsonZ = 1.96

// PointResult is one proportion-valued grid point in a job result: the point
// parameters, the raw counts (sufficient to reconstruct the estimate
// exactly), and the derived estimate with its 95% Wilson interval.
type PointResult struct {
	Index     int     `json:"index"`
	K         int     `json:"k"`
	Q         int     `json:"q"`
	P         float64 `json:"p"`
	X         float64 `json:"x"`
	Successes int     `json:"successes"`
	Trials    int     `json:"trials"`
	Estimate  float64 `json:"estimate"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
}

// VecComponent is one component of a vector-valued point: its mean and
// ±1.96·stderr band.
type VecComponent struct {
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
}

// VecPointResult is one vector-valued grid point (campaign jobs).
type VecPointResult struct {
	Index  int            `json:"index"`
	K      int            `json:"k"`
	Q      int            `json:"q"`
	P      float64        `json:"p"`
	X      float64        `json:"x"`
	Trials int            `json:"trials"`
	Values []VecComponent `json:"values"`
}

// JobResult is the terminal payload of a finished job: exactly one of
// Points/VecPoints is populated, per the job's kind.
type JobResult struct {
	Kind      string           `json:"kind"`
	Points    []PointResult    `json:"points,omitempty"`
	VecPoints []VecPointResult `json:"vecPoints,omitempty"`
}

func proportionResults(results []experiment.ProportionResult) []PointResult {
	out := make([]PointResult, len(results))
	for i, r := range results {
		lo, hi := r.Value.WilsonInterval(wilsonZ)
		out[i] = PointResult{
			Index: r.Point.Index,
			K:     r.Point.K, Q: r.Point.Q, P: r.Point.P, X: r.Point.X,
			Successes: r.Value.Successes,
			Trials:    r.Value.Trials,
			Estimate:  r.Value.Estimate(),
			Lo:        lo, Hi: hi,
		}
	}
	return out
}

func vecResults(results []experiment.MeanVecResult) []VecPointResult {
	out := make([]VecPointResult, len(results))
	for i, r := range results {
		vals := make([]VecComponent, len(r.Values))
		trials := 0
		for j, s := range r.Values {
			vals[j] = VecComponent{Mean: s.Mean(), StdErr: s.StdErr()}
			trials = s.N()
		}
		out[i] = VecPointResult{
			Index: r.Point.Index,
			K:     r.Point.K, Q: r.Point.Q, P: r.Point.P, X: r.Point.X,
			Trials: trials,
			Values: vals,
		}
	}
	return out
}

// Proportions reconstructs the engine-level sweep results, bit-identical to
// what the offline experiment.SweepProportion call would have returned:
// round-tripping through the server loses nothing.
func (jr *JobResult) Proportions() []experiment.ProportionResult {
	out := make([]experiment.ProportionResult, len(jr.Points))
	for i, p := range jr.Points {
		out[i] = experiment.ProportionResult{
			Point: experiment.GridPoint{Index: p.Index, K: p.K, Q: p.Q, P: p.P, X: p.X},
			Value: stats.Proportion{Successes: p.Successes, Trials: p.Trials},
		}
	}
	return out
}

// campaignColumns names the campaign vector components, in index order.
var campaignColumns = [experiment.CampaignDims]string{
	experiment.CampaignSecureFrac:      "secure_frac",
	experiment.CampaignCompromisedFrac: "compromised_frac",
	experiment.CampaignAliveFrac:       "alive_frac",
	experiment.CampaignKeysFrac:        "keys_frac",
}

// RenderCSV writes the result as CSV through the experiment package's shared
// Table renderer — the same bytes an offline run rendering its results
// through experiment.Table would produce, which is what makes the
// restart-resume equivalence test a byte comparison.
func (jr *JobResult) RenderCSV(w io.Writer) error {
	if jr.VecPoints != nil {
		t := experiment.NewTable(append([]string{"k", "q", "p", "x", "trials"}, campaignColumns[:]...)...)
		for _, r := range jr.VecPoints {
			row := []string{
				fmt.Sprintf("%d", r.K),
				fmt.Sprintf("%d", r.Q),
				fmt.Sprintf("%g", r.P),
				fmt.Sprintf("%g", r.X),
				fmt.Sprintf("%d", r.Trials),
			}
			for _, v := range r.Values {
				row = append(row, fmt.Sprintf("%.6f±%.6f", v.Mean, wilsonZ*v.StdErr))
			}
			t.AddRow(row...)
		}
		return t.RenderCSV(w)
	}
	t := experiment.NewTable("k", "q", "p", "x", "successes", "trials", "estimate", "lo95", "hi95")
	for _, r := range jr.Points {
		t.AddRow(
			fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%d", r.Q),
			fmt.Sprintf("%g", r.P),
			fmt.Sprintf("%g", r.X),
			fmt.Sprintf("%d", r.Successes),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%.6f", r.Estimate),
			fmt.Sprintf("%.6f", r.Lo),
			fmt.Sprintf("%.6f", r.Hi),
		)
	}
	return t.RenderCSV(w)
}
