// Coverage companions to the integration suite: the job kinds and channel
// families the headline tests don't reach (design, kstar, heterogeneous
// schemes, disk/alwayson channels), CSV rendering of both result shapes, and
// the server's error surfaces.
package sweepserve_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// TestDesignKindMatchesDesignerSweep pins kind "design" to the sweep
// cmd/designer runs locally: same derived Xs axis, same DesignK ring per
// level, DeepEqual results.
func TestDesignKindMatchesDesignerSweep(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	const (
		n, pool = 80, 400
		target  = 0.9
		kmax    = 2
	)
	got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
		Kind: sweepserve.KindDesign, Sensors: n, Pool: pool,
		Trials: testTrials, Seed: testSeed, Target: target, KMax: kmax,
		Grid: sweepserve.GridSpec{Qs: []int{1}, Ps: []float64{0.8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := experiment.Grid{Qs: []int{1}, Ps: []float64{0.8}, Xs: experiment.KLevels(kmax)}
	want, err := experiment.SweepKConnectivity(ctx, grid,
		experiment.SweepConfig{Trials: testTrials, Seed: testSeed},
		func(pt experiment.GridPoint) (wsn.Config, error) {
			k, err := experiment.KOf(pt)
			if err != nil {
				return wsn.Config{}, err
			}
			ring, err := core.DesignK(n, pool, pt.Q, pt.P, k, target)
			if err != nil {
				return wsn.Config{}, err
			}
			scheme, err := keys.NewQComposite(pool, ring, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("design job differs from designer's local sweep:\n got %+v\nwant %+v", got, want)
	}
}

// TestKStarKindMatchesKstarSweep pins kind "kstar" to the sweep cmd/kstar
// runs locally: deploy at the exact eq. (9) threshold, full-deployment
// IsConnected trials, DeepEqual results.
func TestKStarKindMatchesKstarSweep(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	const n, pool = 80, 400
	qs, ps := []int{1, 2}, []float64{1, 0.5}
	got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
		Kind: sweepserve.KindKStar, Sensors: n, Pool: pool,
		Trials: testTrials, Seed: testSeed,
		Grid: sweepserve.GridSpec{Qs: qs, Ps: ps},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.SweepProportion(ctx, experiment.Grid{Qs: qs, Ps: ps},
		experiment.SweepConfig{Trials: testTrials, Seed: testSeed},
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			exact, err := core.ThresholdK(n, pool, pt.Q, pt.P)
			if err != nil {
				return nil, err
			}
			scheme, err := keys.NewQComposite(pool, exact, pt.Q)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}})
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return false, err
				}
				return net.IsConnected()
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("kstar job differs from kstar's local sweep:\n got %+v\nwant %+v", got, want)
	}
}

// TestChannelAndSchemeVariants runs one small job per channel family and per
// scheme family against its offline twin: the spec layer must assemble the
// same models the engine builds directly.
func TestChannelAndSchemeVariants(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	cfg := experiment.SweepConfig{Trials: testTrials, Seed: testSeed}

	t.Run("fixed onoff", func(t *testing.T) {
		p := 0.7
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindConnectivity, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed,
			Grid:    sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}},
			Channel: &sweepserve.ChannelSpec{Type: "onoff", P: &p},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := offline(t, experiment.Grid{Ks: []int{9}, Qs: []int{1}}, cfg, func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.OnOff{P: p}}, nil
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fixed-onoff job differs from offline sweep")
		}
	})

	t.Run("alwayson", func(t *testing.T) {
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindConnectivity, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed,
			Grid:    sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}},
			Channel: &sweepserve.ChannelSpec{Type: "alwayson"},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := offline(t, experiment.Grid{Ks: []int{9}, Qs: []int{1}}, cfg, func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.AlwaysOn{}}, nil
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("alwayson job differs from offline sweep")
		}
	})

	t.Run("disk", func(t *testing.T) {
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindConnectivity, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed,
			Grid:    sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}},
			Channel: &sweepserve.ChannelSpec{Type: "disk", Radius: 0.4, Torus: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := offline(t, experiment.Grid{Ks: []int{9}, Qs: []int{1}}, cfg, func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.Disk{Radius: 0.4, Torus: true}}, nil
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("disk job differs from offline sweep")
		}
	})

	t.Run("heterogeneous scheme with heteronoff channel", func(t *testing.T) {
		classes := []sweepserve.ClassSpec{{Mu: 0.5, Ring: 6}, {Mu: 0.5, Ring: 12}}
		on := [][]float64{{0.9, 0.6}, {0.6, 0.3}}
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindConnectivity, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed,
			Grid:    sweepserve.GridSpec{Qs: []int{1}},
			Classes: classes,
			Channel: &sweepserve.ChannelSpec{Type: "heteronoff", On: on},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := offline(t, experiment.Grid{Qs: []int{1}}, cfg, func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewHeterogeneous(testPool, pt.Q, []keys.Class{
				{Mu: 0.5, RingSize: 6}, {Mu: 0.5, RingSize: 12},
			})
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.HeterOnOff{P: on}}, nil
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("heterogeneous job differs from offline sweep")
		}
	})
}

func offline(t *testing.T, grid experiment.Grid, cfg experiment.SweepConfig,
	build func(pt experiment.GridPoint) (wsn.Config, error)) []experiment.ProportionResult {
	t.Helper()
	results, err := experiment.SweepConnectivity(context.Background(), grid, cfg, build)
	if err != nil {
		t.Fatalf("offline reference sweep failed: %v", err)
	}
	return results
}

// TestCSVRendering exercises both result shapes through the CSV endpoint:
// proportion tables carry counts + Wilson interval, campaign tables one
// column per outcome component.
func TestCSVRendering(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()

	ack, err := env.client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Wait(ctx, ack.ID); err != nil {
		t.Fatal(err)
	}
	csv, err := env.client.CSV(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(csv), "\n", 2)[0]
	for _, col := range []string{"k", "q", "p", "x", "successes", "trials", "estimate", "lo95", "hi95"} {
		if !strings.Contains(head, col) {
			t.Errorf("proportion CSV header %q missing %q", head, col)
		}
	}
	if rows := strings.Count(strings.TrimSpace(string(csv)), "\n"); rows != 1 {
		t.Errorf("proportion CSV has %d data rows, want 1", rows)
	}

	ack2, err := env.client.Submit(ctx, sweepserve.JobSpec{
		Kind: sweepserve.KindCampaign, Sensors: testSensors, Pool: testPool,
		Trials: testTrials, Seed: testSeed, Timeline: "capture:3",
		Grid: sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.8}, Xs: []float64{0, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := env.client.Wait(ctx, ack2.ID); err != nil || st.State != sweepserve.StateDone {
		t.Fatalf("campaign job: %+v, %v", st, err)
	}
	csv2, err := env.client.CSV(ctx, ack2.ID)
	if err != nil {
		t.Fatal(err)
	}
	head2 := strings.SplitN(string(csv2), "\n", 2)[0]
	for _, col := range []string{"secure_frac", "compromised_frac", "alive_frac", "keys_frac"} {
		if !strings.Contains(head2, col) {
			t.Errorf("campaign CSV header %q missing %q", head2, col)
		}
	}
	if rows := strings.Count(strings.TrimSpace(string(csv2)), "\n"); rows != 2 {
		t.Errorf("campaign CSV has %d data rows, want 2 (budgets 0 and 3)", rows)
	}
}

// TestServerErrorSurfaces walks the HTTP error paths: unknown jobs are 404,
// results of unfinished jobs are 409, failed jobs surface their error, and
// SpecError's Error() names the field for non-HTTP consumers.
func TestServerErrorSurfaces(t *testing.T) {
	failErr := errors.New("deliberate mid-sweep failure")
	env := newEnv(t, sweepserve.Options{
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				if pt.P > 0.6 { // fail only the marked job's points
					return nil, failErr
				}
				return build(pt)
			}
		},
	})
	ctx := context.Background()

	if _, err := env.client.Status(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job status error = %v, want a 404", err)
	}
	if _, err := env.client.Result(ctx, "job-999"); err == nil {
		t.Error("unknown job result returned no error")
	}

	ack, err := env.client.Submit(ctx, connectivitySpec([]int{6}, []float64{0.9}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := env.client.Wait(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != sweepserve.StateFailed {
		t.Fatalf("sabotaged job ended %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deliberate mid-sweep failure") {
		t.Errorf("failed job's status error %q does not surface the cause", st.Error)
	}
	if _, err := env.client.Result(ctx, ack.ID); err == nil {
		t.Error("failed job's result returned no error")
	}
	if _, err := env.client.CSV(ctx, ack.ID); err == nil {
		t.Error("failed job's CSV returned no error")
	}

	specErr := &sweepserve.SpecError{Field: "trials", Msg: "must be positive"}
	if msg := specErr.Error(); !strings.Contains(msg, "trials") || !strings.Contains(msg, "must be positive") {
		t.Errorf("SpecError.Error() = %q", msg)
	}

	// A healthy server still answers healthz while jobs fail.
	resp, err := env.http.Client().Get(env.http.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestStoreRoundTripAcrossKinds: points of different kinds and labels under
// one journal file stay separate — a kstar point never satisfies a
// connectivity lookup, even at identical grid coordinates.
func TestStoreSeparatesKindsAndLabels(t *testing.T) {
	dir := t.TempDir()
	store, err := sweepserve.OpenStore(dir + "/shared.journal")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	env := newEnv(t, sweepserve.Options{Store: store})
	ctx := context.Background()

	// Two kinds over the same (q, p) coordinates.
	if _, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
		Kind: sweepserve.KindKStar, Sensors: 80, Pool: 400,
		Trials: testTrials, Seed: testSeed,
		Grid: sweepserve.GridSpec{Qs: []int{1}, Ps: []float64{0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
		Kind: sweepserve.KindConnectivity, Sensors: 80, Pool: 400,
		Trials: testTrials, Seed: testSeed,
		Grid: sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Points != 2 || st.Hits != 0 {
		t.Errorf("store stats %+v: want 2 distinct points, 0 cross-kind hits", st)
	}
}

// TestResultRoundTripsThroughJSON: the client-side reconstruction is exact —
// Proportions() rebuilt from the wire equals the engine's structs, and the
// derived estimate columns agree with the raw counts.
func TestResultRoundTripsThroughJSON(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	ack, err := env.client.Submit(ctx, connectivitySpec([]int{6, 9}, []float64{0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.client.Wait(ctx, ack.ID); err != nil {
		t.Fatal(err)
	}
	jr, err := env.client.Result(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range jr.Points {
		if p.Trials != testTrials {
			t.Errorf("point %+v trials %d, want %d", p, p.Trials, testTrials)
		}
		if want := float64(p.Successes) / float64(p.Trials); p.Estimate != want {
			t.Errorf("point estimate %v does not equal successes/trials %v", p.Estimate, want)
		}
		if p.Lo > p.Estimate || p.Hi < p.Estimate {
			t.Errorf("interval [%v, %v] does not bracket estimate %v", p.Lo, p.Hi, p.Estimate)
		}
	}
	var buf bytes.Buffer
	if err := jr.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("CSV line count %d, want 3 (header + 2 points)", got)
	}
}
