package sweepserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/experiment"
)

// pointKey is the identity of one computed grid point across jobs: the
// sweep-identity fields of its journal section (kind, label, trials) plus the
// point's parameters and its parameter-derived seed. Worker counts and grid
// shape are deliberately absent — a point computed inside a 100-point grid is
// byte-identical to the same point computed alone, so overlapping grids share
// cache entries. The seed already folds in the sweep's base seed
// (experiment.SweepConfig.PointSeed), so jobs with different base seeds never
// collide.
type pointKey struct {
	kind   string
	label  string
	trials int
	seed   uint64
	k, q   int
	pbits  uint64
	xbits  uint64
}

func keyFor(kind, label string, trials int, p experiment.JournalPointInfo) pointKey {
	return pointKey{
		kind:   kind,
		label:  label,
		trials: trials,
		seed:   p.Seed,
		k:      p.K,
		q:      p.Q,
		pbits:  math.Float64bits(p.P),
		xbits:  math.Float64bits(p.X),
	}
}

// StoreStats is a snapshot of the store's cache accounting.
type StoreStats struct {
	// Points is the number of distinct cached point results.
	Points int `json:"points"`
	// Hits and Misses count per-point cache lookups across all jobs: a hit
	// is a point resolved from the store, a miss a point that had to run.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Restored is how many points were loaded from the journal file at
	// open, i.e. survived a server restart.
	Restored int `json:"restored"`
}

// Store is the shared, journal-backed result cache. Every completed grid
// point — whatever job computed it — lands here keyed by pointKey; jobs
// resolve their cached points into a synthesized experiment resume stream
// before running, so only genuinely new points execute. When opened on a
// file, the PR-8 checkpoint-journal format doubles as the persistence layer:
// each fresh point appends one journal line, and reopening the file after a
// restart restores every completed point — the journal file IS the cache.
type Store struct {
	mu     sync.Mutex
	points map[pointKey]json.RawMessage
	file   *os.File // nil for a memory-only store
	// fileFP is the fingerprint of the section header most recently written
	// to the file. Concurrent jobs share the one file, so their sections
	// interleave; a point line is only appended when the file's current
	// section is its own (storeWriter re-emits the job's header otherwise),
	// which keeps restore()'s header-then-points attribution correct.
	fileFP string

	hits, misses, restored int
}

// NewStore returns a memory-only store: dedupe across jobs within one server
// lifetime, nothing persisted.
func NewStore() *Store {
	return &Store{points: map[pointKey]json.RawMessage{}}
}

// OpenStore opens (creating if needed) a journal-file-backed store. Existing
// sections are scanned for completed points: headers establish the section's
// (kind, label, trials) context, point lines under a known header are
// restored, and sections from journals written before headers carried
// structured fields are skipped (their identity cannot be established). A
// truncated final line — the signature of a kill mid-append — is tolerated
// AND cut off the file before appends resume: left in place, the next
// checkpoint would concatenate a complete record onto the torn partial line
// and the restart after that would read a malformed record mid-file.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepserve: opening result store: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweepserve: reading result store: %w", err)
	}
	s := &Store{points: map[pointKey]json.RawMessage{}, file: f}
	keep, err := s.restore(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	if keep < len(data) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweepserve: truncating torn final record: %w", err)
		}
	}
	s.restored = len(s.points)
	return s, nil
}

// restore scans the journal bytes into the point map and returns the length
// of the valid prefix. A malformed final line — the append a kill cut off —
// is excluded from the prefix so OpenStore can truncate it away; a malformed
// record followed by more content is corruption and fails loudly.
func (s *Store) restore(data []byte) (int, error) {
	var kind, label string
	trials := 0
	known := false
	for off := 0; off < len(data); {
		next := len(data)
		raw := data[off:]
		if i := bytes.IndexByte(raw, '\n'); i >= 0 {
			raw = raw[:i]
			next = off + i + 1
		}
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			off = next
			continue
		}
		h, p, err := experiment.ParseJournalRecord(line)
		if err != nil {
			if len(bytes.TrimSpace(data[next:])) > 0 {
				return 0, fmt.Errorf("sweepserve: result store corrupt (malformed record mid-file): %w", err)
			}
			return off, nil
		}
		switch {
		case h != nil:
			kind, label, trials = h.Kind, h.Label, h.Trials
			known = h.Kind != "" // pre-structured-header sections are unidentifiable
			s.fileFP = h.Fingerprint
		case p != nil && known:
			key := keyFor(kind, label, trials, *p)
			if _, dup := s.points[key]; !dup {
				s.points[key] = append(json.RawMessage(nil), p.Value...)
			}
		}
		off = next
	}
	return len(data), nil
}

// Close releases the backing file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Stats snapshots the cache accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Points: len(s.points), Hits: s.hits, Misses: s.misses, Restored: s.restored}
}

// sectionHeader renders one job's journal section header and its
// fingerprint — shared by resumeFor (synthesized resume streams) and
// checkpointer (headers re-emitted when concurrent jobs interleave appends).
func sectionHeader(plan *jobPlan, cfg experiment.SweepConfig) (fingerprint string, header []byte, err error) {
	fingerprint, spec := cfg.JournalFingerprint(plan.kind, plan.grid)
	header, err = experiment.MarshalJournalHeader(experiment.JournalHeaderInfo{
		Fingerprint: fingerprint,
		Spec:        spec,
		Code:        experiment.CodeVersion,
		Kind:        plan.kind,
		Label:       cfg.JournalLabel,
		Trials:      cfg.Trials,
		Seed:        cfg.Seed,
	})
	return fingerprint, header, err
}

// resumeFor synthesizes the experiment resume stream of one job: a section
// header carrying the job's own fingerprint followed by every cached point
// that lies on the job's grid, rendered through the exported journal
// marshallers so SweepConfig.Resume accepts it verbatim. Returns the stream
// and the number of cache hits (misses — points the job must compute — are
// grid.Len() − hits; both are tallied into the store stats).
func (s *Store) resumeFor(plan *jobPlan, cfg experiment.SweepConfig) (io.Reader, int, error) {
	_, header, err := sectionHeader(plan, cfg)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	buf.Write(header)

	s.mu.Lock()
	defer s.mu.Unlock()
	hits := 0
	for _, pt := range plan.grid.Points() {
		info := experiment.JournalPointInfo{
			K: pt.K, Q: pt.Q, P: pt.P, X: pt.X,
			Seed: cfg.PointSeed(pt),
		}
		value, ok := s.points[keyFor(plan.kind, cfg.JournalLabel, cfg.Trials, info)]
		if !ok {
			s.misses++
			continue
		}
		s.hits++
		hits++
		info.Value = value
		line, err := experiment.MarshalJournalPoint(info)
		if err != nil {
			return nil, 0, err
		}
		buf.Write(line)
	}
	return &buf, hits, nil
}

// checkpointer returns the job's Checkpoint sink: every line the sweep
// writes is ingested into the in-memory map (so concurrent and later jobs
// see the point immediately) and appended to the journal file when the
// store is file-backed (so the point survives restarts). The journalWriter
// contract — one complete record per Write call — is what makes live
// ingestion line-by-line safe.
func (s *Store) checkpointer(plan *jobPlan, cfg experiment.SweepConfig) (io.Writer, error) {
	fingerprint, header, err := sectionHeader(plan, cfg)
	if err != nil {
		return nil, err
	}
	return &storeWriter{
		store: s, kind: plan.kind, label: cfg.JournalLabel, trials: cfg.Trials,
		fingerprint: fingerprint, header: header,
	}, nil
}

type storeWriter struct {
	store  *Store
	kind   string
	label  string
	trials int
	// fingerprint and header identify this job's journal section; the header
	// line is re-emitted whenever another job's section holds the file's
	// tail, so every contiguous run of point lines sits under its own header
	// even when concurrent jobs interleave appends.
	fingerprint string
	header      []byte
}

func (w *storeWriter) Write(line []byte) (int, error) {
	s := w.store
	s.mu.Lock()
	defer s.mu.Unlock()
	h, p, err := experiment.ParseJournalRecord(bytes.TrimSpace(line))
	if err != nil {
		return 0, fmt.Errorf("sweepserve: checkpoint line does not parse: %w", err)
	}
	if s.file != nil {
		if p != nil && s.fileFP != w.fingerprint {
			if _, err := s.file.Write(w.header); err != nil {
				return 0, fmt.Errorf("sweepserve: appending to result store: %w", err)
			}
			s.fileFP = w.fingerprint
		}
		if _, err := s.file.Write(line); err != nil {
			return 0, fmt.Errorf("sweepserve: appending to result store: %w", err)
		}
		if h != nil {
			s.fileFP = h.Fingerprint
		}
	}
	if p != nil {
		key := keyFor(w.kind, w.label, w.trials, *p)
		if _, dup := s.points[key]; !dup {
			s.points[key] = append(json.RawMessage(nil), p.Value...)
		}
	}
	return len(line), nil
}
