package sweepserve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/experiment"
)

// pointKey is the identity of one computed grid point across jobs: the
// sweep-identity fields of its journal section (kind, label, trials) plus the
// point's parameters and its parameter-derived seed. Worker counts and grid
// shape are deliberately absent — a point computed inside a 100-point grid is
// byte-identical to the same point computed alone, so overlapping grids share
// cache entries. The seed already folds in the sweep's base seed
// (experiment.SweepConfig.PointSeed), so jobs with different base seeds never
// collide.
type pointKey struct {
	kind   string
	label  string
	trials int
	seed   uint64
	k, q   int
	pbits  uint64
	xbits  uint64
}

func keyFor(kind, label string, trials int, p experiment.JournalPointInfo) pointKey {
	return pointKey{
		kind:   kind,
		label:  label,
		trials: trials,
		seed:   p.Seed,
		k:      p.K,
		q:      p.Q,
		pbits:  math.Float64bits(p.P),
		xbits:  math.Float64bits(p.X),
	}
}

// StoreStats is a snapshot of the store's cache accounting.
type StoreStats struct {
	// Points is the number of distinct cached point results.
	Points int `json:"points"`
	// Hits and Misses count per-point cache lookups across all jobs: a hit
	// is a point resolved from the store, a miss a point that had to run.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Restored is how many points were loaded from the journal file at
	// open, i.e. survived a server restart.
	Restored int `json:"restored"`
}

// Store is the shared, journal-backed result cache. Every completed grid
// point — whatever job computed it — lands here keyed by pointKey; jobs
// resolve their cached points into a synthesized experiment resume stream
// before running, so only genuinely new points execute. When opened on a
// file, the PR-8 checkpoint-journal format doubles as the persistence layer:
// each fresh point appends one journal line, and reopening the file after a
// restart restores every completed point — the journal file IS the cache.
type Store struct {
	mu     sync.Mutex
	points map[pointKey]json.RawMessage
	file   *os.File // nil for a memory-only store

	hits, misses, restored int
}

// NewStore returns a memory-only store: dedupe across jobs within one server
// lifetime, nothing persisted.
func NewStore() *Store {
	return &Store{points: map[pointKey]json.RawMessage{}}
}

// OpenStore opens (creating if needed) a journal-file-backed store. Existing
// sections are scanned for completed points: headers establish the section's
// (kind, label, trials) context, point lines under a known header are
// restored, sections from journals written before headers carried structured
// fields are skipped (their identity cannot be established), and a truncated
// final line — the signature of a kill mid-append — is tolerated exactly as
// the experiment resume loader tolerates it.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepserve: opening result store: %w", err)
	}
	s := &Store{points: map[pointKey]json.RawMessage{}, file: f}
	if err := s.restore(f); err != nil {
		f.Close()
		return nil, err
	}
	s.restored = len(s.points)
	return s, nil
}

// restore scans an existing journal stream into the point map.
func (s *Store) restore(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var kind, label string
	trials := 0
	known := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		h, p, err := experiment.ParseJournalRecord(line)
		if err != nil {
			// A malformed line is only legal as the torn final append of a
			// killed server; anything followed by more data is corruption.
			if sc.Scan() {
				return fmt.Errorf("sweepserve: result store corrupt (malformed record mid-file): %w", err)
			}
			return nil
		}
		switch {
		case h != nil:
			kind, label, trials = h.Kind, h.Label, h.Trials
			known = h.Kind != "" // pre-structured-header sections are unidentifiable
		case p != nil && known:
			key := keyFor(kind, label, trials, *p)
			if _, dup := s.points[key]; !dup {
				s.points[key] = append(json.RawMessage(nil), p.Value...)
			}
		}
	}
	return sc.Err()
}

// Close releases the backing file, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

// Stats snapshots the cache accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Points: len(s.points), Hits: s.hits, Misses: s.misses, Restored: s.restored}
}

// resumeFor synthesizes the experiment resume stream of one job: a section
// header carrying the job's own fingerprint followed by every cached point
// that lies on the job's grid, rendered through the exported journal
// marshallers so SweepConfig.Resume accepts it verbatim. Returns the stream
// and the number of cache hits (misses — points the job must compute — are
// grid.Len() − hits; both are tallied into the store stats).
func (s *Store) resumeFor(plan *jobPlan, cfg experiment.SweepConfig) (io.Reader, int, error) {
	fingerprint, spec := cfg.JournalFingerprint(plan.kind, plan.grid)
	header, err := experiment.MarshalJournalHeader(experiment.JournalHeaderInfo{
		Fingerprint: fingerprint,
		Spec:        spec,
		Code:        experiment.CodeVersion,
		Kind:        plan.kind,
		Label:       cfg.JournalLabel,
		Trials:      cfg.Trials,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	buf.Write(header)

	s.mu.Lock()
	defer s.mu.Unlock()
	hits := 0
	for _, pt := range plan.grid.Points() {
		info := experiment.JournalPointInfo{
			K: pt.K, Q: pt.Q, P: pt.P, X: pt.X,
			Seed: cfg.PointSeed(pt),
		}
		value, ok := s.points[keyFor(plan.kind, cfg.JournalLabel, cfg.Trials, info)]
		if !ok {
			s.misses++
			continue
		}
		s.hits++
		hits++
		info.Value = value
		line, err := experiment.MarshalJournalPoint(info)
		if err != nil {
			return nil, 0, err
		}
		buf.Write(line)
	}
	return &buf, hits, nil
}

// checkpointer returns the job's Checkpoint sink: every line the sweep
// writes is ingested into the in-memory map (so concurrent and later jobs
// see the point immediately) and appended to the journal file when the
// store is file-backed (so the point survives restarts). The journalWriter
// contract — one complete record per Write call — is what makes live
// ingestion line-by-line safe.
func (s *Store) checkpointer(plan *jobPlan, cfg experiment.SweepConfig) io.Writer {
	return &storeWriter{store: s, kind: plan.kind, label: cfg.JournalLabel, trials: cfg.Trials}
}

type storeWriter struct {
	store  *Store
	kind   string
	label  string
	trials int
}

func (w *storeWriter) Write(line []byte) (int, error) {
	s := w.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file != nil {
		if _, err := s.file.Write(line); err != nil {
			return 0, fmt.Errorf("sweepserve: appending to result store: %w", err)
		}
	}
	_, p, err := experiment.ParseJournalRecord(bytes.TrimSpace(line))
	if err != nil {
		return 0, fmt.Errorf("sweepserve: checkpoint line does not parse: %w", err)
	}
	if p != nil {
		key := keyFor(w.kind, w.label, w.trials, *p)
		if _, dup := s.points[key]; !dup {
			s.points[key] = append(json.RawMessage(nil), p.Value...)
		}
	}
	return len(line), nil
}
