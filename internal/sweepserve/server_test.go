// The sweep-as-a-service integration suite: every test drives the server
// through real HTTP (httptest) with the exported client, and every
// correctness claim is anchored to the offline engine — server results must
// DeepEqual what a local experiment.Sweep* call computes, because the
// service's whole contract is "the same sweep, shared".
package sweepserve_test

import (
	"bufio"
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/faultinject"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// Test deployment parameters: small enough that a full grid runs in
// milliseconds, large enough that connectivity is genuinely probabilistic.
const (
	testSensors = 30
	testPool    = 150
	testTrials  = 12
	testSeed    = uint64(7)
)

// testEnv is one server stack: store → manager → HTTP server → client.
type testEnv struct {
	store   *sweepserve.Store
	manager *sweepserve.Manager
	http    *httptest.Server
	client  *sweepserve.Client
}

func newEnv(t *testing.T, opts sweepserve.Options) *testEnv {
	t.Helper()
	m := sweepserve.NewManager(opts)
	srv := httptest.NewServer(sweepserve.NewServer(m))
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return &testEnv{
		store:   m.Store(),
		manager: m,
		http:    srv,
		client:  &sweepserve.Client{Base: srv.URL, HTTP: srv.Client(), Poll: 5 * time.Millisecond},
	}
}

// connectivitySpec is the suite's bread-and-butter job: a figure1-style
// proportion sweep over (ring, p) with the rings on the Ks axis.
func connectivitySpec(ks []int, ps []float64) sweepserve.JobSpec {
	return sweepserve.JobSpec{
		Kind:    sweepserve.KindConnectivity,
		Sensors: testSensors,
		Pool:    testPool,
		Trials:  testTrials,
		Seed:    testSeed,
		Grid:    sweepserve.GridSpec{Ks: ks, Qs: []int{1}, Ps: ps},
	}
}

// offlineConnectivity runs the offline twin of connectivitySpec through the
// engine directly — the reference every server answer is compared against.
func offlineConnectivity(t *testing.T, ks []int, ps []float64) []experiment.ProportionResult {
	t.Helper()
	grid := experiment.Grid{Ks: ks, Qs: []int{1}, Ps: ps}
	results, err := experiment.SweepConnectivity(context.Background(), grid,
		experiment.SweepConfig{Trials: testTrials, Seed: testSeed},
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
		})
	if err != nil {
		t.Fatalf("offline reference sweep failed: %v", err)
	}
	return results
}

// TestConcurrentClientsOverlappingGrids is the tentpole's concurrency proof:
// 8 clients hammer one server (run it under -race) with overlapping grids.
// Every client's answer must DeepEqual its offline twin — concurrency and
// caching must never leak into results — and because job execution
// serializes on the default single job worker, the store's hit/miss split is
// exactly determined: misses = distinct points across all grids, hits =
// total grid points − distinct points (the overlap).
func TestConcurrentClientsOverlappingGrids(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})

	// 8 distinct grids sliding a 4-wide window over a shared Ps axis: heavy
	// pairwise overlap, no two identical (identical specs would coalesce and
	// blur the hit accounting tested here).
	masterPs := []float64{0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7}
	masterKs := []int{6, 9}
	type clientGrid struct {
		ks []int
		ps []float64
	}
	grids := make([]clientGrid, 8)
	for i := range grids {
		grids[i] = clientGrid{ks: masterKs, ps: masterPs[i : i+4]}
	}

	totalPoints, distinct := 0, map[[2]any]bool{}
	for _, g := range grids {
		totalPoints += len(g.ks) * len(g.ps)
		for _, k := range g.ks {
			for _, p := range g.ps {
				distinct[[2]any{k, p}] = true
			}
		}
	}

	results := make([][]experiment.ProportionResult, len(grids))
	errs := make([]error, len(grids))
	var wg sync.WaitGroup
	for i, g := range grids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = env.client.RunProportion(context.Background(), connectivitySpec(g.ks, g.ps))
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d failed: %v", i, err)
		}
	}
	for i, g := range grids {
		want := offlineConnectivity(t, g.ks, g.ps)
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("client %d: server results differ from offline sweep\n got %+v\nwant %+v", i, results[i], want)
		}
	}

	st := env.store.Stats()
	wantMisses := len(distinct)
	wantHits := totalPoints - wantMisses
	if st.Misses != wantMisses || st.Hits != wantHits {
		t.Errorf("store hits/misses = %d/%d, want %d/%d (each distinct point computed exactly once)",
			st.Hits, st.Misses, wantHits, wantMisses)
	}
	if st.Points != wantMisses {
		t.Errorf("store holds %d points, want %d", st.Points, wantMisses)
	}
	if frac := float64(st.Hits) / float64(totalPoints); frac < 0.5 {
		t.Errorf("cache hit fraction %.2f below the grids' overlap fraction", frac)
	}
}

// TestCoalescingIdenticalJobs: identical specs submitted while the first is
// active collapse onto one job ID and one execution.
func TestCoalescingIdenticalJobs(t *testing.T) {
	release := make(chan struct{})
	var started sync.Once
	startedCh := make(chan struct{})
	env := newEnv(t, sweepserve.Options{
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				started.Do(func() { close(startedCh) })
				<-release // hold the job open so later submissions land mid-flight
				return build(pt)
			}
		},
	})

	ctx := context.Background()
	spec := connectivitySpec([]int{6}, []float64{0.5})
	first, err := env.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	<-startedCh
	second, err := env.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Coalesced || second.ID != first.ID {
		t.Errorf("identical in-flight spec got job %+v, want coalesced onto %s", second, first.ID)
	}
	// A different spec must NOT coalesce.
	other, err := env.client.Submit(ctx, connectivitySpec([]int{9}, []float64{0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if other.Coalesced || other.ID == first.ID {
		t.Errorf("distinct spec coalesced: %+v", other)
	}
	close(release)
	if st, err := env.client.Wait(ctx, first.ID); err != nil || st.State != sweepserve.StateDone {
		t.Fatalf("job did not finish cleanly: %+v, %v", st, err)
	}
	stats, err := env.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Coalesced != 1 {
		t.Errorf("server reports %d coalesced submissions, want 1", stats.Coalesced)
	}
}

// TestRestartResume is the satellite's crash story, end to end: a delay
// fault wedges the last grid point, the server is torn down mid-grid
// (exactly what the SIGTERM drain path does), a new server starts on the
// same journal file, and the re-submitted job must (a) restore every
// completed point from the journal — zero recomputation — and (b) produce
// CSV bytes identical to a server that never died.
func TestRestartResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "store.journal")
	spec := connectivitySpec([]int{6, 9}, []float64{0.3, 0.6, 0.9})
	total := 6
	wedged := experiment.Grid{Ks: []int{6, 9}, Qs: []int{1}, Ps: []float64{0.3, 0.6, 0.9}}.Points()[total-1]

	// Life 1: sequential points, serial trials, and a 50ms-per-trial delay
	// fault on the final point only — by the time the injector slows it
	// down, every other point is already journaled.
	store1, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatal(err)
	}
	injector := faultinject.New(faultinject.Config{Seed: 1, TrialDelayProb: 1, Delay: 50 * time.Millisecond})
	m1 := sweepserve.NewManager(sweepserve.Options{
		Store:        store1,
		TrialWorkers: 1,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			slow := injector.ProportionBuild(build)
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				if pt.Index == wedged.Index {
					return slow(pt)
				}
				return build(pt)
			}
		},
	})
	srv1 := httptest.NewServer(sweepserve.NewServer(m1))
	client1 := &sweepserve.Client{Base: srv1.URL, HTTP: srv1.Client(), Poll: 2 * time.Millisecond}

	ctx := context.Background()
	ack, err := client1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := client1.Status(ctx, ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Progress.Done == total-1 {
			break
		}
		if st.State == sweepserve.StateDone || st.State == sweepserve.StateFailed {
			t.Fatalf("job reached %s before the wedge engaged: %+v", st.State, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %d completed points: %+v", total-1, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The job is inside the wedged point's delayed trials. Tear the server
	// down the way the SIGTERM drain does: cancel running sweeps, wait for
	// the drain, close the journal.
	srv1.Close()
	m1.Close()
	store1.Close()
	st, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("journal empty after shutdown — completed points were not persisted")
	}

	// Life 2: same journal, no faults. The re-submitted job must restore
	// all total−1 completed points and compute exactly the wedged one.
	store2, err := sweepserve.OpenStore(journal)
	if err != nil {
		t.Fatal(err)
	}
	if got := store2.Stats().Restored; got != total-1 {
		t.Fatalf("restart restored %d points, want %d", got, total-1)
	}
	var rebuilt []experiment.GridPoint
	var mu sync.Mutex
	m2 := sweepserve.NewManager(sweepserve.Options{
		Store: store2,
		WrapTrialBuild: func(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				mu.Lock()
				rebuilt = append(rebuilt, pt)
				mu.Unlock()
				return build(pt)
			}
		},
	})
	srv2 := httptest.NewServer(sweepserve.NewServer(m2))
	defer func() {
		srv2.Close()
		m2.Close()
		store2.Close()
	}()
	client2 := &sweepserve.Client{Base: srv2.URL, HTTP: srv2.Client(), Poll: 2 * time.Millisecond}

	ack2, err := client2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := client2.Wait(ctx, ack2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != sweepserve.StateDone {
		t.Fatalf("resumed job ended %s: %+v", final.State, final)
	}
	if final.Progress.Cached != total-1 {
		t.Errorf("resumed job restored %d points from the journal, want %d", final.Progress.Cached, total-1)
	}
	if len(rebuilt) != 1 || rebuilt[0].Index != wedged.Index {
		t.Errorf("restart recomputed points %v, want exactly the wedged point %v", rebuilt, wedged)
	}
	gotCSV, err := client2.CSV(ctx, ack2.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The uninterrupted reference: a fresh memory-only server runs the same
	// spec start to finish. Byte-identical CSV is the claim.
	clean := newEnv(t, sweepserve.Options{})
	ack3, err := clean.client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := clean.client.Wait(ctx, ack3.ID); err != nil || st.State != sweepserve.StateDone {
		t.Fatalf("clean run did not finish: %+v, %v", st, err)
	}
	wantCSV, err := clean.client.CSV(ctx, ack3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("restart-resumed CSV differs from uninterrupted run\n got:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}
}

// TestSpecValidation is the satellite's malformed-spec table: every bad spec
// must come back as a structured 400 naming the offending field — the
// difference between an API and a stack trace.
func TestSpecValidation(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	base := func() sweepserve.JobSpec { return connectivitySpec([]int{6}, []float64{0.5}) }

	cases := []struct {
		name   string
		mutate func(*sweepserve.JobSpec)
		field  string
	}{
		{"unknown kind", func(s *sweepserve.JobSpec) { s.Kind = "warp" }, "kind"},
		{"missing kind", func(s *sweepserve.JobSpec) { s.Kind = "" }, "kind"},
		{"zero trials", func(s *sweepserve.JobSpec) { s.Trials = 0 }, "trials"},
		{"negative trials", func(s *sweepserve.JobSpec) { s.Trials = -5 }, "trials"},
		{"zero sensors", func(s *sweepserve.JobSpec) { s.Sensors = 0 }, "sensors"},
		{"zero pool", func(s *sweepserve.JobSpec) { s.Pool = 0 }, "pool"},
		{"twice-bound channel", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCross
			s.Binding = "on"
			s.Grid.Xs = []float64{0.5}
			s.Channel = &sweepserve.ChannelSpec{Type: "alwayson"}
		}, "channel"},
		{"twice-bound level", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCross
			s.Binding = "k"
			s.Grid.Xs = []float64{2}
			s.K = 3
		}, "k"},
		{"cross without binding", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCross
			s.Grid.Xs = []float64{2}
		}, "binding"},
		{"unknown binding", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCross
			s.Binding = "gravity"
			s.Grid.Xs = []float64{2}
		}, "binding"},
		{"class-count mismatch", func(s *sweepserve.JobSpec) {
			s.Grid.Ks = nil
			s.Classes = []sweepserve.ClassSpec{{Mu: 0.5, Ring: 6}, {Mu: 0.5, Ring: 9}}
			s.Channel = &sweepserve.ChannelSpec{Type: "heteronoff", On: [][]float64{{0.5}}}
		}, "channel.on"},
		{"heteronoff without classes", func(s *sweepserve.JobSpec) {
			s.Channel = &sweepserve.ChannelSpec{Type: "heteronoff", On: [][]float64{{0.5}}}
		}, "classes"},
		{"classes plus Ks axis", func(s *sweepserve.JobSpec) {
			s.Classes = []sweepserve.ClassSpec{{Mu: 1, Ring: 6}}
		}, "grid.ks"},
		{"unknown channel type", func(s *sweepserve.JobSpec) {
			s.Channel = &sweepserve.ChannelSpec{Type: "quantum"}
		}, "channel.type"},
		{"bad on probability", func(s *sweepserve.JobSpec) {
			p := 1.5
			s.Channel = &sweepserve.ChannelSpec{Type: "onoff", P: &p}
		}, "channel.p"},
		{"design bad target", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindDesign
			s.Grid.Ks = nil
			s.Target = 1.5
			s.KMax = 2
		}, "target"},
		{"design bad kmax", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindDesign
			s.Grid.Ks = nil
			s.Target = 0.9
			s.KMax = 0
		}, "kmax"},
		{"design with explicit Xs", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindDesign
			s.Grid.Ks = nil
			s.Target = 0.9
			s.KMax = 2
			s.Grid.Xs = []float64{1}
		}, "grid.xs"},
		{"campaign bad timeline", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCampaign
			s.Grid.Xs = []float64{1}
			s.Timeline = "meteor:10"
		}, "timeline"},
		{"campaign empty timeline", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCampaign
			s.Grid.Xs = []float64{1}
		}, "timeline"},
		{"campaign fractional budget", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindCampaign
			s.Timeline = "capture:5"
			s.Grid.Xs = []float64{1.5}
		}, "grid.xs"},
		{"negative mindegree level", func(s *sweepserve.JobSpec) {
			s.Kind = sweepserve.KindMinDegree
			s.K = -1
		}, "k"},
		{"ring larger than pool", func(s *sweepserve.JobSpec) {
			s.Grid.Ks = []int{testPool + 1}
		}, "spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			_, err := env.client.Submit(context.Background(), spec)
			if err == nil {
				t.Fatal("malformed spec accepted")
			}
			specErr, ok := err.(*sweepserve.SpecError)
			if !ok {
				t.Fatalf("error is %T (%v), want *SpecError round-tripped through the 400", err, err)
			}
			if specErr.Field != tc.field {
				t.Errorf("400 names field %q (%s), want %q", specErr.Field, specErr.Msg, tc.field)
			}
			if specErr.Msg == "" {
				t.Error("400 carries no message")
			}
		})
	}

	// Unknown top-level JSON fields are rejected too (catches typos like
	// "trails" silently defaulting trials to 0 — the server names the body).
	resp, err := env.http.Client().Post(env.http.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"connectivity","trails":100}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown JSON field got status %d, want 400", resp.StatusCode)
	}
}

// TestKindEquivalence pins every proportion job kind to its offline engine
// twin: kconn/cross against CrossSweep, mindegree against SweepMinDegree,
// campaign against SweepCampaign — same grid, same seeds, DeepEqual results.
func TestKindEquivalence(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	cfg := experiment.SweepConfig{Trials: testTrials, Seed: testSeed}
	buildQC := func(pt experiment.GridPoint) (wsn.Config, error) {
		scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
		if err != nil {
			return wsn.Config{}, err
		}
		return wsn.Config{Sensors: testSensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
	}

	t.Run("kconn", func(t *testing.T) {
		grid := experiment.Grid{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.7}, Xs: []float64{1, 2}}
		want, err := experiment.CrossSweep(ctx, grid, cfg, experiment.CrossSpec{
			Bindings: []experiment.XBinding{experiment.BindK},
			Build:    buildQC,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindKConn, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed,
			Grid: sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.7}, Xs: []float64{1, 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("server kconn differs from CrossSweep:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("cross radius binding", func(t *testing.T) {
		grid := experiment.Grid{Ks: []int{9}, Qs: []int{1}, Xs: []float64{0.2, 0.35}}
		want, err := experiment.CrossSweep(ctx, grid, cfg, experiment.CrossSpec{
			Bindings: []experiment.XBinding{experiment.BindDiskRadius},
			K:        2,
			Build: func(pt experiment.GridPoint) (wsn.Config, error) {
				scheme, err := keys.NewQComposite(testPool, pt.K, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{Sensors: testSensors, Scheme: scheme}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindCross, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed, Binding: "radius", K: 2,
			Grid: sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}, Xs: []float64{0.2, 0.35}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("server cross differs from CrossSweep:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("mindegree", func(t *testing.T) {
		grid := experiment.Grid{Ks: []int{6, 9}, Qs: []int{1}, Ps: []float64{0.6}}
		want, err := experiment.SweepMinDegree(ctx, grid, cfg, 2, buildQC)
		if err != nil {
			t.Fatal(err)
		}
		got, err := env.client.RunProportion(ctx, sweepserve.JobSpec{
			Kind: sweepserve.KindMinDegree, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed, K: 2,
			Grid: sweepserve.GridSpec{Ks: []int{6, 9}, Qs: []int{1}, Ps: []float64{0.6}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("server mindegree differs from SweepMinDegree:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("campaign", func(t *testing.T) {
		timeline := "capture:4,fail:3"
		grid := experiment.Grid{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.7}, Xs: []float64{0, 4, 7}}
		spec := sweepserve.JobSpec{
			Kind: sweepserve.KindCampaign, Sensors: testSensors, Pool: testPool,
			Trials: testTrials, Seed: testSeed, Timeline: timeline,
			Grid: sweepserve.GridSpec{Ks: []int{9}, Qs: []int{1}, Ps: []float64{0.7}, Xs: []float64{0, 4, 7}},
		}
		ack, err := env.client.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := env.client.Wait(ctx, ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != sweepserve.StateDone {
			t.Fatalf("campaign job ended %s: %s", st.State, st.Error)
		}
		jr, err := env.client.Result(ctx, ack.ID)
		if err != nil {
			t.Fatal(err)
		}

		tl, err := adversary.ParseTimeline(timeline)
		if err != nil {
			t.Fatal(err)
		}
		want, err := experiment.SweepCampaign(ctx, grid, cfg, experiment.CampaignSpec{
			Timeline: tl,
			Build:    buildQC,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(jr.VecPoints) != len(want) {
			t.Fatalf("campaign result has %d points, want %d", len(jr.VecPoints), len(want))
		}
		for i, vp := range jr.VecPoints {
			for j, comp := range vp.Values {
				if comp.Mean != want[i].Values[j].Mean() {
					t.Errorf("point %d component %d mean %v, want %v", i, j, comp.Mean, want[i].Values[j].Mean())
				}
			}
		}
	})
}

// TestSSEEvents reads the event stream of a job end to end: at least one
// progress event, a terminal "done" event, stream closes.
func TestSSEEvents(t *testing.T) {
	env := newEnv(t, sweepserve.Options{})
	ctx := context.Background()
	ack, err := env.client.Submit(ctx, connectivitySpec([]int{6, 9}, []float64{0.4, 0.8}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := env.http.Client().Get(env.http.URL + "/v1/jobs/" + ack.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events endpoint Content-Type %q", ct)
	}
	events := []string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	if last := events[len(events)-1]; last != "done" {
		t.Errorf("final event %q, want \"done\" (events: %v)", last, events)
	}
	for _, e := range events[:len(events)-1] {
		if e != "progress" {
			t.Errorf("non-terminal event %q, want \"progress\"", e)
		}
	}
}

// BenchmarkServerDedup measures the service's caching arc over HTTP: the
// first iteration computes the grid cold, every later identical submission
// resolves fully from the shared store — so per-op cost converges to pure
// orchestration overhead (submit + poll + fetch), not simulation.
func BenchmarkServerDedup(b *testing.B) {
	m := sweepserve.NewManager(sweepserve.Options{})
	srv := httptest.NewServer(sweepserve.NewServer(m))
	defer func() {
		srv.Close()
		m.Close()
	}()
	client := &sweepserve.Client{Base: srv.URL, HTTP: srv.Client(), Poll: time.Millisecond}
	spec := connectivitySpec([]int{6, 9}, []float64{0.3, 0.5, 0.7, 0.9})
	ctx := context.Background()

	b.ResetTimer()
	for b.Loop() {
		if _, err := client.RunProportion(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := m.Store().Stats()
	b.ReportMetric(float64(st.Hits)/float64(b.N), "cachehits/op")
	if st.Misses != 8 {
		b.Fatalf("store misses = %d, want 8 (grid computed once, ever)", st.Misses)
	}
}
