package sweepserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Server is the HTTP face of a Manager. Routes (all JSON unless noted):
//
//	POST /v1/jobs             submit a JobSpec → SubmitResponse (400 SpecError on bad specs; 503 + Retry-After when the queue is full or the server is draining)
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/result terminal result (JSON; ?format=csv for text/csv)
//	GET  /v1/jobs/{id}/events SSE: one progress event per change, then a terminal event
//	GET  /v1/stats            server + store statistics
//	GET  /v1/healthz          liveness
type Server struct {
	manager *Manager
	mux     *http.ServeMux
}

// SubmitResponse acknowledges a job submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Coalesced reports that the spec matched an already-active identical
	// job and the response describes that job instead of a new one.
	Coalesced bool `json:"coalesced"`
	// Points is the job's grid size.
	Points int `json:"points"`
}

// ServerStats is the /v1/stats payload.
type ServerStats struct {
	Store     StoreStats `json:"store"`
	Coalesced int        `json:"coalesced"`
}

// NewServer wraps a manager in its HTTP routes.
func NewServer(m *Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError renders validation failures as structured 400s naming the
// offending spec field, and everything else as a bare error payload.
func writeError(w http.ResponseWriter, code int, err error) {
	var spec *SpecError
	if errors.As(err, &spec) {
		writeJSON(w, http.StatusBadRequest, spec)
		return
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, &SpecError{Field: "body", Msg: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	job, coalesced, err := s.manager.Submit(spec)
	if err != nil {
		// A saturated queue or a shutting-down server is our capacity, not
		// the client's spec: 503 with a retry hint instead of 400.
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrShuttingDown) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := job.Status()
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:        st.ID,
		State:     st.State,
		Coalesced: coalesced,
		Points:    st.Progress.Total,
	})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.manager.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return job, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	result, err := job.Result()
	if err != nil {
		code := http.StatusConflict // not terminal yet
		if job.Status().State == StateFailed {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		if err := result.RenderCSV(w); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// handleEvents streams job progress as server-sent events: an event per
// status change (coalesced — a burst of point completions may collapse into
// one event) and a final event named "done" or "failed", then the stream
// closes. Clients reconnecting mid-job just get the current state first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for {
		// Grab the change channel BEFORE snapshotting, so a change landing
		// between snapshot and wait wakes the loop instead of being lost.
		change, _ := job.await()
		st := job.Status()
		terminal := st.State == StateDone || st.State == StateFailed
		event := "progress"
		if terminal {
			event = st.State
		}
		payload, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-change:
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ServerStats{
		Store:     s.manager.Store().Stats(),
		Coalesced: s.manager.Coalesced(),
	})
}
