package channel

import (
	"fmt"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// BufferedModel is an optional extension of Model for allocation-free
// repeated sampling: SampleInto draws the channel graph through a
// caller-owned graph.Builder, reusing the builder's edge scratch and CSR
// arenas, and must consume randomness exactly as Sample does so the two
// entry points are byte-identical for the same generator state. The
// returned graph follows the builder's lifetime contract (valid until the
// second-next build). wsn.Deployer uses SampleInto when the configured
// model provides it.
type BufferedModel interface {
	Model
	// SampleInto draws the channel graph on n nodes through b.
	SampleInto(r *rng.Rand, n int, b *graph.Builder) (*graph.Undirected, error)
}

// BufferedClassModel is the class-aware analogue of BufferedModel:
// SampleClassesInto must match SampleClasses draw for draw.
type BufferedClassModel interface {
	ClassModel
	// SampleClassesInto draws the channel graph on n labelled nodes
	// through b.
	SampleClassesInto(r *rng.Rand, n int, labels []uint8, b *graph.Builder) (*graph.Undirected, error)
}

var (
	_ BufferedModel      = OnOff{}
	_ BufferedModel      = AlwaysOn{}
	_ BufferedModel      = Disk{}
	_ BufferedModel      = HeterOnOff{}
	_ BufferedClassModel = HeterOnOff{}
)

// SampleInto implements BufferedModel: G(n, p) appended into the builder's
// edge scratch.
func (m OnOff) SampleInto(r *rng.Rand, n int, b *graph.Builder) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	edges := b.EdgeScratch()
	// Presize to the expected edge count so the first draws don't pay
	// append-doubling; steady state reuses the grown buffer either way.
	if expected := int(m.P*float64(n)*float64(n-1)/2) + 16; cap(*edges) < expected {
		*edges = make([]graph.Edge, 0, expected)
	}
	var err error
	*edges, err = randgraph.AppendErdosRenyi(r, n, m.P, (*edges)[:0])
	if err != nil {
		return nil, fmt.Errorf("channel: on/off: %w", err)
	}
	g, err := b.FromEdges(n, *edges)
	if err != nil {
		return nil, fmt.Errorf("channel: on/off: %w", err)
	}
	return g, nil
}

// SampleInto implements BufferedModel: the complete graph is written
// directly in CSR form — no intermediate O(n²) edge list.
func (AlwaysOn) SampleInto(_ *rng.Rand, n int, b *graph.Builder) (*graph.Undirected, error) {
	g, err := b.Complete(n)
	if err != nil {
		return nil, fmt.Errorf("channel: always-on: %w", err)
	}
	return g, nil
}

// geoScratchPool shares geometric-sampling buffers (positions, cell grid)
// across Disk.SampleInto calls. Disk is a value-type model, so its scratch
// cannot live on the model itself; a pool keeps steady-state sampling
// allocation-free without coupling the model to one deployer.
var geoScratchPool = sync.Pool{New: func() any { return new(randgraph.GeoScratch) }}

// SampleInto implements BufferedModel: a random geometric graph drawn with
// pooled position/grid buffers and the builder's edge scratch.
func (m Disk) SampleInto(r *rng.Rand, n int, b *graph.Builder) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sc := geoScratchPool.Get().(*randgraph.GeoScratch)
	defer geoScratchPool.Put(sc)
	edges := b.EdgeScratch()
	var err error
	*edges, err = sc.AppendGeometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus}, (*edges)[:0])
	if err != nil {
		return nil, fmt.Errorf("channel: disk: %w", err)
	}
	g, err := b.FromEdges(n, *edges)
	if err != nil {
		return nil, fmt.Errorf("channel: disk: %w", err)
	}
	return g, nil
}
