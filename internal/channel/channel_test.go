package channel

import (
	"math"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestOnOffSample(t *testing.T) {
	m := OnOff{P: 0.3}
	g, err := m.Sample(rng.New(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("N = %d", g.N())
	}
	want := 0.3 * 100 * 99 / 2
	if math.Abs(float64(g.M())-want) > 4*math.Sqrt(want) {
		t.Errorf("M = %d, want ~%v", g.M(), want)
	}
	if !strings.Contains(m.Name(), "0.3") {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestOnOffValidation(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.5} {
		if _, err := (OnOff{P: p}).Sample(rng.New(1), 10); err == nil {
			t.Errorf("p=%v: want error", p)
		}
	}
	// p = 1 is the full-visibility special case of on/off and is valid.
	g, err := (OnOff{P: 1}).Sample(rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 45 {
		t.Errorf("p=1 edges = %d, want 45", g.M())
	}
}

func TestAlwaysOn(t *testing.T) {
	m := AlwaysOn{}
	g, err := m.Sample(rng.New(1), 30)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 30*29/2 {
		t.Errorf("M = %d, want %d", g.M(), 30*29/2)
	}
	if m.Name() != "always-on" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestDiskSample(t *testing.T) {
	m := Disk{Radius: 0.2, Torus: true}
	g, err := m.Sample(rng.New(2), 200)
	if err != nil {
		t.Fatal(err)
	}
	// Torus pair probability is exactly π r².
	want := math.Pi * 0.04 * 200 * 199 / 2
	if math.Abs(float64(g.M())-want) > 6*math.Sqrt(want)+0.05*want {
		t.Errorf("M = %d, want ~%v", g.M(), want)
	}
	if !strings.Contains(m.Name(), "torus") {
		t.Errorf("Name = %q", m.Name())
	}
	if strings.Contains((Disk{Radius: 0.1}).Name(), "torus") {
		t.Error("non-torus Name mentions torus")
	}
	if _, err := (Disk{Radius: -1}).Sample(rng.New(1), 10); err == nil {
		t.Error("negative radius: want error")
	}
}

func TestDiskSamplePositions(t *testing.T) {
	m := Disk{Radius: 0.15}
	g, pts, err := m.SamplePositions(rng.New(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 || g.N() != 50 {
		t.Fatalf("positions %d, nodes %d", len(pts), g.N())
	}
	for i, p := range pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Errorf("point %d = %+v outside unit square", i, p)
		}
	}
}

func TestEquivalentOnOff(t *testing.T) {
	m := Disk{Radius: 0.2, Torus: true}
	eq := m.EquivalentOnOff()
	if math.Abs(eq.P-math.Pi*0.04) > 1e-12 {
		t.Errorf("equivalent p = %v, want π·0.04", eq.P)
	}
	// Clamped for huge radii.
	if got := (Disk{Radius: 10}).EquivalentOnOff().P; got != 1 {
		t.Errorf("clamped p = %v, want 1", got)
	}
}
