package channel

import (
	"math"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestOnOffSample(t *testing.T) {
	m := OnOff{P: 0.3}
	g, err := m.Sample(rng.New(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("N = %d", g.N())
	}
	want := 0.3 * 100 * 99 / 2
	if math.Abs(float64(g.M())-want) > 4*math.Sqrt(want) {
		t.Errorf("M = %d, want ~%v", g.M(), want)
	}
	if !strings.Contains(m.Name(), "0.3") {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestOnOffValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.5, math.NaN()} {
		if err := (OnOff{P: p}).Validate(); err == nil {
			t.Errorf("p=%v: Validate: want error", p)
		}
		if _, err := (OnOff{P: p}).Sample(rng.New(1), 10); err == nil {
			t.Errorf("p=%v: Sample: want error", p)
		}
	}
	// p = 0 is the degenerate all-off network: valid, empty channel graph.
	g, err := (OnOff{P: 0}).Sample(rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 0 {
		t.Errorf("p=0 graph: N=%d M=%d, want N=10 M=0", g.N(), g.M())
	}
	// p = 1 is the full-visibility special case of on/off and is valid.
	g, err = (OnOff{P: 1}).Sample(rng.New(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 45 {
		t.Errorf("p=1 edges = %d, want 45", g.M())
	}
}

func TestDiskValidation(t *testing.T) {
	for _, r := range []float64{-0.5, math.NaN(), math.Inf(1)} {
		if err := (Disk{Radius: r}).Validate(); err == nil {
			t.Errorf("radius=%v: Validate: want error", r)
		}
		if _, err := (Disk{Radius: r}).Sample(rng.New(1), 10); err == nil {
			t.Errorf("radius=%v: Sample: want error", r)
		}
		if _, _, err := (Disk{Radius: r}).SamplePositions(rng.New(1), 10); err == nil {
			t.Errorf("radius=%v: SamplePositions: want error", r)
		}
	}
	for _, m := range []Model{OnOff{P: 0.5}, AlwaysOn{}, Disk{Radius: 0.2}} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", m.Name(), err)
		}
	}
}

// TestDiskZeroRadius pins the degenerate-radius contract: a zero radius is a
// valid empty channel graph, and its EquivalentOnOff (P = 0) samples an
// equally valid empty graph instead of failing at Sample time.
func TestDiskZeroRadius(t *testing.T) {
	m := Disk{Radius: 0, Torus: true}
	if err := m.Validate(); err != nil {
		t.Fatalf("zero radius Validate: %v", err)
	}
	g, err := m.Sample(rng.New(4), 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 40 || g.M() != 0 {
		t.Errorf("zero-radius graph: N=%d M=%d, want N=40 M=0", g.N(), g.M())
	}
	eq := m.EquivalentOnOff()
	if eq.P != 0 {
		t.Fatalf("EquivalentOnOff P = %v, want 0", eq.P)
	}
	if err := eq.Validate(); err != nil {
		t.Fatalf("EquivalentOnOff Validate: %v", err)
	}
	g, err = eq.Sample(rng.New(4), 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 40 || g.M() != 0 {
		t.Errorf("equivalent on/off graph: N=%d M=%d, want N=40 M=0", g.N(), g.M())
	}
}

func TestAlwaysOn(t *testing.T) {
	m := AlwaysOn{}
	g, err := m.Sample(rng.New(1), 30)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 30*29/2 {
		t.Errorf("M = %d, want %d", g.M(), 30*29/2)
	}
	if m.Name() != "always-on" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestDiskSample(t *testing.T) {
	m := Disk{Radius: 0.2, Torus: true}
	g, err := m.Sample(rng.New(2), 200)
	if err != nil {
		t.Fatal(err)
	}
	// Torus pair probability is exactly π r².
	want := math.Pi * 0.04 * 200 * 199 / 2
	if math.Abs(float64(g.M())-want) > 6*math.Sqrt(want)+0.05*want {
		t.Errorf("M = %d, want ~%v", g.M(), want)
	}
	if !strings.Contains(m.Name(), "torus") {
		t.Errorf("Name = %q", m.Name())
	}
	if strings.Contains((Disk{Radius: 0.1}).Name(), "torus") {
		t.Error("non-torus Name mentions torus")
	}
	if _, err := (Disk{Radius: -1}).Sample(rng.New(1), 10); err == nil {
		t.Error("negative radius: want error")
	}
}

func TestDiskSamplePositions(t *testing.T) {
	m := Disk{Radius: 0.15}
	g, pts, err := m.SamplePositions(rng.New(3), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 || g.N() != 50 {
		t.Fatalf("positions %d, nodes %d", len(pts), g.N())
	}
	for i, p := range pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Errorf("point %d = %+v outside unit square", i, p)
		}
	}
}

func TestEquivalentOnOff(t *testing.T) {
	m := Disk{Radius: 0.2, Torus: true}
	eq := m.EquivalentOnOff()
	if math.Abs(eq.P-math.Pi*0.04) > 1e-12 {
		t.Errorf("equivalent p = %v, want π·0.04", eq.P)
	}
	// Clamped for huge radii.
	if got := (Disk{Radius: 10}).EquivalentOnOff().P; got != 1 {
		t.Errorf("clamped p = %v, want 1", got)
	}
}
