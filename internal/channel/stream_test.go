package channel

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// emittedGraph drains an emitter into a merged CSR graph.
func emittedGraph(t *testing.T, n int, emit func(yield func(u, v int32) bool) error) *graph.Undirected {
	t.Helper()
	var edges []graph.Edge
	if err := emit(func(u, v int32) bool {
		edges = append(edges, graph.Edge{U: u, V: v})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEmitEdgesDuplicateFree pins the emitter half of the streaming-degree
// contract: every built-in emitter yields each unordered pair at most once
// (degree counting is not idempotent), including on the tiny toroidal disk
// grids whose aliased neighbor cells used to produce duplicates.
func TestEmitEdgesDuplicateFree(t *testing.T) {
	models := []EdgeEmitter{
		OnOff{P: 0.3},
		AlwaysOn{},
		Disk{Radius: 0.2},
		Disk{Radius: 0.45, Torus: true}, // 2×2 toroidal grid
		Disk{Radius: 0.6, Torus: true},  // 1×1 toroidal grid
		HeterOnOff{P: [][]float64{{0.5}}},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				const n = 40
				seen := make(map[[2]int32]bool)
				err := m.EmitEdges(rng.New(seed), n, func(u, v int32) bool {
					if u == v {
						t.Fatalf("seed %d: self-loop on %d", seed, u)
					}
					key := [2]int32{u, v}
					if u > v {
						key = [2]int32{v, u}
					}
					if seen[key] {
						t.Fatalf("seed %d: pair {%d,%d} emitted twice", seed, u, v)
					}
					seen[key] = true
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	hetero := HeterOnOff{P: [][]float64{{0.9, 0.5}, {0.5, 0.7}}}
	labels := make([]uint8, 50)
	for i := range labels {
		labels[i] = uint8(i % 2)
	}
	seen := make(map[[2]int32]bool)
	err := hetero.EmitClassEdges(rng.New(3), len(labels), labels, func(u, v int32) bool {
		key := [2]int32{u, v}
		if u > v {
			key = [2]int32{v, u}
		}
		if seen[key] {
			t.Fatalf("class blocks: pair {%d,%d} emitted twice", u, v)
		}
		seen[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEmitEdgesMatchesSample pins the EdgeEmitter contract for every model:
// at a fixed seed the emitted edge set merges to exactly the sampled
// graph, and both draws consume the generator identically.
func TestEmitEdgesMatchesSample(t *testing.T) {
	models := []EdgeEmitter{
		OnOff{P: 0},
		OnOff{P: 0.15},
		OnOff{P: 1},
		AlwaysOn{},
		Disk{Radius: 0.2},
		Disk{Radius: 0.3, Torus: true},
		Disk{Radius: 0.6, Torus: true}, // tiny grid: aliased cells, dedup path
		Disk{Radius: 0},
		HeterOnOff{P: [][]float64{{0.4}}},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				seed := uint64(100 + trial)
				for _, n := range []int{0, 1, 37, 80} {
					rs, rd := rng.New(seed), rng.New(seed)
					want, err := m.Sample(rs, n)
					if err != nil {
						t.Fatal(err)
					}
					got := emittedGraph(t, n, func(yield func(u, v int32) bool) error {
						return m.EmitEdges(rd, n, yield)
					})
					if !sameGraph(want, got) {
						t.Fatalf("seed %d n=%d: emitted graph differs from Sample", seed, n)
					}
					if rs.Uint64() != rd.Uint64() {
						t.Fatalf("seed %d n=%d: generators diverged after the draw", seed, n)
					}
				}
			}
		})
	}
}

// TestEmitClassEdgesMatchesSampleClasses pins the class-aware contract on a
// 3-class heterogeneous channel with mixed labels, nil labels (all class 0),
// and empty classes.
func TestEmitClassEdgesMatchesSampleClasses(t *testing.T) {
	m := HeterOnOff{P: [][]float64{
		{0.9, 0.5, 0.2},
		{0.5, 0.6, 0.4},
		{0.2, 0.4, 0.8},
	}}
	const n = 90
	labelings := map[string][]uint8{
		"mixed":       make([]uint8, n),
		"nil":         nil,
		"empty-class": make([]uint8, n),
	}
	for i := 0; i < n; i++ {
		labelings["mixed"][i] = uint8(i % 3)
		labelings["empty-class"][i] = uint8(i%2) * 2 // classes {0, 2}; class 1 empty
	}
	for name, labels := range labelings {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				rs, rd := rng.New(seed), rng.New(seed)
				want, err := m.SampleClasses(rs, n, labels)
				if err != nil {
					t.Fatal(err)
				}
				got := emittedGraph(t, n, func(yield func(u, v int32) bool) error {
					return m.EmitClassEdges(rd, n, labels, yield)
				})
				if !sameGraph(want, got) {
					t.Fatalf("seed %d: emitted class graph differs from SampleClasses", seed)
				}
				if rs.Uint64() != rd.Uint64() {
					t.Fatalf("seed %d: generators diverged after the draw", seed)
				}
			}
		})
	}
}

// TestEmitEdgesEarlyExit checks that a false yield stops every emitter
// immediately — including across the block boundaries of EmitClassEdges —
// and that what was emitted is a prefix of the full enumeration.
func TestEmitEdgesEarlyExit(t *testing.T) {
	const n, seed = 60, 7
	labels := make([]uint8, n)
	for i := range labels {
		labels[i] = uint8(i % 3)
	}
	hetero := HeterOnOff{P: [][]float64{
		{0.9, 0.5, 0.2},
		{0.5, 0.6, 0.4},
		{0.2, 0.4, 0.8},
	}}
	emitters := map[string]func(r *rng.Rand, yield func(u, v int32) bool) error{
		"on-off":    func(r *rng.Rand, yield func(u, v int32) bool) error { return OnOff{P: 0.3}.EmitEdges(r, n, yield) },
		"always-on": func(r *rng.Rand, yield func(u, v int32) bool) error { return AlwaysOn{}.EmitEdges(r, n, yield) },
		"disk": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return Disk{Radius: 0.3, Torus: true}.EmitEdges(r, n, yield)
		},
		"hetero-class": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return hetero.EmitClassEdges(r, n, labels, yield)
		},
	}
	for name, emit := range emitters {
		t.Run(name, func(t *testing.T) {
			var full []graph.Edge
			if err := emit(rng.New(seed), func(u, v int32) bool {
				full = append(full, graph.Edge{U: u, V: v})
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(full) < 4 {
				t.Fatalf("test draw too sparse: %d edges", len(full))
			}
			for _, stop := range []int{1, 3, len(full) / 2} {
				var prefix []graph.Edge
				if err := emit(rng.New(seed), func(u, v int32) bool {
					prefix = append(prefix, graph.Edge{U: u, V: v})
					return len(prefix) < stop
				}); err != nil {
					t.Fatal(err)
				}
				if len(prefix) != stop {
					t.Fatalf("stopped after %d edges, want %d", len(prefix), stop)
				}
				for i := range prefix {
					if prefix[i] != full[i] {
						t.Fatalf("stop=%d: edge %d = %v, want %v", stop, i, prefix[i], full[i])
					}
				}
			}
		})
	}
}

// TestEmitEdgesValidation covers the streaming entry points' validation,
// including the multi-class restriction EmitEdges shares with Sample.
func TestEmitEdgesValidation(t *testing.T) {
	yield := func(u, v int32) bool { return true }
	r := rng.New(1)
	if err := (OnOff{P: 1.5}).EmitEdges(r, 10, yield); err == nil {
		t.Error("invalid OnOff: want error")
	}
	if err := (AlwaysOn{}).EmitEdges(r, -1, yield); err == nil {
		t.Error("negative n: want error")
	}
	if err := (Disk{Radius: -1}).EmitEdges(r, 10, yield); err == nil {
		t.Error("invalid Disk: want error")
	}
	multi := UniformHeterOnOff(2, 0.5)
	if err := multi.EmitEdges(r, 10, yield); err == nil {
		t.Error("multi-class EmitEdges without labels: want error")
	}
	if err := multi.EmitClassEdges(r, 10, make([]uint8, 3), yield); err == nil {
		t.Error("label/count mismatch: want error")
	}
	if err := multi.EmitClassEdges(r, 4, []uint8{0, 1, 2, 0}, yield); err == nil {
		t.Error("label beyond class count: want error")
	}
}
