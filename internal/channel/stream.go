package channel

import (
	"fmt"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// EdgeEmitter is the streaming extension of Model: EmitEdges pushes one
// channel draw edge by edge to yield instead of materializing a graph. It
// must consume randomness exactly as Sample does, so at a fixed generator
// state the yielded edge set equals the sampled graph's edge set. Every
// built-in emitter yields each pair at most once, which the streaming
// degree accumulator depends on; third-party emitters feeding
// wsn.Deployer's degree mode must be duplicate-free too (a pure union-find
// sink would tolerate duplicates, a degree count does not). When yield
// returns false the draw stops immediately and the rest of its randomness
// is NOT consumed; callers must only early-exit streams nothing else draws
// from (per-trial streams qualify). wsn.Deployer's graph-free modes use
// EmitEdges when the configured model provides it.
type EdgeEmitter interface {
	Model
	// EmitEdges streams the channel draw on n nodes to yield.
	EmitEdges(r *rng.Rand, n int, yield func(u, v int32) bool) error
}

// ClassEdgeEmitter is the class-aware analogue of EdgeEmitter:
// EmitClassEdges must match SampleClasses draw for draw.
type ClassEdgeEmitter interface {
	ClassModel
	// EmitClassEdges streams the channel draw on n labelled nodes to yield.
	EmitClassEdges(r *rng.Rand, n int, labels []uint8, yield func(u, v int32) bool) error
}

var (
	_ EdgeEmitter      = OnOff{}
	_ EdgeEmitter      = AlwaysOn{}
	_ EdgeEmitter      = Disk{}
	_ EdgeEmitter      = HeterOnOff{}
	_ ClassEdgeEmitter = HeterOnOff{}
)

// EmitEdges implements EdgeEmitter: one G(n, p) draw streamed with geometric
// skipping.
func (m OnOff) EmitEdges(r *rng.Rand, n int, yield func(u, v int32) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := randgraph.AppendErdosRenyiStream(r, n, m.P, yield); err != nil {
		return fmt.Errorf("channel: on/off: %w", err)
	}
	return nil
}

// EmitEdges implements EdgeEmitter: every pair, no randomness.
func (AlwaysOn) EmitEdges(_ *rng.Rand, n int, yield func(u, v int32) bool) error {
	if n < 0 {
		return fmt.Errorf("channel: always-on: negative node count %d", n)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !yield(int32(u), int32(v)) {
				return nil
			}
		}
	}
	return nil
}

// EmitEdges implements EdgeEmitter: the cell-grid walk passes in-range pairs
// straight to yield, with pooled position/grid buffers and no edge list.
func (m Disk) EmitEdges(r *rng.Rand, n int, yield func(u, v int32) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	sc := geoScratchPool.Get().(*randgraph.GeoScratch)
	defer geoScratchPool.Put(sc)
	if err := sc.EmitGeometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus}, yield); err != nil {
		return fmt.Errorf("channel: disk: %w", err)
	}
	return nil
}

// EmitEdges implements EdgeEmitter with the same single-class restriction as
// Sample.
func (m HeterOnOff) EmitEdges(r *rng.Rand, n int, yield func(u, v int32) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if len(m.P) > 1 {
		return fmt.Errorf("channel: heterogeneous on/off with %d classes needs per-sensor labels; deploy it with a class-aware scheme", len(m.P))
	}
	return OnOff{P: m.P[0][0]}.EmitEdges(r, n, yield)
}

// classScratchPool shares the class-bucketing array across EmitClassEdges
// calls; HeterOnOff is a value-type model, so like Disk's geometry scratch
// the buffer lives in a pool rather than on the model.
var classScratchPool = sync.Pool{New: func() any { return new([]int32) }}

// EmitClassEdges implements ClassEdgeEmitter: the per-class-pair Erdős–Rényi
// blocks are streamed in the same fixed (i ≤ j) order as SampleClasses,
// through ONE skip kernel threaded across all blocks — block boundaries
// share buffered uniforms exactly as SampleClasses does, so randomness is
// consumed draw for draw. A false from yield stops the current block and
// skips all remaining blocks.
func (m HeterOnOff) EmitClassEdges(r *rng.Rand, n int, labels []uint8, yield func(u, v int32) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("channel: negative node count %d", n)
	}
	if labels != nil && len(labels) != n {
		return fmt.Errorf("channel: %d class labels for %d nodes", len(labels), n)
	}
	classes := len(m.P)
	buf := classScratchPool.Get().(*[]int32)
	defer classScratchPool.Put(buf)
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	flat := (*buf)[:n]
	var off [257]int32
	if err := bucketByClass(n, classes, labels, flat, &off); err != nil {
		return err
	}
	bucket := func(c int) []int32 { return flat[off[c]:off[c+1]] }
	stopped := false
	wrap := func(u, v int32) bool {
		if !yield(u, v) {
			stopped = true
			return false
		}
		return true
	}
	var src rng.GeometricSource
	src.Reset(r)
	for i := 0; i < classes && !stopped; i++ {
		if err := randgraph.EmitErdosRenyiSubset(&src, bucket(i), m.P[i][i], wrap); err != nil {
			return fmt.Errorf("channel: heterogeneous on/off: %w", err)
		}
		for j := i + 1; j < classes && !stopped; j++ {
			if err := randgraph.EmitErdosRenyiBipartite(&src, bucket(i), bucket(j), m.P[i][j], wrap); err != nil {
				return fmt.Errorf("channel: heterogeneous on/off: %w", err)
			}
		}
	}
	return nil
}
