package channel

import (
	"fmt"
	"math"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// ClassModel is a channel model whose link probabilities depend on the
// sensors' classes. A deployment threads the key scheme's per-sensor class
// labels to SampleClasses, so the scheme and channel share one
// deployment-level class assignment (wsn.Config validates the pairing).
type ClassModel interface {
	Model
	// ClassCount returns the number of sensor classes the model expects.
	ClassCount() int
	// SampleClasses draws the channel graph on n nodes whose classes are
	// given by labels (one entry per node; nil means every node is class 0).
	SampleClasses(r *rng.Rand, n int, labels []uint8) (*graph.Undirected, error)
}

// HeterOnOff is the heterogeneous on/off channel model of Eletreby and Yağan
// (arXiv:1908.09826): the channel between a class-i and a class-j sensor is
// on independently with probability P[i][j]. With one class it degenerates
// to the paper's uniform OnOff model; paired with a multi-class
// keys.Heterogeneous scheme it yields the heterogeneous random
// key graph ∩ heterogeneous Erdős–Rényi composite of that paper.
type HeterOnOff struct {
	// P is the symmetric class-pair on-probability matrix.
	P [][]float64
}

var (
	_ Model      = HeterOnOff{}
	_ ClassModel = HeterOnOff{}
)

// UniformHeterOnOff returns the r-class HeterOnOff whose every class pair is
// on with the same probability p — the uniform on/off channel written in
// class form, for pairing a heterogeneous scheme with the 1604.00460 model
// (heterogeneous keys, homogeneous channels).
func UniformHeterOnOff(classes int, p float64) HeterOnOff {
	m := make([][]float64, classes)
	for i := range m {
		m[i] = make([]float64, classes)
		for j := range m[i] {
			m[i][j] = p
		}
	}
	return HeterOnOff{P: m}
}

// Name implements Model.
func (m HeterOnOff) Name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heter-on-off(p=[")
	for i, row := range m.P {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, p := range row {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%g", p)
		}
	}
	b.WriteString("])")
	return b.String()
}

// ClassCount implements ClassModel.
func (m HeterOnOff) ClassCount() int { return len(m.P) }

// maxClasses bounds the class count: labels travel as uint8 through
// assignments and channel models (keys.MaxClasses), and the bucketing
// scratch of sampleClasses is sized to it.
const maxClasses = 256

// Validate implements Model: the matrix must be non-empty, square,
// symmetric, with entries in [0, 1], and at most 256 classes (class labels
// are uint8).
func (m HeterOnOff) Validate() error {
	r := len(m.P)
	if r == 0 {
		return fmt.Errorf("channel: heterogeneous on/off needs at least one class")
	}
	if r > maxClasses {
		return fmt.Errorf("channel: %d classes exceed the %d-class limit of uint8 labels", r, maxClasses)
	}
	// Check every row length before touching m.P[j][i]: the symmetry check
	// reads across rows, so a ragged matrix must fail here, not panic there.
	for i, row := range m.P {
		if len(row) != r {
			return fmt.Errorf("channel: on-probability matrix row %d has %d entries, want %d", i, len(row), r)
		}
	}
	for i, row := range m.P {
		for j, p := range row {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("channel: on probability P[%d][%d]=%v outside [0,1]", i, j, p)
			}
			if m.P[j][i] != p {
				return fmt.Errorf("channel: on-probability matrix asymmetric at (%d,%d): %v vs %v", i, j, p, m.P[j][i])
			}
		}
	}
	return nil
}

// Sample implements Model. Without class labels only the single-class
// instance is well-defined (it is OnOff); multi-class instances must be
// sampled through SampleClasses with a deployment's label assignment.
func (m HeterOnOff) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.P) > 1 {
		return nil, fmt.Errorf("channel: heterogeneous on/off with %d classes needs per-sensor labels; deploy it with a class-aware scheme", len(m.P))
	}
	return OnOff{P: m.P[0][0]}.Sample(r, n)
}

// SampleClasses implements ClassModel: the channel graph is the union of
// one Erdős–Rényi block per class pair — within-class blocks G(n_i, P[i][i])
// and cross-class bipartite blocks with probability P[i][j] — each sampled
// with geometric skipping. Blocks are drawn in fixed (i ≤ j) order, so the
// draw is deterministic in (r, labels).
func (m HeterOnOff) SampleClasses(r *rng.Rand, n int, labels []uint8) (*graph.Undirected, error) {
	return m.sampleClasses(r, n, labels, nil)
}

// SampleInto implements BufferedModel with the same single-class restriction
// as Sample.
func (m HeterOnOff) SampleInto(r *rng.Rand, n int, b *graph.Builder) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.P) > 1 {
		return nil, fmt.Errorf("channel: heterogeneous on/off with %d classes needs per-sensor labels; deploy it with a class-aware scheme", len(m.P))
	}
	return OnOff{P: m.P[0][0]}.SampleInto(r, n, b)
}

// SampleClassesInto implements BufferedClassModel: byte-identical to
// SampleClasses for the same generator state, but the class buckets, edge
// list and CSR storage all come from the builder's reusable scratch.
func (m HeterOnOff) SampleClassesInto(r *rng.Rand, n int, labels []uint8, b *graph.Builder) (*graph.Undirected, error) {
	return m.sampleClasses(r, n, labels, b)
}

// bucketByClass groups the node IDs 0..n-1 by class into flat (len n) with a
// counting sort — ascending node order within each class — and writes the
// class offsets to off: class c occupies flat[off[c]:off[c+1]]. Shared by the
// buffered sampling and streaming emission paths so both walk identical
// buckets. nil labels put every node in class 0.
func bucketByClass(n, classes int, labels []uint8, flat []int32, off *[257]int32) error {
	var cnt [257]int32
	for v := 0; v < n; v++ {
		c := 0
		if labels != nil {
			c = int(labels[v])
		}
		if c >= classes {
			return fmt.Errorf("channel: node %d has class %d, model has %d classes", v, c, classes)
		}
		cnt[c+1]++
	}
	for c := 0; c < classes; c++ {
		cnt[c+1] += cnt[c]
	}
	*off = cnt // off[c]..off[c+1] delimit class c after the fill
	cursor := [256]int32{}
	for v := 0; v < n; v++ {
		c := 0
		if labels != nil {
			c = int(labels[v])
		}
		flat[off[c]+cursor[c]] = int32(v)
		cursor[c]++
	}
	return nil
}

// sampleClasses is the shared block-sampling core; a nil builder falls back
// to one-shot allocation.
func (m HeterOnOff) sampleClasses(r *rng.Rand, n int, labels []uint8, b *graph.Builder) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("channel: negative node count %d", n)
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("channel: %d class labels for %d nodes", len(labels), n)
	}
	classes := len(m.P)
	// Bucket nodes by class into one flat array with a counting sort
	// (ascending node order within each class, matching append order), using
	// the builder's node scratch when available. Class counts and offsets
	// are small and live on the stack (Validate bounds classes by
	// maxClasses = 256).
	var flat []int32
	if b != nil {
		nodes := b.NodeScratch()
		if cap(*nodes) < n {
			*nodes = make([]int32, n)
		}
		*nodes = (*nodes)[:n]
		flat = *nodes
	} else {
		flat = make([]int32, n)
	}
	var off [257]int32
	if err := bucketByClass(n, classes, labels, flat, &off); err != nil {
		return nil, err
	}
	bucket := func(c int) []int32 { return flat[off[c]:off[c+1]] }

	var edges []graph.Edge
	if b != nil {
		edges = (*b.EdgeScratch())[:0]
	}
	// One skip kernel threads the whole class draw: block boundaries share
	// buffered uniforms, so skip i consumes uniform i across ALL blocks —
	// the alignment EmitClassEdges reproduces and the pinned topology
	// fingerprints rely on.
	var src rng.GeometricSource
	src.Reset(r)
	appendEdge := func(u, v int32) bool {
		edges = append(edges, graph.Edge{U: u, V: v})
		return true
	}
	for i := 0; i < classes; i++ {
		if err := randgraph.EmitErdosRenyiSubset(&src, bucket(i), m.P[i][i], appendEdge); err != nil {
			return nil, fmt.Errorf("channel: heterogeneous on/off: %w", err)
		}
		for j := i + 1; j < classes; j++ {
			if err := randgraph.EmitErdosRenyiBipartite(&src, bucket(i), bucket(j), m.P[i][j], appendEdge); err != nil {
				return nil, fmt.Errorf("channel: heterogeneous on/off: %w", err)
			}
		}
	}
	var err error
	var g *graph.Undirected
	if b != nil {
		*b.EdgeScratch() = edges
		g, err = b.FromEdges(n, edges)
	} else {
		g, err = graph.NewFromEdges(n, edges)
	}
	if err != nil {
		return nil, fmt.Errorf("channel: heterogeneous on/off: %w", err)
	}
	return g, nil
}
