package channel

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// topologyFingerprint folds a graph's exact edge set (CSR order, U < V)
// into an FNV-1a hash, so two graphs collide only if they are (with
// overwhelming probability) edge-for-edge identical.
func topologyFingerprint(g *graph.Undirected) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(g.N()))
	mix(uint64(g.M()))
	g.ForEachEdge(func(u, v int32) bool {
		mix(uint64(uint32(u)))
		mix(uint64(uint32(v)))
		return true
	})
	return h
}

// TestSampledTopologiesPinnedPR6 pins the exact topologies every channel
// model produced at fixed seeds BEFORE the PR 7 sampler kernels landed
// (fingerprints recorded from the PR 6 per-draw rng.Geometric samplers).
// The kernelized GeometricSource batches its uniform refills but must
// consume uniform i for draw i, so these hashes are the bit-identity
// contract: any change to the uniform→edge mapping — a reordered draw, a
// fast-log shortcut, a flipped floor at an integer boundary — flips a hash
// and fails this test.
func TestSampledTopologiesPinnedPR6(t *testing.T) {
	classLabels := func(n int) []uint8 {
		labels := make([]uint8, n)
		for i := range labels {
			labels[i] = uint8(i % 3)
		}
		return labels
	}
	hetero := HeterOnOff{P: [][]float64{
		{0.9, 0.5, 0.2},
		{0.5, 0.6, 0.4},
		{0.2, 0.4, 0.8},
	}}
	cases := []struct {
		name   string
		n      int
		seed   uint64
		sample func(r *rng.Rand, n int) (*graph.Undirected, error)
		want   uint64
	}{
		{"onoff-sparse", 200, 1, OnOff{P: 0.05}.Sample, 0xba3fa24f5e863183},
		{"onoff-sparse", 200, 2, OnOff{P: 0.05}.Sample, 0x27fbe6bab90f3c47},
		{"onoff-dense", 80, 3, OnOff{P: 0.6}.Sample, 0x3dc1790bc583db79},
		{"always-on", 50, 4, AlwaysOn{}.Sample, 0xca59d4e0cbcad20b},
		{"disk-plane", 100, 5, Disk{Radius: 0.2}.Sample, 0x233a694a29b61582},
		{"disk-torus", 100, 6, Disk{Radius: 0.3, Torus: true}.Sample, 0xa37fd29492a01eec},
		{"disk-tiny-torus", 8, 7, Disk{Radius: 0.6, Torus: true}.Sample, 0xa2fab28410055a71},
		{"hetero-single-class", 90, 8, HeterOnOff{P: [][]float64{{0.55}}}.Sample, 0x89de8d0202dddced},
		{"hetero-classes", 90, 9, func(r *rng.Rand, n int) (*graph.Undirected, error) {
			return hetero.SampleClasses(r, n, classLabels(n))
		}, 0x5af71eab669a9a53},
		{"hetero-classes", 90, 10, func(r *rng.Rand, n int) (*graph.Undirected, error) {
			return hetero.SampleClasses(r, n, classLabels(n))
		}, 0xe907228cf6893a61},
	}
	for _, tc := range cases {
		g, err := tc.sample(rng.New(tc.seed), tc.n)
		if err != nil {
			t.Fatalf("%s seed=%d: %v", tc.name, tc.seed, err)
		}
		if got := topologyFingerprint(g); got != tc.want {
			t.Errorf("%s seed=%d: topology fingerprint %#x, want %#x (PR 6 pinned)",
				tc.name, tc.seed, got, tc.want)
		}
	}
}
