package channel

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// sameGraph reports byte-identical CSR contents.
func sameGraph(a, b *graph.Undirected) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// TestSampleIntoMatchesSample pins the BufferedModel contract: for every
// channel model, SampleInto through a reused builder draws byte-identical
// graphs to Sample from the same generator state, across repeated draws.
func TestSampleIntoMatchesSample(t *testing.T) {
	models := []BufferedModel{
		OnOff{P: 0},
		OnOff{P: 0.15},
		OnOff{P: 1},
		AlwaysOn{},
		Disk{Radius: 0.2},
		Disk{Radius: 0.3, Torus: true},
		Disk{Radius: 0},
		HeterOnOff{P: [][]float64{{0.4}}},
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			b := graph.NewBuilder()
			for trial := 0; trial < 5; trial++ {
				seed := uint64(100 + trial)
				for _, n := range []int{0, 1, 37, 80} {
					want, err := m.Sample(rng.New(seed), n)
					if err != nil {
						t.Fatal(err)
					}
					got, err := m.SampleInto(rng.New(seed), n, b)
					if err != nil {
						t.Fatal(err)
					}
					if !sameGraph(want, got) {
						t.Fatalf("trial %d n=%d: SampleInto differs from Sample", trial, n)
					}
				}
			}
		})
	}
}

// TestSampleClassesIntoMatchesSampleClasses pins the BufferedClassModel
// contract for the heterogeneous on/off channel, including reuse of the
// builder's bucket scratch across draws with different label vectors.
func TestSampleClassesIntoMatchesSampleClasses(t *testing.T) {
	m := HeterOnOff{P: [][]float64{{0.5, 0.2, 0}, {0.2, 0.9, 0.35}, {0, 0.35, 1}}}
	b := graph.NewBuilder()
	lr := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		n := 10 + trial*17
		labels := make([]uint8, n)
		for i := range labels {
			labels[i] = uint8(lr.Intn(3))
		}
		seed := uint64(500 + trial)
		want, err := m.SampleClasses(rng.New(seed), n, labels)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SampleClassesInto(rng.New(seed), n, labels, b)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(want, got) {
			t.Fatalf("trial %d n=%d: SampleClassesInto differs from SampleClasses", trial, n)
		}
	}
	// nil labels mean single-class; a multi-class model must reject nodes
	// beyond its class count exactly like the unbuffered path.
	if _, err := m.SampleClassesInto(rng.New(1), 5, []uint8{0, 1, 2, 3, 0}, b); err == nil {
		t.Error("out-of-range class label: want error")
	}
	// More classes than uint8 labels can address must fail validation, not
	// overrun the fixed-size bucketing scratch.
	if err := UniformHeterOnOff(300, 0.1).Validate(); err == nil {
		t.Error("300 classes: want validation error")
	}
}

// TestSampleIntoLifetime checks the double-buffer contract end to end: a
// channel graph must survive the next draw through the same builder.
func TestSampleIntoLifetime(t *testing.T) {
	m := OnOff{P: 0.3}
	b := graph.NewBuilder()
	g1, err := m.SampleInto(rng.New(1), 50, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Sample(rng.New(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SampleInto(rng.New(2), 50, b); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g1, want) {
		t.Error("channel graph corrupted by the next draw through the same builder")
	}
}
