package channel

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestHeterOnOffValidate(t *testing.T) {
	good := HeterOnOff{P: [][]float64{{0.2, 0.5}, {0.5, 0.9}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	bad := []HeterOnOff{
		{P: nil},
		{P: [][]float64{{0.5, 0.5}}}, // not square
		{P: [][]float64{{1, 1, 1}, {1, 1, 1}, {1}}},            // ragged (regression: used to panic)
		{P: [][]float64{{0.5, 0.2}, {0.3, 0.5}}},               // asymmetric
		{P: [][]float64{{1.5}}},                                // entry > 1
		{P: [][]float64{{-0.1}}},                               // entry < 0
		{P: [][]float64{{math.NaN()}}},                         // NaN
		{P: [][]float64{{0.5, math.NaN()}, {math.NaN(), 0.5}}}, // NaN off-diagonal
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("matrix %d accepted: %v", i, m.P)
		}
	}
}

// TestHeterOnOffOneClassMatchesOnOff pins the degenerate case: a 1-class
// HeterOnOff must sample exactly the OnOff graph, through both Sample and
// SampleClasses (nil labels), from the same stream.
func TestHeterOnOffOneClassMatchesOnOff(t *testing.T) {
	const (
		n = 200
		p = 0.3
	)
	m := UniformHeterOnOff(1, p)
	for seed := uint64(0); seed < 3; seed++ {
		want, err := OnOff{P: p}.Sample(rng.New(seed), n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Sample(rng.New(seed), n)
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := m.SampleClasses(rng.New(seed), n, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []interface {
			N() int
			M() int
			HasEdge(u, v int32) bool
		}{got, gotC} {
			if g.N() != want.N() || g.M() != want.M() {
				t.Fatalf("seed %d: %d nodes %d edges, want %d nodes %d edges",
					seed, g.N(), g.M(), want.N(), want.M())
			}
		}
		want.ForEachEdge(func(u, v int32) bool {
			if !got.HasEdge(u, v) || !gotC.HasEdge(u, v) {
				t.Fatalf("seed %d: edge (%d,%d) missing", seed, u, v)
			}
			return true
		})
	}
}

// TestHeterOnOffSampleClassesBlocks checks the class-structured draw: with
// p=[1 0; 0 1] every within-class pair is an edge and no cross-class pair
// is.
func TestHeterOnOffSampleClassesBlocks(t *testing.T) {
	m := HeterOnOff{P: [][]float64{{1, 0}, {0, 1}}}
	const n = 40
	labels := make([]uint8, n)
	for v := range labels {
		labels[v] = uint8(v % 2)
	}
	g, err := m.SampleClasses(rng.New(1), n, labels)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			same := labels[u] == labels[v]
			if g.HasEdge(u, v) != same {
				t.Fatalf("edge (%d,%d): got %v, want %v", u, v, g.HasEdge(u, v), same)
			}
		}
	}

	// Multi-class Sample without labels is ill-defined and must error.
	if _, err := m.Sample(rng.New(1), n); err == nil {
		t.Error("multi-class Sample without labels accepted")
	}
	// Out-of-range label must error, not panic.
	if _, err := m.SampleClasses(rng.New(1), 3, []uint8{0, 2, 0}); err == nil {
		t.Error("out-of-range class label accepted")
	}
	// Label/count mismatch must error.
	if _, err := m.SampleClasses(rng.New(1), 3, []uint8{0, 1}); err == nil {
		t.Error("label count mismatch accepted")
	}
}
