// Package channel implements the physical-link constraint models under which
// a secure WSN operates. The paper's model is the on/off channel: every
// node-to-node channel is independently on with probability p (an
// Erdős–Rényi graph on the sensors, Section II). Full visibility (always-on
// channels) and the disk model (random geometric graph, Section IX) are
// provided for the baseline and extension experiments.
package channel

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

// Model samples which node pairs have usable communication channels.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Validate reports whether the model's parameters are well-formed. It is
	// checked eagerly at construction time (wsn.NewDeployer, wsn.Deploy) so
	// misconfigurations surface before any sampling work.
	Validate() error
	// Sample draws the channel graph on n nodes.
	Sample(r *rng.Rand, n int) (*graph.Undirected, error)
}

// OnOff is the paper's on/off channel model: each channel is independently
// on with probability P (0 ≤ P ≤ 1). P = 0 is the degenerate all-off network
// (an empty channel graph), the well-defined limit of a vanishing disk
// radius; P = 1 is full visibility.
type OnOff struct {
	// P is the probability that a channel is on.
	P float64
}

var _ Model = OnOff{}

// Name implements Model.
func (m OnOff) Name() string { return fmt.Sprintf("on-off(p=%g)", m.P) }

// Validate implements Model: P must lie in [0, 1].
func (m OnOff) Validate() error {
	if math.IsNaN(m.P) || m.P < 0 || m.P > 1 {
		return fmt.Errorf("channel: on probability %v outside [0,1]", m.P)
	}
	return nil
}

// Sample implements Model by drawing G(n, p).
func (m OnOff) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g, err := randgraph.ErdosRenyi(r, n, m.P)
	if err != nil {
		return nil, fmt.Errorf("channel: on/off: %w", err)
	}
	return g, nil
}

// AlwaysOn is the full-visibility model: every pair of sensors has an active
// channel, so secure connectivity reduces to the key graph alone (the
// setting of the prior work the paper extends).
type AlwaysOn struct{}

var _ Model = AlwaysOn{}

// Name implements Model.
func (AlwaysOn) Name() string { return "always-on" }

// Validate implements Model: AlwaysOn has no parameters.
func (AlwaysOn) Validate() error { return nil }

// Sample implements Model by returning the complete graph.
func (AlwaysOn) Sample(_ *rng.Rand, n int) (*graph.Undirected, error) {
	g, err := graph.Complete(n)
	if err != nil {
		return nil, fmt.Errorf("channel: always-on: %w", err)
	}
	return g, nil
}

// Disk is the disk model: sensors are placed uniformly at random on the unit
// square and can communicate within Euclidean distance Radius. With Torus
// set, distances wrap (no boundary effects) and the marginal channel-on
// probability of any pair is exactly π·Radius² for Radius ≤ ½ — the knob
// used to compare the disk model against on/off channels (experiment E8).
type Disk struct {
	// Radius is the communication range in [0, ∞).
	Radius float64
	// Torus selects wraparound distances.
	Torus bool
}

var _ Model = Disk{}

// Name implements Model.
func (m Disk) Name() string {
	if m.Torus {
		return fmt.Sprintf("disk-torus(r=%g)", m.Radius)
	}
	return fmt.Sprintf("disk(r=%g)", m.Radius)
}

// Validate implements Model: Radius must be finite and non-negative. A zero
// radius is well-defined (no sensor reaches any other: an empty channel
// graph), matching the P = 0 limit of EquivalentOnOff.
func (m Disk) Validate() error {
	if math.IsNaN(m.Radius) || math.IsInf(m.Radius, 0) || m.Radius < 0 {
		return fmt.Errorf("channel: disk radius %v must be finite and non-negative", m.Radius)
	}
	return nil
}

// Sample implements Model by drawing a random geometric graph.
func (m Disk) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g, _, err := randgraph.Geometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus})
	if err != nil {
		return nil, fmt.Errorf("channel: disk: %w", err)
	}
	return g, nil
}

// SamplePositions draws a random geometric graph and also returns sensor
// positions, for deployments that need coordinates (visualisation, routing
// studies).
func (m Disk) SamplePositions(r *rng.Rand, n int) (*graph.Undirected, []randgraph.GeometricPoint, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	g, pts, err := randgraph.Geometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus})
	if err != nil {
		return nil, nil, fmt.Errorf("channel: disk: %w", err)
	}
	return g, pts, nil
}

// EquivalentOnOff returns the on/off model whose channel-on probability
// matches the disk model's marginal pair probability on the torus — π·r²
// for r ≤ ½, the exact clipped-ball area beyond (theory.DiskOnProb owns the
// formula) — the comparison device of experiment E8. A zero radius maps to
// OnOff{P: 0}, the (valid) empty channel graph, so the equivalence holds at
// the degenerate end of a radius sweep too; an invalid radius maps to an
// OnOff model that fails Validate, mirroring the Disk model itself.
func (m Disk) EquivalentOnOff() OnOff {
	p, err := theory.DiskOnProb(m.Radius)
	if err != nil {
		return OnOff{P: math.NaN()}
	}
	return OnOff{P: p}
}
