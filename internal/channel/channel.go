// Package channel implements the physical-link constraint models under which
// a secure WSN operates. The paper's model is the on/off channel: every
// node-to-node channel is independently on with probability p (an
// Erdős–Rényi graph on the sensors, Section II). Full visibility (always-on
// channels) and the disk model (random geometric graph, Section IX) are
// provided for the baseline and extension experiments.
package channel

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Model samples which node pairs have usable communication channels.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Sample draws the channel graph on n nodes.
	Sample(r *rng.Rand, n int) (*graph.Undirected, error)
}

// OnOff is the paper's on/off channel model: each channel is independently
// on with probability P (0 < P ≤ 1).
type OnOff struct {
	// P is the probability that a channel is on.
	P float64
}

var _ Model = OnOff{}

// Name implements Model.
func (m OnOff) Name() string { return fmt.Sprintf("on-off(p=%g)", m.P) }

// Sample implements Model by drawing G(n, p).
func (m OnOff) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	if m.P <= 0 || m.P > 1 {
		return nil, fmt.Errorf("channel: on probability %v outside (0,1]", m.P)
	}
	g, err := randgraph.ErdosRenyi(r, n, m.P)
	if err != nil {
		return nil, fmt.Errorf("channel: on/off: %w", err)
	}
	return g, nil
}

// AlwaysOn is the full-visibility model: every pair of sensors has an active
// channel, so secure connectivity reduces to the key graph alone (the
// setting of the prior work the paper extends).
type AlwaysOn struct{}

var _ Model = AlwaysOn{}

// Name implements Model.
func (AlwaysOn) Name() string { return "always-on" }

// Sample implements Model by returning the complete graph.
func (AlwaysOn) Sample(_ *rng.Rand, n int) (*graph.Undirected, error) {
	g, err := graph.Complete(n)
	if err != nil {
		return nil, fmt.Errorf("channel: always-on: %w", err)
	}
	return g, nil
}

// Disk is the disk model: sensors are placed uniformly at random on the unit
// square and can communicate within Euclidean distance Radius. With Torus
// set, distances wrap (no boundary effects) and the marginal channel-on
// probability of any pair is exactly π·Radius² for Radius ≤ ½ — the knob
// used to compare the disk model against on/off channels (experiment E8).
type Disk struct {
	// Radius is the communication range in [0, ∞).
	Radius float64
	// Torus selects wraparound distances.
	Torus bool
}

var _ Model = Disk{}

// Name implements Model.
func (m Disk) Name() string {
	if m.Torus {
		return fmt.Sprintf("disk-torus(r=%g)", m.Radius)
	}
	return fmt.Sprintf("disk(r=%g)", m.Radius)
}

// Sample implements Model by drawing a random geometric graph.
func (m Disk) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	g, _, err := randgraph.Geometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus})
	if err != nil {
		return nil, fmt.Errorf("channel: disk: %w", err)
	}
	return g, nil
}

// SamplePositions draws a random geometric graph and also returns sensor
// positions, for deployments that need coordinates (visualisation, routing
// studies).
func (m Disk) SamplePositions(r *rng.Rand, n int) (*graph.Undirected, []randgraph.GeometricPoint, error) {
	g, pts, err := randgraph.Geometric(r, n, m.Radius, randgraph.GeometricOptions{Torus: m.Torus})
	if err != nil {
		return nil, nil, fmt.Errorf("channel: disk: %w", err)
	}
	return g, pts, nil
}

// EquivalentOnOff returns the on/off model whose channel-on probability
// matches the disk model's marginal pair probability on the torus
// (p = π·r²), the comparison device of experiment E8.
func (m Disk) EquivalentOnOff() OnOff {
	p := math.Pi * m.Radius * m.Radius
	if p > 1 {
		p = 1
	}
	return OnOff{P: p}
}
