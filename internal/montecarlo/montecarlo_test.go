package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestEstimateProportionBasic(t *testing.T) {
	got, err := EstimateProportion(context.Background(), Config{Trials: 10000, Workers: 8, Seed: 1},
		func(trial int, r *rng.Rand) (bool, error) {
			return r.Bernoulli(0.3), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got.Trials != 10000 {
		t.Errorf("Trials = %d, want 10000", got.Trials)
	}
	if est := got.Estimate(); math.Abs(est-0.3) > 0.02 {
		t.Errorf("Estimate = %v, want ≈ 0.3", est)
	}
}

func TestEstimateProportionDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) int {
		got, err := EstimateProportion(context.Background(), Config{Trials: 2000, Workers: workers, Seed: 42},
			func(trial int, r *rng.Rand) (bool, error) {
				return r.Float64() < 0.5, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return got.Successes
	}
	if a, b := run(1), run(16); a != b {
		t.Errorf("1 worker gave %d successes, 16 workers gave %d — per-trial seeding broken", a, b)
	}
}

func TestEstimateProportionTrialIndexStreams(t *testing.T) {
	// Each trial must see its own distinct stream.
	var distinct int64
	seen := make([]uint64, 64)
	_, err := EstimateProportion(context.Background(), Config{Trials: 64, Workers: 4, Seed: 7},
		func(trial int, r *rng.Rand) (bool, error) {
			seen[trial] = r.Uint64()
			atomic.AddInt64(&distinct, 1)
			return true, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[uint64]bool{}
	for _, v := range seen {
		uniq[v] = true
	}
	if len(uniq) < 60 {
		t.Errorf("only %d distinct first outputs across 64 trials", len(uniq))
	}
}

func TestEstimateProportionError(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := EstimateProportion(context.Background(), Config{Trials: 100, Workers: 4, Seed: 1},
		func(trial int, r *rng.Rand) (bool, error) {
			if trial == 13 {
				return false, wantErr
			}
			return true, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestEstimateProportionConfigValidation(t *testing.T) {
	if _, err := EstimateProportion(context.Background(), Config{Trials: 0}, nil); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := EstimateProportion(context.Background(), Config{Trials: 5, Workers: -1}, nil); err == nil {
		t.Error("negative workers: want error")
	}
}

func TestEstimateProportionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := EstimateProportion(ctx, Config{Trials: 1 << 30, Workers: 2, Seed: 1},
			func(trial int, r *rng.Rand) (bool, error) {
				if atomic.AddInt64(&ran, 1) == 50 {
					cancel()
				}
				time.Sleep(time.Microsecond)
				return true, nil
			})
		if err == nil {
			t.Error("cancelled run returned nil error")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the run")
	}
}

func TestEstimateMean(t *testing.T) {
	s, err := EstimateMean(context.Background(), Config{Trials: 5000, Workers: 8, Seed: 3},
		func(trial int, r *rng.Rand) (float64, error) {
			return r.Float64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5000 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-0.5) > 0.02 {
		t.Errorf("Mean = %v, want ≈ 0.5", s.Mean())
	}
	if math.Abs(s.Variance()-1.0/12) > 0.01 {
		t.Errorf("Variance = %v, want ≈ 1/12", s.Variance())
	}
}

func TestEstimateMeanDeterministicOrder(t *testing.T) {
	run := func(workers int) float64 {
		s, err := EstimateMean(context.Background(), Config{Trials: 1000, Workers: workers, Seed: 9},
			func(trial int, r *rng.Rand) (float64, error) {
				return r.Float64(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean()
	}
	if a, b := run(1), run(12); a != b {
		t.Errorf("mean differs across worker counts: %v vs %v", a, b)
	}
}

func TestEstimateMeanError(t *testing.T) {
	wantErr := errors.New("bad trial")
	_, err := EstimateMean(context.Background(), Config{Trials: 50, Workers: 4, Seed: 1},
		func(trial int, r *rng.Rand) (float64, error) {
			if trial == 7 {
				return 0, wantErr
			}
			return 1, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped bad trial", err)
	}
}

func TestCollect(t *testing.T) {
	vals, err := Collect(context.Background(), Config{Trials: 100, Workers: 7, Seed: 5},
		func(trial int, r *rng.Rand) (float64, error) {
			return float64(trial) * 2, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 100 {
		t.Fatalf("len = %d", len(vals))
	}
	for i, v := range vals {
		if v != float64(i)*2 {
			t.Fatalf("vals[%d] = %v, want %v (trial order broken)", i, v, i*2)
		}
	}
}

func TestCollectError(t *testing.T) {
	wantErr := errors.New("collect fail")
	_, err := Collect(context.Background(), Config{Trials: 30, Workers: 3, Seed: 1},
		func(trial int, r *rng.Rand) (float64, error) {
			if trial == 20 {
				return 0, wantErr
			}
			return 0, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped collect fail", err)
	}
}

func TestWorkersDefaultAndClamp(t *testing.T) {
	// Workers = 0 defaults to NumCPU and must still work; workers are
	// clamped to the trial count (no deadlock with more workers than work).
	got, err := EstimateProportion(context.Background(), Config{Trials: 3, Workers: 64, Seed: 2},
		func(trial int, r *rng.Rand) (bool, error) { return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Successes != 3 {
		t.Errorf("Successes = %d, want 3", got.Successes)
	}
	got, err = EstimateProportion(context.Background(), Config{Trials: 3, Seed: 2},
		func(trial int, r *rng.Rand) (bool, error) { return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Successes != 3 {
		t.Errorf("default workers: Successes = %d, want 3", got.Successes)
	}
}

// TestTrialPanicIsolation pins the supervision contract on every engine
// entry point: a panicking trial must surface as a *PanicError carrying the
// panic site in its stack — never unwind the worker goroutine and kill the
// process — and sibling workers must drain cleanly.
func TestTrialPanicIsolation(t *testing.T) {
	cfg := Config{Trials: 200, Workers: 4, Seed: 9}
	checkPanic := func(t *testing.T, err error) {
		t.Helper()
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want a *PanicError", err)
		}
		if pe.Value != "trial exploded" {
			t.Errorf("panic value = %v", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "montecarlo") {
			t.Errorf("stack missing the panic site:\n%s", pe.Stack)
		}
	}
	t.Run("proportion", func(t *testing.T) {
		_, err := EstimateProportion(context.Background(), cfg,
			func(trial int, r *rng.Rand) (bool, error) {
				if trial == 37 {
					panic("trial exploded")
				}
				return true, nil
			})
		checkPanic(t, err)
	})
	t.Run("meanvec", func(t *testing.T) {
		_, err := EstimateMeanVec(context.Background(), cfg, 1,
			func(trial int, r *rng.Rand) ([]float64, error) {
				if trial == 37 {
					panic("trial exploded")
				}
				return []float64{1}, nil
			})
		checkPanic(t, err)
	})
	t.Run("mean", func(t *testing.T) {
		_, err := EstimateMean(context.Background(), cfg,
			func(trial int, r *rng.Rand) (float64, error) {
				if trial == 37 {
					panic("trial exploded")
				}
				return 1, nil
			})
		checkPanic(t, err)
	})
	t.Run("collect", func(t *testing.T) {
		_, err := Collect(context.Background(), cfg,
			func(trial int, r *rng.Rand) (float64, error) {
				if trial == 37 {
					panic("trial exploded")
				}
				return 1, nil
			})
		checkPanic(t, err)
	})
}

// TestTransientMarking pins the retryability marker: Transient wraps an
// error so errors.Is matches ErrTransient while the original cause remains
// reachable, and nil stays nil.
func TestTransientMarking(t *testing.T) {
	cause := errors.New("socket reset")
	err := Transient(cause)
	if !errors.Is(err, ErrTransient) {
		t.Error("Transient error does not match ErrTransient")
	}
	if !errors.Is(err, cause) {
		t.Error("Transient error lost its cause")
	}
	if err.Error() != cause.Error() {
		t.Errorf("message changed: %q", err.Error())
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must stay nil")
	}
	if errors.Is(cause, ErrTransient) {
		t.Error("unmarked error must not match ErrTransient")
	}
	// Wrapping through fmt.Errorf %w keeps the marker visible.
	wrapped := fmt.Errorf("trial 3: %w", Transient(cause))
	if !errors.Is(wrapped, ErrTransient) {
		t.Error("fmt-wrapped transient error lost the marker")
	}
}
