// Package montecarlo runs repeated randomized trials across a bounded worker
// pool with per-trial deterministic seeding, so that estimates are exactly
// reproducible from a base seed regardless of GOMAXPROCS or scheduling.
//
// This is the engine under every empirical curve in the paper reproduction:
// a trial samples one random graph and evaluates a predicate ("is it
// k-connected?") or a statistic (its degree histogram); the runner
// aggregates.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

// PanicError is a panic recovered from a trial (or, one layer up, from a
// sweep point's build), converted into an ordinary error so one faulty trial
// aborts its run instead of killing the process — sibling workers and shards
// drain cleanly and the caller decides whether to retry, skip or fail.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the stack captured at the recovery site; it includes the
	// panicking frames.
	Stack []byte
}

// NewPanicError wraps a recovered panic value, capturing the current stack.
// Call it directly inside the recover() branch so the panicking frames are
// still on the goroutine stack.
func NewPanicError(value any) *PanicError {
	return &PanicError{Value: value, Stack: debug.Stack()}
}

// Error renders the panic value with its stack trace.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// ErrTransient marks errors worth retrying: trial failures caused by
// external, non-deterministic conditions (an injected fault, a flaky
// side-channel) rather than by the trial's own deterministic computation.
// Match with errors.Is; create with Transient.
var ErrTransient = errors.New("transient failure")

// transientError wraps an error so errors.Is(err, ErrTransient) holds while
// the original cause stays unwrappable.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }
func (e transientError) Is(target error) bool {
	return target == ErrTransient
}

// Transient marks err as retryable: the sweep supervisor's default retry
// policy re-runs points whose failure matches ErrTransient, because a
// deterministic re-run at the same seed can succeed when the cause was
// external. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err: err}
}

// safeTrial invokes fn with panic isolation: a panicking trial returns a
// *PanicError instead of unwinding the worker goroutine.
func safeTrial(fn Trial, trial int, r *rng.Rand) (ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			ok, err = false, NewPanicError(p)
		}
	}()
	return fn(trial, r)
}

// safeSample is safeTrial for Sample trials.
func safeSample(fn Sample, trial int, r *rng.Rand) (v float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			v, err = 0, NewPanicError(p)
		}
	}()
	return fn(trial, r)
}

// safeSampleVec is safeTrial for SampleVec trials.
func safeSampleVec(fn SampleVec, trial int, r *rng.Rand) (v []float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			v, err = nil, NewPanicError(p)
		}
	}()
	return fn(trial, r)
}

// Trial evaluates one randomized trial. The generator is deterministically
// reseeded to stream (seed, trial index) before the call; implementations
// must use only it for randomness and must not retain it past the call (the
// worker reuses one generator across its trials). Returning an error aborts
// the whole run; a panic is recovered into a *PanicError and aborts the run
// the same way — it never unwinds past the engine.
type Trial func(trial int, r *rng.Rand) (bool, error)

// Config controls a Monte Carlo run.
type Config struct {
	// Trials is the number of independent trials; must be positive.
	Trials int
	// Workers bounds parallelism; 0 means runtime.NumCPU().
	Workers int
	// Seed is the base seed; trial i runs on stream rng.NewStream(Seed, i).
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Trials <= 0 {
		return c, fmt.Errorf("montecarlo: trials must be positive, got %d", c.Trials)
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("montecarlo: workers must be non-negative, got %d", c.Workers)
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Workers > c.Trials {
		c.Workers = c.Trials
	}
	return c, nil
}

// EstimateProportion runs cfg.Trials independent trials of fn and returns
// the success proportion. It stops early (returning the context error) when
// ctx is cancelled; workers are always fully drained before return.
func EstimateProportion(ctx context.Context, cfg Config, fn Trial) (stats.Proportion, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return stats.Proportion{}, err
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		successes int
		completed int
		firstErr  error
	)
	trialCh := make(chan int)
	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			// One reseeded generator per worker: trial i always observes the
			// exact NewStream(Seed, i) state, with no per-trial allocation.
			var r rng.Rand
			for trial := range trialCh {
				r.ReseedStream(cfg.Seed, uint64(trial))
				ok, err := safeTrial(fn, trial, &r)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("montecarlo: trial %d: %w", trial, err)
					}
				} else {
					completed++
					if ok {
						successes++
					}
				}
				mu.Unlock()
				if err != nil {
					cancel()
					return
				}
			}
		}()
	}

feed:
	for trial := 0; trial < cfg.Trials; trial++ {
		select {
		case trialCh <- trial:
		case <-cancelCtx.Done():
			break feed
		}
	}
	close(trialCh)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return stats.Proportion{}, firstErr
	}
	if err := ctx.Err(); err != nil {
		return stats.Proportion{Successes: successes, Trials: completed},
			fmt.Errorf("montecarlo: cancelled after %d/%d trials: %w", completed, cfg.Trials, err)
	}
	return stats.Proportion{Successes: successes, Trials: completed}, nil
}

// Sample is a trial producing a numeric observation.
type Sample func(trial int, r *rng.Rand) (float64, error)

// EstimateMean runs cfg.Trials trials of fn and aggregates the observations
// into a Summary (mean, variance, extremes). It is EstimateMeanVec with one
// component, so the concurrency/cancellation behavior is shared.
func EstimateMean(ctx context.Context, cfg Config, fn Sample) (*stats.Summary, error) {
	summaries, err := EstimateMeanVec(ctx, cfg, 1,
		func(trial int, r *rng.Rand) ([]float64, error) {
			v, err := fn(trial, r)
			if err != nil {
				return nil, err
			}
			return []float64{v}, nil
		})
	if summaries == nil {
		return nil, err
	}
	return summaries[0], err
}

// SampleVec is a trial producing several numeric observations at once, for
// workloads that measure multiple statistics on one sampled object (e.g.
// largest-component fraction and isolated fraction of the same topology)
// without paying the sampling cost per statistic.
type SampleVec func(trial int, r *rng.Rand) ([]float64, error)

// EstimateMeanVec runs cfg.Trials trials of fn and aggregates component i of
// every observation into its own Summary. fn must return exactly dims values
// each trial; a mismatch aborts the run.
func EstimateMeanVec(ctx context.Context, cfg Config, dims int, fn SampleVec) ([]*stats.Summary, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("montecarlo: dims must be positive, got %d", dims)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Dense per-trial storage so each Summary folds observations in
	// deterministic order regardless of completion order.
	values := make([][]float64, cfg.Trials)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	trialCh := make(chan int)
	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			var r rng.Rand
			for trial := range trialCh {
				r.ReseedStream(cfg.Seed, uint64(trial))
				v, err := safeSampleVec(fn, trial, &r)
				if err == nil && len(v) != dims {
					err = fmt.Errorf("montecarlo: trial returned %d values, want %d", len(v), dims)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("montecarlo: trial %d: %w", trial, err)
					}
				} else {
					values[trial] = v
				}
				mu.Unlock()
				if err != nil {
					cancel()
					return
				}
			}
		}()
	}

feed:
	for trial := 0; trial < cfg.Trials; trial++ {
		select {
		case trialCh <- trial:
		case <-cancelCtx.Done():
			break feed
		}
	}
	close(trialCh)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	summaries := make([]*stats.Summary, dims)
	for i := range summaries {
		summaries[i] = &stats.Summary{}
	}
	completed := 0
	for _, v := range values {
		if v == nil {
			continue
		}
		completed++
		for i, x := range v {
			summaries[i].Add(x)
		}
	}
	if err := ctx.Err(); err != nil {
		return summaries, fmt.Errorf("montecarlo: cancelled after %d/%d trials: %w", completed, cfg.Trials, err)
	}
	return summaries, nil
}

// Collect runs cfg.Trials trials of fn and returns every observation in
// trial order. It is the building block for distribution-level experiments
// (degree histograms, compromise fractions).
func Collect(ctx context.Context, cfg Config, fn Sample) ([]float64, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	values := make([]float64, cfg.Trials)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	trialCh := make(chan int)
	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			defer wg.Done()
			var r rng.Rand
			for trial := range trialCh {
				r.ReseedStream(cfg.Seed, uint64(trial))
				v, err := safeSample(fn, trial, &r)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("montecarlo: trial %d: %w", trial, err)
					}
					mu.Unlock()
					cancel()
					return
				}
				values[trial] = v
			}
		}()
	}

feed:
	for trial := 0; trial < cfg.Trials; trial++ {
		select {
		case trialCh <- trial:
		case <-cancelCtx.Done():
			break feed
		}
	}
	close(trialCh)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("montecarlo: cancelled: %w", err)
	}
	return values, nil
}
