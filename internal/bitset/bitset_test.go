package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	tests := []struct {
		name string
		n    int
		want int
	}{
		{name: "zero", n: 0, want: 0},
		{name: "negative clamps", n: -5, want: 0},
		{name: "one word", n: 64, want: 64},
		{name: "partial word", n: 70, want: 70},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(tt.n)
			if got := s.Cap(); got != tt.want {
				t.Errorf("Cap() = %d, want %d", got, tt.want)
			}
			if got := s.Count(); got != 0 {
				t.Errorf("Count() = %d, want 0", got)
			}
		})
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Errorf("Contains(%d) = true before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	// Re-adding is idempotent.
	s.Add(0)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() after duplicate Add = %d, want 7", got)
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) {
		t.Error("Contains(-1) = true, want false")
	}
	if s.Contains(10) {
		t.Error("Contains(10) = true, want false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range did not panic")
		}
	}()
	New(4).Add(4)
}

func TestFromIndices(t *testing.T) {
	s, err := FromIndices(100, []int{3, 1, 99})
	if err != nil {
		t.Fatalf("FromIndices: %v", err)
	}
	want := []int{1, 3, 99}
	got := s.Indices(nil)
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
	if _, err := FromIndices(10, []int{10}); err == nil {
		t.Error("FromIndices out of range: got nil error")
	}
	if _, err := FromIndices(10, []int{-1}); err == nil {
		t.Error("FromIndices negative: got nil error")
	}
}

func TestSetAlgebra(t *testing.T) {
	mk := func(idx ...int) *Set {
		s, err := FromIndices(200, idx)
		if err != nil {
			t.Fatalf("FromIndices: %v", err)
		}
		return s
	}
	t.Run("union", func(t *testing.T) {
		a := mk(1, 2, 3)
		a.Union(mk(3, 4, 100))
		if !a.Equal(mk(1, 2, 3, 4, 100)) {
			t.Errorf("union = %v", a)
		}
	})
	t.Run("intersect", func(t *testing.T) {
		a := mk(1, 2, 3, 100)
		a.Intersect(mk(2, 100, 150))
		if !a.Equal(mk(2, 100)) {
			t.Errorf("intersect = %v", a)
		}
	})
	t.Run("difference", func(t *testing.T) {
		a := mk(1, 2, 3)
		a.Difference(mk(2, 7))
		if !a.Equal(mk(1, 3)) {
			t.Errorf("difference = %v", a)
		}
	})
	t.Run("subset", func(t *testing.T) {
		if !mk(1, 2).IsSubsetOf(mk(1, 2, 3)) {
			t.Error("subset = false, want true")
		}
		if mk(1, 4).IsSubsetOf(mk(1, 2, 3)) {
			t.Error("subset = true, want false")
		}
		if !mk().IsSubsetOf(mk()) {
			t.Error("empty subset of empty = false")
		}
	})
}

func TestIntersectionCount(t *testing.T) {
	tests := []struct {
		name string
		a, b []int
		want int
	}{
		{name: "disjoint", a: []int{1, 2}, b: []int{3, 4}, want: 0},
		{name: "overlap", a: []int{1, 2, 64, 65}, b: []int{2, 64, 99}, want: 2},
		{name: "identical", a: []int{5, 70, 120}, b: []int{5, 70, 120}, want: 3},
		{name: "empty", a: nil, b: []int{1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := FromIndices(128, tt.a)
			if err != nil {
				t.Fatal(err)
			}
			b, err := FromIndices(128, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if got := a.IntersectionCount(b); got != tt.want {
				t.Errorf("IntersectionCount = %d, want %d", got, tt.want)
			}
			if got := b.IntersectionCount(a); got != tt.want {
				t.Errorf("IntersectionCount reversed = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIntersectionCountDifferentCaps(t *testing.T) {
	a, err := FromIndices(64, []int{1, 63})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromIndices(256, []int{1, 63, 200})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if got := b.IntersectionCount(a); got != 2 {
		t.Errorf("IntersectionCount reversed = %d, want 2", got)
	}
}

func TestIntersectsAtLeast(t *testing.T) {
	a, err := FromIndices(512, []int{1, 100, 200, 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromIndices(512, []int{100, 200, 300, 400})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q <= 3; q++ {
		if !a.IntersectsAtLeast(b, q) {
			t.Errorf("IntersectsAtLeast(q=%d) = false, want true", q)
		}
	}
	if a.IntersectsAtLeast(b, 4) {
		t.Error("IntersectsAtLeast(q=4) = true, want false")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(7)
	b := a.Clone()
	b.Add(9)
	if a.Contains(9) {
		t.Error("mutating clone affected original")
	}
	if !b.Contains(7) {
		t.Error("clone lost element")
	}
}

func TestClear(t *testing.T) {
	a := New(128)
	a.Add(0)
	a.Add(127)
	a.Clear()
	if got := a.Count(); got != 0 {
		t.Errorf("Count after Clear = %d, want 0", got)
	}
	if got := a.Cap(); got != 128 {
		t.Errorf("Cap after Clear = %d, want 128", got)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	a, err := FromIndices(64, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	a.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("ForEach early stop saw %v, want [1 2]", seen)
	}
}

func TestString(t *testing.T) {
	a, err := FromIndices(64, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.String(), "{1, 3}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := New(8).String(), "{}"; got != want {
		t.Errorf("empty String() = %q, want %q", got, want)
	}
}

// randomSet builds a reproducible random set over [0, n) plus the mirror
// Go map for model-based checks.
func randomSet(r *rand.Rand, n int) (*Set, map[int]bool) {
	s := New(n)
	m := make(map[int]bool)
	for i := 0; i < n/2; i++ {
		v := r.Intn(n)
		s.Add(v)
		m[v] = true
	}
	return s, m
}

func TestQuickCountMatchesModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		s, m := randomSet(r, n)
		if s.Count() != len(m) {
			return false
		}
		for _, i := range s.Indices(nil) {
			if !m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionCommutesAndBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, am := randomSet(r, n)
		b, bm := randomSet(r, n)
		got := a.IntersectionCount(b)
		want := 0
		for k := range am {
			if bm[k] {
				want++
			}
		}
		if got != want || got != b.IntersectionCount(a) {
			return false
		}
		// IntersectsAtLeast must agree with the count for every threshold.
		for q := 0; q <= want+1; q++ {
			if a.IntersectsAtLeast(b, q) != (want >= q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| + |A ∩ B| == |A| + |B| (inclusion-exclusion).
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, _ := randomSet(r, n)
		b, _ := randomSet(r, n)
		union := a.Clone()
		union.Union(b)
		inter := a.Clone()
		inter.Intersect(b)
		return union.Count()+inter.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, _ := randomSet(r, 10000)
	c, _ := randomSet(r, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectionCount(c)
	}
}

func BenchmarkIntersectsAtLeast2(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a, _ := randomSet(r, 10000)
	c, _ := randomSet(r, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.IntersectsAtLeast(c, 2)
	}
}

func TestForEachIntersection(t *testing.T) {
	a, err := FromIndices(256, []int{1, 2, 64, 65, 200})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromIndices(256, []int{2, 64, 99, 200})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	a.ForEachIntersection(b, func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{2, 64, 200}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v", got, want)
		}
	}
	// Early stop.
	var first []int
	a.ForEachIntersection(b, func(i int) bool {
		first = append(first, i)
		return false
	})
	if len(first) != 1 || first[0] != 2 {
		t.Errorf("early stop visited %v, want [2]", first)
	}
	// Differing capacities intersect over the common prefix.
	small, err := FromIndices(64, []int{2, 63})
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	a.ForEachIntersection(small, func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("mixed-cap intersection = %v, want [2]", got)
	}
	// Count agreement with IntersectionCount on every pair combination.
	pairs := []*Set{a, b, small, New(256), New(0)}
	for _, s := range pairs {
		for _, u := range pairs {
			n := 0
			s.ForEachIntersection(u, func(int) bool { n++; return true })
			if want := s.IntersectionCount(u); n != want {
				t.Errorf("ForEachIntersection visited %d, IntersectionCount = %d", n, want)
			}
		}
	}
}
