// Package bitset provides a dense, fixed-capacity bit set used throughout the
// library for key rings (subsets of a key pool) and adjacency rows.
//
// The zero value of Set is an empty set with zero capacity; use New to
// allocate capacity up front. All operations that combine two sets require
// equal capacity and report a mismatch through their error return where one
// exists, or document the panic otherwise (programmer error, per the style
// guide's "don't panic for expected failures" rule: a capacity mismatch is
// never an expected runtime failure, it is a bug in the caller).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe [0, Cap()).
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty Set with capacity for n bits.
// n must be non-negative; a negative n yields a zero-capacity set.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// FromIndices returns a Set of capacity n with the given indices set.
// Indices outside [0, n) are reported as an error.
func FromIndices(n int, indices []int) (*Set, error) {
	s := New(n)
	for _, i := range indices {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("bitset: index %d out of range [0, %d)", i, n)
		}
		s.Add(i)
	}
	return s, nil
}

// Cap returns the capacity (universe size) of the set in bits.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set. It panics if i is out of range, which is a
// programmer error (callers own the universe size).
func (s *Set) Add(i int) {
	s.boundsCheck(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.boundsCheck(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set. Out-of-range values are never
// members (no panic: queries are total).
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) boundsCheck(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0, %d)", i, s.n))
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectionCount returns |s ∩ t| without allocating. Sets of differing
// capacity intersect over the shorter word prefix, which equals the
// mathematical intersection because bits beyond a set's capacity are zero.
func (s *Set) IntersectionCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// IntersectsAtLeast reports whether |s ∩ t| ≥ q. It short-circuits as soon as
// the running count reaches q, which is the hot path for q-composite edge
// tests where q is small.
func (s *Set) IntersectsAtLeast(t *Set, q int) bool {
	if q <= 0 {
		return true
	}
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
		if c >= q {
			return true
		}
	}
	return false
}

// Union sets s = s ∪ t. Capacities must match.
func (s *Set) Union(t *Set) {
	s.capCheck(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t. Capacities must match.
func (s *Set) Intersect(t *Set) {
	s.capCheck(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Difference sets s = s \ t. Capacities must match.
func (s *Set) Difference(t *Set) {
	s.capCheck(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// IsSubsetOf reports whether every element of s is in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

func (s *Set) capCheck(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, t.n))
	}
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s (copy at boundaries).
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t contain exactly the same elements.
// Sets of different capacity are equal if their common elements match and the
// longer set has no elements beyond the shorter capacity.
func (s *Set) Equal(t *Set) bool {
	short, long := s.words, t.words
	if len(long) < len(short) {
		short, long = long, short
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Indices appends the elements of s to dst in ascending order and returns the
// extended slice. Pass nil to allocate.
func (s *Set) Indices(dst []int) []int {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &= w - 1
		}
	}
	return dst
}

// ForEachIntersection calls fn on each element of s ∩ t in ascending order,
// without materialising the intersection. Iteration stops early if fn returns
// false. Sets of differing capacity intersect over the shorter word prefix
// (bits beyond a set's capacity are zero, so this equals the mathematical
// intersection).
func (s *Set) ForEachIntersection(t *Set, fn func(i int) bool) {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	for wi, w := range a {
		w &= b[wi]
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEach calls fn on each element in ascending order. Iteration stops early
// if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
