package randgraph

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Block samplers: Erdős–Rényi sampling restricted to node subsets. They are
// the substrate of class-structured channel models (channel.HeterOnOff),
// where the on probability depends on the class pair: the channel graph is
// a union of within-class and cross-class Erdős–Rényi blocks, each sampled
// with the same geometric skipping as ErdosRenyi so cost stays
// O(block size + E[block edges]).

// AppendErdosRenyiSubset appends the edges of G(|nodes|, p) drawn over the
// given node IDs to dst and returns the extended slice: every unordered
// pair of distinct entries of nodes is an edge independently with
// probability p. Node IDs must be distinct; duplicates would produce
// self-loops or parallel edges downstream.
func AppendErdosRenyiSubset(r *rng.Rand, nodes []int32, p float64, dst []graph.Edge) ([]graph.Edge, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	m := len(nodes)
	if p == 0 || m < 2 {
		return dst, nil
	}
	if p == 1 {
		for u := 0; u < m; u++ {
			for v := u + 1; v < m; v++ {
				dst = append(dst, graph.Edge{U: nodes[u], V: nodes[v]})
			}
		}
		return dst, nil
	}
	// Geometric skipping across the flattened upper triangle, as in
	// ErdosRenyi, but emitting the subset's node IDs.
	u, v := 0, 0 // v is advanced before use; position (0,1) is slot 0
	for {
		skip := r.Geometric(p) + 1
		v += skip
		for v >= m {
			overflow := v - m
			u++
			v = u + 1 + overflow
			if u >= m-1 {
				break
			}
		}
		if u >= m-1 || v >= m {
			break
		}
		dst = append(dst, graph.Edge{U: nodes[u], V: nodes[v]})
	}
	return dst, nil
}

// AppendErdosRenyiBipartite appends independent Bernoulli(p) edges between
// every pair (a[i], b[j]) to dst and returns the extended slice. The two
// sides must be disjoint; overlap would produce self-loops.
func AppendErdosRenyiBipartite(r *rng.Rand, a, b []int32, p float64, dst []graph.Edge) ([]graph.Edge, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	if p == 0 || len(a) == 0 || len(b) == 0 {
		return dst, nil
	}
	if p == 1 {
		for _, u := range a {
			for _, v := range b {
				dst = append(dst, graph.Edge{U: u, V: v})
			}
		}
		return dst, nil
	}
	// Geometric skipping across the flattened |a|×|b| grid (slot = i·|b|+j).
	cols := len(b)
	slot := -1
	total := len(a) * cols
	for {
		slot += r.Geometric(p) + 1
		if slot >= total {
			return dst, nil
		}
		dst = append(dst, graph.Edge{U: a[slot/cols], V: b[slot%cols]})
	}
}
