package randgraph

import (
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Block samplers: Erdős–Rényi sampling restricted to node subsets. They are
// the substrate of class-structured channel models (channel.HeterOnOff),
// where the on probability depends on the class pair: the channel graph is
// a union of within-class and cross-class Erdős–Rényi blocks, each sampled
// with the same geometric skipping as ErdosRenyi so cost stays
// O(block size + E[block edges]).

// AppendErdosRenyiSubset appends the edges of G(|nodes|, p) drawn over the
// given node IDs to dst and returns the extended slice: every unordered
// pair of distinct entries of nodes is an edge independently with
// probability p. Node IDs must be distinct; duplicates would produce
// self-loops or parallel edges downstream.
func AppendErdosRenyiSubset(r *rng.Rand, nodes []int32, p float64, dst []graph.Edge) ([]graph.Edge, error) {
	err := AppendErdosRenyiSubsetStream(r, nodes, p, func(u, v int32) bool {
		dst = append(dst, graph.Edge{U: u, V: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendErdosRenyiBipartite appends independent Bernoulli(p) edges between
// every pair (a[i], b[j]) to dst and returns the extended slice. The two
// sides must be disjoint; overlap would produce self-loops.
func AppendErdosRenyiBipartite(r *rng.Rand, a, b []int32, p float64, dst []graph.Edge) ([]graph.Edge, error) {
	err := AppendErdosRenyiBipartiteStream(r, a, b, p, func(u, v int32) bool {
		dst = append(dst, graph.Edge{U: u, V: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}
