package randgraph

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Streaming edge enumeration: push-style duals of the Append* samplers. Each
// Emit/Stream function drives the exact same skip-distance walk as its
// appending counterpart — randomness is consumed draw for draw, so at a fixed
// generator state the yielded edge sequence equals the appended one — but
// edges flow to a callback instead of a buffer, so a consumer (e.g. a
// union-find connectivity trial) never materializes the edge list. When yield
// returns false the enumeration stops immediately and the remaining skip
// distances are NOT drawn; callers sharing a generator across draws must only
// early-exit when nothing after the draw consumes that stream (per-trial
// streams, as montecarlo hands out, satisfy this trivially).

// AppendErdosRenyiStream streams one G(n, p) draw edge by edge: each of the
// C(n,2) possible edges is present independently with probability p, pairs
// are enumerated in lexicographic order and skipped geometrically, and every
// present edge is passed to yield until it returns false. The name keeps the
// Append* family prefix: it is AppendErdosRenyi with the append replaced by a
// callback.
func AppendErdosRenyiStream(r *rng.Rand, n int, p float64, yield func(u, v int32) bool) error {
	if n < 0 {
		return fmt.Errorf("randgraph: negative node count %d", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	if p == 0 || n < 2 {
		return nil
	}
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !yield(int32(u), int32(v)) {
					return nil
				}
			}
		}
		return nil
	}
	// Geometric skipping across the flattened upper triangle.
	u, v := 0, 0 // v is advanced before use; position (0,1) is slot 0
	for {
		skip := r.Geometric(p) + 1
		v += skip
		for v >= n {
			overflow := v - n
			u++
			v = u + 1 + overflow
			if u >= n-1 {
				break
			}
		}
		if u >= n-1 || v >= n {
			return nil
		}
		if !yield(int32(u), int32(v)) {
			return nil
		}
	}
}

// AppendErdosRenyiSubsetStream streams G(|nodes|, p) drawn over the given
// node IDs: every unordered pair of distinct entries of nodes is an edge
// independently with probability p. Node IDs must be distinct. Randomness is
// consumed exactly as AppendErdosRenyiSubset.
func AppendErdosRenyiSubsetStream(r *rng.Rand, nodes []int32, p float64, yield func(u, v int32) bool) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	m := len(nodes)
	if p == 0 || m < 2 {
		return nil
	}
	if p == 1 {
		for u := 0; u < m; u++ {
			for v := u + 1; v < m; v++ {
				if !yield(nodes[u], nodes[v]) {
					return nil
				}
			}
		}
		return nil
	}
	// Geometric skipping across the flattened upper triangle, emitting the
	// subset's node IDs.
	u, v := 0, 0 // v is advanced before use; position (0,1) is slot 0
	for {
		skip := r.Geometric(p) + 1
		v += skip
		for v >= m {
			overflow := v - m
			u++
			v = u + 1 + overflow
			if u >= m-1 {
				break
			}
		}
		if u >= m-1 || v >= m {
			return nil
		}
		if !yield(nodes[u], nodes[v]) {
			return nil
		}
	}
}

// AppendErdosRenyiBipartiteStream streams independent Bernoulli(p) edges
// between every pair (a[i], b[j]). The two sides must be disjoint.
// Randomness is consumed exactly as AppendErdosRenyiBipartite.
func AppendErdosRenyiBipartiteStream(r *rng.Rand, a, b []int32, p float64, yield func(u, v int32) bool) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	if p == 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	if p == 1 {
		for _, u := range a {
			for _, v := range b {
				if !yield(u, v) {
					return nil
				}
			}
		}
		return nil
	}
	// Geometric skipping across the flattened |a|×|b| grid (slot = i·|b|+j).
	cols := len(b)
	slot := -1
	total := len(a) * cols
	for {
		slot += r.Geometric(p) + 1
		if slot >= total {
			return nil
		}
		if !yield(a[slot/cols], b[slot%cols]) {
			return nil
		}
	}
}
