package randgraph

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Streaming edge enumeration: push-style duals of the Append* samplers,
// running on the batched rng.GeometricSource skip kernel. Each Emit/Stream
// function drives the exact same skip-distance walk as its appending
// counterpart — skip i consumes uniform i, so at a fixed generator state the
// yielded edge sequence equals the appended one — but edges flow to a
// callback instead of a buffer, so a consumer (e.g. a union-find
// connectivity trial) never materializes the edge list.
//
// Randomness discipline: the kernel refills its uniform buffer in batches,
// so after any draw (early-exited or fully drained) the underlying generator
// parks at the next batch boundary rather than at the last uniform used.
// Both duals of every sampler share the kernel and therefore stay
// state-identical to each other, but callers sharing a generator across a
// draw and later consumers must treat the whole draw as one randomness
// commitment (per-trial streams, as montecarlo hands out, satisfy this
// trivially). When yield returns false the enumeration stops immediately and
// no further skips are consumed from the buffer.

// EmitErdosRenyi streams one G(n, p) draw edge by edge through the given
// skip kernel: each of the C(n,2) possible edges is present independently
// with probability p, pairs are enumerated in lexicographic order and
// skipped geometrically, and every present edge is passed to yield until it
// returns false. The source must be Reset to a generator; EmitErdosRenyi
// retargets its p and shares buffered randomness with any preceding Emit*
// call on the same source (the per-class-pair block sampler chains blocks
// that way).
func EmitErdosRenyi(src *rng.GeometricSource, n int, p float64, yield func(u, v int32) bool) error {
	if n < 0 {
		return fmt.Errorf("randgraph: negative node count %d", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	if p == 0 || n < 2 {
		return nil
	}
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !yield(int32(u), int32(v)) {
					return nil
				}
			}
		}
		return nil
	}
	src.SetP(p)
	// Geometric skipping across the flattened upper triangle. Skips beyond
	// the triangle end the walk regardless of magnitude, so capping them at
	// the slot count keeps the arithmetic below overflow-free without
	// changing any emitted edge (tiny p saturates Next at MaxInt).
	maxSkip := n * (n - 1) / 2
	u, v := 0, 0 // v is advanced before use; position (0,1) is slot 0
	for {
		skip := src.Next()
		if skip > maxSkip {
			skip = maxSkip
		}
		v += skip + 1
		for v >= n {
			overflow := v - n
			u++
			v = u + 1 + overflow
			if u >= n-1 {
				break
			}
		}
		if u >= n-1 || v >= n {
			return nil
		}
		if !yield(int32(u), int32(v)) {
			return nil
		}
	}
}

// AppendErdosRenyiStream is EmitErdosRenyi on a private kernel over r: the
// classic push-style dual of AppendErdosRenyi, consuming r's uniforms draw
// for draw. The name keeps the Append* family prefix: it is AppendErdosRenyi
// with the append replaced by a callback.
func AppendErdosRenyiStream(r *rng.Rand, n int, p float64, yield func(u, v int32) bool) error {
	var src rng.GeometricSource
	src.Reset(r)
	return EmitErdosRenyi(&src, n, p, yield)
}

// EmitErdosRenyiSubset streams G(|nodes|, p) drawn over the given node IDs
// through the given skip kernel: every unordered pair of distinct entries of
// nodes is an edge independently with probability p. Node IDs must be
// distinct. See EmitErdosRenyi for the kernel-sharing contract.
func EmitErdosRenyiSubset(src *rng.GeometricSource, nodes []int32, p float64, yield func(u, v int32) bool) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	m := len(nodes)
	if p == 0 || m < 2 {
		return nil
	}
	if p == 1 {
		for u := 0; u < m; u++ {
			for v := u + 1; v < m; v++ {
				if !yield(nodes[u], nodes[v]) {
					return nil
				}
			}
		}
		return nil
	}
	src.SetP(p)
	// Geometric skipping across the flattened upper triangle, emitting the
	// subset's node IDs; same overflow-free skip cap as EmitErdosRenyi.
	maxSkip := m * (m - 1) / 2
	u, v := 0, 0 // v is advanced before use; position (0,1) is slot 0
	for {
		skip := src.Next()
		if skip > maxSkip {
			skip = maxSkip
		}
		v += skip + 1
		for v >= m {
			overflow := v - m
			u++
			v = u + 1 + overflow
			if u >= m-1 {
				break
			}
		}
		if u >= m-1 || v >= m {
			return nil
		}
		if !yield(nodes[u], nodes[v]) {
			return nil
		}
	}
}

// AppendErdosRenyiSubsetStream is EmitErdosRenyiSubset on a private kernel
// over r, consuming randomness exactly as AppendErdosRenyiSubset.
func AppendErdosRenyiSubsetStream(r *rng.Rand, nodes []int32, p float64, yield func(u, v int32) bool) error {
	var src rng.GeometricSource
	src.Reset(r)
	return EmitErdosRenyiSubset(&src, nodes, p, yield)
}

// EmitErdosRenyiBipartite streams independent Bernoulli(p) edges between
// every pair (a[i], b[j]) through the given skip kernel. The two sides must
// be disjoint. See EmitErdosRenyi for the kernel-sharing contract.
func EmitErdosRenyiBipartite(src *rng.GeometricSource, a, b []int32, p float64, yield func(u, v int32) bool) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	if p == 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	if p == 1 {
		for _, u := range a {
			for _, v := range b {
				if !yield(u, v) {
					return nil
				}
			}
		}
		return nil
	}
	src.SetP(p)
	// Geometric skipping across the flattened |a|×|b| grid (slot = i·|b|+j).
	// The end-of-grid test runs on the raw skip BEFORE advancing the slot,
	// so a saturated MaxInt skip (tiny p) exits cleanly instead of
	// overflowing the position.
	cols := len(b)
	slot := -1
	total := len(a) * cols
	for {
		skip := src.Next()
		if skip >= total-slot-1 {
			return nil
		}
		slot += skip + 1
		if !yield(a[slot/cols], b[slot%cols]) {
			return nil
		}
	}
}

// AppendErdosRenyiBipartiteStream is EmitErdosRenyiBipartite on a private
// kernel over r, consuming randomness exactly as AppendErdosRenyiBipartite.
func AppendErdosRenyiBipartiteStream(r *rng.Rand, a, b []int32, p float64, yield func(u, v int32) bool) error {
	var src rng.GeometricSource
	src.Reset(r)
	return EmitErdosRenyiBipartite(&src, a, b, p, yield)
}
