package randgraph

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// GeometricOptions configures random geometric graph sampling (the disk
// model of the paper's Section IX).
type GeometricOptions struct {
	// Torus, when true, wraps distances around the unit square, removing
	// boundary effects; the induced edge probability between any two nodes
	// is then exactly π·r² (for r ≤ 1/2), which is how disk-model
	// experiments are matched against on/off channels with p = π·r².
	Torus bool
}

// GeometricPoint is a sampled node position in the unit square.
type GeometricPoint struct {
	X, Y float64
}

// GeoScratch holds the reusable buffers of geometric sampling: node
// positions and the flat cell grid. A zero GeoScratch is ready to use;
// buffers grow on first use and are reused afterwards, so repeated draws
// through one scratch allocate nothing in steady state. Not safe for
// concurrent use.
type GeoScratch struct {
	pts       []GeometricPoint
	uni       []float64 // batched position uniforms, 2 per node
	cellOf    []int32   // cell index per node
	cellStart []int32   // CSR offsets into cellItems, one per cell (+1)
	cellItems []int32   // node ids grouped by cell, ascending within a cell
}

// Points returns the node positions of the most recent draw, valid until the
// next draw through this scratch.
func (sc *GeoScratch) Points() []GeometricPoint { return sc.pts }

// AppendGeometric appends the edges of one random geometric graph draw to
// dst and returns the extended slice: n nodes uniform on the unit square, an
// edge wherever the (optionally toroidal) Euclidean distance is at most
// radius. It consumes randomness exactly as Geometric does; positions are
// available from sc.Points afterwards. A cell grid makes the expected cost
// O(n + m). It is the appending form of EmitGeometric.
func (sc *GeoScratch) AppendGeometric(r *rng.Rand, n int, radius float64, opts GeometricOptions, dst []graph.Edge) ([]graph.Edge, error) {
	err := sc.EmitGeometric(r, n, radius, opts, func(u, v int32) bool {
		dst = append(dst, graph.Edge{U: u, V: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// EmitGeometric streams one random geometric graph draw edge by edge: all n
// positions are drawn up front in one batched FillFloat64 (randomness is
// consumed exactly as the per-coordinate draws were — X then Y per node in
// index order; the cell-grid walk itself spends no randomness), then the
// 3×3 neighborhood walk passes each in-range pair directly to yield until
// it returns false. Every pair is yielded at most once: on tiny toroidal
// grids, where wraparound aliases neighbor cells, the walk deduplicates the
// candidate cells, so degree-counting sinks can consume the stream as-is.
func (sc *GeoScratch) EmitGeometric(r *rng.Rand, n int, radius float64, opts GeometricOptions, yield func(u, v int32) bool) error {
	if n < 0 {
		return fmt.Errorf("randgraph: negative node count %d", n)
	}
	if radius < 0 {
		return fmt.Errorf("randgraph: negative radius %v", radius)
	}
	if cap(sc.pts) < n {
		sc.pts = make([]GeometricPoint, n)
	}
	sc.pts = sc.pts[:n]
	if cap(sc.uni) < 2*n {
		sc.uni = make([]float64, 2*n)
	}
	sc.uni = sc.uni[:2*n]
	r.FillFloat64(sc.uni)
	for i := range sc.pts {
		sc.pts[i] = GeometricPoint{X: sc.uni[2*i], Y: sc.uni[2*i+1]}
	}
	pts := sc.pts
	r2 := radius * radius

	// Grid of cells with side ≥ radius: only neighbors in the 3×3 block can
	// be within range. Cap the grid so tiny radii don't allocate wildly.
	cells := 1
	if radius > 0 {
		cells = int(1 / radius)
		if cells < 1 {
			cells = 1
		}
		if cells > 1+n {
			cells = 1 + n
		}
	}
	cellOf := func(p GeometricPoint) (int, int) {
		cx := int(p.X * float64(cells))
		cy := int(p.Y * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	// Bucket nodes by cell with a counting sort over the flat grid: ascending
	// node order within each cell, no per-cell slice headers. After the fill
	// pass cellStart[c] has advanced to the end of cell c; the rewind shift
	// restores start-of-cell semantics (cell c = items[cellStart[c]:
	// cellStart[c+1]]).
	nCells := cells * cells
	sc.cellOf = growInt32(sc.cellOf, n)
	sc.cellStart = growInt32(sc.cellStart, nCells+1)
	sc.cellItems = growInt32(sc.cellItems, n)
	for c := 0; c <= nCells; c++ {
		sc.cellStart[c] = 0
	}
	for i, p := range pts {
		cx, cy := cellOf(p)
		c := int32(cy*cells + cx)
		sc.cellOf[i] = c
		sc.cellStart[c]++
	}
	acc := int32(0)
	for c := 0; c < nCells; c++ {
		acc, sc.cellStart[c] = acc+sc.cellStart[c], acc
	}
	for i := 0; i < n; i++ {
		c := sc.cellOf[i]
		sc.cellItems[sc.cellStart[c]] = int32(i)
		sc.cellStart[c]++
	}
	for c := nCells; c > 0; c-- {
		sc.cellStart[c] = sc.cellStart[c-1]
	}
	sc.cellStart[0] = 0

	dist2 := func(a, b GeometricPoint) float64 {
		dx := math.Abs(a.X - b.X)
		dy := math.Abs(a.Y - b.Y)
		if opts.Torus {
			if dx > 0.5 {
				dx = 1 - dx
			}
			if dy > 0.5 {
				dy = 1 - dy
			}
		}
		return dx*dx + dy*dy
	}
	// Grids of side ≥ 3 visit 9 distinct cells per node; smaller toroidal
	// grids alias neighbor cells under wraparound, so the walk tracks the
	// (at most 9) cells already visited to keep every candidate pair unique.
	dedupCells := opts.Torus && cells < 3
	var seen [9]int32
	for i := 0; i < n; i++ {
		p := pts[i]
		cx, cy := cellOf(p)
		nSeen := 0
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if opts.Torus {
					nx = ((nx % cells) + cells) % cells
					ny = ((ny % cells) + cells) % cells
				} else if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				c := ny*cells + nx
				if dedupCells {
					dup := false
					for _, s := range seen[:nSeen] {
						if s == int32(c) {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					seen[nSeen] = int32(c)
					nSeen++
				}
				for _, j := range sc.cellItems[sc.cellStart[c]:sc.cellStart[c+1]] {
					if int(j) <= i {
						continue
					}
					if dist2(p, pts[j]) <= r2 {
						if !yield(int32(i), j) {
							return nil
						}
					}
				}
			}
		}
	}
	return nil
}

// growInt32 resizes buf to n entries (contents unspecified) reusing its
// capacity.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// Geometric samples a random geometric graph as a one-shot: n nodes uniform
// on the unit square, an edge wherever the (optionally toroidal) Euclidean
// distance is at most radius. It also returns the sampled positions. See
// GeoScratch.AppendGeometric for the buffer-reusing form.
func Geometric(r *rng.Rand, n int, radius float64, opts GeometricOptions) (*graph.Undirected, []GeometricPoint, error) {
	var sc GeoScratch
	edges, err := sc.AppendGeometric(r, n, radius, opts, nil)
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("randgraph: geometric graph: %w", err)
	}
	return g, sc.Points(), nil
}
