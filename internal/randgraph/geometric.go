package randgraph

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// GeometricOptions configures random geometric graph sampling (the disk
// model of the paper's Section IX).
type GeometricOptions struct {
	// Torus, when true, wraps distances around the unit square, removing
	// boundary effects; the induced edge probability between any two nodes
	// is then exactly π·r² (for r ≤ 1/2), which is how disk-model
	// experiments are matched against on/off channels with p = π·r².
	Torus bool
}

// GeometricPoint is a sampled node position in the unit square.
type GeometricPoint struct {
	X, Y float64
}

// Geometric samples a random geometric graph: n nodes uniform on the unit
// square, an edge wherever the (optionally toroidal) Euclidean distance is
// at most radius. It also returns the sampled positions. A cell grid makes
// the expected cost O(n + m).
func Geometric(r *rng.Rand, n int, radius float64, opts GeometricOptions) (*graph.Undirected, []GeometricPoint, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("randgraph: negative node count %d", n)
	}
	if radius < 0 {
		return nil, nil, fmt.Errorf("randgraph: negative radius %v", radius)
	}
	pts := make([]GeometricPoint, n)
	for i := range pts {
		pts[i] = GeometricPoint{X: r.Float64(), Y: r.Float64()}
	}
	var edges []graph.Edge
	r2 := radius * radius

	// Grid of cells with side ≥ radius: only neighbors in the 3×3 block can
	// be within range. Cap the grid so tiny radii don't allocate wildly.
	cells := 1
	if radius > 0 {
		cells = int(1 / radius)
		if cells < 1 {
			cells = 1
		}
		if cells > 1+n {
			cells = 1 + n
		}
	}
	grid := make([][]int32, cells*cells)
	cellOf := func(p GeometricPoint) (int, int) {
		cx := int(p.X * float64(cells))
		cy := int(p.Y * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	for i, p := range pts {
		cx, cy := cellOf(p)
		grid[cy*cells+cx] = append(grid[cy*cells+cx], int32(i))
	}
	dist2 := func(a, b GeometricPoint) float64 {
		dx := math.Abs(a.X - b.X)
		dy := math.Abs(a.Y - b.Y)
		if opts.Torus {
			if dx > 0.5 {
				dx = 1 - dx
			}
			if dy > 0.5 {
				dy = 1 - dy
			}
		}
		return dx*dx + dy*dy
	}
	for i := 0; i < n; i++ {
		p := pts[i]
		cx, cy := cellOf(p)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if opts.Torus {
					// Tiny grids alias cells under wraparound, producing
					// duplicate candidate pairs; NewFromEdges merges them.
					nx = ((nx % cells) + cells) % cells
					ny = ((ny % cells) + cells) % cells
				} else if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range grid[ny*cells+nx] {
					if int(j) <= i {
						continue
					}
					if dist2(p, pts[j]) <= r2 {
						edges = append(edges, graph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, nil, fmt.Errorf("randgraph: geometric graph: %w", err)
	}
	return g, pts, nil
}
