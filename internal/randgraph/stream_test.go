package randgraph

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// collectStream drains a streaming enumerator into an edge slice.
func collectStream(t *testing.T, emit func(yield func(u, v int32) bool) error) []graph.Edge {
	t.Helper()
	var edges []graph.Edge
	if err := emit(func(u, v int32) bool {
		edges = append(edges, graph.Edge{U: u, V: v})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return edges
}

// requireSameEdges asserts two edge sequences are identical, order included —
// the streaming duals must replay the appending walk exactly.
func requireSameEdges(t *testing.T, want, got []graph.Edge) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestErdosRenyiStreamMatchesAppend pins the draw-for-draw contract: at a
// fixed generator state the streamed G(n, p) edge sequence equals the
// appended one, and both walks leave the generator in the same state.
func TestErdosRenyiStreamMatchesAppend(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 47} {
		for _, p := range []float64{0, 0.01, 0.3, 0.95, 1} {
			for seed := uint64(1); seed <= 3; seed++ {
				ra, rs := rng.New(seed), rng.New(seed)
				want, err := AppendErdosRenyi(ra, n, p, nil)
				if err != nil {
					t.Fatal(err)
				}
				got := collectStream(t, func(yield func(u, v int32) bool) error {
					return AppendErdosRenyiStream(rs, n, p, yield)
				})
				requireSameEdges(t, want, got)
				if a, s := ra.Uint64(), rs.Uint64(); a != s {
					t.Fatalf("n=%d p=%v seed=%d: generators diverged after the draw", n, p, seed)
				}
			}
		}
	}
}

// TestErdosRenyiSubsetStreamMatchesAppend covers the subset-block dual used
// by within-class draws.
func TestErdosRenyiSubsetStreamMatchesAppend(t *testing.T) {
	nodes := []int32{3, 7, 8, 11, 20, 21, 35, 40}
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		for seed := uint64(1); seed <= 3; seed++ {
			ra, rs := rng.New(seed), rng.New(seed)
			want, err := AppendErdosRenyiSubset(ra, nodes, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := collectStream(t, func(yield func(u, v int32) bool) error {
				return AppendErdosRenyiSubsetStream(rs, nodes, p, yield)
			})
			requireSameEdges(t, want, got)
			if a, s := ra.Uint64(), rs.Uint64(); a != s {
				t.Fatalf("p=%v seed=%d: generators diverged after the draw", p, seed)
			}
		}
	}
}

// TestErdosRenyiBipartiteStreamMatchesAppend covers the cross-class block
// dual.
func TestErdosRenyiBipartiteStreamMatchesAppend(t *testing.T) {
	a := []int32{0, 2, 4, 6, 9}
	b := []int32{1, 3, 5, 7, 8, 10, 12}
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		for seed := uint64(1); seed <= 3; seed++ {
			ra, rs := rng.New(seed), rng.New(seed)
			want, err := AppendErdosRenyiBipartite(ra, a, b, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := collectStream(t, func(yield func(u, v int32) bool) error {
				return AppendErdosRenyiBipartiteStream(rs, a, b, p, yield)
			})
			requireSameEdges(t, want, got)
			if av, sv := ra.Uint64(), rs.Uint64(); av != sv {
				t.Fatalf("p=%v seed=%d: generators diverged after the draw", p, seed)
			}
		}
	}
}

// TestStreamEarlyExitIsPrefix pins the early-exit semantics: stopping after m
// edges yields exactly the first m edges of the full enumeration, for every
// stream variant.
func TestStreamEarlyExitIsPrefix(t *testing.T) {
	const seed = 9
	nodes := []int32{1, 4, 6, 9, 13, 17, 22, 30}
	sideA := []int32{0, 2, 4, 6}
	sideB := []int32{1, 3, 5, 7, 9}
	variants := map[string]func(r *rng.Rand, yield func(u, v int32) bool) error{
		"er": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return AppendErdosRenyiStream(r, 30, 0.3, yield)
		},
		"er-dense": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return AppendErdosRenyiStream(r, 12, 1, yield)
		},
		"subset": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return AppendErdosRenyiSubsetStream(r, nodes, 0.5, yield)
		},
		"bipartite": func(r *rng.Rand, yield func(u, v int32) bool) error {
			return AppendErdosRenyiBipartiteStream(r, sideA, sideB, 0.5, yield)
		},
	}
	for name, emit := range variants {
		t.Run(name, func(t *testing.T) {
			full := collectStream(t, func(yield func(u, v int32) bool) error {
				return emit(rng.New(seed), yield)
			})
			if len(full) < 3 {
				t.Fatalf("test draw too sparse: %d edges", len(full))
			}
			for stop := 0; stop <= len(full); stop++ {
				var prefix []graph.Edge
				err := emit(rng.New(seed), func(u, v int32) bool {
					prefix = append(prefix, graph.Edge{U: u, V: v})
					return len(prefix) < stop
				})
				if err != nil {
					t.Fatal(err)
				}
				wantLen := stop
				if stop == 0 {
					wantLen = 1 // yield runs once before its verdict is read
				}
				if wantLen > len(full) {
					wantLen = len(full)
				}
				requireSameEdges(t, full[:wantLen], prefix)
			}
		})
	}
}

// TestBipartiteStreamEarlyExitPrefix strengthens the bipartite case of the
// prefix law across side shapes the class-block sampler actually produces —
// single-row, single-column, tall and wide grids — and across densities:
// stopping after m edges must yield exactly the first m edges of the full
// enumeration at every possible stop point.
func TestBipartiteStreamEarlyExitPrefix(t *testing.T) {
	makeSide := func(start, step int32, count int) []int32 {
		side := make([]int32, count)
		for i := range side {
			side[i] = start + step*int32(i)
		}
		return side
	}
	shapes := []struct {
		name string
		a, b []int32
	}{
		{"1x1", makeSide(0, 1, 1), makeSide(100, 1, 1)},
		{"row-1x24", makeSide(0, 1, 1), makeSide(100, 1, 24)},
		{"col-24x1", makeSide(0, 1, 24), makeSide(100, 1, 1)},
		{"wide-3x17", makeSide(0, 2, 3), makeSide(100, 3, 17)},
		{"tall-17x3", makeSide(0, 3, 17), makeSide(100, 2, 3)},
	}
	for _, shape := range shapes {
		for _, p := range []float64{0.05, 0.5, 0.95, 1} {
			for seed := uint64(1); seed <= 3; seed++ {
				full := collectStream(t, func(yield func(u, v int32) bool) error {
					return AppendErdosRenyiBipartiteStream(rng.New(seed), shape.a, shape.b, p, yield)
				})
				for stop := 0; stop <= len(full); stop++ {
					var prefix []graph.Edge
					err := AppendErdosRenyiBipartiteStream(rng.New(seed), shape.a, shape.b, p,
						func(u, v int32) bool {
							prefix = append(prefix, graph.Edge{U: u, V: v})
							return len(prefix) < stop
						})
					if err != nil {
						t.Fatal(err)
					}
					wantLen := stop
					if stop == 0 {
						wantLen = 1 // yield runs once before its verdict is read
					}
					if wantLen > len(full) {
						wantLen = len(full)
					}
					if len(prefix) != wantLen {
						t.Fatalf("%s p=%g seed=%d stop=%d: %d edges, want %d",
							shape.name, p, seed, stop, len(prefix), wantLen)
					}
					for i := range prefix {
						if prefix[i] != full[i] {
							t.Fatalf("%s p=%g seed=%d stop=%d: edge %d = %+v, want %+v",
								shape.name, p, seed, stop, i, prefix[i], full[i])
						}
					}
				}
			}
		}
	}
}

// TestEmitGeometricMatchesAppend pins the geometric dual: the emitted pair
// sequence equals AppendGeometric's, including on the tiny toroidal grids
// where the 3×3 cell walk can revisit a pair.
func TestEmitGeometricMatchesAppend(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		radius float64
		opts   GeometricOptions
	}{
		{"plane", 60, 0.2, GeometricOptions{}},
		{"torus", 60, 0.2, GeometricOptions{Torus: true}},
		{"tiny-torus", 8, 0.45, GeometricOptions{Torus: true}},
		{"zero-radius", 30, 0, GeometricOptions{}},
		{"empty", 0, 0.3, GeometricOptions{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				var sa, ss GeoScratch
				want, err := sa.AppendGeometric(rng.New(seed), tc.n, tc.radius, tc.opts, nil)
				if err != nil {
					t.Fatal(err)
				}
				got := collectStream(t, func(yield func(u, v int32) bool) error {
					return ss.EmitGeometric(rng.New(seed), tc.n, tc.radius, tc.opts, yield)
				})
				requireSameEdges(t, want, got)
			}
		})
	}
}

// TestStreamValidation mirrors the appending validation on the streaming
// entry points.
func TestStreamValidation(t *testing.T) {
	yield := func(u, v int32) bool { return true }
	r := rng.New(1)
	if err := AppendErdosRenyiStream(r, -1, 0.5, yield); err == nil {
		t.Error("negative n: want error")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if err := AppendErdosRenyiStream(r, 10, p, yield); err == nil {
			t.Errorf("p=%v: want error", p)
		}
	}
	if err := AppendErdosRenyiSubsetStream(r, []int32{1, 2}, -1, yield); err == nil {
		t.Error("subset p=-1: want error")
	}
	if err := AppendErdosRenyiBipartiteStream(r, []int32{1}, []int32{2}, 2, yield); err == nil {
		t.Error("bipartite p=2: want error")
	}
}
