package randgraph

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestGeometricValidation(t *testing.T) {
	r := rng.New(1)
	if _, _, err := Geometric(r, -1, 0.1, GeometricOptions{}); err == nil {
		t.Error("negative n: want error")
	}
	if _, _, err := Geometric(r, 10, -0.1, GeometricOptions{}); err == nil {
		t.Error("negative radius: want error")
	}
}

func TestGeometricEdgesMatchDistances(t *testing.T) {
	// Cross-check the grid accelerated sampler against a direct O(n²)
	// distance scan, in both torus and square metrics.
	for _, torus := range []bool{false, true} {
		r := rng.New(21)
		for _, radius := range []float64{0, 0.05, 0.2, 0.45, 0.8} {
			g, pts, err := Geometric(r, 80, radius, GeometricOptions{Torus: torus})
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < 80; u++ {
				for v := u + 1; v < 80; v++ {
					dx := math.Abs(pts[u].X - pts[v].X)
					dy := math.Abs(pts[u].Y - pts[v].Y)
					if torus {
						if dx > 0.5 {
							dx = 1 - dx
						}
						if dy > 0.5 {
							dy = 1 - dy
						}
					}
					want := dx*dx+dy*dy <= radius*radius
					if got := g.HasEdge(int32(u), int32(v)); got != want {
						t.Fatalf("torus=%v radius=%v edge(%d,%d) = %v, want %v",
							torus, radius, u, v, got, want)
					}
				}
			}
		}
	}
}

func TestGeometricTorusEdgeProbability(t *testing.T) {
	// On the torus every pair is an edge with probability exactly π·r²
	// (r ≤ 1/2): the property used to match the disk model against on/off
	// channels in experiment E8.
	const (
		n      = 40
		radius = 0.1
		trials = 500
	)
	r := rng.New(22)
	edges := 0
	for i := 0; i < trials; i++ {
		g, _, err := Geometric(r, n, radius, GeometricOptions{Torus: true})
		if err != nil {
			t.Fatal(err)
		}
		edges += g.M()
	}
	want := math.Pi * radius * radius
	pairs := float64(n * (n - 1) / 2)
	got := float64(edges) / (pairs * trials)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("torus edge probability = %v, want π·r² = %v", got, want)
	}
}

func TestGeometricSquareHasFewerEdgesThanTorus(t *testing.T) {
	// Boundary effects can only remove edges relative to the torus metric.
	const trials = 200
	rSq, rTo := rng.New(23), rng.New(23)
	sq, to := 0, 0
	for i := 0; i < trials; i++ {
		g1, _, err := Geometric(rSq, 60, 0.2, GeometricOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g2, _, err := Geometric(rTo, 60, 0.2, GeometricOptions{Torus: true})
		if err != nil {
			t.Fatal(err)
		}
		sq += g1.M()
		to += g2.M()
	}
	if sq >= to {
		t.Errorf("square edges %d ≥ torus edges %d over same point sets", sq, to)
	}
}

func TestGeometricDeterminismAndPoints(t *testing.T) {
	g1, pts1, err := Geometric(rng.New(24), 50, 0.15, GeometricOptions{Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, pts2, err := Geometric(rng.New(24), 50, 0.15, GeometricOptions{Torus: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g1.IsSpanningSubgraphOf(g2) || !g2.IsSpanningSubgraphOf(g1) {
		t.Error("same seed produced different geometric graphs")
	}
	for i := range pts1 {
		if pts1[i] != pts2[i] {
			t.Fatalf("point %d differs between equal-seed samples", i)
		}
		if pts1[i].X < 0 || pts1[i].X >= 1 || pts1[i].Y < 0 || pts1[i].Y >= 1 {
			t.Fatalf("point %d = %+v outside unit square", i, pts1[i])
		}
	}
}

func TestGeometricZeroRadius(t *testing.T) {
	g, _, err := Geometric(rng.New(25), 100, 0, GeometricOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Errorf("radius 0 produced %d edges", g.M())
	}
}

func BenchmarkGeometric1000(b *testing.B) {
	r := rng.New(26)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Geometric(r, 1000, 0.05, GeometricOptions{Torus: true}); err != nil {
			b.Fatal(err)
		}
	}
}
