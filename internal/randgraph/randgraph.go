// Package randgraph samples the random graph families of the paper's model:
//
//   - Erdős–Rényi graphs G(n, p) — the on/off channel model (Section II);
//   - uniform q-intersection graphs G_q(n, K, P) — the q-composite key
//     predistribution scheme (each node draws a uniform K-subset of a P-key
//     pool; an edge requires ≥ q shared keys);
//   - binomial q-intersection graphs H_q(n, x, P) — the auxiliary family of
//     the paper's coupling proofs (each key is held independently with
//     probability x);
//   - the composite WSN topology G_{n,q}(n,K,P,p) = G_q(n,K,P) ∩ G(n,p)
//     (eq. (1)), sampled in one fused pass;
//   - random geometric graphs (the disk model discussed in Section IX).
//
// Samplers take explicit *rng.Rand generators and are deterministic given
// the generator state. The q-intersection samplers use an inverted
// key→holders index so that only node pairs actually sharing a key are
// touched: expected work is Θ(P·(nK/P)²) = Θ(n²K²/P) instead of the naive
// Θ(n²K) pairwise comparison.
package randgraph

import (
	"fmt"
	"math"
	"slices"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// maxCounterNodes bounds the node count for which the dense triangular
// pair-counter (n(n−1)/2 bytes) is used; beyond it the per-row counter keeps
// memory O(n).
const maxCounterNodes = 8192

// AppendErdosRenyi appends the edges of one G(n, p) draw to dst and returns
// the extended slice: each of the C(n,2) possible edges is present
// independently with probability p. Pairs are enumerated in lexicographic
// order and skipped geometrically, so the cost is O(n + E[m]) rather than
// O(n²). Pass a reused buffer (e.g. a graph.Builder's EdgeScratch) to keep
// Monte Carlo loops allocation-free; the draw consumes randomness exactly as
// ErdosRenyi does. It is the appending form of AppendErdosRenyiStream.
func AppendErdosRenyi(r *rng.Rand, n int, p float64, dst []graph.Edge) ([]graph.Edge, error) {
	err := AppendErdosRenyiStream(r, n, p, func(u, v int32) bool {
		dst = append(dst, graph.Edge{U: u, V: v})
		return true
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// ErdosRenyi samples G(n, p) as a one-shot graph; see AppendErdosRenyi for
// the buffer-reusing form.
func ErdosRenyi(r *rng.Rand, n int, p float64) (*graph.Undirected, error) {
	if n < 0 {
		return nil, fmt.Errorf("randgraph: negative node count %d", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("randgraph: edge probability %v outside [0,1]", p)
	}
	var edges []graph.Edge
	if p > 0 && n > 1 {
		expected := p * float64(n) * float64(n-1) / 2
		edges = make([]graph.Edge, 0, int(expected)+16)
	}
	edges, err := AppendErdosRenyi(r, n, p, edges)
	if err != nil {
		return nil, err
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("randgraph: erdős–rényi: %w", err)
	}
	return g, nil
}

// QSampler samples uniform q-intersection graphs G_q(n, K, P) and their
// composites with on/off channels, reusing internal buffers across draws so
// Monte Carlo sweeps do not churn the allocator. Not safe for concurrent
// use; give each worker its own sampler.
type QSampler struct {
	n, ring, pool, q int

	subset  *rng.SubsetSampler
	rings   []int32 // flattened n×ring key assignments
	keyCnt  []int32 // scratch: holders per key
	keyOff  []int32 // scratch: prefix offsets into holders
	holders []int32 // inverted index: key → holder nodes

	counts   []uint8 // dense triangular pair counter (small n)
	rowStart []int64 // triangular row offsets
	touched  []int64 // dirtied counter slots, for sparse clearing

	// Per-row counting for large n: O(n) memory instead of the dense
	// triangle, no map churn. rowCnt[w] counts keys shared between the
	// current row's node and w; rowTouched lists the dirtied entries.
	rowCnt     []uint8
	rowTouched []int32

	edges []graph.Edge // scratch edge list
}

// NewQSampler validates the model parameters 1 ≤ q ≤ K ≤ P and returns a
// reusable sampler for G_q(n, K, P).
func NewQSampler(n, ring, pool, q int) (*QSampler, error) {
	switch {
	case n < 0:
		return nil, fmt.Errorf("randgraph: negative node count %d", n)
	case q < 1:
		return nil, fmt.Errorf("randgraph: key overlap requirement q=%d must be ≥ 1", q)
	case ring < q:
		return nil, fmt.Errorf("randgraph: ring size %d below overlap requirement q=%d", ring, q)
	case pool < ring:
		return nil, fmt.Errorf("randgraph: pool size %d below ring size %d", pool, ring)
	}
	subset, err := rng.NewSubsetSampler(pool)
	if err != nil {
		return nil, fmt.Errorf("randgraph: q-sampler: %w", err)
	}
	s := &QSampler{
		n:       n,
		ring:    ring,
		pool:    pool,
		q:       q,
		subset:  subset,
		rings:   make([]int32, 0, n*ring),
		keyCnt:  make([]int32, pool),
		keyOff:  make([]int32, pool+1),
		holders: make([]int32, n*ring),
	}
	if n <= maxCounterNodes {
		s.rowStart = make([]int64, n)
		var acc int64
		for i := 0; i < n; i++ {
			s.rowStart[i] = acc - int64(i) - 1 // idx(i,j) = rowStart[i] + j
			acc += int64(n - 1 - i)
		}
		s.counts = make([]uint8, acc)
	} else {
		s.rowCnt = make([]uint8, n)
	}
	return s, nil
}

// Sample draws a fresh G_q(n, K, P).
func (s *QSampler) Sample(r *rng.Rand) (*graph.Undirected, error) {
	return s.sample(r, 1.01, nil) // pOn > 1 keeps every edge
}

// SampleInto draws a fresh G_q(n, K, P) through the caller's graph.Builder:
// byte-identical to Sample for the same generator state, but the CSR storage
// comes from the builder's reusable arenas, so a Monte Carlo loop allocates
// nothing in steady state. The returned graph follows the builder's lifetime
// contract (valid until the second-next build).
func (s *QSampler) SampleInto(r *rng.Rand, b *graph.Builder) (*graph.Undirected, error) {
	return s.sample(r, 1.01, b)
}

// SampleComposite draws a fresh G_{n,q}(n, K, P, p) = G_q(n,K,P) ∩ G(n,p)
// in one pass: each q-composite edge survives independently with
// probability pOn, which is distributionally identical to intersecting with
// an independent Erdős–Rényi graph (the channels C_ij are independent of
// the key events Γ_ij — eq. (2)).
func (s *QSampler) SampleComposite(r *rng.Rand, pOn float64) (*graph.Undirected, error) {
	if pOn < 0 || pOn > 1 {
		return nil, fmt.Errorf("randgraph: channel-on probability %v outside [0,1]", pOn)
	}
	return s.sample(r, pOn, nil)
}

// SampleCompositeInto is SampleComposite through a caller-supplied builder;
// see SampleInto for the lifetime contract.
func (s *QSampler) SampleCompositeInto(r *rng.Rand, pOn float64, b *graph.Builder) (*graph.Undirected, error) {
	if pOn < 0 || pOn > 1 {
		return nil, fmt.Errorf("randgraph: channel-on probability %v outside [0,1]", pOn)
	}
	return s.sample(r, pOn, b)
}

// KeyRing returns the key ring of node v from the most recent draw, as a
// slice view into internal storage (valid until the next Sample call).
func (s *QSampler) KeyRing(v int) []int32 {
	return s.rings[v*s.ring : (v+1)*s.ring]
}

func (s *QSampler) sample(r *rng.Rand, pOn float64, b *graph.Builder) (*graph.Undirected, error) {
	// 1. Assign key rings: n independent uniform K-subsets of the pool.
	s.rings = s.rings[:0]
	var err error
	for v := 0; v < s.n; v++ {
		s.rings, err = s.subset.AppendSample(r, s.ring, s.rings)
		if err != nil {
			return nil, fmt.Errorf("randgraph: key assignment: %w", err)
		}
	}
	// 2. Invert: holders[keyOff[k]:keyOff[k+1]] lists nodes holding key k.
	for k := range s.keyCnt {
		s.keyCnt[k] = 0
	}
	for _, k := range s.rings {
		s.keyCnt[k]++
	}
	s.keyOff[0] = 0
	for k := 0; k < s.pool; k++ {
		s.keyOff[k+1] = s.keyOff[k] + s.keyCnt[k]
		s.keyCnt[k] = 0 // reuse as fill cursor
	}
	for v := 0; v < s.n; v++ {
		for _, k := range s.rings[v*s.ring : (v+1)*s.ring] {
			s.holders[s.keyOff[k]+s.keyCnt[k]] = int32(v)
			s.keyCnt[k]++
		}
	}
	// 3+4. Count shared keys per node pair via the inverted index and
	// extract edges with count ≥ q, thinning by the channel model. Both
	// counting strategies emit qualifying pairs in ascending (u, v) order, so
	// the channel coins are spent identically whichever runs.
	q8 := uint8(s.q)
	if s.q > 255 {
		q8 = 255
	}
	s.edges = s.edges[:0]
	keep := func(u, v int32) {
		if pOn >= 1 || r.Bernoulli(pOn) {
			s.edges = append(s.edges, graph.Edge{U: u, V: v})
		}
	}
	if s.counts != nil {
		s.countDense()
		// Touched slots are appended out of order; sort so coin spending is
		// position-deterministic and matches the per-row path. Without
		// thinning no coins are spent and order is irrelevant (FromEdges
		// sorts adjacency), so skip the O(E log E) pass.
		if pOn < 1 {
			slices.Sort(s.touched)
		}
		for _, idx := range s.touched {
			if s.counts[idx] >= q8 {
				u, v := s.unpackDense(idx)
				keep(u, v)
			}
			s.counts[idx] = 0
		}
		s.touched = s.touched[:0]
	} else {
		s.countByRow(q8, pOn < 1, keep)
	}
	if b != nil {
		g, err := b.FromEdges(s.n, s.edges)
		if err != nil {
			return nil, fmt.Errorf("randgraph: q-intersection graph: %w", err)
		}
		return g, nil
	}
	g, err := graph.NewFromEdges(s.n, s.edges)
	if err != nil {
		return nil, fmt.Errorf("randgraph: q-intersection graph: %w", err)
	}
	return g, nil
}

// countDense accumulates pair counts in the triangular array, recording
// touched slots for O(pairs) cleanup.
func (s *QSampler) countDense() {
	for k := 0; k < s.pool; k++ {
		hs := s.holders[s.keyOff[k]:s.keyOff[k+1]]
		for i := 0; i < len(hs); i++ {
			hi := hs[i]
			base := s.rowStart[hi]
			for j := i + 1; j < len(hs); j++ {
				idx := base + int64(hs[j])
				if s.counts[idx] == 0 {
					s.touched = append(s.touched, idx)
				}
				if s.counts[idx] < 255 {
					s.counts[idx]++
				}
			}
		}
	}
}

// countByRow is the large-n strategy: it walks nodes in ascending order and,
// for row u, counts the co-holders w > u of each of u's keys into an
// n-length counter cleared per row via a touched list. The per-key cursor
// (reusing keyCnt) advances past u in O(1) amortized because rows consume
// each holder list in ascending order. Total pair work matches countDense
// with O(n) memory and no per-draw map or qualifying-slice churn; when
// thinning (sortRows), each row's touched list is sorted so qualifying
// pairs spend channel coins in ascending (u, v) order and composite draws
// stay deterministic.
func (s *QSampler) countByRow(q8 uint8, sortRows bool, keep func(u, v int32)) {
	for k := 0; k < s.pool; k++ {
		s.keyCnt[k] = 0 // step 2's fill pass left the full holder counts here
	}
	rowCnt := s.rowCnt[:s.n]
	for u := 0; u < s.n; u++ {
		s.rowTouched = s.rowTouched[:0]
		for _, k := range s.rings[u*s.ring : (u+1)*s.ring] {
			// keyCnt[k] holders of k precede u and are already consumed; the
			// next one is u itself.
			cur := s.keyOff[k] + s.keyCnt[k]
			s.keyCnt[k]++
			for _, w := range s.holders[cur+1 : s.keyOff[k+1]] {
				if rowCnt[w] == 0 {
					s.rowTouched = append(s.rowTouched, w)
				}
				if rowCnt[w] < 255 {
					rowCnt[w]++
				}
			}
		}
		if sortRows {
			slices.Sort(s.rowTouched)
		}
		for _, w := range s.rowTouched {
			if rowCnt[w] >= q8 {
				keep(int32(u), w)
			}
			rowCnt[w] = 0
		}
	}
}

// unpackDense recovers the (u, v) pair from a triangular index. The
// holders lists are filled in increasing node order, so u < v always holds
// at pack time; unpack scans the row table (binary search on rowStart).
func (s *QSampler) unpackDense(idx int64) (int32, int32) {
	// rowStart is increasing in i for the effective start rowStart[i]+i+1;
	// binary search for the greatest u with rowStart[u] + u + 1 ≤ idx.
	lo, hi := 0, s.n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.rowStart[mid]+int64(mid)+1 <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return int32(lo), int32(idx - s.rowStart[lo])
}

// UniformQIntersection is the convenience one-shot form of QSampler.Sample.
func UniformQIntersection(r *rng.Rand, n, ring, pool, q int) (*graph.Undirected, error) {
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		return nil, err
	}
	return s.Sample(r)
}

// Composite is the convenience one-shot form of QSampler.SampleComposite:
// the paper's WSN topology G_{n,q}(n, K, P, p).
func Composite(r *rng.Rand, n, ring, pool, q int, pOn float64) (*graph.Undirected, error) {
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		return nil, err
	}
	return s.SampleComposite(r, pOn)
}

// BinomialQIntersection samples H_q(n, x, P): each of the P keys is added to
// each node's ring independently with probability x; nodes sharing ≥ q keys
// are adjacent. This is the auxiliary graph of the paper's Lemma 5/6
// coupling chain.
func BinomialQIntersection(r *rng.Rand, n int, x float64, pool, q int) (*graph.Undirected, error) {
	g, _, err := binomialQIntersection(r, n, x, pool, q)
	return g, err
}

// binomialQIntersection also returns the sampled ring sizes for use by the
// coupled sampler.
func binomialQIntersection(r *rng.Rand, n int, x float64, pool, q int) (*graph.Undirected, []int, error) {
	switch {
	case n < 0:
		return nil, nil, fmt.Errorf("randgraph: negative node count %d", n)
	case q < 1:
		return nil, nil, fmt.Errorf("randgraph: key overlap requirement q=%d must be ≥ 1", q)
	case pool < 0:
		return nil, nil, fmt.Errorf("randgraph: negative pool size %d", pool)
	case x < 0 || x > 1:
		return nil, nil, fmt.Errorf("randgraph: inclusion probability %v outside [0,1]", x)
	}
	// Draw ring sizes Binomial(P, x), then uniform subsets of that size —
	// distributionally identical to P independent coin flips per node, but
	// it reuses the fast subset sampler.
	sizes := make([]int, n)
	total := 0
	maxSize := 0
	for v := range sizes {
		sizes[v] = r.Binomial(pool, x)
		total += sizes[v]
		if sizes[v] > maxSize {
			maxSize = sizes[v]
		}
	}
	if pool == 0 || maxSize == 0 {
		g, err := graph.NewFromEdges(n, nil)
		return g, sizes, err
	}
	subset, err := rng.NewSubsetSampler(pool)
	if err != nil {
		return nil, nil, fmt.Errorf("randgraph: binomial q-intersection: %w", err)
	}
	rings := make([][]int32, n)
	buf := make([]int32, 0, total)
	for v := 0; v < n; v++ {
		start := len(buf)
		buf, err = subset.AppendSample(r, sizes[v], buf)
		if err != nil {
			return nil, nil, fmt.Errorf("randgraph: binomial q-intersection: %w", err)
		}
		rings[v] = buf[start:]
	}
	g, err := qIntersectFromRings(n, pool, q, rings)
	if err != nil {
		return nil, nil, err
	}
	return g, sizes, nil
}

// qIntersectFromRings builds the ≥q-shared-keys graph from explicit rings
// using the inverted-index counting strategy with a sparse map counter.
func qIntersectFromRings(n, pool, q int, rings [][]int32) (*graph.Undirected, error) {
	holders := make([][]int32, pool)
	for v, ring := range rings {
		for _, k := range ring {
			holders[k] = append(holders[k], int32(v))
		}
	}
	counts := make(map[int64]uint8)
	for _, hs := range holders {
		for i := 0; i < len(hs); i++ {
			ui := int64(hs[i]) * int64(n)
			for j := i + 1; j < len(hs); j++ {
				key := ui + int64(hs[j])
				if c := counts[key]; c < 255 {
					counts[key] = c + 1
				}
			}
		}
	}
	q8 := uint8(q)
	if q > 255 {
		q8 = 255
	}
	var edges []graph.Edge
	for key, cnt := range counts {
		if cnt >= q8 {
			edges = append(edges, graph.Edge{
				U: int32(key / int64(n)),
				V: int32(key % int64(n)),
			})
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, fmt.Errorf("randgraph: q-intersection from rings: %w", err)
	}
	return g, nil
}
