package randgraph

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// sameGraph reports byte-identical CSR contents.
func sameGraph(a, b *graph.Undirected) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// TestQSamplerSampleIntoMatchesSample pins the builder path of the
// q-intersection sampler against the one-shot path, on both counting
// strategies and with composite thinning (which spends channel coins, so
// pair emission order matters).
func TestQSamplerSampleIntoMatchesSample(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		name := "dense"
		if sparse {
			name = "sparse"
		}
		t.Run(name, func(t *testing.T) {
			mk := func() *QSampler {
				s, err := NewQSampler(90, 9, 260, 2)
				if err != nil {
					t.Fatal(err)
				}
				if sparse {
					forceSparse(s)
				}
				return s
			}
			one, reused := mk(), mk()
			b := graph.NewBuilder()
			for trial := 0; trial < 6; trial++ {
				seed := uint64(40 + trial)
				want, err := one.Sample(rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				got, err := reused.SampleInto(rng.New(seed), b)
				if err != nil {
					t.Fatal(err)
				}
				if !sameGraph(want, got) {
					t.Fatalf("trial %d: SampleInto differs from Sample", trial)
				}
				wantC, err := one.SampleComposite(rng.New(seed^0xbeef), 0.5)
				if err != nil {
					t.Fatal(err)
				}
				gotC, err := reused.SampleCompositeInto(rng.New(seed^0xbeef), 0.5, b)
				if err != nil {
					t.Fatal(err)
				}
				if !sameGraph(wantC, gotC) {
					t.Fatalf("trial %d: SampleCompositeInto differs from SampleComposite", trial)
				}
			}
		})
	}
}

// TestSparseCompositeMatchesDense pins that the dense and per-row counting
// strategies spend channel coins in the same (ascending pair) order, so the
// composite draw is strategy-independent, not just the key graph.
func TestSparseCompositeMatchesDense(t *testing.T) {
	mk := func(sparse bool) *QSampler {
		s, err := NewQSampler(110, 10, 280, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sparse {
			forceSparse(s)
		}
		return s
	}
	dense, sparse := mk(false), mk(true)
	for trial := 0; trial < 10; trial++ {
		seed := uint64(900 + trial)
		gd, err := dense.SampleComposite(rng.New(seed), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := sparse.SampleComposite(rng.New(seed), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(gd, gs) {
			t.Fatalf("trial %d: composite draw differs between counting strategies", trial)
		}
	}
}

// TestAppendErdosRenyiMatchesErdosRenyi pins the append-style sampler
// against the one-shot graph constructor, reusing one destination buffer.
func TestAppendErdosRenyiMatchesErdosRenyi(t *testing.T) {
	var buf []graph.Edge
	for _, p := range []float64{0, 0.07, 0.5, 1} {
		for trial := 0; trial < 4; trial++ {
			seed := uint64(3000 + trial)
			want, err := ErdosRenyi(rng.New(seed), 70, p)
			if err != nil {
				t.Fatal(err)
			}
			buf, err = AppendErdosRenyi(rng.New(seed), 70, p, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			got, err := graph.NewFromEdges(70, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(want, got) {
				t.Fatalf("p=%g trial %d: AppendErdosRenyi differs from ErdosRenyi", p, trial)
			}
		}
	}
	if _, err := AppendErdosRenyi(rng.New(1), -1, 0.5, nil); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := AppendErdosRenyi(rng.New(1), 10, 1.5, nil); err == nil {
		t.Error("p out of range: want error")
	}
	// The one-shot form must reject bad probabilities before sizing its
	// edge buffer from them (int(+Inf·…) would panic make).
	for _, p := range []float64{math.Inf(1), math.NaN(), -0.5, 2} {
		if _, err := ErdosRenyi(rng.New(1), 10, p); err == nil {
			t.Errorf("p=%v: want error", p)
		}
	}
}

// TestAppendGeometricMatchesGeometric pins the scratch-reusing geometric
// sampler against the one-shot form, positions included.
func TestAppendGeometricMatchesGeometric(t *testing.T) {
	var sc GeoScratch
	var buf []graph.Edge
	for _, torus := range []bool{false, true} {
		for trial := 0; trial < 4; trial++ {
			seed := uint64(7000 + trial)
			opts := GeometricOptions{Torus: torus}
			want, wantPts, err := Geometric(rng.New(seed), 60, 0.2, opts)
			if err != nil {
				t.Fatal(err)
			}
			buf, err = sc.AppendGeometric(rng.New(seed), 60, 0.2, opts, buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			got, err := graph.NewFromEdges(60, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(want, got) {
				t.Fatalf("torus=%v trial %d: AppendGeometric differs from Geometric", torus, trial)
			}
			gotPts := sc.Points()
			if len(gotPts) != len(wantPts) {
				t.Fatalf("position count %d, want %d", len(gotPts), len(wantPts))
			}
			for i := range wantPts {
				if gotPts[i] != wantPts[i] {
					t.Fatalf("position %d differs: %v vs %v", i, gotPts[i], wantPts[i])
				}
			}
		}
	}
}
