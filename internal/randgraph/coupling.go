package randgraph

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// CoupledPair is the result of sampling a binomial and a uniform
// q-intersection graph on one probability space so that the binomial graph
// is a spanning subgraph of the uniform one — the monotone coupling behind
// the paper's Lemma 5.
type CoupledPair struct {
	// Uniform is G_q(n, K, P).
	Uniform *graph.Undirected
	// Binomial is H_q(n, x, P), built from sub-rings of Uniform's rings.
	Binomial *graph.Undirected
	// Coupled reports whether the coupling event held: every node's
	// Binomial(P, x) draw was at most K. When false, Binomial was clipped to
	// ring size K and the subgraph relation still holds, but the marginal
	// law of Binomial deviates from H_q(n, x, P). Lemma 5's conditions make
	// the event hold with probability 1 − o(1).
	Coupled bool
}

// SampleCoupled draws the Lemma 5 coupling of H_q(n, x, P) ⊑ G_q(n, K, P):
// each node first draws m_v ~ Binomial(P, x); its binomial ring is a uniform
// m_v-subset of its uniform K-ring. Conditioned on m_v ≤ K for all v (the
// Coupled flag), both marginals are exact and the containment is pointwise.
func SampleCoupled(r *rng.Rand, n, ring, pool, q int, x float64) (*CoupledPair, error) {
	if x < 0 || x > 1 {
		return nil, fmt.Errorf("randgraph: coupling inclusion probability %v outside [0,1]", x)
	}
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		return nil, fmt.Errorf("randgraph: coupled sample: %w", err)
	}
	uniform, err := s.Sample(r)
	if err != nil {
		return nil, err
	}
	coupled := true
	subRings := make([][]int32, n)
	for v := 0; v < n; v++ {
		m := r.Binomial(pool, x)
		if m > ring {
			m = ring
			coupled = false
		}
		full := s.KeyRing(v)
		// A uniform m-subset of the node's uniform K-ring is a uniform
		// m-subset of the pool: partial Fisher–Yates over a copy.
		cp := append([]int32(nil), full...)
		for i := 0; i < m; i++ {
			j := i + r.Intn(len(cp)-i)
			cp[i], cp[j] = cp[j], cp[i]
		}
		subRings[v] = cp[:m]
	}
	binomial, err := qIntersectFromRings(n, pool, q, subRings)
	if err != nil {
		return nil, err
	}
	return &CoupledPair{Uniform: uniform, Binomial: binomial, Coupled: coupled}, nil
}
