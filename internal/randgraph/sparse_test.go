package randgraph

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// forceSparse converts a sampler to the per-row pair counter that is
// normally selected only for n > maxCounterNodes, so the sparse path can be
// exercised at test-friendly sizes.
func forceSparse(s *QSampler) {
	s.counts = nil
	s.rowStart = nil
	s.touched = nil
	s.rowCnt = make([]uint8, s.n)
}

func TestSparseCounterMatchesDense(t *testing.T) {
	const (
		n    = 120
		ring = 12
		pool = 300
		q    = 2
	)
	dense, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	forceSparse(sparse)
	for trial := 0; trial < 15; trial++ {
		seed := uint64(1000 + trial)
		gd, err := dense.Sample(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		gs, err := sparse.Sample(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !gd.IsSpanningSubgraphOf(gs) || !gs.IsSpanningSubgraphOf(gd) {
			t.Fatalf("trial %d: sparse and dense counters disagree", trial)
		}
	}
}

func TestSparseCompositeDeterministic(t *testing.T) {
	// The per-row path emits qualifying pairs in ascending (u, v) order
	// before spending channel coins; two runs from the same seed must agree
	// exactly.
	mk := func() *QSampler {
		s, err := NewQSampler(100, 10, 250, 2)
		if err != nil {
			t.Fatal(err)
		}
		forceSparse(s)
		return s
	}
	a, err := mk().SampleComposite(rng.New(7), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().SampleComposite(rng.New(7), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsSpanningSubgraphOf(b) || !b.IsSpanningSubgraphOf(a) {
		t.Error("sparse composite sampling not deterministic")
	}
}

func TestSparseCounterReuseIsClean(t *testing.T) {
	s, err := NewQSampler(80, 8, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	forceSparse(s)
	r := rng.New(9)
	checkClean := func(when string) {
		t.Helper()
		for w, c := range s.rowCnt {
			if c != 0 {
				t.Errorf("row counter retained count %d at node %d after %s", c, w, when)
			}
		}
	}
	if _, err := s.Sample(r); err != nil {
		t.Fatal(err)
	}
	checkClean("a draw")
	if _, err := s.Sample(r); err != nil {
		t.Fatal(err)
	}
	checkClean("second draw")
}
