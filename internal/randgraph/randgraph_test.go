package randgraph

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

func TestErdosRenyiValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := ErdosRenyi(r, -1, 0.5); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := ErdosRenyi(r, 10, -0.1); err == nil {
		t.Error("negative p: want error")
	}
	if _, err := ErdosRenyi(r, 10, 1.1); err == nil {
		t.Error("p > 1: want error")
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	r := rng.New(2)
	g, err := ErdosRenyi(r, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Errorf("G(20, 0) has %d edges", g.M())
	}
	g, err = ErdosRenyi(r, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 190 {
		t.Errorf("G(20, 1) has %d edges, want 190", g.M())
	}
	g, err = ErdosRenyi(r, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Errorf("G(0, .5) has %d nodes", g.N())
	}
	g, err = ErdosRenyi(r, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Errorf("G(1, .5) has %d edges", g.M())
	}
}

func TestErdosRenyiEdgeFrequency(t *testing.T) {
	// Aggregate edge count over trials must match p·C(n,2), and individual
	// pairs must be uniform (spot check a few pairs).
	const (
		n      = 30
		p      = 0.13
		trials = 4000
	)
	r := rng.New(3)
	pairCount := map[[2]int32]int{}
	total := 0
	for i := 0; i < trials; i++ {
		g, err := ErdosRenyi(r, n, p)
		if err != nil {
			t.Fatal(err)
		}
		total += g.M()
		g.ForEachEdge(func(u, v int32) bool {
			pairCount[[2]int32{u, v}]++
			return true
		})
	}
	pairs := float64(n * (n - 1) / 2)
	wantMean := p * pairs
	gotMean := float64(total) / trials
	sd := math.Sqrt(pairs * p * (1 - p) / trials)
	if math.Abs(gotMean-wantMean) > 6*sd {
		t.Errorf("mean edges = %v, want %v ± %v", gotMean, wantMean, 6*sd)
	}
	for _, pair := range [][2]int32{{0, 1}, {0, 29}, {13, 14}, {28, 29}} {
		freq := float64(pairCount[pair]) / trials
		tol := 6 * math.Sqrt(p*(1-p)/trials)
		if math.Abs(freq-p) > tol {
			t.Errorf("pair %v frequency = %v, want %v ± %v", pair, freq, p, tol)
		}
	}
}

func TestErdosRenyiDeterminism(t *testing.T) {
	a, err := ErdosRenyi(rng.New(77), 50, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(rng.New(77), 50, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsSpanningSubgraphOf(b) || !b.IsSpanningSubgraphOf(a) {
		t.Error("same seed produced different graphs")
	}
}

func TestNewQSamplerValidation(t *testing.T) {
	tests := []struct {
		name             string
		n, ring, pool, q int
	}{
		{name: "negative n", n: -1, ring: 5, pool: 10, q: 1},
		{name: "q zero", n: 5, ring: 5, pool: 10, q: 0},
		{name: "ring below q", n: 5, ring: 1, pool: 10, q: 2},
		{name: "pool below ring", n: 5, ring: 11, pool: 10, q: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewQSampler(tt.n, tt.ring, tt.pool, tt.q); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestQSamplerEdgesMatchKeyRings(t *testing.T) {
	// Every edge must correspond to ≥ q shared keys and every non-edge to
	// < q shared keys, verified against the sampler's own key rings.
	const (
		n    = 60
		ring = 12
		pool = 100
		q    = 2
	)
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		g, err := s.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		ringSets := make([]map[int32]bool, n)
		for v := 0; v < n; v++ {
			kr := s.KeyRing(v)
			if len(kr) != ring {
				t.Fatalf("node %d ring size = %d", v, len(kr))
			}
			set := make(map[int32]bool, ring)
			for _, k := range kr {
				if k < 0 || int(k) >= pool {
					t.Fatalf("key %d out of pool range", k)
				}
				if set[k] {
					t.Fatalf("node %d holds duplicate key %d", v, k)
				}
				set[k] = true
			}
			ringSets[v] = set
		}
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				shared := 0
				for k := range ringSets[u] {
					if ringSets[v][k] {
						shared++
					}
				}
				if got, want := g.HasEdge(u, v), shared >= q; got != want {
					t.Fatalf("edge(%d,%d) = %v but shared keys = %d (q=%d)", u, v, got, shared, q)
				}
			}
		}
	}
}

func TestQSamplerEdgeFrequencyMatchesTheory(t *testing.T) {
	// The empirical edge probability must match s(K, P, q) from eq. (4).
	const (
		n      = 40
		ring   = 10
		pool   = 120
		trials = 1500
	)
	for _, q := range []int{1, 2} {
		s, err := NewQSampler(n, ring, pool, q)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(5 + q))
		edgeSum := 0
		for i := 0; i < trials; i++ {
			g, err := s.Sample(r)
			if err != nil {
				t.Fatal(err)
			}
			edgeSum += g.M()
		}
		want, err := theory.KeyShareProb(pool, ring, q)
		if err != nil {
			t.Fatal(err)
		}
		pairs := float64(n * (n - 1) / 2)
		got := float64(edgeSum) / (pairs * trials)
		// Edges within a trial are correlated; use a generous tolerance
		// driven by the per-trial edge-count variance observed empirically.
		if math.Abs(got-want) > 0.08*want+0.002 {
			t.Errorf("q=%d: empirical edge prob %v, theory %v", q, got, want)
		}
	}
}

func TestSampleCompositeThinsEdges(t *testing.T) {
	const (
		n      = 50
		ring   = 10
		pool   = 80
		q      = 1
		pOn    = 0.4
		trials = 800
	)
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	full, kept := 0, 0
	for i := 0; i < trials; i++ {
		g, err := s.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		full += g.M()
		c, err := s.SampleComposite(r, pOn)
		if err != nil {
			t.Fatal(err)
		}
		kept += c.M()
	}
	ratio := float64(kept) / float64(full)
	if math.Abs(ratio-pOn) > 0.03 {
		t.Errorf("composite kept %v of edges, want ≈ %v", ratio, pOn)
	}
	if _, err := s.SampleComposite(r, -0.1); err == nil {
		t.Error("negative pOn: want error")
	}
	if _, err := s.SampleComposite(r, 1.1); err == nil {
		t.Error("pOn > 1: want error")
	}
}

func TestSampleCompositeEdgeProbability(t *testing.T) {
	// Empirical composite edge probability must match t = p·s (eq. (5)).
	const (
		n      = 40
		ring   = 8
		pool   = 100
		q      = 2
		pOn    = 0.5
		trials = 2000
	)
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	edges := 0
	for i := 0; i < trials; i++ {
		g, err := s.SampleComposite(r, pOn)
		if err != nil {
			t.Fatal(err)
		}
		edges += g.M()
	}
	want, err := theory.EdgeProb(pool, ring, q, pOn)
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(n * (n - 1) / 2)
	got := float64(edges) / (pairs * trials)
	if math.Abs(got-want) > 0.1*want+0.001 {
		t.Errorf("composite edge prob = %v, theory t = %v", got, want)
	}
}

func TestCompositeIsIntersectionDistribution(t *testing.T) {
	// Sanity: explicit intersection G_q ∩ G(n,p) has the same expected edge
	// count as the fused composite sampler.
	const (
		n      = 40
		ring   = 8
		pool   = 90
		q      = 1
		pOn    = 0.6
		trials = 600
	)
	r := rng.New(8)
	s, err := NewQSampler(n, ring, pool, q)
	if err != nil {
		t.Fatal(err)
	}
	fused, explicit := 0, 0
	for i := 0; i < trials; i++ {
		c, err := s.SampleComposite(r, pOn)
		if err != nil {
			t.Fatal(err)
		}
		fused += c.M()

		gq, err := s.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		er, err := ErdosRenyi(r, n, pOn)
		if err != nil {
			t.Fatal(err)
		}
		inter, err := graph.Intersect(gq, er)
		if err != nil {
			t.Fatal(err)
		}
		explicit += inter.M()
	}
	fm, em := float64(fused)/trials, float64(explicit)/trials
	if math.Abs(fm-em) > 0.12*em+0.5 {
		t.Errorf("fused mean edges %v vs explicit intersection %v", fm, em)
	}
}

func TestQSamplerDeterminism(t *testing.T) {
	mk := func() *graph.Undirected {
		s, err := NewQSampler(80, 10, 200, 2)
		if err != nil {
			t.Fatal(err)
		}
		g, err := s.SampleComposite(rng.New(99), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	if !a.IsSpanningSubgraphOf(b) || !b.IsSpanningSubgraphOf(a) {
		t.Error("same seed produced different composite graphs")
	}
}

func TestQSamplerReuseIsClean(t *testing.T) {
	// Back-to-back draws from one sampler must be independent: no counter
	// residue may leak edges between draws. Compare a reused sampler's
	// second draw with a fresh sampler fed the same stream position.
	s, err := NewQSampler(50, 8, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123)
	if _, err := s.Sample(r); err != nil {
		t.Fatal(err)
	}
	second, err := s.Sample(r)
	if err != nil {
		t.Fatal(err)
	}
	// Replay: fresh sampler, same rng sequence, skipping one draw.
	s2, err := NewQSampler(50, 8, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(123)
	if _, err := s2.Sample(r2); err != nil {
		t.Fatal(err)
	}
	replay, err := s2.Sample(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.IsSpanningSubgraphOf(replay) || !replay.IsSpanningSubgraphOf(second) {
		t.Error("reused sampler diverged from fresh sampler")
	}
}

func TestBinomialQIntersectionValidation(t *testing.T) {
	r := rng.New(9)
	if _, err := BinomialQIntersection(r, -1, 0.1, 10, 1); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := BinomialQIntersection(r, 5, -0.1, 10, 1); err == nil {
		t.Error("negative x: want error")
	}
	if _, err := BinomialQIntersection(r, 5, 1.1, 10, 1); err == nil {
		t.Error("x > 1: want error")
	}
	if _, err := BinomialQIntersection(r, 5, 0.1, 10, 0); err == nil {
		t.Error("q = 0: want error")
	}
	if _, err := BinomialQIntersection(r, 5, 0.1, -1, 1); err == nil {
		t.Error("negative pool: want error")
	}
	g, err := BinomialQIntersection(r, 5, 0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Error("empty pool must give empty graph")
	}
}

func TestBinomialQIntersectionEdgeFrequency(t *testing.T) {
	// Empirical edge probability ≈ P[Binomial overlap ≥ q]. With x small
	// the overlap of two nodes is ≈ Poisson(P·x²).
	const (
		n      = 40
		pool   = 400
		x      = 0.05
		q      = 1
		trials = 800
	)
	r := rng.New(10)
	edges := 0
	for i := 0; i < trials; i++ {
		g, err := BinomialQIntersection(r, n, x, pool, q)
		if err != nil {
			t.Fatal(err)
		}
		edges += g.M()
	}
	// Exact: two independent Binomial(P, x) rings; per-key shared prob x².
	// Overlap ~ Binomial(P, x²); P[≥1] = 1 − (1−x²)^P.
	want := 1 - math.Pow(1-x*x, pool)
	pairs := float64(n * (n - 1) / 2)
	got := float64(edges) / (pairs * trials)
	if math.Abs(got-want) > 0.05*want+0.002 {
		t.Errorf("binomial edge prob = %v, want %v", got, want)
	}
}

func TestSampleCoupledContainment(t *testing.T) {
	// The Lemma 5 coupling must always produce Binomial ⊑ Uniform.
	const (
		n    = 60
		ring = 15
		pool = 150
		q    = 2
	)
	r := rng.New(11)
	// Mean binomial draw = x·P = 7.5 keys, ring = 15: the event
	// {all 60 nodes draw ≤ 15} holds with probability ≈ 0.94.
	x := float64(ring) / float64(pool) * 0.5
	coupledCount := 0
	for trial := 0; trial < 30; trial++ {
		pair, err := SampleCoupled(r, n, ring, pool, q, x)
		if err != nil {
			t.Fatal(err)
		}
		if !pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
			t.Fatal("binomial graph not contained in uniform graph")
		}
		if pair.Coupled {
			coupledCount++
		}
	}
	if coupledCount == 0 {
		t.Error("coupling event never held; x may be too aggressive")
	}
	if _, err := SampleCoupled(r, n, ring, pool, q, 1.5); err == nil {
		t.Error("x > 1: want error")
	}
}

func TestSampleCoupledWithTheoryX(t *testing.T) {
	// With the paper's x_n from eq. (66) the coupling event should
	// essentially always hold at these scales.
	const (
		n    = 200
		ring = 64
		pool = 5000
		q    = 2
	)
	x := theory.CouplingX(n, pool, ring)
	if x <= 0 {
		t.Skip("coupling x not in regime")
	}
	r := rng.New(12)
	for trial := 0; trial < 10; trial++ {
		pair, err := SampleCoupled(r, n, ring, pool, q, x)
		if err != nil {
			t.Fatal(err)
		}
		if !pair.Coupled {
			t.Error("Lemma 5 coupling event failed at paper-regime x_n")
		}
		if !pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
			t.Fatal("containment violated")
		}
	}
}

func TestUniformQIntersectionOneShot(t *testing.T) {
	g, err := UniformQIntersection(rng.New(13), 30, 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 {
		t.Errorf("N = %d, want 30", g.N())
	}
	if _, err := UniformQIntersection(rng.New(13), 30, 5, 3, 1); err == nil {
		t.Error("pool < ring: want error")
	}
	c, err := Composite(rng.New(14), 30, 5, 60, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 30 {
		t.Errorf("composite N = %d", c.N())
	}
	if _, err := Composite(rng.New(14), 30, 5, 60, 1, 2); err == nil {
		t.Error("pOn > 1: want error")
	}
}

func BenchmarkQSamplerPaperScale(b *testing.B) {
	// One Figure-1 sample: n=1000, P=10000, K=60, q=2.
	s, err := NewQSampler(1000, 60, 10000, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SampleComposite(r, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErdosRenyi1000(b *testing.B) {
	r := rng.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ErdosRenyi(r, 1000, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}
