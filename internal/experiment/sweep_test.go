package experiment

import (
	"context"
	"errors"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestGridEnumeration(t *testing.T) {
	g := Grid{Ks: []int{10, 20}, Qs: []int{1, 2, 3}, Ps: []float64{0.2, 0.5}}
	if g.Len() != 12 {
		t.Fatalf("Len = %d, want 12", g.Len())
	}
	pts := g.Points()
	if len(pts) != 12 {
		t.Fatalf("Points() returned %d, want 12", len(pts))
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		if pt.X != 0 {
			t.Errorf("point %d has X %v, want 0 (axis unset)", i, pt.X)
		}
	}
	// Row-major: K outermost, then q, then p.
	if pts[0] != (GridPoint{Index: 0, K: 10, Q: 1, P: 0.2}) {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[1] != (GridPoint{Index: 1, K: 10, Q: 1, P: 0.5}) {
		t.Errorf("second point = %+v", pts[1])
	}
	if pts[11] != (GridPoint{Index: 11, K: 20, Q: 3, P: 0.5}) {
		t.Errorf("last point = %+v", pts[11])
	}
	// The auxiliary axis multiplies in when set.
	g.Xs = []float64{0, 30, 60}
	if g.Len() != 36 || len(g.Points()) != 36 {
		t.Errorf("with Xs: Len = %d, points = %d, want 36", g.Len(), len(g.Points()))
	}
	// A fully empty grid still has one degenerate point.
	if (Grid{}).Len() != 1 {
		t.Errorf("empty grid Len = %d, want 1", (Grid{}).Len())
	}
}

func TestSweepProportionDeterministicSeeding(t *testing.T) {
	grid := Grid{Ks: []int{1, 2}, Ps: []float64{0.3, 0.7}}
	cfg := SweepConfig{Trials: 200, Workers: 4, Seed: 11}
	run := func() []ProportionResult {
		res, err := SweepProportion(context.Background(), grid, cfg,
			func(pt GridPoint) (montecarlo.Trial, error) {
				return func(trial int, r *rng.Rand) (bool, error) {
					return r.Float64() < pt.P, nil
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(a), grid.Len())
	}
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Errorf("point %d not reproducible: %+v vs %+v", i, a[i].Value, b[i].Value)
		}
		if a[i].Point != b[i].Point {
			t.Errorf("point %d metadata differs", i)
		}
		// The estimate should track the per-point success probability.
		est := a[i].Value.Estimate()
		if diff := est - a[i].Point.P; diff > 0.12 || diff < -0.12 {
			t.Errorf("point %d estimate %v far from p=%v", i, est, a[i].Point.P)
		}
	}
	// Distinct points get distinct base seeds (independent randomness).
	if cfg.PointSeed(a[0].Point) == cfg.PointSeed(a[1].Point) {
		t.Error("two grid points share a base seed")
	}
}

// TestSweepMeanPairedSamples verifies the paired-measurement property: two
// sweeps with the same seed observe the same per-trial generator states, so
// paired statistics are computed on identical samples.
func TestSweepMeanPairedSamples(t *testing.T) {
	grid := Grid{Ks: []int{5, 9}}
	cfg := SweepConfig{Trials: 50, Workers: 3, Seed: 77}
	observe := func() [][]float64 {
		var all [][]float64
		res, err := SweepMean(context.Background(), grid, cfg,
			func(pt GridPoint) (montecarlo.Sample, error) {
				return func(trial int, r *rng.Rand) (float64, error) {
					return float64(r.Uint64()%1000) + float64(pt.K), nil
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res {
			all = append(all, []float64{p.Value.Mean(), p.Value.Min(), p.Value.Max()})
		}
		return all
	}
	a, b := observe(), observe()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("point %d stat %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	grid := Grid{Ks: []int{1, 2, 3}}
	wantErr := errors.New("boom")
	_, err := SweepProportion(context.Background(), grid, SweepConfig{Trials: 5, Seed: 1},
		func(pt GridPoint) (montecarlo.Trial, error) {
			if pt.K == 2 {
				return nil, wantErr
			}
			return func(int, *rng.Rand) (bool, error) { return true, nil }, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("builder error not propagated: %v", err)
	}
	_, err = SweepMean(context.Background(), grid, SweepConfig{Trials: 5, Seed: 1},
		func(pt GridPoint) (montecarlo.Sample, error) {
			return func(trial int, r *rng.Rand) (float64, error) {
				if pt.K == 3 && trial == 2 {
					return 0, wantErr
				}
				return 1, nil
			}, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("trial error not propagated: %v", err)
	}
}

// TestPointSeedStableUnderAxisExtension pins the seeding contract: a point's
// seed depends on its parameters, not its grid index, so growing any axis
// leaves existing points' seeds (and hence published results) untouched.
func TestPointSeedStableUnderAxisExtension(t *testing.T) {
	cfg := SweepConfig{Trials: 1, Seed: 42}
	small := Grid{Ks: []int{28, 32}, Qs: []int{2}, Ps: []float64{1, 0.5}}
	big := Grid{Ks: []int{28, 32, 36}, Qs: []int{2, 3}, Ps: []float64{1, 0.5, 0.2}}
	bigSeeds := map[GridPoint]uint64{}
	for _, pt := range big.Points() {
		key := pt
		key.Index = 0
		bigSeeds[key] = cfg.PointSeed(pt)
	}
	for _, pt := range small.Points() {
		key := pt
		key.Index = 0
		want, ok := bigSeeds[key]
		if !ok {
			t.Fatalf("point %+v missing from extended grid", key)
		}
		if got := cfg.PointSeed(pt); got != want {
			t.Errorf("point %+v: seed %d in small grid, %d in extended grid", key, got, want)
		}
	}
	// And distinct parameter tuples still get distinct seeds.
	seen := map[uint64]GridPoint{}
	for _, pt := range big.Points() {
		s := cfg.PointSeed(pt)
		if prev, dup := seen[s]; dup {
			t.Errorf("points %+v and %+v share seed %d", prev, pt, s)
		}
		seen[s] = pt
	}
}

// TestSweepMeanVecMatchesSweepMean checks that the vector sweep with one
// component is exactly SweepMean, and that a two-component sweep measures
// both statistics on the same per-trial randomness.
func TestSweepMeanVecMatchesSweepMean(t *testing.T) {
	grid := Grid{Ks: []int{3, 6}}
	cfg := SweepConfig{Trials: 30, Workers: 2, Seed: 5}
	ctx := context.Background()
	scalar, err := SweepMean(ctx, grid, cfg, func(pt GridPoint) (montecarlo.Sample, error) {
		return func(trial int, r *rng.Rand) (float64, error) {
			return float64(r.Uint64() % 100), nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := SweepMeanVec(ctx, grid, cfg, 2, func(pt GridPoint) (montecarlo.SampleVec, error) {
		return func(trial int, r *rng.Rand) ([]float64, error) {
			v := float64(r.Uint64() % 100)
			return []float64{v, 2 * v}, nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scalar {
		if got, want := vec[i].Values[0].Mean(), scalar[i].Value.Mean(); got != want {
			t.Errorf("point %d: vec mean %v, scalar mean %v", i, got, want)
		}
		if got, want := vec[i].Values[1].Mean(), 2*scalar[i].Value.Mean(); got != want {
			t.Errorf("point %d: second component mean %v, want %v", i, got, want)
		}
	}
	// A dimension mismatch aborts with a clear error.
	_, err = SweepMeanVec(ctx, grid, cfg, 3, func(pt GridPoint) (montecarlo.SampleVec, error) {
		return func(trial int, r *rng.Rand) ([]float64, error) {
			return []float64{1}, nil
		}, nil
	})
	if err == nil {
		t.Error("dims mismatch: want error")
	}
}
