package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestGridEnumeration(t *testing.T) {
	g := Grid{Ks: []int{10, 20}, Qs: []int{1, 2, 3}, Ps: []float64{0.2, 0.5}}
	if g.Len() != 12 {
		t.Fatalf("Len = %d, want 12", g.Len())
	}
	pts := g.Points()
	if len(pts) != 12 {
		t.Fatalf("Points() returned %d, want 12", len(pts))
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Errorf("point %d has Index %d", i, pt.Index)
		}
		if pt.X != 0 {
			t.Errorf("point %d has X %v, want 0 (axis unset)", i, pt.X)
		}
	}
	// Row-major: K outermost, then q, then p.
	if pts[0] != (GridPoint{Index: 0, K: 10, Q: 1, P: 0.2}) {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[1] != (GridPoint{Index: 1, K: 10, Q: 1, P: 0.5}) {
		t.Errorf("second point = %+v", pts[1])
	}
	if pts[11] != (GridPoint{Index: 11, K: 20, Q: 3, P: 0.5}) {
		t.Errorf("last point = %+v", pts[11])
	}
	// The auxiliary axis multiplies in when set.
	g.Xs = []float64{0, 30, 60}
	if g.Len() != 36 || len(g.Points()) != 36 {
		t.Errorf("with Xs: Len = %d, points = %d, want 36", g.Len(), len(g.Points()))
	}
	// A fully empty grid still has one degenerate point.
	if (Grid{}).Len() != 1 {
		t.Errorf("empty grid Len = %d, want 1", (Grid{}).Len())
	}
}

func TestSweepProportionDeterministicSeeding(t *testing.T) {
	grid := Grid{Ks: []int{1, 2}, Ps: []float64{0.3, 0.7}}
	cfg := SweepConfig{Trials: 200, Workers: 4, Seed: 11}
	run := func() []ProportionResult {
		res, err := SweepProportion(context.Background(), grid, cfg,
			func(pt GridPoint) (montecarlo.Trial, error) {
				return func(trial int, r *rng.Rand) (bool, error) {
					return r.Float64() < pt.P, nil
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(a), grid.Len())
	}
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Errorf("point %d not reproducible: %+v vs %+v", i, a[i].Value, b[i].Value)
		}
		if a[i].Point != b[i].Point {
			t.Errorf("point %d metadata differs", i)
		}
		// The estimate should track the per-point success probability.
		est := a[i].Value.Estimate()
		if diff := est - a[i].Point.P; diff > 0.12 || diff < -0.12 {
			t.Errorf("point %d estimate %v far from p=%v", i, est, a[i].Point.P)
		}
	}
	// Distinct points get distinct base seeds (independent randomness).
	if cfg.PointSeed(a[0].Point) == cfg.PointSeed(a[1].Point) {
		t.Error("two grid points share a base seed")
	}
}

// TestSweepMeanPairedSamples verifies the paired-measurement property: two
// sweeps with the same seed observe the same per-trial generator states, so
// paired statistics are computed on identical samples.
func TestSweepMeanPairedSamples(t *testing.T) {
	grid := Grid{Ks: []int{5, 9}}
	cfg := SweepConfig{Trials: 50, Workers: 3, Seed: 77}
	observe := func() [][]float64 {
		var all [][]float64
		res, err := SweepMean(context.Background(), grid, cfg,
			func(pt GridPoint) (montecarlo.Sample, error) {
				return func(trial int, r *rng.Rand) (float64, error) {
					return float64(r.Uint64()%1000) + float64(pt.K), nil
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res {
			all = append(all, []float64{p.Value.Mean(), p.Value.Min(), p.Value.Max()})
		}
		return all
	}
	a, b := observe(), observe()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("point %d stat %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	grid := Grid{Ks: []int{1, 2, 3}}
	wantErr := errors.New("boom")
	_, err := SweepProportion(context.Background(), grid, SweepConfig{Trials: 5, Seed: 1},
		func(pt GridPoint) (montecarlo.Trial, error) {
			if pt.K == 2 {
				return nil, wantErr
			}
			return func(int, *rng.Rand) (bool, error) { return true, nil }, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("builder error not propagated: %v", err)
	}
	_, err = SweepMean(context.Background(), grid, SweepConfig{Trials: 5, Seed: 1},
		func(pt GridPoint) (montecarlo.Sample, error) {
			return func(trial int, r *rng.Rand) (float64, error) {
				if pt.K == 3 && trial == 2 {
					return 0, wantErr
				}
				return 1, nil
			}, nil
		})
	if !errors.Is(err, wantErr) {
		t.Errorf("trial error not propagated: %v", err)
	}
}

// TestPointSeedStableUnderAxisExtension pins the seeding contract: a point's
// seed depends on its parameters, not its grid index, so growing any axis
// leaves existing points' seeds (and hence published results) untouched.
func TestPointSeedStableUnderAxisExtension(t *testing.T) {
	cfg := SweepConfig{Trials: 1, Seed: 42}
	small := Grid{Ks: []int{28, 32}, Qs: []int{2}, Ps: []float64{1, 0.5}}
	big := Grid{Ks: []int{28, 32, 36}, Qs: []int{2, 3}, Ps: []float64{1, 0.5, 0.2}}
	bigSeeds := map[GridPoint]uint64{}
	for _, pt := range big.Points() {
		key := pt
		key.Index = 0
		bigSeeds[key] = cfg.PointSeed(pt)
	}
	for _, pt := range small.Points() {
		key := pt
		key.Index = 0
		want, ok := bigSeeds[key]
		if !ok {
			t.Fatalf("point %+v missing from extended grid", key)
		}
		if got := cfg.PointSeed(pt); got != want {
			t.Errorf("point %+v: seed %d in small grid, %d in extended grid", key, got, want)
		}
	}
	// And distinct parameter tuples still get distinct seeds.
	seen := map[uint64]GridPoint{}
	for _, pt := range big.Points() {
		s := cfg.PointSeed(pt)
		if prev, dup := seen[s]; dup {
			t.Errorf("points %+v and %+v share seed %d", prev, pt, s)
		}
		seen[s] = pt
	}
}

// TestSweepMeanVecMatchesSweepMean checks that the vector sweep with one
// component is exactly SweepMean, and that a two-component sweep measures
// both statistics on the same per-trial randomness.
func TestSweepMeanVecMatchesSweepMean(t *testing.T) {
	grid := Grid{Ks: []int{3, 6}}
	cfg := SweepConfig{Trials: 30, Workers: 2, Seed: 5}
	ctx := context.Background()
	scalar, err := SweepMean(ctx, grid, cfg, func(pt GridPoint) (montecarlo.Sample, error) {
		return func(trial int, r *rng.Rand) (float64, error) {
			return float64(r.Uint64() % 100), nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := SweepMeanVec(ctx, grid, cfg, 2, func(pt GridPoint) (montecarlo.SampleVec, error) {
		return func(trial int, r *rng.Rand) ([]float64, error) {
			v := float64(r.Uint64() % 100)
			return []float64{v, 2 * v}, nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scalar {
		if got, want := vec[i].Values[0].Mean(), scalar[i].Value.Mean(); got != want {
			t.Errorf("point %d: vec mean %v, scalar mean %v", i, got, want)
		}
		if got, want := vec[i].Values[1].Mean(), 2*scalar[i].Value.Mean(); got != want {
			t.Errorf("point %d: second component mean %v, want %v", i, got, want)
		}
	}
	// A dimension mismatch aborts with a clear error.
	_, err = SweepMeanVec(ctx, grid, cfg, 3, func(pt GridPoint) (montecarlo.SampleVec, error) {
		return func(trial int, r *rng.Rand) ([]float64, error) {
			return []float64{1}, nil
		}, nil
	})
	if err == nil {
		t.Error("dims mismatch: want error")
	}
}

// shardCounts are the PointWorkers values every sharding test sweeps:
// sequential, one shard, a shard count that does not divide typical grids,
// and full parallelism (often exceeding the point count, covering the
// shard clamp).
func shardCounts() []int {
	return []int{0, 1, 3, runtime.NumCPU()}
}

// TestShardedSweepProportionBitIdentical pins the tentpole invariant: a
// sharded sweep must produce results bit-identical to the sequential sweep —
// every ProportionResult field — because per-point seeds derive from point
// parameters, never from scheduling.
func TestShardedSweepProportionBitIdentical(t *testing.T) {
	grid := Grid{Ks: []int{10, 20, 30}, Qs: []int{1, 2}, Ps: []float64{0.25, 0.75}, Xs: []float64{0, 1}}
	run := func(pointWorkers int) []ProportionResult {
		t.Helper()
		res, err := SweepProportion(context.Background(), grid,
			SweepConfig{Trials: 60, Workers: 4, PointWorkers: pointWorkers, Seed: 13},
			func(pt GridPoint) (montecarlo.Trial, error) {
				return func(trial int, r *rng.Rand) (bool, error) {
					return r.Float64() < pt.P || r.Intn(pt.K) == 0, nil
				}, nil
			})
		if err != nil {
			t.Fatalf("PointWorkers=%d: %v", pointWorkers, err)
		}
		return res
	}
	want := run(0)
	if len(want) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(want), grid.Len())
	}
	for _, pw := range shardCounts()[1:] {
		got := run(pw)
		if len(got) != len(want) {
			t.Fatalf("PointWorkers=%d: %d results, want %d", pw, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PointWorkers=%d point %d: %+v, want %+v (sequential)", pw, i, got[i], want[i])
			}
		}
	}
}

// TestShardedSweepMeanBitIdentical is the SweepMean variant of the
// equivalence pin: Point plus every Summary field (count, mean, variance
// accumulator, extremes) must match the sequential run exactly.
func TestShardedSweepMeanBitIdentical(t *testing.T) {
	grid := Grid{Ks: []int{2, 4, 8, 16}, Ps: []float64{0.1, 0.9}}
	run := func(pointWorkers int) []MeanResult {
		t.Helper()
		res, err := SweepMean(context.Background(), grid,
			SweepConfig{Trials: 40, Workers: 3, PointWorkers: pointWorkers, Seed: 29},
			func(pt GridPoint) (montecarlo.Sample, error) {
				return func(trial int, r *rng.Rand) (float64, error) {
					return r.Float64() * float64(pt.K), nil
				}, nil
			})
		if err != nil {
			t.Fatalf("PointWorkers=%d: %v", pointWorkers, err)
		}
		return res
	}
	want := run(0)
	for _, pw := range shardCounts()[1:] {
		got := run(pw)
		for i := range want {
			if got[i].Point != want[i].Point {
				t.Errorf("PointWorkers=%d point %d metadata differs", pw, i)
			}
			if *got[i].Value != *want[i].Value {
				t.Errorf("PointWorkers=%d point %d: summary %+v, want %+v", pw, i, *got[i].Value, *want[i].Value)
			}
		}
	}
}

// TestShardedSweepMeanVecBitIdentical is the SweepMeanVec variant: every
// component Summary of every point must match the sequential run exactly.
func TestShardedSweepMeanVecBitIdentical(t *testing.T) {
	grid := Grid{Ks: []int{3, 5, 7}, Xs: []float64{1, 2, 3}}
	const dims = 3
	run := func(pointWorkers int) []MeanVecResult {
		t.Helper()
		res, err := SweepMeanVec(context.Background(), grid,
			SweepConfig{Trials: 35, Workers: 2, PointWorkers: pointWorkers, Seed: 71}, dims,
			func(pt GridPoint) (montecarlo.SampleVec, error) {
				return func(trial int, r *rng.Rand) ([]float64, error) {
					v := r.Float64() + pt.X
					return []float64{v, -v, v * float64(pt.K)}, nil
				}, nil
			})
		if err != nil {
			t.Fatalf("PointWorkers=%d: %v", pointWorkers, err)
		}
		return res
	}
	want := run(0)
	for _, pw := range shardCounts()[1:] {
		got := run(pw)
		for i := range want {
			if got[i].Point != want[i].Point {
				t.Errorf("PointWorkers=%d point %d metadata differs", pw, i)
			}
			for d := 0; d < dims; d++ {
				if *got[i].Values[d] != *want[i].Values[d] {
					t.Errorf("PointWorkers=%d point %d dim %d: %+v, want %+v",
						pw, i, d, *got[i].Values[d], *want[i].Values[d])
				}
			}
		}
	}
}

// TestShardedSweepStress floods a small shard pool with far more points than
// shards, each point carrying shard-local mutable state created by build.
// Run under -race in CI, it is the data-race gate on the shard runner; the
// result check doubles as an order/equivalence pin at scale.
func TestShardedSweepStress(t *testing.T) {
	var ks []int
	for k := 1; k <= 60; k++ {
		ks = append(ks, k)
	}
	grid := Grid{Ks: ks, Ps: []float64{0.3, 0.6}} // 120 points
	cfg := SweepConfig{Trials: 16, Workers: 2, PointWorkers: 4, Seed: 97}
	res, err := SweepProportion(context.Background(), grid, cfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			counter := 0 // shard-owned per-point state, mutated by every trial
			return func(trial int, r *rng.Rand) (bool, error) {
				counter++
				return r.Float64() < pt.P && counter > 0, nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(res), grid.Len())
	}
	seqCfg := cfg
	seqCfg.PointWorkers = 0
	want, err := SweepProportion(context.Background(), grid, seqCfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			return func(trial int, r *rng.Rand) (bool, error) {
				return r.Float64() < pt.P, nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Errorf("point %d: sharded %+v, sequential %+v", i, res[i], want[i])
		}
	}
}

// TestShardedSweepBuildErrorFirstInPointsOrder pins the error contract: when
// several points fail, the sweep drains all shards and returns the failing
// point that comes first in Points() order — point 0 here, since every point
// fails and point 0 is always dispatched before any failure can cancel the
// feed.
func TestShardedSweepBuildErrorFirstInPointsOrder(t *testing.T) {
	grid := Grid{Ks: []int{11, 22, 33, 44, 55, 66}}
	pointErrs := make([]error, grid.Len())
	for i := range pointErrs {
		pointErrs[i] = fmt.Errorf("point %d exploded", i)
	}
	for _, pw := range shardCounts() {
		var live atomic.Int32
		_, err := SweepProportion(context.Background(), grid,
			SweepConfig{Trials: 5, PointWorkers: pw, Seed: 1},
			func(pt GridPoint) (montecarlo.Trial, error) {
				live.Add(1)
				defer live.Add(-1)
				return nil, pointErrs[pt.Index]
			})
		if !errors.Is(err, pointErrs[0]) {
			t.Errorf("PointWorkers=%d: err = %v, want point 0's error", pw, err)
		}
		if n := live.Load(); n != 0 {
			t.Errorf("PointWorkers=%d: %d builds still live after return (shards not drained)", pw, n)
		}
	}
}

// TestShardedSweepTrialErrorSurvivesCancellationFallout pins the harder half
// of the error contract: a genuine trial failure at a later point must be
// the reported error even though cancelling the sweep makes concurrently
// running earlier points fail with context.Canceled first.
func TestShardedSweepTrialErrorSurvivesCancellationFallout(t *testing.T) {
	grid := Grid{Ks: []int{1, 2, 3, 4, 5, 6, 7, 8}}
	wantErr := errors.New("genuine trial failure")
	for _, pw := range shardCounts() {
		_, err := SweepMean(context.Background(), grid,
			SweepConfig{Trials: 400, Workers: 2, PointWorkers: pw, Seed: 3},
			func(pt GridPoint) (montecarlo.Sample, error) {
				return func(trial int, r *rng.Rand) (float64, error) {
					if pt.K == 6 && trial == 37 {
						return 0, wantErr
					}
					// Slow the healthy points so they are mid-run when the
					// failure cancels them.
					time.Sleep(50 * time.Microsecond)
					return 1, nil
				}, nil
			})
		if !errors.Is(err, wantErr) {
			t.Errorf("PointWorkers=%d: err = %v, want the genuine trial failure", pw, err)
		}
		if errors.Is(err, context.Canceled) {
			t.Errorf("PointWorkers=%d: cancellation fallout masked the real error: %v", pw, err)
		}
	}
}

// TestShardedSweepContextCancellation pins prompt, deadlock-free shutdown:
// cancelling the caller's context mid-sweep must stop a sweep with many
// slow points quickly, returning an error that wraps context.Canceled.
func TestShardedSweepContextCancellation(t *testing.T) {
	var ks []int
	for k := 1; k <= 200; k++ {
		ks = append(ks, k)
	}
	for _, pw := range shardCounts() {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		done := make(chan error, 1)
		go func() {
			_, err := SweepProportion(ctx, Grid{Ks: ks},
				SweepConfig{Trials: 1 << 20, Workers: 2, PointWorkers: pw, Seed: 5},
				func(pt GridPoint) (montecarlo.Trial, error) {
					return func(trial int, r *rng.Rand) (bool, error) {
						if started.Add(1) == 10 {
							cancel()
						}
						time.Sleep(10 * time.Microsecond)
						return true, nil
					}, nil
				})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("PointWorkers=%d: err = %v, want context.Canceled", pw, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("PointWorkers=%d: cancellation did not stop the sweep (deadlock?)", pw)
		}
		cancel()
	}
}
