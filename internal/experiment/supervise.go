package experiment

// Worker supervision: every grid point of a sweep executes under a
// supervisor that (1) recovers panics in the point's build into ordinary
// point errors — montecarlo does the same for panics inside trials — so a
// faulty point can never kill sibling shards or the process, (2) optionally
// bounds each attempt with a per-point timeout, and (3) retries failed
// attempts when the error is retryable (by default: transient-marked errors
// and timeouts) with exponential backoff.
//
// Retrying is determinism-safe by construction: an attempt re-runs build
// and the point's full trial loop from the same parameter-derived seed, so
// a retried point's result is bit-identical to the result of a clean run —
// only failures caused by EXTERNAL conditions (injected faults, flaky side
// channels, timeouts under load) are worth retrying, which is exactly what
// the default policy selects.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
)

// retryable reports whether a failed attempt should be retried under the
// config's policy: RetryIf when set, otherwise transient-marked errors and
// attempt timeouts.
func (c SweepConfig) retryable(err error) bool {
	if c.RetryIf != nil {
		return c.RetryIf(err)
	}
	return errors.Is(err, montecarlo.ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// backoffDelay returns the sleep before retry attempt. The base delay
// (RetryBackoff, default 10ms) doubles with each attempt.
func (c SweepConfig) backoffDelay(attempt int) time.Duration {
	d := c.RetryBackoff
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	return d << uint(attempt)
}

// runAttemptRecovered invokes fn with panic isolation: a panic in the
// point's build (trial panics are already isolated inside montecarlo)
// becomes a point error carrying the stack.
func runAttemptRecovered[R any](ctx context.Context, pt GridPoint,
	fn func(ctx context.Context, pt GridPoint) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			var zero R
			r, err = zero, fmt.Errorf("experiment: sweep point %v: %w", pt, montecarlo.NewPanicError(p))
		}
	}()
	return fn(ctx, pt)
}

// runAttempt executes one attempt of a point, applying the per-point
// timeout when configured. A timed-out attempt's goroutine is abandoned (Go
// cannot kill it): it may still be running when the attempt returns, which
// is safe because every attempt calls build afresh and therefore owns its
// per-attempt state — but it is the reason a wedged trial no longer hangs
// the whole grid.
func runAttempt[R any](ctx context.Context, cfg SweepConfig, pt GridPoint,
	fn func(ctx context.Context, pt GridPoint) (R, error)) (R, error) {
	if cfg.PointTimeout <= 0 {
		return runAttemptRecovered(ctx, pt, fn)
	}
	actx, cancel := context.WithTimeout(ctx, cfg.PointTimeout)
	defer cancel()
	type result struct {
		r   R
		err error
	}
	ch := make(chan result, 1)
	go func() {
		r, err := runAttemptRecovered(actx, pt, fn)
		ch <- result{r: r, err: err}
	}()
	select {
	case out := <-ch:
		return out.r, out.err
	case <-actx.Done():
		var zero R
		return zero, fmt.Errorf("experiment: sweep point %v: attempt abandoned after %v: %w",
			pt, cfg.PointTimeout, actx.Err())
	}
}

// runSupervised runs one grid point under the full supervisor: panic
// isolation, per-attempt timeout, and bounded retry with backoff. The
// caller's cancellation always wins — a cancelled context is never retried,
// so sweep shutdown stays prompt.
func runSupervised[R any](ctx context.Context, cfg SweepConfig, pt GridPoint,
	fn func(ctx context.Context, pt GridPoint) (R, error)) (R, error) {
	var zero R
	for attempt := 0; ; attempt++ {
		r, err := runAttempt(ctx, cfg, pt, fn)
		if err == nil {
			return r, nil
		}
		if ctx.Err() != nil {
			// Genuine sweep cancellation (the caller's context, or fallout
			// from another point's failure) — stop immediately.
			return zero, err
		}
		if attempt >= cfg.PointRetries || !cfg.retryable(err) {
			if attempt > 0 {
				return zero, fmt.Errorf("experiment: sweep point %v: %d attempts failed, last: %w",
					pt, attempt+1, err)
			}
			return zero, err
		}
		timer := time.NewTimer(cfg.backoffDelay(attempt))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return zero, fmt.Errorf("experiment: sweep point %v: cancelled during retry backoff: %w",
				pt, ctx.Err())
		}
	}
}
