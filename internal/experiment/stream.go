package experiment

// The streaming fast path: sweep entry points whose per-point measurements
// are union-find-answerable — connectivity, giant-component fraction,
// isolated fraction, component count — run their trials through
// wsn.Deployer.DeployConnectivityRand, which streams the channel draw
// straight into a StreamUnionFind and never builds a CSR graph. Verdicts are
// bit-identical to the CSR path (same parameter-derived seeds, same booleans
// and sizes per trial), so these are drop-in replacements for the
// SweepProportion/SweepMeanVec idioms the cmds used before; measurements that
// need the graph itself (k ≥ 2, spectral, positions) keep deploying CSR
// networks.

import (
	"context"
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// SweepConnectivity estimates P[secure topology connected] at every grid
// point on the streaming path: build returns the point's deployment (like
// CrossSpec.Build), each trial streams one deployment into a union-find and
// reports its Connected verdict. Seeding, sharding (PointWorkers) and result
// order follow SweepProportion exactly, and the estimates are bit-identical
// to a CSR IsConnected sweep with the same grid, config and build.
func SweepConnectivity(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (wsn.Config, error)) ([]ProportionResult, error) {
	return SweepProportion(ctx, grid, cfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			dp, _, err := connectivityPool(pt, build)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployConnectivityRand(r)
				if err != nil {
					return false, err
				}
				return st.Connected, nil
			}, nil
		})
}

// SweepMinDegree estimates P[secure min degree ≥ k] at every grid point on
// the streaming path: each trial streams one deployment through the degree
// accumulator (no CSR graph at any n) and reports the MinDegreeAtLeastK
// verdict. This is the min-degree half of the paper's zero–one law, whose
// limit equals the k-connectivity limit (eq. (7) = (76)). Seeding, sharding
// and result order follow SweepProportion exactly, and the estimates are
// bit-identical to a CSR FullSecureTopology().MinDegree() >= k sweep with
// the same grid, config and build. k must be non-negative.
func SweepMinDegree(ctx context.Context, grid Grid, cfg SweepConfig, k int,
	build func(pt GridPoint) (wsn.Config, error)) ([]ProportionResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("experiment: min-degree sweep with negative k = %d", k)
	}
	return SweepProportion(ctx, grid, cfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			dp, _, err := connectivityPool(pt, build)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployDegreeStatsRand(r, k)
				if err != nil {
					return false, err
				}
				return st.MinDegreeAtLeastK, nil
			}, nil
		})
}

// ConnStat selects one union-find-answerable statistic of a deployment for
// SweepConnStats.
type ConnStat uint8

const (
	// ConnStatConnected is the connectivity indicator (1 if connected).
	ConnStatConnected ConnStat = iota + 1
	// ConnStatGiantFraction is the largest-component size divided by n.
	ConnStatGiantFraction
	// ConnStatIsolatedFraction is the degree-0 sensor count divided by n.
	ConnStatIsolatedFraction
	// ConnStatComponents is the number of connected components.
	ConnStatComponents
)

// String implements fmt.Stringer for validation errors and labels.
func (s ConnStat) String() string {
	switch s {
	case ConnStatConnected:
		return "connected"
	case ConnStatGiantFraction:
		return "giant fraction"
	case ConnStatIsolatedFraction:
		return "isolated fraction"
	case ConnStatComponents:
		return "components"
	}
	return fmt.Sprintf("ConnStat(%d)", uint8(s))
}

// value extracts the statistic from one trial's ConnStats.
func (s ConnStat) value(st wsn.ConnStats, n int) float64 {
	switch s {
	case ConnStatConnected:
		if st.Connected {
			return 1
		}
		return 0
	case ConnStatGiantFraction:
		if n == 0 {
			return 0
		}
		return float64(st.Giant) / float64(n)
	case ConnStatIsolatedFraction:
		if n == 0 {
			return 0
		}
		return float64(st.Isolated) / float64(n)
	case ConnStatComponents:
		return float64(st.Components)
	}
	return 0
}

// SweepConnStats estimates several union-find-answerable statistics per grid
// point from one set of streamed deployments — the streaming counterpart of
// the SweepMeanVec idiom "deploy once, measure giant and isolated fractions
// on the same topology". Values[i] of each result summarises stats[i]. The
// per-trial observations equal the CSR path's (LargestComponentSize/n,
// degree-0 fraction, …) bit for bit, so summaries match a SweepMeanVec over
// full deployments with the same grid, config and build.
func SweepConnStats(ctx context.Context, grid Grid, cfg SweepConfig, stats []ConnStat,
	build func(pt GridPoint) (wsn.Config, error)) ([]MeanVecResult, error) {
	if len(stats) == 0 {
		return nil, fmt.Errorf("experiment: connectivity-stats sweep needs at least one statistic")
	}
	for _, s := range stats {
		switch s {
		case ConnStatConnected, ConnStatGiantFraction, ConnStatIsolatedFraction, ConnStatComponents:
		default:
			return nil, fmt.Errorf("experiment: unknown connectivity statistic %v", s)
		}
	}
	return SweepMeanVec(ctx, grid, cfg, len(stats),
		func(pt GridPoint) (montecarlo.SampleVec, error) {
			dp, n, err := connectivityPool(pt, build)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) ([]float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				st, err := d.DeployConnectivityRand(r)
				if err != nil {
					return nil, err
				}
				// Fresh slice per trial: trials of one point run across
				// montecarlo workers concurrently.
				vals := make([]float64, len(stats))
				for i, s := range stats {
					vals[i] = s.value(st, n)
				}
				return vals, nil
			}, nil
		})
}

// connectivityPool builds the deployment of one grid point and wraps it in a
// DeployerPool for the point's trials, returning the sensor count alongside.
func connectivityPool(pt GridPoint, build func(pt GridPoint) (wsn.Config, error)) (*wsn.DeployerPool, int, error) {
	deployCfg, err := build(pt)
	if err != nil {
		return nil, 0, err
	}
	dp, err := wsn.NewDeployerPool(deployCfg)
	if err != nil {
		return nil, 0, err
	}
	return dp, deployCfg.Sensors, nil
}
