package experiment

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

var supervisePt = GridPoint{Index: 4, K: 12, Q: 2, P: 0.5, X: 3}

func TestRunSupervisedRetriesTransient(t *testing.T) {
	cfg := SweepConfig{PointRetries: 3, RetryBackoff: time.Microsecond}
	var attempts atomic.Int64
	got, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			if attempts.Add(1) <= 2 {
				return 0, montecarlo.Transient(errors.New("flaky"))
			}
			return 42, nil
		})
	if err != nil || got != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", got, err)
	}
	if attempts.Load() != 3 {
		t.Errorf("ran %d attempts, want 3", attempts.Load())
	}
}

func TestRunSupervisedDoesNotRetryPermanentErrors(t *testing.T) {
	cfg := SweepConfig{PointRetries: 5, RetryBackoff: time.Microsecond}
	var attempts atomic.Int64
	permanent := errors.New("deterministic bug")
	_, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			attempts.Add(1)
			return 0, permanent
		})
	if !errors.Is(err, permanent) {
		t.Fatalf("error = %v, want wrapped %v", err, permanent)
	}
	if attempts.Load() != 1 {
		t.Errorf("permanent error ran %d attempts, want 1", attempts.Load())
	}
}

func TestRunSupervisedRetriesExhausted(t *testing.T) {
	cfg := SweepConfig{PointRetries: 2, RetryBackoff: time.Microsecond}
	var attempts atomic.Int64
	_, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			attempts.Add(1)
			return 0, montecarlo.Transient(errors.New("still flaky"))
		})
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("error = %v, want 3-attempts-failed wrap", err)
	}
	if !errors.Is(err, montecarlo.ErrTransient) {
		t.Errorf("exhausted-retries error lost its cause: %v", err)
	}
	if attempts.Load() != 3 {
		t.Errorf("ran %d attempts, want 3 (1 + 2 retries)", attempts.Load())
	}
}

func TestRunSupervisedNeverRetriesCancelledSweep(t *testing.T) {
	cfg := SweepConfig{PointRetries: 5, RetryBackoff: time.Microsecond}
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	_, err := runSupervised(ctx, cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			attempts.Add(1)
			cancel() // the sweep dies while this attempt runs
			return 0, montecarlo.Transient(errors.New("fallout"))
		})
	if err == nil {
		t.Fatal("cancelled supervised run succeeded")
	}
	if attempts.Load() != 1 {
		t.Errorf("cancelled sweep ran %d attempts, want 1", attempts.Load())
	}
}

func TestRunSupervisedRecoversBuildPanic(t *testing.T) {
	_, err := runSupervised(context.Background(), SweepConfig{}, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			panic("build exploded")
		})
	var pe *montecarlo.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *montecarlo.PanicError", err)
	}
	if pe.Value != "build exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "experiment") {
		t.Error("recovered stack does not show the panicking frames")
	}
	// The error must name the failing point's parameters (not just an index).
	for _, want := range []string{"K=12", "q=2", "p=0.5", "x=3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name the failing point (%s)", err, want)
		}
	}
}

func TestRunSupervisedTimeoutAbandonsWedgedAttempt(t *testing.T) {
	cfg := SweepConfig{PointTimeout: 20 * time.Millisecond, PointRetries: 1, RetryBackoff: time.Microsecond}
	var attempts atomic.Int64
	release := make(chan struct{})
	defer close(release)
	got, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			if attempts.Add(1) == 1 {
				<-release // attempt 1 wedges until the test ends
			}
			return 7, nil
		})
	if err != nil || got != 7 {
		t.Fatalf("got (%d, %v), want (7, nil) after timed-out retry", got, err)
	}
	if attempts.Load() != 2 {
		t.Errorf("ran %d attempts, want 2", attempts.Load())
	}
}

func TestRunSupervisedTimeoutErrorNamesPointAndDeadline(t *testing.T) {
	cfg := SweepConfig{PointTimeout: 10 * time.Millisecond}
	block := make(chan struct{})
	defer close(block)
	_, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			<-block
			return 0, nil
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "abandoned") || !strings.Contains(err.Error(), "K=12") {
		t.Errorf("timeout error %q should name the abandoned point", err)
	}
}

func TestRunSupervisedRetryIfOverride(t *testing.T) {
	custom := errors.New("custom retryable")
	cfg := SweepConfig{
		PointRetries: 2,
		RetryBackoff: time.Microsecond,
		RetryIf:      func(err error) bool { return errors.Is(err, custom) },
	}
	var attempts atomic.Int64
	got, err := runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			if attempts.Add(1) == 1 {
				return 0, custom
			}
			return 1, nil
		})
	if err != nil || got != 1 {
		t.Fatalf("custom-retryable error not retried: (%d, %v)", got, err)
	}
	// With the override in place, transient-marked errors are NOT retried.
	attempts.Store(0)
	_, err = runSupervised(context.Background(), cfg, supervisePt,
		func(ctx context.Context, pt GridPoint) (int, error) {
			attempts.Add(1)
			return 0, montecarlo.Transient(errors.New("flaky"))
		})
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("RetryIf override leaked the default policy: attempts=%d err=%v", attempts.Load(), err)
	}
}

func TestBackoffDelayDoubles(t *testing.T) {
	cfg := SweepConfig{RetryBackoff: 3 * time.Millisecond}
	for attempt, want := range []time.Duration{3, 6, 12, 24} {
		if got := cfg.backoffDelay(attempt); got != want*time.Millisecond {
			t.Errorf("backoffDelay(%d) = %v, want %v", attempt, got, want*time.Millisecond)
		}
	}
	if got := (SweepConfig{}).backoffDelay(0); got != 10*time.Millisecond {
		t.Errorf("default backoff = %v, want 10ms", got)
	}
}

// TestShardedSweepSurvivesPanickingBuild is the regression test for the
// pre-supervision failure mode: a panic in one point's build closure
// unwound its shard goroutine, so close(pointCh) fed points to a dead pool
// and the whole process crashed. Now the panic becomes that point's error,
// sibling shards drain, and the sweep reports the failing point by its
// parameters.
func TestShardedSweepSurvivesPanickingBuild(t *testing.T) {
	grid := Grid{Ks: []int{1, 2, 3, 4, 5, 6}}
	for _, pw := range shardCounts() {
		var built atomic.Int64
		cfg := SweepConfig{Trials: 10, Workers: 1, PointWorkers: pw, Seed: 3}
		_, err := SweepProportion(context.Background(), grid, cfg,
			func(pt GridPoint) (montecarlo.Trial, error) {
				if pt.K == 4 {
					panic("bad point state")
				}
				built.Add(1)
				return func(trial int, r *rng.Rand) (bool, error) { return true, nil }, nil
			})
		var pe *montecarlo.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("pointWorkers=%d: error = %v, want *montecarlo.PanicError", pw, err)
		}
		if !strings.Contains(err.Error(), "K=4") {
			t.Errorf("pointWorkers=%d: error %q does not name the panicking point", pw, err)
		}
	}
}

// TestTrialPanicSurfacesAsPointError: a panic inside a TRIAL (recovered one
// layer down, in montecarlo) also surfaces as an ordinary sweep error naming
// the point.
func TestTrialPanicSurfacesAsPointError(t *testing.T) {
	grid := Grid{Ks: []int{1, 2}}
	cfg := SweepConfig{Trials: 10, Workers: 2, PointWorkers: 2, Seed: 3}
	_, err := SweepProportion(context.Background(), grid, cfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			return func(trial int, r *rng.Rand) (bool, error) {
				if pt.K == 2 && trial == 7 {
					panic("trial exploded")
				}
				return true, nil
			}, nil
		})
	var pe *montecarlo.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want *montecarlo.PanicError", err)
	}
	if !strings.Contains(err.Error(), "K=2") || !strings.Contains(err.Error(), "trial 7") {
		t.Errorf("error %q should name point and trial", err)
	}
}
