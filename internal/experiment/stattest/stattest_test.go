package stattest

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/stats"
)

func TestZScore(t *testing.T) {
	// 60 successes in 100 trials against p0 = 0.5: z = 10/5 = 2.
	z := ZScore(stats.Proportion{Successes: 60, Trials: 100}, 0.5)
	if math.Abs(z-2) > 1e-12 {
		t.Errorf("z = %v, want 2", z)
	}
	// Degenerate p0 matching the observation exactly.
	if z := ZScore(stats.Proportion{Successes: 100, Trials: 100}, 1); z != 0 {
		t.Errorf("exact degenerate match: z = %v, want 0", z)
	}
	if z := ZScore(stats.Proportion{Successes: 99, Trials: 100}, 1); !math.IsInf(z, 1) {
		t.Errorf("degenerate mismatch: z = %v, want +Inf", z)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.999, 3.090232},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile endpoints must be ±Inf")
	}
}

// TestChiSquareCritical checks the Wilson–Hilferty approximation against
// reference quantiles (R qchisq): within ~2% at the tail levels tests use.
func TestChiSquareCritical(t *testing.T) {
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{1, 0.001, 10.828},
		{5, 0.001, 20.515},
		{10, 0.001, 29.588},
		{10, 0.05, 18.307},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.df, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("ChiSquareCritical(%d, %v) = %v, want ≈ %v", c.df, c.alpha, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareCritical(0, 0.01)) || !math.IsNaN(ChiSquareCritical(3, 0)) {
		t.Error("invalid arguments must return NaN")
	}
}

func TestCompareClassifiesAndPools(t *testing.T) {
	obs := []Observation{
		{Name: "plateau-0 ok", Predicted: 0.0001, Observed: stats.Proportion{Successes: 1, Trials: 100}},
		{Name: "plateau-1 ok", Predicted: 0.9999, Observed: stats.Proportion{Successes: 99, Trials: 100}},
		{Name: "interior ok", Predicted: 0.5, Observed: stats.Proportion{Successes: 52, Trials: 100}},
		{Name: "interior ok 2", Predicted: 0.3, Observed: stats.Proportion{Successes: 27, Trials: 100}},
	}
	rep, err := Compare(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("healthy observations: report not OK: %+v", rep)
	}
	if !rep.Points[0].Plateau || !rep.Points[1].Plateau || rep.Points[2].Plateau {
		t.Errorf("plateau classification wrong: %+v", rep.Points)
	}
	if rep.DF != 2 {
		t.Errorf("DF = %d, want 2 interior points", rep.DF)
	}
	wantChi := rep.Points[2].Z*rep.Points[2].Z + rep.Points[3].Z*rep.Points[3].Z
	if math.Abs(rep.ChiSquare-wantChi) > 1e-12 {
		t.Errorf("ChiSquare = %v, want pooled %v", rep.ChiSquare, wantChi)
	}

	// A biased interior point fails its z gate and the pooled gate.
	bad := []Observation{
		{Name: "biased", Predicted: 0.5, Observed: stats.Proportion{Successes: 90, Trials: 100}},
	}
	rep, err = Compare(bad, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Points[0].OK {
		t.Errorf("biased observation passed: %+v", rep)
	}
	// A drifted plateau point fails the deviation gate.
	drift := []Observation{
		{Name: "drifted plateau", Predicted: 0.9999, Observed: stats.Proportion{Successes: 90, Trials: 100}},
	}
	rep, err = Compare(drift, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Errorf("drifted plateau passed: %+v", rep)
	}

	// Malformed inputs are harness errors, not statistical verdicts.
	if _, err := Compare(nil, Config{}); err == nil {
		t.Error("empty observations: want error")
	}
	if _, err := Compare([]Observation{{Name: "no trials", Predicted: 0.5}}, Config{}); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := Compare([]Observation{
		{Name: "bad prediction", Predicted: 1.5, Observed: stats.Proportion{Successes: 1, Trials: 2}},
	}, Config{}); err == nil {
		t.Error("prediction outside [0,1]: want error")
	}

	// Many mildly-off points: each |z| under the per-point gate, pooled χ²
	// over the line — the joint test catches what the marginals miss.
	var mild []Observation
	for i := 0; i < 30; i++ {
		mild = append(mild, Observation{
			Name: "mild", Predicted: 0.5,
			Observed: stats.Proportion{Successes: 62, Trials: 100}, // z = 2.4 each
		})
	}
	rep, err = Compare(mild, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if !p.OK {
			t.Fatalf("per-point gate tripped at z = %v; want pooled failure only", p.Z)
		}
	}
	if rep.OK {
		t.Errorf("consistent mild bias passed the pooled χ² gate: χ² = %v, critical %v", rep.ChiSquare, rep.Critical)
	}
}
