// Package stattest statistically validates simulation output against
// internal/theory predictions: given simulated proportions and their
// predicted probabilities, it classifies each point as a zero–one plateau
// point (prediction essentially 0 or 1, checked by absolute deviation) or an
// interior point (checked by a binomial z-score), and pools the interior
// z-scores into a chi-square statistic against an explicit critical value.
//
// The equivalence tests elsewhere in the repository pin that two code paths
// produce identical bits; none of them would notice a sampler that is
// consistently wrong. This package closes that gap: at fixed seeds the
// checks are deterministic, and a silently-biased sampler (wrong key-share
// probability, skewed channel marginal, broken class mixing) shifts the
// observed proportions and fails the chi-square/z gates.
package stattest

import (
	"fmt"
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/stats"
)

// Observation pairs one simulated proportion with its theoretical
// prediction.
type Observation struct {
	// Name identifies the point in failure messages (e.g. "K=41 p=0.5").
	Name string
	// Predicted is the theoretical success probability in [0, 1].
	Predicted float64
	// Observed is the simulated estimate with its trial counts.
	Observed stats.Proportion
}

// Config controls plateau classification and test thresholds. The zero
// value picks the defaults noted on each field.
type Config struct {
	// PlateauMargin classifies predictions within this distance of 0 or 1
	// as zero–one plateau points, where the normal approximation breaks
	// down and agreement is checked by absolute deviation instead.
	// Default 0.005.
	PlateauMargin float64
	// PlateauTol is the largest |observed − predicted| accepted at plateau
	// points. Default 0.02.
	PlateauTol float64
	// MaxAbsZ is the per-point two-sided z-score threshold for interior
	// points. Default 4 (a deterministic fixed-seed run is a single draw;
	// the pooled chi-square provides the sharper joint test). Default 4.
	MaxAbsZ float64
	// Alpha is the significance level of the pooled chi-square check over
	// the interior points. Default 0.001.
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.PlateauMargin == 0 {
		c.PlateauMargin = 0.005
	}
	if c.PlateauTol == 0 {
		c.PlateauTol = 0.02
	}
	if c.MaxAbsZ == 0 {
		c.MaxAbsZ = 4
	}
	if c.Alpha == 0 {
		c.Alpha = 0.001
	}
	return c
}

// PointResult is the verdict on one observation.
type PointResult struct {
	Observation
	// Plateau reports whether the point was checked by plateau deviation
	// (true) or z-score (false).
	Plateau bool
	// Z is the binomial z-score of interior points (NaN at plateau points).
	Z float64
	// OK reports whether the point passed its check.
	OK bool
	// Detail explains a failure in one line.
	Detail string
}

// Report is the outcome of one Compare run.
type Report struct {
	Points []PointResult
	// ChiSquare pools the squared interior z-scores; under the null it is
	// χ²-distributed with DF degrees of freedom.
	ChiSquare float64
	DF        int
	// Critical is the χ² upper critical value at the configured Alpha
	// (0 when there are no interior points).
	Critical float64
	// OK reports whether every point passed AND the pooled statistic stayed
	// below Critical.
	OK bool
}

// ZScore returns the binomial z statistic of an observed proportion against
// the predicted success probability p0:
// (successes − trials·p0) / sqrt(trials·p0·(1−p0)).
func ZScore(obs stats.Proportion, p0 float64) float64 {
	se := math.Sqrt(float64(obs.Trials) * p0 * (1 - p0))
	if se == 0 {
		if float64(obs.Successes) == float64(obs.Trials)*p0 {
			return 0
		}
		return math.Inf(1)
	}
	return (float64(obs.Successes) - float64(obs.Trials)*p0) / se
}

// Compare checks every observation against its prediction under cfg. It
// errors on malformed inputs (no observations, zero trials, predictions
// outside [0, 1]) — those are harness bugs, not statistical disagreement.
func Compare(obs []Observation, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if len(obs) == 0 {
		return Report{}, fmt.Errorf("stattest: no observations to compare")
	}
	rep := Report{Points: make([]PointResult, len(obs)), OK: true}
	for i, o := range obs {
		if o.Observed.Trials <= 0 {
			return Report{}, fmt.Errorf("stattest: observation %q has no trials", o.Name)
		}
		if math.IsNaN(o.Predicted) || o.Predicted < 0 || o.Predicted > 1 {
			return Report{}, fmt.Errorf("stattest: observation %q predicts probability %v outside [0,1]", o.Name, o.Predicted)
		}
		pr := PointResult{Observation: o, Z: math.NaN(), OK: true}
		est := o.Observed.Estimate()
		if o.Predicted < cfg.PlateauMargin || o.Predicted > 1-cfg.PlateauMargin {
			pr.Plateau = true
			if dev := math.Abs(est - o.Predicted); dev > cfg.PlateauTol {
				pr.OK = false
				pr.Detail = fmt.Sprintf("plateau deviation |%.4f − %.4f| = %.4f exceeds %.4f",
					est, o.Predicted, dev, cfg.PlateauTol)
			}
		} else {
			pr.Z = ZScore(o.Observed, o.Predicted)
			rep.ChiSquare += pr.Z * pr.Z
			rep.DF++
			if math.Abs(pr.Z) > cfg.MaxAbsZ {
				pr.OK = false
				pr.Detail = fmt.Sprintf("z = %+.2f exceeds ±%.2f (observed %.4f, predicted %.4f, %d trials)",
					pr.Z, cfg.MaxAbsZ, est, o.Predicted, o.Observed.Trials)
			}
		}
		if !pr.OK {
			rep.OK = false
		}
		rep.Points[i] = pr
	}
	if rep.DF > 0 {
		rep.Critical = ChiSquareCritical(rep.DF, cfg.Alpha)
		if rep.ChiSquare > rep.Critical {
			rep.OK = false
		}
	}
	return rep, nil
}

// Check fails t with one line per failing point (and the pooled statistic
// when it is the reason) if the report is not OK.
func (r Report) Check(t testing.TB) {
	t.Helper()
	for _, p := range r.Points {
		if !p.OK {
			t.Errorf("stattest: %s: %s", p.Name, p.Detail)
		}
	}
	if r.DF > 0 && r.ChiSquare > r.Critical {
		t.Errorf("stattest: pooled χ² = %.2f over %d interior points exceeds critical %.2f",
			r.ChiSquare, r.DF, r.Critical)
	}
}

// ChiSquareCritical returns the upper critical value of the χ² distribution
// with df degrees of freedom at significance alpha (i.e. the 1−alpha
// quantile): exact closed forms at df ≤ 2 (χ²₁ is a squared normal, χ²₂ an
// exponential), the Wilson–Hilferty cube approximation beyond — accurate to
// a few per mille at the tail levels used in tests.
func ChiSquareCritical(df int, alpha float64) float64 {
	if df <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	switch df {
	case 1:
		z := NormalQuantile(1 - alpha/2)
		return z * z
	case 2:
		return -2 * math.Log(alpha)
	}
	z := NormalQuantile(1 - alpha)
	d := float64(df)
	h := 2.0 / (9.0 * d)
	v := 1 - h + z*math.Sqrt(h)
	return d * v * v * v
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// (Acklam's rational approximation; |relative error| < 1.2e-9 on (0, 1)).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	var b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	var c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	var d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	q := p - 0.5
	r := q * q
	return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
		(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
}
