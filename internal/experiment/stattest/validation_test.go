package stattest

// Statistical validation of the simulator against internal/theory at fixed
// seeds: the zero–one plateau of a figure1-style connectivity sweep, the
// heterogeneous Theorem 1 limit, and — the exact, bias-detecting teeth —
// chi-square/z checks of fixed-pair secure-link frequencies against the
// closed-form edge probabilities (which hold exactly at finite n, unlike
// the asymptotic connectivity limits). All sweeps run through the
// experiment engine on wsn.DeployerPools, so a regression anywhere in the
// sampling stack (key assignment, channel marginals, class mixing,
// discovery) shifts these proportions and fails the gates.
//
// CI runs the small-budget variants on every push; the large-budget variant
// is skipped under -short.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// connectivityTrial adapts a deployment config into a connectivity trial on
// a per-point DeployerPool.
func connectivityTrial(cfg wsn.Config) (montecarlo.Trial, error) {
	dp, err := wsn.NewDeployerPool(cfg)
	if err != nil {
		return nil, err
	}
	return func(trial int, r *rng.Rand) (bool, error) {
		d := dp.Get()
		defer dp.Put(d)
		net, err := d.DeployRand(r)
		if err != nil {
			return false, err
		}
		return net.IsConnected()
	}, nil
}

// pairLinkTrial adapts a deployment config into a "sensors 0 and 1 share a
// secure usable link" trial — the indicator whose success probability
// internal/theory predicts EXACTLY at finite n, making it the sharp bias
// detector of this suite.
func pairLinkTrial(cfg wsn.Config) (montecarlo.Trial, error) {
	dp, err := wsn.NewDeployerPool(cfg)
	if err != nil {
		return nil, err
	}
	return func(trial int, r *rng.Rand) (bool, error) {
		d := dp.Get()
		defer dp.Put(d)
		net, err := d.DeployRand(r)
		if err != nil {
			return false, err
		}
		return net.FullSecureTopology().HasEdge(0, 1), nil
	}, nil
}

// TestFigure1ZeroOnePlateauAgainstTheory pins the zero–one plateau of a
// figure1-style connectivity sweep: ring sizes chosen well below and well
// above the eq. (9) threshold must reproduce the Theorem 1 endpoints 0 and
// 1 within plateau tolerance. Small-budget variant, always run in CI.
func TestFigure1ZeroOnePlateauAgainstTheory(t *testing.T) {
	const (
		n      = 300
		pool   = 3000
		q      = 2
		pOn    = 0.5
		trials = 120
	)
	grid := experiment.Grid{Ks: []int{14, 18, 44, 52}, Qs: []int{q}, Ps: []float64{pOn}}
	results, err := experiment.SweepProportion(context.Background(), grid,
		experiment.SweepConfig{Trials: trials, Workers: 4, Seed: 20250730},
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
			if err != nil {
				return nil, err
			}
			return connectivityTrial(wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}})
		})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, res := range results {
		pt := res.Point
		tProb, err := theory.EdgeProb(pool, pt.K, pt.Q, pt.P)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := theory.Alpha(n, tProb, 1)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := theory.KConnProbLimit(alpha, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pred > 0.005 && pred < 0.995 {
			t.Fatalf("K=%d prediction %v is not a plateau point; pick ring sizes further from the threshold", pt.K, pred)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("figure1 K=%d", pt.K),
			Predicted: pred,
			Observed:  res.Value,
		})
	}
	rep, err := Compare(obs, Config{PlateauTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
}

// figure1InteriorSweep runs the transition-interior slice of the figure1
// connectivity curve (n = 300, P = 3000, q = 2, p = 0.5; ring sizes on the
// steep part where the predicted probability is well inside (0, 1)) on the
// streaming edge path and zips it with the Theorem 1 predictions. The
// interior is where the curve is steepest, so these points are maximally
// sensitive to sampler bias — a plateau check cannot see a shifted
// threshold; an interior z can. Trials run through
// experiment.SweepConnectivity, so this also gates the streaming pipeline
// end to end against theory, not just against the CSR path.
func figure1InteriorSweep(t *testing.T, trials int, seed uint64) []Observation {
	t.Helper()
	const (
		n    = 300
		pool = 3000
		q    = 2
		pOn  = 0.5
	)
	grid := experiment.Grid{Ks: []int{30, 32, 34}, Qs: []int{q}, Ps: []float64{pOn}}
	results, err := experiment.SweepConnectivity(context.Background(), grid,
		experiment.SweepConfig{Trials: trials, Workers: 4, Seed: seed},
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, res := range results {
		pt := res.Point
		tProb, err := theory.EdgeProb(pool, pt.K, pt.Q, pt.P)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := theory.Alpha(n, tProb, 1)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := theory.KConnProbLimit(alpha, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pred < 0.05 || pred > 0.97 {
			t.Fatalf("K=%d prediction %v is not transition-interior; move the ring sizes onto the steep part", pt.K, pred)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("figure1 interior K=%d", pt.K),
			Predicted: pred,
			Observed:  res.Value,
		})
	}
	return obs
}

// TestFigure1InteriorPointsAgainstTheory is the interior complement of the
// plateau check above: transition-interior connectivity proportions z-tested
// and chi-square-pooled against the Theorem 1 limit. Calibration at 4000
// trials measured the finite-n gap |est − pred| ≤ 0.009 across these points
// (the asymptotic limit is that sharp at n = 300 already), so the default
// gates carry ≥ 2× margin at this budget. Small-budget variant, always run
// in CI.
func TestFigure1InteriorPointsAgainstTheory(t *testing.T) {
	obs := figure1InteriorSweep(t, 250, 20250807)
	rep, err := Compare(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
	if rep.DF != len(obs) {
		t.Errorf("expected all %d interior points to feed the pooled χ², got DF = %d", len(obs), rep.DF)
	}
}

// TestFigure1InteriorChiSquareLargeBudget is the high-power variant: 4000
// streaming trials per point shrink the standard errors 4×, so threshold
// shifts of half a ring size become visible. At this budget the measured
// z-scores are (+1.2, +1.1, +2.1) — systematic finite-n gap plus sampling
// noise — against the ±4 per-point gate and a pooled χ² of ≈ 7.1 against
// the 16.3 critical value: ≈ 2× margin on both gates. Skipped under -short;
// CI's plain `go test ./...` runs it.
func TestFigure1InteriorChiSquareLargeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("large-budget statistical validation skipped in -short mode")
	}
	obs := figure1InteriorSweep(t, 4000, 31337)
	rep, err := Compare(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
	if rep.DF != len(obs) {
		t.Errorf("expected all %d interior points to feed the pooled χ², got DF = %d", len(obs), rep.DF)
	}
}

// TestLargeNInteriorAgainstTheory is the nightly-scale gate: n = 10⁴
// deployments — 33× the other connectivity checks — through the streaming
// edge pipeline, at channel probabilities p_α = (ln n + α)/(n·s) chosen so
// the scaling parameter α lands at −1, 0, +1 and the Theorem 1 limit
// exp(−e^{−α}) sits deep in the transition interior (≈ 0.066, 0.368,
// 0.692). At this n the finite-size gap to the asymptotic limit is well
// under one standard error at 400 trials, so the per-point z gate tightens
// from the default 4 to 3 — a sampler bias that hides inside the loose
// small-n gates has to survive a 33× larger graph AND a tighter gate here.
// Exercises the kernelized geometric sampler in its bulk-skip regime
// (p ≈ 1.5×10⁻³, mean skip ≈ 645 slots). Skipped under -short; CI's plain
// `go test ./...` runs it.
func TestLargeNInteriorAgainstTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n statistical validation skipped in -short mode")
	}
	const (
		n      = 10_000
		pool   = 512
		ring   = 32
		q      = 2
		trials = 400
	)
	// s = P[two rings share ≥ q keys]: the key half of the edge probability,
	// so p_α·s reproduces t_α = (ln n + α)/n exactly.
	s, err := theory.EdgeProb(pool, ring, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ps []float64
	for _, alpha := range []float64{-1, 0, 1} {
		ps = append(ps, (math.Log(n)+alpha)/(float64(n)*s))
	}
	grid := experiment.Grid{Ks: []int{ring}, Qs: []int{q}, Ps: ps}
	results, err := experiment.SweepConnectivity(context.Background(), grid,
		experiment.SweepConfig{Trials: trials, Workers: 0, Seed: 20260807},
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, res := range results {
		pt := res.Point
		tProb, err := theory.EdgeProb(pool, pt.K, pt.Q, pt.P)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := theory.Alpha(n, tProb, 1)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := theory.KConnProbLimit(alpha, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pred < 0.05 || pred > 0.97 {
			t.Fatalf("p=%g prediction %v is not transition-interior; re-derive the p_α schedule", pt.P, pred)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("large-n interior alpha=%+.0f", alpha),
			Predicted: pred,
			Observed:  res.Value,
		})
	}
	rep, err := Compare(obs, Config{MaxAbsZ: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
	if rep.DF != len(obs) {
		t.Errorf("expected all %d interior points to feed the pooled χ², got DF = %d", len(obs), rep.DF)
	}
}

// TestHeteroTheorem1LimitPlateau pins the heterogeneous zero–one law
// (Eletreby–Yağan Theorem 1): class-1 ring sizes putting λ_min well below
// and well above (ln n)/n must reproduce the exp(−e^{−β}) endpoints within
// plateau tolerance, under a non-uniform per-class-pair channel matrix.
// Small-budget variant, always run in CI.
func TestHeteroTheorem1LimitPlateau(t *testing.T) {
	const (
		n      = 300
		pool   = 2000
		q      = 1
		mu     = 0.5
		k2     = 40
		trials = 100
	)
	pOn := [][]float64{{0.6, 0.6}, {0.6, 0.6}}
	classesFor := func(k1 int) []keys.Class {
		return []keys.Class{{Mu: mu, RingSize: k1}, {Mu: 1 - mu, RingSize: k2}}
	}
	grid := experiment.Grid{Ks: []int{1, 12}, Qs: []int{q}}
	results, err := experiment.SweepProportion(context.Background(), grid,
		experiment.SweepConfig{Trials: trials, Workers: 4, Seed: 424242},
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewHeterogeneous(pool, pt.Q, classesFor(pt.K))
			if err != nil {
				return nil, err
			}
			return connectivityTrial(wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.HeterOnOff{P: pOn}})
		})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, res := range results {
		pt := res.Point
		pred, err := theory.HeteroConnProbability(n, pool, pt.Q, classesFor(pt.K), pOn)
		if err != nil {
			t.Fatal(err)
		}
		if pred > 0.005 && pred < 0.995 {
			t.Fatalf("K1=%d prediction %v is not a plateau point; move the ring sizes", pt.K, pred)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("hetero K1=%d", pt.K),
			Predicted: pred,
			Observed:  res.Value,
		})
	}
	rep, err := Compare(obs, Config{PlateauTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
}

// TestPairLinkCurvesMatchTheoryExactly is the exact small-budget check:
// fixed-pair secure-link frequencies across three model families — the
// q-composite/on-off curve over K, the disk-channel curve over the radius,
// and a heterogeneous class-mixture point — z-tested and chi-square-pooled
// against the closed-form probabilities, which are exact at finite n.
// Always run in CI.
func TestPairLinkCurvesMatchTheoryExactly(t *testing.T) {
	const (
		sensors = 24
		trials  = 600
		seed    = 7
	)
	ctx := context.Background()
	cfg := experiment.SweepConfig{Trials: trials, Workers: 4, Seed: seed}
	var obs []Observation

	// Curve 1: q-composite under on/off channels, swept over K.
	const (
		pool1 = 500
		q1    = 1
		p1    = 0.6
	)
	onoff, err := experiment.SweepProportion(ctx,
		experiment.Grid{Ks: []int{8, 14, 20}, Qs: []int{q1}, Ps: []float64{p1}}, cfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewQComposite(pool1, pt.K, pt.Q)
			if err != nil {
				return nil, err
			}
			return pairLinkTrial(wsn.Config{Sensors: sensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}})
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range onoff {
		pred, err := theory.EdgeProb(pool1, res.Point.K, q1, p1)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("on/off pair link K=%d", res.Point.K),
			Predicted: pred,
			Observed:  res.Value,
		})
	}

	// Curve 2: the same scheme under torus disk channels, swept over the
	// radius via the cross-sweep binding machinery's model (marginal π·r²).
	const ringDisk = 14
	disk, err := experiment.SweepProportion(ctx,
		experiment.Grid{Ks: []int{ringDisk}, Qs: []int{q1}, Xs: []float64{0.15, 0.25}}, cfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewQComposite(pool1, pt.K, pt.Q)
			if err != nil {
				return nil, err
			}
			return pairLinkTrial(wsn.Config{Sensors: sensors, Scheme: scheme,
				Channel: channel.Disk{Radius: pt.X, Torus: true}})
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range disk {
		pred, err := theory.DiskEdgeProb(pool1, ringDisk, q1, res.Point.X)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("disk pair link r=%g", res.Point.X),
			Predicted: pred,
			Observed:  res.Value,
		})
	}

	// Point 3: heterogeneous scheme + per-class-pair channel matrix; the
	// pair probability is the class-mixture average Σ μ_i μ_j t_ij.
	const pool3 = 400
	classes := []keys.Class{{Mu: 0.4, RingSize: 6}, {Mu: 0.6, RingSize: 18}}
	pOn := [][]float64{{0.9, 0.5}, {0.5, 0.7}}
	hetero, err := experiment.SweepProportion(ctx, experiment.Grid{}, cfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewHeterogeneous(pool3, 1, classes)
			if err != nil {
				return nil, err
			}
			return pairLinkTrial(wsn.Config{Sensors: sensors, Scheme: scheme, Channel: channel.HeterOnOff{P: pOn}})
		})
	if err != nil {
		t.Fatal(err)
	}
	tij, err := theory.HeteroEdgeProbs(pool3, 1, classes, pOn)
	if err != nil {
		t.Fatal(err)
	}
	mix := 0.0
	for i, ci := range classes {
		for j, cj := range classes {
			mix += ci.Mu * cj.Mu * tij[i][j]
		}
	}
	obs = append(obs, Observation{
		Name:      "hetero pair link (class mixture)",
		Predicted: mix,
		Observed:  hetero[0].Value,
	})

	rep, err := Compare(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
	if rep.DF < 6 {
		t.Errorf("expected ≥ 6 interior points feeding the pooled χ², got %d", rep.DF)
	}
}

// TestPairLinkChiSquareLargeBudget is the slow, high-power variant of the
// exact pair-link check: more curve points and 2500 trials each shrink the
// standard errors ~2×, so smaller sampler biases become visible. Skipped
// under -short; CI's plain `go test ./...` runs it.
func TestPairLinkChiSquareLargeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("large-budget statistical validation skipped in -short mode")
	}
	const (
		sensors = 30
		pool    = 600
		pOn     = 0.75
		trials  = 2500
	)
	grid := experiment.Grid{Ks: []int{10, 16, 22, 28}, Qs: []int{1, 2}, Ps: []float64{pOn}}
	results, err := experiment.SweepProportion(context.Background(), grid,
		experiment.SweepConfig{Trials: trials, Workers: 0, PointWorkers: 2, Seed: 99991},
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
			if err != nil {
				return nil, err
			}
			return pairLinkTrial(wsn.Config{Sensors: sensors, Scheme: scheme, Channel: channel.OnOff{P: pt.P}})
		})
	if err != nil {
		t.Fatal(err)
	}
	var obs []Observation
	for _, res := range results {
		pt := res.Point
		pred, err := theory.EdgeProb(pool, pt.K, pt.Q, pt.P)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, Observation{
			Name:      fmt.Sprintf("pair link K=%d q=%d", pt.K, pt.Q),
			Predicted: pred,
			Observed:  res.Value,
		})
	}
	rep, err := Compare(obs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Check(t)
	if rep.DF != grid.Len() {
		t.Errorf("expected all %d points interior, got DF = %d", grid.Len(), rep.DF)
	}
}

// TestObservationsFromSweep pins the glue most validation tests use: a
// SweepProportion result zipped with per-point predictions must carry the
// trial counts through (no silent budget truncation reading as agreement).
func TestObservationsFromSweep(t *testing.T) {
	grid := experiment.Grid{Ks: []int{3, 5}}
	results, err := experiment.SweepProportion(context.Background(), grid,
		experiment.SweepConfig{Trials: 40, Workers: 2, Seed: 2},
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			return func(trial int, r *rng.Rand) (bool, error) {
				return r.Float64() < 0.5, nil
			}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Value.Trials != 40 {
			t.Errorf("point %+v ran %d trials, want 40", res.Point, res.Value.Trials)
		}
		if z := ZScore(res.Value, 0.5); z != ZScore(stats.Proportion{
			Successes: res.Value.Successes, Trials: res.Value.Trials}, 0.5) {
			t.Errorf("z-score not a pure function of the proportion: %v", z)
		}
	}
}
