package experiment

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/stats"
)

// pivotFixture builds measurements over a 2×2 (K, p) grid with two curves.
func pivotFixture() []Measurement {
	var ms []Measurement
	idx := 0
	for _, k := range []int{10, 20} {
		for _, p := range []float64{0.2, 0.8} {
			pt := GridPoint{Index: idx, K: k, P: p}
			ms = append(ms, Measurement{
				Point: pt,
				Curve: curveName(p),
				X:     float64(k),
				Y:     float64(k) * p,
				Lo:    float64(k)*p - 1,
				Hi:    float64(k)*p + 1,
			})
			idx++
		}
	}
	return ms
}

func curveName(p float64) string {
	if p < 0.5 {
		return "p=0.2"
	}
	return "p=0.8"
}

func TestPivotSweepShapesTableAndSeries(t *testing.T) {
	ps := PivotSweep(PivotSpec{
		RowHeaders: []string{"K"},
		RowCells:   func(pt GridPoint) []string { return []string{itoa(pt.K)} },
	}, pivotFixture())

	if len(ps.Series) != 2 {
		t.Fatalf("%d series, want 2", len(ps.Series))
	}
	// Curves appear in first-seen order.
	if ps.Series[0].Name != "p=0.2" || ps.Series[1].Name != "p=0.8" {
		t.Errorf("series order %q, %q", ps.Series[0].Name, ps.Series[1].Name)
	}
	for _, s := range ps.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
	}
	if got := ps.Series[1].Points[0]; got.X != 10 || got.Y != 8 || got.Lo != 7 || got.Hi != 9 {
		t.Errorf("series point = %+v", got)
	}

	if len(ps.Table.Columns) != 3 || ps.Table.Columns[0] != "K" ||
		ps.Table.Columns[1] != "p=0.2" || ps.Table.Columns[2] != "p=0.8" {
		t.Errorf("columns = %v", ps.Table.Columns)
	}
	if len(ps.Table.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(ps.Table.Rows))
	}
	// Default cell format is %.3f of Y.
	if ps.Table.Rows[0][0] != "10" || ps.Table.Rows[0][1] != "2.000" || ps.Table.Rows[0][2] != "8.000" {
		t.Errorf("row 0 = %v", ps.Table.Rows[0])
	}
	if ps.Table.Rows[1][0] != "20" || ps.Table.Rows[1][2] != "16.000" {
		t.Errorf("row 1 = %v", ps.Table.Rows[1])
	}
}

func TestPivotSweepMultiLeadAndCustomFormat(t *testing.T) {
	ps := PivotSweep(PivotSpec{
		RowHeaders: []string{"K", "2K"},
		RowCells: func(pt GridPoint) []string {
			return []string{itoa(pt.K), itoa(2 * pt.K)}
		},
		FormatCell: func(m Measurement) string { return "cell" },
	}, pivotFixture())
	if len(ps.Table.Columns) != 4 {
		t.Fatalf("columns = %v", ps.Table.Columns)
	}
	if ps.Table.Rows[0][1] != "20" || ps.Table.Rows[0][2] != "cell" {
		t.Errorf("row 0 = %v", ps.Table.Rows[0])
	}
}

func TestProportionMeasurements(t *testing.T) {
	results := []ProportionResult{
		{Point: GridPoint{K: 30, P: 0.5}, Value: stats.Proportion{Successes: 40, Trials: 100}},
	}
	ms := ProportionMeasurements(results, 1.96,
		func(pt GridPoint) float64 { return float64(pt.K) },
		func(pt GridPoint) string { return "c" })
	if len(ms) != 1 {
		t.Fatal("no measurements")
	}
	m := ms[0]
	if m.X != 30 || m.Curve != "c" || m.Y != 0.4 {
		t.Errorf("measurement = %+v", m)
	}
	lo, hi := results[0].Value.WilsonInterval(1.96)
	if m.Lo != lo || m.Hi != hi {
		t.Errorf("band = [%v,%v], want [%v,%v]", m.Lo, m.Hi, lo, hi)
	}
	// z ≤ 0 omits the band.
	flat := ProportionMeasurements(results, 0,
		func(pt GridPoint) float64 { return 0 },
		func(pt GridPoint) string { return "c" })
	if flat[0].Lo != flat[0].Y || flat[0].Hi != flat[0].Y {
		t.Errorf("bandless measurement = %+v", flat[0])
	}
}

func TestMeanVecMeasurements(t *testing.T) {
	var sum stats.Summary
	for _, v := range []float64{1, 2, 3} {
		sum.Add(v)
	}
	results := []MeanVecResult{
		{Point: GridPoint{K: 5}, Values: []*stats.Summary{nil, &sum}},
	}
	ms := MeanVecMeasurements(results, 1, 2,
		func(pt GridPoint) float64 { return float64(pt.K) }, "mean")
	if ms[0].Y != 2 || ms[0].Curve != "mean" || ms[0].X != 5 {
		t.Errorf("measurement = %+v", ms[0])
	}
	if ms[0].Lo >= ms[0].Y || ms[0].Hi <= ms[0].Y {
		t.Errorf("band = [%v,%v] around %v", ms[0].Lo, ms[0].Hi, ms[0].Y)
	}
}

func TestSaveSeriesCSV(t *testing.T) {
	path := t.TempDir() + "/series.csv"
	ps := PivotSweep(PivotSpec{
		RowHeaders: []string{"K"},
		RowCells:   func(pt GridPoint) []string { return []string{itoa(pt.K)} },
	}, pivotFixture())
	if err := ps.SaveSeriesCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d csv lines, want header + 4", len(lines))
	}
	if lines[0] != "series,x,y,lo,hi" {
		t.Errorf("header = %q", lines[0])
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
