package experiment

// Kill/resume equivalence: a sweep cancelled after M of N points, resumed
// from its checkpoint journal, must produce results bit-identical to an
// uninterrupted run — across every sweep variant and every sharding level.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

var (
	resumeTestGrid = Grid{Ks: []int{3, 5}, Qs: []int{1, 2}, Ps: []float64{0.25, 0.75}, Xs: []float64{0, 1}}
	resumeTestCfg  = SweepConfig{Trials: 30, Workers: 2, Seed: 19}
)

// connStatsResumeBuild is the deployment behind the connstats resume
// variant: a tiny network whose parameters track the grid point.
func connStatsResumeBuild(pt GridPoint) (wsn.Config, error) {
	scheme, err := keys.NewQComposite(200, pt.K+pt.Q, pt.Q)
	if err != nil {
		return wsn.Config{}, err
	}
	return wsn.Config{Sensors: 40, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
}

// resumeVariant runs one sweep variant with the given config, returning the
// results as an any for bit-identical comparison and the number of build
// calls the run made (cached points never call build).
type resumeVariant struct {
	name string
	run  func(ctx context.Context, cfg SweepConfig, builds *atomic.Int64) (any, error)
}

func resumeVariants() []resumeVariant {
	return []resumeVariant{
		{name: "proportion", run: func(ctx context.Context, cfg SweepConfig, builds *atomic.Int64) (any, error) {
			res, err := SweepProportion(ctx, resumeTestGrid, cfg,
				func(pt GridPoint) (montecarlo.Trial, error) {
					builds.Add(1)
					return func(trial int, r *rng.Rand) (bool, error) {
						return r.Float64() < pt.P, nil
					}, nil
				})
			return res, err
		}},
		{name: "mean", run: func(ctx context.Context, cfg SweepConfig, builds *atomic.Int64) (any, error) {
			res, err := SweepMean(ctx, resumeTestGrid, cfg,
				func(pt GridPoint) (montecarlo.Sample, error) {
					builds.Add(1)
					return func(trial int, r *rng.Rand) (float64, error) {
						return r.Float64()*float64(pt.K) + pt.X, nil
					}, nil
				})
			return res, err
		}},
		{name: "meanvec", run: func(ctx context.Context, cfg SweepConfig, builds *atomic.Int64) (any, error) {
			res, err := SweepMeanVec(ctx, resumeTestGrid, cfg, 2,
				func(pt GridPoint) (montecarlo.SampleVec, error) {
					builds.Add(1)
					return func(trial int, r *rng.Rand) ([]float64, error) {
						u := r.Float64()
						return []float64{u * float64(pt.Q), u + pt.P}, nil
					}, nil
				})
			return res, err
		}},
		{name: "connstats", run: func(ctx context.Context, cfg SweepConfig, builds *atomic.Int64) (any, error) {
			res, err := SweepConnStats(ctx, resumeTestGrid, cfg,
				[]ConnStat{ConnStatConnected, ConnStatGiantFraction},
				func(pt GridPoint) (wsn.Config, error) {
					builds.Add(1)
					return connStatsResumeBuild(pt)
				})
			return res, err
		}},
	}
}

// killingJournal is a checkpoint sink that cancels the sweep once M point
// records have landed — the deterministic stand-in for a mid-grid kill. The
// record that triggers the cancellation is still persisted, exactly like a
// real kill arriving after the Write returned.
type killingJournal struct {
	buf    bytes.Buffer
	points int
	after  int
	cancel context.CancelFunc
}

func (k *killingJournal) Write(p []byte) (int, error) {
	n, err := k.buf.Write(p)
	if bytes.Contains(p, []byte(`"point"`)) {
		k.points++
		if k.points == k.after {
			k.cancel()
		}
	}
	return n, err
}

func TestKillResumeBitIdentical(t *testing.T) {
	total := resumeTestGrid.Len()
	for _, variant := range resumeVariants() {
		var cleanBuilds atomic.Int64
		clean, err := variant.run(context.Background(), resumeTestCfg, &cleanBuilds)
		if err != nil {
			t.Fatalf("%s: clean sweep failed: %v", variant.name, err)
		}
		for _, pw := range shardCounts() {
			// Cap shards at half the grid so every shard owns several points:
			// the mid-grid kill then reliably strikes while points are still
			// pending (a shard cannot pull its next point until its previous
			// write — serialized behind the cancelling one — completed).
			if pw > total/2 {
				pw = total / 2
			}
			t.Run(fmt.Sprintf("%s/pointWorkers=%d", variant.name, pw), func(t *testing.T) {
				cfg := resumeTestCfg
				cfg.PointWorkers = pw

				// Phase 1: run with a checkpoint journal and kill the sweep
				// after 3 of the points have landed.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				journal := &killingJournal{after: 3, cancel: cancel}
				killCfg := cfg
				killCfg.Checkpoint = journal
				var killBuilds atomic.Int64
				if _, err := variant.run(ctx, killCfg, &killBuilds); err == nil {
					t.Fatal("killed sweep unexpectedly succeeded")
				}
				persisted := journal.points
				if persisted >= total {
					t.Fatalf("kill persisted all %d points; cancellation never struck mid-grid", total)
				}

				// Phase 2: resume from the journal; the merged results must be
				// bit-identical to the uninterrupted run and the cached points
				// must not be recomputed.
				resumeCfg := cfg
				resumeCfg.Resume = bytes.NewReader(journal.buf.Bytes())
				var resumeBuilds atomic.Int64
				got, err := variant.run(context.Background(), resumeCfg, &resumeBuilds)
				if err != nil {
					t.Fatalf("resumed sweep failed: %v", err)
				}
				if !reflect.DeepEqual(got, clean) {
					t.Fatalf("resumed sweep differs from clean run\nclean:   %+v\nresumed: %+v", clean, got)
				}
				if want := int64(total - persisted); resumeBuilds.Load() > want {
					t.Errorf("resume rebuilt %d points, want at most %d (%d journaled)",
						resumeBuilds.Load(), want, persisted)
				}
			})
		}
	}
}

// TestResumeSameFileRoundTrip models the intended CLI usage: checkpoint and
// resume through the SAME journal, appending across several interrupted
// runs (so the journal holds multiple headers and possibly duplicate
// points).
func TestResumeSameFileRoundTrip(t *testing.T) {
	cfg := resumeTestCfg
	var cleanBuilds atomic.Int64
	variant := resumeVariants()[0]
	clean, err := variant.run(context.Background(), cfg, &cleanBuilds)
	if err != nil {
		t.Fatal(err)
	}

	var journal bytes.Buffer
	for kill := 2; ; kill += 2 {
		ctx, cancel := context.WithCancel(context.Background())
		killer := &killingJournal{after: kill, cancel: cancel}
		runCfg := cfg
		if journal.Len() > 0 {
			runCfg.Resume = bytes.NewReader(journal.Bytes())
		}
		runCfg.Checkpoint = killer
		var builds atomic.Int64
		got, err := variant.run(ctx, runCfg, &builds)
		journal.Write(killer.buf.Bytes())
		cancel()
		if err != nil {
			continue // killed again; resume on the next lap
		}
		if !reflect.DeepEqual(got, clean) {
			t.Fatalf("multi-resume sweep differs from clean run\nclean: %+v\ngot:   %+v", clean, got)
		}
		return
	}
}

// journalFor runs one complete checkpointed sweep and returns its journal.
func journalFor(t *testing.T, cfg SweepConfig) (*bytes.Buffer, any) {
	t.Helper()
	var journal bytes.Buffer
	ckCfg := cfg
	ckCfg.Checkpoint = &journal
	var builds atomic.Int64
	res, err := resumeVariants()[0].run(context.Background(), ckCfg, &builds)
	if err != nil {
		t.Fatalf("checkpointed sweep failed: %v", err)
	}
	return &journal, res
}

func TestResumeToleratesTruncatedFinalLine(t *testing.T) {
	journal, clean := journalFor(t, resumeTestCfg)
	// Chop the final record in half, as a kill mid-write would.
	data := bytes.TrimRight(journal.Bytes(), "\n")
	cut := data[:len(data)-len(data)/8]
	if cut[len(cut)-1] == '\n' {
		t.Fatal("test bug: truncation landed on a line boundary")
	}

	resumeCfg := resumeTestCfg
	resumeCfg.Resume = bytes.NewReader(cut)
	var builds atomic.Int64
	got, err := resumeVariants()[0].run(context.Background(), resumeCfg, &builds)
	if err != nil {
		t.Fatalf("resume from truncated journal failed: %v", err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatal("resume from truncated journal differs from clean run")
	}
	if builds.Load() == 0 {
		t.Error("truncated point was not recomputed")
	}
}

func TestResumeRejectsCorruptMidFileRecord(t *testing.T) {
	journal, _ := journalFor(t, resumeTestCfg)
	lines := bytes.Split(bytes.TrimRight(journal.Bytes(), "\n"), []byte("\n"))
	lines[2] = lines[2][:len(lines[2])/2] // corrupt a NON-final record
	resumeCfg := resumeTestCfg
	resumeCfg.Resume = bytes.NewReader(bytes.Join(lines, []byte("\n")))
	var builds atomic.Int64
	_, err := resumeVariants()[0].run(context.Background(), resumeCfg, &builds)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt mid-file record not rejected: %v", err)
	}
}

func TestResumeRejectsDifferentSweep(t *testing.T) {
	journal, _ := journalFor(t, resumeTestCfg)
	mismatches := map[string]func(*SweepConfig){
		"seed":   func(c *SweepConfig) { c.Seed++ },
		"trials": func(c *SweepConfig) { c.Trials++ },
		"label":  func(c *SweepConfig) { c.JournalLabel = "other experiment" },
	}
	for name, mutate := range mismatches {
		t.Run(name, func(t *testing.T) {
			cfg := resumeTestCfg
			mutate(&cfg)
			cfg.Resume = bytes.NewReader(journal.Bytes())
			var builds atomic.Int64
			_, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
			if err == nil || !strings.Contains(err.Error(), "different sweep") {
				t.Fatalf("journal for mismatched %s accepted: %v", name, err)
			}
		})
	}
	// A different sweep KIND over the same grid/config must be rejected too.
	// The kind is part of the fingerprint, and since same-label sections with
	// a different kind are a label collision, this now fails with the sharper
	// reused-label diagnosis rather than the generic different-sweep one.
	t.Run("kind", func(t *testing.T) {
		cfg := resumeTestCfg
		cfg.Resume = bytes.NewReader(journal.Bytes())
		_, err := SweepMean(context.Background(), resumeTestGrid, cfg,
			func(pt GridPoint) (montecarlo.Sample, error) {
				return func(trial int, r *rng.Rand) (float64, error) { return 0, nil }, nil
			})
		if err == nil || !strings.Contains(err.Error(), "reused label") {
			t.Fatalf("proportion journal accepted by mean sweep: %v", err)
		}
	})
}

func TestResumeRejectsSeedMismatchedPoint(t *testing.T) {
	journal, _ := journalFor(t, resumeTestCfg)
	// Tamper with one point's recorded seed. The header line (which now also
	// carries an informational seed field) must stay intact: only point-level
	// seeds are cross-checked against the fingerprint.
	headerEnd := bytes.IndexByte(journal.Bytes(), '\n') + 1
	tampered := append([]byte(nil), journal.Bytes()[:headerEnd]...)
	tampered = append(tampered, bytes.Replace(journal.Bytes()[headerEnd:], []byte(`"seed":`), []byte(`"seed":1`), 1)...)
	cfg := resumeTestCfg
	cfg.Resume = bytes.NewReader(tampered)
	var builds atomic.Int64
	_, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("tampered point seed accepted: %v", err)
	}
}

func TestResumeRejectsHeaderlessJournal(t *testing.T) {
	journal, _ := journalFor(t, resumeTestCfg)
	lines := bytes.SplitN(journal.Bytes(), []byte("\n"), 2)
	cfg := resumeTestCfg
	cfg.Resume = bytes.NewReader(lines[1]) // drop the header line
	var builds atomic.Int64
	_, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
	if err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("headerless journal accepted: %v", err)
	}
}

func TestResumeEmptyJournalRunsInFull(t *testing.T) {
	cfg := resumeTestCfg
	cfg.Resume = bytes.NewReader(nil)
	var builds atomic.Int64
	_, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
	if err != nil {
		t.Fatalf("empty resume journal rejected: %v", err)
	}
	if builds.Load() != int64(resumeTestGrid.Len()) {
		t.Errorf("empty journal: %d builds, want %d", builds.Load(), resumeTestGrid.Len())
	}
}

// TestResumeSkipsForeignSections: one journal file can hold several sweeps'
// sections (commands that run multiple sweeps checkpoint them all to one
// file); each sweep resumes only its own sections and skips the others.
func TestResumeSkipsForeignSections(t *testing.T) {
	otherCfg := resumeTestCfg
	otherCfg.JournalLabel = "other sweep"
	foreign, _ := journalFor(t, otherCfg)
	mine, clean := journalFor(t, resumeTestCfg)
	var combined bytes.Buffer
	combined.Write(foreign.Bytes())
	combined.Write(mine.Bytes())

	cfg := resumeTestCfg
	cfg.Resume = bytes.NewReader(combined.Bytes())
	var builds atomic.Int64
	got, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
	if err != nil {
		t.Fatalf("resume from multi-section journal failed: %v", err)
	}
	if builds.Load() != 0 {
		t.Errorf("multi-section resume rebuilt %d points, want 0", builds.Load())
	}
	if !reflect.DeepEqual(got, clean) {
		t.Error("multi-section resume differs from clean run")
	}
}

// errWriter fails every write, modelling a full disk under checkpointing.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestCheckpointWriteFailureSurfaces(t *testing.T) {
	cfg := resumeTestCfg
	cfg.Checkpoint = errWriter{}
	var builds atomic.Int64
	_, err := resumeVariants()[0].run(context.Background(), cfg, &builds)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("checkpoint write failure not surfaced: %v", err)
	}
}

// TestConcurrentJournalStress hammers one shared journal from every shard of
// a wide sweep; under -race this doubles as the data-race check for
// journalWriter, and afterwards the journal must parse whole and resume a
// zero-build run.
func TestConcurrentJournalStress(t *testing.T) {
	grid := Grid{Ks: []int{1, 2, 3, 4}, Qs: []int{1, 2, 3}, Ps: []float64{0.2, 0.5, 0.8}}
	cfg := SweepConfig{Trials: 8, Workers: 2, PointWorkers: 8, Seed: 5}
	var journal bytes.Buffer
	ckCfg := cfg
	ckCfg.Checkpoint = &journal
	res, err := SweepProportion(context.Background(), grid, ckCfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			return func(trial int, r *rng.Rand) (bool, error) {
				return r.Float64() < pt.P, nil
			}, nil
		})
	if err != nil {
		t.Fatalf("stress sweep failed: %v", err)
	}
	// Every line must parse: concurrent checkpointing may not interleave
	// records.
	resumeCfg := cfg
	resumeCfg.Resume = bytes.NewReader(journal.Bytes())
	var builds atomic.Int64
	got, err := SweepProportion(context.Background(), grid, resumeCfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			builds.Add(1)
			return func(trial int, r *rng.Rand) (bool, error) {
				return r.Float64() < pt.P, nil
			}, nil
		})
	if err != nil {
		t.Fatalf("resume after stress failed: %v", err)
	}
	if builds.Load() != 0 {
		t.Errorf("full journal resumed with %d rebuilds, want 0", builds.Load())
	}
	if !reflect.DeepEqual(got, res) {
		t.Error("journal round trip changed results")
	}
}
