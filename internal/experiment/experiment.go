// Package experiment provides the harness shared by every reproduction
// experiment: named data series with confidence intervals, aligned text
// tables, CSV emission, and a terminal ASCII line chart that stands in for
// the paper's figures (Go has no entrenched plotting stack; the CSV output
// feeds any external plotter while the ASCII chart makes runs self-contained).
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Point is one measurement: Y at X, with an optional [Lo, Hi] confidence
// band (set Lo = Hi = Y when no band applies).
type Point struct {
	X, Y   float64
	Lo, Hi float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point without a confidence band.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Lo: y, Hi: y})
}

// AddCI appends a point with a confidence band.
func (s *Series) AddCI(x, y, lo, hi float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Lo: lo, Hi: hi})
}

// Table is a simple aligned text table with CSV export.
type Table struct {
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(columns ...string) *Table {
	return &Table{Columns: append([]string(nil), columns...)}
}

// AddRow appends a row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, append([]string(nil), cells...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	row := func(cells []string) error {
		var b strings.Builder
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("experiment: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: csv flush: %w", err)
	}
	return nil
}

// WriteSeriesCSV writes long-format CSV (series, x, y, lo, hi) for external
// plotting.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y", "lo", "hi"}); err != nil {
		return fmt.Errorf("experiment: series csv header: %w", err)
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
				strconv.FormatFloat(p.Lo, 'g', -1, 64),
				strconv.FormatFloat(p.Hi, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiment: series csv row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: series csv flush: %w", err)
	}
	return nil
}

// ChartOptions configures RenderChart.
type ChartOptions struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot area dimensions in characters;
	// non-positive values use 72×20.
	Width, Height int
	// YMin/YMax fix the y range; leave both zero for auto-scaling.
	YMin, YMax float64
}

// seriesMarkers are assigned to series in order.
var seriesMarkers = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// RenderChart draws a multi-series ASCII line chart. Series points are
// plotted as markers at their nearest cell; the legend maps markers to
// series names.
func RenderChart(w io.Writer, series []Series, opts ChartOptions) error {
	width, height := opts.Width, opts.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				xmin, xmax, ymin, ymax = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if first {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if opts.YMin != 0 || opts.YMax != 0 {
		ymin, ymax = opts.YMin, opts.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[height-1-row][col] = marker
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for _, p := range s.Points {
			plot(p.X, p.Y, marker)
		}
	}

	if opts.Title != "" {
		if _, err := fmt.Fprintln(w, opts.Title); err != nil {
			return err
		}
	}
	if opts.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.YLabel); err != nil {
			return err
		}
	}
	for i, rowBytes := range grid {
		yVal := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.3f |%s\n", yVal, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%-*.4g%*.4g", width/2, xmin, width-width/2, xmax)
	if _, err := fmt.Fprintf(w, "%8s  %s\n", "", xAxis); err != nil {
		return err
	}
	if opts.XLabel != "" {
		if _, err := fmt.Fprintf(w, "%8s  %s\n", "", center(opts.XLabel, width)); err != nil {
			return err
		}
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		if _, err := fmt.Fprintf(w, "  %c  %s\n", marker, s.Name); err != nil {
			return err
		}
	}
	return nil
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
