package experiment

import (
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.AddCI(3, 4, 3.5, 4.5)
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Lo != 2 || s.Points[0].Hi != 2 {
		t.Errorf("Add should set degenerate CI: %+v", s.Points[0])
	}
	if s.Points[1].Lo != 3.5 || s.Points[1].Hi != 4.5 {
		t.Errorf("AddCI stored wrong band: %+v", s.Points[1])
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("K", "probability")
	tb.AddRow("28", "0.000")
	tb.AddRow("88", "1")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "K ") || !strings.Contains(lines[0], "probability") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "-") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "28") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestTableRenderMissingCells(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("1")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1") {
		t.Error("row with missing cells vanished")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("K", "P[conn]")
	tb.AddRow("28", "0.0")
	tb.AddRow("88", "1 | extra") // pipe must be escaped
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "| K | P[conn] |\n| --- | --- |\n| 28 | 0.0 |\n| 88 | 1 \\| extra |\n"
	if out != want {
		t.Errorf("markdown = %q, want %q", out, want)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow("1", "a,b") // embedded comma must be quoted
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,\"a,b\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := Series{Name: "q=2"}
	s.AddCI(28, 0.5, 0.4, 0.6)
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, []Series{s}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,x,y,lo,hi\n") {
		t.Errorf("header missing: %q", out)
	}
	if !strings.Contains(out, "q=2,28,0.5,0.4,0.6") {
		t.Errorf("row missing: %q", out)
	}
}

func TestRenderChartBasics(t *testing.T) {
	var s1, s2 Series
	s1.Name = "rising"
	s2.Name = "falling"
	for i := 0; i <= 10; i++ {
		s1.Add(float64(i), float64(i)/10)
		s2.Add(float64(i), 1-float64(i)/10)
	}
	var sb strings.Builder
	err := RenderChart(&sb, []Series{s1, s2}, ChartOptions{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "P",
		Width:  40,
		Height: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test chart", "rising", "falling", "o", "x", "+---", "P"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The rising series' first point (0,0) must be bottom-left, the top row
	// must contain a marker for y=1.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 10 {
		t.Fatalf("plot rows = %d, want 10:\n%s", len(plotLines), out)
	}
	top, bottom := plotLines[0], plotLines[len(plotLines)-1]
	if !strings.ContainsAny(top[strings.Index(top, "|"):], "ox") {
		t.Errorf("top row empty: %q", top)
	}
	if !strings.ContainsAny(bottom[strings.Index(bottom, "|"):], "ox") {
		t.Errorf("bottom row empty: %q", bottom)
	}
}

func TestRenderChartEmpty(t *testing.T) {
	var sb strings.Builder
	if err := RenderChart(&sb, nil, ChartOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty chart output = %q", sb.String())
	}
}

func TestRenderChartFixedYRange(t *testing.T) {
	var s Series
	s.Name = "flat"
	s.Add(0, 0.5)
	s.Add(1, 0.5)
	var sb strings.Builder
	err := RenderChart(&sb, []Series{s}, ChartOptions{YMin: 0, YMax: 1, Width: 20, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.000") {
		t.Errorf("fixed y range labels missing:\n%s", out)
	}
}

func TestRenderChartSinglePoint(t *testing.T) {
	var s Series
	s.Name = "dot"
	s.Add(5, 5)
	var sb strings.Builder
	if err := RenderChart(&sb, []Series{s}, ChartOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "o") {
		t.Error("single point not plotted")
	}
}
