package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// crossBuild is the standard small-deployment build used by the cross-sweep
// tests: scheme from the point's (K, q) axes, channel left to the binding.
func crossBuild(sensors, pool int) func(pt GridPoint) (wsn.Config, error) {
	return func(pt GridPoint) (wsn.Config, error) {
		scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
		if err != nil {
			return wsn.Config{}, err
		}
		return wsn.Config{Sensors: sensors, Scheme: scheme}, nil
	}
}

// TestCrossSpecValidateRejectsDoubleBinding pins the validation satellite: a
// Grid whose Xs axis is bound twice (k and radius) must be rejected with a
// clear error instead of silently letting one binding win.
func TestCrossSpecValidateRejectsDoubleBinding(t *testing.T) {
	grid := Grid{Ks: []int{8}, Qs: []int{1}, Xs: []float64{1, 2}}
	build := crossBuild(20, 60)

	_, err := CrossSweep(context.Background(), grid, SweepConfig{Trials: 2, Seed: 1},
		CrossSpec{Bindings: []XBinding{BindK, BindDiskRadius}, Build: build})
	if err == nil || !strings.Contains(err.Error(), "bound twice") {
		t.Errorf("k+radius double binding: err = %v, want a 'bound twice' error", err)
	}
	if err != nil && (!strings.Contains(err.Error(), "connectivity level k") || !strings.Contains(err.Error(), "disk radius")) {
		t.Errorf("double-binding error %q does not name both quantities", err)
	}

	// The fixed level and a BindK axis are the same quantity twice.
	_, err = CrossSweep(context.Background(), grid, SweepConfig{Trials: 2, Seed: 1},
		CrossSpec{Bindings: []XBinding{BindK}, K: 2, Build: build})
	if err == nil || !strings.Contains(err.Error(), "bound twice") {
		t.Errorf("K field + BindK: err = %v, want a 'bound twice' error", err)
	}

	// A channel binding plus a build-supplied channel is a channel conflict.
	_, err = CrossSweep(context.Background(), Grid{Ks: []int{8}, Qs: []int{1}, Xs: []float64{0.5}},
		SweepConfig{Trials: 2, Seed: 1},
		CrossSpec{Bindings: []XBinding{BindChannelOn}, Build: func(pt GridPoint) (wsn.Config, error) {
			cfg, err := crossBuild(20, 60)(pt)
			cfg.Channel = channel.AlwaysOn{}
			return cfg, err
		}})
	if err == nil || !strings.Contains(err.Error(), "channel bound twice") {
		t.Errorf("channel binding + build channel: err = %v, want a 'channel bound twice' error", err)
	}
}

// TestCrossSpecValidateEagerAxisChecks pins the remaining spec validation:
// missing build, negative levels, unknown bindings, and Xs values that are
// illegal for the bound quantity all fail before any deployment runs.
func TestCrossSpecValidateEagerAxisChecks(t *testing.T) {
	build := crossBuild(20, 60)
	cases := []struct {
		name string
		grid Grid
		spec CrossSpec
		want string
	}{
		{"missing build", Grid{}, CrossSpec{}, "Build callback"},
		{"negative K", Grid{}, CrossSpec{K: -1, Build: build}, "must be ≥ 0"},
		{"unknown binding", Grid{}, CrossSpec{Bindings: []XBinding{XBinding(99)}, Build: build}, "unknown"},
		{"fractional k level", Grid{Xs: []float64{1.5}},
			CrossSpec{Bindings: []XBinding{BindK}, Build: build}, "connectivity level"},
		{"negative radius", Grid{Xs: []float64{-0.25}},
			CrossSpec{Bindings: []XBinding{BindDiskRadius}, Build: build}, "disk radius"},
		{"on probability above 1", Grid{Xs: []float64{1.5}},
			CrossSpec{Bindings: []XBinding{BindChannelOn}, Build: build}, "on probability"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(tc.grid)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// And a well-formed spec passes.
	ok := CrossSpec{Bindings: []XBinding{BindDiskRadius}, Torus: true, K: 2, Build: build}
	if err := ok.Validate(Grid{Xs: []float64{0, 0.2, 0.4}}); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestCrossSweepRadiusBindingDeploys runs a real radius-bound cross sweep:
// the channel at each point must be the disk model at the point's radius, so
// a zero radius yields a never-connected network (for n ≥ 2) and a huge
// radius under a dense scheme yields an always-connected one.
func TestCrossSweepRadiusBindingDeploys(t *testing.T) {
	grid := Grid{Ks: []int{12}, Qs: []int{1}, Xs: []float64{0, 1.5}}
	res, err := CrossSweep(context.Background(), grid,
		SweepConfig{Trials: 12, Workers: 2, Seed: 7},
		CrossSpec{Bindings: []XBinding{BindDiskRadius}, Torus: true, Build: crossBuild(16, 12)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if got := res[0].Value.Estimate(); got != 0 {
		t.Errorf("radius 0: P[connected] = %v, want 0 (empty channel graph)", got)
	}
	// K = P = 12 makes every ring the full pool, so any channel edge is a
	// secure link; radius 1.5 on the torus covers the whole unit square.
	if got := res[1].Value.Estimate(); got != 1 {
		t.Errorf("radius 1.5, full-pool rings: P[connected] = %v, want 1", got)
	}
}

// TestCrossSweepBitIdenticalAcrossPointWorkers is the determinism pin for
// the new path: a radius-bound cross sweep at a fixed connectivity level
// must produce results bit-identical to the sequential run for every
// PointWorkers value, because per-point seeds derive from point parameters,
// never from scheduling.
func TestCrossSweepBitIdenticalAcrossPointWorkers(t *testing.T) {
	grid := Grid{Ks: []int{6, 10}, Qs: []int{1}, Xs: []float64{0.2, 0.35, 0.5}}
	spec := CrossSpec{
		Bindings: []XBinding{BindDiskRadius},
		Torus:    true,
		K:        2,
		Build:    crossBuild(24, 40),
	}
	run := func(pointWorkers int) []ProportionResult {
		t.Helper()
		res, err := CrossSweep(context.Background(), grid,
			SweepConfig{Trials: 25, Workers: 2, PointWorkers: pointWorkers, Seed: 23}, spec)
		if err != nil {
			t.Fatalf("PointWorkers=%d: %v", pointWorkers, err)
		}
		return res
	}
	want := run(0)
	if len(want) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(want), grid.Len())
	}
	for _, pw := range shardCounts()[1:] {
		got := run(pw)
		if len(got) != len(want) {
			t.Fatalf("PointWorkers=%d: %d results, want %d", pw, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PointWorkers=%d point %d: %+v, want %+v (sequential)", pw, i, got[i], want[i])
			}
		}
	}
}

// TestCrossSweepBuildErrorDrainsShards mirrors the sweep error contract on
// the cross path: when a later point's build fails, all shards drain and the
// first failing point in Points() order is reported, never cancellation
// fallout.
func TestCrossSweepBuildErrorDrainsShards(t *testing.T) {
	grid := Grid{Ks: []int{4, 6, 8, 10}, Qs: []int{1}, Xs: []float64{0.3}}
	wantErr := errors.New("cross build exploded")
	for _, pw := range shardCounts() {
		_, err := CrossSweep(context.Background(), grid,
			SweepConfig{Trials: 5, PointWorkers: pw, Seed: 3},
			CrossSpec{Bindings: []XBinding{BindDiskRadius}, Build: func(pt GridPoint) (wsn.Config, error) {
				return wsn.Config{}, wantErr
			}})
		if !errors.Is(err, wantErr) {
			t.Errorf("PointWorkers=%d: err = %v, want the build error", pw, err)
		}
		if err != nil && errors.Is(err, context.Canceled) {
			t.Errorf("PointWorkers=%d: cancellation fallout masked the build error: %v", pw, err)
		}
	}
}

// TestCrossSweepContextCancellation pins prompt shutdown of a cancelled
// cross sweep across shard counts, mirroring the plain sweep test.
func TestCrossSweepContextCancellation(t *testing.T) {
	var ks []int
	for k := 2; k <= 40; k++ {
		ks = append(ks, k)
	}
	grid := Grid{Ks: ks, Qs: []int{1}, Xs: []float64{0.3, 0.4}}
	for _, pw := range shardCounts() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancel before the sweep even starts: it must return promptly
		done := make(chan error, 1)
		go func() {
			_, err := CrossSweep(ctx, grid,
				SweepConfig{Trials: 1 << 16, Workers: 2, PointWorkers: pw, Seed: 5},
				CrossSpec{Bindings: []XBinding{BindDiskRadius}, Build: crossBuild(40, 60)})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("PointWorkers=%d: err = %v, want context.Canceled", pw, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("PointWorkers=%d: cancelled cross sweep did not stop", pw)
		}
	}
}
