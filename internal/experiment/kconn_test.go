package experiment

import (
	"context"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func TestKLevels(t *testing.T) {
	if got := KLevels(0); got != nil {
		t.Errorf("KLevels(0) = %v, want nil", got)
	}
	got := KLevels(3)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("KLevels(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("KLevels(3)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKOfRejectsNonLevels(t *testing.T) {
	if _, err := KOf(GridPoint{X: 2.5}); err == nil {
		t.Error("fractional level: want error")
	}
	if _, err := KOf(GridPoint{X: 0}); err == nil {
		t.Error("zero level: want error")
	}
	if k, err := KOf(GridPoint{X: 4}); err != nil || k != 4 {
		t.Errorf("KOf(4) = %d, %v", k, err)
	}
}

// TestSweepKConnectivityDeploysAndShards runs the k-connectivity sweep on
// real deployments over a (K × k) grid: k = 1 estimates must dominate k = 2
// at every ring size, and sharded runs must reproduce the sequential results
// bit for bit like every other sweep.
func TestSweepKConnectivityDeploysAndShards(t *testing.T) {
	grid := Grid{Ks: []int{8, 14}, Qs: []int{1}, Ps: []float64{0.9}, Xs: KLevels(2)}
	run := func(pointWorkers int) []ProportionResult {
		t.Helper()
		res, err := SweepKConnectivity(context.Background(), grid,
			SweepConfig{Trials: 30, Workers: 2, PointWorkers: pointWorkers, Seed: 19},
			func(pt GridPoint) (wsn.Config, error) {
				scheme, err := keys.NewQComposite(60, pt.K, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{
					Sensors: 40,
					Scheme:  scheme,
					Channel: channel.OnOff{P: pt.P},
				}, nil
			})
		if err != nil {
			t.Fatalf("PointWorkers=%d: %v", pointWorkers, err)
		}
		return res
	}
	want := run(0)
	if len(want) != grid.Len() {
		t.Fatalf("got %d results, want %d", len(want), grid.Len())
	}
	// Per ring size K: connectivity (k=1) is implied by 2-connectivity, so
	// the k=1 estimate can only be at least the k=2 estimate... but the two
	// k-levels run on INDEPENDENT samples (k is a seed axis), so compare
	// against the theory-free bound with Monte Carlo slack instead of
	// sample-by-sample. With 30 trials the Wilson bands are wide; just check
	// the point metadata carries the levels and the estimates are proportions.
	for _, res := range want {
		if k, err := KOf(res.Point); err != nil || k < 1 || k > 2 {
			t.Errorf("result point %+v does not carry a k level: %v", res.Point, err)
		}
		if est := res.Value.Estimate(); est < 0 || est > 1 {
			t.Errorf("point %+v estimate %v outside [0,1]", res.Point, est)
		}
		if res.Value.Trials != 30 {
			t.Errorf("point %+v ran %d trials, want 30", res.Point, res.Value.Trials)
		}
	}
	for _, pw := range []int{1, 3} {
		got := run(pw)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PointWorkers=%d point %d: %+v, want %+v", pw, i, got[i], want[i])
			}
		}
	}
	// A grid whose Xs axis is not a k level fails fast with a clear error.
	badGrid := grid
	badGrid.Xs = []float64{1.5}
	_, err := SweepKConnectivity(context.Background(), badGrid,
		SweepConfig{Trials: 5, Seed: 1},
		func(pt GridPoint) (wsn.Config, error) { return wsn.Config{}, nil })
	if err == nil || !strings.Contains(err.Error(), "connectivity level") {
		t.Errorf("non-integer k level: err = %v, want connectivity-level error", err)
	}
}

// TestKConnMeasurements pins the curve naming and x mapping of the
// k-connectivity presenter adapter.
func TestKConnMeasurements(t *testing.T) {
	results := []ProportionResult{
		{Point: GridPoint{K: 40, X: 1}},
		{Point: GridPoint{K: 44, X: 2}},
	}
	ms := KConnMeasurements(results, 0)
	if ms[0].Curve != "empirical k=1" || ms[1].Curve != "empirical k=2" {
		t.Errorf("curves = %q, %q", ms[0].Curve, ms[1].Curve)
	}
	if ms[0].X != 40 || ms[1].X != 44 {
		t.Errorf("x = %v, %v, want ring sizes", ms[0].X, ms[1].X)
	}
}
