package experiment

// Sweep runs a (K, q, p[, x]) parameter grid through the Monte Carlo engine
// with per-point deterministic seeding: every grid point gets its own base
// seed derived from (Seed, K, q, p, x) via chained rng.StreamSeed mixing —
// the point's parameters, not its grid position — so any point of any sweep
// can be reproduced in isolation and adding points to one axis never
// perturbs the other points' results for the same base seed.
//
// Grid points themselves can be sharded across a worker pool
// (SweepConfig.PointWorkers): shards own the per-point state their build
// calls create and results land in Points() order, and because seeds never
// depend on scheduling, the sharded estimates are bit-identical to the
// sequential ones field for field.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

// Grid is a cartesian parameter grid over the model axes the paper sweeps:
// key ring size K, overlap requirement q, and channel-on probability p. The
// optional auxiliary axis X carries experiment-specific values (capture
// counts, disk radii); leave it nil for a single zero.
type Grid struct {
	Ks []int
	Qs []int
	Ps []float64
	Xs []float64
}

// GridPoint is one grid point. Index is its position in Points() order —
// presentation metadata only; per-point seeds are derived from the
// parameters (K, Q, P, X), never from Index (see SweepConfig.PointSeed).
type GridPoint struct {
	Index int
	K, Q  int
	P     float64
	X     float64
}

// String names the point by its parameters, so sweep errors surface WHICH
// point failed in readable form ("experiment: sweep point {K=40 q=2 p=0.5
// x=0 #12}: ...") instead of an anonymous struct dump.
func (pt GridPoint) String() string {
	return fmt.Sprintf("{K=%d q=%d p=%g x=%g #%d}", pt.K, pt.Q, pt.P, pt.X, pt.Index)
}

func (g Grid) axes() (ks []int, qs []int, ps, xs []float64) {
	ks, qs, ps, xs = g.Ks, g.Qs, g.Ps, g.Xs
	if len(ks) == 0 {
		ks = []int{0}
	}
	if len(qs) == 0 {
		qs = []int{0}
	}
	if len(ps) == 0 {
		ps = []float64{0}
	}
	if len(xs) == 0 {
		xs = []float64{0}
	}
	return ks, qs, ps, xs
}

// Len returns the number of grid points. Empty axes count as one degenerate
// value, so a grid used over fewer than four axes still enumerates.
func (g Grid) Len() int {
	ks, qs, ps, xs := g.axes()
	return len(ks) * len(qs) * len(ps) * len(xs)
}

// Points enumerates the grid in row-major order (K outermost, then q, p, X).
func (g Grid) Points() []GridPoint {
	ks, qs, ps, xs := g.axes()
	out := make([]GridPoint, 0, g.Len())
	for _, k := range ks {
		for _, q := range qs {
			for _, p := range ps {
				for _, x := range xs {
					out = append(out, GridPoint{Index: len(out), K: k, Q: q, P: p, X: x})
				}
			}
		}
	}
	return out
}

// SweepConfig controls one sweep run.
type SweepConfig struct {
	// Trials is the number of Monte Carlo trials per grid point.
	Trials int
	// Workers bounds per-point parallelism; 0 means all CPUs. Under point
	// sharding (PointWorkers > 0) the per-point budget is divided across the
	// shards, so the total goroutine count stays ≈ Workers.
	Workers int
	// PointWorkers shards GRID POINTS across a worker pool: each shard is a
	// long-lived goroutine that pulls points off a queue, runs build there
	// (so any state build creates — typically a wsn.DeployerPool plus its
	// graphalgo.Workspace scratch — is owned by that shard for the point's
	// whole trial run), and writes the result into the point's Points() slot.
	//
	// 0 preserves the historical behavior: points run sequentially on the
	// caller's goroutine, only trials within a point parallelize. Because
	// per-point seeds derive from point parameters (PointSeed) and per-trial
	// streams from trial indices, estimates are bit-identical for every
	// PointWorkers value — scheduling never touches randomness.
	PointWorkers int
	// Seed is the sweep's base seed. Every grid point runs with an
	// independent base seed mixed from (Seed, K, q, p, x); trials within a
	// point derive per-trial streams from that, as montecarlo always does.
	Seed uint64

	// Checkpoint, when non-nil, receives the sweep's journal: a header
	// record binding the journal to this sweep's fingerprint, then one
	// JSON-lines record per freshly completed grid point, appended as each
	// point lands (under sharding, in completion order — resume does not
	// care). Writes are serialized and each record is a single Write call,
	// so an os.File opened with O_APPEND is safe to share. Points restored
	// from Resume are NOT re-emitted: to keep one complete journal, resume
	// from and checkpoint to the same file.
	Checkpoint io.Writer
	// Resume, when non-nil, is a journal written by a previous run of this
	// same sweep (verified via the fingerprint: grid, trials, seed, sweep
	// kind, JournalLabel, code version — worker counts excluded by design).
	// Completed points load from the journal and are skipped; the merged
	// results are bit-identical to an uninterrupted run because per-point
	// seeds derive from parameters, never from scheduling. An empty stream
	// resumes nothing; a journal from a different sweep is an error.
	Resume io.Reader
	// JournalLabel distinguishes sweeps whose identity is not captured by
	// (grid, trials, seed, kind) alone — everything the build closure bakes
	// in: sensor count, pool size, channel family, measurement choice.
	// Callers that checkpoint SHOULD set it (e.g. "figure1 n=1000
	// pool=10000"); it folds into the fingerprint, so resuming a journal
	// across semantically different sweeps fails instead of silently
	// merging incompatible results.
	JournalLabel string

	// PointDone, when non-nil, is invoked once per grid point as the point's
	// result lands: fromCache reports whether the point was restored from
	// the Resume journal (true) or freshly computed (false). Restored points
	// report before any fresh point runs; fresh points report after their
	// checkpoint record (if any) has been written. Under point sharding the
	// hook is called concurrently from shard goroutines, so it must be safe
	// for concurrent use and should return quickly. The hook observes
	// progress only — it cannot alter results, and it is not part of the
	// journal fingerprint.
	PointDone func(pt GridPoint, fromCache bool)

	// PointTimeout bounds each ATTEMPT of one grid point (build plus its
	// full trial run); 0 means no timeout. A timed-out attempt counts as a
	// retryable failure; its goroutine is abandoned (every attempt calls
	// build afresh, so attempts never share state), which keeps a wedged
	// point from hanging the grid.
	PointTimeout time.Duration
	// PointRetries is the number of ADDITIONAL attempts a failed point gets
	// when its error is retryable; 0 means fail on first error. Retries
	// re-run the point from its parameter-derived seed, so a retried
	// point's result is bit-identical to a clean run's.
	PointRetries int
	// RetryBackoff is the delay before the first retry (default 10ms),
	// doubling with each subsequent attempt. Backoff aborts promptly when
	// the sweep is cancelled.
	RetryBackoff time.Duration
	// RetryIf overrides the retry policy. nil retries errors marked
	// montecarlo.ErrTransient and per-point timeouts
	// (context.DeadlineExceeded); genuine sweep cancellation is never
	// retried regardless of policy.
	RetryIf func(error) bool
}

// clampShards caps PointWorkers at the number of grid points, so the
// per-point worker split (pointConfig) is computed from the shard count that
// will actually run — a 2-point grid with PointWorkers = 16 runs 2 shards
// with the full per-point budget each, not 2 starved ones. Seeding never
// depends on worker counts, so this cannot perturb results.
func (c SweepConfig) clampShards(grid Grid) SweepConfig {
	if n := grid.Len(); c.PointWorkers > n {
		c.PointWorkers = n
	}
	return c
}

// pointConfig returns the montecarlo configuration of grid point pt: the
// point's parameter-derived seed, and the per-point trial parallelism — the
// full Workers budget when points run sequentially, or the budget split
// across shards (at least 1 each) under point sharding.
func (c SweepConfig) pointConfig(pt GridPoint) montecarlo.Config {
	workers := c.Workers
	if c.PointWorkers > 1 {
		if workers == 0 {
			workers = runtime.NumCPU()
		}
		workers /= c.PointWorkers
		if workers < 1 {
			workers = 1
		}
	}
	return montecarlo.Config{Trials: c.Trials, Workers: workers, Seed: c.PointSeed(pt)}
}

// runPoints executes fn for every grid point and returns the results in
// Points() order regardless of scheduling. PointWorkers = 0 runs points
// sequentially on the calling goroutine (the historical sweep behavior);
// otherwise min(PointWorkers, points) shard goroutines pull points off a
// queue. fn observes a context that is cancelled as soon as any point fails,
// so in-flight points stop promptly; all shards are always fully drained
// before return.
//
// Every point executes under the supervisor (runSupervised): panics in
// build become point errors, attempts are bounded by cfg.PointTimeout, and
// retryable failures re-run up to cfg.PointRetries times. With
// cfg.Resume/cfg.Checkpoint set, previously journaled points are restored
// instead of recomputed and fresh completions are checkpointed as they
// land; merged results are bit-identical to an uninterrupted run.
//
// On failure the error reported is the first FAILING point in Points()
// order, preferring genuine point errors over the cancellation fallout they
// caused in concurrently running points.
func runPoints[R any](ctx context.Context, grid Grid, cfg SweepConfig, codec pointCodec[R],
	fn func(ctx context.Context, pt GridPoint) (R, error)) ([]R, error) {
	pts := grid.Points()
	out := make([]R, len(pts))
	jw, cached, err := cfg.journalSetup(codec.kind, grid)
	if err != nil {
		return nil, err
	}
	pending := pts
	if len(cached) > 0 {
		pending = make([]GridPoint, 0, len(pts))
		for _, pt := range pts {
			rec, ok := cached[keyOf(pt)]
			if !ok {
				pending = append(pending, pt)
				continue
			}
			if want := cfg.PointSeed(pt); rec.Seed != want {
				return nil, fmt.Errorf("experiment: resume journal point %v ran under seed %d, want %d (corrupt or incompatible journal)",
					pt, rec.Seed, want)
			}
			r, err := codec.decode(pt, rec.Value)
			if err != nil {
				return nil, fmt.Errorf("experiment: resume journal point %v: %w", pt, err)
			}
			out[pt.Index] = r
			if cfg.PointDone != nil {
				cfg.PointDone(pt, true)
			}
		}
	}
	// run supervises one point and checkpoints its fresh result.
	run := func(ctx context.Context, pt GridPoint) (R, error) {
		r, err := runSupervised(ctx, cfg, pt, fn)
		if err != nil {
			return r, err
		}
		if jw != nil {
			raw, err := codec.encode(r)
			if err != nil {
				return r, fmt.Errorf("experiment: checkpointing point %v: %w", pt, err)
			}
			if err := jw.writePoint(pt, cfg.PointSeed(pt), raw); err != nil {
				return r, err
			}
		}
		if cfg.PointDone != nil {
			cfg.PointDone(pt, false)
		}
		return r, nil
	}
	if cfg.PointWorkers <= 0 {
		for _, pt := range pending {
			r, err := run(ctx, pt)
			if err != nil {
				return nil, err
			}
			out[pt.Index] = r
		}
		return out, nil
	}

	// cfg arrives clampShards-ed from the Sweep* entry points, so the shard
	// count here and the per-point worker split in pointConfig agree.
	shards := cfg.PointWorkers
	errs := make([]error, len(pts))
	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	pointCh := make(chan GridPoint)
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func() {
			defer wg.Done()
			for pt := range pointCh {
				r, err := run(cancelCtx, pt)
				if err != nil {
					errs[pt.Index] = err
					cancel()
					continue
				}
				out[pt.Index] = r
			}
		}()
	}
feed:
	for _, pt := range pending {
		select {
		case pointCh <- pt:
		case <-cancelCtx.Done():
			break feed
		}
	}
	close(pointCh)
	wg.Wait()

	// First error in Points() order. A genuine point failure cancels the
	// shared context, making concurrently running EARLIER points fail with a
	// cancellation error; unless the caller's own context was cancelled,
	// skip that fallout and surface the originating error instead.
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if fallback == nil {
			fallback = err
		}
		if ctx.Err() != nil || !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if fallback != nil {
		return nil, fallback
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: sweep cancelled: %w", err)
	}
	return out, nil
}

// PointSeed returns the deterministic Monte Carlo base seed of grid point pt
// under this sweep configuration. The seed is a function of the point's
// parameters, not its grid index, so extending any grid axis leaves the
// seeds — and hence the published estimates — of all existing points intact.
func (c SweepConfig) PointSeed(pt GridPoint) uint64 {
	s := rng.StreamSeed(c.Seed, uint64(int64(pt.K)))
	s = rng.StreamSeed(s, uint64(int64(pt.Q)))
	s = rng.StreamSeed(s, math.Float64bits(pt.P))
	return rng.StreamSeed(s, math.Float64bits(pt.X))
}

// ProportionResult is one proportion-valued sweep measurement.
type ProportionResult struct {
	Point GridPoint
	Value stats.Proportion
}

// MeanResult is one mean-valued sweep measurement.
type MeanResult struct {
	Point GridPoint
	Value *stats.Summary
}

// SweepProportion estimates a success proportion at every grid point. build
// is called once per point, on the goroutine that will run the point's
// trials, and returns the trial to run there (typically closing over a
// sampler or wsn.DeployerPool for that point's parameters). With
// cfg.PointWorkers = 0 points run sequentially and trials within a point run
// across the worker pool; with PointWorkers > 0 grid points are sharded
// across a pool of long-lived workers (see SweepConfig.PointWorkers) and the
// estimates are bit-identical to the sequential run.
func SweepProportion(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (montecarlo.Trial, error)) ([]ProportionResult, error) {
	cfg = cfg.clampShards(grid)
	return runPoints(ctx, grid, cfg, proportionCodec(),
		func(ctx context.Context, pt GridPoint) (ProportionResult, error) {
			trial, err := build(pt)
			if err != nil {
				return ProportionResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			est, err := montecarlo.EstimateProportion(ctx, cfg.pointConfig(pt), trial)
			if err != nil {
				return ProportionResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			return ProportionResult{Point: pt, Value: est}, nil
		})
}

// MeanVecResult is one multi-statistic sweep measurement: Values[i] is the
// Summary of the i-th component returned by the point's SampleVec.
type MeanVecResult struct {
	Point  GridPoint
	Values []*stats.Summary
}

// SweepMeanVec estimates several mean-valued statistics per grid point from
// one set of samples: the point's SampleVec returns dims observations per
// trial, so paired statistics (e.g. two properties of the same deployed
// topology) never pay the sampling cost twice.
func SweepMeanVec(ctx context.Context, grid Grid, cfg SweepConfig, dims int,
	build func(pt GridPoint) (montecarlo.SampleVec, error)) ([]MeanVecResult, error) {
	cfg = cfg.clampShards(grid)
	return runPoints(ctx, grid, cfg, meanVecCodec(dims),
		func(ctx context.Context, pt GridPoint) (MeanVecResult, error) {
			sample, err := build(pt)
			if err != nil {
				return MeanVecResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			sums, err := montecarlo.EstimateMeanVec(ctx, cfg.pointConfig(pt), dims, sample)
			if err != nil {
				return MeanVecResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			return MeanVecResult{Point: pt, Values: sums}, nil
		})
}

// SweepMean estimates a mean-valued statistic at every grid point, with the
// same seeding discipline as SweepProportion: two sweeps with equal Seed and
// grids observe identical per-trial randomness point for point, so paired
// statistics are measured on identical samples.
func SweepMean(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (montecarlo.Sample, error)) ([]MeanResult, error) {
	cfg = cfg.clampShards(grid)
	return runPoints(ctx, grid, cfg, meanCodec(),
		func(ctx context.Context, pt GridPoint) (MeanResult, error) {
			sample, err := build(pt)
			if err != nil {
				return MeanResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			sum, err := montecarlo.EstimateMean(ctx, cfg.pointConfig(pt), sample)
			if err != nil {
				return MeanResult{}, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
			}
			return MeanResult{Point: pt, Value: sum}, nil
		})
}
