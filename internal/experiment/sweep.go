package experiment

// Sweep runs a (K, q, p[, x]) parameter grid through the Monte Carlo engine
// with per-point deterministic seeding: every grid point gets its own base
// seed derived from (Seed, K, q, p, x) via chained rng.StreamSeed mixing —
// the point's parameters, not its grid position — so any point of any sweep
// can be reproduced in isolation and adding points to one axis never
// perturbs the other points' results for the same base seed.

import (
	"context"
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

// Grid is a cartesian parameter grid over the model axes the paper sweeps:
// key ring size K, overlap requirement q, and channel-on probability p. The
// optional auxiliary axis X carries experiment-specific values (capture
// counts, disk radii); leave it nil for a single zero.
type Grid struct {
	Ks []int
	Qs []int
	Ps []float64
	Xs []float64
}

// GridPoint is one grid point. Index is its position in Points() order —
// presentation metadata only; per-point seeds are derived from the
// parameters (K, Q, P, X), never from Index (see SweepConfig.PointSeed).
type GridPoint struct {
	Index int
	K, Q  int
	P     float64
	X     float64
}

func (g Grid) axes() (ks []int, qs []int, ps, xs []float64) {
	ks, qs, ps, xs = g.Ks, g.Qs, g.Ps, g.Xs
	if len(ks) == 0 {
		ks = []int{0}
	}
	if len(qs) == 0 {
		qs = []int{0}
	}
	if len(ps) == 0 {
		ps = []float64{0}
	}
	if len(xs) == 0 {
		xs = []float64{0}
	}
	return ks, qs, ps, xs
}

// Len returns the number of grid points. Empty axes count as one degenerate
// value, so a grid used over fewer than four axes still enumerates.
func (g Grid) Len() int {
	ks, qs, ps, xs := g.axes()
	return len(ks) * len(qs) * len(ps) * len(xs)
}

// Points enumerates the grid in row-major order (K outermost, then q, p, X).
func (g Grid) Points() []GridPoint {
	ks, qs, ps, xs := g.axes()
	out := make([]GridPoint, 0, g.Len())
	for _, k := range ks {
		for _, q := range qs {
			for _, p := range ps {
				for _, x := range xs {
					out = append(out, GridPoint{Index: len(out), K: k, Q: q, P: p, X: x})
				}
			}
		}
	}
	return out
}

// SweepConfig controls one sweep run.
type SweepConfig struct {
	// Trials is the number of Monte Carlo trials per grid point.
	Trials int
	// Workers bounds per-point parallelism; 0 means all CPUs.
	Workers int
	// Seed is the sweep's base seed. Every grid point runs with an
	// independent base seed mixed from (Seed, K, q, p, x); trials within a
	// point derive per-trial streams from that, as montecarlo always does.
	Seed uint64
}

// PointSeed returns the deterministic Monte Carlo base seed of grid point pt
// under this sweep configuration. The seed is a function of the point's
// parameters, not its grid index, so extending any grid axis leaves the
// seeds — and hence the published estimates — of all existing points intact.
func (c SweepConfig) PointSeed(pt GridPoint) uint64 {
	s := rng.StreamSeed(c.Seed, uint64(int64(pt.K)))
	s = rng.StreamSeed(s, uint64(int64(pt.Q)))
	s = rng.StreamSeed(s, math.Float64bits(pt.P))
	return rng.StreamSeed(s, math.Float64bits(pt.X))
}

// ProportionResult is one proportion-valued sweep measurement.
type ProportionResult struct {
	Point GridPoint
	Value stats.Proportion
}

// MeanResult is one mean-valued sweep measurement.
type MeanResult struct {
	Point GridPoint
	Value *stats.Summary
}

// SweepProportion estimates a success proportion at every grid point. build
// is called once per point and returns the trial to run there (typically
// closing over a sampler or wsn.DeployerPool for that point's parameters).
// Points run sequentially; trials within a point run across the worker pool.
func SweepProportion(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (montecarlo.Trial, error)) ([]ProportionResult, error) {
	out := make([]ProportionResult, 0, grid.Len())
	for _, pt := range grid.Points() {
		trial, err := build(pt)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		est, err := montecarlo.EstimateProportion(ctx, montecarlo.Config{
			Trials:  cfg.Trials,
			Workers: cfg.Workers,
			Seed:    cfg.PointSeed(pt),
		}, trial)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		out = append(out, ProportionResult{Point: pt, Value: est})
	}
	return out, nil
}

// MeanVecResult is one multi-statistic sweep measurement: Values[i] is the
// Summary of the i-th component returned by the point's SampleVec.
type MeanVecResult struct {
	Point  GridPoint
	Values []*stats.Summary
}

// SweepMeanVec estimates several mean-valued statistics per grid point from
// one set of samples: the point's SampleVec returns dims observations per
// trial, so paired statistics (e.g. two properties of the same deployed
// topology) never pay the sampling cost twice.
func SweepMeanVec(ctx context.Context, grid Grid, cfg SweepConfig, dims int,
	build func(pt GridPoint) (montecarlo.SampleVec, error)) ([]MeanVecResult, error) {
	out := make([]MeanVecResult, 0, grid.Len())
	for _, pt := range grid.Points() {
		sample, err := build(pt)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		sums, err := montecarlo.EstimateMeanVec(ctx, montecarlo.Config{
			Trials:  cfg.Trials,
			Workers: cfg.Workers,
			Seed:    cfg.PointSeed(pt),
		}, dims, sample)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		out = append(out, MeanVecResult{Point: pt, Values: sums})
	}
	return out, nil
}

// SweepMean estimates a mean-valued statistic at every grid point, with the
// same seeding discipline as SweepProportion: two sweeps with equal Seed and
// grids observe identical per-trial randomness point for point, so paired
// statistics are measured on identical samples.
func SweepMean(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (montecarlo.Sample, error)) ([]MeanResult, error) {
	out := make([]MeanResult, 0, grid.Len())
	for _, pt := range grid.Points() {
		sample, err := build(pt)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		sum, err := montecarlo.EstimateMean(ctx, montecarlo.Config{
			Trials:  cfg.Trials,
			Workers: cfg.Workers,
			Seed:    cfg.PointSeed(pt),
		}, sample)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep point %v: %w", pt, err)
		}
		out = append(out, MeanResult{Point: pt, Value: sum})
	}
	return out, nil
}
