package experiment

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

var journalxGrid = Grid{Ks: []int{10, 20}, Qs: []int{1}, Ps: []float64{0.25, 0.75}}

func journalxTrial(pt GridPoint) (montecarlo.Trial, error) {
	return func(trial int, r *rng.Rand) (bool, error) {
		return r.Float64() < pt.P, nil
	}, nil
}

func journalxSample(pt GridPoint) (montecarlo.Sample, error) {
	return func(trial int, r *rng.Rand) (float64, error) {
		return r.Float64() * pt.P, nil
	}, nil
}

// TestResumeRejectsKindMismatchUnderReusedLabel is the label-collision
// regression test: a journal section written by a proportion sweep under
// label L must not be silently skipped when a MEAN sweep resumes under the
// same label L — the label was reused across sweep kinds, which is a caller
// bug (the measurement changed but the label did not), and quietly
// recomputing everything defeats the label's whole purpose. The loader
// fails loudly instead, naming both kinds.
func TestResumeRejectsKindMismatchUnderReusedLabel(t *testing.T) {
	cfg := SweepConfig{Trials: 6, Seed: 3, JournalLabel: "shared label"}
	var journal bytes.Buffer
	ckCfg := cfg
	ckCfg.Checkpoint = &journal
	if _, err := SweepProportion(context.Background(), journalxGrid, ckCfg, journalxTrial); err != nil {
		t.Fatalf("checkpointed proportion sweep failed: %v", err)
	}

	meanCfg := cfg
	meanCfg.Resume = bytes.NewReader(journal.Bytes())
	_, err := SweepMean(context.Background(), journalxGrid, meanCfg, journalxSample)
	if err == nil {
		t.Fatal("mean sweep resumed from a proportion journal under the same label without error")
	}
	for _, want := range []string{"shared label", KindProportion, KindMean, "reused label"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("label-collision error %q does not mention %q", err, want)
		}
	}

	// A different label with a different kind is the legitimate
	// multi-section case and must still skip cleanly: the mean sweep runs in
	// full against a journal holding only a foreign proportion section —
	// provided its own section is also present.
	otherCfg := cfg
	otherCfg.JournalLabel = "other label"
	otherCfg.Checkpoint = &journal
	if _, err := SweepMean(context.Background(), journalxGrid, otherCfg, journalxSample); err != nil {
		t.Fatalf("mean sweep with its own label failed: %v", err)
	}
	resumed := cfg
	resumed.JournalLabel = "other label"
	resumed.Resume = bytes.NewReader(journal.Bytes())
	if _, err := SweepMean(context.Background(), journalxGrid, resumed, journalxSample); err != nil {
		t.Fatalf("multi-kind journal with distinct labels rejected: %v", err)
	}
}

// TestJournalRecordRoundTrip pins the exported marshal/parse pair against
// the lines the checkpoint writer itself produces: every line of a real
// journal parses through ParseJournalRecord, and re-marshalling the parsed
// records reproduces the original bytes.
func TestJournalRecordRoundTrip(t *testing.T) {
	cfg := SweepConfig{Trials: 5, Seed: 9, JournalLabel: "roundtrip"}
	var journal bytes.Buffer
	ckCfg := cfg
	ckCfg.Checkpoint = &journal
	if _, err := SweepProportion(context.Background(), journalxGrid, ckCfg, journalxTrial); err != nil {
		t.Fatalf("checkpointed sweep failed: %v", err)
	}

	lines := bytes.Split(bytes.TrimSuffix(journal.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 1+journalxGrid.Len() {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+journalxGrid.Len())
	}
	headers, points := 0, 0
	for i, line := range lines {
		h, p, err := ParseJournalRecord(line)
		if err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		switch {
		case h != nil:
			headers++
			if h.Kind != KindProportion || h.Label != "roundtrip" || h.Trials != 5 || h.Seed != 9 || h.Code != CodeVersion {
				t.Errorf("header fields wrong: %+v", h)
			}
			wantFP, wantSpec := cfg.JournalFingerprint(KindProportion, journalxGrid)
			if h.Fingerprint != wantFP || h.Spec != wantSpec {
				t.Errorf("header fingerprint/spec do not match JournalFingerprint")
			}
			re, err := MarshalJournalHeader(*h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, append(line, '\n')) {
				t.Errorf("header re-marshal differs:\n got %s\nwant %s", re, line)
			}
		case p != nil:
			points++
			if want := cfg.PointSeed(GridPoint{K: p.K, Q: p.Q, P: p.P, X: p.X}); p.Seed != want {
				t.Errorf("point seed %d, want %d", p.Seed, want)
			}
			re, err := MarshalJournalPoint(*p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, append(line, '\n')) {
				t.Errorf("point re-marshal differs:\n got %s\nwant %s", re, line)
			}
		}
	}
	if headers != 1 || points != journalxGrid.Len() {
		t.Fatalf("parsed %d headers and %d points, want 1 and %d", headers, points, journalxGrid.Len())
	}

	// A stream reassembled from the parsed records is a valid Resume source:
	// the sweep restores every point and recomputes none.
	var synthesized bytes.Buffer
	for _, line := range lines {
		h, p, _ := ParseJournalRecord(line)
		var out []byte
		var err error
		if h != nil {
			out, err = MarshalJournalHeader(*h)
		} else {
			out, err = MarshalJournalPoint(*p)
		}
		if err != nil {
			t.Fatal(err)
		}
		synthesized.Write(out)
	}
	clean, err := SweepProportion(context.Background(), journalxGrid, cfg, journalxTrial)
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := cfg
	resumeCfg.Resume = &synthesized
	builds := 0
	got, err := SweepProportion(context.Background(), journalxGrid, resumeCfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			builds++
			return journalxTrial(pt)
		})
	if err != nil {
		t.Fatalf("resume from synthesized journal failed: %v", err)
	}
	if builds != 0 {
		t.Errorf("synthesized resume rebuilt %d points, want 0", builds)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Error("synthesized resume differs from clean run")
	}
}

// TestPointDoneHook checks the progress hook's contract: one callback per
// grid point, fromCache=false on fresh computation, fromCache=true on
// journal restore, and concurrency-safe invocation under point sharding.
func TestPointDoneHook(t *testing.T) {
	for _, pointWorkers := range []int{0, 3} {
		var (
			mu     sync.Mutex
			fresh  int
			cached int
			seen   = map[pointKey]int{}
		)
		cfg := SweepConfig{Trials: 4, Seed: 7, PointWorkers: pointWorkers}
		cfg.PointDone = func(pt GridPoint, fromCache bool) {
			mu.Lock()
			defer mu.Unlock()
			if fromCache {
				cached++
			} else {
				fresh++
			}
			seen[keyOf(pt)]++
		}
		var journal bytes.Buffer
		ckCfg := cfg
		ckCfg.Checkpoint = &journal
		if _, err := SweepProportion(context.Background(), journalxGrid, ckCfg, journalxTrial); err != nil {
			t.Fatalf("PointWorkers=%d: sweep failed: %v", pointWorkers, err)
		}
		if fresh != journalxGrid.Len() || cached != 0 {
			t.Errorf("PointWorkers=%d: fresh=%d cached=%d, want %d/0", pointWorkers, fresh, cached, journalxGrid.Len())
		}

		resumeCfg := cfg
		resumeCfg.Resume = bytes.NewReader(journal.Bytes())
		fresh, cached = 0, 0
		if _, err := SweepProportion(context.Background(), journalxGrid, resumeCfg, journalxTrial); err != nil {
			t.Fatalf("PointWorkers=%d: resume failed: %v", pointWorkers, err)
		}
		if fresh != 0 || cached != journalxGrid.Len() {
			t.Errorf("PointWorkers=%d: resumed fresh=%d cached=%d, want 0/%d", pointWorkers, fresh, cached, journalxGrid.Len())
		}
		for key, n := range seen {
			if n != 2 { // once fresh, once cached
				t.Errorf("PointWorkers=%d: point %+v reported %d times, want 2", pointWorkers, key, n)
			}
		}
	}
}
