package experiment

// Campaign sweeps put the adversary.RunCampaign engine on the sweep fabric:
// the grid's X axis is an ATTACK BUDGET, and every point deploys fresh
// networks and runs the timeline truncated to that budget
// (adversary.Timeline.Prefix), so a row of points traces one campaign
// unfolding — "fraction still securely connected vs attack budget". The
// family inherits everything the fabric provides: parameter-derived point
// seeds (budgets can be added to the axis without perturbing existing
// points), point sharding with bit-identical results for every PointWorkers
// value, supervision, and checkpoint/resume.

import (
	"context"
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// Component indices of a campaign sweep's MeanVecResult.Values, all
// normalized to [0, 1] so they share one chart axis.
const (
	// CampaignSecureFrac is the fraction of alive sensors in the giant
	// component of the uncompromised secure subgraph — the paper's "securely
	// connected" share, after the attack.
	CampaignSecureFrac = iota
	// CampaignCompromisedFrac is the compromised fraction of external links.
	CampaignCompromisedFrac
	// CampaignAliveFrac is the surviving fraction of deployed sensors.
	CampaignAliveFrac
	// CampaignKeysFrac is the fraction of the key pool the adversary knows.
	CampaignKeysFrac
	// CampaignDims is the vector width (pass to MeanVecMeasurements).
	CampaignDims
)

// CampaignSpec configures a campaign sweep.
type CampaignSpec struct {
	// Timeline is the full campaign; each grid point runs
	// Timeline.Prefix(int(pt.X)).
	Timeline adversary.Timeline
	// Build returns the deployment configuration for a grid point (Seed is
	// ignored — trials deploy from their per-trial streams). Called once per
	// point on the goroutine that runs the point's trials; the returned
	// configuration backs a wsn.DeployerPool amortizing the point's
	// deployments.
	Build func(pt GridPoint) (wsn.Config, error)
}

// SweepCampaign measures the campaign outcome vector (CampaignSecureFrac …)
// at every grid point: each trial deploys a network from the per-trial
// stream, runs the budget-truncated timeline against it with the SAME
// stream, and reports the final step's accounting. Deployment and attack
// sharing one stream keeps every point reproducible in isolation from its
// parameter-derived seed, exactly like the other sweep families.
func SweepCampaign(ctx context.Context, grid Grid, cfg SweepConfig, spec CampaignSpec) ([]MeanVecResult, error) {
	if len(spec.Timeline) == 0 {
		return nil, fmt.Errorf("experiment: campaign sweep: empty timeline")
	}
	if spec.Build == nil {
		return nil, fmt.Errorf("experiment: campaign sweep: nil Build")
	}
	return SweepMeanVec(ctx, grid, cfg, CampaignDims,
		func(pt GridPoint) (montecarlo.SampleVec, error) {
			wcfg, err := spec.Build(pt)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(wcfg)
			if err != nil {
				return nil, err
			}
			sensors := float64(wcfg.Sensors)
			pool := float64(wcfg.Scheme.PoolSize())
			prefix := spec.Timeline.Prefix(int(pt.X))
			return func(trial int, r *rng.Rand) ([]float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return nil, err
				}
				res, err := adversary.RunCampaign(net, r, prefix)
				if err != nil {
					return nil, err
				}
				final := res.Final()
				return []float64{
					CampaignSecureFrac:      final.SecureFraction,
					CampaignCompromisedFrac: final.Fraction(),
					CampaignAliveFrac:       float64(final.Alive) / sensors,
					CampaignKeysFrac:        float64(final.KeysLearned) / pool,
				}, nil
			}, nil
		})
}
