package experiment

// The exported journal surface: everything an external orchestrator needs to
// treat checkpoint journals as a content-addressed result cache without
// knowing the line format. The sweep server (internal/sweepserve) is the
// primary consumer — it fingerprints sweeps with JournalFingerprint to
// coalesce duplicate jobs, synthesizes Resume streams from cached points
// with MarshalJournalHeader/MarshalJournalPoint, and ingests freshly
// checkpointed points by feeding each journal line through
// ParseJournalRecord. The types mirror the internal record structs exactly,
// so a stream assembled from Marshal* calls is accepted by SweepConfig.Resume
// and a line written by SweepConfig.Checkpoint parses back loss-free.

import (
	"encoding/json"
	"fmt"
)

// Sweep kind tags as they appear in journal fingerprints and section
// headers: the codec identity of each sweep family. SweepProportion and
// everything built on it (CrossSweep, SweepKConnectivity, SweepConnectivity,
// SweepMinDegree, the kstar/design validations) journal as KindProportion;
// SweepMean as KindMean; SweepMeanVec and SweepCampaign as
// KindMeanVec(dims).
const (
	KindProportion = "proportion"
	KindMean       = "mean"
)

// KindMeanVec returns the journal kind of a dims-component SweepMeanVec (the
// width folds into the kind, so a journal only resumes a sweep measuring the
// same number of components).
func KindMeanVec(dims int) string {
	return fmt.Sprintf("meanvec/%d", dims)
}

// JournalFingerprint returns the fingerprint and its human-readable spec
// preimage binding a journal section to one sweep identity: code version,
// kind, JournalLabel, trial budget, base seed, and the exact grid axis
// values. Worker counts are excluded by design — results are bit-identical
// across parallelism settings. Two sweeps share results exactly when their
// fingerprints match, which makes the fingerprint the dedupe key for
// job-level coalescing.
func (c SweepConfig) JournalFingerprint(kind string, grid Grid) (fingerprint, spec string) {
	return c.journalFingerprint(kind, grid)
}

// JournalHeaderInfo is the exported view of one journal section header.
type JournalHeaderInfo struct {
	// Fingerprint binds the section's points to one sweep identity; Spec is
	// its human-readable preimage.
	Fingerprint string
	Spec        string
	// Code, Kind, Label, Trials and Seed repeat the spec's components
	// structurally. Sections written before headers carried these fields
	// leave them zero.
	Code   string
	Kind   string
	Label  string
	Trials int
	Seed   uint64
}

// JournalPointInfo is the exported view of one journaled grid point: its
// parameters (grid indices are re-derived on resume), the parameter-derived
// seed it ran under, and the codec payload.
type JournalPointInfo struct {
	K, Q  int
	P, X  float64
	Seed  uint64
	Value json.RawMessage
}

// ParseJournalRecord parses one journal line into a header or a point record
// (exactly one of the returns is non-nil on success). Callers scanning whole
// files own the framing policy — in particular, tolerating the truncated
// final line a kill may leave behind.
func ParseJournalRecord(line []byte) (*JournalHeaderInfo, *JournalPointInfo, error) {
	var rec journalRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return nil, nil, fmt.Errorf("experiment: journal record does not parse: %w", err)
	}
	switch {
	case rec.Header != nil:
		return &JournalHeaderInfo{
			Fingerprint: rec.Header.Fingerprint,
			Spec:        rec.Header.Spec,
			Code:        rec.Header.Code,
			Kind:        rec.Header.Kind,
			Label:       rec.Header.Label,
			Trials:      rec.Header.Trials,
			Seed:        rec.Header.Seed,
		}, nil, nil
	case rec.Point != nil:
		return nil, &JournalPointInfo{
			K: rec.Point.K, Q: rec.Point.Q, P: rec.Point.P, X: rec.Point.X,
			Seed: rec.Point.Seed, Value: rec.Point.Value,
		}, nil
	}
	return nil, nil, fmt.Errorf("experiment: journal record holds neither header nor point")
}

// MarshalJournalHeader renders a section header as one journal line
// (trailing newline included), byte-compatible with the lines
// SweepConfig.Checkpoint writes.
func MarshalJournalHeader(h JournalHeaderInfo) ([]byte, error) {
	data, err := json.Marshal(journalRecord{Header: &journalHeader{
		Fingerprint: h.Fingerprint,
		Spec:        h.Spec,
		Code:        h.Code,
		Kind:        h.Kind,
		Label:       h.Label,
		Trials:      h.Trials,
		Seed:        h.Seed,
	}})
	if err != nil {
		return nil, fmt.Errorf("experiment: encoding journal header: %w", err)
	}
	return append(data, '\n'), nil
}

// MarshalJournalPoint renders a point record as one journal line (trailing
// newline included), byte-compatible with the lines SweepConfig.Checkpoint
// writes.
func MarshalJournalPoint(p JournalPointInfo) ([]byte, error) {
	data, err := json.Marshal(journalRecord{Point: &journalPoint{
		K: p.K, Q: p.Q, P: p.P, X: p.X, Seed: p.Seed, Value: p.Value,
	}})
	if err != nil {
		return nil, fmt.Errorf("experiment: encoding journal point: %w", err)
	}
	return append(data, '\n'), nil
}
