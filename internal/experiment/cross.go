package experiment

// The cross-sweep layer: phase-transition studies that drive a CHANNEL
// parameter (disk radius, on/off probability) or the connectivity level k on
// the Grid's Xs axis, orthogonally to the scheme axes (K, q, p). The paper's
// headline comparisons have this shape — the on/off-vs-disk surface of
// Section IX sweeps radius against q-composite parameters, and the
// heterogeneous k-connectivity study (Eletreby–Yağan, arXiv:1604.00460 §IV;
// Zhao–Yağan–Gligor, arXiv:1206.1531) sweeps k against ring sizes.
//
// A CrossSpec declares what the Xs axis means via explicit bindings, so a
// grid axis can never silently drive two model quantities at once: binding
// the axis to both k and a radius (or binding a channel parameter while the
// build callback also supplies a channel) is a validation error, not a
// precedence rule. Every trial deploys a full network through a per-point
// wsn.DeployerPool, so cross sweeps run on the zero-allocation trial loop,
// shard bit-identically under SweepConfig.PointWorkers, and derive per-point
// seeds from parameters like every other sweep.

import (
	"context"
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// XBinding names the model quantity a cross sweep's Xs axis drives.
type XBinding uint8

const (
	// BindK binds the Xs axis to the connectivity level k: values must be
	// positive integers stored exactly (KLevels produces them) and each
	// point tests wsn.Network.IsKConnected at its own level.
	BindK XBinding = iota + 1
	// BindDiskRadius binds the Xs axis to the disk-channel radius: each
	// point deploys under channel.Disk{Radius: pt.X, Torus: spec.Torus}.
	BindDiskRadius
	// BindChannelOn binds the Xs axis to an on/off channel probability:
	// each point deploys under channel.OnOff{P: pt.X}. This frees the Ps
	// axis to parameterise the scheme side (or stay degenerate) while the
	// channel sweeps independently.
	BindChannelOn
)

// String implements fmt.Stringer so binding conflicts read clearly.
func (b XBinding) String() string {
	switch b {
	case BindK:
		return "connectivity level k"
	case BindDiskRadius:
		return "disk radius"
	case BindChannelOn:
		return "channel-on probability"
	}
	return fmt.Sprintf("XBinding(%d)", uint8(b))
}

// CrossSpec configures one cross sweep.
type CrossSpec struct {
	// Bindings declare what the Xs axis drives — at most one binding. An
	// empty list leaves the axis free (experiment-defined, the historical
	// Grid contract); listing two quantities is a validation error because
	// one grid axis cannot drive both.
	Bindings []XBinding
	// Torus selects wraparound disk distances under BindDiskRadius, making
	// the marginal pair probability exactly π·r² (the comparison knob
	// against on/off channels).
	Torus bool
	// K is the fixed connectivity level tested at every point when the Xs
	// axis does not carry it; 0 means plain connectivity (k = 1). Setting K
	// together with BindK is a validation error — the level would be bound
	// twice.
	K int
	// Build returns the deployment of a grid point: sensor count and scheme
	// always, and the channel model only when no channel binding is active
	// (a bound channel is derived from pt.X and must not also come from
	// Build).
	Build func(pt GridPoint) (wsn.Config, error)
}

// Validate checks the spec against the grid it will sweep: exactly-once
// axis bindings, a consistent fixed level, and Xs values that are legal for
// the bound quantity — eagerly, so misconfigured sweeps fail before any
// deployment work.
func (s CrossSpec) Validate(grid Grid) error {
	if s.Build == nil {
		return fmt.Errorf("experiment: cross sweep needs a Build callback")
	}
	if s.K < 0 {
		return fmt.Errorf("experiment: cross sweep connectivity level K = %d must be ≥ 0", s.K)
	}
	if len(s.Bindings) > 1 {
		return fmt.Errorf("experiment: grid Xs axis bound twice (%v and %v): one axis cannot drive two model quantities — split them across sweeps or axes",
			s.Bindings[0], s.Bindings[1])
	}
	for _, b := range s.Bindings {
		switch b {
		case BindK:
			if s.K != 0 {
				return fmt.Errorf("experiment: connectivity level bound twice: CrossSpec.K = %d and the Xs axis both carry k", s.K)
			}
			for _, x := range grid.Xs {
				if _, err := KOf(GridPoint{X: x}); err != nil {
					return err
				}
			}
		case BindDiskRadius:
			for _, x := range grid.Xs {
				if err := (channel.Disk{Radius: x, Torus: s.Torus}).Validate(); err != nil {
					return fmt.Errorf("experiment: Xs value %v is not a disk radius: %w", x, err)
				}
			}
		case BindChannelOn:
			for _, x := range grid.Xs {
				if err := (channel.OnOff{P: x}).Validate(); err != nil {
					return fmt.Errorf("experiment: Xs value %v is not an on probability: %w", x, err)
				}
			}
		default:
			return fmt.Errorf("experiment: unknown Xs axis binding %v", b)
		}
	}
	return nil
}

// bindsChannel reports whether the Xs axis carries a channel parameter.
func (s CrossSpec) bindsChannel() bool {
	for _, b := range s.Bindings {
		if b == BindDiskRadius || b == BindChannelOn {
			return true
		}
	}
	return false
}

// PointDeployment resolves the wsn.Config and connectivity level of one grid
// point under the spec's bindings. Exported so orchestration layers (the
// sweep server) can reproduce CrossSweep's per-point deployment exactly
// while owning the trial loop themselves.
func (s CrossSpec) PointDeployment(pt GridPoint) (wsn.Config, int, error) {
	return s.pointDeployment(pt)
}

// pointDeployment resolves the wsn.Config and connectivity level of one grid
// point under the spec's bindings.
func (s CrossSpec) pointDeployment(pt GridPoint) (wsn.Config, int, error) {
	k := s.K
	if k == 0 {
		k = 1
	}
	cfg, err := s.Build(pt)
	if err != nil {
		return wsn.Config{}, 0, err
	}
	for _, b := range s.Bindings {
		switch b {
		case BindK:
			if k, err = KOf(pt); err != nil {
				return wsn.Config{}, 0, err
			}
		case BindDiskRadius:
			if cfg.Channel != nil {
				return wsn.Config{}, 0, fmt.Errorf("experiment: point %v: channel bound twice: build supplied %q while the Xs axis carries the disk radius", pt, cfg.Channel.Name())
			}
			cfg.Channel = channel.Disk{Radius: pt.X, Torus: s.Torus}
		case BindChannelOn:
			if cfg.Channel != nil {
				return wsn.Config{}, 0, fmt.Errorf("experiment: point %v: channel bound twice: build supplied %q while the Xs axis carries the on probability", pt, cfg.Channel.Name())
			}
			cfg.Channel = channel.OnOff{P: pt.X}
		}
	}
	return cfg, k, nil
}

// CrossSweep estimates P[k-connected] at every grid point with the Xs axis
// interpreted per spec. Each point builds its deployment from the scheme
// axes (and the bound quantity), runs its trials through a dedicated
// wsn.DeployerPool, and tests connectivity at the point's level — so the
// sweep composes with PointWorkers sharding, parameter-derived seeds, and
// the allocation-free trial loop like every SweepProportion workload.
//
// Points whose resolved level is k = 1 are union-find-answerable and
// auto-select the streaming fast path (wsn.Deployer.DeployConnectivityRand:
// no CSR, early exit on the connected plateau); k ≥ 2 points deploy full
// networks and run the exact k-connectivity decision. The verdicts are
// identical either way, so mixed-level sweeps (e.g. a BindK grid with
// levels {1, 2, 3}) stay bit-for-bit reproducible.
func CrossSweep(ctx context.Context, grid Grid, cfg SweepConfig, spec CrossSpec) ([]ProportionResult, error) {
	if err := spec.Validate(grid); err != nil {
		return nil, err
	}
	return SweepProportion(ctx, grid, cfg,
		func(pt GridPoint) (montecarlo.Trial, error) {
			deployCfg, k, err := spec.pointDeployment(pt)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(deployCfg)
			if err != nil {
				return nil, err
			}
			if k == 1 {
				n := deployCfg.Sensors
				return func(trial int, r *rng.Rand) (bool, error) {
					d := dp.Get()
					defer dp.Put(d)
					st, err := d.DeployConnectivityRand(r)
					if err != nil {
						return false, err
					}
					// IsKConnected(1) is false for n ≤ 1 (a graph needs more
					// than k vertices); ConnStats.Connected follows the
					// IsConnected convention (n ≤ 1 connected). Preserve the
					// k-connectivity convention exactly.
					return st.Connected && n > 1, nil
				}, nil
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return false, err
				}
				return net.IsKConnected(k)
			}, nil
		})
}
