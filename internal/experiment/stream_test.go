package experiment

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// streamTestGrid spans the connectivity transition at n = 60 so both
// verdicts occur, and pointWorkerCounts are the sharding levels every
// streaming-vs-CSR comparison must agree across.
var (
	streamTestGrid = Grid{Ks: []int{14, 20, 28}, Qs: []int{1, 2}, Ps: []float64{0.5}}
	streamTestCfg  = SweepConfig{Trials: 24, Workers: 2, Seed: 5}
)

func pointWorkerCounts() []int {
	return []int{0, 1, 3, runtime.NumCPU()}
}

// streamTestBuild is the shared deployment: n = 60 sensors, P = 500 keys.
func streamTestBuild(pt GridPoint) (wsn.Config, error) {
	scheme, err := keys.NewQComposite(500, pt.K, pt.Q)
	if err != nil {
		return wsn.Config{}, err
	}
	return wsn.Config{Sensors: 60, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
}

// csrTrial builds the reference trial for one grid point: a full CSR
// deployment measured by fn.
func csrTrial(pt GridPoint, fn func(net *wsn.Network) (bool, error)) (montecarlo.Trial, error) {
	cfg, err := streamTestBuild(pt)
	if err != nil {
		return nil, err
	}
	dp, err := wsn.NewDeployerPool(cfg)
	if err != nil {
		return nil, err
	}
	return func(trial int, r *rng.Rand) (bool, error) {
		d := dp.Get()
		defer dp.Put(d)
		net, err := d.DeployRand(r)
		if err != nil {
			return false, err
		}
		return fn(net)
	}, nil
}

func requireSameProportions(t *testing.T, label string, want, got []ProportionResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Point != got[i].Point || want[i].Value != got[i].Value {
			t.Fatalf("%s: point %d = {%+v %+v}, want {%+v %+v}",
				label, i, got[i].Point, got[i].Value, want[i].Point, want[i].Value)
		}
	}
}

// TestSweepConnectivityMatchesCSRSweep pins the sweep-level half of the
// streaming equivalence (satellite 1): SweepConnectivity must reproduce a
// CSR IsConnected SweepProportion bit for bit — same points, same
// success counts — at every PointWorkers sharding level.
func TestSweepConnectivityMatchesCSRSweep(t *testing.T) {
	ctx := context.Background()
	for _, pw := range pointWorkerCounts() {
		cfg := streamTestCfg
		cfg.PointWorkers = pw
		want, err := SweepProportion(ctx, streamTestGrid, cfg,
			func(pt GridPoint) (montecarlo.Trial, error) {
				return csrTrial(pt, func(net *wsn.Network) (bool, error) {
					return net.IsConnected()
				})
			})
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the grid genuinely produces both verdicts.
		if pw == 0 {
			lo, hi := 1.0, 0.0
			for _, res := range want {
				est := res.Value.Estimate()
				if est < lo {
					lo = est
				}
				if est > hi {
					hi = est
				}
			}
			if lo > 0.5 || hi < 0.5 {
				t.Fatalf("test grid does not span the transition: %v … %v", lo, hi)
			}
		}
		got, err := SweepConnectivity(ctx, streamTestGrid, cfg, streamTestBuild)
		if err != nil {
			t.Fatal(err)
		}
		requireSameProportions(t, fmt.Sprintf("PointWorkers=%d", pw), want, got)
	}
}

// TestSweepMinDegreeMatchesCSRSweep pins the sweep-level half of the
// streaming degree equivalence: SweepMinDegree must reproduce a CSR
// MinDegree() >= k SweepProportion bit for bit — same points, same success
// counts — at every PointWorkers sharding level and for several degree
// levels. It also pins the coupling direction the paper's sandwich argument
// uses: per point, k-connected implies min degree ≥ k, so under the shared
// parameter-derived seeds (identical topologies trial for trial) the
// success counts must be ordered.
func TestSweepMinDegreeMatchesCSRSweep(t *testing.T) {
	ctx := context.Background()
	for _, k := range []int{1, 2} {
		for _, pw := range pointWorkerCounts() {
			cfg := streamTestCfg
			cfg.PointWorkers = pw
			want, err := SweepProportion(ctx, streamTestGrid, cfg,
				func(pt GridPoint) (montecarlo.Trial, error) {
					return csrTrial(pt, func(net *wsn.Network) (bool, error) {
						return net.FullSecureTopology().MinDegree() >= k, nil
					})
				})
			if err != nil {
				t.Fatal(err)
			}
			got, err := SweepMinDegree(ctx, streamTestGrid, cfg, k, streamTestBuild)
			if err != nil {
				t.Fatal(err)
			}
			requireSameProportions(t, fmt.Sprintf("k=%d PointWorkers=%d", k, pw), want, got)
			kconn, err := SweepProportion(ctx, streamTestGrid, cfg,
				func(pt GridPoint) (montecarlo.Trial, error) {
					return csrTrial(pt, func(net *wsn.Network) (bool, error) {
						return net.IsKConnected(k)
					})
				})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if kconn[i].Value.Successes > got[i].Value.Successes {
					t.Fatalf("k=%d point %+v: %d k-connected trials but only %d with min degree >= k",
						k, got[i].Point, kconn[i].Value.Successes, got[i].Value.Successes)
				}
			}
		}
	}
	if _, err := SweepMinDegree(ctx, streamTestGrid, streamTestCfg, -1, streamTestBuild); err == nil {
		t.Error("negative k: want error")
	}
}

// TestSweepConnStatsMatchesCSRSweep compares SweepConnStats against a CSR
// SweepMeanVec measuring the same four statistics on full deployments: every
// summary (count, mean, min, max) must agree exactly at every sharding
// level.
func TestSweepConnStatsMatchesCSRSweep(t *testing.T) {
	ctx := context.Background()
	stats := []ConnStat{ConnStatConnected, ConnStatGiantFraction, ConnStatIsolatedFraction, ConnStatComponents}
	for _, pw := range pointWorkerCounts() {
		cfg := streamTestCfg
		cfg.PointWorkers = pw
		want, err := SweepMeanVec(ctx, streamTestGrid, cfg, len(stats),
			func(pt GridPoint) (montecarlo.SampleVec, error) {
				deployCfg, err := streamTestBuild(pt)
				if err != nil {
					return nil, err
				}
				dp, err := wsn.NewDeployerPool(deployCfg)
				if err != nil {
					return nil, err
				}
				n := deployCfg.Sensors
				return func(trial int, r *rng.Rand) ([]float64, error) {
					d := dp.Get()
					defer dp.Put(d)
					net, err := d.DeployRand(r)
					if err != nil {
						return nil, err
					}
					topo := net.FullSecureTopology()
					connected, err := net.IsConnected()
					if err != nil {
						return nil, err
					}
					_, comps := graphalgo.Components(topo)
					vals := make([]float64, 4)
					if connected {
						vals[0] = 1
					}
					vals[1] = float64(graphalgo.LargestComponentSize(topo)) / float64(n)
					vals[2] = float64(topo.DegreeHistogram()[0]) / float64(n)
					vals[3] = float64(comps)
					return vals, nil
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SweepConnStats(ctx, streamTestGrid, cfg, stats, streamTestBuild)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if want[i].Point != got[i].Point {
				t.Fatalf("PointWorkers=%d: point %d metadata differs", pw, i)
			}
			for j := range stats {
				w, g := want[i].Values[j], got[i].Values[j]
				if w.N() != g.N() || w.Mean() != g.Mean() || w.Min() != g.Min() || w.Max() != g.Max() {
					t.Fatalf("PointWorkers=%d: point %d stat %v: summary (n=%d mean=%v min=%v max=%v), want (n=%d mean=%v min=%v max=%v)",
						pw, i, stats[j], g.N(), g.Mean(), g.Min(), g.Max(), w.N(), w.Mean(), w.Min(), w.Max())
				}
			}
		}
	}
}

// TestCrossSweepK1MatchesCSRSweep pins the CrossSweep fast path: a k = 1
// cross sweep (which auto-selects streaming) must match a CSR
// IsKConnected(1) sweep exactly, at every sharding level.
func TestCrossSweepK1MatchesCSRSweep(t *testing.T) {
	ctx := context.Background()
	for _, pw := range pointWorkerCounts() {
		cfg := streamTestCfg
		cfg.PointWorkers = pw
		want, err := SweepProportion(ctx, streamTestGrid, cfg,
			func(pt GridPoint) (montecarlo.Trial, error) {
				return csrTrial(pt, func(net *wsn.Network) (bool, error) {
					return net.IsKConnected(1)
				})
			})
		if err != nil {
			t.Fatal(err)
		}
		got, err := CrossSweep(ctx, streamTestGrid, cfg, CrossSpec{K: 1, Build: streamTestBuild})
		if err != nil {
			t.Fatal(err)
		}
		requireSameProportions(t, fmt.Sprintf("PointWorkers=%d", pw), want, got)
	}
}

// TestSweepConnStatsValidation covers the eager statistic validation.
func TestSweepConnStatsValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := SweepConnStats(ctx, streamTestGrid, streamTestCfg, nil, streamTestBuild); err == nil {
		t.Error("empty statistic list: want error")
	}
	if _, err := SweepConnStats(ctx, streamTestGrid, streamTestCfg, []ConnStat{ConnStat(99)}, streamTestBuild); err == nil {
		t.Error("unknown statistic: want error")
	}
}
