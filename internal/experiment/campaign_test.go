package experiment

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func campaignTestSpec(t *testing.T, spec string) CampaignSpec {
	t.Helper()
	tl, err := adversary.ParseTimeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	return CampaignSpec{
		Timeline: tl,
		Build: func(pt GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(300, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: 60, Scheme: scheme, Channel: channel.AlwaysOn{}}, nil
		},
	}
}

var campaignTestGrid = Grid{Ks: []int{25}, Qs: []int{1, 2}, Xs: []float64{0, 5, 15, 30}}

func TestSweepCampaignBasic(t *testing.T) {
	spec := campaignTestSpec(t, "capture:20,fail:10")
	cfg := SweepConfig{Trials: 12, Workers: 2, Seed: 23}
	results, err := SweepCampaign(context.Background(), campaignTestGrid, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != campaignTestGrid.Len() {
		t.Fatalf("%d results for %d points", len(results), campaignTestGrid.Len())
	}
	for _, res := range results {
		if len(res.Values) != CampaignDims {
			t.Fatalf("point %v: %d components, want %d", res.Point, len(res.Values), CampaignDims)
		}
		for dim, sum := range res.Values {
			if m := sum.Mean(); m < 0 || m > 1 {
				t.Errorf("point %v dim %d: mean %v outside [0,1]", res.Point, dim, m)
			}
		}
		if res.Point.X == 0 {
			// Budget 0 is the untouched network: nothing compromised, nothing
			// learned, everyone alive.
			if res.Values[CampaignCompromisedFrac].Mean() != 0 ||
				res.Values[CampaignKeysFrac].Mean() != 0 ||
				res.Values[CampaignAliveFrac].Mean() != 1 {
				t.Errorf("point %v: budget 0 shows attack progress", res.Point)
			}
		}
	}
	// The attack bites: at full budget the secure fraction must be below the
	// baseline for the same (K, q).
	byQX := map[[2]float64]float64{}
	for _, res := range results {
		byQX[[2]float64{float64(res.Point.Q), res.Point.X}] = res.Values[CampaignSecureFrac].Mean()
	}
	for _, q := range campaignTestGrid.Qs {
		base, hit := byQX[[2]float64{float64(q), 0}], byQX[[2]float64{float64(q), 30}]
		if hit >= base {
			t.Errorf("q=%d: secure fraction did not drop under full budget: %v → %v", q, base, hit)
		}
	}
}

// TestSweepCampaignShardingBitIdentical pins the campaign family to the
// fabric invariant: identical results for every PointWorkers value.
func TestSweepCampaignShardingBitIdentical(t *testing.T) {
	spec := campaignTestSpec(t, "capture:10,jam:8,fail:6,revoke:10")
	cfg := SweepConfig{Trials: 10, Workers: 2, Seed: 29}
	baseline, err := SweepCampaign(context.Background(), campaignTestGrid, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, pw := range shardCounts()[1:] {
		t.Run(fmt.Sprintf("pointWorkers=%d", pw), func(t *testing.T) {
			shardedCfg := cfg
			shardedCfg.PointWorkers = pw
			got, err := SweepCampaign(context.Background(), campaignTestGrid, shardedCfg, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("sharded campaign sweep differs from sequential run")
			}
		})
	}
}

// TestSweepCampaignKillResumeBitIdentical: a campaign sweep killed mid-grid
// and resumed from its journal matches the uninterrupted run bit for bit.
func TestSweepCampaignKillResumeBitIdentical(t *testing.T) {
	spec := campaignTestSpec(t, "capture:15,fail:10")
	cfg := SweepConfig{Trials: 10, Workers: 2, PointWorkers: 2, Seed: 31, JournalLabel: "campaign resume test"}
	clean, err := SweepCampaign(context.Background(), campaignTestGrid, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	journal := &killingJournal{after: 3, cancel: cancel}
	killCfg := cfg
	killCfg.Checkpoint = journal
	if _, err := SweepCampaign(ctx, campaignTestGrid, killCfg, spec); err == nil {
		t.Fatal("killed campaign sweep unexpectedly succeeded")
	}
	if journal.points >= campaignTestGrid.Len() {
		t.Fatalf("kill persisted all %d points", campaignTestGrid.Len())
	}

	resumeCfg := cfg
	resumeCfg.Resume = bytes.NewReader(journal.buf.Bytes())
	got, err := SweepCampaign(context.Background(), campaignTestGrid, resumeCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatal("resumed campaign sweep differs from clean run")
	}
}

func TestSweepCampaignValidation(t *testing.T) {
	cfg := SweepConfig{Trials: 2, Seed: 1}
	spec := campaignTestSpec(t, "capture:5")
	if _, err := SweepCampaign(context.Background(), campaignTestGrid, cfg,
		CampaignSpec{Build: spec.Build}); err == nil || !strings.Contains(err.Error(), "timeline") {
		t.Errorf("empty timeline accepted: %v", err)
	}
	if _, err := SweepCampaign(context.Background(), campaignTestGrid, cfg,
		CampaignSpec{Timeline: spec.Timeline}); err == nil || !strings.Contains(err.Error(), "Build") {
		t.Errorf("nil Build accepted: %v", err)
	}
	badSpec := spec
	badSpec.Build = func(pt GridPoint) (wsn.Config, error) {
		return wsn.Config{}, fmt.Errorf("no config for %v", pt)
	}
	if _, err := SweepCampaign(context.Background(), campaignTestGrid, cfg, badSpec); err == nil {
		t.Error("failing Build accepted")
	}
}
