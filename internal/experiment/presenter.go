package experiment

// The sweep presenter turns per-grid-point measurements into the three
// presentation artifacts every cmd tool wants — named Series for charts and
// CSV, and a pivoted aligned Table — replacing the hand-rolled
// rows-map/series assembly each tool used to carry.

import (
	"fmt"
	"os"
)

// Measurement is one presented sweep value: the grid point it came from,
// the curve (series name and table column) it belongs to, its x coordinate,
// and the value with an optional [Lo, Hi] confidence band (set Lo = Hi = Y
// when no band applies).
type Measurement struct {
	Point  GridPoint
	Curve  string
	X, Y   float64
	Lo, Hi float64
}

// ProportionMeasurements adapts SweepProportion results into measurements:
// x positions the point on its series, curve names the series/column, and
// the confidence band is the Wilson interval at critical value z (z ≤ 0
// omits the band).
func ProportionMeasurements(results []ProportionResult, z float64,
	x func(GridPoint) float64, curve func(GridPoint) string) []Measurement {
	ms := make([]Measurement, len(results))
	for i, res := range results {
		m := Measurement{
			Point: res.Point,
			Curve: curve(res.Point),
			X:     x(res.Point),
			Y:     res.Value.Estimate(),
		}
		m.Lo, m.Hi = m.Y, m.Y
		if z > 0 {
			m.Lo, m.Hi = res.Value.WilsonInterval(z)
		}
		ms[i] = m
	}
	return ms
}

// MeanMeasurements adapts SweepMean results into measurements: x positions
// the point on its series, curve names the series/column, and the confidence
// band is mean ± z·stderr (z ≤ 0 omits it).
func MeanMeasurements(results []MeanResult, z float64,
	x func(GridPoint) float64, curve func(GridPoint) string) []Measurement {
	ms := make([]Measurement, len(results))
	for i, res := range results {
		m := Measurement{
			Point: res.Point,
			Curve: curve(res.Point),
			X:     x(res.Point),
			Y:     res.Value.Mean(),
		}
		m.Lo, m.Hi = m.Y, m.Y
		if z > 0 {
			half := z * res.Value.StdErr()
			m.Lo, m.Hi = m.Y-half, m.Y+half
		}
		ms[i] = m
	}
	return ms
}

// MeanVecMeasurements adapts one component of SweepMeanVec results into
// measurements, with a mean ± z·stderr confidence band (z ≤ 0 omits it).
func MeanVecMeasurements(results []MeanVecResult, dim int, z float64,
	x func(GridPoint) float64, curve string) []Measurement {
	ms := make([]Measurement, len(results))
	for i, res := range results {
		sum := res.Values[dim]
		m := Measurement{
			Point: res.Point,
			Curve: curve,
			X:     x(res.Point),
			Y:     sum.Mean(),
		}
		m.Lo, m.Hi = m.Y, m.Y
		if z > 0 {
			half := z * sum.StdErr()
			m.Lo, m.Hi = m.Y-half, m.Y+half
		}
		ms[i] = m
	}
	return ms
}

// PivotSpec describes how measurements become table rows.
type PivotSpec struct {
	// RowHeaders are the leading column headers (e.g. ["K"], or
	// ["K", "mean degree"]).
	RowHeaders []string
	// RowCells produces the leading cells of the row a grid point belongs
	// to. Points with equal cell tuples share a row; rows appear in
	// first-seen order.
	RowCells func(pt GridPoint) []string
	// FormatCell renders a measurement into its table cell; nil means
	// "%.3f" of Y.
	FormatCell func(m Measurement) string
}

// PresentedSweep bundles the presentation artifacts of one sweep: the
// pivoted table and the per-curve series (chart and CSV input).
type PresentedSweep struct {
	Table  *Table
	Series []Series
}

// PivotSweep assembles measurements into a PresentedSweep: series are
// grouped by curve name in first-seen order, and the table has one row per
// distinct RowCells tuple (first-seen order) with one trailing column per
// curve.
func PivotSweep(spec PivotSpec, ms []Measurement) *PresentedSweep {
	format := spec.FormatCell
	if format == nil {
		format = func(m Measurement) string { return fmt.Sprintf("%.3f", m.Y) }
	}

	curveIdx := map[string]int{}
	var curves []string
	rowIdx := map[string]int{}
	var rowLead [][]string
	type cellKey struct{ row, curve int }
	cells := map[cellKey]string{}

	ps := &PresentedSweep{}
	for _, m := range ms {
		ci, ok := curveIdx[m.Curve]
		if !ok {
			ci = len(curves)
			curveIdx[m.Curve] = ci
			curves = append(curves, m.Curve)
			ps.Series = append(ps.Series, Series{Name: m.Curve})
		}
		ps.Series[ci].AddCI(m.X, m.Y, m.Lo, m.Hi)

		lead := spec.RowCells(m.Point)
		key := fmt.Sprintf("%q", lead)
		ri, ok := rowIdx[key]
		if !ok {
			ri = len(rowLead)
			rowIdx[key] = ri
			rowLead = append(rowLead, lead)
		}
		cells[cellKey{row: ri, curve: ci}] = format(m)
	}

	columns := append(append([]string(nil), spec.RowHeaders...), curves...)
	ps.Table = NewTable(columns...)
	for ri, lead := range rowLead {
		row := append([]string(nil), lead...)
		for ci := range curves {
			row = append(row, cells[cellKey{row: ri, curve: ci}])
		}
		ps.Table.AddRow(row...)
	}
	return ps
}

// SaveSeriesCSV writes series as long-format CSV (series, x, y, lo, hi) to
// path — the shared tail of every cmd tool's -csv flag.
func SaveSeriesCSV(path string, series []Series) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: create csv: %w", err)
	}
	defer f.Close()
	if err := WriteSeriesCSV(f, series); err != nil {
		return err
	}
	return f.Close()
}

// SaveSeriesCSV writes the presented series to path.
func (ps *PresentedSweep) SaveSeriesCSV(path string) error {
	return SaveSeriesCSV(path, ps.Series)
}
