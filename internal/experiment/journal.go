package experiment

// The checkpoint journal: every completed grid point of a sweep can be
// serialized to an append-only JSON-lines log as it lands, and a later run
// of the SAME sweep (grid, trials, seed, sweep kind, code version — checked
// via a fingerprint) can load the log, skip the completed points and merge
// cached with fresh results in Points() order. Because per-point seeds
// derive from point parameters and never from scheduling (PointSeed), a
// resumed sweep is bit-identical to an uninterrupted one — a point computed
// yesterday on another worker count equals the point the clean run would
// have computed today.
//
// The format is deliberately forgiving about process death: records are
// written as single atomic lines (one Write call each, so O_APPEND files
// never interleave), duplicate point records are tolerated (first wins —
// they are bit-identical by construction), and a truncated final line (the
// record a kill interrupted mid-write) is ignored rather than rejected.
// Everything else that does not parse is corruption and fails loudly.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/stats"
)

// CodeVersion tags the simulation-semantics generation of this build. It is
// folded into every journal fingerprint, so a journal written by a build
// whose trial semantics differ (different sampling order, different
// estimators) is rejected on resume instead of silently merging
// incompatible results. Bump it whenever a change would alter the results a
// fixed (grid, config, seed) sweep produces.
const CodeVersion = "qcomposite-sweep-v1"

// journalRecord is one JSON line of a checkpoint journal: exactly one of
// the fields is set.
type journalRecord struct {
	Header *journalHeader `json:"header,omitempty"`
	Point  *journalPoint  `json:"point,omitempty"`
}

// journalHeader opens a journal (and re-opens it on every resumed append):
// the fingerprint binds all subsequent point records to one sweep identity.
// Spec is the human-readable preimage, stored for debuggability — the
// fingerprint alone decides compatibility. The structured fields repeat the
// spec's components so external orchestrators (the sweep server's shared
// result store) can index sections without parsing the preimage string;
// journals written before these fields existed simply lack them.
type journalHeader struct {
	Fingerprint string `json:"fingerprint"`
	Spec        string `json:"spec"`
	Code        string `json:"code,omitempty"`
	Kind        string `json:"kind,omitempty"`
	Label       string `json:"label,omitempty"`
	Trials      int    `json:"trials,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
}

// journalPoint is one completed grid point: its parameters (never its grid
// index — resume re-derives indices from the current grid), the
// parameter-derived seed it ran under (a cross-check against the
// fingerprint), and the sweep-variant-specific result payload.
type journalPoint struct {
	K     int             `json:"k"`
	Q     int             `json:"q"`
	P     float64         `json:"p"`
	X     float64         `json:"x"`
	Seed  uint64          `json:"seed"`
	Value json.RawMessage `json:"value"`
}

// pointKey identifies a grid point by its parameters, the same identity
// PointSeed derives seeds from.
type pointKey struct {
	K, Q int
	P, X float64
}

func keyOf(pt GridPoint) pointKey {
	return pointKey{K: pt.K, Q: pt.Q, P: pt.P, X: pt.X}
}

// journalSpec renders the canonical fingerprint preimage of one sweep: the
// code version, the sweep variant (kind), the caller's label, the trial
// budget, the base seed, and every grid axis value exactly (float bits, not
// decimal renderings). Worker counts are deliberately absent — results are
// bit-identical across Workers/PointWorkers, so a journal written under one
// parallelism setting resumes under any other.
func (c SweepConfig) journalSpec(kind string, grid Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "code=%s kind=%s label=%q trials=%d seed=%d", CodeVersion, kind, c.JournalLabel, c.Trials, c.Seed)
	ks, qs, ps, xs := grid.axes()
	fmt.Fprintf(&b, " ks=%v qs=%v ps=[", ks, qs)
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%x", math.Float64bits(p))
	}
	b.WriteString("] xs=[")
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%x", math.Float64bits(x))
	}
	b.WriteString("]")
	return b.String()
}

// journalFingerprint hashes the spec preimage into the identity every
// journal record set is bound to.
func (c SweepConfig) journalFingerprint(kind string, grid Grid) (fingerprint, spec string) {
	spec = c.journalSpec(kind, grid)
	sum := sha256.Sum256([]byte(spec))
	return fmt.Sprintf("%x", sum[:]), spec
}

// journalWriter appends records to the sweep's checkpoint writer. It is
// shared by every shard of a sharded sweep: the mutex serializes writes and
// each record goes out as ONE Write call, so an O_APPEND file receives
// whole lines even under concurrent checkpointing.
type journalWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (jw *journalWriter) writeRecord(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("experiment: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if _, err := jw.w.Write(data); err != nil {
		return fmt.Errorf("experiment: writing checkpoint journal: %w", err)
	}
	return nil
}

// writePoint checkpoints one freshly completed point.
func (jw *journalWriter) writePoint(pt GridPoint, seed uint64, value json.RawMessage) error {
	return jw.writeRecord(journalRecord{Point: &journalPoint{
		K: pt.K, Q: pt.Q, P: pt.P, X: pt.X, Seed: seed, Value: value,
	}})
}

// loadJournal parses a journal stream written by previous runs. A journal is
// a sequence of SECTIONS, each a header followed by its point records:
// commands that run several sweeps in one invocation (e.g. a disk-model and
// an on/off-model cross-sweep) checkpoint them all to one file, and each
// sweep loads only the sections whose fingerprint matches — other sweeps'
// sections are skipped, not rejected. A journal with records but no matching
// section belongs to a different sweep and IS rejected, with both specs in
// the error. Duplicate points keep the first record (they are bit-identical
// by construction). A final line that does not parse is treated as the write
// a kill interrupted and skipped; malformed records anywhere else are
// corruption.
func loadJournal(r io.Reader, fingerprint, spec, kind, label string) (map[pointKey]journalPoint, error) {
	cached := make(map[pointKey]journalPoint)
	br := bufio.NewReader(r)
	var (
		line       = 0
		matched    = false // some section matched our fingerprint
		inMatching = false // the CURRENT section matches
		sawHeader  = false
		firstOther = "" // spec of the first non-matching section, for the error
	)
	for {
		data, readErr := br.ReadBytes('\n')
		atEOF := readErr == io.EOF
		if readErr != nil && !atEOF {
			return nil, fmt.Errorf("experiment: reading resume journal: %w", readErr)
		}
		trimmed := bytes.TrimSpace(data)
		if len(trimmed) > 0 {
			line++
			var rec journalRecord
			if err := json.Unmarshal(trimmed, &rec); err != nil {
				if atEOF {
					// The record a kill cut off mid-write; the point it held
					// is simply recomputed.
					break
				}
				return nil, fmt.Errorf("experiment: resume journal line %d is corrupt: %w", line, err)
			}
			switch {
			case rec.Header != nil:
				sawHeader = true
				inMatching = rec.Header.Fingerprint == fingerprint
				if inMatching {
					matched = true
				} else {
					// A foreign section under OUR label but a different sweep
					// kind is a reused label, not a different sweep: the
					// caller changed what the sweep measures while keeping the
					// label, and silently skipping the section would quietly
					// recompute everything the label was meant to protect.
					// Fail loudly instead. (Sections written before headers
					// carried structured fields have Kind == "" and keep the
					// old skip behavior.)
					if rec.Header.Kind != "" && rec.Header.Label == label && rec.Header.Kind != kind {
						return nil, fmt.Errorf(
							"experiment: resume journal label %q was written by a %q sweep but this sweep's kind is %q: a reused label must keep its sweep kind (journal spec: %s)",
							label, rec.Header.Kind, kind, rec.Header.Spec)
					}
					if firstOther == "" {
						firstOther = rec.Header.Spec
					}
				}
			case rec.Point != nil:
				if !sawHeader {
					return nil, fmt.Errorf("experiment: resume journal line %d: point record before any header", line)
				}
				if inMatching {
					key := pointKey{K: rec.Point.K, Q: rec.Point.Q, P: rec.Point.P, X: rec.Point.X}
					if _, dup := cached[key]; !dup {
						cached[key] = *rec.Point
					}
				}
			default:
				return nil, fmt.Errorf("experiment: resume journal line %d holds neither header nor point", line)
			}
		}
		if atEOF {
			break
		}
	}
	if line == 0 {
		// An empty stream (e.g. a just-created checkpoint file) resumes
		// nothing — not an error, the sweep simply runs in full.
		return cached, nil
	}
	if !sawHeader {
		return nil, fmt.Errorf("experiment: resume journal has no header record")
	}
	if !matched {
		return nil, fmt.Errorf(
			"experiment: resume journal belongs to a different sweep:\n  journal spec: %s\n  current spec: %s",
			firstOther, spec)
	}
	return cached, nil
}

// journalSetup prepares the journal side of one sweep run: it loads and
// verifies cfg.Resume (when set) into a cache of completed points, and
// opens cfg.Checkpoint (when set) by appending a fresh header. Either side
// may be nil independently.
func (c SweepConfig) journalSetup(kind string, grid Grid) (*journalWriter, map[pointKey]journalPoint, error) {
	if c.Checkpoint == nil && c.Resume == nil {
		return nil, nil, nil
	}
	fingerprint, spec := c.journalFingerprint(kind, grid)
	var cached map[pointKey]journalPoint
	if c.Resume != nil {
		var err error
		cached, err = loadJournal(c.Resume, fingerprint, spec, kind, c.JournalLabel)
		if err != nil {
			return nil, nil, err
		}
	}
	var jw *journalWriter
	if c.Checkpoint != nil {
		jw = &journalWriter{w: c.Checkpoint}
		if err := jw.writeRecord(journalRecord{Header: &journalHeader{
			Fingerprint: fingerprint,
			Spec:        spec,
			Code:        CodeVersion,
			Kind:        kind,
			Label:       c.JournalLabel,
			Trials:      c.Trials,
			Seed:        c.Seed,
		}}); err != nil {
			return nil, nil, err
		}
	}
	return jw, cached, nil
}

// pointCodec serializes one sweep variant's per-point result for the
// journal. kind names the variant inside the fingerprint; encode/decode
// must round-trip every result field bit-identically (decode receives the
// point so results can re-embed fresh GridPoint metadata, keeping Index
// consistent with the current grid).
type pointCodec[R any] struct {
	kind   string
	encode func(R) (json.RawMessage, error)
	decode func(pt GridPoint, raw json.RawMessage) (R, error)
}

// proportionCodec journals ProportionResult values: the success/trial
// counts are integers, so the round trip is trivially exact.
func proportionCodec() pointCodec[ProportionResult] {
	return pointCodec[ProportionResult]{
		kind: KindProportion,
		encode: func(r ProportionResult) (json.RawMessage, error) {
			return json.Marshal(r.Value)
		},
		decode: func(pt GridPoint, raw json.RawMessage) (ProportionResult, error) {
			var v stats.Proportion
			if err := json.Unmarshal(raw, &v); err != nil {
				return ProportionResult{}, err
			}
			return ProportionResult{Point: pt, Value: v}, nil
		},
	}
}

// meanCodec journals MeanResult values through stats.Summary's exact
// accumulator serialization.
func meanCodec() pointCodec[MeanResult] {
	return pointCodec[MeanResult]{
		kind: KindMean,
		encode: func(r MeanResult) (json.RawMessage, error) {
			return json.Marshal(r.Value)
		},
		decode: func(pt GridPoint, raw json.RawMessage) (MeanResult, error) {
			v := &stats.Summary{}
			if err := json.Unmarshal(raw, v); err != nil {
				return MeanResult{}, err
			}
			return MeanResult{Point: pt, Value: v}, nil
		},
	}
}

// meanVecCodec journals MeanVecResult values. dims is part of the kind (and
// hence the fingerprint): a meanvec journal only resumes a sweep measuring
// the same number of components.
func meanVecCodec(dims int) pointCodec[MeanVecResult] {
	return pointCodec[MeanVecResult]{
		kind: KindMeanVec(dims),
		encode: func(r MeanVecResult) (json.RawMessage, error) {
			return json.Marshal(r.Values)
		},
		decode: func(pt GridPoint, raw json.RawMessage) (MeanVecResult, error) {
			var vs []*stats.Summary
			if err := json.Unmarshal(raw, &vs); err != nil {
				return MeanVecResult{}, err
			}
			if len(vs) != dims {
				return MeanVecResult{}, fmt.Errorf("journaled point has %d components, want %d", len(vs), dims)
			}
			return MeanVecResult{Point: pt, Values: vs}, nil
		},
	}
}
