package experiment

// The k-connectivity sweep path: Zhao–Yağan–Gligor (arXiv:1206.1531) and its
// heterogeneous analogue (Eletreby–Yağan, arXiv:1604.00460 §IV) study
// P[k-connected] over the same (K, q, p) grids as plain connectivity, with k
// itself a sweep axis. SweepKConnectivity runs that shape on the deployment
// pipeline: the Grid's Xs axis carries the connectivity levels, and every
// trial deploys one full network through a per-point wsn.DeployerPool and
// tests wsn.Network.IsKConnected — so the sweep composes with PointWorkers
// sharding and the zero-allocation trial loop like every other sweep.

import (
	"context"
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// KLevels returns []float64{1, ..., kMax} — the Xs axis of a k-connectivity
// grid sweeping every connectivity level up to kMax.
func KLevels(kMax int) []float64 {
	if kMax < 1 {
		return nil
	}
	ks := make([]float64, kMax)
	for i := range ks {
		ks[i] = float64(i + 1)
	}
	return ks
}

// KOf returns the connectivity level a k-connectivity grid point encodes on
// its Xs axis. Levels must be positive integers stored exactly (KLevels
// produces them); anything else is a configuration error.
func KOf(pt GridPoint) (int, error) {
	k := int(pt.X)
	if float64(k) != pt.X || k < 1 {
		return 0, fmt.Errorf("experiment: grid point %v: Xs value %v is not a connectivity level (want a positive integer)", pt, pt.X)
	}
	return k, nil
}

// SweepKConnectivity estimates P[k-connected] at every grid point, reading
// the connectivity level k from the point's Xs axis (use KLevels to build
// it). build returns the deployment configuration of the point — scheme and
// channel typically depend on pt.K/pt.Q/pt.P — and each point runs its
// trials through a dedicated wsn.DeployerPool, so trial loops are
// allocation-free in steady state and shard cleanly under cfg.PointWorkers.
//
// Points that differ only in k share identical deployment parameters but
// NOT identical topologies: k is part of the point's seed derivation like
// any other axis value. Pair k-levels on common samples with SweepMeanVec
// instead when sample-by-sample monotonicity matters.
func SweepKConnectivity(ctx context.Context, grid Grid, cfg SweepConfig,
	build func(pt GridPoint) (wsn.Config, error)) ([]ProportionResult, error) {
	return CrossSweep(ctx, grid, cfg, CrossSpec{
		Bindings: []XBinding{BindK},
		Build:    build,
	})
}

// KConnMeasurements adapts SweepKConnectivity results into per-k empirical
// curves over the ring-size axis: x is the point's K and the curve is named
// by the connectivity level ("empirical k=2"), with a Wilson band at
// critical value z (z ≤ 0 omits it).
func KConnMeasurements(results []ProportionResult, z float64) []Measurement {
	return ProportionMeasurements(results, z,
		func(pt GridPoint) float64 { return float64(pt.K) },
		func(pt GridPoint) string {
			if k := int(pt.X); float64(k) == pt.X {
				return fmt.Sprintf("empirical k=%d", k)
			}
			return fmt.Sprintf("empirical k=%v", pt.X)
		})
}
