package experiment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// BenchmarkCheckpointOverhead measures the cost of the checkpoint journal on
// a sharded sweep: the same 24-point, 2000-trial grid once without a journal
// and once checkpointing every point to a real file. The journal writes one
// small JSON line per POINT (not per trial), so the on/off difference must
// stay well under 5% — the journal's cost is amortized over each point's
// full trial run.
func BenchmarkCheckpointOverhead(b *testing.B) {
	grid := Grid{Ks: []int{10, 20, 30, 40}, Qs: []int{1, 2}, Ps: []float64{0.2, 0.5, 0.8}}
	cfg := SweepConfig{Trials: 2000, Workers: 0, PointWorkers: 4, Seed: 9}
	build := func(pt GridPoint) (montecarlo.Trial, error) {
		return func(trial int, r *rng.Rand) (bool, error) {
			return r.Float64() < pt.P, nil
		}, nil
	}
	for _, journal := range []bool{false, true} {
		b.Run(fmt.Sprintf("journal=%v", journal), func(b *testing.B) {
			runCfg := cfg
			if journal {
				f, err := os.Create(filepath.Join(b.TempDir(), "bench.journal"))
				if err != nil {
					b.Fatal(err)
				}
				defer f.Close()
				runCfg.Checkpoint = f
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SweepProportion(context.Background(), grid, runCfg, build); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSupervisedPointOverhead isolates the per-point supervision cost
// (recover scope + retry loop bookkeeping) on a sequential sweep of cheap
// points — the fixed tax every point pays even when nothing ever fails.
func BenchmarkSupervisedPointOverhead(b *testing.B) {
	grid := Grid{Ks: []int{1, 2, 3, 4, 5, 6, 7, 8}}
	cfg := SweepConfig{Trials: 1, Workers: 1, Seed: 9}
	build := func(pt GridPoint) (montecarlo.Trial, error) {
		return func(trial int, r *rng.Rand) (bool, error) { return true, nil }, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepProportion(context.Background(), grid, cfg, build); err != nil {
			b.Fatal(err)
		}
	}
}
