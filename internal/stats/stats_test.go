package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionEstimate(t *testing.T) {
	tests := []struct {
		name string
		p    Proportion
		want float64
	}{
		{name: "empty", p: Proportion{}, want: 0},
		{name: "half", p: Proportion{Successes: 50, Trials: 100}, want: 0.5},
		{name: "all", p: Proportion{Successes: 10, Trials: 10}, want: 1},
		{name: "none", p: Proportion{Successes: 0, Trials: 10}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Estimate(); got != tt.want {
				t.Errorf("Estimate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestWilsonInterval(t *testing.T) {
	p := Proportion{Successes: 50, Trials: 100}
	lo, hi := p.WilsonInterval(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v, %v] must contain the estimate 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%v, %v] too wide for 100 trials", lo, hi)
	}
	// Boundary behaviour: all successes still yields hi ≤ 1 and lo < 1.
	p = Proportion{Successes: 100, Trials: 100}
	lo, hi = p.WilsonInterval(1.96)
	if hi > 1 || lo >= 1 || lo < 0.9 {
		t.Errorf("boundary interval [%v, %v] unreasonable", lo, hi)
	}
	// Zero trials: the vacuous interval.
	lo, hi = Proportion{}.WilsonInterval(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestWilsonNarrowsWithTrials(t *testing.T) {
	small := Proportion{Successes: 5, Trials: 10}
	large := Proportion{Successes: 500, Trials: 1000}
	slo, shi := small.WilsonInterval(1.96)
	llo, lhi := large.WilsonInterval(1.96)
	if lhi-llo >= shi-slo {
		t.Errorf("1000-trial interval (%v) not narrower than 10-trial (%v)", lhi-llo, shi-slo)
	}
}

func TestProportionString(t *testing.T) {
	s := Proportion{Successes: 1, Trials: 2}.String()
	if !strings.Contains(s, "0.5") || !strings.Contains(s, "(1/2)") {
		t.Errorf("String() = %q", s)
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("zero-value Summary must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdErr()-s.StdDev()/math.Sqrt(8)) > 1e-12 {
		t.Errorf("StdErr inconsistent")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("single-observation summary wrong: %+v", s)
	}
}

func TestPoissonPMF(t *testing.T) {
	// Poisson(2): P[0] = e^-2, P[1] = 2e^-2, P[2] = 2e^-2.
	e2 := math.Exp(-2)
	tests := []struct {
		k    int
		want float64
	}{
		{k: 0, want: e2},
		{k: 1, want: 2 * e2},
		{k: 2, want: 2 * e2},
		{k: 3, want: 4.0 / 3 * e2},
		{k: -1, want: 0},
	}
	for _, tt := range tests {
		if got := PoissonPMF(2, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("PMF(2, %d) = %v, want %v", tt.k, got, tt.want)
		}
	}
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %v, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %v, want 0", got)
	}
	if got := PoissonPMF(-1, 0); got != 0 {
		t.Errorf("PMF(-1,0) = %v, want 0", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 7.3, 50} {
		sum := 0.0
		for k := 0; k < 400; k++ {
			sum += PoissonPMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Poisson(%v) pmf sums to %v", lambda, sum)
		}
	}
}

func TestPoissonCDF(t *testing.T) {
	if got := PoissonCDF(2, 0); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("CDF(2,0) = %v", got)
	}
	if got := PoissonCDF(2, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(2,100) = %v, want ~1", got)
	}
}

func TestTotalVariation(t *testing.T) {
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{name: "identical", p: []float64{0.5, 0.5}, q: []float64{0.5, 0.5}, want: 0},
		{name: "disjoint", p: []float64{1, 0}, q: []float64{0, 1}, want: 1},
		{name: "half", p: []float64{1, 0}, q: []float64{0.5, 0.5}, want: 0.5},
		{name: "length mismatch", p: []float64{1}, q: []float64{0.5, 0.5}, want: 0.5},
		{name: "both empty", p: nil, q: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TotalVariation(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("TV = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQuickTotalVariationSymmetricBounded(t *testing.T) {
	f := func(a, b [8]uint8) bool {
		p := make([]float64, 8)
		q := make([]float64, 8)
		var ps, qs float64
		for i := 0; i < 8; i++ {
			p[i] = float64(a[i])
			q[i] = float64(b[i])
			ps += p[i]
			qs += q[i]
		}
		if ps == 0 || qs == 0 {
			return true
		}
		for i := range p {
			p[i] /= ps
			q[i] /= qs
		}
		tv := TotalVariation(p, q)
		return tv >= 0 && tv <= 1+1e-12 && math.Abs(tv-TotalVariation(q, p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChiSquare(t *testing.T) {
	stat, cells := ChiSquare([]float64{10, 20, 30}, []float64{10, 20, 30})
	if stat != 0 || cells != 3 {
		t.Errorf("identical: stat=%v cells=%d", stat, cells)
	}
	stat, _ = ChiSquare([]float64{12, 18}, []float64{10, 20})
	want := 4.0/10 + 4.0/20
	if math.Abs(stat-want) > 1e-12 {
		t.Errorf("stat = %v, want %v", stat, want)
	}
	stat, _ = ChiSquare([]float64{1}, []float64{0})
	if !math.IsInf(stat, 1) {
		t.Errorf("obs>0 with exp=0 should be +Inf, got %v", stat)
	}
	stat, cells = ChiSquare([]float64{0, 5}, []float64{0, 5})
	if stat != 0 || cells != 1 {
		t.Errorf("zero-exp zero-obs cell should be skipped: stat=%v cells=%d", stat, cells)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int{0, 1, 1, 2, 2, 2, 5} {
		h.Add(v)
	}
	h.Add(-3) // clamps to 0
	want := []int{2, 2, 3, 0, 0, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("Counts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	norm := h.Normalized()
	if math.Abs(norm[2]-3.0/8) > 1e-12 {
		t.Errorf("Normalized[2] = %v", norm[2])
	}
	if math.Abs(h.Mean()-(0*2+1*2+2*3+5*1)/8.0) > 1e-12 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Median() != 1 {
		t.Errorf("Median = %d, want 1", h.Median())
	}
	if h.Quantile(1) != 5 {
		t.Errorf("Quantile(1) = %d, want 5", h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Total() != 0 || h.Mean() != 0 || h.Median() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if len(h.Normalized()) != 0 {
		t.Error("empty histogram Normalized should be empty")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	mean, lo, hi := MeanCI(xs, 1.96)
	if mean != 3 {
		t.Errorf("mean = %v", mean)
	}
	if lo >= mean || hi <= mean {
		t.Errorf("CI [%v, %v] must straddle the mean", lo, hi)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("Quantiles = %v, want [1 3 5]", qs)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantiles mutated its input")
	}
	empty := Quantiles(nil, 0.5)
	if len(empty) != 1 || empty[0] != 0 {
		t.Errorf("empty Quantiles = %v", empty)
	}
}

// TestSummaryJSONRoundTrip pins the checkpoint-journal contract: a Summary
// restored from its JSON form must report bit-identical statistics — the
// full accumulator state survives, including awkward float64 values that a
// lossy encoding would perturb.
func TestSummaryJSONRoundTrip(t *testing.T) {
	awkward := []float64{
		0.1, 1.0 / 3.0, math.Pi, 1e-300, 1e300, -7.25,
		math.Nextafter(1, 2), // 1 + ulp: dies under short float formatting
	}
	var s Summary
	for _, x := range awkward {
		s.Add(x)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip changed the accumulator: %+v vs %+v", back, s)
	}
	// The zero Summary round-trips too (a point with no observations).
	var zero, zeroBack Summary
	data, err = json.Marshal(&zero)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &zeroBack); err != nil {
		t.Fatal(err)
	}
	if zeroBack != zero {
		t.Errorf("zero Summary round trip: %+v vs %+v", zeroBack, zero)
	}
	// A negative count is rejected, not silently restored.
	if err := json.Unmarshal([]byte(`{"n":-1}`), &back); err == nil {
		t.Error("negative observation count accepted")
	}
}

// TestSummaryJSONRoundTripQuick fuzzes the exactness claim over random
// accumulator states.
func TestSummaryJSONRoundTripQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		data, err := json.Marshal(&s)
		if err != nil {
			return false
		}
		var back Summary
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		// Extreme inputs can drive the accumulator non-finite (overflowed
		// m2, NaN mean), and NaN != NaN — compare the canonical encoding
		// instead of the struct, which is equality up to NaN payload bits.
		data2, err := json.Marshal(&back)
		if err != nil {
			return false
		}
		return bytes.Equal(data, data2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
