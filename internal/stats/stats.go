// Package stats provides the statistical toolkit for the experiments:
// proportion estimates with Wilson confidence intervals, summary statistics,
// the Poisson distribution used by Lemma 9's degree law, goodness-of-fit
// measures (total-variation distance, Pearson chi-square), and histograms.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"github.com/secure-wsn/qcomposite/internal/combin"
)

// Proportion is an estimated Bernoulli success probability with its trial
// counts, e.g. "fraction of sampled graphs that were 2-connected".
type Proportion struct {
	Successes int
	Trials    int
}

// Estimate returns successes/trials (0 when no trials have run).
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// WilsonInterval returns the Wilson score interval at the given z (e.g.
// z = 1.96 for 95% confidence). Unlike the Wald interval it behaves at the
// 0/1 boundaries, which the connectivity curves constantly touch.
func (p Proportion) WilsonInterval(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Estimate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String renders the proportion with its 95% Wilson interval.
func (p Proportion) String() string {
	lo, hi := p.WilsonInterval(1.96)
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", p.Estimate(), lo, hi, p.Successes, p.Trials)
}

// Summary accumulates streaming mean/variance via Welford's algorithm.
// The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a new observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// jsonFloat is a float64 that always survives a JSON round trip: finite
// values encode as ordinary JSON numbers (Go emits the shortest decimal that
// parses back to the same bits), and the non-finite values JSON numbers
// cannot carry — a Welford accumulator can overflow to +Inf on extreme
// observations — fall back to quoted "NaN"/"+Inf"/"-Inf".
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		switch s {
		case "NaN":
			*f = jsonFloat(math.NaN())
		case "+Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		default:
			return fmt.Errorf("stats: %q is not a float", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// summaryJSON is the serialized form of a Summary: the exact accumulator
// state, so a round-tripped Summary reports bit-identical statistics.
type summaryJSON struct {
	N    int       `json:"n"`
	Mean jsonFloat `json:"mean"`
	M2   jsonFloat `json:"m2"`
	Min  jsonFloat `json:"min"`
	Max  jsonFloat `json:"max"`
}

// MarshalJSON serializes the full accumulator state. It exists for
// checkpoint journals (experiment sweeps persist completed points and must
// restore them bit-identically), not for presentation — use the accessor
// methods for reporting.
func (s *Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{
		N:    s.n,
		Mean: jsonFloat(s.mean),
		M2:   jsonFloat(s.m2),
		Min:  jsonFloat(s.min),
		Max:  jsonFloat(s.max),
	})
}

// UnmarshalJSON restores the exact accumulator state written by MarshalJSON.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.N < 0 {
		return fmt.Errorf("stats: summary with negative observation count %d", j.N)
	}
	s.n = j.N
	s.mean, s.m2 = float64(j.Mean), float64(j.M2)
	s.min, s.max = float64(j.Min), float64(j.Max)
	return nil
}

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 before any observation).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 before any observation).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 before any observation).
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// PoissonPMF returns P[X = k] for X ~ Poisson(lambda), in log space for
// stability at large lambda. k < 0 or lambda < 0 yield 0.
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(lambda) - lambda - combin.LogFactorial(k))
}

// PoissonCDF returns P[X ≤ k] for X ~ Poisson(lambda).
func PoissonCDF(lambda float64, k int) float64 {
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += PoissonPMF(lambda, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// TotalVariation returns the total-variation distance ½·Σ|p_i − q_i|
// between two distributions given as aligned probability slices; shorter
// slices are implicitly zero-padded.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var pi, qi float64
		if i < len(p) {
			pi = p[i]
		}
		if i < len(q) {
			qi = q[i]
		}
		sum += math.Abs(pi - qi)
	}
	return sum / 2
}

// ChiSquare returns Pearson's X² statistic Σ (obs−exp)²/exp over cells with
// positive expectation, along with the number of such cells. Cells with
// exp ≤ 0 and obs = 0 are skipped; exp ≤ 0 with obs > 0 contributes +Inf.
func ChiSquare(observed []float64, expected []float64) (statistic float64, cells int) {
	n := len(observed)
	if len(expected) > n {
		n = len(expected)
	}
	for i := 0; i < n; i++ {
		var obs, exp float64
		if i < len(observed) {
			obs = observed[i]
		}
		if i < len(expected) {
			exp = expected[i]
		}
		if exp <= 0 {
			if obs > 0 {
				return math.Inf(1), cells + 1
			}
			continue
		}
		d := obs - exp
		statistic += d * d / exp
		cells++
	}
	return statistic, cells
}

// Histogram counts integer observations into a dense [0, max] slice.
type Histogram struct {
	counts []int
	total  int
}

// Add records one observation of value v ≥ 0 (negatives are clamped to 0).
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Counts returns a copy of the dense count slice.
func (h *Histogram) Counts() []int {
	return append([]int(nil), h.counts...)
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Normalized returns the empirical probability mass function.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Mean returns the mean of the recorded observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest value at or above which fraction p of the
// mass lies (p in [0,1]).
func (h *Histogram) Quantile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.total)
	acc := 0.0
	for v, c := range h.counts {
		acc += float64(c)
		if acc >= target {
			return v
		}
	}
	return len(h.counts) - 1
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int { return h.Quantile(0.5) }

// MeanCI returns a z-score confidence interval for the mean of arbitrary
// float observations.
func MeanCI(xs []float64, z float64) (mean, lo, hi float64) {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	se := s.StdErr()
	return s.Mean(), s.Mean() - z*se, s.Mean() + z*se
}

// Quantiles returns the requested empirical quantiles (nearest-rank) of xs.
// It copies and sorts internally; xs is not modified.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = sorted[idx]
	}
	return out
}
