package theory

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/combin"
)

func TestKeyShareProbRange(t *testing.T) {
	tests := []struct {
		name          string
		pool, ring, q int
	}{
		{name: "paper scale q2", pool: 10000, ring: 50, q: 2},
		{name: "paper scale q3", pool: 10000, ring: 70, q: 3},
		{name: "tiny", pool: 10, ring: 3, q: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := KeyShareProb(tt.pool, tt.ring, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if s < 0 || s > 1 {
				t.Errorf("s = %v outside [0,1]", s)
			}
		})
	}
	if _, err := KeyShareProb(10, 20, 1); err == nil {
		t.Error("ring > pool: want error")
	}
}

func TestKeyShareProbAsymptoticAgreement(t *testing.T) {
	// Lemma 2 regime: K large, K²/P small.
	const pool = 1 << 24
	for _, q := range []int{1, 2, 3} {
		exact, err := KeyShareProb(pool, 300, q)
		if err != nil {
			t.Fatal(err)
		}
		approx := KeyShareProbAsymptotic(pool, 300, q)
		if math.Abs(exact-approx) > 0.05*approx {
			t.Errorf("q=%d: exact %v vs asymptotic %v differ by more than 5%%", q, exact, approx)
		}
	}
	if got := KeyShareProbAsymptotic(0, 5, 2); got != 0 {
		t.Errorf("zero pool asymptotic = %v", got)
	}
}

func TestEdgeProbScalesWithChannel(t *testing.T) {
	s, err := KeyShareProb(10000, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.2, 0.5, 1} {
		got, err := EdgeProb(10000, 40, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p*s) > 1e-15 {
			t.Errorf("EdgeProb(p=%v) = %v, want %v", p, got, p*s)
		}
	}
	if _, err := EdgeProb(10000, 40, 2, -0.1); err == nil {
		t.Error("negative p: want error")
	}
	if _, err := EdgeProb(10000, 40, 2, 1.1); err == nil {
		t.Error("p > 1: want error")
	}
}

func TestAlphaRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, alpha := range []float64{-5, 0, 2.5, 10} {
			tProb, err := EdgeProbForAlpha(1000, alpha, k)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Alpha(1000, tProb, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-alpha) > 1e-9 {
				t.Errorf("k=%d alpha=%v: round trip gave %v", k, alpha, back)
			}
		}
	}
	if _, err := Alpha(2, 0.5, 1); err == nil {
		t.Error("n < 3: want error")
	}
	if _, err := Alpha(100, 0.5, 0); err == nil {
		t.Error("k < 1: want error")
	}
	if _, err := EdgeProbForAlpha(2, 0, 1); err == nil {
		t.Error("n < 3: want error")
	}
	if _, err := EdgeProbForAlpha(100, 0, 0); err == nil {
		t.Error("k < 1: want error")
	}
}

func TestKConnProbLimit(t *testing.T) {
	// k=1, α=0: exp(−1) ≈ 0.3679.
	got, err := KConnProbLimit(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("limit(0, 1) = %v, want e^{-1}", got)
	}
	// k=3, α=0: exp(−1/2).
	got, err = KConnProbLimit(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("limit(0, 3) = %v, want e^{-1/2}", got)
	}
	// Zero–one endpoints (eqs. (8b), (8c)).
	if got, err = KConnProbLimit(math.Inf(1), 2); err != nil || got != 1 {
		t.Errorf("limit(+Inf) = %v, %v; want 1", got, err)
	}
	if got, err = KConnProbLimit(math.Inf(-1), 2); err != nil || got != 0 {
		t.Errorf("limit(-Inf) = %v, %v; want 0", got, err)
	}
	if _, err = KConnProbLimit(0, 0); err == nil {
		t.Error("k=0: want error")
	}
	// Monotone in α.
	p1, _ := KConnProbLimit(1, 2)
	p2, _ := KConnProbLimit(2, 2)
	if p1 >= p2 {
		t.Errorf("limit not increasing in α: %v vs %v", p1, p2)
	}
	// At a FIXED edge probability t, k-connectivity gets harder as k grows:
	// α_k = n·t − ln n − (k−1)·ln ln n decreases with k and the factorial
	// does not compensate near the threshold. (At fixed α the limit instead
	// increases with k because α is measured against a k-dependent scaling.)
	const n = 1000
	tProb := (math.Log(n) + 2.5) / n
	prev := 2.0
	for k := 1; k <= 4; k++ {
		alpha, err := Alpha(n, tProb, k)
		if err != nil {
			t.Fatal(err)
		}
		pk, err := KConnProbLimit(alpha, k)
		if err != nil {
			t.Fatal(err)
		}
		if pk >= prev {
			t.Errorf("P[%d-connected] = %v not below P[%d-connected] = %v at fixed t", k, pk, k-1, prev)
		}
		prev = pk
	}
}

func TestMinDegreeLimitEqualsKConnLimit(t *testing.T) {
	for _, alpha := range []float64{-2, 0, 3} {
		a, err := KConnProbLimit(alpha, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinDegreeProbLimit(alpha, 2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("Lemma 8 limit %v != Theorem 1 limit %v", b, a)
		}
	}
}

// TestPaperKStarValues pins the reproduction of the paper's in-text table:
// "the corresponding K* values are 35, 41, 52, 60, 67 and 78" for the six
// curves of Figure 1 (n=1000, P=10000), ordered leftmost to rightmost:
// (q=2,p=1), (q=2,p=.5), (q=2,p=.2), (q=3,p=1), (q=3,p=.5), (q=3,p=.2).
//
// The paper says the values come from the exact formula (5), but they in
// fact track the Lemma 2 asymptotic s ≈ (K²/P)^q/q! — verified here and
// independently with exact big.Rat arithmetic (see EXPERIMENTS.md, E2):
//
//	paper      : 35, 41, 52, 60, 67, 78
//	asymptotic : 35, 41, 52, 59, 67, 77   (q=2 row exact, q=3 row −1 twice)
//	exact (5)  : 36, 43, 55, 63, 71, 85
//
// Both solvers are pinned so any regression in either computation is caught.
func TestPaperKStarValues(t *testing.T) {
	tests := []struct {
		q         int
		p         float64
		wantExact int
		wantAsym  int
		paper     int
	}{
		{q: 2, p: 1.0, wantExact: 36, wantAsym: 35, paper: 35},
		{q: 2, p: 0.5, wantExact: 43, wantAsym: 41, paper: 41},
		{q: 2, p: 0.2, wantExact: 55, wantAsym: 52, paper: 52},
		{q: 3, p: 1.0, wantExact: 63, wantAsym: 59, paper: 60},
		{q: 3, p: 0.5, wantExact: 71, wantAsym: 67, paper: 67},
		{q: 3, p: 0.2, wantExact: 85, wantAsym: 77, paper: 78},
	}
	for _, tt := range tests {
		gotExact, err := ThresholdRingSize(1000, 10000, tt.q, tt.p)
		if err != nil {
			t.Fatalf("ThresholdRingSize(q=%d, p=%v): %v", tt.q, tt.p, err)
		}
		if gotExact != tt.wantExact {
			t.Errorf("exact K*(q=%d, p=%v) = %d, want %d", tt.q, tt.p, gotExact, tt.wantExact)
		}
		gotAsym, err := ThresholdRingSizeAsymptotic(1000, 10000, tt.q, tt.p)
		if err != nil {
			t.Fatalf("ThresholdRingSizeAsymptotic(q=%d, p=%v): %v", tt.q, tt.p, err)
		}
		if gotAsym != tt.wantAsym {
			t.Errorf("asymptotic K*(q=%d, p=%v) = %d, want %d", tt.q, tt.p, gotAsym, tt.wantAsym)
		}
		// The paper's published value must sit within the [asymptotic, exact]
		// bracket our two solvers produce.
		if tt.paper < gotAsym || tt.paper > gotExact {
			t.Errorf("paper K* = %d outside bracket [%d, %d] for q=%d p=%v",
				tt.paper, gotAsym, gotExact, tt.q, tt.p)
		}
	}
}

func TestThresholdRingSizeAsymptoticErrors(t *testing.T) {
	if _, err := ThresholdRingSizeAsymptotic(1, 100, 2, 1); err == nil {
		t.Error("n < 2: want error")
	}
	if _, err := ThresholdRingSizeAsymptotic(1000, 0, 2, 1); err == nil {
		t.Error("pool < 1: want error")
	}
	if _, err := ThresholdRingSizeAsymptotic(1000, 100, 0, 1); err == nil {
		t.Error("q < 1: want error")
	}
	if _, err := ThresholdRingSizeAsymptotic(1000, 100, 2, 0); err == nil {
		t.Error("p = 0: want error")
	}
}

func TestThresholdRingSizeErrors(t *testing.T) {
	if _, err := ThresholdRingSize(1, 100, 2, 1); err == nil {
		t.Error("n < 2: want error")
	}
	if _, err := ThresholdRingSize(1000, 100, 2, 0); err == nil {
		t.Error("p = 0: want error")
	}
	// A pool of size 2 with q=2 can reach s=1 at K=2 — should succeed.
	if _, err := ThresholdRingSize(1000, 2, 2, 1); err != nil {
		t.Errorf("tiny pool: %v", err)
	}
}

func TestRingSizeForEdgeProbBoundary(t *testing.T) {
	// target 0 ⇒ K = 0 suffices (t ≥ 0 always).
	k, err := RingSizeForEdgeProb(1000, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		t.Errorf("K for target 0 = %d, want 0", k)
	}
	// Unreachable target errors.
	if _, err := RingSizeForEdgeProb(1000, 2, 0.5, 0.9); err == nil {
		t.Error("unreachable target: want error")
	}
}

func TestAlphaForTargetInverts(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for _, target := range []float64{0.1, 0.5, 0.9, 0.99} {
			alpha, err := AlphaForTarget(k, target)
			if err != nil {
				t.Fatal(err)
			}
			back, err := KConnProbLimit(alpha, k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-target) > 1e-9 {
				t.Errorf("k=%d target=%v: limit(alpha*) = %v", k, target, back)
			}
		}
	}
	if _, err := AlphaForTarget(0, 0.5); err == nil {
		t.Error("k=0: want error")
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if _, err := AlphaForTarget(1, bad); err == nil {
			t.Errorf("target=%v: want error", bad)
		}
	}
}

func TestDesignRingSizeAchievesTarget(t *testing.T) {
	const (
		n    = 1000
		pool = 10000
	)
	for _, tt := range []struct {
		q      int
		p      float64
		k      int
		target float64
	}{
		{q: 2, p: 1, k: 1, target: 0.95},
		{q: 2, p: 0.5, k: 2, target: 0.9},
		{q: 3, p: 0.2, k: 3, target: 0.99},
	} {
		ring, err := DesignRingSize(n, pool, tt.q, tt.p, tt.k, tt.target)
		if err != nil {
			t.Fatalf("DesignRingSize(%+v): %v", tt, err)
		}
		// The chosen K must achieve the target...
		got, err := KConnProbability(n, pool, ring, tt.q, tt.p, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if got < tt.target {
			t.Errorf("%+v: K=%d achieves only %v", tt, ring, got)
		}
		// ...and K−1 must not (minimality).
		if ring > 0 {
			below, err := KConnProbability(n, pool, ring-1, tt.q, tt.p, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if below >= tt.target {
				t.Errorf("%+v: K=%d is not minimal (K−1 achieves %v)", tt, ring, below)
			}
		}
	}
}

func TestDesignRingSizeLargerKNeedsMoreKeys(t *testing.T) {
	prev := 0
	for k := 1; k <= 4; k++ {
		ring, err := DesignRingSize(1000, 10000, 2, 0.5, k, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if ring < prev {
			t.Errorf("k=%d needs %d keys, fewer than k−1's %d", k, ring, prev)
		}
		prev = ring
	}
}

func TestPoissonNodeCountMean(t *testing.T) {
	// h=0: λ = n·e^{−nt}.
	n := 1000
	tProb := math.Log(float64(n)) / float64(n) // nt = ln n ⇒ λ_0 = 1
	got, err := PoissonNodeCountMean(n, tProb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("λ_{n,0} at the connectivity threshold = %v, want 1", got)
	}
	if _, err := PoissonNodeCountMean(10, 0.1, -1); err == nil {
		t.Error("negative h: want error")
	}
	// Large n·t must not overflow.
	big, err := PoissonNodeCountMean(1e6, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(big) || math.IsInf(big, 0) {
		t.Errorf("large-parameter λ = %v", big)
	}
}

func TestExpectedDegree(t *testing.T) {
	if got := ExpectedDegree(1001, 0.01); math.Abs(got-10) > 1e-12 {
		t.Errorf("ExpectedDegree = %v, want 10", got)
	}
	if got := ExpectedDegree(0, 0.5); got != 0 {
		t.Errorf("ExpectedDegree(0) = %v", got)
	}
}

func TestCouplingParameters(t *testing.T) {
	// Sparse regime of Lemmas 5–6: K = ω(ln n) and K²/P = o(1), so that the
	// Lemma 2 asymptotic behind y_n is accurate.
	const (
		n    = 10000
		pool = 1000000
		ring = 300
	)
	x := CouplingX(n, pool, ring)
	if x <= 0 || x >= float64(ring)/float64(pool) {
		t.Errorf("x_n = %v, want in (0, K/P)", x)
	}
	// Lemma 6: y_n ≈ (P x²)^q / q! must undercut s(K,P,q).
	for _, q := range []int{1, 2} {
		y := CouplingY(pool, x, q)
		s, err := KeyShareProb(pool, ring, q)
		if err != nil {
			t.Fatal(err)
		}
		if y <= 0 || y >= s {
			t.Errorf("q=%d: y_n = %v not in (0, s=%v)", q, y, s)
		}
		z := CouplingZ(n, pool, ring, q, 0.5)
		if math.Abs(z-0.5*y) > 1e-15 {
			t.Errorf("z_n = %v, want y·p = %v", z, 0.5*y)
		}
	}
	// Degenerate inputs clamp to zero.
	if CouplingX(n, pool, 1) != 0 {
		t.Error("tiny ring should clamp x to 0")
	}
	if CouplingY(pool, 0, 2) != 0 {
		t.Error("x=0 should give y=0")
	}
	if CouplingZ(1, 0, 0, 2, 0.5) != 0 {
		t.Error("degenerate z should be 0")
	}
}

func TestQuickEdgeProbMonotoneInRing(t *testing.T) {
	// t(K,P,q,p) is non-decreasing in K — the property the binary searches
	// in this package rely on.
	f := func(poolRaw uint16, qRaw uint8) bool {
		pool := 50 + int(poolRaw)%2000
		q := 1 + int(qRaw)%3
		prev := -1.0
		for ring := 0; ring <= pool; ring += 1 + pool/40 {
			tv, err := EdgeProb(pool, ring, q, 0.7)
			if err != nil {
				return false
			}
			if tv < prev-1e-12 {
				return false
			}
			prev = tv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickKConnProbabilityInUnitInterval(t *testing.T) {
	f := func(ringRaw, kRaw uint8) bool {
		ring := int(ringRaw) % 200
		k := 1 + int(kRaw)%4
		p, err := KConnProbability(1000, 10000, ring, 2, 0.5, k)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactorialConsistencyWithCombin(t *testing.T) {
	// The (k−1)! in the Theorem 1 limit must match the combin kernel.
	for k := 1; k <= 6; k++ {
		p1, err := KConnProbLimit(0, k)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-1 / combin.Factorial(k-1))
		if math.Abs(p1-want) > 1e-12 {
			t.Errorf("k=%d: limit = %v, want %v", k, p1, want)
		}
	}
}
