package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfineDeviationLargeAlpha(t *testing.T) {
	// K far above threshold ⇒ huge positive α; property (i) must clamp it
	// to ln ln n by thinning the channel.
	const (
		n    = 1000
		pool = 10000
		ring = 80
		q    = 2
		pOn  = 0.9
		k    = 2
	)
	cm, err := ConfineDeviation(n, pool, ring, q, pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Direction != ConfinedIsSubgraph {
		t.Errorf("Direction = %v, want ConfinedIsSubgraph", cm.Direction)
	}
	loglogN := math.Log(math.Log(n))
	if math.Abs(cm.Alpha-loglogN) > 1e-9 {
		t.Errorf("confined alpha = %v, want ln ln n = %v", cm.Alpha, loglogN)
	}
	if cm.Ring != ring {
		t.Errorf("property (i) must keep the ring: %d", cm.Ring)
	}
	if cm.ChannelOn >= pOn || cm.ChannelOn <= 0 {
		t.Errorf("p̃ = %v, want in (0, %v)", cm.ChannelOn, pOn)
	}
	// The confined edge probability must realise the confined alpha.
	tc, err := EdgeProb(pool, cm.Ring, q, cm.ChannelOn)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Alpha(n, tc, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back-cm.Alpha) > 1e-6 {
		t.Errorf("realised alpha %v != reported %v", back, cm.Alpha)
	}
}

func TestConfineDeviationSmallPositiveAlphaIsIdentity(t *testing.T) {
	// α already within [0, ln ln n]: property (i) is a no-op.
	const (
		n    = 1000
		pool = 10000
		q    = 2
		k    = 1
	)
	// Find a (ring, p) with small positive alpha.
	ring := 44
	pOn := 0.5
	s, err := KeyShareProb(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := Alpha(n, s*pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if alpha <= 0 || alpha >= math.Log(math.Log(n)) {
		t.Skipf("test parameters landed at alpha=%v outside (0, ln ln n)", alpha)
	}
	cm, err := ConfineDeviation(n, pool, ring, q, pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.ChannelOn-pOn) > 1e-12 || cm.Ring != ring {
		t.Errorf("no-op expected, got ring=%d p=%v", cm.Ring, cm.ChannelOn)
	}
	if math.Abs(cm.Alpha-alpha) > 1e-9 {
		t.Errorf("alpha changed from %v to %v", alpha, cm.Alpha)
	}
}

func TestConfineDeviationNegativeAlphaCase1(t *testing.T) {
	// Mildly negative α with s above the bound: case ➊ raises p, keeps K.
	const (
		n    = 1000
		pool = 10000
		ring = 43
		q    = 2
		pOn  = 0.5
		k    = 1
	)
	s, err := KeyShareProb(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := Alpha(n, s*pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if alpha >= 0 {
		t.Skipf("parameters gave alpha=%v, need negative", alpha)
	}
	cm, err := ConfineDeviation(n, pool, ring, q, pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Direction != ConfinedIsSupergraph {
		t.Errorf("Direction = %v, want ConfinedIsSupergraph", cm.Direction)
	}
	if cm.Ring != ring {
		t.Errorf("case ➊ must keep the ring, got %d", cm.Ring)
	}
	if cm.ChannelOn < pOn || cm.ChannelOn > 1 {
		t.Errorf("p̂ = %v, want in [%v, 1]", cm.ChannelOn, pOn)
	}
	loglogN := math.Log(math.Log(n))
	if cm.Alpha < -loglogN-1e-9 {
		t.Errorf("confined alpha %v below −ln ln n = %v", cm.Alpha, -loglogN)
	}
}

func TestConfineDeviationNegativeAlphaCase2(t *testing.T) {
	// Strongly negative α with a weak channel: even p̂ = 1 cannot reach the
	// bound at the original K, so case ➋ grows the ring.
	const (
		n    = 1000
		pool = 10000
		ring = 20
		q    = 2
		pOn  = 0.1
		k    = 2
	)
	cm, err := ConfineDeviation(n, pool, ring, q, pOn, k)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Direction != ConfinedIsSupergraph {
		t.Errorf("Direction = %v, want ConfinedIsSupergraph", cm.Direction)
	}
	if cm.ChannelOn != 1 {
		t.Errorf("case ➋ must saturate the channel, got %v", cm.ChannelOn)
	}
	if cm.Ring < ring {
		t.Errorf("case ➋ must not shrink the ring: %d < %d", cm.Ring, ring)
	}
	// Maximality: K̂+1 must overshoot the bound (α > confined α at K̂+1).
	if cm.Ring < pool {
		sNext, err := KeyShareProb(pool, cm.Ring+1, q)
		if err != nil {
			t.Fatal(err)
		}
		aNext, err := Alpha(n, sNext, k)
		if err != nil {
			t.Fatal(err)
		}
		bound := -math.Log(math.Log(n))
		if aNext <= bound {
			t.Errorf("K̂+1 alpha %v still ≤ −ln ln n; K̂ not maximal", aNext)
		}
	}
}

func TestConfineDeviationErrors(t *testing.T) {
	if _, err := ConfineDeviation(2, 100, 10, 2, 0.5, 1); err == nil {
		t.Error("n < 3: want error")
	}
	if _, err := ConfineDeviation(1000, 100, 10, 2, 0.5, 0); err == nil {
		t.Error("k < 1: want error")
	}
	if _, err := ConfineDeviation(1000, 5, 10, 2, 0.5, 1); err == nil {
		t.Error("ring > pool: want error")
	}
	if _, err := ConfineDeviation(1000, 100, 10, 2, 0, 1); err == nil {
		t.Error("p = 0: want error")
	}
	if _, err := ConfineDeviation(1000, 100, 10, 2, 1.2, 1); err == nil {
		t.Error("p > 1: want error")
	}
}

func TestQuickConfineInvariants(t *testing.T) {
	// For any valid input: the confined parameters are valid, the edge
	// probability moves in the direction the containment requires, and the
	// confined alpha is never farther from the band than the original.
	f := func(ringRaw, pRaw uint8, kRaw uint8) bool {
		ring := 10 + int(ringRaw)%90
		pOn := 0.05 + 0.95*float64(pRaw)/255
		k := 1 + int(kRaw)%3
		const (
			n    = 1000
			pool = 10000
			q    = 2
		)
		s, err := KeyShareProb(pool, ring, q)
		if err != nil {
			return false
		}
		orig, err := Alpha(n, s*pOn, k)
		if err != nil {
			return false
		}
		cm, err := ConfineDeviation(n, pool, ring, q, pOn, k)
		if err != nil {
			return false
		}
		if cm.ChannelOn <= 0 || cm.ChannelOn > 1 || cm.Ring < 1 || cm.Ring > pool {
			return false
		}
		tOrig := s * pOn
		sConf, err := KeyShareProb(pool, cm.Ring, q)
		if err != nil {
			return false
		}
		tConf := sConf * cm.ChannelOn
		switch cm.Direction {
		case ConfinedIsSubgraph:
			// Confined graph is sparser (or equal): t̃ ≤ t, α̃ ≤ α.
			if tConf > tOrig+1e-12 || cm.Alpha > orig+1e-9 {
				return false
			}
		case ConfinedIsSupergraph:
			if tConf < tOrig-1e-12 || cm.Alpha < orig-1e-9 {
				return false
			}
		default:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
