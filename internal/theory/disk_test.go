package theory

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/keys"
)

func TestDiskOnProb(t *testing.T) {
	if _, err := DiskOnProb(-0.1); err == nil {
		t.Error("negative radius: want error")
	}
	if _, err := DiskOnProb(math.NaN()); err == nil {
		t.Error("NaN radius: want error")
	}
	if _, err := DiskOnProb(math.Inf(1)); err == nil {
		t.Error("infinite radius: want error")
	}
	if p, err := DiskOnProb(0); err != nil || p != 0 {
		t.Errorf("DiskOnProb(0) = %v, %v, want 0", p, err)
	}
	if p, err := DiskOnProb(0.1); err != nil || math.Abs(p-math.Pi*0.01) > 1e-15 {
		t.Errorf("DiskOnProb(0.1) = %v, %v, want π/100", p, err)
	}
	// Beyond r = √2⁄2 the ball covers the whole torus.
	if p, err := DiskOnProb(2); err != nil || p != 1 {
		t.Errorf("DiskOnProb(2) = %v, %v, want 1", p, err)
	}
}

// TestDiskOnProbClippedRegime pins the exact torus marginal for r > ½: the
// clipped-ball area is continuous at both regime boundaries, strictly
// increasing, and matches the closed-form segment subtraction.
func TestDiskOnProbClippedRegime(t *testing.T) {
	at := func(r float64) float64 {
		t.Helper()
		p, err := DiskOnProb(r)
		if err != nil {
			t.Fatalf("DiskOnProb(%v): %v", r, err)
		}
		return p
	}
	// Continuity at r = ½ (π·r² regime ends) and r = √2⁄2 (full cover).
	if got, want := at(0.5), math.Pi/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("DiskOnProb(0.5) = %v, want π/4", got)
	}
	if got := at(math.Sqrt2/2 - 1e-9); math.Abs(got-1) > 1e-6 {
		t.Errorf("DiskOnProb just below √2⁄2 = %v, want → 1", got)
	}
	// Interior of the clipped regime: π·r² − 4 segments, and strictly less
	// than the naive π·r² (the old min(1, π·r²) overstated this regime).
	r := 0.6
	seg := r*r*math.Acos(0.5/r) - 0.5*math.Sqrt(r*r-0.25)
	if got, want := at(r), math.Pi*r*r-4*seg; math.Abs(got-want) > 1e-12 {
		t.Errorf("DiskOnProb(0.6) = %v, want clipped area %v", got, want)
	}
	if at(r) >= math.Pi*r*r {
		t.Errorf("clipped marginal %v not below naive π·r² = %v", at(r), math.Pi*r*r)
	}
	// Monotone across the whole range.
	prev := -1.0
	for rr := 0.0; rr < 0.75; rr += 0.01 {
		p := at(rr)
		if p < prev {
			t.Fatalf("DiskOnProb not monotone at r=%v: %v < %v", rr, p, prev)
		}
		prev = p
	}
}

// TestDiskRadiusForOnProbRoundTrip pins the inverse on both regimes.
func TestDiskRadiusForOnProbRoundTrip(t *testing.T) {
	for _, p := range []float64{0, 0.1, math.Pi / 4, 0.9, 0.999, 1} {
		r, err := DiskRadiusForOnProb(p)
		if err != nil {
			t.Fatalf("DiskRadiusForOnProb(%v): %v", p, err)
		}
		back, err := DiskOnProb(r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("round trip p=%v: radius %v maps back to %v", p, r, back)
		}
	}
	if _, err := DiskRadiusForOnProb(-0.1); err == nil {
		t.Error("negative marginal: want error")
	}
	if _, err := DiskRadiusForOnProb(1.5); err == nil {
		t.Error("marginal above 1: want error")
	}
}

// TestDiskEdgeProbMatchesOnOffEquivalent pins the comparison device: the
// disk-equivalent edge probability is exactly the eq. (5) edge probability
// at p = π·r².
func TestDiskEdgeProbMatchesOnOffEquivalent(t *testing.T) {
	const (
		pool = 10000
		ring = 41
		q    = 2
	)
	for _, r := range []float64{0, 0.05, 0.2, 0.4} {
		got, err := DiskEdgeProb(pool, ring, q, r)
		if err != nil {
			t.Fatalf("radius %v: %v", r, err)
		}
		p, err := DiskOnProb(r)
		if err != nil {
			t.Fatal(err)
		}
		want, err := EdgeProb(pool, ring, q, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("radius %v: DiskEdgeProb = %v, EdgeProb(π·r²) = %v", r, got, want)
		}
	}
}

// TestDiskKConnProbabilityEndpoints checks the overlay behaves as a zero–one
// transition in the radius: a vanishing radius predicts disconnection, a
// generous one predicts k-connectivity.
func TestDiskKConnProbabilityEndpoints(t *testing.T) {
	const (
		n    = 1000
		pool = 10000
		ring = 41
		q    = 2
	)
	lo, err := DiskKConnProbability(n, pool, ring, q, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := DiskKConnProbability(n, pool, 60, q, 0.45, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 1e-6 {
		t.Errorf("tiny radius: predicted P[connected] = %v, want ≈ 0", lo)
	}
	if hi < 0.99 {
		t.Errorf("large radius: predicted P[connected] = %v, want ≈ 1", hi)
	}
	if _, err := DiskKConnProbability(n, pool, ring, q, -1, 1); err == nil {
		t.Error("negative radius: want error")
	}
}

// TestHeteroKConnBetaReducesToHeteroBeta pins the k = 1 identity and the
// (k−1)·ln ln n shift at higher levels.
func TestHeteroKConnBetaReducesToHeteroBeta(t *testing.T) {
	const n = 500
	lambda := 0.016
	b1, err := HeteroKConnBeta(n, lambda, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HeteroBeta(n, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != want {
		t.Errorf("k=1: HeteroKConnBeta = %v, HeteroBeta = %v", b1, want)
	}
	b2, err := HeteroKConnBeta(n, lambda, 2)
	if err != nil {
		t.Fatal(err)
	}
	shift := math.Log(math.Log(float64(n)))
	if math.Abs((b1-b2)-shift) > 1e-12 {
		t.Errorf("k=2 shift = %v, want ln ln n = %v", b1-b2, shift)
	}
	if _, err := HeteroKConnBeta(n, lambda, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := HeteroKConnBeta(2, lambda, 2); err == nil {
		t.Error("n=2 at k=2: want error (ln ln n undefined)")
	}
}

// TestHeteroKConnProbLimit pins the limit's endpoints, its k = 1 identity
// with HeteroConnProbLimit, and monotonicity in k at fixed β (higher k is a
// stronger property).
func TestHeteroKConnProbLimit(t *testing.T) {
	if _, err := HeteroKConnProbLimit(0, 0); err == nil {
		t.Error("k=0: want error")
	}
	for _, k := range []int{1, 2, 3} {
		if p, err := HeteroKConnProbLimit(math.Inf(1), k); err != nil || p != 1 {
			t.Errorf("β=+∞, k=%d: %v, %v, want 1", k, p, err)
		}
		if p, err := HeteroKConnProbLimit(math.Inf(-1), k); err != nil || p != 0 {
			t.Errorf("β=−∞, k=%d: %v, %v, want 0", k, p, err)
		}
	}
	p1, err := HeteroKConnProbLimit(1.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := HeteroConnProbLimit(1.3); p1 != want {
		t.Errorf("k=1 limit %v != HeteroConnProbLimit %v", p1, want)
	}
	// At fixed β the (k−1)! division RAISES the limit for larger k; the
	// strength ordering lives in β's (k−1)·ln ln n shift, pinned below via
	// the composed probability.
	classes := []keys.Class{{Mu: 0.4, RingSize: 20}, {Mu: 0.6, RingSize: 80}}
	pOn := UniformOnProb(2, 0.6)
	var prev float64 = 1
	for k := 1; k <= 3; k++ {
		p, err := HeteroKConnProbability(800, 5000, 1, classes, pOn, k)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Errorf("k=%d probability %v outside [0,1]", k, p)
		}
		if p > prev+1e-12 {
			t.Errorf("k=%d probability %v exceeds k=%d probability %v (k-connectivity is monotone)", k, p, k-1, prev)
		}
		prev = p
	}
}
