package theory

import (
	"fmt"
	"math"
)

// ConfineDirection states which way the Lemma 1 graph comparison goes.
type ConfineDirection int

const (
	// ConfinedIsSubgraph means the original graph G_{n,q}(n,K,P,p) is a
	// spanning SUPERgraph of the confined one (Lemma 1 property (i), used
	// for the α → ∞ / one-law side: k-connectivity of the confined graph
	// forces it in the original).
	ConfinedIsSubgraph ConfineDirection = iota + 1
	// ConfinedIsSupergraph means the original graph is a spanning SUBgraph
	// of the confined one (Lemma 1 property (ii), used for the α → −∞ /
	// zero-law side).
	ConfinedIsSupergraph
)

// ConfinedModel is the outcome of the Section VI deviation-confinement
// construction: an adjusted parameterisation (Ring, ChannelOn) of the same
// model family whose deviation α is pulled toward the ±ln ln n band, plus
// the direction of the induced spanning-subgraph relation.
type ConfinedModel struct {
	// Ring is the adjusted key ring size (K̃ or K̂; ≥ the original on the
	// supergraph side, equal on the subgraph side).
	Ring int
	// ChannelOn is the adjusted channel probability (p̃ or p̂).
	ChannelOn float64
	// Alpha is the realised deviation of the adjusted parameters.
	Alpha float64
	// Direction tells which graph contains which.
	Direction ConfineDirection
}

// ConfineDeviation implements the paper's Lemma 1 (Section VI): given model
// parameters whose deviation α_n (eq. (6)) may be arbitrarily large in
// magnitude, it produces adjusted parameters whose deviation is confined
// near ±ln ln n while preserving a spanning-subgraph relation with the
// original model, so that zero–one conclusions transfer monotonically.
//
// For α ≥ 0 it applies property (i): α̃ = min(α, ln ln n) and a reduced
// channel probability p̃ with s·p̃ = (ln n + (k−1) ln ln n + α̃)/n; the
// original graph contains the confined one.
//
// For α < 0 it applies property (ii): with bound
// b = (ln n + (k−1) ln ln n + max(α, −ln ln n))/n, either (case ➊ s ≥ b)
// keep K and raise the channel probability to p̂ = b/s ≤ 1, or (case ➋
// s < b) set p̂ = 1 and grow the ring to the maximal K̂ with s(K̂,P,q) ≤ b;
// the confined graph contains the original.
func ConfineDeviation(n, pool, ring, q int, pOn float64, k int) (ConfinedModel, error) {
	if n < 3 {
		return ConfinedModel{}, fmt.Errorf("theory: confine needs n ≥ 3, got %d", n)
	}
	if k < 1 {
		return ConfinedModel{}, fmt.Errorf("theory: confine needs k ≥ 1, got %d", k)
	}
	s, err := KeyShareProb(pool, ring, q)
	if err != nil {
		return ConfinedModel{}, fmt.Errorf("theory: confine: %w", err)
	}
	if pOn <= 0 || pOn > 1 {
		return ConfinedModel{}, fmt.Errorf("theory: confine: channel probability %v outside (0,1]", pOn)
	}
	alpha, err := Alpha(n, s*pOn, k)
	if err != nil {
		return ConfinedModel{}, err
	}
	logN := math.Log(float64(n))
	loglogN := math.Log(logN)
	base := logN + float64(k-1)*loglogN

	if alpha >= 0 {
		// Property (i): clamp the deviation from above, thin the channel.
		alphaTilde := math.Min(alpha, loglogN)
		pTilde := (base + alphaTilde) / (float64(n) * s)
		if pTilde > pOn {
			pTilde = pOn // guard: rounding can only reduce, never exceed
		}
		return ConfinedModel{
			Ring:      ring,
			ChannelOn: pTilde,
			Alpha:     alphaTilde,
			Direction: ConfinedIsSubgraph,
		}, nil
	}

	// Property (ii): clamp the deviation from below.
	bound := (base + math.Max(alpha, -loglogN)) / float64(n)
	if s >= bound {
		// Case ➊: keep the ring, raise the channel probability.
		pHat := bound / s
		if pHat > 1 {
			pHat = 1
		}
		if pHat < pOn {
			pHat = pOn // p̂ ≥ p by construction; guard rounding
		}
		alphaHat, err := Alpha(n, s*pHat, k)
		if err != nil {
			return ConfinedModel{}, err
		}
		return ConfinedModel{
			Ring:      ring,
			ChannelOn: pHat,
			Alpha:     alphaHat,
			Direction: ConfinedIsSupergraph,
		}, nil
	}
	// Case ➋: saturate the channel and grow the ring to the largest K̂
	// whose share probability stays at or below the bound. s(·,P,q) is
	// non-decreasing, enabling binary search over [ring, pool].
	lo, hi := ring, pool // invariant: s(lo) ≤ bound; establish hi
	sHi, err := KeyShareProb(pool, pool, q)
	if err != nil {
		return ConfinedModel{}, err
	}
	if sHi <= bound {
		lo = pool
	} else {
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			sMid, err := KeyShareProb(pool, mid, q)
			if err != nil {
				return ConfinedModel{}, err
			}
			if sMid <= bound {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	sHat, err := KeyShareProb(pool, lo, q)
	if err != nil {
		return ConfinedModel{}, err
	}
	alphaHat, err := Alpha(n, sHat, k) // p̂ = 1
	if err != nil {
		return ConfinedModel{}, err
	}
	return ConfinedModel{
		Ring:      lo,
		ChannelOn: 1,
		Alpha:     alphaHat,
		Direction: ConfinedIsSupergraph,
	}, nil
}
