package theory

import (
	"fmt"
	"math"
)

// Disk-model predictions (the paper's Section IX comparison): on the unit
// torus a disk channel of radius r has marginal pair probability equal to
// the area of the torus ball of radius r — exactly π·r² for r ≤ ½, the
// disk clipped to the unit fundamental square beyond that — so the
// q-composite scheme under disk channels is compared against the on/off
// model at that matched p. The functions below compute the equivalent edge
// probability and the resulting Theorem 1 overlay, the theory curves of the
// on/off-vs-disk cross sweeps (cmd/crossq). channel.Disk.EquivalentOnOff
// delegates here, so the simulator and the overlays share one marginal.
//
// The equivalence is marginal, not joint: disk edges are positively
// correlated through the geometry (two sensors near a third are near each
// other), which is exactly the deviation the cross sweep measures.

// DiskOnProb returns the marginal channel-on probability of the disk model
// on the unit torus: the area of {y : d(x, y) ≤ r}. With per-coordinate
// wrap distances bounded by ½, that set is the radius-r disk clipped to the
// [−½, ½]² square — π·r² for r ≤ ½, π·r² minus four circular segments for
// ½ < r < √2⁄2, and the whole torus (probability 1) beyond. The radius must
// be finite and non-negative (a zero radius is the valid empty channel
// graph).
func DiskOnProb(radius float64) (float64, error) {
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
		return 0, fmt.Errorf("theory: disk radius %v must be finite and non-negative", radius)
	}
	r := radius
	switch {
	case r <= 0.5:
		return math.Pi * r * r, nil
	case r >= math.Sqrt2/2:
		return 1, nil
	}
	// Clip the disk to the square: subtract the four segments protruding
	// past the half-width d = ½ (they never overlap below √2⁄2).
	const d = 0.5
	seg := r*r*math.Acos(d/r) - d*math.Sqrt(r*r-d*d)
	return math.Pi*r*r - 4*seg, nil
}

// DiskRadiusForOnProb inverts DiskOnProb: the smallest torus radius whose
// marginal pair probability reaches p ∈ [0, 1] — the threshold-radius design
// rule of the disk model (solve p = π·r² below π/4, bisect the clipped-area
// regime above it).
func DiskRadiusForOnProb(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("theory: disk marginal %v outside [0,1]", p)
	}
	if p <= math.Pi/4 {
		return math.Sqrt(p / math.Pi), nil
	}
	lo, hi := 0.5, math.Sqrt2/2 // invariant: DiskOnProb(lo) ≤ p ≤ DiskOnProb(hi)
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		area, err := DiskOnProb(mid)
		if err != nil {
			return 0, err
		}
		if area < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// DiskEdgeProb returns the disk-equivalent secure-link probability
// t = π·r² · s(K, P, q): the marginal probability that two sensors share
// enough keys and sit within radius r of each other on the unit torus — the
// eq. (5) edge probability with the channel term replaced by the disk
// marginal.
func DiskEdgeProb(pool, ring, q int, radius float64) (float64, error) {
	p, err := DiskOnProb(radius)
	if err != nil {
		return 0, err
	}
	return EdgeProb(pool, ring, q, p)
}

// DiskKConnProbability composes the disk marginal with Theorem 1: the
// asymptotic k-connectivity probability of the q-composite scheme under an
// on/off channel matched to the disk model's pair probability. Plotted
// against the empirical disk-model curve it shows how far the geometric
// dependence pushes the transition away from the independent-channel
// prediction (the paper's on/off-vs-disk comparison).
func DiskKConnProbability(n, pool, ring, q int, radius float64, k int) (float64, error) {
	t, err := DiskEdgeProb(pool, ring, q, radius)
	if err != nil {
		return 0, err
	}
	alpha, err := Alpha(n, t, k)
	if err != nil {
		return 0, err
	}
	return KConnProbLimit(alpha, k)
}
