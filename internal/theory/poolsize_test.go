package theory

import (
	"testing"
	"testing/quick"
)

func TestPoolSizeForKeyShareProb(t *testing.T) {
	// The returned pool is the LARGEST with s(K, P, q) ≥ target:
	// s at P must reach the target and s at P+1 must not.
	tests := []struct {
		ring, q int
		target  float64
	}{
		{ring: 60, q: 1, target: 0.33},
		{ring: 60, q: 2, target: 0.33},
		{ring: 60, q: 3, target: 0.33},
		{ring: 25, q: 2, target: 0.5},
		{ring: 10, q: 1, target: 0.9},
	}
	for _, tt := range tests {
		pool, err := PoolSizeForKeyShareProb(tt.ring, tt.q, tt.target)
		if err != nil {
			t.Fatalf("PoolSizeForKeyShareProb(%+v): %v", tt, err)
		}
		if pool < tt.ring {
			t.Fatalf("%+v: pool %d below ring", tt, pool)
		}
		at, err := KeyShareProb(pool, tt.ring, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if at < tt.target {
			t.Errorf("%+v: s at P=%d is %v < target", tt, pool, at)
		}
		above, err := KeyShareProb(pool+1, tt.ring, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if above >= tt.target {
			t.Errorf("%+v: s at P+1=%d is %v ≥ target (not maximal)", tt, pool+1, above)
		}
	}
}

func TestPoolSizeForKeyShareProbTargetOne(t *testing.T) {
	// s = 1 requires forced overlap ≥ q: largest pool with certainty.
	pool, err := PoolSizeForKeyShareProb(5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Overlap of two 5-subsets of a P-pool is ≥ 2 surely iff 2·5 − P ≥ 2,
	// i.e. P ≤ 8.
	if pool != 8 {
		t.Errorf("pool for certain overlap = %d, want 8", pool)
	}
}

func TestPoolSizeForKeyShareProbErrors(t *testing.T) {
	if _, err := PoolSizeForKeyShareProb(5, 0, 0.5); err == nil {
		t.Error("q=0: want error")
	}
	if _, err := PoolSizeForKeyShareProb(1, 2, 0.5); err == nil {
		t.Error("ring < q: want error")
	}
	if _, err := PoolSizeForKeyShareProb(5, 2, 0); err == nil {
		t.Error("target 0: want error")
	}
	if _, err := PoolSizeForKeyShareProb(5, 2, 1.5); err == nil {
		t.Error("target > 1: want error")
	}
}

func TestQuickPoolSizeMonotoneInTarget(t *testing.T) {
	// A harder target (larger s) needs a smaller pool.
	f := func(raw uint8) bool {
		lo := 0.1 + 0.4*float64(raw)/255 // target in [0.1, 0.5]
		hi := lo + 0.3
		pLo, err := PoolSizeForKeyShareProb(40, 2, lo)
		if err != nil {
			return false
		}
		pHi, err := PoolSizeForKeyShareProb(40, 2, hi)
		if err != nil {
			return false
		}
		return pHi <= pLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKConnProbabilityErrorPaths(t *testing.T) {
	if _, err := KConnProbability(1000, 10, 20, 2, 0.5, 2); err == nil {
		t.Error("ring > pool: want error")
	}
	if _, err := KConnProbability(2, 100, 10, 2, 0.5, 2); err == nil {
		t.Error("n < 3: want error")
	}
	if _, err := KConnProbability(1000, 100, 10, 2, 0.5, 0); err == nil {
		t.Error("k = 0: want error")
	}
}

func TestDesignRingSizeErrorPaths(t *testing.T) {
	if _, err := DesignRingSize(1000, 10000, 2, 0.5, 2, 1.5); err == nil {
		t.Error("target > 1: want error")
	}
	if _, err := DesignRingSize(2, 10000, 2, 0.5, 2, 0.9); err == nil {
		t.Error("n < 3: want error")
	}
	// Unreachable target: even s = 1 cannot reach the required edge
	// probability through a channel that is almost never on.
	if _, err := DesignRingSize(100000, 4, 2, 0.0001, 2, 0.999); err == nil {
		t.Error("unreachable design: want error")
	}
}
