package theory

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/combin"
	"github.com/secure-wsn/qcomposite/internal/keys"
)

// TestHeteroKeyShareProbReducesToUniform pins the unequal-ring tail against
// the paper's s(K, P, q) when both rings are equal.
func TestHeteroKeyShareProbReducesToUniform(t *testing.T) {
	for _, tc := range []struct{ pool, ring, q int }{
		{10000, 41, 2}, {10000, 78, 3}, {500, 40, 1}, {100, 10, 5},
	} {
		want, err := KeyShareProb(tc.pool, tc.ring, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HeteroKeyShareProb(tc.pool, tc.ring, tc.ring, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("s(%d,%d,%d): hetero %v, uniform %v", tc.ring, tc.pool, tc.q, got, want)
		}
	}
}

// TestHeteroKeyShareProbAgainstExactSum cross-checks the unequal-ring tail
// against a direct big-binomial PMF summation at small sizes.
func TestHeteroKeyShareProbAgainstExactSum(t *testing.T) {
	const pool, r1, r2, q = 60, 8, 20, 2
	want := 0.0
	denom := combin.Binomial(pool, r2)
	for u := q; u <= r1; u++ {
		want += combin.Binomial(r1, u) * combin.Binomial(pool-r1, r2-u) / denom
	}
	got, err := HeteroKeyShareProb(pool, r1, r2, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("tail = %v, direct sum %v", got, want)
	}
	// Symmetry in the two ring sizes.
	swapped, err := HeteroKeyShareProb(pool, r2, r1, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-swapped) > 1e-12 {
		t.Errorf("tail not symmetric: %v vs %v", got, swapped)
	}
}

// TestHeteroKeyShareProbMonotone checks monotonicity in either ring size —
// the property the threshold binary search relies on.
func TestHeteroKeyShareProbMonotone(t *testing.T) {
	const pool, q = 2000, 2
	prev := -1.0
	for ring := q; ring <= 200; ring += 7 {
		s, err := HeteroKeyShareProb(pool, ring, 50, q)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("s decreased at ring %d: %v < %v", ring, s, prev)
		}
		prev = s
	}
}

func twoClasses(mu1 float64, k1, k2 int) []keys.Class {
	return []keys.Class{{Mu: mu1, RingSize: k1}, {Mu: 1 - mu1, RingSize: k2}}
}

// TestHeteroMeanEdgeProbs checks λ_i against a hand computation and the
// single-class reduction t = p·s of eq. (5).
func TestHeteroMeanEdgeProbs(t *testing.T) {
	const pool, q = 5000, 1
	classes := twoClasses(0.4, 20, 60)
	pOn := UniformOnProb(2, 0.5)
	lambda, err := HeteroMeanEdgeProbs(pool, q, classes, pOn)
	if err != nil {
		t.Fatal(err)
	}
	s11, _ := HeteroKeyShareProb(pool, 20, 20, q)
	s12, _ := HeteroKeyShareProb(pool, 20, 60, q)
	s22, _ := HeteroKeyShareProb(pool, 60, 60, q)
	want0 := 0.5 * (0.4*s11 + 0.6*s12)
	want1 := 0.5 * (0.4*s12 + 0.6*s22)
	if math.Abs(lambda[0]-want0) > 1e-15 || math.Abs(lambda[1]-want1) > 1e-15 {
		t.Errorf("lambda = %v, want [%v %v]", lambda, want0, want1)
	}
	if lambda[0] >= lambda[1] {
		t.Errorf("smaller-ring class should have smaller lambda: %v", lambda)
	}

	// Single class: λ must equal the uniform edge probability t(K,P,q,p).
	single, err := HeteroMeanEdgeProbs(pool, q, []keys.Class{{Mu: 1, RingSize: 40}}, UniformOnProb(1, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	tUniform, err := EdgeProb(pool, 40, q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single[0]-tUniform) > 1e-15 {
		t.Errorf("single-class lambda %v != uniform edge prob %v", single[0], tUniform)
	}
}

// TestHeteroBetaRoundTrip checks the scaling inversion and the limit's
// endpoints.
func TestHeteroBetaRoundTrip(t *testing.T) {
	const n = 1500
	for _, beta := range []float64{-3, -0.5, 0, 1.2, 4} {
		lambda, err := HeteroLambdaForBeta(n, beta)
		if err != nil {
			t.Fatal(err)
		}
		back, err := HeteroBeta(n, lambda)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-beta) > 1e-9 {
			t.Errorf("beta round trip: %v -> %v", beta, back)
		}
	}
	if got := HeteroConnProbLimit(math.Inf(1)); got != 1 {
		t.Errorf("limit(+inf) = %v", got)
	}
	if got := HeteroConnProbLimit(math.Inf(-1)); got != 0 {
		t.Errorf("limit(-inf) = %v", got)
	}
	if got := HeteroConnProbLimit(0); math.Abs(got-math.Exp(-1)) > 1e-15 {
		t.Errorf("limit(0) = %v, want e^{-1}", got)
	}
}

// TestHeteroThresholdRingSize verifies the design rule: the returned ring
// size crosses ln n / n and its predecessor does not.
func TestHeteroThresholdRingSize(t *testing.T) {
	const (
		n    = 2000
		pool = 10000
		q    = 1
	)
	classes := twoClasses(0.5, 10, 80)
	pOn := UniformOnProb(2, 0.5)
	kStar, err := HeteroThresholdRingSize(n, pool, q, classes, pOn, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := math.Log(float64(n)) / float64(n)
	at := func(ring int) float64 {
		cs := twoClasses(0.5, ring, 80)
		l, err := HeteroMinLambda(pool, q, cs, pOn)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	if at(kStar) <= target {
		t.Errorf("K*=%d does not cross the threshold", kStar)
	}
	if kStar > q && at(kStar-1) > target {
		t.Errorf("K*-1=%d already crosses the threshold", kStar-1)
	}

	// Single-class reduction: must agree with the paper's eq. (9) K*.
	uniform, err := ThresholdRingSize(n, pool, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := HeteroThresholdRingSize(n, pool, 2,
		[]keys.Class{{Mu: 1, RingSize: 2}}, UniformOnProb(1, 0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if hetero != uniform {
		t.Errorf("single-class hetero K* = %d, uniform K* = %d", hetero, uniform)
	}
}

// TestHeteroValidation covers the error paths of the heterogeneous
// formulas.
func TestHeteroValidation(t *testing.T) {
	classes := twoClasses(0.5, 10, 20)
	if _, err := HeteroMeanEdgeProbs(100, 1, nil, nil); err == nil {
		t.Error("empty classes: want error")
	}
	if _, err := HeteroMeanEdgeProbs(100, 1, classes, UniformOnProb(3, 0.5)); err == nil {
		t.Error("matrix size mismatch: want error")
	}
	asym := UniformOnProb(2, 0.5)
	asym[0][1] = 0.9
	if _, err := HeteroMeanEdgeProbs(100, 1, classes, asym); err == nil {
		t.Error("asymmetric matrix: want error")
	}
	// Ragged matrix must error, not panic (regression).
	ragged := [][]float64{{0.5, 0.5}, {0.5}}
	if _, err := HeteroMeanEdgeProbs(100, 1, classes, ragged); err == nil {
		t.Error("ragged matrix: want error")
	}
	bad := UniformOnProb(2, 1.5)
	if _, err := HeteroMeanEdgeProbs(100, 1, classes, bad); err == nil {
		t.Error("probability out of range: want error")
	}
	if _, err := HeteroBeta(1, 0.5); err == nil {
		t.Error("n < 2: want error")
	}
	if _, err := HeteroThresholdRingSize(1000, 100, 1, classes, UniformOnProb(2, 0.5), 5); err == nil {
		t.Error("class index out of range: want error")
	}
	// Unreachable threshold: vanishing channel probability.
	if _, err := HeteroThresholdRingSize(1000, 100, 1, classes, UniformOnProb(2, 0), 0); err == nil {
		t.Error("unreachable threshold: want error")
	}
}
