// Package theory implements the paper's analytical results in closed form:
//
//   - the exact link probabilities of the q-composite scheme under on/off
//     channels — s(K,P,q) from eqs. (3)–(4) and t = p·s from eq. (5);
//   - their asymptotic forms (Lemma 2);
//   - the deviation sequence α_n defined through eq. (6) and the asymptotic
//     k-connectivity probability exp(−e^{−α}/(k−1)!) of Theorem 1 (which is
//     also Lemma 7's Erdős–Rényi law and Lemma 8's minimum-degree law);
//   - the Poisson law for the number of fixed-degree nodes (Lemma 9);
//   - the design rules: the paper's eq. (9) connectivity threshold K*, and
//     the inverse problem "smallest key ring K achieving a target
//     k-connectivity probability";
//   - the coupling parameters x_n, y_n, z_n of Lemmas 3–6.
//
// Everything is deterministic, allocation-free, and validated in tests
// against the paper's published numbers (K* = 35, 41, 52, 60, 67, 78 for the
// six curves of Figure 1).
package theory

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/combin"
)

// KeyShareProb returns s(K, P, q): the probability that two sensors with
// independent uniform K-subsets of a P-key pool share at least q keys
// (eqs. (3)–(4)). It errors when K < 0 or K > P.
func KeyShareProb(pool, ring, q int) (float64, error) {
	s, err := combin.HypergeomTail(pool, ring, q)
	if err != nil {
		return 0, fmt.Errorf("theory: key share probability: %w", err)
	}
	return s, nil
}

// KeyShareProbAsymptotic returns the Lemma 2 approximation
// s(K,P,q) ≈ (K²/P)^q / q!, accurate when K = ω(1) and K²/P = o(1).
func KeyShareProbAsymptotic(pool, ring, q int) float64 {
	if pool <= 0 || q < 0 {
		return 0
	}
	ratio := float64(ring) * float64(ring) / float64(pool)
	return math.Pow(ratio, float64(q)) / combin.Factorial(q)
}

// EdgeProb returns t(K, P, q, p) = p · s(K, P, q): the probability that two
// distinct sensors have a secure, usable link in G_{n,q} (eq. (5)). The
// channel-on probability p must lie in [0, 1].
func EdgeProb(pool, ring, q int, pOn float64) (float64, error) {
	if pOn < 0 || pOn > 1 {
		return 0, fmt.Errorf("theory: channel-on probability %v outside [0,1]", pOn)
	}
	s, err := KeyShareProb(pool, ring, q)
	if err != nil {
		return 0, err
	}
	return pOn * s, nil
}

// Alpha inverts eq. (6): given the edge probability t and target level k it
// returns α_n = n·t − ln n − (k−1)·ln ln n. It requires n ≥ 3 (so that
// ln ln n is defined) and k ≥ 1.
func Alpha(n int, t float64, k int) (float64, error) {
	if n < 3 {
		return 0, fmt.Errorf("theory: alpha needs n ≥ 3, got %d", n)
	}
	if k < 1 {
		return 0, fmt.Errorf("theory: alpha needs k ≥ 1, got %d", k)
	}
	logN := math.Log(float64(n))
	return float64(n)*t - logN - float64(k-1)*math.Log(logN), nil
}

// EdgeProbForAlpha is the forward direction of eq. (6):
// t = (ln n + (k−1) ln ln n + α)/n.
func EdgeProbForAlpha(n int, alpha float64, k int) (float64, error) {
	if n < 3 {
		return 0, fmt.Errorf("theory: edge probability needs n ≥ 3, got %d", n)
	}
	if k < 1 {
		return 0, fmt.Errorf("theory: edge probability needs k ≥ 1, got %d", k)
	}
	logN := math.Log(float64(n))
	return (logN + float64(k-1)*math.Log(logN) + alpha) / float64(n), nil
}

// KConnProbLimit returns the Theorem 1 limit exp(−e^{−α}/(k−1)!) for the
// probability of k-connectivity (eq. (7)). α = ±Inf give the zero–one law
// endpoints 0 and 1 (eqs. (8b)–(8c)). k must be ≥ 1.
//
// The same expression is the k-connectivity law of Erdős–Rényi graphs
// (Lemma 7) and the minimum-degree law of G_{n,q} (Lemma 8).
func KConnProbLimit(alpha float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: k-connectivity limit needs k ≥ 1, got %d", k)
	}
	if math.IsInf(alpha, 1) {
		return 1, nil
	}
	if math.IsInf(alpha, -1) {
		return 0, nil
	}
	return math.Exp(-math.Exp(-alpha) / combin.Factorial(k-1)), nil
}

// KConnProbability composes eqs. (5)–(7): the asymptotic probability that
// G_{n,q}(n, K, P, p) is k-connected for the given finite parameters.
func KConnProbability(n, pool, ring, q int, pOn float64, k int) (float64, error) {
	t, err := EdgeProb(pool, ring, q, pOn)
	if err != nil {
		return 0, err
	}
	alpha, err := Alpha(n, t, k)
	if err != nil {
		return 0, err
	}
	return KConnProbLimit(alpha, k)
}

// MinDegreeProbLimit returns Lemma 8's limit for
// P[minimum degree ≥ k] — identical to the k-connectivity limit.
func MinDegreeProbLimit(alpha float64, k int) (float64, error) {
	return KConnProbLimit(alpha, k)
}

// PoissonNodeCountMean returns λ_{n,h} = n·(h!)^{−1}·(n·t)^h·e^{−n·t}, the
// asymptotic Poisson mean for the number of degree-h nodes in G_{n,q}
// (Lemma 9). h must be ≥ 0.
func PoissonNodeCountMean(n int, t float64, h int) (float64, error) {
	if h < 0 {
		return 0, fmt.Errorf("theory: degree h must be ≥ 0, got %d", h)
	}
	nt := float64(n) * t
	// Work in logs to survive large n·t.
	logLambda := math.Log(float64(n)) - combin.LogFactorial(h) +
		float64(h)*math.Log(nt) - nt
	return math.Exp(logLambda), nil
}

// ExpectedDegree returns (n−1)·t, the mean node degree of G_{n,q}.
func ExpectedDegree(n int, t float64) float64 {
	if n < 1 {
		return 0
	}
	return float64(n-1) * t
}

// ThresholdRingSize returns the paper's eq. (9) design rule: the minimum
// integer K* with t(K*, P, q, p) > ln n / n, i.e. the smallest key ring
// size that puts the secure WSN above the connectivity threshold.
// It errors when no K ≤ P satisfies the inequality.
func ThresholdRingSize(n, pool, q int, pOn float64) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("theory: threshold needs n ≥ 2, got %d", n)
	}
	target := math.Log(float64(n)) / float64(n)
	k, err := minRingSizeForEdgeProb(pool, q, pOn, target, true)
	if err != nil {
		return 0, fmt.Errorf("theory: connectivity threshold: %w", err)
	}
	return k, nil
}

// ThresholdRingSizeAsymptotic solves eq. (9) with s replaced by its Lemma 2
// asymptotic (K²/P)^q/q!: the smallest K with p·(K²/P)^q/q! > ln n / n.
//
// The paper's published K* values (35, 41, 52, 60, 67, 78 for Figure 1)
// track this asymptotic computation — it reproduces the q = 2 row exactly
// and the q = 3 row within +1 — whereas evaluating the exact sum of eq. (5)
// as the text prescribes yields slightly larger thresholds (see
// ThresholdRingSize and EXPERIMENTS.md): at K ≈ 35–88 and P = 10⁴ the
// quantity K²/P is 0.1–0.6, not yet "small", and the asymptotic
// overestimates s.
func ThresholdRingSizeAsymptotic(n, pool, q int, pOn float64) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("theory: threshold needs n ≥ 2, got %d", n)
	}
	if pool < 1 {
		return 0, fmt.Errorf("theory: pool size %d must be positive", pool)
	}
	if pOn <= 0 {
		return 0, fmt.Errorf("theory: channel-on probability %v must be positive", pOn)
	}
	if q < 1 {
		return 0, fmt.Errorf("theory: q must be ≥ 1, got %d", q)
	}
	target := math.Log(float64(n)) / float64(n)
	// Invert p·(K²/P)^q/q! > target in closed form, then fix up rounding.
	k2 := float64(pool) * math.Pow(target*combin.Factorial(q)/pOn, 1/float64(q))
	k := int(math.Floor(math.Sqrt(k2)))
	for ; k <= pool+1; k++ {
		if pOn*KeyShareProbAsymptotic(pool, k, q) > target {
			return k, nil
		}
	}
	return 0, fmt.Errorf("theory: no asymptotic threshold ring size up to pool %d", pool)
}

// RingSizeForEdgeProb returns the minimum K with t(K,P,q,p) ≥ target.
func RingSizeForEdgeProb(pool, q int, pOn, target float64) (int, error) {
	return minRingSizeForEdgeProb(pool, q, pOn, target, false)
}

// minRingSizeForEdgeProb binary-searches the smallest K whose edge
// probability exceeds (strict=true) or reaches (strict=false) the target.
// t(K, P, q, p) is non-decreasing in K, which makes the search valid; the
// monotonicity is itself verified by property tests.
func minRingSizeForEdgeProb(pool, q int, pOn, target float64, strict bool) (int, error) {
	if pool < 1 {
		return 0, fmt.Errorf("pool size %d must be positive", pool)
	}
	if pOn <= 0 {
		return 0, fmt.Errorf("channel-on probability %v must be positive", pOn)
	}
	ok := func(k int) (bool, error) {
		t, err := EdgeProb(pool, k, q, pOn)
		if err != nil {
			return false, err
		}
		if strict {
			return t > target, nil
		}
		return t >= target, nil
	}
	hit, err := ok(pool)
	if err != nil {
		return 0, err
	}
	if !hit {
		return 0, fmt.Errorf("no ring size up to pool %d reaches edge probability %v", pool, target)
	}
	lo, hi := 0, pool // invariant: !ok(lo), ok(hi)
	if hit0, err := ok(0); err != nil {
		return 0, err
	} else if hit0 {
		return 0, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		hitMid, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if hitMid {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// PoolSizeForKeyShareProb returns the largest pool size P with
// s(K, P, q) ≥ target — the dual design rule used when comparing schemes at
// matched link probability (Chan et al.'s resilience methodology: to compare
// q = 1, 2, 3 fairly, each scheme's pool is sized so all have the same
// probability of two sensors sharing enough keys). s(K, P, q) is
// non-increasing in P, which makes the binary search valid.
func PoolSizeForKeyShareProb(ring, q int, target float64) (int, error) {
	if q < 1 || ring < q {
		return 0, fmt.Errorf("theory: invalid scheme parameters ring=%d q=%d", ring, q)
	}
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("theory: target share probability %v must be in (0,1]", target)
	}
	ok := func(pool int) (bool, error) {
		s, err := KeyShareProb(pool, ring, q)
		if err != nil {
			return false, err
		}
		return s >= target, nil
	}
	// At P = ring the overlap is full: s = 1 ≥ target. Grow an upper bound
	// where the target fails.
	hi := ring * 2
	for {
		hit, err := ok(hi)
		if err != nil {
			return 0, err
		}
		if !hit {
			break
		}
		if hi > 1<<40 {
			return 0, fmt.Errorf("theory: pool size for target %v diverges", target)
		}
		hi *= 2
	}
	lo := ring // invariant: ok(lo), !ok(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		hit, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if hit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// AlphaForTarget inverts the Theorem 1 limit: the α* with
// exp(−e^{−α*}/(k−1)!) = target, i.e. α* = −ln(−(k−1)!·ln target).
// target must lie strictly in (0, 1).
func AlphaForTarget(k int, target float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: alpha target needs k ≥ 1, got %d", k)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("theory: target probability %v must be in (0,1)", target)
	}
	return -math.Log(-combin.Factorial(k-1) * math.Log(target)), nil
}

// DesignRingSize returns the smallest key ring size K whose asymptotic
// k-connectivity probability (Theorem 1 applied at finite n) reaches the
// target — the "precise design guideline" the paper motivates: sensors have
// little memory, so K should be as small as the theory allows.
func DesignRingSize(n, pool, q int, pOn float64, k int, target float64) (int, error) {
	alphaStar, err := AlphaForTarget(k, target)
	if err != nil {
		return 0, err
	}
	tStar, err := EdgeProbForAlpha(n, alphaStar, k)
	if err != nil {
		return 0, err
	}
	ring, err := RingSizeForEdgeProb(pool, q, pOn, tStar)
	if err != nil {
		return 0, fmt.Errorf("theory: design ring size: %w", err)
	}
	return ring, nil
}

// CouplingX returns x_n = (K/P)·(1 − sqrt(3·ln n / K)), the binomial
// q-intersection probability of Lemma 5 (eq. (66)) under which
// H_q(n, x_n, P) ⊑ G_q(n, K, P) holds w.h.p. Negative values (K too small
// for the coupling regime) are clamped to 0.
func CouplingX(n, pool, ring int) float64 {
	if pool <= 0 || ring <= 0 || n < 2 {
		return 0
	}
	x := float64(ring) / float64(pool) *
		(1 - math.Sqrt(3*math.Log(float64(n))/float64(ring)))
	if x < 0 {
		return 0
	}
	return x
}

// CouplingY returns the Lemma 6 (eq. (72)) Erdős–Rényi edge probability
// y_n = (P·x²)^q / q! under which G(n, y_n) ⊑ H_q(n, x, P) holds w.h.p.
func CouplingY(pool int, x float64, q int) float64 {
	if pool <= 0 || x <= 0 || q < 1 {
		return 0
	}
	return math.Pow(float64(pool)*x*x, float64(q)) / combin.Factorial(q)
}

// CouplingZ returns z_n = y_n·p, the Erdős–Rényi edge probability of
// Lemma 3 (eq. (58)): G(n, z_n) ⊑ G_{n,q}(n, K, P, p) w.h.p.
func CouplingZ(n, pool, ring, q int, pOn float64) float64 {
	return CouplingY(pool, CouplingX(n, pool, ring), q) * pOn
}
