package theory

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/combin"
	"github.com/secure-wsn/qcomposite/internal/keys"
)

// Heterogeneous connectivity theory, after Eletreby and Yağan:
//
//   - "Connectivity of wireless sensor networks secured by heterogeneous key
//     predistribution under an on/off channel model" (arXiv:1604.00460):
//     sensors belong to class i with probability μ_i and draw K_i keys; the
//     class-pair secure-link probabilities are t_ij = α·s(K_i, K_j, P, q)
//     and the connectivity threshold is driven by λ_min, the smallest
//     per-class mean edge probability — scale λ_min = (ln n + β_n)/n and the
//     network is connected w.h.p. iff β_n → ∞ (Theorem 1's zero–one law).
//   - "Secure connectivity of heterogeneous wireless sensor networks under a
//     heterogeneous on/off channel model" (arXiv:1908.09826): the channel-on
//     probability becomes the class-pair matrix α_ij; the same scaling holds
//     with t_ij = α_ij·s_ij.
//
// The functions below compute those quantities exactly for finite
// parameters; the exp(−e^{−β}) limit is the Poisson law for isolated
// minimal-class sensors, whose ±∞ endpoints recover the zero–one law.

// HeteroKeyShareProb returns s(K₁, K₂, P, q): the probability that two
// sensors drawing independent uniform K₁- and K₂-subsets of a P-key pool
// share at least q keys — the unequal-ring generalisation of eqs. (3)–(4).
func HeteroKeyShareProb(pool, ring1, ring2, q int) (float64, error) {
	s, err := combin.HypergeomTail2(pool, ring1, ring2, q)
	if err != nil {
		return 0, fmt.Errorf("theory: heterogeneous key share probability: %w", err)
	}
	return s, nil
}

// UniformOnProb returns the classes×classes on-probability matrix with every
// entry p — the uniform on/off channel written in class form, for pairing
// heterogeneous keys with the arXiv:1604.00460 (homogeneous channel) model.
// It matches channel.UniformHeterOnOff(classes, p).P; theory cannot import
// channel (channel → randgraph, whose tests import theory).
func UniformOnProb(classes int, p float64) [][]float64 {
	m := make([][]float64, classes)
	for i := range m {
		m[i] = make([]float64, classes)
		for j := range m[i] {
			m[i][j] = p
		}
	}
	return m
}

// validateHetero checks the shared preconditions of the heterogeneous
// formulas: a non-empty class list and a square symmetric on-probability
// matrix over the same classes with entries in [0, 1]. It mirrors
// channel.HeterOnOff.Validate (the matrix is that channel model), which
// theory cannot import — keep the two in sync.
func validateHetero(classes []keys.Class, pOn [][]float64) error {
	if len(classes) == 0 {
		return fmt.Errorf("theory: heterogeneous model needs at least one class")
	}
	if len(pOn) != len(classes) {
		return fmt.Errorf("theory: on-probability matrix has %d rows for %d classes", len(pOn), len(classes))
	}
	// Row lengths first: the symmetry check below reads across rows, so a
	// ragged matrix must fail here, not panic there.
	for i, row := range pOn {
		if len(row) != len(classes) {
			return fmt.Errorf("theory: on-probability matrix row %d has %d entries, want %d", i, len(row), len(classes))
		}
	}
	for i, row := range pOn {
		for j, p := range row {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("theory: on probability [%d][%d]=%v outside [0,1]", i, j, p)
			}
			if pOn[j][i] != p {
				return fmt.Errorf("theory: on-probability matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// HeteroEdgeProbs returns the class-pair secure-link probability matrix
// t_ij = α_ij · s(K_i, K_j, P, q): the probability that a class-i and a
// class-j sensor have a secure, usable link.
func HeteroEdgeProbs(pool, q int, classes []keys.Class, pOn [][]float64) ([][]float64, error) {
	if err := validateHetero(classes, pOn); err != nil {
		return nil, err
	}
	t := make([][]float64, len(classes))
	for i := range classes {
		t[i] = make([]float64, len(classes))
	}
	for i := range classes {
		for j := i; j < len(classes); j++ {
			s, err := HeteroKeyShareProb(pool, classes[i].RingSize, classes[j].RingSize, q)
			if err != nil {
				return nil, err
			}
			t[i][j] = pOn[i][j] * s
			t[j][i] = t[i][j]
		}
	}
	return t, nil
}

// HeteroMeanEdgeProbs returns λ_i = Σ_j μ_j·t_ij: the mean edge probability
// of a class-i sensor toward a uniformly random peer. The smallest entry
// drives the connectivity threshold (the minimal class is the bottleneck of
// Eletreby–Yağan Theorem 1).
func HeteroMeanEdgeProbs(pool, q int, classes []keys.Class, pOn [][]float64) ([]float64, error) {
	t, err := HeteroEdgeProbs(pool, q, classes, pOn)
	if err != nil {
		return nil, err
	}
	lambda := make([]float64, len(classes))
	for i := range classes {
		for j, c := range classes {
			lambda[i] += c.Mu * t[i][j]
		}
	}
	return lambda, nil
}

// HeteroMinLambda returns min_i λ_i, the scaling quantity of the
// heterogeneous zero–one law.
func HeteroMinLambda(pool, q int, classes []keys.Class, pOn [][]float64) (float64, error) {
	lambda, err := HeteroMeanEdgeProbs(pool, q, classes, pOn)
	if err != nil {
		return 0, err
	}
	min := lambda[0]
	for _, l := range lambda[1:] {
		if l < min {
			min = l
		}
	}
	return min, nil
}

// HeteroBeta inverts the Theorem 1 scaling λ_min = (ln n + β_n)/n:
// β_n = n·λ_min − ln n. It requires n ≥ 2.
func HeteroBeta(n int, lambdaMin float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("theory: heterogeneous beta needs n ≥ 2, got %d", n)
	}
	return float64(n)*lambdaMin - math.Log(float64(n)), nil
}

// HeteroLambdaForBeta is the forward direction of the scaling:
// λ_min = (ln n + β)/n.
func HeteroLambdaForBeta(n int, beta float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("theory: heterogeneous scaling needs n ≥ 2, got %d", n)
	}
	return (math.Log(float64(n)) + beta) / float64(n), nil
}

// HeteroConnProbLimit returns exp(−e^{−β}), the Poisson limit for the
// probability that no minimal-class sensor is isolated. Its β → ±∞
// endpoints 0 and 1 are exactly the zero–one law of Eletreby–Yağan
// Theorem 1; at finite β it is the smooth transition curve the simulations
// trace (the heterogeneous analogue of eq. (7) at k = 1).
func HeteroConnProbLimit(beta float64) float64 {
	if math.IsInf(beta, 1) {
		return 1
	}
	if math.IsInf(beta, -1) {
		return 0
	}
	return math.Exp(-math.Exp(-beta))
}

// HeteroKConnBeta inverts the k-connectivity scaling of the heterogeneous
// model (Eletreby–Yağan, arXiv:1604.00460 §IV): with
// λ_min = (ln n + (k−1)·ln ln n + β_n)/n, it returns
// β_n = n·λ_min − ln n − (k−1)·ln ln n. k = 1 recovers HeteroBeta. It
// requires n ≥ 3 (so ln ln n is defined; n ≥ 2 suffices at k = 1) and
// k ≥ 1.
func HeteroKConnBeta(n int, lambdaMin float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: heterogeneous k-connectivity beta needs k ≥ 1, got %d", k)
	}
	if k == 1 {
		return HeteroBeta(n, lambdaMin)
	}
	if n < 3 {
		return 0, fmt.Errorf("theory: heterogeneous k-connectivity beta needs n ≥ 3, got %d", n)
	}
	logN := math.Log(float64(n))
	return float64(n)*lambdaMin - logN - float64(k-1)*math.Log(logN), nil
}

// HeteroKConnProbLimit returns exp(−e^{−β}/(k−1)!), the k-connectivity
// analogue of HeteroConnProbLimit: the Poisson limit for the probability
// that no minimal-class sensor has degree below k, whose β → ±∞ endpoints
// are the heterogeneous zero–one law at level k (the §IV generalisation of
// Theorem 1; at k = 1 it is exactly HeteroConnProbLimit). k must be ≥ 1.
func HeteroKConnProbLimit(beta float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("theory: heterogeneous k-connectivity limit needs k ≥ 1, got %d", k)
	}
	if math.IsInf(beta, 1) {
		return 1, nil
	}
	if math.IsInf(beta, -1) {
		return 0, nil
	}
	return math.Exp(-math.Exp(-beta) / combin.Factorial(k-1)), nil
}

// HeteroKConnProbability composes the finite-parameter k-connectivity
// pipeline: class-pair edge probabilities → minimal mean λ → level-k
// deviation β → the asymptotic k-connectivity probability. It is the theory
// overlay of the heterogeneous k-connectivity cross sweep (cmd/hetero
// -kconn).
func HeteroKConnProbability(n, pool, q int, classes []keys.Class, pOn [][]float64, k int) (float64, error) {
	lambdaMin, err := HeteroMinLambda(pool, q, classes, pOn)
	if err != nil {
		return 0, err
	}
	beta, err := HeteroKConnBeta(n, lambdaMin, k)
	if err != nil {
		return 0, err
	}
	return HeteroKConnProbLimit(beta, k)
}

// HeteroConnProbability composes the finite-parameter pipeline: class-pair
// edge probabilities → minimal mean λ → deviation β → the asymptotic
// connectivity probability.
func HeteroConnProbability(n, pool, q int, classes []keys.Class, pOn [][]float64) (float64, error) {
	lambdaMin, err := HeteroMinLambda(pool, q, classes, pOn)
	if err != nil {
		return 0, err
	}
	beta, err := HeteroBeta(n, lambdaMin)
	if err != nil {
		return 0, err
	}
	return HeteroConnProbLimit(beta), nil
}

// HeteroThresholdRingSize is the connectivity-threshold design rule for the
// heterogeneous scheme: the smallest ring size for class idx such that the
// mixture's minimal mean edge probability λ_min exceeds ln n / n (the
// heterogeneous analogue of the paper's eq. (9); growing any class's ring
// cannot decrease λ_min, which makes the binary search valid). It errors
// when no ring size up to the pool reaches the threshold.
func HeteroThresholdRingSize(n, pool, q int, classes []keys.Class, pOn [][]float64, idx int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("theory: threshold needs n ≥ 2, got %d", n)
	}
	if q < 1 {
		return 0, fmt.Errorf("theory: q must be ≥ 1, got %d", q)
	}
	if idx < 0 || idx >= len(classes) {
		return 0, fmt.Errorf("theory: class index %d out of range [0,%d)", idx, len(classes))
	}
	if err := validateHetero(classes, pOn); err != nil {
		return 0, err
	}
	target := math.Log(float64(n)) / float64(n)
	trial := append([]keys.Class(nil), classes...)
	ok := func(ring int) (bool, error) {
		trial[idx].RingSize = ring
		lambdaMin, err := HeteroMinLambda(pool, q, trial, pOn)
		if err != nil {
			return false, err
		}
		return lambdaMin > target, nil
	}
	hit, err := ok(pool)
	if err != nil {
		return 0, err
	}
	if !hit {
		return 0, fmt.Errorf("theory: no class-%d ring size up to pool %d crosses the connectivity threshold", idx, pool)
	}
	lo, hi := q-1, pool // invariant: !ok(lo) — overlap below q never links — and ok(hi)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		hitMid, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if hitMid {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
