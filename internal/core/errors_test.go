package core

import (
	"context"
	"math"
	"testing"
)

// invalidModel fails Validate (ring above pool).
var invalidModel = Model{N: 100, K: 200, P: 100, Q: 2, ChannelOn: 0.5}

func TestErrorPropagationThroughFacade(t *testing.T) {
	ctx := context.Background()
	if _, err := invalidModel.KeyShareProbability(); err == nil {
		t.Error("KeyShareProbability on invalid model: want error")
	}
	if _, err := invalidModel.EdgeProbability(); err == nil {
		t.Error("EdgeProbability on invalid model: want error")
	}
	if _, err := invalidModel.Alpha(1); err == nil {
		t.Error("Alpha on invalid model: want error")
	}
	if _, err := invalidModel.TheoreticalKConnProb(1); err == nil {
		t.Error("TheoreticalKConnProb on invalid model: want error")
	}
	if _, err := invalidModel.TheoreticalMinDegProb(1); err == nil {
		t.Error("TheoreticalMinDegProb on invalid model: want error")
	}
	if _, err := invalidModel.ExpectedDegree(); err == nil {
		t.Error("ExpectedDegree on invalid model: want error")
	}
	if _, err := invalidModel.PoissonDegreeCountMean(0); err == nil {
		t.Error("PoissonDegreeCountMean on invalid model: want error")
	}
	if _, err := invalidModel.NewSampler(); err == nil {
		t.Error("NewSampler on invalid model: want error")
	}
	if _, err := invalidModel.EstimateKConnectivity(ctx, 1, EstimateConfig{Trials: 5, Seed: 1}); err == nil {
		t.Error("EstimateKConnectivity on invalid model: want error")
	}
	if _, err := invalidModel.EstimateMinDegreeAtLeast(ctx, 1, EstimateConfig{Trials: 5, Seed: 1}); err == nil {
		t.Error("EstimateMinDegreeAtLeast on invalid model: want error")
	}
	if _, err := invalidModel.DegreeCountDistribution(ctx, 1, EstimateConfig{Trials: 5, Seed: 1}); err == nil {
		t.Error("DegreeCountDistribution on invalid model: want error")
	}
}

func TestAlphaSmallNErrors(t *testing.T) {
	m := Model{N: 2, K: 5, P: 100, Q: 1, ChannelOn: 1}
	if _, err := m.Alpha(1); err == nil {
		t.Error("Alpha with n=2: want error (needs n ≥ 3)")
	}
	if _, err := m.TheoreticalKConnProb(1); err == nil {
		t.Error("TheoreticalKConnProb with n=2: want error")
	}
}

func TestPoissonDegreeCountMean(t *testing.T) {
	m := Model{N: 1000, K: 43, P: 10000, Q: 2, ChannelOn: 0.5}
	tProb, err := m.EdgeProbability()
	if err != nil {
		t.Fatal(err)
	}
	// λ_0 = n·e^{−n·t}.
	got, err := m.PoissonDegreeCountMean(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * math.Exp(-1000*tProb)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("λ_0 = %v, want %v", got, want)
	}
	// λ sums over h to ≈ n (the expected number of nodes!).
	sum := 0.0
	for h := 0; h < 100; h++ {
		l, err := m.PoissonDegreeCountMean(h)
		if err != nil {
			t.Fatal(err)
		}
		sum += l
	}
	if math.Abs(sum-1000) > 1 {
		t.Errorf("Σ_h λ_{n,h} = %v, want ≈ n = 1000", sum)
	}
	if _, err := m.PoissonDegreeCountMean(-1); err == nil {
		t.Error("negative h: want error")
	}
}

func TestEstimateConfigValidationPropagates(t *testing.T) {
	m := Model{N: 50, K: 10, P: 100, Q: 1, ChannelOn: 0.5}
	if _, err := m.EstimateConnectivity(context.Background(), EstimateConfig{Trials: 0}); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := m.EstimateKConnectivity(context.Background(), 1, EstimateConfig{Trials: -1}); err == nil {
		t.Error("negative trials: want error")
	}
}
