// Package core is the library's façade for the paper's primary
// contribution: k-connectivity analysis of secure wireless sensor networks
// under q-composite key predistribution with on/off channels.
//
// A Model fixes the five parameters (n, K, P, q, p) of the random graph
// G_{n,q}(n, K_n, P_n, p_n) = G_q(n, K_n, P_n) ∩ G(n, p_n) from Section II
// of the paper, and exposes:
//
//   - the exact finite-n link probabilities s and t (eqs. (3)–(5));
//   - Theorem 1's asymptotic k-connectivity probability and the α_n
//     deviation it is driven by (eqs. (6)–(8));
//   - Monte Carlo estimation of P[k-connected], P[min degree ≥ k], and
//     degree-count distributions on sampled topologies;
//   - the design rules: the eq. (9) connectivity threshold K* and minimum
//     ring sizes achieving a target k-connectivity probability.
//
// Estimates run across a worker pool with per-trial seed streams, so every
// number is reproducible from (Model, Seed) alone.
package core

import (
	"context"
	"fmt"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

// Model is the parameterisation of the secure WSN graph
// G_{n,q}(n, K, P, p).
type Model struct {
	// N is the number of sensors.
	N int
	// K is the key ring size K_n.
	K int
	// P is the key pool size P_n.
	P int
	// Q is the required key overlap q ≥ 1.
	Q int
	// ChannelOn is the on/off channel probability p_n ∈ (0, 1].
	ChannelOn float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	switch {
	case m.N < 0:
		return fmt.Errorf("core: negative sensor count %d", m.N)
	case m.Q < 1:
		return fmt.Errorf("core: overlap requirement q=%d must be ≥ 1", m.Q)
	case m.K < m.Q:
		return fmt.Errorf("core: ring size %d below overlap requirement q=%d", m.K, m.Q)
	case m.P < m.K:
		return fmt.Errorf("core: pool size %d below ring size %d", m.P, m.K)
	case m.ChannelOn <= 0 || m.ChannelOn > 1:
		return fmt.Errorf("core: channel-on probability %v outside (0,1]", m.ChannelOn)
	}
	return nil
}

// String renders the model in the paper's notation.
func (m Model) String() string {
	return fmt.Sprintf("G_{n,%d}(n=%d, K=%d, P=%d, p=%g)", m.Q, m.N, m.K, m.P, m.ChannelOn)
}

// KeyShareProbability returns s(K, P, q) — eqs. (3)–(4).
func (m Model) KeyShareProbability() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return theory.KeyShareProb(m.P, m.K, m.Q)
}

// EdgeProbability returns t(K, P, q, p) = p·s — eq. (5).
func (m Model) EdgeProbability() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return theory.EdgeProb(m.P, m.K, m.Q, m.ChannelOn)
}

// Alpha returns the deviation α_n of eq. (6) for the given k.
func (m Model) Alpha(k int) (float64, error) {
	t, err := m.EdgeProbability()
	if err != nil {
		return 0, err
	}
	return theory.Alpha(m.N, t, k)
}

// TheoreticalKConnProb returns Theorem 1's asymptotic probability that the
// model graph is k-connected (eq. (7)) evaluated at the finite parameters.
func (m Model) TheoreticalKConnProb(k int) (float64, error) {
	alpha, err := m.Alpha(k)
	if err != nil {
		return 0, err
	}
	return theory.KConnProbLimit(alpha, k)
}

// TheoreticalMinDegProb returns Lemma 8's asymptotic probability that the
// minimum degree is at least k — the same limit as TheoreticalKConnProb.
func (m Model) TheoreticalMinDegProb(k int) (float64, error) {
	alpha, err := m.Alpha(k)
	if err != nil {
		return 0, err
	}
	return theory.MinDegreeProbLimit(alpha, k)
}

// ExpectedDegree returns the mean node degree (n−1)·t.
func (m Model) ExpectedDegree() (float64, error) {
	t, err := m.EdgeProbability()
	if err != nil {
		return 0, err
	}
	return theory.ExpectedDegree(m.N, t), nil
}

// PoissonDegreeCountMean returns λ_{n,h}, Lemma 9's asymptotic mean number
// of degree-h nodes.
func (m Model) PoissonDegreeCountMean(h int) (float64, error) {
	t, err := m.EdgeProbability()
	if err != nil {
		return 0, err
	}
	return theory.PoissonNodeCountMean(m.N, t, h)
}

// NewSampler returns a reusable sampler for the model graph.
func (m Model) NewSampler() (*randgraph.QSampler, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return randgraph.NewQSampler(m.N, m.K, m.P, m.Q)
}

// Sample draws one topology G_{n,q}(n, K, P, p).
func (m Model) Sample(r *rng.Rand) (*graph.Undirected, error) {
	s, err := m.NewSampler()
	if err != nil {
		return nil, err
	}
	return s.SampleComposite(r, m.ChannelOn)
}

// EstimateConfig controls Monte Carlo estimation.
type EstimateConfig struct {
	// Trials is the number of sampled topologies (the paper uses 500).
	Trials int
	// Workers bounds parallelism; 0 = all CPUs.
	Workers int
	// Seed makes the estimate reproducible.
	Seed uint64
}

// samplerPool shares per-worker samplers across trials of one estimate to
// avoid re-allocating the counting buffers every trial.
type samplerPool struct {
	pool sync.Pool
	m    Model
}

func newSamplerPool(m Model) *samplerPool {
	return &samplerPool{m: m}
}

func (p *samplerPool) get() (*randgraph.QSampler, error) {
	if s, ok := p.pool.Get().(*randgraph.QSampler); ok && s != nil {
		return s, nil
	}
	return p.m.NewSampler()
}

func (p *samplerPool) put(s *randgraph.QSampler) { p.pool.Put(s) }

// EstimateKConnectivity estimates P[G_{n,q} is k-connected] by sampling
// cfg.Trials topologies (the empirical quantity of the paper's Figure 1,
// generalised to any k).
func (m Model) EstimateKConnectivity(ctx context.Context, k int, cfg EstimateConfig) (stats.Proportion, error) {
	if err := m.Validate(); err != nil {
		return stats.Proportion{}, err
	}
	pool := newSamplerPool(m)
	return montecarlo.EstimateProportion(ctx, montecarlo.Config(cfg),
		func(trial int, r *rng.Rand) (bool, error) {
			s, err := pool.get()
			if err != nil {
				return false, err
			}
			defer pool.put(s)
			g, err := s.SampleComposite(r, m.ChannelOn)
			if err != nil {
				return false, err
			}
			return graphalgo.IsKConnected(g, k), nil
		})
}

// EstimateConnectivity is EstimateKConnectivity with k = 1: the empirical
// probability plotted in Figure 1.
func (m Model) EstimateConnectivity(ctx context.Context, cfg EstimateConfig) (stats.Proportion, error) {
	return m.EstimateKConnectivity(ctx, 1, cfg)
}

// EstimateMinDegreeAtLeast estimates P[minimum degree ≥ k] (Lemma 8's
// quantity), the upper-bounding property in the paper's proof strategy.
func (m Model) EstimateMinDegreeAtLeast(ctx context.Context, k int, cfg EstimateConfig) (stats.Proportion, error) {
	if err := m.Validate(); err != nil {
		return stats.Proportion{}, err
	}
	pool := newSamplerPool(m)
	return montecarlo.EstimateProportion(ctx, montecarlo.Config(cfg),
		func(trial int, r *rng.Rand) (bool, error) {
			s, err := pool.get()
			if err != nil {
				return false, err
			}
			defer pool.put(s)
			g, err := s.SampleComposite(r, m.ChannelOn)
			if err != nil {
				return false, err
			}
			return g.MinDegree() >= k, nil
		})
}

// DegreeCountDistribution samples the number of degree-h nodes across
// cfg.Trials topologies and returns the per-trial counts (Lemma 9's
// asymptotically-Poisson statistic).
func (m Model) DegreeCountDistribution(ctx context.Context, h int, cfg EstimateConfig) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if h < 0 {
		return nil, fmt.Errorf("core: negative degree %d", h)
	}
	pool := newSamplerPool(m)
	vals, err := montecarlo.Collect(ctx, montecarlo.Config(cfg),
		func(trial int, r *rng.Rand) (float64, error) {
			s, err := pool.get()
			if err != nil {
				return 0, err
			}
			defer pool.put(s)
			g, err := s.SampleComposite(r, m.ChannelOn)
			if err != nil {
				return 0, err
			}
			count := 0
			for v := int32(0); int(v) < g.N(); v++ {
				if g.Degree(v) == h {
					count++
				}
			}
			return float64(count), nil
		})
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(vals))
	for i, v := range vals {
		counts[i] = int(v)
	}
	return counts, nil
}

// ThresholdK returns the paper's eq. (9) design threshold: the minimum ring
// size K* with t(K*, P, q, p) > ln n / n, computed with the exact edge
// probability.
func ThresholdK(n, pool, q int, pOn float64) (int, error) {
	return theory.ThresholdRingSize(n, pool, q, pOn)
}

// ThresholdKAsymptotic is ThresholdK with s replaced by its Lemma 2
// asymptotic — the computation matching the paper's published values.
func ThresholdKAsymptotic(n, pool, q int, pOn float64) (int, error) {
	return theory.ThresholdRingSizeAsymptotic(n, pool, q, pOn)
}

// DesignK returns the smallest ring size whose Theorem 1 k-connectivity
// probability reaches target — the paper's "precise design guideline".
func DesignK(n, pool, q int, pOn float64, k int, target float64) (int, error) {
	return theory.DesignRingSize(n, pool, q, pOn, k, target)
}
