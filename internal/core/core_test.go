package core

import (
	"context"
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

// paperModel is Figure 1's parameterisation at a K above the q=2, p=0.5
// threshold.
var paperModel = Model{N: 1000, K: 50, P: 10000, Q: 2, ChannelOn: 0.5}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Model
		ok   bool
	}{
		{name: "paper", m: paperModel, ok: true},
		{name: "negative n", m: Model{N: -1, K: 5, P: 10, Q: 1, ChannelOn: 1}, ok: false},
		{name: "q zero", m: Model{N: 10, K: 5, P: 10, Q: 0, ChannelOn: 1}, ok: false},
		{name: "K below q", m: Model{N: 10, K: 1, P: 10, Q: 2, ChannelOn: 1}, ok: false},
		{name: "P below K", m: Model{N: 10, K: 11, P: 10, Q: 1, ChannelOn: 1}, ok: false},
		{name: "p zero", m: Model{N: 10, K: 5, P: 10, Q: 1, ChannelOn: 0}, ok: false},
		{name: "p above one", m: Model{N: 10, K: 5, P: 10, Q: 1, ChannelOn: 1.5}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestStringNotation(t *testing.T) {
	got := paperModel.String()
	want := "G_{n,2}(n=1000, K=50, P=10000, p=0.5)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestProbabilityChain(t *testing.T) {
	s, err := paperModel.KeyShareProbability()
	if err != nil {
		t.Fatal(err)
	}
	tp, err := paperModel.EdgeProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-0.5*s) > 1e-15 {
		t.Errorf("t = %v, want p·s = %v", tp, 0.5*s)
	}
	deg, err := paperModel.ExpectedDegree()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deg-999*tp) > 1e-12 {
		t.Errorf("ExpectedDegree = %v, want %v", deg, 999*tp)
	}
	// Theoretical probabilities are proper probabilities and ordered in k
	// at fixed parameters (larger k is harder).
	prev := 2.0
	for k := 1; k <= 3; k++ {
		p, err := paperModel.TheoreticalKConnProb(k)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Errorf("P[%d-conn] = %v", k, p)
		}
		if p >= prev {
			t.Errorf("P[%d-conn] = %v not decreasing in k", k, p)
		}
		md, err := paperModel.TheoreticalMinDegProb(k)
		if err != nil {
			t.Fatal(err)
		}
		if md != p {
			t.Errorf("min-degree limit %v != k-conn limit %v", md, p)
		}
		prev = p
	}
}

func TestSampleHasModelParameters(t *testing.T) {
	m := Model{N: 200, K: 20, P: 500, Q: 2, ChannelOn: 0.7}
	g, err := m.Sample(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Errorf("sample N = %d", g.N())
	}
	if _, err := (Model{N: -1, K: 5, P: 10, Q: 1, ChannelOn: 1}).Sample(rng.New(1)); err == nil {
		t.Error("invalid model Sample: want error")
	}
}

func TestEstimateConnectivityAgainstTheory(t *testing.T) {
	// A mid-threshold point where the asymptotic probability is far from 0
	// and 1: the empirical estimate must land near it. (n=1000 keeps the
	// asymptotics honest but each trial cheap enough for CI.)
	m := Model{N: 1000, K: 45, P: 10000, Q: 2, ChannelOn: 0.5}
	want, err := m.TheoreticalKConnProb(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EstimateConnectivity(context.Background(), EstimateConfig{Trials: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := got.WilsonInterval(3.5) // generous band: finite-n bias + MC noise
	if want < lo-0.12 || want > hi+0.12 {
		t.Errorf("empirical %v (CI [%v,%v]) far from theoretical %v", got.Estimate(), lo, hi, want)
	}
}

func TestEstimateKConnectivityMonotoneInK(t *testing.T) {
	m := Model{N: 300, K: 30, P: 3000, Q: 2, ChannelOn: 0.8}
	ctx := context.Background()
	cfg := EstimateConfig{Trials: 60, Seed: 2}
	prev := stats.Proportion{Successes: 61, Trials: 60} // sentinel above any estimate
	for k := 1; k <= 3; k++ {
		got, err := m.EstimateKConnectivity(ctx, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Trials != 60 {
			t.Fatalf("k=%d trials = %d", k, got.Trials)
		}
		if got.Successes > prev.Successes {
			t.Errorf("P[%d-conn] successes %d exceed P[%d-conn] %d", k, got.Successes, k-1, prev.Successes)
		}
		prev = got
	}
}

func TestEstimateMinDegreeDominatesKConnectivity(t *testing.T) {
	// Min degree ≥ k is necessary for k-connectivity, so its probability
	// must dominate at equal seeds (same sampled graphs).
	m := Model{N: 300, K: 25, P: 3000, Q: 2, ChannelOn: 0.5}
	ctx := context.Background()
	cfg := EstimateConfig{Trials: 80, Seed: 3}
	for k := 1; k <= 2; k++ {
		kc, err := m.EstimateKConnectivity(ctx, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		md, err := m.EstimateMinDegreeAtLeast(ctx, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if md.Successes < kc.Successes {
			t.Errorf("k=%d: min-degree successes %d < k-conn successes %d (same seeds)",
				k, md.Successes, kc.Successes)
		}
	}
}

func TestEstimateDeterminism(t *testing.T) {
	m := Model{N: 200, K: 20, P: 2000, Q: 2, ChannelOn: 0.5}
	ctx := context.Background()
	a, err := m.EstimateConnectivity(ctx, EstimateConfig{Trials: 50, Workers: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.EstimateConnectivity(ctx, EstimateConfig{Trials: 50, Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes {
		t.Errorf("worker count changed the estimate: %d vs %d", a.Successes, b.Successes)
	}
}

func TestDegreeCountDistribution(t *testing.T) {
	m := Model{N: 300, K: 20, P: 3000, Q: 2, ChannelOn: 0.5}
	counts, err := m.DegreeCountDistribution(context.Background(), 0, EstimateConfig{Trials: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 40 {
		t.Fatalf("got %d counts", len(counts))
	}
	// Counts must be consistent with direct sampling at the same seeds.
	sampler, err := m.NewSampler()
	if err != nil {
		t.Fatal(err)
	}
	g, err := sampler.SampleComposite(rng.NewStream(4, 0), m.ChannelOn)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for v := int32(0); int(v) < g.N(); v++ {
		if g.Degree(v) == 0 {
			want++
		}
	}
	if counts[0] != want {
		t.Errorf("trial-0 degree-0 count = %d, want %d (replay)", counts[0], want)
	}
	if _, err := m.DegreeCountDistribution(context.Background(), -1, EstimateConfig{Trials: 5, Seed: 1}); err == nil {
		t.Error("negative h: want error")
	}
}

func TestThresholdAndDesignReExports(t *testing.T) {
	// ThresholdK pins the exact eq. (9) values; ThresholdKAsymptotic the
	// paper-matching computation (see theory tests for the full table).
	k, err := ThresholdK(1000, 10000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 36 {
		t.Errorf("exact K* = %d, want 36", k)
	}
	ka, err := ThresholdKAsymptotic(1000, 10000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ka != 35 {
		t.Errorf("asymptotic K* = %d, want 35 (paper value)", ka)
	}
	dk, err := DesignK(1000, 10000, 2, 0.5, 2, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{N: 1000, K: dk, P: 10000, Q: 2, ChannelOn: 0.5}
	p, err := m.TheoreticalKConnProb(2)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Errorf("DesignK gave K=%d achieving only %v", dk, p)
	}
}

// TestSampledGraphAgreesWithKConnTest cross-checks the sampler with the
// connectivity oracle on a denser model where 2-connectivity is near-certain.
func TestSampledGraphAgreesWithKConnTest(t *testing.T) {
	m := Model{N: 150, K: 30, P: 1000, Q: 2, ChannelOn: 0.9}
	r := rng.New(5)
	conn2 := 0
	for trial := 0; trial < 10; trial++ {
		g, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		if graphalgo.IsKConnected(g, 2) {
			conn2++
			if !graphalgo.IsConnected(g) {
				t.Fatal("2-connected graph reported disconnected")
			}
		}
	}
	if conn2 == 0 {
		t.Error("dense model never 2-connected across 10 trials (suspicious)")
	}
}
