// Package keys implements the key predistribution substrate: key pools, key
// rings, the Eschenauer–Gligor scheme (the q = 1 baseline) and the
// q-composite scheme of Chan, Perrig and Song that the paper analyses, plus
// shared-key discovery and link-key derivation.
//
// Keys are abstract identifiers: connectivity depends only on which key IDs
// two sensors share, so the package represents keys as dense int32 IDs into
// the pool and derives concrete link keys by hashing the shared IDs
// (mirroring the q-composite construction, where the pairwise link key is a
// hash of all shared keys).
package keys

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// ID identifies a key within a pool.
type ID = int32

// Ring is a sensor's key ring: a sorted set of key IDs drawn from the pool.
type Ring struct {
	ids []ID // sorted ascending, no duplicates
}

// NewRing builds a ring from the given IDs (copied, sorted, deduplicated).
func NewRing(ids []ID) Ring {
	cp := append([]ID(nil), ids...)
	return Ring{ids: sortDedup(cp)}
}

// sortDedup sorts ids in place and removes adjacent duplicates, returning the
// compacted prefix. The comparison is index-based rather than against an
// in-band sentinel, so every ID value — including negative ones — is kept.
// slices.Sort (not sort.Slice) matters here: this runs once per sensor per
// deployment, and the reflection-based sorter's two closures per call were
// most of the Deployer trial loop's residual allocations.
func sortDedup(ids []ID) []ID {
	slices.Sort(ids)
	out := ids[:0]
	for i, k := range ids {
		if i == 0 || k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of keys in the ring.
func (r Ring) Len() int { return len(r.ids) }

// Contains reports whether the ring holds key k.
func (r Ring) Contains(k ID) bool {
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= k })
	return i < len(r.ids) && r.ids[i] == k
}

// IDs returns a copy of the ring's sorted key IDs.
func (r Ring) IDs() []ID { return append([]ID(nil), r.ids...) }

// ForEachID calls fn on each key ID in ascending order without copying.
// Iteration stops early if fn returns false.
func (r Ring) ForEachID(fn func(ID) bool) {
	for _, k := range r.ids {
		if !fn(k) {
			return
		}
	}
}

// SharedWith returns the keys present in both rings, by sorted merge.
func (r Ring) SharedWith(other Ring) []ID {
	return r.AppendShared(other, nil)
}

// AppendShared appends the keys present in both rings to dst (sorted merge)
// and returns the extended slice. Pass a reused buffer to avoid allocating on
// hot paths.
func (r Ring) AppendShared(other Ring, dst []ID) []ID {
	i, j := 0, 0
	for i < len(r.ids) && j < len(other.ids) {
		switch {
		case r.ids[i] == other.ids[j]:
			dst = append(dst, r.ids[i])
			i++
			j++
		case r.ids[i] < other.ids[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// SharedCount returns |r ∩ other| without allocating.
func (r Ring) SharedCount(other Ring) int {
	count := 0
	i, j := 0, 0
	for i < len(r.ids) && j < len(other.ids) {
		switch {
		case r.ids[i] == other.ids[j]:
			count++
			i++
			j++
		case r.ids[i] < other.ids[j]:
			i++
		default:
			j++
		}
	}
	return count
}

// SharedAtLeast reports whether |r ∩ other| ≥ q, short-circuiting as soon as
// the running count reaches q — the hot predicate of q-composite shared-key
// discovery on the sorted-merge path.
func (r Ring) SharedAtLeast(other Ring, q int) bool {
	if q <= 0 {
		return true
	}
	count := 0
	i, j := 0, 0
	for i < len(r.ids) && j < len(other.ids) {
		switch {
		case r.ids[i] == other.ids[j]:
			count++
			if count >= q {
				return true
			}
			i++
			j++
		case r.ids[i] < other.ids[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Class is one sensor class of a (possibly heterogeneous) key
// predistribution scheme: sensors belong to the class independently with
// probability Mu and draw RingSize keys from the shared pool.
type Class struct {
	// Mu is the class's mixing probability; a scheme's Mu values sum to 1.
	Mu float64
	// RingSize is K_i, the number of pool keys a class-i sensor receives.
	RingSize int
}

// MaxClasses bounds the number of sensor classes a scheme may declare;
// class labels travel as uint8 through assignments and channel models.
const MaxClasses = 256

// Assignment is the outcome of key predistribution for one deployment:
// per-sensor key rings plus the class labels that sized them.
type Assignment struct {
	// Rings holds one key ring per sensor.
	Rings []Ring
	// Labels holds the per-sensor class index into the scheme's Classes().
	// Single-class schemes leave it nil, meaning every sensor is class 0.
	Labels []uint8
}

// Label returns sensor v's class index.
func (a Assignment) Label(v int) int {
	if a.Labels == nil {
		return 0
	}
	return int(a.Labels[v])
}

// Scheme is a key predistribution scheme: it assigns class labels and key
// rings to sensors before deployment and fixes the overlap requirement for
// secure links. Ring sizes are per sensor — uniform schemes are the
// single-class special case.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// PoolSize returns P, the key pool size.
	PoolSize() int
	// RequiredOverlap returns q, the minimum number of shared keys two
	// sensors need to establish a secure link.
	RequiredOverlap() int
	// Classes returns the scheme's sensor-class profile in class-index
	// order. Homogeneous schemes return a single class with Mu = 1.
	Classes() []Class
	// Assign draws the class labels and key rings for n sensors.
	Assign(r *rng.Rand, n int) (Assignment, error)
}

// MeanRingSize returns the expected per-sensor ring size Σ μ_i·K_i of the
// scheme's class mixture.
func MeanRingSize(s Scheme) float64 {
	mean := 0.0
	for _, c := range s.Classes() {
		mean += c.Mu * float64(c.RingSize)
	}
	return mean
}

// MinRingSize returns the smallest class ring size — the class that drives
// the connectivity threshold in the heterogeneous analysis.
func MinRingSize(s Scheme) int {
	classes := s.Classes()
	min := classes[0].RingSize
	for _, c := range classes[1:] {
		if c.RingSize < min {
			min = c.RingSize
		}
	}
	return min
}

// MaxRingSize returns the largest class ring size — the bound sizing
// per-sensor buffers (broadcast frames, merge scratch).
func MaxRingSize(s Scheme) int {
	classes := s.Classes()
	max := classes[0].RingSize
	for _, c := range classes[1:] {
		if c.RingSize > max {
			max = c.RingSize
		}
	}
	return max
}

// QComposite is the q-composite key predistribution scheme: each sensor
// receives a uniform K-subset of a P-key pool; two sensors can secure a link
// iff they share at least q keys. q = 1 recovers Eschenauer–Gligor.
type QComposite struct {
	pool int
	ring int
	q    int
}

var _ Scheme = (*QComposite)(nil)

// NewQComposite validates 1 ≤ q ≤ K ≤ P and returns the scheme.
func NewQComposite(pool, ring, q int) (*QComposite, error) {
	switch {
	case q < 1:
		return nil, fmt.Errorf("keys: overlap requirement q=%d must be ≥ 1", q)
	case ring < q:
		return nil, fmt.Errorf("keys: ring size %d below overlap requirement q=%d", ring, q)
	case pool < ring:
		return nil, fmt.Errorf("keys: pool size %d below ring size %d", pool, ring)
	}
	return &QComposite{pool: pool, ring: ring, q: q}, nil
}

// NewEschenauerGligor returns the basic Eschenauer–Gligor scheme, the
// q-composite scheme with q = 1 (the paper's baseline).
func NewEschenauerGligor(pool, ring int) (*QComposite, error) {
	s, err := NewQComposite(pool, ring, 1)
	if err != nil {
		return nil, fmt.Errorf("keys: eschenauer–gligor: %w", err)
	}
	return s, nil
}

// Name implements Scheme.
func (s *QComposite) Name() string {
	if s.q == 1 {
		return "eschenauer-gligor"
	}
	return fmt.Sprintf("%d-composite", s.q)
}

// PoolSize implements Scheme.
func (s *QComposite) PoolSize() int { return s.pool }

// RingSize returns K, the uniform per-sensor ring size of the 1-class
// scheme.
func (s *QComposite) RingSize() int { return s.ring }

// RequiredOverlap implements Scheme.
func (s *QComposite) RequiredOverlap() int { return s.q }

// Classes implements Scheme: one class holding every sensor.
func (s *QComposite) Classes() []Class {
	return []Class{{Mu: 1, RingSize: s.ring}}
}

// Assign implements Scheme: n independent uniform K-subsets of the pool.
func (s *QComposite) Assign(r *rng.Rand, n int) (Assignment, error) {
	if n < 0 {
		return Assignment{}, fmt.Errorf("keys: negative sensor count %d", n)
	}
	sampler, err := rng.NewSubsetSampler(s.pool)
	if err != nil {
		return Assignment{}, fmt.Errorf("keys: assign: %w", err)
	}
	rings := make([]Ring, n)
	var buf []ID
	for v := 0; v < n; v++ {
		buf, err = sampler.AppendSample(r, s.ring, buf[:0])
		if err != nil {
			return Assignment{}, fmt.Errorf("keys: assign sensor %d: %w", v, err)
		}
		rings[v] = NewRing(buf)
	}
	return Assignment{Rings: rings}, nil
}

// LinkKeySize is the size in bytes of derived link keys.
const LinkKeySize = sha256.Size

// DeriveLinkKey derives the pairwise link key from the shared keys of a
// q-composite link: SHA-256 over the sorted shared key IDs
// (k₁‖k₂‖…‖k_m in the Chan–Perrig–Song construction). More shared keys
// strictly strengthen the link: an adversary must know every one of them.
func DeriveLinkKey(shared []ID) [LinkKeySize]byte {
	sorted := shared
	if !sort.SliceIsSorted(shared, func(i, j int) bool { return shared[i] < shared[j] }) {
		sorted = append([]ID(nil), shared...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	}
	// Hash the big-endian concatenation k₁‖k₂‖…‖k_m. Shared sets are tiny
	// (a handful of keys beyond q), so a small stack buffer avoids heap
	// traffic on the materialization path.
	var stack [64]byte
	buf := stack[:0]
	if 4*len(sorted) > len(stack) {
		buf = make([]byte, 0, 4*len(sorted))
	}
	for _, k := range sorted {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(k))
		buf = append(buf, b[:]...)
	}
	return sha256.Sum256(buf)
}
