package keys

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// TestNewRingKeepsNegativeIDs is the regression test for the dedup sentinel
// bug: the loop used to seed its "previous" tracker with the in-band value
// −1, silently dropping a legitimate −1 key ID.
func TestNewRingKeepsNegativeIDs(t *testing.T) {
	r := NewRing([]ID{-1, 3})
	if r.Len() != 2 {
		t.Fatalf("NewRing([-1, 3]).Len() = %d, want 2 (ID -1 dropped by sentinel?)", r.Len())
	}
	if !r.Contains(-1) || !r.Contains(3) {
		t.Errorf("ring %v missing members", r.IDs())
	}
	// Duplicates of the former sentinel value still collapse.
	r = NewRing([]ID{-1, -1, -5, 3, -5})
	want := []ID{-5, -1, 3}
	got := r.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

// randomRings draws n rings of the given size from a pool, via the public
// scheme so the rings are realistic assignments.
func randomRings(t *testing.T, r *rng.Rand, pool, ring, n int) []Ring {
	t.Helper()
	s, err := NewQComposite(pool, ring, 1)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := s.Assign(r, n)
	if err != nil {
		t.Fatal(err)
	}
	return asg.Rings
}

// TestIntersectorMatchesMerge is the property test for the density-adaptive
// path: across dense and sparse pool/ring ratios, the Intersector must agree
// exactly with the sorted-merge reference (SharedWith/SharedCount) on count,
// membership and order, whichever strategy it selects.
func TestIntersectorMatchesMerge(t *testing.T) {
	r := rng.New(7)
	cases := []struct {
		pool, ring int
		wantDense  bool
	}{
		{pool: 64, ring: 16, wantDense: true},    // pool ≪ denseRingFactor·K
		{pool: 2048, ring: 16, wantDense: true},  // boundary: pool = 128·K
		{pool: 2049, ring: 16, wantDense: false}, // just past the boundary
		{pool: 4096, ring: 8, wantDense: false},  // sparse rings
	}
	for _, tc := range cases {
		const n = 24
		rings := randomRings(t, r, tc.pool, tc.ring, n)
		ix, err := NewIntersector(tc.pool)
		if err != nil {
			t.Fatal(err)
		}
		// Reset twice: the second pass exercises bitset reuse after Clear.
		for pass := 0; pass < 2; pass++ {
			if err := ix.Reset(rings); err != nil {
				t.Fatal(err)
			}
			if ix.Dense() != tc.wantDense {
				t.Errorf("pool=%d ring=%d: Dense() = %v, want %v",
					tc.pool, tc.ring, ix.Dense(), tc.wantDense)
			}
			for u := int32(0); u < n; u++ {
				for v := u + 1; v < n; v++ {
					wantShared := rings[u].SharedWith(rings[v])
					if got := ix.SharedCount(u, v); got != len(wantShared) {
						t.Fatalf("pool=%d: SharedCount(%d,%d) = %d, want %d",
							tc.pool, u, v, got, len(wantShared))
					}
					gotShared := ix.AppendShared(u, v, nil)
					if len(gotShared) != len(wantShared) {
						t.Fatalf("pool=%d: AppendShared(%d,%d) = %v, want %v",
							tc.pool, u, v, gotShared, wantShared)
					}
					for i := range wantShared {
						if gotShared[i] != wantShared[i] {
							t.Fatalf("pool=%d: AppendShared(%d,%d) = %v, want %v",
								tc.pool, u, v, gotShared, wantShared)
						}
					}
					for q := 0; q <= len(wantShared)+1; q++ {
						if got := ix.HasAtLeast(u, v, q); got != (len(wantShared) >= q) {
							t.Fatalf("pool=%d: HasAtLeast(%d,%d,%d) = %v with %d shared",
								tc.pool, u, v, q, got, len(wantShared))
						}
					}
				}
			}
		}
	}
}

// TestAssignIntoMatchesAssign pins the determinism contract of the arena
// path: for equal generator seeds, AssignInto must produce exactly the rings
// Assign does — including across arena reuse.
func TestAssignIntoMatchesAssign(t *testing.T) {
	s, err := NewQComposite(500, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	wantAsg, err := s.Assign(rng.New(99), n)
	if err != nil {
		t.Fatal(err)
	}
	want := wantAsg.Rings
	var arena RingArena
	for pass := 0; pass < 3; pass++ {
		gotAsg, err := s.AssignInto(rng.New(99), n, &arena)
		if err != nil {
			t.Fatal(err)
		}
		got := gotAsg.Rings
		if len(got) != len(want) {
			t.Fatalf("pass %d: %d rings, want %d", pass, len(got), len(want))
		}
		for v := range want {
			w, g := want[v].IDs(), got[v].IDs()
			if len(w) != len(g) {
				t.Fatalf("pass %d: ring %d has %d keys, want %d", pass, v, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("pass %d: ring %d = %v, want %v", pass, v, g, w)
				}
			}
		}
	}
}

// FuzzNewRing fuzzes the sort/dedup invariants over arbitrary ID sets,
// negative values included.
func FuzzNewRing(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ids := make([]ID, 0, len(data)/4)
		for i := 0; i+3 < len(data); i += 4 {
			ids = append(ids, ID(uint32(data[i])|uint32(data[i+1])<<8|
				uint32(data[i+2])<<16|uint32(data[i+3])<<24))
		}
		ring := NewRing(ids)
		got := ring.IDs()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("IDs not strictly ascending: %v", got)
			}
		}
		seen := map[ID]bool{}
		for _, k := range ids {
			seen[k] = true
			if !ring.Contains(k) {
				t.Fatalf("ring dropped ID %d (input %v, got %v)", k, ids, got)
			}
		}
		if len(got) != len(seen) {
			t.Fatalf("ring has %d keys, want %d distinct", len(got), len(seen))
		}
	})
}

// BenchmarkIntersectorHasAtLeast measures the hot predicate of streaming
// discovery in its ladder configuration (P = 512, K = 32, q = 2: dense,
// stride 8 — one cache line per ring) over n = 100000 rings, with the access
// pattern the edge emitters produce: sequential u, uniform random v. This is
// the latency-bound load the flat-arena layout exists for.
func BenchmarkIntersectorHasAtLeast(b *testing.B) {
	const (
		pool = 512
		ring = 32
		q    = 2
		n    = 100_000
	)
	s, err := NewQComposite(pool, ring, q)
	if err != nil {
		b.Fatal(err)
	}
	asg, err := s.Assign(rng.New(11), n)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewIntersector(pool)
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Reset(asg.Rings); err != nil {
		b.Fatal(err)
	}
	if !ix.Dense() {
		b.Fatal("ladder configuration should select the dense strategy")
	}
	r := rng.New(12)
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i % n)
		v := int32(r.Uint64() % n)
		if ix.HasAtLeast(u, v, q) {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hit/op")
}
