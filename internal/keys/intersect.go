package keys

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/bitset"
)

// denseRingFactor selects the Intersector strategy: the bitset path scans
// pool/64 words per query while the sorted merge scans up to 2·K elements, so
// word-parallel intersection wins once pool ≤ denseRingFactor·K (i.e. the
// word count drops below the merge length).
const denseRingFactor = 128

// Intersector answers ring-intersection queries over a fixed set of rings
// with a density-adaptive strategy: when rings are dense relative to the pool
// (K ≥ pool/denseRingFactor) it indexes every ring as a pool-width bitset and
// intersects word-parallel; otherwise it falls back to the sorted merge of
// Ring.SharedCount/SharedWith. Both strategies are exact, so query results
// are identical either way.
//
// An Intersector amortizes its bitsets across Reset calls, making it suitable
// for repeated deployments. It is not safe for concurrent use.
type Intersector struct {
	pool  int
	rings []Ring
	dense bool
	sets  []*bitset.Set
}

// NewIntersector returns an Intersector over rings drawn from a pool of the
// given size.
func NewIntersector(pool int) (*Intersector, error) {
	if pool <= 0 {
		return nil, fmt.Errorf("keys: intersector pool size %d must be positive", pool)
	}
	return &Intersector{pool: pool}, nil
}

// Reset points the Intersector at a new set of rings (typically one
// deployment's assignment) and rebuilds its index if the dense strategy is
// selected. Ring IDs must lie in [0, pool).
func (x *Intersector) Reset(rings []Ring) error {
	x.rings = rings
	minRing := 0
	for i, r := range rings {
		if i == 0 || r.Len() < minRing {
			minRing = r.Len()
		}
	}
	x.dense = len(rings) > 0 && x.pool <= denseRingFactor*minRing
	if !x.dense {
		return nil
	}
	for len(x.sets) < len(rings) {
		x.sets = append(x.sets, bitset.New(x.pool))
	}
	for i, r := range rings {
		s := x.sets[i]
		s.Clear()
		for _, k := range r.ids {
			if int(k) < 0 || int(k) >= x.pool {
				x.dense = false
				return fmt.Errorf("keys: intersector: ring %d key %d outside pool [0,%d)", i, k, x.pool)
			}
			s.Add(int(k))
		}
	}
	return nil
}

// Dense reports whether the bitset strategy is active (exported for tests and
// benchmarks; callers get identical answers either way).
func (x *Intersector) Dense() bool { return x.dense }

// SharedCount returns |ring(u) ∩ ring(v)| without allocating.
func (x *Intersector) SharedCount(u, v int32) int {
	if x.dense {
		return x.sets[u].IntersectionCount(x.sets[v])
	}
	return x.rings[u].SharedCount(x.rings[v])
}

// HasAtLeast reports whether rings u and v share at least q keys. It is the
// hot predicate of shared-key discovery and short-circuits where the
// representation allows.
func (x *Intersector) HasAtLeast(u, v int32, q int) bool {
	if q <= 0 {
		return true
	}
	if x.dense {
		return x.sets[u].IntersectsAtLeast(x.sets[v], q)
	}
	return x.rings[u].SharedAtLeast(x.rings[v], q)
}

// AppendShared appends the sorted shared keys of rings u and v to dst and
// returns the extended slice.
func (x *Intersector) AppendShared(u, v int32, dst []ID) []ID {
	if x.dense {
		x.sets[u].ForEachIntersection(x.sets[v], func(i int) bool {
			dst = append(dst, ID(i))
			return true
		})
		return dst
	}
	return x.rings[u].AppendShared(x.rings[v], dst)
}
