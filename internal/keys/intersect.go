package keys

import (
	"fmt"
	"math/bits"
)

// denseRingFactor selects the Intersector strategy: the flat-bitmap path
// scans pool/64 words per query while the sorted merge scans up to 2·K
// elements, so word-parallel intersection wins once pool ≤
// denseRingFactor·K (i.e. the word count drops below the merge length).
const denseRingFactor = 128

// Intersector answers ring-intersection queries over a fixed set of rings
// with a density-adaptive strategy: when rings are dense relative to the pool
// (K ≥ pool/denseRingFactor) it indexes every ring as a pool-width bitmap and
// intersects word-parallel; otherwise it falls back to the sorted merge of
// Ring.SharedCount/SharedWith. Both strategies are exact, so query results
// are identical either way.
//
// The dense index is one flat word arena — ring i occupies
// flat[i·stride : (i+1)·stride] — rather than per-ring bitset objects: the
// query pattern of streaming discovery (sequential u, random v) is
// memory-latency-bound, and the flat layout costs one cache miss per ring
// instead of the pointer-chase's two to three. At the streaming-ladder
// design point (P = 512, stride = 8) each ring is exactly one cache line.
//
// An Intersector amortizes its arena across Reset calls, making it suitable
// for repeated deployments. It is not safe for concurrent use.
type Intersector struct {
	pool   int
	rings  []Ring
	dense  bool
	stride int
	flat   []uint64
}

// NewIntersector returns an Intersector over rings drawn from a pool of the
// given size.
func NewIntersector(pool int) (*Intersector, error) {
	if pool <= 0 {
		return nil, fmt.Errorf("keys: intersector pool size %d must be positive", pool)
	}
	return &Intersector{pool: pool, stride: (pool + 63) / 64}, nil
}

// Reset points the Intersector at a new set of rings (typically one
// deployment's assignment) and rebuilds its index if the dense strategy is
// selected. Ring IDs must lie in [0, pool).
func (x *Intersector) Reset(rings []Ring) error {
	x.rings = rings
	minRing := 0
	for i, r := range rings {
		if i == 0 || r.Len() < minRing {
			minRing = r.Len()
		}
	}
	x.dense = len(rings) > 0 && x.pool <= denseRingFactor*minRing
	if !x.dense {
		return nil
	}
	need := x.stride * len(rings)
	if cap(x.flat) < need {
		x.flat = make([]uint64, need)
	} else {
		x.flat = x.flat[:need]
		clear(x.flat)
	}
	for i, r := range rings {
		row := x.flat[i*x.stride : (i+1)*x.stride]
		for _, k := range r.ids {
			if int(k) < 0 || int(k) >= x.pool {
				x.dense = false
				return fmt.Errorf("keys: intersector: ring %d key %d outside pool [0,%d)", i, k, x.pool)
			}
			row[k/64] |= 1 << (uint(k) % 64)
		}
	}
	return nil
}

// Dense reports whether the flat-bitmap strategy is active (exported for
// tests and benchmarks; callers get identical answers either way).
func (x *Intersector) Dense() bool { return x.dense }

// row returns ring i's words in the dense arena.
func (x *Intersector) row(i int32) []uint64 {
	return x.flat[int(i)*x.stride : (int(i)+1)*x.stride]
}

// SharedCount returns |ring(u) ∩ ring(v)| without allocating.
func (x *Intersector) SharedCount(u, v int32) int {
	if x.dense {
		a, b := x.row(u), x.row(v)
		c := 0
		for i, w := range a {
			c += bits.OnesCount64(w & b[i])
		}
		return c
	}
	return x.rings[u].SharedCount(x.rings[v])
}

// HasAtLeast reports whether rings u and v share at least q keys. It is the
// hot predicate of shared-key discovery — every emitted channel edge of a
// streaming deployment passes through here — and short-circuits where the
// representation allows.
func (x *Intersector) HasAtLeast(u, v int32, q int) bool {
	if q <= 0 {
		return true
	}
	if x.dense {
		a, b := x.row(u), x.row(v)
		c := 0
		for i, w := range a {
			c += bits.OnesCount64(w & b[i])
			if c >= q {
				return true
			}
		}
		return false
	}
	return x.rings[u].SharedAtLeast(x.rings[v], q)
}

// AppendShared appends the sorted shared keys of rings u and v to dst and
// returns the extended slice.
func (x *Intersector) AppendShared(u, v int32, dst []ID) []ID {
	if x.dense {
		a, b := x.row(u), x.row(v)
		for i, w := range a {
			w &= b[i]
			base := i * 64
			for w != 0 {
				dst = append(dst, ID(base+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return dst
	}
	return x.rings[u].AppendShared(x.rings[v], dst)
}
