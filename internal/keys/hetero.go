package keys

import (
	"fmt"
	"math"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// classStreamID is the rng.StreamSeed sub-stream identifier under which a
// heterogeneous assignment draws its class labels. Labels live on their own
// derived stream (seeded from one draw of the main generator) so that the
// ring draws that follow see the same stream positions regardless of how
// many classes the mixture has.
const classStreamID = 0x636c617373 // "class"

// muSumTolerance is the allowed deviation of a class mixture's Σμ from 1.
const muSumTolerance = 1e-9

// Heterogeneous is the heterogeneous key predistribution scheme of Eletreby
// and Yağan (arXiv:1604.00460): each sensor independently belongs to class i
// with probability μ_i and draws a uniform K_i-subset of the common P-key
// pool. Two sensors can secure a link iff they share at least q keys, as in
// the q-composite scheme; q = 1 recovers the heterogeneous
// Eschenauer–Gligor scheme the paper analyses.
//
// A single-class Heterogeneous scheme is the uniform scheme: it consumes
// randomness exactly as QComposite does, so its deployments are
// byte-identical to the equivalent QComposite deployments (pinned by tests).
type Heterogeneous struct {
	pool    int
	q       int
	classes []Class
}

var (
	_ Scheme        = (*Heterogeneous)(nil)
	_ ArenaAssigner = (*Heterogeneous)(nil)
)

// NewHeterogeneous validates the class mixture — 1 ≤ q ≤ K_i ≤ P for every
// class, 0 < μ_i, Σμ_i = 1 (within 1e-9), at most MaxClasses classes — and
// returns the scheme. The class order given here is the class-index order of
// assignment labels.
func NewHeterogeneous(pool, q int, classes []Class) (*Heterogeneous, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("keys: heterogeneous scheme needs at least one class")
	}
	if len(classes) > MaxClasses {
		return nil, fmt.Errorf("keys: %d classes exceed the maximum %d", len(classes), MaxClasses)
	}
	if q < 1 {
		return nil, fmt.Errorf("keys: overlap requirement q=%d must be ≥ 1", q)
	}
	muSum := 0.0
	for i, c := range classes {
		switch {
		case math.IsNaN(c.Mu) || c.Mu <= 0 || c.Mu > 1:
			return nil, fmt.Errorf("keys: class %d mixing probability %v outside (0,1]", i, c.Mu)
		case c.RingSize < q:
			return nil, fmt.Errorf("keys: class %d ring size %d below overlap requirement q=%d", i, c.RingSize, q)
		case pool < c.RingSize:
			return nil, fmt.Errorf("keys: pool size %d below class %d ring size %d", pool, i, c.RingSize)
		}
		muSum += c.Mu
	}
	if math.Abs(muSum-1) > muSumTolerance {
		return nil, fmt.Errorf("keys: class mixing probabilities sum to %v, want 1", muSum)
	}
	return &Heterogeneous{pool: pool, q: q, classes: append([]Class(nil), classes...)}, nil
}

// Name implements Scheme.
func (s *Heterogeneous) Name() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heterogeneous(q=%d;", s.q)
	for i, c := range s.classes {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %g×K=%d", c.Mu, c.RingSize)
	}
	b.WriteString(")")
	return b.String()
}

// PoolSize implements Scheme.
func (s *Heterogeneous) PoolSize() int { return s.pool }

// RequiredOverlap implements Scheme.
func (s *Heterogeneous) RequiredOverlap() int { return s.q }

// Classes implements Scheme.
func (s *Heterogeneous) Classes() []Class {
	return append([]Class(nil), s.classes...)
}

// Assign implements Scheme. It is AssignInto over a private arena, so the
// returned rings have an independent lifetime.
func (s *Heterogeneous) Assign(r *rng.Rand, n int) (Assignment, error) {
	var a RingArena
	asg, err := s.AssignInto(r, n, &a)
	if err != nil {
		return Assignment{}, err
	}
	// The arena is private, so nothing will recycle the backing storage;
	// only the labels need detaching from the (escaping) arena struct.
	if asg.Labels != nil {
		asg.Labels = append([]uint8(nil), asg.Labels...)
	}
	return asg, nil
}

// AssignInto implements ArenaAssigner: it draws per-sensor class labels from
// a dedicated rng.StreamSeed sub-stream (seeded by one draw of r), then one
// uniform K_{class}-subset per sensor from r. With a single class no label
// draw happens at all, which keeps the main stream aligned with QComposite's
// and makes 1-class deployments byte-identical to the uniform scheme.
func (s *Heterogeneous) AssignInto(r *rng.Rand, n int, a *RingArena) (Assignment, error) {
	if n < 0 {
		return Assignment{}, fmt.Errorf("keys: negative sensor count %d", n)
	}
	sampler, err := a.ensureSampler(s.pool)
	if err != nil {
		return Assignment{}, err
	}

	var labels []uint8
	totalIDs := n * s.classes[0].RingSize
	if len(s.classes) > 1 {
		labelRand := rng.New(rng.StreamSeed(r.Uint64(), classStreamID))
		if cap(a.labels) < n {
			a.labels = make([]uint8, n)
		}
		labels = a.labels[:n]
		totalIDs = 0
		for v := range labels {
			labels[v] = s.sampleClass(labelRand)
			totalIDs += s.classes[labels[v]].RingSize
		}
	}

	a.reserve(n, totalIDs)
	for v := 0; v < n; v++ {
		size := s.classes[0].RingSize
		if labels != nil {
			size = s.classes[labels[v]].RingSize
		}
		if err := a.appendRing(r, sampler, size); err != nil {
			return Assignment{}, fmt.Errorf("keys: assign sensor %d: %w", v, err)
		}
	}
	return Assignment{Rings: a.rings, Labels: labels}, nil
}

// sampleClass draws one class index from the mixture by inverting the
// cumulative distribution; accumulated rounding in the partial sums is
// absorbed by the final class, so every draw lands on a valid label.
func (s *Heterogeneous) sampleClass(r *rng.Rand) uint8 {
	u := r.Float64()
	cum := 0.0
	for i, c := range s.classes[:len(s.classes)-1] {
		cum += c.Mu
		if u < cum {
			return uint8(i)
		}
	}
	return uint8(len(s.classes) - 1)
}
