package keys

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestNewRingSortsAndDedups(t *testing.T) {
	r := NewRing([]ID{5, 1, 5, 3, 1})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	ids := r.IDs()
	want := []ID{1, 3, 5}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, k := range want {
		if !r.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	if r.Contains(2) || r.Contains(-1) {
		t.Error("Contains returned true for absent key")
	}
}

func TestRingIDsIsACopy(t *testing.T) {
	r := NewRing([]ID{1, 2})
	ids := r.IDs()
	ids[0] = 99
	if !r.Contains(1) {
		t.Error("mutating IDs() result affected the ring")
	}
}

func TestSharedWith(t *testing.T) {
	a := NewRing([]ID{1, 3, 5, 7})
	b := NewRing([]ID{3, 4, 7, 9})
	shared := a.SharedWith(b)
	if len(shared) != 2 || shared[0] != 3 || shared[1] != 7 {
		t.Errorf("SharedWith = %v, want [3 7]", shared)
	}
	if got := a.SharedCount(b); got != 2 {
		t.Errorf("SharedCount = %d, want 2", got)
	}
	if got := b.SharedCount(a); got != 2 {
		t.Errorf("SharedCount reversed = %d", got)
	}
	empty := NewRing(nil)
	if got := a.SharedCount(empty); got != 0 {
		t.Errorf("SharedCount with empty = %d", got)
	}
	if got := empty.SharedWith(a); len(got) != 0 {
		t.Errorf("empty SharedWith = %v", got)
	}
}

func TestNewQCompositeValidation(t *testing.T) {
	tests := []struct {
		name          string
		pool, ring, q int
	}{
		{name: "q zero", pool: 10, ring: 5, q: 0},
		{name: "ring below q", pool: 10, ring: 1, q: 2},
		{name: "pool below ring", pool: 4, ring: 5, q: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewQComposite(tt.pool, tt.ring, tt.q); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	s, err := NewQComposite(100, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolSize() != 100 || s.RingSize() != 10 || s.RequiredOverlap() != 2 {
		t.Errorf("accessors wrong: %d %d %d", s.PoolSize(), s.RingSize(), s.RequiredOverlap())
	}
	if s.Name() != "2-composite" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestEschenauerGligorIsQ1(t *testing.T) {
	s, err := NewEschenauerGligor(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.RequiredOverlap() != 1 {
		t.Errorf("EG overlap = %d, want 1", s.RequiredOverlap())
	}
	if s.Name() != "eschenauer-gligor" {
		t.Errorf("Name = %q", s.Name())
	}
	if _, err := NewEschenauerGligor(5, 10); err == nil {
		t.Error("invalid EG params: want error")
	}
}

func TestAssignProperties(t *testing.T) {
	s, err := NewQComposite(200, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	asg, err := s.Assign(r, 50)
	if err != nil {
		t.Fatal(err)
	}
	rings := asg.Rings
	if len(rings) != 50 {
		t.Fatalf("assigned %d rings", len(rings))
	}
	for v, ring := range rings {
		if ring.Len() != 25 {
			t.Fatalf("sensor %d ring size = %d", v, ring.Len())
		}
		for _, k := range ring.IDs() {
			if k < 0 || k >= 200 {
				t.Fatalf("sensor %d key %d outside pool", v, k)
			}
		}
	}
	if _, err := s.Assign(r, -1); err == nil {
		t.Error("negative n: want error")
	}
}

func TestAssignKeyMembershipUniform(t *testing.T) {
	// Each key appears in a ring with probability K/P.
	const (
		pool   = 50
		ring   = 10
		nRings = 20000
	)
	s, err := NewQComposite(pool, ring, 1)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := s.Assign(rng.New(2), nRings)
	if err != nil {
		t.Fatal(err)
	}
	rings := asg.Rings
	counts := make([]int, pool)
	for _, rg := range rings {
		for _, k := range rg.IDs() {
			counts[k]++
		}
	}
	want := float64(nRings) * ring / pool
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("key %d appeared %d times, want ~%v", k, c, want)
		}
	}
}

func TestDeriveLinkKeyProperties(t *testing.T) {
	a := DeriveLinkKey([]ID{3, 1, 2})
	b := DeriveLinkKey([]ID{1, 2, 3})
	if a != b {
		t.Error("link key must be order independent")
	}
	c := DeriveLinkKey([]ID{1, 2})
	if a == c {
		t.Error("different shared sets produced the same link key")
	}
	d := DeriveLinkKey([]ID{1, 2, 4})
	if a == d {
		t.Error("different shared sets produced the same link key")
	}
	// Input must not be mutated (sorted copy).
	in := []ID{9, 4}
	DeriveLinkKey(in)
	if in[0] != 9 {
		t.Error("DeriveLinkKey mutated its input")
	}
	// Empty input is well defined.
	e1, e2 := DeriveLinkKey(nil), DeriveLinkKey([]ID{})
	if e1 != e2 {
		t.Error("empty link keys differ")
	}
}

func TestQuickSharedCountMatchesSets(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		toIDs := func(raw []uint8) []ID {
			ids := make([]ID, len(raw))
			for i, v := range raw {
				ids[i] = ID(v % 64)
			}
			return ids
		}
		a := NewRing(toIDs(aRaw))
		b := NewRing(toIDs(bRaw))
		am := map[ID]bool{}
		for _, k := range a.IDs() {
			am[k] = true
		}
		want := 0
		for _, k := range b.IDs() {
			if am[k] {
				want++
			}
		}
		return a.SharedCount(b) == want && len(a.SharedWith(b)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSharedCount(b *testing.B) {
	r := rng.New(3)
	s, err := NewQComposite(10000, 80, 2)
	if err != nil {
		b.Fatal(err)
	}
	asg, err := s.Assign(r, 2)
	if err != nil {
		b.Fatal(err)
	}
	rings := asg.Rings
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rings[0].SharedCount(rings[1])
	}
}
