package keys

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestNewHeterogeneousValidation(t *testing.T) {
	valid := []Class{{Mu: 0.5, RingSize: 10}, {Mu: 0.5, RingSize: 20}}
	if _, err := NewHeterogeneous(100, 1, valid); err != nil {
		t.Fatalf("valid scheme rejected: %v", err)
	}
	cases := []struct {
		name    string
		pool, q int
		classes []Class
	}{
		{name: "no classes", pool: 100, q: 1, classes: nil},
		{name: "q zero", pool: 100, q: 0, classes: valid},
		{name: "ring below q", pool: 100, q: 3, classes: []Class{{Mu: 1, RingSize: 2}}},
		{name: "ring above pool", pool: 15, q: 1, classes: valid},
		{name: "mu zero", pool: 100, q: 1, classes: []Class{{Mu: 0, RingSize: 10}, {Mu: 1, RingSize: 20}}},
		{name: "mu negative", pool: 100, q: 1, classes: []Class{{Mu: -0.2, RingSize: 10}, {Mu: 1.2, RingSize: 20}}},
		{name: "mu nan", pool: 100, q: 1, classes: []Class{{Mu: math.NaN(), RingSize: 10}, {Mu: 0.5, RingSize: 20}}},
		{name: "mu sum below one", pool: 100, q: 1, classes: []Class{{Mu: 0.4, RingSize: 10}, {Mu: 0.4, RingSize: 20}}},
		{name: "mu sum above one", pool: 100, q: 1, classes: []Class{{Mu: 0.7, RingSize: 10}, {Mu: 0.7, RingSize: 20}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewHeterogeneous(tc.pool, tc.q, tc.classes); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	// Too many classes for uint8 labels.
	many := make([]Class, MaxClasses+1)
	for i := range many {
		many[i] = Class{Mu: 1 / float64(len(many)), RingSize: 5}
	}
	if _, err := NewHeterogeneous(100, 1, many); err == nil {
		t.Error("MaxClasses+1 classes accepted")
	}
}

func TestHeterogeneousAccessors(t *testing.T) {
	classes := []Class{{Mu: 0.25, RingSize: 8}, {Mu: 0.75, RingSize: 32}}
	s, err := NewHeterogeneous(500, 2, classes)
	if err != nil {
		t.Fatal(err)
	}
	if s.PoolSize() != 500 || s.RequiredOverlap() != 2 {
		t.Errorf("accessors: pool %d, q %d", s.PoolSize(), s.RequiredOverlap())
	}
	got := s.Classes()
	if len(got) != 2 || got[0] != classes[0] || got[1] != classes[1] {
		t.Errorf("Classes() = %v", got)
	}
	// Returned slice is a copy.
	got[0].RingSize = 999
	if s.Classes()[0].RingSize != 8 {
		t.Error("Classes() exposes internal state")
	}
	if MinRingSize(s) != 8 || MaxRingSize(s) != 32 {
		t.Errorf("Min/MaxRingSize = %d/%d", MinRingSize(s), MaxRingSize(s))
	}
	if mean := MeanRingSize(s); math.Abs(mean-(0.25*8+0.75*32)) > 1e-12 {
		t.Errorf("MeanRingSize = %v", mean)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

// TestHeterogeneousClassStatistics is the mixing-distribution test: over a
// large assignment, class label frequencies must match μ within binomial
// noise, and every ring's size must equal its class's ring size exactly.
func TestHeterogeneousClassStatistics(t *testing.T) {
	const (
		pool = 5000
		n    = 20000
	)
	classes := []Class{
		{Mu: 0.5, RingSize: 10},
		{Mu: 0.3, RingSize: 25},
		{Mu: 0.2, RingSize: 60},
	}
	s, err := NewHeterogeneous(pool, 1, classes)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := s.Assign(rng.New(11), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg.Rings) != n || len(asg.Labels) != n {
		t.Fatalf("assignment sizes: %d rings, %d labels", len(asg.Rings), len(asg.Labels))
	}
	counts := make([]int, len(classes))
	for v, ring := range asg.Rings {
		label := asg.Label(v)
		if label < 0 || label >= len(classes) {
			t.Fatalf("sensor %d label %d out of range", v, label)
		}
		counts[label]++
		if ring.Len() != classes[label].RingSize {
			t.Fatalf("sensor %d (class %d) ring size %d, want %d",
				v, label, ring.Len(), classes[label].RingSize)
		}
		ring.ForEachID(func(k ID) bool {
			if k < 0 || int(k) >= pool {
				t.Fatalf("sensor %d key %d outside pool", v, k)
			}
			return true
		})
	}
	for i, c := range classes {
		want := c.Mu * n
		sigma := math.Sqrt(n * c.Mu * (1 - c.Mu))
		if math.Abs(float64(counts[i])-want) > 6*sigma {
			t.Errorf("class %d frequency %d, want %v ± %v", i, counts[i], want, 6*sigma)
		}
	}
}

// TestHeterogeneousAssignIntoMatchesAssign pins the arena path's
// determinism, labels included, across arena reuse.
func TestHeterogeneousAssignIntoMatchesAssign(t *testing.T) {
	s, err := NewHeterogeneous(300, 1, []Class{{Mu: 0.6, RingSize: 8}, {Mu: 0.4, RingSize: 24}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	want, err := s.Assign(rng.New(42), n)
	if err != nil {
		t.Fatal(err)
	}
	var arena RingArena
	for pass := 0; pass < 3; pass++ {
		got, err := s.AssignInto(rng.New(42), n, &arena)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if got.Label(v) != want.Label(v) {
				t.Fatalf("pass %d: sensor %d label %d, want %d", pass, v, got.Label(v), want.Label(v))
			}
			w, g := want.Rings[v].IDs(), got.Rings[v].IDs()
			if len(w) != len(g) {
				t.Fatalf("pass %d: ring %d size %d, want %d", pass, v, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("pass %d: ring %d = %v, want %v", pass, v, g, w)
				}
			}
		}
	}
}

// TestOneClassHeterogeneousMatchesQComposite is the scheme-level half of the
// 1-class equivalence contract: with a single class, Heterogeneous must
// consume randomness exactly as QComposite does and produce identical rings
// with no labels (the wsn-level test extends this to whole deployments).
func TestOneClassHeterogeneousMatchesQComposite(t *testing.T) {
	const (
		pool = 400
		ring = 30
		q    = 2
		n    = 100
	)
	hs, err := NewHeterogeneous(pool, q, []Class{{Mu: 1, RingSize: ring}})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 4; seed++ {
		want, err := qs.Assign(rng.New(seed), n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hs.Assign(rng.New(seed), n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Labels != nil {
			t.Fatal("single-class assignment allocated labels")
		}
		for v := 0; v < n; v++ {
			w, g := want.Rings[v].IDs(), got.Rings[v].IDs()
			if len(w) != len(g) {
				t.Fatalf("seed %d: ring %d size %d, want %d", seed, v, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("seed %d: ring %d = %v, want %v", seed, v, g, w)
				}
			}
		}
	}
}

// FuzzHeterogeneousClassBoundaries fuzzes the class-boundary machinery:
// arbitrary mixture cuts and ring sizes must either be rejected by
// validation or produce assignments whose every label is in range and whose
// every ring matches its class's size exactly.
func FuzzHeterogeneousClassBoundaries(f *testing.F) {
	f.Add(uint64(1), 0.5, 0.25, uint8(3), uint8(9), uint8(27))
	f.Add(uint64(7), 0.999999, 1e-7, uint8(1), uint8(1), uint8(255))
	f.Add(uint64(0), 0.0, 0.0, uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed uint64, cut1, cut2 float64, k1, k2, k3 uint8) {
		classes := []Class{
			{Mu: cut1, RingSize: int(k1)},
			{Mu: cut2, RingSize: int(k2)},
			{Mu: 1 - cut1 - cut2, RingSize: int(k3)},
		}
		const pool = 256 // any uint8 ring size fits
		s, err := NewHeterogeneous(pool, 1, classes)
		if err != nil {
			t.Skip() // rejected by validation — nothing more to check
		}
		const n = 64
		asg, err := s.Assign(rng.New(seed), n)
		if err != nil {
			t.Fatalf("validated scheme failed to assign: %v", err)
		}
		if len(asg.Rings) != n {
			t.Fatalf("%d rings, want %d", len(asg.Rings), n)
		}
		for v, ring := range asg.Rings {
			label := asg.Label(v)
			if label < 0 || label >= len(classes) {
				t.Fatalf("sensor %d label %d out of range", v, label)
			}
			if ring.Len() != classes[label].RingSize {
				t.Fatalf("sensor %d (class %d) ring size %d, want %d",
					v, label, ring.Len(), classes[label].RingSize)
			}
			prev := ID(-1)
			bad := false
			ring.ForEachID(func(k ID) bool {
				if k <= prev || k < 0 || int(k) >= pool {
					bad = true
					return false
				}
				prev = k
				return true
			})
			if bad {
				t.Fatalf("sensor %d ring not sorted/deduped in pool: %v", v, ring.IDs())
			}
		}
	})
}
