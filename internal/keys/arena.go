package keys

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

// RingArena amortizes ring storage across repeated assignments: all key IDs
// of an assignment live in one flat backing slice and the Ring headers in one
// slice, so assigning n rings costs O(1) allocations after the first use.
//
// Rings returned by an arena-backed assignment are views into the arena and
// remain valid only until the next assignment into the same arena. The zero
// value is ready to use.
type RingArena struct {
	ids     []ID
	rings   []Ring
	labels  []uint8 // per-sensor class labels of multi-class schemes
	buf     []ID    // per-ring scratch for sampling before sort/dedup
	sampler *rng.SubsetSampler
}

// ensureSampler returns a SubsetSampler over [0, pool), reusing the cached
// one when the pool matches. A SubsetSampler rolls its permutation back
// after every draw, so a cached one behaves exactly like a fresh one and
// can be reused across assignments (it is the arena's largest single
// buffer).
func (a *RingArena) ensureSampler(pool int) (*rng.SubsetSampler, error) {
	if a.sampler == nil || a.sampler.Universe() != pool {
		var err error
		a.sampler, err = rng.NewSubsetSampler(pool)
		if err != nil {
			return nil, fmt.Errorf("keys: assign: %w", err)
		}
	}
	return a.sampler, nil
}

// reserve readies the arena for an assignment of n rings totalling totalIDs
// key IDs. The flat ID slice is reserved in full up front: it must not grow
// while rings are being appended, or earlier Ring views would alias a stale
// backing array.
func (a *RingArena) reserve(n, totalIDs int) {
	if cap(a.ids) < totalIDs {
		a.ids = make([]ID, 0, totalIDs)
	}
	a.ids = a.ids[:0]
	if cap(a.rings) < n {
		a.rings = make([]Ring, 0, n)
	}
	a.rings = a.rings[:0]
}

// appendRing samples one ring of the given size into the arena.
func (a *RingArena) appendRing(r *rng.Rand, sampler *rng.SubsetSampler, size int) error {
	buf, err := sampler.AppendSample(r, size, a.buf[:0])
	a.buf = buf
	if err != nil {
		return err
	}
	start := len(a.ids)
	a.ids = append(a.ids, sortDedup(a.buf)...)
	a.rings = append(a.rings, Ring{ids: a.ids[start:len(a.ids):len(a.ids)]})
	return nil
}

// ArenaAssigner is implemented by schemes that can assign key rings into a
// caller-provided arena, avoiding the per-ring allocations of Scheme.Assign.
// wsn.Deployer uses it when available.
type ArenaAssigner interface {
	Scheme
	// AssignInto draws the class labels and key rings for n sensors into
	// the arena. It must consume randomness exactly as Assign does, so that
	// a deployment is byte-identical whichever entry point is used.
	AssignInto(r *rng.Rand, n int, a *RingArena) (Assignment, error)
}

var _ ArenaAssigner = (*QComposite)(nil)

// AssignInto implements ArenaAssigner. It draws the same rings as Assign for
// the same generator state (same per-sensor subset draws, in order), but
// stores them in the arena.
func (s *QComposite) AssignInto(r *rng.Rand, n int, a *RingArena) (Assignment, error) {
	if n < 0 {
		return Assignment{}, fmt.Errorf("keys: negative sensor count %d", n)
	}
	sampler, err := a.ensureSampler(s.pool)
	if err != nil {
		return Assignment{}, err
	}
	a.reserve(n, n*s.ring)
	for v := 0; v < n; v++ {
		if err := a.appendRing(r, sampler, s.ring); err != nil {
			return Assignment{}, fmt.Errorf("keys: assign sensor %d: %w", v, err)
		}
	}
	return Assignment{Rings: a.rings}, nil
}
