package wsn

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// bufferedOnlyChannel hides a model's EdgeEmitter methods while keeping the
// buffered Sample path, forcing the connectivity-only mode onto its
// SampleInto fallback.
type bufferedOnlyChannel struct{ m channel.BufferedModel }

func (b bufferedOnlyChannel) Name() string    { return b.m.Name() }
func (b bufferedOnlyChannel) Validate() error { return b.m.Validate() }
func (b bufferedOnlyChannel) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	return b.m.Sample(r, n)
}
func (b bufferedOnlyChannel) SampleInto(r *rng.Rand, n int, bld *graph.Builder) (*graph.Undirected, error) {
	return b.m.SampleInto(r, n, bld)
}

// bufferedOnlyClassChannel is the class-aware analogue.
type bufferedOnlyClassChannel struct{ m channel.BufferedClassModel }

func (b bufferedOnlyClassChannel) Name() string    { return b.m.Name() }
func (b bufferedOnlyClassChannel) Validate() error { return b.m.Validate() }
func (b bufferedOnlyClassChannel) ClassCount() int { return b.m.ClassCount() }
func (b bufferedOnlyClassChannel) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	return b.m.Sample(r, n)
}
func (b bufferedOnlyClassChannel) SampleClasses(r *rng.Rand, n int, labels []uint8) (*graph.Undirected, error) {
	return b.m.SampleClasses(r, n, labels)
}
func (b bufferedOnlyClassChannel) SampleClassesInto(r *rng.Rand, n int, labels []uint8, bld *graph.Builder) (*graph.Undirected, error) {
	return b.m.SampleClassesInto(r, n, labels, bld)
}

// connStatsOf computes a deployment's ConnStats the batch way: deploy the
// full network and measure the CSR secure topology.
func connStatsOf(t *testing.T, net *Network) ConnStats {
	t.Helper()
	topo := net.FullSecureTopology()
	connected, err := net.IsConnected()
	if err != nil {
		t.Fatal(err)
	}
	_, comps := graphalgo.Components(topo)
	isolated := 0
	if hist := topo.DegreeHistogram(); len(hist) > 0 {
		isolated = hist[0]
	}
	return ConnStats{
		Connected:  connected,
		Components: comps,
		Giant:      graphalgo.LargestComponentSize(topo),
		Isolated:   isolated,
	}
}

// TestDeployConnectivityMatchesCSR is the central equivalence test of the
// streaming pipeline (the PR's satellite 1): for every channel model, both
// discovery regimes and several seeds, the connectivity-only mode must report
// exactly the statistics a full CSR deployment measures — on the streaming
// emitters AND on the sampled-graph fallbacks (emitter methods hidden).
func TestDeployConnectivityMatchesCSR(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		variants := map[string]Config{"streaming": cfg}
		fallback := cfg
		if cm, ok := cfg.Channel.(channel.BufferedClassModel); ok {
			fallback.Channel = bufferedOnlyClassChannel{m: cm}
		} else {
			fallback.Channel = bufferedOnlyChannel{m: cfg.Channel.(channel.BufferedModel)}
		}
		variants["sampled-fallback"] = fallback
		unbuf := cfg
		if cm, ok := cfg.Channel.(channel.ClassModel); ok {
			unbuf.Channel = unbufferedClassChannel{m: cm}
		} else {
			unbuf.Channel = unbufferedChannel{m: cfg.Channel}
		}
		variants["unbuffered-fallback"] = unbuf
		for vname, vcfg := range variants {
			t.Run(name+"/"+vname, func(t *testing.T) {
				d, err := NewDeployer(vcfg)
				if err != nil {
					t.Fatal(err)
				}
				for seed := uint64(0); seed < 4; seed++ {
					refCfg := cfg
					refCfg.Seed = seed
					net, err := Deploy(refCfg)
					if err != nil {
						t.Fatal(err)
					}
					want := connStatsOf(t, net)
					got, err := d.DeployConnectivity(seed)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("seed %d: ConnStats %+v, want %+v", seed, got, want)
					}
				}
			})
		}
	}
}

// TestDeployConnectivityReuse pins reuse semantics on one Deployer: mixing
// connectivity-only and full deployments across seeds must leak no state in
// either direction.
func TestDeployConnectivityReuse(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := d.DeployConnectivity(1)
			if err != nil {
				t.Fatal(err)
			}
			// Interleave a full deployment and a different seed, then replay.
			if _, err := d.Deploy(2); err != nil {
				t.Fatal(err)
			}
			if _, err := d.DeployConnectivity(3); err != nil {
				t.Fatal(err)
			}
			again, err := d.DeployConnectivity(1)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("replaying seed 1: %+v, want %+v", again, first)
			}
			// The interleaved full deployment must also stay untouched.
			net, err := d.Deploy(1)
			if err != nil {
				t.Fatal(err)
			}
			if got := connStatsOf(t, net); got != first {
				t.Fatalf("full deployment after streaming: %+v, want %+v", got, first)
			}
		})
	}
}

// degreeStatsOf computes a deployment's DegreeStats the batch way: deploy
// the full network and measure the CSR secure topology, truncating the
// min degree at k exactly as the streaming mode reports it.
func degreeStatsOf(t *testing.T, net *Network, k int) DegreeStats {
	t.Helper()
	topo := net.FullSecureTopology()
	minDeg := topo.MinDegree()
	belowK := 0
	for _, count := range topo.DegreeHistogram()[:min(k, len(topo.DegreeHistogram()))] {
		belowK += count
	}
	truncated := minDeg
	if truncated > k {
		truncated = k
	}
	return DegreeStats{
		ConnStats:         connStatsOf(t, net),
		K:                 k,
		MinDegreeAtLeastK: minDeg >= k || topo.N() == 0,
		MinDegree:         truncated,
		BelowK:            belowK,
	}
}

// TestDeployDegreeStatsMatchesCSR is the degree-mode analogue of the
// connectivity equivalence test (the PR's satellite coverage): for every
// channel model, streaming and fallback variants, several seeds and several
// degree levels, the streaming degree mode must report exactly what a full
// CSR deployment measures — connectivity statistics, the min-degree ≥ k
// verdict, the truncated min degree and the below-k count.
func TestDeployDegreeStatsMatchesCSR(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		variants := map[string]Config{"streaming": cfg}
		fallback := cfg
		if cm, ok := cfg.Channel.(channel.BufferedClassModel); ok {
			fallback.Channel = bufferedOnlyClassChannel{m: cm}
		} else {
			fallback.Channel = bufferedOnlyChannel{m: cfg.Channel.(channel.BufferedModel)}
		}
		variants["sampled-fallback"] = fallback
		for vname, vcfg := range variants {
			t.Run(name+"/"+vname, func(t *testing.T) {
				d, err := NewDeployer(vcfg)
				if err != nil {
					t.Fatal(err)
				}
				for seed := uint64(0); seed < 4; seed++ {
					refCfg := cfg
					refCfg.Seed = seed
					net, err := Deploy(refCfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, k := range []int{0, 1, 2, 4} {
						want := degreeStatsOf(t, net, k)
						got, err := d.DeployDegreeStats(seed, k)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("seed %d k=%d: DegreeStats %+v, want %+v", seed, k, got, want)
						}
					}
				}
			})
		}
	}
}

// TestDeployDegreeStatsReuse pins reuse on one Deployer across modes and
// degree levels: interleaving degree, connectivity and full deployments
// must leak no state, and replays must be bit-identical.
func TestDeployDegreeStatsReuse(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := d.DeployDegreeStats(1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Deploy(2); err != nil {
				t.Fatal(err)
			}
			if _, err := d.DeployConnectivity(3); err != nil {
				t.Fatal(err)
			}
			if _, err := d.DeployDegreeStats(4, 5); err != nil {
				t.Fatal(err)
			}
			again, err := d.DeployDegreeStats(1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("replaying seed 1 k=2: %+v, want %+v", again, first)
			}
			// The connectivity halves of both modes must agree at one seed.
			conn, err := d.DeployConnectivity(1)
			if err != nil {
				t.Fatal(err)
			}
			if conn != first.ConnStats {
				t.Fatalf("connectivity mode at seed 1: %+v, want %+v", conn, first.ConnStats)
			}
		})
	}
}

// TestDeployDegreeStatsTinyNetworks pins the degenerate-size conventions of
// the degree mode: n = 0 is vacuously ≥ k with min degree 0 (matching
// graph.MinDegree's empty-graph convention); a singleton has degree 0.
func TestDeployDegreeStatsTinyNetworks(t *testing.T) {
	scheme, err := keys.NewQComposite(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for n, want := range map[int]DegreeStats{
		0: {ConnStats: ConnStats{Connected: true}, K: 2, MinDegreeAtLeastK: true, MinDegree: 0, BelowK: 0},
		1: {ConnStats: ConnStats{Connected: true, Components: 1, Giant: 1, Isolated: 1},
			K: 2, MinDegreeAtLeastK: false, MinDegree: 0, BelowK: 1},
	} {
		d, err := NewDeployer(Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.DeployDegreeStats(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d: %+v, want %+v", n, got, want)
		}
	}
	// Negative k is rejected.
	d, err := NewDeployer(Config{Sensors: 10, Scheme: scheme, Channel: channel.OnOff{P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeployDegreeStats(1, -1); err == nil {
		t.Error("negative degree level: want error")
	}
}

// TestDeployConnectivityTinyNetworks pins the conventions at degenerate
// sizes: n = 0 and n = 1 count as connected (the Report convention), with
// the singleton isolated.
func TestDeployConnectivityTinyNetworks(t *testing.T) {
	scheme, err := keys.NewQComposite(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for n, want := range map[int]ConnStats{
		0: {Connected: true, Components: 0, Giant: 0, Isolated: 0},
		1: {Connected: true, Components: 1, Giant: 1, Isolated: 1},
	} {
		d, err := NewDeployer(Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.DeployConnectivity(1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d: %+v, want %+v", n, got, want)
		}
	}
}
