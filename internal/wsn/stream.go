package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// ConnStats are the union-find-answerable statistics of one deployment's
// secure topology, as computed by the streaming connectivity-only mode. The
// values match the CSR path bit for bit: Connected equals
// Network.IsConnected on a fresh deployment, Components and Giant equal
// graphalgo.Components / LargestComponentSize on FullSecureTopology, and
// Isolated equals its degree-0 count.
type ConnStats struct {
	// Connected reports whether the secure topology is one component
	// (n ≤ 1 counts as connected, the Report convention).
	Connected bool
	// Components is the number of connected components.
	Components int
	// Giant is the size of the largest component (0 when n = 0).
	Giant int
	// Isolated is the number of degree-0 sensors.
	Isolated int
}

// DeployConnectivity runs a deployment in connectivity-only mode from the
// given seed: key rings are assigned exactly as Deploy, but the channel draw
// is streamed edge by edge through the ring intersector into a union-find —
// no channel CSR, no secure CSR, no edge list, no link keys — so memory
// stays O(n + ΣK) however dense the channel is. The emitter is stopped as
// soon as one component remains (the verdict of every further edge is
// determined), which on the connected plateau skips most of each draw.
//
// Determinism: rings and channel randomness are drawn exactly as Deploy up
// to the early exit, and the reported statistics are order-independent
// functions of the secure edge set, so DeployConnectivity(seed) agrees with
// the statistics of Deploy(seed) for every channel model. Because the early
// exit leaves the remainder of the channel draw unconsumed, a generator
// handed to DeployConnectivityRand must not be used for anything afterwards
// within the same trial (per-trial streams, as montecarlo provides, satisfy
// this).
func (d *Deployer) DeployConnectivity(seed uint64) (ConnStats, error) {
	d.rand.Reseed(seed)
	return d.deployConnectivity(&d.rand)
}

// DeployConnectivityRand is DeployConnectivity drawing all randomness from r
// — the entry point for Monte Carlo trials handed a per-trial stream.
func (d *Deployer) DeployConnectivityRand(r *rng.Rand) (ConnStats, error) {
	return d.deployConnectivity(r)
}

func (d *Deployer) deployConnectivity(r *rng.Rand) (ConnStats, error) {
	d.suf.Reset(d.cfg.Sensors)
	if d.streamYield == nil {
		// One persistent closure: yield crosses the EdgeEmitter interface
		// boundary, where escape analysis would heap-allocate a fresh
		// closure per call; capturing only the receiver keeps the trial
		// loop at zero allocations.
		d.streamYield = func(u, v int32) bool {
			if d.ix.HasAtLeast(u, v, d.streamQ) {
				d.suf.Add(u, v)
			}
			return !d.suf.Done()
		}
	}
	if err := d.streamSecureEdges(r, d.streamYield); err != nil {
		return ConnStats{}, fmt.Errorf("wsn: deploy connectivity: %w", err)
	}
	return d.connStats(), nil
}

func (d *Deployer) connStats() ConnStats {
	return ConnStats{
		Connected:  d.suf.Connected(),
		Components: d.suf.Components(),
		Giant:      d.suf.GiantSize(),
		Isolated:   d.suf.IsolatedCount(),
	}
}

// DegreeStats extends ConnStats with the min-degree summary of one
// deployment's secure topology, as computed by the streaming degree mode.
type DegreeStats struct {
	ConnStats
	// K is the degree level the deployment was measured against.
	K int
	// MinDegreeAtLeastK reports whether every sensor has secure degree ≥ K
	// — the min-degree half of the paper's zero–one law (vacuously true for
	// n = 0 or K ≤ 0). Equals FullSecureTopology().MinDegree() >= K on a
	// fresh CSR deployment at the same seed.
	MinDegreeAtLeastK bool
	// MinDegree is the minimum secure degree TRUNCATED at K: exact whenever
	// it is below K, reported as K otherwise. The truncation makes the
	// value independent of whether the early exit fired mid-stream; it
	// equals min(K, true min degree) bit for bit against the CSR path.
	MinDegree int
	// BelowK is the number of sensors with secure degree < K (0 whenever
	// MinDegreeAtLeastK).
	BelowK int
}

// DeployDegreeStats runs a deployment in streaming degree mode from the
// given seed: like DeployConnectivity, the channel draw streams edge by
// edge through the ring intersector, but the secure edges feed a per-node
// degree accumulator BESIDE the union-find in the same pass. It answers the
// paper's min-degree figures — P[min degree ≥ k] and its coupling with
// k-connectivity — with O(n + ΣK) memory and no CSR graph at any n. The
// emitter is stopped as soon as both sinks are done: one component remains
// AND every sensor has reached degree k.
//
// The same determinism contract as DeployConnectivity applies; all reported
// statistics are order-independent functions of the secure edge set (which
// is why MinDegree truncates at K — past the early exit only "≥ K" is
// knowable). The channel emitter must yield each pair at most once, which
// every built-in model guarantees; degree counting is not idempotent.
func (d *Deployer) DeployDegreeStats(seed uint64, k int) (DegreeStats, error) {
	d.rand.Reseed(seed)
	return d.deployDegreeStats(&d.rand, k)
}

// DeployDegreeStatsRand is DeployDegreeStats drawing all randomness from r
// — the entry point for Monte Carlo trials handed a per-trial stream.
func (d *Deployer) DeployDegreeStatsRand(r *rng.Rand, k int) (DegreeStats, error) {
	return d.deployDegreeStats(r, k)
}

func (d *Deployer) deployDegreeStats(r *rng.Rand, k int) (DegreeStats, error) {
	if k < 0 {
		return DegreeStats{}, fmt.Errorf("wsn: deploy degree stats: negative degree level %d", k)
	}
	n := d.cfg.Sensors
	d.suf.Reset(n)
	d.sd.Reset(n, k)
	if d.degYield == nil {
		// Persistent for the same reason as streamYield; one closure serves
		// every k because the accumulator holds the current target.
		d.degYield = func(u, v int32) bool {
			if d.ix.HasAtLeast(u, v, d.streamQ) {
				d.suf.Add(u, v)
				d.sd.Add(u, v)
			}
			return !(d.suf.Done() && d.sd.AllAtLeastK())
		}
	}
	if err := d.streamSecureEdges(r, d.degYield); err != nil {
		return DegreeStats{}, fmt.Errorf("wsn: deploy degree stats: %w", err)
	}
	minDeg := d.sd.MinDegree()
	if minDeg > k {
		minDeg = k
	}
	return DegreeStats{
		ConnStats:         d.connStats(),
		K:                 k,
		MinDegreeAtLeastK: d.sd.AllAtLeastK(),
		MinDegree:         minDeg,
		BelowK:            d.sd.BelowK(),
	}, nil
}

// streamSecureEdges is the shared core of the graph-free deployment modes:
// key predistribution, ring-intersector reset, and the channel draw
// streamed edge by edge into yield (which filters by secure overlap and
// feeds whatever sinks the mode maintains). The caller resets its sinks
// first; yield's early-exit verdict stops the emitter.
func (d *Deployer) streamSecureEdges(r *rng.Rand, yield func(u, v int32) bool) error {
	n := d.cfg.Sensors

	// 1. Key predistribution, identical to deploy: same arena, same draws.
	var asg keys.Assignment
	var err error
	if aa, ok := d.cfg.Scheme.(keys.ArenaAssigner); ok {
		asg, err = aa.AssignInto(r, n, &d.arena)
	} else {
		asg, err = d.cfg.Scheme.Assign(r, n)
	}
	if err != nil {
		return err
	}

	// 2. Discovery state: the exact per-edge intersection predicate (the
	// same keys.Intersector the per-edge CSR strategy uses).
	if d.ix == nil {
		ix, err := keys.NewIntersector(d.cfg.Scheme.PoolSize())
		if err != nil {
			return err
		}
		d.ix = ix
	}
	if err := d.ix.Reset(asg.Rings); err != nil {
		return err
	}
	d.streamQ = d.cfg.Scheme.RequiredOverlap()

	// 3. Stream the channel draw into the sinks. Class-aware models take
	// priority exactly as in deploy, so a model that is class-aware AND a
	// plain emitter streams with the deployment's labels, never without
	// them. Models with no streaming support fall back to a sampled channel
	// graph walked edge by edge — the secure side still never materializes.
	if cem, ok := d.cfg.Channel.(channel.ClassEdgeEmitter); ok {
		err = cem.EmitClassEdges(r, n, asg.Labels, yield)
	} else if cm, ok := d.cfg.Channel.(channel.ClassModel); ok {
		var g *graph.Undirected
		if bcm, ok := d.cfg.Channel.(channel.BufferedClassModel); ok {
			g, err = bcm.SampleClassesInto(r, n, asg.Labels, d.chanBld)
		} else {
			g, err = cm.SampleClasses(r, n, asg.Labels)
		}
		if err == nil {
			g.ForEachEdge(yield)
		}
	} else if em, ok := d.cfg.Channel.(channel.EdgeEmitter); ok {
		err = em.EmitEdges(r, n, yield)
	} else {
		var g *graph.Undirected
		if bm, ok := d.cfg.Channel.(channel.BufferedModel); ok {
			g, err = bm.SampleInto(r, n, d.chanBld)
		} else {
			g, err = d.cfg.Channel.Sample(r, n)
		}
		if err == nil {
			g.ForEachEdge(yield)
		}
	}
	return err
}
