package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// ConnStats are the union-find-answerable statistics of one deployment's
// secure topology, as computed by the streaming connectivity-only mode. The
// values match the CSR path bit for bit: Connected equals
// Network.IsConnected on a fresh deployment, Components and Giant equal
// graphalgo.Components / LargestComponentSize on FullSecureTopology, and
// Isolated equals its degree-0 count.
type ConnStats struct {
	// Connected reports whether the secure topology is one component
	// (n ≤ 1 counts as connected, the Report convention).
	Connected bool
	// Components is the number of connected components.
	Components int
	// Giant is the size of the largest component (0 when n = 0).
	Giant int
	// Isolated is the number of degree-0 sensors.
	Isolated int
}

// DeployConnectivity runs a deployment in connectivity-only mode from the
// given seed: key rings are assigned exactly as Deploy, but the channel draw
// is streamed edge by edge through the ring intersector into a union-find —
// no channel CSR, no secure CSR, no edge list, no link keys — so memory
// stays O(n + ΣK) however dense the channel is. The emitter is stopped as
// soon as one component remains (the verdict of every further edge is
// determined), which on the connected plateau skips most of each draw.
//
// Determinism: rings and channel randomness are drawn exactly as Deploy up
// to the early exit, and the reported statistics are order-independent
// functions of the secure edge set, so DeployConnectivity(seed) agrees with
// the statistics of Deploy(seed) for every channel model. Because the early
// exit leaves the remainder of the channel draw unconsumed, a generator
// handed to DeployConnectivityRand must not be used for anything afterwards
// within the same trial (per-trial streams, as montecarlo provides, satisfy
// this).
func (d *Deployer) DeployConnectivity(seed uint64) (ConnStats, error) {
	d.rand.Reseed(seed)
	return d.deployConnectivity(&d.rand)
}

// DeployConnectivityRand is DeployConnectivity drawing all randomness from r
// — the entry point for Monte Carlo trials handed a per-trial stream.
func (d *Deployer) DeployConnectivityRand(r *rng.Rand) (ConnStats, error) {
	return d.deployConnectivity(r)
}

func (d *Deployer) deployConnectivity(r *rng.Rand) (ConnStats, error) {
	n := d.cfg.Sensors

	// 1. Key predistribution, identical to deploy: same arena, same draws.
	var asg keys.Assignment
	var err error
	if aa, ok := d.cfg.Scheme.(keys.ArenaAssigner); ok {
		asg, err = aa.AssignInto(r, n, &d.arena)
	} else {
		asg, err = d.cfg.Scheme.Assign(r, n)
	}
	if err != nil {
		return ConnStats{}, fmt.Errorf("wsn: deploy connectivity: %w", err)
	}

	// 2. Discovery state: the exact per-edge intersection predicate (the
	// same keys.Intersector the per-edge CSR strategy uses) and the
	// union-find sink.
	if d.ix == nil {
		ix, err := keys.NewIntersector(d.cfg.Scheme.PoolSize())
		if err != nil {
			return ConnStats{}, fmt.Errorf("wsn: deploy connectivity: %w", err)
		}
		d.ix = ix
	}
	if err := d.ix.Reset(asg.Rings); err != nil {
		return ConnStats{}, fmt.Errorf("wsn: deploy connectivity: %w", err)
	}
	d.streamQ = d.cfg.Scheme.RequiredOverlap()
	d.suf.Reset(n)
	if d.streamYield == nil {
		// One persistent closure: yield crosses the EdgeEmitter interface
		// boundary, where escape analysis would heap-allocate a fresh
		// closure per call; capturing only the receiver keeps the trial
		// loop at zero allocations.
		d.streamYield = func(u, v int32) bool {
			if d.ix.HasAtLeast(u, v, d.streamQ) {
				d.suf.Add(u, v)
			}
			return !d.suf.Done()
		}
	}

	// 3. Stream the channel draw into the union-find. Class-aware models
	// take priority exactly as in deploy, so a model that is class-aware AND
	// a plain emitter streams with the deployment's labels, never without
	// them. Models with no streaming support fall back to a sampled channel
	// graph walked edge by edge — the secure side still never materializes.
	if cem, ok := d.cfg.Channel.(channel.ClassEdgeEmitter); ok {
		err = cem.EmitClassEdges(r, n, asg.Labels, d.streamYield)
	} else if cm, ok := d.cfg.Channel.(channel.ClassModel); ok {
		var g *graph.Undirected
		if bcm, ok := d.cfg.Channel.(channel.BufferedClassModel); ok {
			g, err = bcm.SampleClassesInto(r, n, asg.Labels, d.chanBld)
		} else {
			g, err = cm.SampleClasses(r, n, asg.Labels)
		}
		if err == nil {
			g.ForEachEdge(d.streamYield)
		}
	} else if em, ok := d.cfg.Channel.(channel.EdgeEmitter); ok {
		err = em.EmitEdges(r, n, d.streamYield)
	} else {
		var g *graph.Undirected
		if bm, ok := d.cfg.Channel.(channel.BufferedModel); ok {
			g, err = bm.SampleInto(r, n, d.chanBld)
		} else {
			g, err = d.cfg.Channel.Sample(r, n)
		}
		if err == nil {
			g.ForEachEdge(d.streamYield)
		}
	}
	if err != nil {
		return ConnStats{}, fmt.Errorf("wsn: deploy connectivity: %w", err)
	}

	return ConnStats{
		Connected:  d.suf.Connected(),
		Components: d.suf.Components(),
		Giant:      d.suf.GiantSize(),
		Isolated:   d.suf.IsolatedCount(),
	}, nil
}
