package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Link failures complement node failures: the paper's robustness notion is
// "connectivity despite the failure of any (k−1) sensors OR links". Failed
// links are tracked separately from node failures so both can be injected
// and restored independently.

// FailLink marks the secure link between u and v as failed. It is an error
// if no usable secure link exists between them.
func (n *Network) FailLink(u, v int32) error {
	if u == v {
		return fmt.Errorf("wsn: cannot fail a self-link (%d)", u)
	}
	if !n.Alive(u) || !n.Alive(v) {
		return fmt.Errorf("wsn: link endpoints must be alive (%d, %d)", u, v)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int32{u, v}
	if !n.secure.HasEdge(u, v) {
		return fmt.Errorf("wsn: no secure link between %d and %d", u, v)
	}
	if n.failedLinks == nil {
		n.failedLinks = make(map[[2]int32]bool)
	}
	if n.failedLinks[key] {
		return fmt.Errorf("wsn: link (%d,%d) already failed", u, v)
	}
	n.failedLinks[key] = true
	return nil
}

// FailRandomLinks fails count uniformly chosen usable secure links and
// returns them.
func (n *Network) FailRandomLinks(r *rng.Rand, count int) ([][2]int32, error) {
	usable := n.usableLinkKeys()
	if count < 0 || count > len(usable) {
		return nil, fmt.Errorf("wsn: cannot fail %d of %d usable links", count, len(usable))
	}
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(usable)-i)
		usable[i], usable[j] = usable[j], usable[i]
	}
	chosen := usable[:count]
	for _, key := range chosen {
		if err := n.FailLink(key[0], key[1]); err != nil {
			return nil, err
		}
	}
	return append([][2]int32(nil), chosen...), nil
}

// usableLinkKeys lists secure links with both endpoints alive and the link
// itself not failed, in deterministic (sorted edge) order.
func (n *Network) usableLinkKeys() [][2]int32 {
	out := make([][2]int32, 0, n.secure.M())
	n.secure.ForEachEdge(func(u, v int32) bool {
		key := [2]int32{u, v}
		if n.alive[u] && n.alive[v] && !n.failedLinks[key] {
			out = append(out, key)
		}
		return true
	})
	return out
}

// UsableLinkCount returns the number of currently usable secure links: both
// endpoints alive and the link itself not failed — the sampling universe of
// FailRandomLinks, exposed so callers (e.g. jamming campaigns) can clamp a
// link-failure budget before drawing.
func (n *Network) UsableLinkCount() int {
	count := 0
	n.secure.ForEachEdge(func(u, v int32) bool {
		if n.alive[u] && n.alive[v] && !n.failedLinks[[2]int32{u, v}] {
			count++
		}
		return true
	})
	return count
}

// RestoreLinks brings all failed links back.
func (n *Network) RestoreLinks() {
	n.failedLinks = nil
}

// FailedLinkCount returns the number of currently failed links.
func (n *Network) FailedLinkCount() int { return len(n.failedLinks) }

// operationalTopology returns the secure topology restricted to alive
// sensors AND non-failed links, densely relabelled with the new→original
// mapping.
func (n *Network) operationalTopology() (*graph.Undirected, []int32, error) {
	if len(n.failedLinks) == 0 {
		return n.SecureTopology()
	}
	newID := make([]int32, n.cfg.Sensors)
	var orig []int32
	for v := 0; v < n.cfg.Sensors; v++ {
		if n.alive[v] {
			newID[v] = int32(len(orig))
			orig = append(orig, int32(v))
		} else {
			newID[v] = -1
		}
	}
	var edges []graph.Edge
	n.secure.ForEachEdge(func(u, v int32) bool {
		if n.alive[u] && n.alive[v] && !n.failedLinks[[2]int32{u, v}] {
			edges = append(edges, graph.Edge{U: newID[u], V: newID[v]})
		}
		return true
	})
	sub, err := graph.NewFromEdges(len(orig), edges)
	if err != nil {
		return nil, nil, fmt.Errorf("wsn: operational topology: %w", err)
	}
	return sub, orig, nil
}

// IsOperationallyConnected reports connectivity of the alive,
// non-failed-link topology.
func (n *Network) IsOperationallyConnected() (bool, error) {
	sub, _, err := n.operationalTopology()
	if err != nil {
		return false, err
	}
	return graphalgo.IsConnected(sub), nil
}

// IsKEdgeConnected reports whether the operational topology survives any
// k−1 link failures (λ ≥ k).
func (n *Network) IsKEdgeConnected(k int) (bool, error) {
	sub, _, err := n.operationalTopology()
	if err != nil {
		return false, err
	}
	return graphalgo.IsKEdgeConnected(sub, k), nil
}
