package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/stats"
)

// Message sizes (bytes) for the discovery protocol cost model. Key IDs
// travel as 4-byte integers; challenges/acknowledgements carry a hash-sized
// payload.
const (
	keyIDBytes     = 4
	headerBytes    = 8  // source, destination/broadcast marker, type
	challengeBytes = 32 // nonce/MAC under the candidate link key
)

// DiscoveryStats reports the communication cost of running shared-key
// discovery and link establishment over the deployed network, following the
// standard q-composite handshake: every sensor broadcasts its key IDs once;
// for every channel neighbor with ≥ q shared keys, a challenge/response
// pair under the derived link key confirms the link.
type DiscoveryStats struct {
	// Broadcasts is the number of key-ID broadcast frames (one per sensor).
	Broadcasts int
	// BroadcastBytes is the total bytes across all broadcast frames.
	BroadcastBytes int64
	// Unicasts is the number of challenge/response frames (two per
	// established link).
	Unicasts int
	// UnicastBytes is the total bytes across challenge/response frames.
	UnicastBytes int64
	// KeyComparisons counts pairwise ring-intersection work performed by
	// receivers (one sorted-merge step each).
	KeyComparisons int64
	// EstablishedLinks is the number of secure links confirmed.
	EstablishedLinks int
	// ChannelNeighborsMean is the mean number of channel neighbors per
	// sensor (the audience of each broadcast).
	ChannelNeighborsMean float64
	// PerSensorBytes summarises bytes transmitted per sensor — the radio
	// energy proxy (transmission dominates sensor energy budgets).
	PerSensorBytes SummaryStats
}

// SummaryStats is a plain-old-data summary of a per-sensor distribution.
type SummaryStats struct {
	Mean, Max, StdDev float64
}

// SimulateDiscovery computes the deterministic communication cost of the
// discovery handshake on the deployed network (it does not change network
// state; the links are already established by Deploy, which models the same
// exchange).
func (n *Network) SimulateDiscovery() (DiscoveryStats, error) {
	if n.cfg.Sensors == 0 {
		return DiscoveryStats{}, nil
	}
	sent := make([]int64, n.cfg.Sensors)
	st := DiscoveryStats{}

	// Phase 1: one key-ID broadcast per sensor, heard by channel neighbors.
	// Frames are sized by the sensor's actual ring (per-class sizes under a
	// heterogeneous scheme); each neighbor merges the received ring against
	// its own, one sorted merge of |ring_v| + |ring_w| steps.
	totalNeighbors := 0
	for v := int32(0); int(v) < n.cfg.Sensors; v++ {
		broadcastFrame := int64(headerBytes + n.rings[v].Len()*keyIDBytes)
		st.Broadcasts++
		st.BroadcastBytes += broadcastFrame
		sent[v] += broadcastFrame
		totalNeighbors += n.channels.Degree(v)
	}
	n.channels.ForEachEdge(func(u, v int32) bool {
		// Both endpoints hear each other's broadcast; each runs one merge.
		st.KeyComparisons += 2 * int64(n.rings[u].Len()+n.rings[v].Len())
		return true
	})
	st.ChannelNeighborsMean = float64(totalNeighbors) / float64(n.cfg.Sensors)

	// Phase 2: challenge/response per qualifying channel edge. The
	// lower-indexed endpoint issues the challenge; the peer acknowledges.
	q := n.cfg.Scheme.RequiredOverlap()
	n.channels.ForEachEdge(func(u, v int32) bool {
		shared := n.rings[u].SharedCount(n.rings[v])
		if shared < q {
			return true
		}
		frame := int64(headerBytes + challengeBytes)
		st.Unicasts += 2
		st.UnicastBytes += 2 * frame
		sent[u] += frame
		sent[v] += frame
		st.EstablishedLinks++
		return true
	})

	var summary stats.Summary
	for _, b := range sent {
		summary.Add(float64(b))
	}
	st.PerSensorBytes = SummaryStats{
		Mean:   summary.Mean(),
		Max:    summary.Max(),
		StdDev: summary.StdDev(),
	}
	if st.EstablishedLinks != n.secure.M() {
		// Deploy and SimulateDiscovery must agree by construction.
		return DiscoveryStats{}, fmt.Errorf(
			"wsn: discovery found %d links but deployment established %d",
			st.EstablishedLinks, n.secure.M())
	}
	return st, nil
}
