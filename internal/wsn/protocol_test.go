package wsn

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
)

func TestSimulateDiscoveryBasics(t *testing.T) {
	net := deployTest(t, 21)
	st, err := net.SimulateDiscovery()
	if err != nil {
		t.Fatal(err)
	}
	n := net.Sensors()
	if st.Broadcasts != n {
		t.Errorf("Broadcasts = %d, want %d", st.Broadcasts, n)
	}
	ringSize := keys.MaxRingSize(net.Scheme())
	wantBroadcastBytes := int64(n) * int64(headerBytes+ringSize*keyIDBytes)
	if st.BroadcastBytes != wantBroadcastBytes {
		t.Errorf("BroadcastBytes = %d, want %d", st.BroadcastBytes, wantBroadcastBytes)
	}
	if st.EstablishedLinks != net.FullSecureTopology().M() {
		t.Errorf("EstablishedLinks = %d, topology has %d", st.EstablishedLinks, net.FullSecureTopology().M())
	}
	if st.Unicasts != 2*st.EstablishedLinks {
		t.Errorf("Unicasts = %d, want %d", st.Unicasts, 2*st.EstablishedLinks)
	}
	wantUnicastBytes := int64(st.Unicasts) * int64(headerBytes+challengeBytes)
	if st.UnicastBytes != wantUnicastBytes {
		t.Errorf("UnicastBytes = %d, want %d", st.UnicastBytes, wantUnicastBytes)
	}
	wantNeighbors := 2 * float64(net.ChannelTopology().M()) / float64(n)
	if math.Abs(st.ChannelNeighborsMean-wantNeighbors) > 1e-9 {
		t.Errorf("ChannelNeighborsMean = %v, want %v", st.ChannelNeighborsMean, wantNeighbors)
	}
	if st.KeyComparisons != int64(2*net.ChannelTopology().M())*int64(2*ringSize) {
		t.Errorf("KeyComparisons = %d", st.KeyComparisons)
	}
	// Per-sensor energy proxy: mean must equal total bytes / n.
	totalBytes := float64(st.BroadcastBytes + st.UnicastBytes)
	if math.Abs(st.PerSensorBytes.Mean-totalBytes/float64(n)) > 1e-6 {
		t.Errorf("PerSensorBytes.Mean = %v, want %v", st.PerSensorBytes.Mean, totalBytes/float64(n))
	}
	if st.PerSensorBytes.Max < st.PerSensorBytes.Mean {
		t.Error("max below mean")
	}
}

func TestSimulateDiscoveryEmptyNetwork(t *testing.T) {
	scheme, err := keys.NewQComposite(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Deploy(Config{Sensors: 0, Scheme: scheme, Channel: channel.AlwaysOn{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := net.SimulateDiscovery()
	if err != nil {
		t.Fatal(err)
	}
	if st.Broadcasts != 0 || st.Unicasts != 0 || st.EstablishedLinks != 0 {
		t.Errorf("empty network stats: %+v", st)
	}
}

func TestSimulateDiscoveryScalesWithRing(t *testing.T) {
	// Bigger rings cost proportionally more broadcast bytes.
	mk := func(ring int) DiscoveryStats {
		scheme, err := keys.NewQComposite(1000, ring, 1)
		if err != nil {
			t.Fatal(err)
		}
		net, err := Deploy(Config{Sensors: 50, Scheme: scheme, Channel: channel.OnOff{P: 0.5}, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		st, err := net.SimulateDiscovery()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	small, big := mk(10), mk(40)
	if big.BroadcastBytes <= small.BroadcastBytes {
		t.Errorf("broadcast bytes did not grow with ring size: %d vs %d",
			small.BroadcastBytes, big.BroadcastBytes)
	}
}
