package wsn

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/keys"
)

func TestRevokeNodeKeysBasics(t *testing.T) {
	net := deployTest(t, 51)
	ringSize := keys.MaxRingSize(net.Scheme())
	before := net.FullSecureTopology().M()

	torn, err := net.RevokeNodeKeys(0)
	if err != nil {
		t.Fatal(err)
	}
	if net.Alive(0) {
		t.Error("revoked sensor still alive")
	}
	if got := net.RevokedKeyCount(); got != ringSize {
		t.Errorf("RevokedKeyCount = %d, want %d", got, ringSize)
	}
	after := net.FullSecureTopology().M()
	if after > before {
		t.Errorf("links grew after revocation: %d -> %d", before, after)
	}
	if torn < 0 {
		t.Errorf("torn = %d", torn)
	}

	// Every surviving link must have ≥ q unrevoked shared keys, and link
	// keys must be re-derived from the surviving set only.
	q := net.Scheme().RequiredOverlap()
	for _, l := range net.Links() {
		if len(l.SharedKeys) < q {
			t.Fatalf("surviving link (%d,%d) has only %d shared keys", l.A, l.B, len(l.SharedKeys))
		}
		ring0, err := net.Ring(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range l.SharedKeys {
			if ring0.Contains(k) {
				t.Fatalf("surviving link (%d,%d) still uses revoked key %d", l.A, l.B, k)
			}
		}
		if l.Key != keys.DeriveLinkKey(l.SharedKeys) {
			t.Fatalf("link (%d,%d) key not re-derived", l.A, l.B)
		}
	}
}

func TestRevokeNodeKeysOutOfRange(t *testing.T) {
	net := deployTest(t, 52)
	if _, err := net.RevokeNodeKeys(int32(net.Sensors())); err == nil {
		t.Error("out of range: want error")
	}
	if _, err := net.RevokeNodeKeys(-1); err == nil {
		t.Error("negative: want error")
	}
}

func TestRevokeCumulative(t *testing.T) {
	net := deployTest(t, 53)
	if _, err := net.RevokeNodeKeys(0); err != nil {
		t.Fatal(err)
	}
	first := net.RevokedKeyCount()
	if _, err := net.RevokeNodeKeys(1, 2); err != nil {
		t.Fatal(err)
	}
	second := net.RevokedKeyCount()
	if second < first {
		t.Errorf("revoked count shrank: %d -> %d", first, second)
	}
	maxPossible := 3 * keys.MaxRingSize(net.Scheme())
	if second > maxPossible {
		t.Errorf("revoked %d keys, cannot exceed %d", second, maxPossible)
	}
	// Revoking an already-dead sensor is permitted (idempotent failure).
	if _, err := net.RevokeNodeKeys(0); err != nil {
		t.Errorf("re-revocation errored: %v", err)
	}
}

func TestRevocationImpact(t *testing.T) {
	net := deployTest(t, 54)
	imp0, err := net.Impact()
	if err != nil {
		t.Fatal(err)
	}
	if imp0.RevokedKeys != 0 {
		t.Errorf("initial RevokedKeys = %d", imp0.RevokedKeys)
	}
	ringSize := float64(keys.MaxRingSize(net.Scheme()))
	if imp0.EffectiveRingMean != ringSize {
		t.Errorf("initial EffectiveRingMean = %v, want %v", imp0.EffectiveRingMean, ringSize)
	}
	// Revoke a batch and confirm the effective ring shrinks and links drop.
	for id := int32(0); id < 10; id++ {
		if _, err := net.RevokeNodeKeys(id); err != nil {
			t.Fatal(err)
		}
	}
	imp1, err := net.Impact()
	if err != nil {
		t.Fatal(err)
	}
	if imp1.EffectiveRingMean >= ringSize {
		t.Errorf("EffectiveRingMean did not shrink: %v", imp1.EffectiveRingMean)
	}
	if imp1.SecureLinks > imp0.SecureLinks {
		t.Errorf("SecureLinks grew: %d -> %d", imp0.SecureLinks, imp1.SecureLinks)
	}
	if imp1.RevokedKeys != net.RevokedKeyCount() {
		t.Errorf("impact revoked keys mismatch")
	}
}

func TestRevocationSlidesDownFigure1(t *testing.T) {
	// The analytical reading: revoking keys reduces the effective K, so a
	// network dimensioned just above the connectivity threshold must
	// eventually disconnect as revocations accumulate.
	net := deployTest(t, 55)
	conn, err := net.IsConnected()
	if err != nil {
		t.Fatal(err)
	}
	if !conn {
		t.Skip("network not connected at this seed")
	}
	disconnectedAt := -1
	for batch := 0; batch < 10; batch++ {
		for id := int32(batch * 5); id < int32(batch*5+5); id++ {
			if _, err := net.RevokeNodeKeys(id); err != nil {
				t.Fatal(err)
			}
		}
		imp, err := net.Impact()
		if err != nil {
			t.Fatal(err)
		}
		if !imp.Connected {
			disconnectedAt = batch
			break
		}
	}
	// With 50 of 120 sensors revoked the effective rings are far below the
	// threshold; the network must have disconnected somewhere along the way.
	if disconnectedAt == -1 {
		imp, err := net.Impact()
		if err != nil {
			t.Fatal(err)
		}
		t.Errorf("network still connected after heavy revocation (impact %+v)", imp)
	}
}
