package wsn

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// unbufferedChannel hides a model's BufferedModel/BufferedClassModel
// methods behind a plain Model interface, forcing the Deployer onto the
// allocating Sample path.
type unbufferedChannel struct{ m channel.Model }

func (u unbufferedChannel) Name() string    { return u.m.Name() }
func (u unbufferedChannel) Validate() error { return u.m.Validate() }
func (u unbufferedChannel) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	return u.m.Sample(r, n)
}

// unbufferedClassChannel is the ClassModel analogue.
type unbufferedClassChannel struct{ m channel.ClassModel }

func (u unbufferedClassChannel) Name() string    { return u.m.Name() }
func (u unbufferedClassChannel) Validate() error { return u.m.Validate() }
func (u unbufferedClassChannel) ClassCount() int { return u.m.ClassCount() }
func (u unbufferedClassChannel) Sample(r *rng.Rand, n int) (*graph.Undirected, error) {
	return u.m.Sample(r, n)
}
func (u unbufferedClassChannel) SampleClasses(r *rng.Rand, n int, labels []uint8) (*graph.Undirected, error) {
	return u.m.SampleClasses(r, n, labels)
}

// TestBufferedDeploymentMatchesUnbuffered pins the tentpole equivalence: a
// Deployer running the buffered channel/builder/workspace path must produce
// byte-identical networks — secure topology, channel topology, shared keys
// and derived link keys — to one whose channel model only offers the
// allocating Sample path, for every configuration and across reuse.
func TestBufferedDeploymentMatchesUnbuffered(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			unbufCfg := cfg
			if cm, ok := cfg.Channel.(channel.ClassModel); ok {
				unbufCfg.Channel = unbufferedClassChannel{m: cm}
			} else {
				unbufCfg.Channel = unbufferedChannel{m: cfg.Channel}
			}
			buffered, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			unbuffered, err := NewDeployer(unbufCfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(1); seed <= 3; seed++ {
				want, err := unbuffered.Deploy(seed)
				if err != nil {
					t.Fatal(err)
				}
				got, err := buffered.Deploy(seed)
				if err != nil {
					t.Fatal(err)
				}
				requireSameNetwork(t, want, got)
			}
		})
	}
}

// TestConnectivityTrialAllocBudget is the alloc-budget regression gate on
// the connectivity trial loops (the BenchmarkDeployPipeline hot paths):
// after warm-up, a reused Deployer must answer connectivity with ZERO
// allocations per trial — on the CSR path (deploy + IsConnected; rng.Reseed
// removed its last allocation, the per-Deploy generator; the seed state ran
// it at ≈ 2,020 allocs per trial), on the streaming path
// (DeployConnectivity, whose persistent yield closure keeps the
// EdgeEmitter interface crossing allocation-free), and on the streaming
// degree path (DeployDegreeStats, same closure discipline with the degree
// accumulator riding beside the union-find).
func TestConnectivityTrialAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs the full n=1000 deployment")
	}
	scheme, err := keys.NewQComposite(10000, 41, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployer(Config{Sensors: 1000, Scheme: scheme, Channel: channel.OnOff{P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	trials := map[string]func(){
		"csr": func() {
			seed++
			net, err := d.Deploy(seed)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.IsConnected(); err != nil {
				t.Fatal(err)
			}
		},
		"streaming": func() {
			seed++
			if _, err := d.DeployConnectivity(seed); err != nil {
				t.Fatal(err)
			}
		},
		"streaming-degrees": func() {
			seed++
			if _, err := d.DeployDegreeStats(seed, 2); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, trial := range trials {
		t.Run(name, func(t *testing.T) {
			// Warm up so every amortized buffer has grown to its working size.
			for i := 0; i < 8; i++ {
				trial()
			}
			if avg := testing.AllocsPerRun(20, trial); avg != 0 {
				t.Errorf("%s connectivity trial allocates %.1f allocs/run, want 0", name, avg)
			}
		})
	}
}
