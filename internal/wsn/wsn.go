// Package wsn is the wireless sensor network simulator: it deploys sensors
// with a key predistribution scheme, samples the physical channel model,
// runs shared-key discovery over usable channels, and exposes the resulting
// secure topology — exactly the graph G_{n,q}(n,K,P,p) = G_q(n,K,P) ∩ G(n,p)
// of the paper's Section II — together with the operational queries a
// deployment cares about: secure paths, k-connectivity, failure injection,
// and per-link keys.
package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/bitset"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// Config describes a deployment. The scheme's sensor classes are a
// deployment-level concept: the per-sensor class labels drawn during key
// predistribution are shared with the channel model when it is class-aware
// (channel.ClassModel, e.g. channel.HeterOnOff), so both layers see one
// class assignment. validate checks that such a pairing is coherent.
type Config struct {
	// Sensors is the number of sensors n.
	Sensors int
	// Scheme is the key predistribution scheme (e.g. keys.NewQComposite for
	// the uniform model, keys.NewHeterogeneous for per-class ring sizes).
	Scheme keys.Scheme
	// Channel is the physical link model (e.g. channel.OnOff{P: 0.5}, or
	// channel.HeterOnOff for per-class on/off probabilities).
	Channel channel.Model
	// Seed drives all randomness of the deployment deterministically.
	Seed uint64
}

func (c Config) validate() error {
	if c.Sensors < 0 {
		return fmt.Errorf("wsn: negative sensor count %d", c.Sensors)
	}
	if c.Scheme == nil {
		return fmt.Errorf("wsn: missing key predistribution scheme")
	}
	if c.Channel == nil {
		return fmt.Errorf("wsn: missing channel model")
	}
	if err := c.Channel.Validate(); err != nil {
		return fmt.Errorf("wsn: invalid channel model: %w", err)
	}
	schemeClasses := len(c.Scheme.Classes())
	if schemeClasses == 0 {
		return fmt.Errorf("wsn: scheme %q declares no sensor classes", c.Scheme.Name())
	}
	// A multi-class scheme under a class-blind channel is the
	// heterogeneous-keys/uniform-channel model of arXiv:1604.00460 and needs
	// no check; a class-aware channel must agree with the scheme on the
	// number of classes, since they share one label assignment.
	if cm, ok := c.Channel.(channel.ClassModel); ok {
		if cm.ClassCount() != schemeClasses {
			return fmt.Errorf("wsn: channel model %q expects %d sensor classes but scheme %q declares %d",
				c.Channel.Name(), cm.ClassCount(), c.Scheme.Name(), schemeClasses)
		}
	}
	return nil
}

// Link is an established secure link between two sensors.
type Link struct {
	// A and B are the endpoints, A < B.
	A, B int32
	// SharedKeys are the key IDs both endpoints hold (≥ q of them).
	SharedKeys []keys.ID
	// Key is the derived pairwise link key.
	Key [keys.LinkKeySize]byte
}

// Network is a deployed WSN. It is not safe for concurrent mutation; treat
// a Network as owned by one goroutine.
//
// Link keys are derived lazily: shared-key discovery during deployment only
// decides which links exist, and the per-link SHA-256 key material is
// materialized on the first Link/Links access (and again after revocations,
// which change the surviving shared sets). Connectivity-only workloads
// therefore never pay for key derivation.
type Network struct {
	cfg         Config
	rings       []keys.Ring
	labels      []uint8 // per-sensor class labels; nil = single class
	channels    *graph.Undirected
	secure      *graph.Undirected
	alive       []bool
	deadN       int
	failedLinks map[[2]int32]bool
	revoked     *bitset.Set

	// Connectivity scratch shared with the owning Deployer (nil for
	// networks assembled outside a Deployer); used transiently by
	// IsConnected/IsKConnected queries.
	algo *graphalgo.Workspace

	// Lazily materialized link table over the current secure topology;
	// linksReady reports whether it reflects the current state (revocation
	// and redeployment invalidate it, keeping the grown buffers).
	linksReady bool
	linkIdx    map[[2]int32]int32
	linkStore  []Link
	linkFlat   []keys.ID // flat arena behind linkStore[i].SharedKeys
	linkOffs   []int     // per-link offsets into linkFlat
	sharedBuf  []keys.ID // scratch for shared-set queries
}

// reset re-points the network at a fresh deployment's state, reusing the
// grown buffers (liveness flags, link-table storage) it already owns. Called
// by Deployer on its double-buffered Network slots.
func (n *Network) reset(cfg Config, rings []keys.Ring, labels []uint8,
	channels, secure *graph.Undirected, algo *graphalgo.Workspace) {
	n.cfg = cfg
	n.rings = rings
	n.labels = labels
	n.channels = channels
	n.secure = secure
	n.algo = algo
	sensors := cfg.Sensors
	if cap(n.alive) < sensors {
		n.alive = make([]bool, sensors)
	}
	n.alive = n.alive[:sensors]
	for i := range n.alive {
		n.alive[i] = true
	}
	n.deadN = 0
	n.failedLinks = nil
	n.revoked = nil
	n.invalidateLinks()
}

// Deploy assigns key rings, samples the channel model, and performs
// shared-key discovery over every usable channel, establishing a secure link
// wherever at least q keys are shared.
//
// Deploy is the one-shot entry point; Monte Carlo workloads that deploy
// repeatedly should use a Deployer (or DeployerPool), which amortizes every
// internal buffer across deployments.
func Deploy(cfg Config) (*Network, error) {
	d, err := NewDeployer(cfg)
	if err != nil {
		return nil, err
	}
	return d.Deploy(cfg.Seed)
}

// materializeLinks builds the link table for the current secure topology:
// one pass collects every link's surviving shared keys into a flat arena,
// a second derives the link keys. Called lazily from Link/Links. The index
// map and both arenas are reused across invalidations, so re-materializing
// (after revocation or Deployer reuse) allocates only on growth.
func (n *Network) materializeLinks() {
	if n.linksReady {
		return
	}
	m := n.secure.M()
	if n.linkIdx == nil {
		n.linkIdx = make(map[[2]int32]int32, m)
	} else {
		clear(n.linkIdx)
	}
	if cap(n.linkStore) < m {
		n.linkStore = make([]Link, 0, m)
	}
	n.linkStore = n.linkStore[:0]
	flat := n.linkFlat[:0]
	offs := append(n.linkOffs[:0], 0)
	n.secure.ForEachEdge(func(u, v int32) bool {
		flat = n.appendSurvivingShared(u, v, flat)
		offs = append(offs, len(flat))
		n.linkIdx[[2]int32{u, v}] = int32(len(n.linkStore))
		n.linkStore = append(n.linkStore, Link{A: u, B: v})
		return true
	})
	n.linkFlat, n.linkOffs = flat, offs
	for i := range n.linkStore {
		shared := flat[offs[i]:offs[i+1]:offs[i+1]]
		n.linkStore[i].SharedKeys = shared
		n.linkStore[i].Key = keys.DeriveLinkKey(shared)
	}
	n.linksReady = true
}

// invalidateLinks drops the materialized link table (after revocation or
// redeployment), keeping its storage for the next materialization.
func (n *Network) invalidateLinks() {
	n.linksReady = false
	n.linkStore = n.linkStore[:0]
}

// appendSurvivingShared appends the shared keys of u and v that have not
// been revoked, in ascending order.
func (n *Network) appendSurvivingShared(u, v int32, dst []keys.ID) []keys.ID {
	start := len(dst)
	dst = n.rings[u].AppendShared(n.rings[v], dst)
	if n.revoked == nil {
		return dst
	}
	w := start
	for _, k := range dst[start:] {
		if !n.revoked.Contains(int(k)) {
			dst[w] = k
			w++
		}
	}
	return dst[:w]
}

// Sensors returns the number of deployed sensors.
func (n *Network) Sensors() int { return n.cfg.Sensors }

// Scheme returns the key predistribution scheme the network was deployed
// with.
func (n *Network) Scheme() keys.Scheme { return n.cfg.Scheme }

// AliveCount returns the number of non-failed sensors.
func (n *Network) AliveCount() int { return n.cfg.Sensors - n.deadN }

// Alive reports whether sensor v has not failed.
func (n *Network) Alive(v int32) bool {
	return int(v) >= 0 && int(v) < len(n.alive) && n.alive[v]
}

// AppendAliveIDs appends the IDs of all alive sensors to dst in ascending
// order and returns the extended slice. It is the sampling universe for
// liveness-aware random processes (FailRandom, adversary.CaptureRandom): a
// partial Fisher–Yates over this list draws uniformly from alive sensors
// only.
func (n *Network) AppendAliveIDs(dst []int32) []int32 {
	for v, ok := range n.alive {
		if ok {
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// Ring returns sensor v's key ring.
func (n *Network) Ring(v int32) (keys.Ring, error) {
	if int(v) < 0 || int(v) >= len(n.rings) {
		return keys.Ring{}, fmt.Errorf("wsn: sensor %d out of range", v)
	}
	return n.rings[v], nil
}

// ClassOf returns sensor v's class index into Scheme().Classes().
func (n *Network) ClassOf(v int32) (int, error) {
	if int(v) < 0 || int(v) >= n.cfg.Sensors {
		return 0, fmt.Errorf("wsn: sensor %d out of range", v)
	}
	if n.labels == nil {
		return 0, nil
	}
	return int(n.labels[v]), nil
}

// ChannelTopology returns the sampled channel graph (ignores failures).
func (n *Network) ChannelTopology() *graph.Undirected { return n.channels }

// FullSecureTopology returns the secure topology over all sensors, failed or
// not — the graph G_{n,q} the paper analyses.
func (n *Network) FullSecureTopology() *graph.Undirected { return n.secure }

// SecureTopology returns the secure topology induced by the currently alive
// sensors, relabelled densely, along with the mapping from new index to
// original sensor ID.
func (n *Network) SecureTopology() (*graph.Undirected, []int32, error) {
	sub, orig, err := graph.InducedSubgraph(n.secure, n.alive)
	if err != nil {
		return nil, nil, fmt.Errorf("wsn: secure topology: %w", err)
	}
	return sub, orig, nil
}

// Link returns the established secure link between u and v, if any. Links
// to or from failed sensors are reported as absent. The first call (after
// deployment or revocation) materializes the link table, deriving every
// link key.
func (n *Network) Link(u, v int32) (*Link, bool) {
	if u == v || !n.Alive(u) || !n.Alive(v) {
		return nil, false
	}
	if u > v {
		u, v = v, u
	}
	n.materializeLinks()
	idx, ok := n.linkIdx[[2]int32{u, v}]
	if !ok {
		return nil, false
	}
	// Copy at the boundary: callers must not mutate internal state.
	l := &n.linkStore[idx]
	cp := *l
	cp.SharedKeys = append([]keys.ID(nil), l.SharedKeys...)
	return &cp, true
}

// Links returns all currently usable secure links (both endpoints alive).
// Like Link, the first call materializes the link table.
func (n *Network) Links() []Link {
	n.materializeLinks()
	out := make([]Link, 0, len(n.linkStore))
	for i := range n.linkStore {
		l := &n.linkStore[i]
		if n.alive[l.A] && n.alive[l.B] {
			cp := *l
			cp.SharedKeys = append([]keys.ID(nil), l.SharedKeys...)
			out = append(out, cp)
		}
	}
	return out
}

// IsConnected reports whether the alive part of the network is connected.
// With no failed sensors it runs directly on the full secure topology,
// skipping the induced-subgraph copy — the hot path of connectivity trials,
// which runs through the Deployer's reusable graphalgo.Workspace (one-shot
// scratch for networks deployed outside a Deployer).
func (n *Network) IsConnected() (bool, error) {
	if n.deadN == 0 {
		return graphalgo.IsConnectedW(n.algo, n.secure), nil
	}
	sub, _, err := n.SecureTopology()
	if err != nil {
		return false, err
	}
	return graphalgo.IsConnectedW(n.algo, sub), nil
}

// IsKConnected reports whether the alive part of the network is k-connected
// (the paper's resilience property: it survives any k−1 further failures).
func (n *Network) IsKConnected(k int) (bool, error) {
	if n.deadN == 0 {
		return graphalgo.IsKConnectedW(n.algo, n.secure, k), nil
	}
	sub, _, err := n.SecureTopology()
	if err != nil {
		return false, err
	}
	return graphalgo.IsKConnectedW(n.algo, sub, k), nil
}

// SecurePath returns a shortest multi-hop path of secure links between alive
// sensors a and b (inclusive, in original sensor IDs), or nil when no such
// path exists.
func (n *Network) SecurePath(a, b int32) ([]int32, error) {
	if !n.Alive(a) || !n.Alive(b) {
		return nil, fmt.Errorf("wsn: secure path endpoints must be alive sensors (a=%d, b=%d)", a, b)
	}
	sub, orig, err := n.SecureTopology()
	if err != nil {
		return nil, err
	}
	// Map original IDs to induced indices.
	newID := make(map[int32]int32, len(orig))
	for i, o := range orig {
		newID[o] = int32(i)
	}
	path := graphalgo.ShortestPath(sub, newID[a], newID[b])
	if path == nil {
		return nil, nil
	}
	out := make([]int32, len(path))
	for i, v := range path {
		out[i] = orig[v]
	}
	return out, nil
}

// FailNodes marks the given sensors as failed. Failing an already-failed or
// out-of-range sensor is an error.
func (n *Network) FailNodes(ids ...int32) error {
	for _, id := range ids {
		if int(id) < 0 || int(id) >= len(n.alive) {
			return fmt.Errorf("wsn: sensor %d out of range", id)
		}
		if !n.alive[id] {
			return fmt.Errorf("wsn: sensor %d already failed", id)
		}
	}
	for _, id := range ids {
		n.alive[id] = false
		n.deadN++
	}
	return nil
}

// FailRandom fails count uniformly chosen alive sensors and returns their
// IDs.
func (n *Network) FailRandom(r *rng.Rand, count int) ([]int32, error) {
	aliveIDs := n.AppendAliveIDs(make([]int32, 0, n.AliveCount()))
	if count < 0 || count > len(aliveIDs) {
		return nil, fmt.Errorf("wsn: cannot fail %d of %d alive sensors", count, len(aliveIDs))
	}
	// Partial Fisher–Yates over the alive list.
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(aliveIDs)-i)
		aliveIDs[i], aliveIDs[j] = aliveIDs[j], aliveIDs[i]
	}
	chosen := append([]int32(nil), aliveIDs[:count]...)
	if err := n.FailNodes(chosen...); err != nil {
		return nil, err
	}
	return chosen, nil
}

// RestoreAll brings every failed sensor back (fresh-deployment state).
func (n *Network) RestoreAll() {
	for i := range n.alive {
		n.alive[i] = true
	}
	n.deadN = 0
}

// ClassReport is the per-class slice of a Report: the deployment-level
// class assignment plus per-class topology statistics, serialized alongside
// the aggregate report.
type ClassReport struct {
	// Mu and RingSize echo the scheme's class profile.
	Mu       float64 `json:"mu"`
	RingSize int     `json:"ring_size"`
	// Sensors and Alive count the sensors the deployment assigned to the
	// class, and how many of those have not failed.
	Sensors int `json:"sensors"`
	Alive   int `json:"alive"`
	// MeanDegree is the mean secure degree of the class's alive sensors in
	// the alive secure topology (the heterogeneous analysis' per-class
	// degree: the smallest class bounds connectivity).
	MeanDegree float64 `json:"mean_degree"`
}

// Report summarises the deployed network. It is the stable serialized form
// of a Snapshot (JSON tags), so experiment tooling can persist deployment
// summaries alongside graph serializations.
type Report struct {
	Sensors        int     `json:"sensors"`
	Alive          int     `json:"alive"`
	SecureLinks    int     `json:"secure_links"`  // usable secure links among alive sensors
	ChannelEdges   int     `json:"channel_edges"` // raw channel graph edges
	MinDegree      int     `json:"min_degree"`    // of the alive secure topology
	MeanDegree     float64 `json:"mean_degree"`   // of the alive secure topology
	Components     int     `json:"components"`
	LargestComp    int     `json:"largest_component"`
	Connected      bool    `json:"connected"`
	SchemeName     string  `json:"scheme"`
	ChannelName    string  `json:"channel"`
	RequiredShared int     `json:"required_shared"`
	// Classes holds one entry per scheme class, in class-index order.
	// Single-class deployments report one entry covering every sensor.
	Classes []ClassReport `json:"classes"`
}

// Snapshot computes a Report for the current network state, including the
// per-class metadata of the deployment's class assignment.
func (n *Network) Snapshot() (Report, error) {
	sub, orig, err := n.SecureTopology()
	if err != nil {
		return Report{}, err
	}
	_, comps := graphalgo.Components(sub)
	rep := Report{
		Sensors:        n.cfg.Sensors,
		Alive:          n.AliveCount(),
		SecureLinks:    sub.M(),
		ChannelEdges:   n.channels.M(),
		MinDegree:      sub.MinDegree(),
		Components:     comps,
		LargestComp:    graphalgo.LargestComponentSize(sub),
		Connected:      comps <= 1,
		SchemeName:     n.cfg.Scheme.Name(),
		ChannelName:    n.cfg.Channel.Name(),
		RequiredShared: n.cfg.Scheme.RequiredOverlap(),
	}
	if sub.N() > 0 {
		rep.MeanDegree = 2 * float64(sub.M()) / float64(sub.N())
	}

	classes := n.cfg.Scheme.Classes()
	rep.Classes = make([]ClassReport, len(classes))
	for i, c := range classes {
		rep.Classes[i].Mu = c.Mu
		rep.Classes[i].RingSize = c.RingSize
	}
	for v := 0; v < n.cfg.Sensors; v++ {
		c := 0
		if n.labels != nil {
			c = int(n.labels[v])
		}
		rep.Classes[c].Sensors++
		if n.alive[v] {
			rep.Classes[c].Alive++
		}
	}
	// Per-class mean secure degree over alive sensors (sub is the alive
	// topology; orig maps its vertices back to sensor IDs).
	degSum := make([]float64, len(classes))
	for i := 0; i < sub.N(); i++ {
		c := 0
		if n.labels != nil {
			c = int(n.labels[orig[i]])
		}
		degSum[c] += float64(sub.Degree(int32(i)))
	}
	for i := range rep.Classes {
		if rep.Classes[i].Alive > 0 {
			rep.Classes[i].MeanDegree = degSum[i] / float64(rep.Classes[i].Alive)
		}
	}
	return rep, nil
}
