package wsn

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestFailLinkValidation(t *testing.T) {
	net := deployTest(t, 31)
	if err := net.FailLink(0, 0); err == nil {
		t.Error("self link: want error")
	}
	links := net.Links()
	if len(links) == 0 {
		t.Fatal("no links to test with")
	}
	l := links[0]
	if err := net.FailLink(l.A, l.B); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	if err := net.FailLink(l.B, l.A); err == nil {
		t.Error("double failure (reversed): want error")
	}
	if net.FailedLinkCount() != 1 {
		t.Errorf("FailedLinkCount = %d", net.FailedLinkCount())
	}
	// A non-existent link cannot fail.
	var nonEdge [2]int32 = findNonLink(t, net)
	if err := net.FailLink(nonEdge[0], nonEdge[1]); err == nil {
		t.Error("non-link failure: want error")
	}
	net.RestoreLinks()
	if net.FailedLinkCount() != 0 {
		t.Error("RestoreLinks did not clear failures")
	}
	if err := net.FailLink(l.A, l.B); err != nil {
		t.Errorf("link not failable after restore: %v", err)
	}
}

// findNonLink locates a sensor pair without a secure link.
func findNonLink(t *testing.T, net *Network) [2]int32 {
	t.Helper()
	topo := net.FullSecureTopology()
	for u := int32(0); int(u) < net.Sensors(); u++ {
		for v := u + 1; int(v) < net.Sensors(); v++ {
			if !topo.HasEdge(u, v) {
				return [2]int32{u, v}
			}
		}
	}
	t.Fatal("network is complete; cannot find a non-link")
	return [2]int32{}
}

func TestFailRandomLinks(t *testing.T) {
	net := deployTest(t, 32)
	total := net.FullSecureTopology().M()
	r := rng.New(1)
	failed, err := net.FailRandomLinks(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 10 || net.FailedLinkCount() != 10 {
		t.Fatalf("failed %d links, count %d", len(failed), net.FailedLinkCount())
	}
	seen := map[[2]int32]bool{}
	for _, key := range failed {
		if seen[key] {
			t.Fatalf("link %v failed twice", key)
		}
		seen[key] = true
	}
	// Operational topology loses exactly the failed links.
	sub, _, err := net.operationalTopology()
	if err != nil {
		t.Fatal(err)
	}
	if sub.M() != total-10 {
		t.Errorf("operational links = %d, want %d", sub.M(), total-10)
	}
	if _, err := net.FailRandomLinks(r, total); err == nil {
		t.Error("over-failure: want error")
	}
	if _, err := net.FailRandomLinks(r, -1); err == nil {
		t.Error("negative count: want error")
	}
}

func TestUsableLinkCount(t *testing.T) {
	net := deployTest(t, 34)
	total := net.FullSecureTopology().M()
	if got := net.UsableLinkCount(); got != total {
		t.Fatalf("fresh network: UsableLinkCount = %d, want %d", got, total)
	}
	// Failing links removes exactly them from the usable count.
	r := rng.New(3)
	if _, err := net.FailRandomLinks(r, 5); err != nil {
		t.Fatal(err)
	}
	if got := net.UsableLinkCount(); got != total-5 {
		t.Errorf("after 5 link failures: UsableLinkCount = %d, want %d", got, total-5)
	}
	// Failing a sensor removes its incident non-failed links too; the count
	// must keep matching the FailRandomLinks sampling universe.
	if err := net.FailNodes(0); err != nil {
		t.Fatal(err)
	}
	want := net.UsableLinkCount()
	if _, err := net.FailRandomLinks(r, want); err != nil {
		t.Errorf("failing exactly UsableLinkCount links: %v", err)
	}
	if got := net.UsableLinkCount(); got != 0 {
		t.Errorf("after failing every usable link: UsableLinkCount = %d", got)
	}
	if _, err := net.FailRandomLinks(r, 1); err == nil {
		t.Error("failing beyond UsableLinkCount: want error")
	}
}

func TestKEdgeConnectivitySurvivesLinkFailures(t *testing.T) {
	net := deployTest(t, 33)
	const k = 3
	ok, err := net.IsKEdgeConnected(k)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("network not 3-edge-connected under this seed")
	}
	r := rng.New(2)
	for trial := 0; trial < 15; trial++ {
		if _, err := net.FailRandomLinks(r, k-1); err != nil {
			t.Fatal(err)
		}
		conn, err := net.IsOperationallyConnected()
		if err != nil {
			t.Fatal(err)
		}
		if !conn {
			t.Fatal("3-edge-connected network disconnected by 2 link failures")
		}
		net.RestoreLinks()
	}
}

func TestLinkAndNodeFailuresCompose(t *testing.T) {
	net := deployTest(t, 34)
	r := rng.New(3)
	if _, err := net.FailRandomLinks(r, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := net.FailRandom(r, 5); err != nil {
		t.Fatal(err)
	}
	sub, orig, err := net.operationalTopology()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != net.Sensors()-5 {
		t.Errorf("operational nodes = %d", sub.N())
	}
	// No failed link may appear (in original coordinates).
	for key := range net.failedLinks {
		newA, newB := int32(-1), int32(-1)
		for i, o := range orig {
			if o == key[0] {
				newA = int32(i)
			}
			if o == key[1] {
				newB = int32(i)
			}
		}
		if newA >= 0 && newB >= 0 && sub.HasEdge(newA, newB) {
			t.Errorf("failed link %v still present", key)
		}
	}
	net.RestoreAll()
	net.RestoreLinks()
	sub2, _, err := net.operationalTopology()
	if err != nil {
		t.Fatal(err)
	}
	if sub2.M() != net.FullSecureTopology().M() {
		t.Error("full restore did not recover all links")
	}
}

func TestVertexKConnImpliesEdgeKConn(t *testing.T) {
	// Whitney at the network level: κ ≥ k ⇒ λ ≥ k.
	net := deployTest(t, 35)
	for k := 1; k <= 3; k++ {
		kc, err := net.IsKConnected(k)
		if err != nil {
			t.Fatal(err)
		}
		if !kc {
			continue
		}
		ec, err := net.IsKEdgeConnected(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ec {
			t.Errorf("k=%d: vertex k-connected but not edge k-connected", k)
		}
	}
}
