package wsn

import (
	"fmt"

	"github.com/secure-wsn/qcomposite/internal/bitset"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
)

// Key revocation: when a sensor is detected as captured, the standard
// response (Eschenauer–Gligor Section 2.3, inherited by q-composite) is to
// revoke every key in its ring network-wide. Links that no longer have q
// unrevoked shared keys must be torn down and, if possible, re-established
// over the surviving key material.
//
// Revocation interacts with the paper's connectivity analysis: each
// revocation thins the effective key rings, sliding the network left along
// the Figure-1 curve — RevocationImpact quantifies that slide.

// RevokeNodeKeys revokes every key held by the given sensors (typically
// ones reported captured) and recomputes which secure links survive: a link
// survives iff it still has at least q unrevoked shared keys. Surviving
// links re-derive their link key from the surviving shared set; the revoked
// sensors themselves are failed.
//
// The operation is cumulative across calls. It returns the number of links
// torn down (among links between non-revoked, alive sensors).
func (n *Network) RevokeNodeKeys(ids ...int32) (int, error) {
	for _, id := range ids {
		if int(id) < 0 || int(id) >= n.cfg.Sensors {
			return 0, fmt.Errorf("wsn: revoke: sensor %d out of range", id)
		}
	}
	if n.revoked == nil {
		n.revoked = bitset.New(n.cfg.Scheme.PoolSize())
	}
	for _, id := range ids {
		n.rings[id].ForEachID(func(k keys.ID) bool {
			n.revoked.Add(int(k))
			return true
		})
	}
	// Fail the revoked sensors (idempotently).
	for _, id := range ids {
		if n.alive[id] {
			n.alive[id] = false
			n.deadN++
		}
	}
	// Rebuild the secure topology against the cumulative revocation list: a
	// link survives iff ≥ q of its shared keys are unrevoked. Link keys for
	// the surviving shared sets are re-derived lazily on next access.
	q := n.cfg.Scheme.RequiredOverlap()
	torn := 0
	var edges []graph.Edge
	n.secure.ForEachEdge(func(u, v int32) bool {
		n.sharedBuf = n.appendSurvivingShared(u, v, n.sharedBuf[:0])
		if len(n.sharedBuf) >= q {
			edges = append(edges, graph.Edge{U: u, V: v})
		} else if n.alive[u] && n.alive[v] {
			torn++
		}
		return true
	})
	secure, err := graph.NewFromEdges(n.cfg.Sensors, edges)
	if err != nil {
		return 0, fmt.Errorf("wsn: revoke: %w", err)
	}
	n.secure = secure
	n.invalidateLinks()
	return torn, nil
}

// RevokedKeyCount returns the number of distinct keys revoked so far.
func (n *Network) RevokedKeyCount() int {
	if n.revoked == nil {
		return 0
	}
	return n.revoked.Count()
}

// RevocationImpact summarises the state after revocations.
type RevocationImpact struct {
	// RevokedKeys is the cumulative number of revoked pool keys.
	RevokedKeys int
	// EffectiveRingMean is the mean number of unrevoked keys per alive
	// sensor — the effective K the network now operates at.
	EffectiveRingMean float64
	// SecureLinks counts usable links among alive sensors.
	SecureLinks int
	// Connected reports connectivity of the surviving topology.
	Connected bool
}

// Impact computes the current RevocationImpact.
func (n *Network) Impact() (RevocationImpact, error) {
	imp := RevocationImpact{RevokedKeys: n.RevokedKeyCount()}
	aliveCount := 0
	totalEff := 0
	for v := 0; v < n.cfg.Sensors; v++ {
		if !n.alive[v] {
			continue
		}
		aliveCount++
		if n.revoked == nil {
			totalEff += n.rings[v].Len()
			continue
		}
		for _, k := range n.rings[v].IDs() {
			if !n.revoked.Contains(int(k)) {
				totalEff++
			}
		}
	}
	if aliveCount > 0 {
		imp.EffectiveRingMean = float64(totalEff) / float64(aliveCount)
	}
	sub, _, err := n.SecureTopology()
	if err != nil {
		return RevocationImpact{}, err
	}
	imp.SecureLinks = sub.M()
	imp.Connected = graphalgo.IsConnected(sub)
	return imp, nil
}
