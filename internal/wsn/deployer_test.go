package wsn

import (
	"context"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// graphsEqual reports exact topology equality.
func graphsEqual(a, b *graph.Undirected) bool {
	return a.N() == b.N() && a.M() == b.M() &&
		a.IsSpanningSubgraphOf(b) && b.IsSpanningSubgraphOf(a)
}

// requireSameNetwork asserts byte-identical secure topology, channel
// topology, shared keys and link keys between two deployments.
func requireSameNetwork(t *testing.T, want, got *Network) {
	t.Helper()
	if !graphsEqual(want.FullSecureTopology(), got.FullSecureTopology()) {
		t.Fatal("secure topologies differ")
	}
	if !graphsEqual(want.ChannelTopology(), got.ChannelTopology()) {
		t.Fatal("channel topologies differ")
	}
	wantLinks, gotLinks := want.Links(), got.Links()
	if len(wantLinks) != len(gotLinks) {
		t.Fatalf("%d links, want %d", len(gotLinks), len(wantLinks))
	}
	for i := range wantLinks {
		w, g := wantLinks[i], gotLinks[i]
		if w.A != g.A || w.B != g.B {
			t.Fatalf("link %d endpoints (%d,%d), want (%d,%d)", i, g.A, g.B, w.A, w.B)
		}
		if w.Key != g.Key {
			t.Fatalf("link (%d,%d) keys differ", w.A, w.B)
		}
		if len(w.SharedKeys) != len(g.SharedKeys) {
			t.Fatalf("link (%d,%d) shared %v, want %v", w.A, w.B, g.SharedKeys, w.SharedKeys)
		}
		for j := range w.SharedKeys {
			if w.SharedKeys[j] != g.SharedKeys[j] {
				t.Fatalf("link (%d,%d) shared %v, want %v", w.A, w.B, g.SharedKeys, w.SharedKeys)
			}
		}
	}
}

// deployerConfigs covers both discovery strategies and all channel models:
// dense channels at small n take the inverted-index path, near-empty
// channels the per-edge path (the strategy is logged per case).
func deployerConfigs(t *testing.T) map[string]Config {
	t.Helper()
	scheme, err := keys.NewQComposite(500, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	sparseScheme, err := keys.NewQComposite(8000, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	heteroScheme, err := keys.NewHeterogeneous(500, 1, []keys.Class{
		{Mu: 0.5, RingSize: 15}, {Mu: 0.3, RingSize: 30}, {Mu: 0.2, RingSize: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"onoff-dense":   {Sensors: 120, Scheme: scheme, Channel: channel.OnOff{P: 0.8}},
		"onoff-sparse":  {Sensors: 120, Scheme: sparseScheme, Channel: channel.OnOff{P: 0.01}},
		"always-on":     {Sensors: 80, Scheme: scheme, Channel: channel.AlwaysOn{}},
		"disk-torus":    {Sensors: 100, Scheme: scheme, Channel: channel.Disk{Radius: 0.3, Torus: true}},
		"disk-zero":     {Sensors: 50, Scheme: scheme, Channel: channel.Disk{}},
		"onoff-all-off": {Sensors: 50, Scheme: scheme, Channel: channel.OnOff{}},
		"hetero-onoff":  {Sensors: 120, Scheme: heteroScheme, Channel: channel.OnOff{P: 0.6}},
		"hetero-heterchannel": {Sensors: 120, Scheme: heteroScheme, Channel: channel.HeterOnOff{P: [][]float64{
			{0.9, 0.5, 0.2},
			{0.5, 0.6, 0.4},
			{0.2, 0.4, 0.8},
		}}},
	}
}

// TestDeployerMatchesDeploy is the central equivalence test of the lazy
// pipeline: for every configuration and seed, Deployer.Deploy must produce
// exactly the network the one-shot Deploy does — same secure topology, same
// shared keys, same derived link keys.
func TestDeployerMatchesDeploy(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 4; seed++ {
				cfg.Seed = seed
				want, err := Deploy(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Deploy(seed)
				if err != nil {
					t.Fatal(err)
				}
				requireSameNetwork(t, want, got)
			}
		})
	}
}

// TestDeployerReuseIsDeterministic pins the amortization contract: reusing
// one Deployer across different seeds must not leak state between
// deployments — redeploying an earlier seed reproduces its network exactly.
func TestDeployerReuseIsDeterministic(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := d.Deploy(1)
			if err != nil {
				t.Fatal(err)
			}
			// Snapshot before the buffers are recycled.
			firstTopo := first.FullSecureTopology()
			firstLinks := first.Links()
			if _, err := d.Deploy(2); err != nil {
				t.Fatal(err)
			}
			again, err := d.Deploy(1)
			if err != nil {
				t.Fatal(err)
			}
			if !graphsEqual(firstTopo, again.FullSecureTopology()) {
				t.Fatal("redeploying seed 1 changed the topology")
			}
			againLinks := again.Links()
			if len(firstLinks) != len(againLinks) {
				t.Fatalf("%d links, want %d", len(againLinks), len(firstLinks))
			}
			for i := range firstLinks {
				if firstLinks[i].Key != againLinks[i].Key {
					t.Fatalf("link %d key changed across reuse", i)
				}
			}
		})
	}
}

// TestLazyLinkKeysMatchDerivation checks that lazily materialized keys are
// the canonical derivation of the (surviving) shared set, before and after
// revocation invalidates the table.
func TestLazyLinkKeysMatchDerivation(t *testing.T) {
	scheme, err := keys.NewQComposite(300, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Deploy(Config{Sensors: 80, Scheme: scheme, Channel: channel.OnOff{P: 0.9}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		links := net.Links()
		if len(links) == 0 {
			t.Fatal("test network has no links")
		}
		for _, l := range links {
			ra, err := net.Ring(l.A)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := net.Ring(l.B)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]keys.ID, 0, len(l.SharedKeys))
			for _, k := range ra.SharedWith(rb) {
				if net.RevokedKeyCount() == 0 || !revokedContains(net, k) {
					want = append(want, k)
				}
			}
			if len(want) != len(l.SharedKeys) {
				t.Fatalf("link (%d,%d) shared %v, want %v", l.A, l.B, l.SharedKeys, want)
			}
			if l.Key != keys.DeriveLinkKey(want) {
				t.Fatalf("link (%d,%d) key is not DeriveLinkKey(shared)", l.A, l.B)
			}
		}
	}
	check()
	if _, err := net.RevokeNodeKeys(0, 1); err != nil {
		t.Fatal(err)
	}
	check()
}

func revokedContains(n *Network, k keys.ID) bool {
	return n.revoked != nil && n.revoked.Contains(int(k))
}

// TestDeployerPoolConcurrent drives a DeployerPool through the Monte Carlo
// engine under full parallelism; with -race this is the concurrency check,
// and the proportion must be reproducible across runs.
func TestDeployerPoolConcurrent(t *testing.T) {
	scheme, err := keys.NewQComposite(500, 36, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewDeployerPool(Config{Sensors: 100, Scheme: scheme, Channel: channel.OnOff{P: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		est, err := montecarlo.EstimateProportion(context.Background(), montecarlo.Config{
			Trials: 40,
			Seed:   3,
		}, func(trial int, r *rng.Rand) (bool, error) {
			d := pool.Get()
			defer pool.Put(d)
			net, err := d.DeployRand(r)
			if err != nil {
				return false, err
			}
			return net.IsConnected()
		})
		if err != nil {
			t.Fatal(err)
		}
		return est.Estimate()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("pooled estimate not reproducible: %v vs %v", a, b)
	}
}

// TestSparseIndexDiscoveryMatchesEdges pins the n > maxDenseCounterNodes
// per-row counting fallback against the per-edge intersection strategy:
// above the dense-table bound, inverted-index discovery must still produce
// the exact secure topology, including across Deployer reuse (the per-key
// cursors and row counters must come back clean).
func TestSparseIndexDiscoveryMatchesEdges(t *testing.T) {
	const n = maxDenseCounterNodes + 500
	scheme, err := keys.NewQComposite(3000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: 0.3}}
	r := rng.New(7)
	asg, err := scheme.Assign(r, n)
	if err != nil {
		t.Fatal(err)
	}
	channels, err := cfg.Channel.Sample(r, n)
	if err != nil {
		t.Fatal(err)
	}

	edgeD, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := edgeD.discoverByEdges(asg.Rings, channels, 1); err != nil {
		t.Fatal(err)
	}
	want, err := graph.NewFromEdges(n, edgeD.edges)
	if err != nil {
		t.Fatal(err)
	}
	if want.M() == 0 {
		t.Fatal("test topology has no secure links")
	}

	indexD, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		indexD.edges = indexD.edges[:0]
		if err := indexD.discoverByIndex(asg.Rings, channels, 1); err != nil {
			t.Fatal(err)
		}
		got, err := graph.NewFromEdges(n, indexD.edges)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(want, got) {
			t.Fatalf("pass %d: sparse index topology differs from per-edge (%d vs %d links)",
				pass, got.M(), want.M())
		}
	}
}

// TestOneClassHeterogeneousDeploymentMatchesQComposite is the deployment
// half of the 1-class equivalence contract (the scheme half lives in
// internal/keys): a single-class Heterogeneous scheme must yield deployments
// byte-identical to the equivalent QComposite — same channel topology, same
// secure topology, same shared keys and derived link keys — both under the
// uniform OnOff channel and under the 1-class HeterOnOff written in class
// form, which must consume the randomness stream exactly as OnOff does.
func TestOneClassHeterogeneousDeploymentMatchesQComposite(t *testing.T) {
	const (
		n    = 150
		pool = 400
		ring = 30
		q    = 2
		p    = 0.6
	)
	qs, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := keys.NewHeterogeneous(pool, q, []keys.Class{{Mu: 1, RingSize: ring}})
	if err != nil {
		t.Fatal(err)
	}
	channels := map[string]channel.Model{
		"onoff":        channel.OnOff{P: p},
		"heter-on-off": channel.UniformHeterOnOff(1, p),
	}
	for name, ch := range channels {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(Config{Sensors: n, Scheme: hs, Channel: ch})
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 4; seed++ {
				want, err := Deploy(Config{Sensors: n, Scheme: qs, Channel: channel.OnOff{P: p}, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Deploy(seed)
				if err != nil {
					t.Fatal(err)
				}
				requireSameNetwork(t, want, got)
				if c, err := got.ClassOf(0); err != nil || c != 0 {
					t.Fatalf("ClassOf(0) = %d, %v; want class 0", c, err)
				}
			}
		})
	}
}

// TestNewDeployerValidatesEagerly covers construction-time validation,
// including the channel model's Validate.
func TestNewDeployerValidatesEagerly(t *testing.T) {
	scheme, err := keys.NewQComposite(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sensors: -1, Scheme: scheme, Channel: channel.AlwaysOn{}},
		{Sensors: 10, Channel: channel.AlwaysOn{}},
		{Sensors: 10, Scheme: scheme},
		{Sensors: 10, Scheme: scheme, Channel: channel.OnOff{P: -0.5}},
		{Sensors: 10, Scheme: scheme, Channel: channel.Disk{Radius: -2}},
		// Class-aware channel whose class count disagrees with the scheme's.
		{Sensors: 10, Scheme: scheme, Channel: channel.UniformHeterOnOff(2, 0.5)},
	}
	for i, cfg := range bad {
		if _, err := NewDeployer(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
		if _, err := NewDeployerPool(cfg); err == nil {
			t.Errorf("config %d: pool: want error", i)
		}
	}
}

// TestDiscoveryStrategySelection asserts that the test configurations above
// genuinely exercise both discovery strategies.
func TestDiscoveryStrategySelection(t *testing.T) {
	cfgs := deployerConfigs(t)
	wantIndex := map[string]bool{
		"onoff-dense":   true,
		"onoff-sparse":  false, // ~70 channel edges: per-edge intersection wins
		"always-on":     true,
		"onoff-all-off": false, // empty channel graph
	}
	for name, want := range wantIndex {
		cfg := cfgs[name]
		d, err := NewDeployer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		channels, err := cfg.Channel.Sample(rng.New(1), cfg.Sensors)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := cfg.Scheme.Assign(rng.New(1), cfg.Sensors)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.useIndexDiscovery(asg.Rings, channels, cfg.Scheme.RequiredOverlap()); got != want {
			t.Errorf("%s: useIndexDiscovery = %v, want %v (channel edges %d)",
				name, got, want, channels.M())
		}
	}
}
