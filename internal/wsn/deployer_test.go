package wsn

import (
	"context"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// graphsEqual reports exact topology equality.
func graphsEqual(a, b *graph.Undirected) bool {
	return a.N() == b.N() && a.M() == b.M() &&
		a.IsSpanningSubgraphOf(b) && b.IsSpanningSubgraphOf(a)
}

// requireSameNetwork asserts byte-identical secure topology, channel
// topology, shared keys and link keys between two deployments.
func requireSameNetwork(t *testing.T, want, got *Network) {
	t.Helper()
	if !graphsEqual(want.FullSecureTopology(), got.FullSecureTopology()) {
		t.Fatal("secure topologies differ")
	}
	if !graphsEqual(want.ChannelTopology(), got.ChannelTopology()) {
		t.Fatal("channel topologies differ")
	}
	wantLinks, gotLinks := want.Links(), got.Links()
	if len(wantLinks) != len(gotLinks) {
		t.Fatalf("%d links, want %d", len(gotLinks), len(wantLinks))
	}
	for i := range wantLinks {
		w, g := wantLinks[i], gotLinks[i]
		if w.A != g.A || w.B != g.B {
			t.Fatalf("link %d endpoints (%d,%d), want (%d,%d)", i, g.A, g.B, w.A, w.B)
		}
		if w.Key != g.Key {
			t.Fatalf("link (%d,%d) keys differ", w.A, w.B)
		}
		if len(w.SharedKeys) != len(g.SharedKeys) {
			t.Fatalf("link (%d,%d) shared %v, want %v", w.A, w.B, g.SharedKeys, w.SharedKeys)
		}
		for j := range w.SharedKeys {
			if w.SharedKeys[j] != g.SharedKeys[j] {
				t.Fatalf("link (%d,%d) shared %v, want %v", w.A, w.B, g.SharedKeys, w.SharedKeys)
			}
		}
	}
}

// deployerConfigs covers both discovery strategies and all channel models:
// dense channels at small n take the inverted-index path, near-empty
// channels the per-edge path (the strategy is logged per case).
func deployerConfigs(t *testing.T) map[string]Config {
	t.Helper()
	scheme, err := keys.NewQComposite(500, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	sparseScheme, err := keys.NewQComposite(8000, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"onoff-dense":   {Sensors: 120, Scheme: scheme, Channel: channel.OnOff{P: 0.8}},
		"onoff-sparse":  {Sensors: 120, Scheme: sparseScheme, Channel: channel.OnOff{P: 0.01}},
		"always-on":     {Sensors: 80, Scheme: scheme, Channel: channel.AlwaysOn{}},
		"disk-torus":    {Sensors: 100, Scheme: scheme, Channel: channel.Disk{Radius: 0.3, Torus: true}},
		"disk-zero":     {Sensors: 50, Scheme: scheme, Channel: channel.Disk{}},
		"onoff-all-off": {Sensors: 50, Scheme: scheme, Channel: channel.OnOff{}},
	}
}

// TestDeployerMatchesDeploy is the central equivalence test of the lazy
// pipeline: for every configuration and seed, Deployer.Deploy must produce
// exactly the network the one-shot Deploy does — same secure topology, same
// shared keys, same derived link keys.
func TestDeployerMatchesDeploy(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 4; seed++ {
				cfg.Seed = seed
				want, err := Deploy(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Deploy(seed)
				if err != nil {
					t.Fatal(err)
				}
				requireSameNetwork(t, want, got)
			}
		})
	}
}

// TestDeployerReuseIsDeterministic pins the amortization contract: reusing
// one Deployer across different seeds must not leak state between
// deployments — redeploying an earlier seed reproduces its network exactly.
func TestDeployerReuseIsDeterministic(t *testing.T) {
	for name, cfg := range deployerConfigs(t) {
		t.Run(name, func(t *testing.T) {
			d, err := NewDeployer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			first, err := d.Deploy(1)
			if err != nil {
				t.Fatal(err)
			}
			// Snapshot before the buffers are recycled.
			firstTopo := first.FullSecureTopology()
			firstLinks := first.Links()
			if _, err := d.Deploy(2); err != nil {
				t.Fatal(err)
			}
			again, err := d.Deploy(1)
			if err != nil {
				t.Fatal(err)
			}
			if !graphsEqual(firstTopo, again.FullSecureTopology()) {
				t.Fatal("redeploying seed 1 changed the topology")
			}
			againLinks := again.Links()
			if len(firstLinks) != len(againLinks) {
				t.Fatalf("%d links, want %d", len(againLinks), len(firstLinks))
			}
			for i := range firstLinks {
				if firstLinks[i].Key != againLinks[i].Key {
					t.Fatalf("link %d key changed across reuse", i)
				}
			}
		})
	}
}

// TestLazyLinkKeysMatchDerivation checks that lazily materialized keys are
// the canonical derivation of the (surviving) shared set, before and after
// revocation invalidates the table.
func TestLazyLinkKeysMatchDerivation(t *testing.T) {
	scheme, err := keys.NewQComposite(300, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Deploy(Config{Sensors: 80, Scheme: scheme, Channel: channel.OnOff{P: 0.9}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		links := net.Links()
		if len(links) == 0 {
			t.Fatal("test network has no links")
		}
		for _, l := range links {
			ra, err := net.Ring(l.A)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := net.Ring(l.B)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]keys.ID, 0, len(l.SharedKeys))
			for _, k := range ra.SharedWith(rb) {
				if net.RevokedKeyCount() == 0 || !revokedContains(net, k) {
					want = append(want, k)
				}
			}
			if len(want) != len(l.SharedKeys) {
				t.Fatalf("link (%d,%d) shared %v, want %v", l.A, l.B, l.SharedKeys, want)
			}
			if l.Key != keys.DeriveLinkKey(want) {
				t.Fatalf("link (%d,%d) key is not DeriveLinkKey(shared)", l.A, l.B)
			}
		}
	}
	check()
	if _, err := net.RevokeNodeKeys(0, 1); err != nil {
		t.Fatal(err)
	}
	check()
}

func revokedContains(n *Network, k keys.ID) bool {
	return n.revoked != nil && n.revoked.Contains(int(k))
}

// TestDeployerPoolConcurrent drives a DeployerPool through the Monte Carlo
// engine under full parallelism; with -race this is the concurrency check,
// and the proportion must be reproducible across runs.
func TestDeployerPoolConcurrent(t *testing.T) {
	scheme, err := keys.NewQComposite(500, 36, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewDeployerPool(Config{Sensors: 100, Scheme: scheme, Channel: channel.OnOff{P: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		est, err := montecarlo.EstimateProportion(context.Background(), montecarlo.Config{
			Trials: 40,
			Seed:   3,
		}, func(trial int, r *rng.Rand) (bool, error) {
			d := pool.Get()
			defer pool.Put(d)
			net, err := d.DeployRand(r)
			if err != nil {
				return false, err
			}
			return net.IsConnected()
		})
		if err != nil {
			t.Fatal(err)
		}
		return est.Estimate()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("pooled estimate not reproducible: %v vs %v", a, b)
	}
}

// TestNewDeployerValidatesEagerly covers construction-time validation,
// including the channel model's Validate.
func TestNewDeployerValidatesEagerly(t *testing.T) {
	scheme, err := keys.NewQComposite(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Sensors: -1, Scheme: scheme, Channel: channel.AlwaysOn{}},
		{Sensors: 10, Channel: channel.AlwaysOn{}},
		{Sensors: 10, Scheme: scheme},
		{Sensors: 10, Scheme: scheme, Channel: channel.OnOff{P: -0.5}},
		{Sensors: 10, Scheme: scheme, Channel: channel.Disk{Radius: -2}},
	}
	for i, cfg := range bad {
		if _, err := NewDeployer(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
		if _, err := NewDeployerPool(cfg); err == nil {
			t.Errorf("config %d: pool: want error", i)
		}
	}
}

// TestDiscoveryStrategySelection asserts that the test configurations above
// genuinely exercise both discovery strategies.
func TestDiscoveryStrategySelection(t *testing.T) {
	cfgs := deployerConfigs(t)
	wantIndex := map[string]bool{
		"onoff-dense":   true,
		"onoff-sparse":  false, // ~70 channel edges: per-edge intersection wins
		"always-on":     true,
		"onoff-all-off": false, // empty channel graph
	}
	for name, want := range wantIndex {
		cfg := cfgs[name]
		d, err := NewDeployer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		channels, err := cfg.Channel.Sample(rng.New(1), cfg.Sensors)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.useIndexDiscovery(channels, cfg.Scheme.RequiredOverlap()); got != want {
			t.Errorf("%s: useIndexDiscovery = %v, want %v (channel edges %d)",
				name, got, want, channels.M())
		}
	}
}
