package wsn

import (
	"fmt"
	"sync"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// maxDenseCounterNodes bounds the network size for which inverted-index
// discovery keeps a dense pair-count table (n·(n−1)/2 bytes, ≈ 2 MB at the
// bound). Larger deployments count per row instead: the sparse path keeps
// memory O(n) and the same total pair work, so index discovery scales to
// n ≥ 10⁵.
const maxDenseCounterNodes = 2048

// maxCountedOverlap is the saturation point of the pair counters; the index
// strategy is only exact for q below it, which every practical q-composite
// deployment satisfies (q is single digits in the paper).
const maxCountedOverlap = 255

// Deployer deploys networks repeatedly with amortized buffers: key-ring
// storage (one flat arena), the shared-key discovery workspace, edge lists
// and liveness flags are all reused across calls, so a Monte Carlo trial
// pays only for what cannot be shared (the sampled channel graph and the
// final CSR topology).
//
// The returned *Network aliases the Deployer's buffers and remains valid
// only until the next Deploy/DeployRand call (the storage is double-buffered,
// so the previous network is not corrupted *while* the next deployment is
// being built, but callers must not rely on more than one network at a
// time). Callers that need a long-lived network should use the package-level
// Deploy, which dedicates a Deployer to the one network. A Deployer is not
// safe for concurrent use — use a DeployerPool to share one configuration
// across Monte Carlo workers.
//
// Shared-key discovery is strategy-adaptive and class-aware. When the
// channel graph is dense relative to the key index, discovery inverts the
// assignment into a key→holders index and counts shared keys per co-holding
// pair — O(Σ_k h_k²) instead of one ring intersection per channel edge —
// with a dense triangular counter table at small n and a per-row counter at
// large n. Otherwise it intersects rings per channel edge through a
// density-adaptive keys.Intersector (bitset-backed for dense rings, sorted
// merge for sparse ones). All strategies compute the same exact predicate
// from the actual per-sensor rings (ring sizes may differ per class), so
// the resulting topology is byte-identical whichever runs.
type Deployer struct {
	cfg   Config
	arena keys.RingArena
	ix    *keys.Intersector
	edges []graph.Edge

	// Reseeded per Deploy call, so seed-taking deployments allocate no
	// per-trial generator.
	rand rng.Rand

	// Reusable CSR builders: one per graph the deployment produces, so the
	// channel graph never invalidates the secure topology. Each builder is
	// double-buffered, so a Network's graphs stay valid while the *next*
	// deployment is being built and are reclaimed by the one after — the
	// lifetime the Deployer documents.
	chanBld *graph.Builder
	secBld  *graph.Builder

	// Shared connectivity scratch, threaded into every deployed Network.
	algo *graphalgo.Workspace

	// Double-buffered Network storage (headers, liveness flags, link-table
	// buffers), matching the builders' lifetime.
	nets   [2]Network
	netIdx int

	// Inverted-index discovery workspace (allocated on first use).
	keyCnt  []int32 // per-key holder count, then fill cursor
	keyOff  []int32 // prefix offsets into holders
	holders []int32 // sensors holding each key, grouped by key

	// Dense counting (n ≤ maxDenseCounterNodes).
	counts   []uint8 // shared-key count per node pair (triangular index)
	touched  []int32 // packed (u<<16|v) pairs with a nonzero count
	rowStart []int32 // triangular row offsets: idx(u,v) = rowStart[u] + v

	// Sparse per-row counting (larger n).
	rowCnt     []uint8 // shared-key count of the current row's pairs
	rowTouched []int32 // peers of the current row with a nonzero count

	// Streaming connectivity-only mode (DeployConnectivity): the union-find
	// sink and its persistent yield closure. The closure is created once and
	// reused because it crosses the channel.EdgeEmitter interface boundary,
	// where a per-call closure would escape and allocate every trial.
	suf         graphalgo.StreamUnionFind
	streamQ     int
	streamYield func(u, v int32) bool

	// Streaming degree mode (DeployDegreeStats): the degree accumulator
	// running beside the union-find in the same edge pass, with its own
	// persistent yield closure (early exit needs BOTH sinks done).
	sd       graphalgo.StreamDegrees
	degYield func(u, v int32) bool
}

// NewDeployer validates the configuration (including the channel model's
// Validate and the scheme/channel class pairing) and returns a Deployer for
// it. The configuration's Seed field is ignored; each Deploy call takes its
// own seed.
func NewDeployer(cfg Config) (*Deployer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return newDeployer(cfg), nil
}

// newDeployer constructs a Deployer for an already-validated configuration.
func newDeployer(cfg Config) *Deployer {
	return &Deployer{
		cfg:     cfg,
		chanBld: graph.NewBuilder(),
		secBld:  graph.NewBuilder(),
		algo:    graphalgo.NewWorkspace(),
	}
}

// Config returns the deployment configuration (Seed field as passed to
// NewDeployer, not any per-call seed).
func (d *Deployer) Config() Config { return d.cfg }

// Deploy deploys a network from the given seed. It is deterministic: equal
// seeds yield byte-identical secure topologies and link keys, matching the
// package-level Deploy with the same Config.
func (d *Deployer) Deploy(seed uint64) (*Network, error) {
	cfg := d.cfg
	cfg.Seed = seed
	d.rand.Reseed(seed)
	return d.deploy(cfg, &d.rand)
}

// DeployRand deploys a network drawing all randomness from r — the entry
// point for Monte Carlo trials that are handed a per-trial stream.
func (d *Deployer) DeployRand(r *rng.Rand) (*Network, error) {
	return d.deploy(d.cfg, r)
}

func (d *Deployer) deploy(cfg Config, r *rng.Rand) (*Network, error) {
	n := cfg.Sensors

	// 1. Key predistribution: per-sensor class labels and class-sized rings.
	// Schemes that support arena assignment write the rings into the
	// Deployer's arena; others allocate per deployment.
	var asg keys.Assignment
	var err error
	if aa, ok := cfg.Scheme.(keys.ArenaAssigner); ok {
		asg, err = aa.AssignInto(r, n, &d.arena)
	} else {
		asg, err = cfg.Scheme.Assign(r, n)
	}
	if err != nil {
		return nil, fmt.Errorf("wsn: deploy: %w", err)
	}
	rings := asg.Rings

	// 2. Physical channel sampling through the deployer-owned builder when
	// the model supports it (all built-in models do; the unbuffered branches
	// keep third-party Model implementations working). Class-aware models
	// receive the deployment's class labels, so the scheme and channel
	// observe one shared class assignment.
	var channels *graph.Undirected
	if cm, ok := cfg.Channel.(channel.ClassModel); ok {
		if bcm, ok := cfg.Channel.(channel.BufferedClassModel); ok {
			channels, err = bcm.SampleClassesInto(r, n, asg.Labels, d.chanBld)
		} else {
			channels, err = cm.SampleClasses(r, n, asg.Labels)
		}
	} else if bm, ok := cfg.Channel.(channel.BufferedModel); ok {
		channels, err = bm.SampleInto(r, n, d.chanBld)
	} else {
		channels, err = cfg.Channel.Sample(r, n)
	}
	if err != nil {
		return nil, fmt.Errorf("wsn: deploy: %w", err)
	}

	// 3. Shared-key discovery over usable channels; the secure topology is
	// built through the deployer's second builder.
	q := cfg.Scheme.RequiredOverlap()
	d.edges = d.edges[:0]
	if d.useIndexDiscovery(rings, channels, q) {
		err = d.discoverByIndex(rings, channels, q)
	} else {
		err = d.discoverByEdges(rings, channels, q)
	}
	if err != nil {
		return nil, fmt.Errorf("wsn: deploy: %w", err)
	}
	secure, err := d.secBld.FromEdges(n, d.edges)
	if err != nil {
		return nil, fmt.Errorf("wsn: deploy: %w", err)
	}

	// 4. Assemble the Network in the double-buffered slot, keeping its
	// grown buffers (liveness flags, link table) across reuse.
	net := &d.nets[d.netIdx]
	d.netIdx ^= 1
	net.reset(cfg, rings, asg.Labels, channels, secure, d.algo)
	return net, nil
}

// useIndexDiscovery decides the discovery strategy from the rings actually
// assigned (per-sensor sizes; heterogeneous classes make them uneven). The
// inverted index costs roughly ΣK index building plus Σ_k h_k² ≈ ΣK·(ΣK/P)
// pair increments; per-edge intersection costs one O(mean K) ring
// intersection per channel edge. The index also needs exact counters
// (q below saturation).
func (d *Deployer) useIndexDiscovery(rings []keys.Ring, channels *graph.Undirected, q int) bool {
	n := d.cfg.Sensors
	if n < 2 || q > maxCountedOverlap {
		return false
	}
	totalKeys := 0
	for _, ring := range rings {
		totalKeys += ring.Len()
	}
	pool := float64(d.cfg.Scheme.PoolSize())
	nk := float64(totalKeys)
	indexWork := nk * (nk/pool + 1)
	edgeWork := float64(channels.M()) * nk / float64(n)
	return edgeWork > indexWork
}

// discoverByEdges intersects the endpoint rings of every channel edge.
func (d *Deployer) discoverByEdges(rings []keys.Ring, channels *graph.Undirected, q int) error {
	if d.ix == nil {
		ix, err := keys.NewIntersector(d.cfg.Scheme.PoolSize())
		if err != nil {
			return err
		}
		d.ix = ix
	}
	if err := d.ix.Reset(rings); err != nil {
		return err
	}
	channels.ForEachEdge(func(u, v int32) bool {
		if d.ix.HasAtLeast(u, v, q) {
			d.edges = append(d.edges, graph.Edge{U: u, V: v})
		}
		return true
	})
	return nil
}

// buildKeyIndex inverts the assignment into the key→holders index:
// holders[keyOff[k]:keyOff[k+1]] lists the sensors holding key k, in
// ascending sensor order. Ring IDs outside [0, PoolSize) are a validation
// error, matching the per-edge path. On return d.keyCnt[:pool] is all zero
// (ready for reuse as a per-key cursor).
func (d *Deployer) buildKeyIndex(rings []keys.Ring, pool int) error {
	if len(d.keyCnt) < pool {
		d.keyCnt = make([]int32, pool)
		d.keyOff = make([]int32, pool+1)
	}
	keyCnt := d.keyCnt[:pool]
	for k := range keyCnt {
		keyCnt[k] = 0
	}
	total := 0
	for v, ring := range rings {
		var badID keys.ID
		bad := false
		ring.ForEachID(func(k keys.ID) bool {
			if int(k) < 0 || int(k) >= pool {
				badID, bad = k, true
				return false
			}
			keyCnt[k]++
			total++
			return true
		})
		if bad {
			return fmt.Errorf("wsn: ring %d key %d outside pool [0,%d)", v, badID, pool)
		}
	}
	d.keyOff[0] = 0
	for k := 0; k < pool; k++ {
		d.keyOff[k+1] = d.keyOff[k] + keyCnt[k]
		keyCnt[k] = 0 // reuse as fill cursor
	}
	if cap(d.holders) < total {
		d.holders = make([]int32, total)
	}
	d.holders = d.holders[:total]
	for v, ring := range rings {
		ring.ForEachID(func(k keys.ID) bool {
			d.holders[d.keyOff[k]+keyCnt[k]] = int32(v)
			keyCnt[k]++
			return true
		})
	}
	for k := 0; k < pool; k++ {
		keyCnt[k] = 0
	}
	return nil
}

// discoverByIndex inverts the assignment into a key→holders index, counts
// shared keys for every co-holding pair, and keeps pairs that both meet the
// overlap requirement and have an on channel. Counters saturate at
// maxCountedOverlap, which useIndexDiscovery guarantees is ≥ q. Small
// networks count into a dense triangular table; larger ones count row by
// row in O(n) memory.
func (d *Deployer) discoverByIndex(rings []keys.Ring, channels *graph.Undirected, q int) error {
	pool := d.cfg.Scheme.PoolSize()
	if err := d.buildKeyIndex(rings, pool); err != nil {
		return err
	}
	if d.cfg.Sensors <= maxDenseCounterNodes {
		d.countPairsDense(channels, q)
	} else {
		d.countPairsByRow(rings, channels, q)
	}
	return nil
}

// countPairsDense counts shared keys per co-holding pair in a dense
// triangular table, then emits qualifying pairs with an on channel,
// resetting counters as it goes so the table is all-zero for the next
// deployment. Only valid for n ≤ maxDenseCounterNodes (the packed touched
// entries also need n < 2¹⁶).
func (d *Deployer) countPairsDense(channels *graph.Undirected, q int) {
	n := d.cfg.Sensors
	if len(d.rowStart) < n {
		d.rowStart = make([]int32, n)
		d.counts = make([]uint8, n*(n-1)/2)
	}
	// idx(u,v) for u < v flattens the strict upper triangle row by row.
	acc := int32(0)
	for u := 0; u < n; u++ {
		d.rowStart[u] = acc - int32(u) - 1
		acc += int32(n - u - 1)
	}

	// Count shared keys per co-holding pair. Holder lists are ascending (we
	// filled them by ascending sensor), so hs[i] < hs[j] for i < j.
	d.touched = d.touched[:0]
	pool := d.cfg.Scheme.PoolSize()
	for k := 0; k < pool; k++ {
		hs := d.holders[d.keyOff[k]:d.keyOff[k+1]]
		for i := 0; i < len(hs); i++ {
			base := d.rowStart[hs[i]]
			packed := int32(hs[i]) << 16
			for j := i + 1; j < len(hs); j++ {
				idx := base + hs[j]
				if d.counts[idx] == 0 {
					d.touched = append(d.touched, packed|hs[j])
				}
				if d.counts[idx] < maxCountedOverlap {
					d.counts[idx]++
				}
			}
		}
	}

	for _, p := range d.touched {
		u, v := p>>16, p&0xffff
		idx := d.rowStart[u] + v
		if int(d.counts[idx]) >= q && channels.HasEdge(u, v) {
			d.edges = append(d.edges, graph.Edge{U: u, V: v})
		}
		d.counts[idx] = 0
	}
}

// countPairsByRow is the sparse counting fallback for n beyond the dense
// table: it walks sensors in ascending order, and for row u counts the
// co-holders w > u of each of u's keys into an n-length counter that is
// cleared per row via a touched list. The per-key cursor (reusing keyCnt)
// advances past u in O(1) amortized because rows visit each holder list in
// ascending order. Total pair work matches the dense path; memory is O(n)
// instead of O(n²).
func (d *Deployer) countPairsByRow(rings []keys.Ring, channels *graph.Undirected, q int) {
	n := d.cfg.Sensors
	if cap(d.rowCnt) < n {
		d.rowCnt = make([]uint8, n)
	}
	rowCnt := d.rowCnt[:n]
	for u := 0; u < n; u++ {
		d.rowTouched = d.rowTouched[:0]
		rings[u].ForEachID(func(k keys.ID) bool {
			// keyCnt[k] holders of k precede u and are already consumed;
			// the next one is u itself.
			cur := d.keyOff[k] + d.keyCnt[k]
			d.keyCnt[k]++
			for _, w := range d.holders[cur+1 : d.keyOff[k+1]] {
				if rowCnt[w] == 0 {
					d.rowTouched = append(d.rowTouched, w)
				}
				if rowCnt[w] < maxCountedOverlap {
					rowCnt[w]++
				}
			}
			return true
		})
		for _, w := range d.rowTouched {
			if int(rowCnt[w]) >= q && channels.HasEdge(int32(u), w) {
				d.edges = append(d.edges, graph.Edge{U: int32(u), V: w})
			}
			rowCnt[w] = 0
		}
	}
}

// DeployerPool shares one deployment configuration across concurrent Monte
// Carlo workers: each worker borrows a Deployer per trial, so buffers are
// amortized per worker without any locking on the deploy path.
type DeployerPool struct {
	cfg  Config
	pool sync.Pool
}

// NewDeployerPool validates the configuration once and returns the pool.
func NewDeployerPool(cfg Config) (*DeployerPool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &DeployerPool{cfg: cfg}, nil
}

// Get borrows a Deployer. Return it with Put when the trial is done with
// the deployed network.
func (p *DeployerPool) Get() *Deployer {
	if d, ok := p.pool.Get().(*Deployer); ok {
		return d
	}
	return newDeployer(p.cfg)
}

// Put returns a borrowed Deployer to the pool. Networks deployed from it
// must no longer be used.
func (p *DeployerPool) Put(d *Deployer) { p.pool.Put(d) }
