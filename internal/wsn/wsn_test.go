package wsn

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

// deployTest builds a medium test network that is almost surely connected.
func deployTest(t *testing.T, seed uint64) *Network {
	t.Helper()
	scheme, err := keys.NewQComposite(500, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Deploy(Config{
		Sensors: 120,
		Scheme:  scheme,
		Channel: channel.OnOff{P: 0.8},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDeployValidation(t *testing.T) {
	scheme, err := keys.NewQComposite(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative sensors", cfg: Config{Sensors: -1, Scheme: scheme, Channel: channel.AlwaysOn{}}},
		{name: "nil scheme", cfg: Config{Sensors: 10, Channel: channel.AlwaysOn{}}},
		{name: "nil channel", cfg: Config{Sensors: 10, Scheme: scheme}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Deploy(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestDeployEstablishesOnlyValidLinks(t *testing.T) {
	net := deployTest(t, 7)
	q := net.Scheme().RequiredOverlap()
	topo := net.FullSecureTopology()
	chans := net.ChannelTopology()

	// Every secure edge must be a channel edge with ≥ q shared keys and a
	// link key derived from exactly the shared keys.
	topo.ForEachEdge(func(u, v int32) bool {
		if !chans.HasEdge(u, v) {
			t.Errorf("secure edge (%d,%d) has no channel", u, v)
		}
		link, ok := net.Link(u, v)
		if !ok {
			t.Fatalf("secure edge (%d,%d) has no link record", u, v)
		}
		if len(link.SharedKeys) < q {
			t.Errorf("link (%d,%d) has %d shared keys < q=%d", u, v, len(link.SharedKeys), q)
		}
		ru, err := net.Ring(u)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := net.Ring(v)
		if err != nil {
			t.Fatal(err)
		}
		wantShared := ru.SharedWith(rv)
		if len(wantShared) != len(link.SharedKeys) {
			t.Errorf("link (%d,%d) shared keys %v, rings share %v", u, v, link.SharedKeys, wantShared)
		}
		if link.Key != keys.DeriveLinkKey(wantShared) {
			t.Errorf("link (%d,%d) key does not match derivation", u, v)
		}
		return true
	})

	// And every channel edge with enough shared keys must be secure.
	chans.ForEachEdge(func(u, v int32) bool {
		ru, err := net.Ring(u)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := net.Ring(v)
		if err != nil {
			t.Fatal(err)
		}
		if ru.SharedCount(rv) >= q && !topo.HasEdge(u, v) {
			t.Errorf("channel edge (%d,%d) shares ≥ q keys but is not secure", u, v)
		}
		return true
	})
}

func TestDeployDeterministic(t *testing.T) {
	a := deployTest(t, 42)
	b := deployTest(t, 42)
	ga, gb := a.FullSecureTopology(), b.FullSecureTopology()
	if !ga.IsSpanningSubgraphOf(gb) || !gb.IsSpanningSubgraphOf(ga) {
		t.Error("same seed produced different networks")
	}
	c := deployTest(t, 43)
	gc := c.FullSecureTopology()
	if ga.IsSpanningSubgraphOf(gc) && gc.IsSpanningSubgraphOf(ga) {
		t.Error("different seeds produced identical networks (suspicious)")
	}
}

func TestLinkQueries(t *testing.T) {
	net := deployTest(t, 8)
	if _, ok := net.Link(0, 0); ok {
		t.Error("self link reported")
	}
	if _, ok := net.Link(-1, 2); ok {
		t.Error("out-of-range link reported")
	}
	links := net.Links()
	if len(links) != net.FullSecureTopology().M() {
		t.Errorf("Links() returned %d, topology has %d", len(links), net.FullSecureTopology().M())
	}
	for _, l := range links[:min(5, len(links))] {
		got, ok := net.Link(l.A, l.B)
		if !ok {
			t.Fatalf("Link(%d,%d) missing", l.A, l.B)
		}
		// Symmetric lookup.
		rev, ok := net.Link(l.B, l.A)
		if !ok || rev.Key != got.Key {
			t.Errorf("Link lookup not symmetric for (%d,%d)", l.A, l.B)
		}
	}
	// Mutating a returned link must not affect internal state.
	if len(links) > 0 {
		l, _ := net.Link(links[0].A, links[0].B)
		if len(l.SharedKeys) > 0 {
			l.SharedKeys[0] = -99
			l2, _ := net.Link(links[0].A, links[0].B)
			if l2.SharedKeys[0] == -99 {
				t.Error("returned link aliases internal state")
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSecurePath(t *testing.T) {
	net := deployTest(t, 9)
	conn, err := net.IsConnected()
	if err != nil {
		t.Fatal(err)
	}
	if !conn {
		t.Skip("test network not connected under this seed")
	}
	path, err := net.SecurePath(0, int32(net.Sensors()-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("no path in a connected network")
	}
	if path[0] != 0 || path[len(path)-1] != int32(net.Sensors()-1) {
		t.Errorf("path endpoints wrong: %v", path)
	}
	topo := net.FullSecureTopology()
	for i := 0; i+1 < len(path); i++ {
		if !topo.HasEdge(path[i], path[i+1]) {
			t.Errorf("path hop (%d,%d) is not a secure link", path[i], path[i+1])
		}
	}
}

func TestFailureInjection(t *testing.T) {
	net := deployTest(t, 10)
	n := net.Sensors()
	if net.AliveCount() != n {
		t.Fatalf("AliveCount = %d", net.AliveCount())
	}
	if err := net.FailNodes(3, 5); err != nil {
		t.Fatal(err)
	}
	if net.AliveCount() != n-2 || net.Alive(3) || !net.Alive(4) {
		t.Error("failure state wrong after FailNodes")
	}
	if err := net.FailNodes(3); err == nil {
		t.Error("double failure: want error")
	}
	if err := net.FailNodes(int32(n)); err == nil {
		t.Error("out of range failure: want error")
	}
	// Failed sensors disappear from topology and links.
	sub, orig, err := net.SecureTopology()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != n-2 {
		t.Errorf("induced topology has %d nodes, want %d", sub.N(), n-2)
	}
	for _, o := range orig {
		if o == 3 || o == 5 {
			t.Error("failed sensor still present in induced topology")
		}
	}
	if _, ok := net.Link(3, 4); ok {
		t.Error("link to failed sensor reported")
	}
	if _, err := net.SecurePath(3, 4); err == nil {
		t.Error("SecurePath from failed sensor: want error")
	}
	net.RestoreAll()
	if net.AliveCount() != n || !net.Alive(3) {
		t.Error("RestoreAll did not restore")
	}
}

func TestFailRandom(t *testing.T) {
	net := deployTest(t, 11)
	r := rng.New(1)
	failed, err := net.FailRandom(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 10 {
		t.Fatalf("failed %d sensors", len(failed))
	}
	seen := map[int32]bool{}
	for _, id := range failed {
		if seen[id] {
			t.Fatalf("sensor %d failed twice", id)
		}
		seen[id] = true
		if net.Alive(id) {
			t.Errorf("sensor %d still alive", id)
		}
	}
	if net.AliveCount() != net.Sensors()-10 {
		t.Errorf("AliveCount = %d", net.AliveCount())
	}
	if _, err := net.FailRandom(r, net.Sensors()); err == nil {
		t.Error("failing more than alive: want error")
	}
	if _, err := net.FailRandom(r, -1); err == nil {
		t.Error("negative count: want error")
	}
}

func TestAppendAliveIDs(t *testing.T) {
	net := deployTest(t, 13)
	n := net.Sensors()
	ids := net.AppendAliveIDs(nil)
	if len(ids) != n {
		t.Fatalf("fresh network: %d alive IDs, want %d", len(ids), n)
	}
	for i, id := range ids {
		if id != int32(i) {
			t.Fatalf("alive IDs not ascending: ids[%d] = %d", i, id)
		}
	}
	if err := net.FailNodes(0, 4, int32(n-1)); err != nil {
		t.Fatal(err)
	}
	// Appends to the destination slice, preserving its prefix.
	got := net.AppendAliveIDs([]int32{-7})
	if got[0] != -7 || len(got) != 1+n-3 {
		t.Fatalf("append semantics broken: len %d, head %d", len(got), got[0])
	}
	for _, id := range got[1:] {
		if id == 0 || id == 4 || id == int32(n-1) {
			t.Errorf("dead sensor %d listed alive", id)
		}
	}
}

func TestKConnectivityMatchesFailureSemantics(t *testing.T) {
	// If the network is k-connected, any k−1 failures leave it connected.
	net := deployTest(t, 12)
	const k = 3
	ok, err := net.IsKConnected(k)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("test network not 3-connected under this seed")
	}
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		if _, err := net.FailRandom(r, k-1); err != nil {
			t.Fatal(err)
		}
		conn, err := net.IsConnected()
		if err != nil {
			t.Fatal(err)
		}
		if !conn {
			t.Fatal("3-connected network disconnected by 2 failures")
		}
		net.RestoreAll()
	}
}

func TestSnapshot(t *testing.T) {
	net := deployTest(t, 13)
	rep, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sensors != net.Sensors() || rep.Alive != net.Sensors() {
		t.Errorf("report counts wrong: %+v", rep)
	}
	if rep.SecureLinks != net.FullSecureTopology().M() {
		t.Errorf("SecureLinks = %d", rep.SecureLinks)
	}
	if rep.SchemeName != "2-composite" {
		t.Errorf("SchemeName = %q", rep.SchemeName)
	}
	if rep.RequiredShared != 2 {
		t.Errorf("RequiredShared = %d", rep.RequiredShared)
	}
	wantMean := 2 * float64(rep.SecureLinks) / float64(rep.Sensors)
	if math.Abs(rep.MeanDegree-wantMean) > 1e-12 {
		t.Errorf("MeanDegree = %v, want %v", rep.MeanDegree, wantMean)
	}
	if rep.Connected != (rep.Components <= 1) {
		t.Error("Connected flag inconsistent with component count")
	}
}

func TestEmptyNetwork(t *testing.T) {
	scheme, err := keys.NewQComposite(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Deploy(Config{Sensors: 0, Scheme: scheme, Channel: channel.AlwaysOn{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sensors != 0 || rep.SecureLinks != 0 {
		t.Errorf("empty network report: %+v", rep)
	}
	conn, err := net.IsConnected()
	if err != nil {
		t.Fatal(err)
	}
	if !conn {
		t.Error("empty network should be vacuously connected")
	}
}

// TestSecureTopologyMatchesTheory is the integration check that Deploy
// reproduces the paper's edge probability t = p·s(K,P,q) (eq. (5)).
func TestSecureTopologyMatchesTheory(t *testing.T) {
	const (
		sensors = 100
		pool    = 300
		ring    = 20
		q       = 2
		pOn     = 0.5
		trials  = 60
	)
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	totalEdges := 0
	for seed := uint64(0); seed < trials; seed++ {
		net, err := Deploy(Config{Sensors: sensors, Scheme: scheme, Channel: channel.OnOff{P: pOn}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		totalEdges += net.FullSecureTopology().M()
	}
	want, err := theory.EdgeProb(pool, ring, q, pOn)
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(sensors * (sensors - 1) / 2)
	got := float64(totalEdges) / (pairs * trials)
	if math.Abs(got-want) > 0.12*want+0.002 {
		t.Errorf("deployed edge probability = %v, theory t = %v", got, want)
	}
}

func BenchmarkDeploy(b *testing.B) {
	scheme, err := keys.NewQComposite(10000, 60, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Sensors: 500, Scheme: scheme, Channel: channel.OnOff{P: 0.5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Deploy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
