package rng

import "math"

// geometricBatch is the uniform-buffer size of a GeometricSource. A refill
// converts one batch of generator words to log(1−u) values in a tight,
// branch-free loop; 64 entries (one 512-byte buffer) amortize the refill
// while keeping a partially drained batch cheap to abandon.
const geometricBatch = 64

// maxIntFloat is the smallest float64 no int can reach: math.MaxInt rounds
// up to 2⁶³ under constant conversion, so any quotient below it converts to
// int without overflow and any quotient at or above it must saturate.
const maxIntFloat = float64(math.MaxInt)

// GeometricSource is the batched kernel behind the streaming edge samplers:
// repeated Geometric(p) draws with the per-draw math hoisted out of the hot
// loop. A plain (*Rand).Geometric call pays a math.Log, a math.Log1p and the
// uniform draw per skip; a source computes math.Log1p(-p) once per SetP and
// buffers the p-independent math.Log(1−u) transforms a whole batch at a
// time, so the per-draw path is one load, one divide, one floor.
//
// The contract that lets the kernel thread through every sampler unchanged:
// draw i consumes uniform i. Next returns exactly
//
//	floor(log(1−u_i) / log1p(−p))
//
// for the i-th Float64 the underlying generator produces, so topologies
// sampled through a source are bit-identical at a fixed seed to the
// per-draw samplers that preceded it (pinned by the channel topology
// fingerprints). Because the buffer holds log(1−u) rather than finished
// skips, SetP may retarget p mid-stream — the heterogeneous per-class-pair
// blocks do exactly that — without consuming or discarding randomness.
//
// The one observable difference is the generator's FINAL position after a
// draw sequence: a refill consumes geometricBatch uniforms at once, so the
// generator parks at the next batch boundary rather than at the last
// uniform actually used. A generator lent to a source is therefore
// committed until the caller is done sampling; draws made on it afterwards
// are still independent uniforms, just not the ones the pre-kernel code
// would have seen. The montecarlo engine reseeds per trial and deployments
// consume channel randomness last, so no in-tree fixed-seed expectation
// observes the position.
//
// Quotients exceeding MaxInt (tiny p) saturate to MaxInt, like
// (*Rand).Geometric. The zero value is unusable: call Reset, then SetP,
// before Next. A GeometricSource is not safe for concurrent use.
type GeometricSource struct {
	r    *Rand
	lnq  float64
	pos  int
	logs [geometricBatch]float64
}

// Reset points the source at r and empties the buffer, so the next refill
// starts from r's current position.
func (g *GeometricSource) Reset(r *Rand) {
	g.r = r
	g.pos = geometricBatch
}

// SetP retargets the success probability without touching buffered
// randomness. p must be in (0, 1); the samplers handle p = 0 and p = 1
// before reaching the kernel.
func (g *GeometricSource) SetP(p float64) {
	g.lnq = math.Log1p(-p)
}

// Next returns the number of failures before the first success in
// Bernoulli(p) trials, consuming exactly one buffered uniform.
func (g *GeometricSource) Next() int {
	if g.pos == geometricBatch {
		g.refill()
	}
	q := math.Floor(g.logs[g.pos] / g.lnq)
	g.pos++
	if q >= maxIntFloat {
		return math.MaxInt
	}
	return int(q)
}

func (g *GeometricSource) refill() {
	r := g.r
	for i := range g.logs {
		g.logs[i] = math.Log(1 - float64(r.Uint64()>>11)/(1<<53))
	}
	g.pos = 0
}
