// Package rng provides the deterministic pseudo-random number generation
// substrate for the library: a xoshiro256++ generator seeded through
// SplitMix64, independent derived streams for parallel Monte Carlo trials,
// and the distribution samplers the random-graph generators need (uniform
// integers, Bernoulli, binomial, Poisson, geometric, and k-subset sampling
// without replacement).
//
// Every randomized API in this repository takes an explicit *Rand so that
// experiments are reproducible bit-for-bit from a single seed, regardless of
// goroutine scheduling (the style guide's "avoid mutable globals" applied to
// randomness).
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Rand is a xoshiro256++ pseudo-random number generator. It is NOT safe for
// concurrent use; derive one stream per goroutine with NewStream.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is the recommended seeding procedure for xoshiro generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Any seed (including 0)
// yields a well-mixed non-degenerate state.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed resets r to exactly the state New(seed) would construct, without
// allocating. It lets long-lived trial loops (a reused wsn.Deployer, the
// montecarlo worker loop) replace the per-trial New/NewStream — the last
// steady-state allocation of a Monte Carlo trial.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	r.s2 = splitMix64(&st)
	r.s3 = splitMix64(&st)
}

// ReseedStream resets r to exactly the state NewStream(seed, id) would
// construct, without allocating.
func (r *Rand) ReseedStream(seed, id uint64) {
	r.Reseed(StreamSeed(seed, id))
}

// StreamSeed returns the derived seed of the sub-stream identified by
// (seed, id) — the value NewStream seeds its generator with. Exposed so that
// higher layers (e.g. parameter sweeps) can assign deterministic per-unit
// base seeds that are themselves fed to seed-taking APIs.
func StreamSeed(seed, id uint64) uint64 {
	// Mix the id through SplitMix64 before combining so that consecutive ids
	// land far apart in seed space.
	st := id
	mixed := splitMix64(&st)
	return seed ^ mixed ^ 0xd1b54a32d192ed03*id
}

// NewStream returns a generator for the sub-stream identified by (seed, id).
// Distinct ids yield statistically independent streams; this is how parallel
// Monte Carlo trials obtain per-trial reproducible randomness.
func NewStream(seed, id uint64) *Rand {
	return New(StreamSeed(seed, id))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0 (programmer
// error, mirroring math/rand).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn with non-positive n = %d", n))
	}
	return int(r.uint64n(uint64(n)))
}

// uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *Rand) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// FillFloat64 fills dst with independent uniform floats in [0, 1),
// consuming exactly len(dst) generator words in index order — the batch
// form of calling Float64 per element, for hot paths (e.g. geometric-graph
// position draws) that want the conversion loop kept tight.
func (r *Rand) FillFloat64(dst []float64) {
	for i := range dst {
		dst[i] = float64(r.Uint64()>>11) / (1 << 53)
	}
}

// Bernoulli returns true with probability p. Probabilities outside [0,1] are
// clamped (p<=0 never, p>=1 always).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial returns a sample from Binomial(n, p).
//
// For small n·p it uses the waiting-time (geometric skip) method, which runs
// in O(np) expected time; otherwise it falls back to summing Bernoulli
// trials in blocks via the inverse-transform on the count of successes in
// chunks. n must be non-negative.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic(fmt.Sprintf("rng: Binomial with negative n = %d", n))
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Waiting-time method: successive geometric gaps between successes.
	// Expected iterations = np + 1.
	count := 0
	i := 0
	lnq := math.Log1p(-p)
	for {
		// Geometric(p) gap: number of failures before next success. The gap
		// is compared as a float BEFORE the int conversion: for tiny p the
		// quotient can exceed MaxInt, and an out-of-range float→int
		// conversion is implementation-specific (MinInt on amd64), which
		// used to wrap i negative and overcount.
		gap := math.Floor(math.Log(1-r.Float64()) / lnq)
		if gap >= float64(n-i) {
			return count
		}
		i += int(gap) + 1
		count++
	}
}

// Poisson returns a sample from Poisson(lambda). Non-positive lambda returns
// zero. For large lambda it splits recursively (the sum of independent
// Poisson(λ/2) variates is exactly Poisson(λ)), keeping Knuth's product
// method numerically safe.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	const knuthLimit = 30
	n := 0
	for lambda > knuthLimit {
		half := lambda / 2
		n += r.poissonKnuth(half)
		lambda -= half
	}
	return n + r.poissonKnuth(lambda)
}

func (r *Rand) poissonKnuth(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). p must be in (0, 1]; p >= 1
// always returns 0. Quotients exceeding MaxInt (tiny p makes the divisor
// approach −0) saturate to MaxInt instead of hitting the
// implementation-specific out-of-range float→int conversion.
//
// Hot loops drawing many skips at one or few p values should prefer
// GeometricSource, which hoists the Log1p and batches the uniform draws.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic(fmt.Sprintf("rng: Geometric with non-positive p = %v", p))
	}
	q := math.Floor(math.Log(1-r.Float64()) / math.Log1p(-p))
	if q >= maxIntFloat {
		return math.MaxInt
	}
	return int(q)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function,
// mirroring math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SubsetSampler draws uniform k-subsets of [0, n) in O(k) time per draw with
// no per-draw allocation, using a partial Fisher–Yates shuffle over a
// persistent identity array that is rolled back after each draw.
//
// It is the hot path for key-ring assignment: each of n sensors draws K keys
// from a pool of P, so per-draw O(P) work would dominate graph sampling.
// A SubsetSampler is not safe for concurrent use.
type SubsetSampler struct {
	perm []int32
	// swapped records the positions touched by the last draw for rollback.
	swapped []int32
}

// NewSubsetSampler returns a sampler over the universe [0, n).
func NewSubsetSampler(n int) (*SubsetSampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: subset sampler universe must be positive, got %d", n)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("rng: subset sampler universe %d exceeds int32 range", n)
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return &SubsetSampler{perm: perm}, nil
}

// Universe returns the size of the sampling universe.
func (s *SubsetSampler) Universe() int { return len(s.perm) }

// AppendSample appends a uniform random k-subset of [0, n) to dst and returns
// the extended slice. The returned elements are in the (random) order drawn,
// not sorted. k must be in [0, n].
func (s *SubsetSampler) AppendSample(r *Rand, k int, dst []int32) ([]int32, error) {
	n := len(s.perm)
	if k < 0 || k > n {
		return nil, fmt.Errorf("rng: subset size %d out of range [0, %d]", k, n)
	}
	s.swapped = s.swapped[:0]
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
		s.swapped = append(s.swapped, int32(j))
		dst = append(dst, s.perm[i])
	}
	// Roll back so the next draw starts from the identity-equivalent state.
	// Undoing in reverse order restores the exact previous permutation, and
	// since the array always remains a permutation of [0,n), uniformity of
	// subsequent draws is unaffected.
	for i := k - 1; i >= 0; i-- {
		j := s.swapped[i]
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	}
	return dst, nil
}
