package rng

import (
	"fmt"
	"math"
	"testing"
)

// TestGeometricSourceMatchesScalar pins the kernel's bit-identity contract:
// draw i consumes uniform i, so a GeometricSource must reproduce the scalar
// Geometric sequence value for value at a fixed seed — including across
// mid-stream SetP retargets, which the heterogeneous block sampler relies
// on (the buffer holds p-independent log(1−u) values, so a p change must
// not consume or discard randomness).
func TestGeometricSourceMatchesScalar(t *testing.T) {
	ps := []float64{0.9, 0.5, 0.1, 0.01, 0.001, 1e-9}
	for seed := uint64(1); seed <= 3; seed++ {
		rScalar := New(seed)
		rKernel := New(seed)
		var src GeometricSource
		src.Reset(rKernel)
		// 3× the batch size, crossing refill boundaries, changing p every
		// draw in round-robin order.
		for i := 0; i < 3*geometricBatch; i++ {
			p := ps[i%len(ps)]
			want := rScalar.Geometric(p)
			src.SetP(p)
			if got := src.Next(); got != want {
				t.Fatalf("seed=%d draw %d (p=%g): kernel %d, scalar %d", seed, i, p, got, want)
			}
		}
	}
}

// TestGeometricSourceResetRealigns covers the lend-return cycle the
// samplers perform: after Reset the source must discard any partially
// drained batch and consume fresh uniforms from the generator's current
// position.
func TestGeometricSourceResetRealigns(t *testing.T) {
	r := New(7)
	var src GeometricSource
	src.Reset(r)
	src.SetP(0.3)
	src.Next() // leaves 63 buffered uniforms
	ref := New(0)
	*ref = *r // snapshot the generator position after the first refill
	src.Reset(r)
	src.SetP(0.3)
	want := ref.Geometric(0.3)
	if got := src.Next(); got != want {
		t.Fatalf("after Reset: kernel %d, scalar-from-snapshot %d", got, want)
	}
}

// TestGeometricTinyPClamp is the satellite regression for the overflow
// guard: at p = 1e-12 the quotient stays comfortably inside int64 range and
// must be a plain huge non-negative skip, while at p = 1e-300 essentially
// every draw overflows MaxInt and must saturate rather than hit the
// implementation-specific out-of-range float→int conversion (MinInt on
// amd64, which previously turned into a negative skip).
func TestGeometricTinyPClamp(t *testing.T) {
	r := New(42)
	for i := 0; i < 200; i++ {
		if g := r.Geometric(1e-12); g < 0 {
			t.Fatalf("draw %d: Geometric(1e-12) = %d, want non-negative", i, g)
		}
	}
	sawMax := false
	var src GeometricSource
	src.Reset(r)
	src.SetP(1e-300)
	for i := 0; i < 200; i++ {
		g := r.Geometric(1e-300)
		k := src.Next()
		if g < 0 || k < 0 {
			t.Fatalf("draw %d: Geometric(1e-300) = %d / kernel %d, want non-negative", i, g, k)
		}
		if g == math.MaxInt {
			sawMax = true
		}
	}
	if !sawMax {
		t.Error("Geometric(1e-300) never saturated to MaxInt in 200 draws; clamp untested")
	}
}

// TestBinomialTinyPClamp: Binomial's waiting-time loop inherits the
// overflow — the huge gap must read as "past n" (return) instead of
// wrapping the position negative and overcounting. The count must stay in
// [0, n] and be almost surely 0 at p = 1e-300.
func TestBinomialTinyPClamp(t *testing.T) {
	r := New(9)
	for i := 0; i < 200; i++ {
		c := r.Binomial(1000, 1e-300)
		if c < 0 || c > 1000 {
			t.Fatalf("draw %d: Binomial(1000, 1e-300) = %d outside [0, 1000]", i, c)
		}
		if c != 0 {
			t.Fatalf("draw %d: Binomial(1000, 1e-300) = %d, want 0 (success probability ~1e-297)", i, c)
		}
	}
	total := 0
	for i := 0; i < 200; i++ {
		c := r.Binomial(1<<40, 1e-12)
		if c < 0 {
			t.Fatalf("draw %d: Binomial(2^40, 1e-12) = %d, want non-negative", i, c)
		}
		total += c
	}
	// Mean per draw is 2^40 · 1e-12 ≈ 1.1; 200 draws concentrate hard.
	if total < 50 || total > 800 {
		t.Errorf("Binomial(2^40, 1e-12) summed to %d over 200 draws, want ≈ 220", total)
	}
}

// TestFillFloat64MatchesFloat64 pins the batch filler's draw-for-draw
// contract against per-element Float64 calls.
func TestFillFloat64MatchesFloat64(t *testing.T) {
	ra, rb := New(5), New(5)
	buf := make([]float64, 97)
	ra.FillFloat64(buf)
	for i, got := range buf {
		if want := rb.Float64(); got != want {
			t.Fatalf("element %d: %v, want %v", i, got, want)
		}
	}
	if ra.Uint64() != rb.Uint64() {
		t.Error("generator states diverged after FillFloat64")
	}
}

// BenchmarkGeometricKernel measures the kernelized skip draw against the
// scalar Geometric call it replaced (per-draw Log1p + call overhead vs the
// batched refill), at the skip scales the streaming samplers actually see.
func BenchmarkGeometricKernel(b *testing.B) {
	for _, p := range []float64{0.5, 0.05, 0.001} {
		b.Run(fmt.Sprintf("p=%g/scalar", p), func(b *testing.B) {
			r := New(1)
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += r.Geometric(p)
			}
			sinkInt = acc
		})
		b.Run(fmt.Sprintf("p=%g/kernel", p), func(b *testing.B) {
			r := New(1)
			var src GeometricSource
			src.Reset(r)
			src.SetP(p)
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += src.Next()
			}
			sinkInt = acc
		})
	}
}

var sinkInt int
