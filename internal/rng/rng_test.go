package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("generators with different seeds matched %d/100 outputs", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("seed-0 generator produced %d zero outputs out of 100", zeros)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 matched %d/100 outputs", same)
	}
	// Same (seed, id) must reproduce.
	c, d := NewStream(7, 5), NewStream(7, 5)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("identical streams diverged")
		}
	}
}

// TestReseedMatchesNew pins the zero-allocation reseeding contract: a
// reseeded generator is byte-identical to a freshly constructed one — state
// and output stream — for Reseed vs New and ReseedStream vs NewStream, even
// when the reseeded generator arrives in an arbitrary mid-stream state.
func TestReseedMatchesNew(t *testing.T) {
	reused := New(999)
	for _, seed := range []uint64{0, 1, 42, 1<<63 + 7} {
		reused.Uint64() // desync: Reseed must not depend on prior state
		reused.Reseed(seed)
		fresh := New(seed)
		if *reused != *fresh {
			t.Fatalf("Reseed(%d) state %+v differs from New state %+v", seed, *reused, *fresh)
		}
		for i := 0; i < 100; i++ {
			if got, want := reused.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("Reseed(%d) output %d: %d, want %d", seed, i, got, want)
			}
		}
		for _, id := range []uint64{0, 3, 1 << 40} {
			reused.ReseedStream(seed, id)
			stream := NewStream(seed, id)
			if *reused != *stream {
				t.Fatalf("ReseedStream(%d,%d) state differs from NewStream", seed, id)
			}
			for i := 0; i < 100; i++ {
				if got, want := reused.Uint64(), stream.Uint64(); got != want {
					t.Fatalf("ReseedStream(%d,%d) output %d: %d, want %d", seed, id, i, got, want)
				}
			}
		}
	}
}

// TestReseedAllocFree gates the point of Reseed: no allocation per reseed.
func TestReseedAllocFree(t *testing.T) {
	var r Rand
	seed := uint64(0)
	if avg := testing.AllocsPerRun(100, func() {
		seed++
		r.ReseedStream(seed, seed*3)
		r.Uint64()
	}); avg != 0 {
		t.Errorf("ReseedStream allocates %.1f allocs/run, want 0", avg)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count = %d, want ~%v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(7)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	tests := []struct {
		n int
		p float64
	}{
		{n: 100, p: 0.05},
		{n: 100, p: 0.5},
		{n: 100, p: 0.95},
		{n: 10000, p: 0.01},
	}
	r := New(8)
	for _, tt := range tests {
		const trials = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < trials; i++ {
			x := float64(r.Binomial(tt.n, tt.p))
			sum += x
			sumSq += x * x
		}
		mean := sum / trials
		wantMean := float64(tt.n) * tt.p
		variance := sumSq/trials - mean*mean
		wantVar := float64(tt.n) * tt.p * (1 - tt.p)
		// 5-sigma tolerance on the mean estimate.
		tol := 5 * math.Sqrt(wantVar/trials)
		if math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v ± %v", tt.n, tt.p, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+1 {
			t.Errorf("Binomial(%d,%v) var = %v, want ~%v", tt.n, tt.p, variance, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(9)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		x := r.Binomial(5, 0.3)
		if x < 0 || x > 5 {
			t.Fatalf("Binomial(5, .3) = %d out of range", x)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(10)
	for _, lambda := range []float64{0.5, 5, 29, 30, 100, 500} {
		const trials = 20000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		tol := 5 * math.Sqrt(lambda/trials)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) mean = %v, want %v ± %v", lambda, mean, lambda, tol)
		}
	}
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const trials = 50000
		sum := 0.0
		for i := 0; i < trials; i++ {
			g := r.Geometric(p)
			if g < 0 {
				t.Fatalf("Geometric(%v) = %d < 0", p, g)
			}
			sum += float64(g)
		}
		mean := sum / trials
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v) mean = %v, want %v", p, mean, want)
		}
	}
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(13)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d count = %d, want ~%v", v, c, want)
		}
	}
}

func TestShuffleMatchesPermContract(t *testing.T) {
	r := New(21)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if v < 0 || v >= len(seen) || seen[v] {
			t.Fatalf("Shuffle result %v not a permutation", vals)
		}
		seen[v] = true
	}
}

func TestSubsetSamplerErrors(t *testing.T) {
	if _, err := NewSubsetSampler(0); err == nil {
		t.Error("NewSubsetSampler(0): want error")
	}
	if _, err := NewSubsetSampler(-3); err == nil {
		t.Error("NewSubsetSampler(-3): want error")
	}
	s, err := NewSubsetSampler(10)
	if err != nil {
		t.Fatal(err)
	}
	r := New(14)
	if _, err := s.AppendSample(r, 11, nil); err == nil {
		t.Error("AppendSample(k>n): want error")
	}
	if _, err := s.AppendSample(r, -1, nil); err == nil {
		t.Error("AppendSample(k<0): want error")
	}
}

func TestSubsetSamplerValidSubsets(t *testing.T) {
	const n, k = 50, 7
	s, err := NewSubsetSampler(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Universe(); got != n {
		t.Fatalf("Universe() = %d, want %d", got, n)
	}
	r := New(15)
	var buf []int32
	for trial := 0; trial < 2000; trial++ {
		buf, err = s.AppendSample(r, k, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != k {
			t.Fatalf("sample size = %d, want %d", len(buf), k)
		}
		seen := map[int32]bool{}
		for _, v := range buf {
			if v < 0 || v >= n {
				t.Fatalf("sample element %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate element %d in sample %v", v, buf)
			}
			seen[v] = true
		}
	}
}

func TestSubsetSamplerUniformMembership(t *testing.T) {
	// Every element must appear with frequency k/n.
	const n, k, trials = 20, 5, 40000
	s, err := NewSubsetSampler(n)
	if err != nil {
		t.Fatal(err)
	}
	r := New(16)
	counts := make([]int, n)
	var buf []int32
	for trial := 0; trial < trials; trial++ {
		buf, err = s.AppendSample(r, k, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d appeared %d times, want ~%v", v, c, want)
		}
	}
}

func TestSubsetSamplerFullDraw(t *testing.T) {
	const n = 8
	s, err := NewSubsetSampler(n)
	if err != nil {
		t.Fatal(err)
	}
	r := New(17)
	buf, err := s.AppendSample(r, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	for _, v := range buf {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("full draw missing element %d: %v", i, buf)
		}
	}
	// Zero-size draws are fine too.
	buf, err = s.AppendSample(r, 0, buf[:0])
	if err != nil || len(buf) != 0 {
		t.Fatalf("zero draw = %v, err %v", buf, err)
	}
}

func TestQuickBinomialRange(t *testing.T) {
	r := New(18)
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)
		p := float64(pRaw) / math.MaxUint16
		x := r.Binomial(n, p)
		return x >= 0 && x <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetRollback(t *testing.T) {
	// After any sequence of draws the sampler's internal permutation must
	// still contain every element exactly once (rollback correctness).
	r := New(19)
	s, err := NewSubsetSampler(30)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kRaw uint8) bool {
		k := int(kRaw) % 31
		buf, err := s.AppendSample(r, k, nil)
		if err != nil || len(buf) != k {
			return false
		}
		seen := make([]bool, 30)
		for _, v := range s.perm {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkSubsetSampleK50(b *testing.B) {
	s, err := NewSubsetSampler(10000)
	if err != nil {
		b.Fatal(err)
	}
	r := New(2)
	buf := make([]int32, 0, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = s.AppendSample(r, 50, buf[:0])
	}
}
