// Package cmdutil wires the sweep runtime's fault-tolerance features into
// the command-line experiments: -checkpoint/-resume journal flags shared by
// every sweep a command runs, and a signal-aware context so an interrupted
// run (Ctrl-C, SIGTERM) drains its shards, flushes the journal, and prints
// how to pick up where it left off.
package cmdutil

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/secure-wsn/qcomposite/internal/experiment"
)

// Journal carries a command's -checkpoint/-resume flag state and, after
// Open, the loaded resume bytes and the open checkpoint file. One Journal
// serves every sweep the command runs: each sweep gets its own section in
// the file (its own header + points, under its own label), and on resume
// each sweep reads only its own sections.
type Journal struct {
	checkpointPath string
	resumePath     string

	resumeData []byte
	file       *os.File
}

// RegisterJournal registers -checkpoint and -resume on the default flag set.
// Call before flag.Parse, then Open after it.
func RegisterJournal() *Journal {
	j := &Journal{}
	flag.StringVar(&j.checkpointPath, "checkpoint", "",
		"append each completed grid point to this journal file; an interrupted run resumes from it")
	flag.StringVar(&j.resumePath, "resume", "",
		"resume completed points from this journal (default: the -checkpoint file when it already exists)")
	return j
}

// Open loads the resume journal and opens the checkpoint file for append.
// When only -checkpoint is given and the file already exists, it doubles as
// the resume journal — the natural "re-run the same command line after a
// kill" workflow. The resume bytes are read fully into memory BEFORE the
// checkpoint file is opened for append, so checkpointing to the file being
// resumed from is safe (and is the intended usage).
func (j *Journal) Open() error {
	resumePath := j.resumePath
	if resumePath == "" && j.checkpointPath != "" {
		if st, err := os.Stat(j.checkpointPath); err == nil && st.Size() > 0 {
			resumePath = j.checkpointPath
		}
	}
	if resumePath != "" {
		data, err := os.ReadFile(resumePath)
		if err != nil {
			return fmt.Errorf("reading resume journal: %w", err)
		}
		j.resumeData = data
	}
	if j.checkpointPath != "" {
		f, err := os.OpenFile(j.checkpointPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening checkpoint journal: %w", err)
		}
		j.file = f
	}
	return nil
}

// Apply returns cfg wired to this journal for one sweep: label names the
// sweep's section (it folds into the journal fingerprint, so it must capture
// everything the build closure bakes in that the grid does not — sensor
// count, pool size, channel family, mode). Each Apply hands the sweep its
// own reader over the loaded resume bytes, so several sweeps can resume from
// one file.
func (j *Journal) Apply(cfg experiment.SweepConfig, label string) experiment.SweepConfig {
	cfg.JournalLabel = label
	if j.resumeData != nil {
		cfg.Resume = bytes.NewReader(j.resumeData)
	}
	if j.file != nil {
		cfg.Checkpoint = j.file
	}
	return cfg
}

// Close releases the checkpoint file.
func (j *Journal) Close() error {
	if j.file == nil {
		return nil
	}
	err := j.file.Close()
	j.file = nil
	return err
}

// Hint decorates a failed sweep's error with the resume instruction when the
// completed points were checkpointed — the message an interrupted user needs.
func (j *Journal) Hint(err error) error {
	if err == nil || j.checkpointPath == "" {
		return err
	}
	return fmt.Errorf("%w\ncompleted points are checkpointed; re-run with -checkpoint %s to resume",
		err, j.checkpointPath)
}

// SignalContext returns a context cancelled by SIGINT/SIGTERM. On the first
// signal the sweep's shards drain, freshly completed points flush to the
// journal, and the command exits through its normal error path; a second
// signal kills the process the usual way (the journal tolerates the
// truncated final line that may leave behind).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}

// Interrupted reports whether a sweep error is cancellation fallout from
// SignalContext (rather than a genuine point failure).
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled)
}

// Serve runs an http.Server until ctx is cancelled (typically by
// SignalContext), then drains it gracefully: in-flight requests get
// drainTimeout to finish before the listener is torn down. The server's own
// BaseContext is NOT cancelled during the drain, so long-poll/SSE handlers
// observing the request context wind down on their own schedule within the
// timeout. Returns nil on a clean drain; http.ErrServerClosed is absorbed.
func Serve(ctx context.Context, srv *http.Server, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	select {
	case err := <-errc:
		// Listener failed before any shutdown was requested (port in use, …).
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain deadline exceeded: hard-close the stragglers so the process
		// can exit; completed work is already journaled.
		srv.Close()
		return fmt.Errorf("draining server: %w", err)
	}
	return <-errc
}
