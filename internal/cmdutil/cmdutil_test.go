package cmdutil

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func TestOpenDefaultsResumeToExistingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.journal")
	if err := os.WriteFile(path, []byte("{\"header\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := &Journal{checkpointPath: path}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.resumeData == nil {
		t.Error("existing checkpoint file was not adopted as the resume journal")
	}

	// A fresh path resumes nothing but still opens for checkpointing.
	j2 := &Journal{checkpointPath: filepath.Join(dir, "new.journal")}
	if err := j2.Open(); err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.resumeData != nil {
		t.Error("nonexistent checkpoint file produced resume data")
	}
	if j2.file == nil {
		t.Error("checkpoint file was not opened")
	}
}

func TestApplyHandsEachSweepItsOwnReader(t *testing.T) {
	j := &Journal{resumeData: []byte("shared resume bytes")}
	a := j.Apply(experiment.SweepConfig{}, "sweep a")
	b := j.Apply(experiment.SweepConfig{}, "sweep b")
	if a.JournalLabel != "sweep a" || b.JournalLabel != "sweep b" {
		t.Errorf("labels not applied: %q, %q", a.JournalLabel, b.JournalLabel)
	}
	if a.Resume == nil || b.Resume == nil || a.Resume == b.Resume {
		t.Error("sweeps share one resume reader; each needs its own")
	}
	// Draining one sweep's reader must not starve the other's.
	buf := make([]byte, 32)
	n, _ := a.Resume.Read(buf)
	if n == 0 {
		t.Fatal("first reader empty")
	}
	if n2, _ := b.Resume.Read(buf); n2 != n {
		t.Error("second sweep's reader was consumed by the first")
	}
}

func TestHintNamesTheJournal(t *testing.T) {
	j := &Journal{checkpointPath: "run.journal"}
	cause := errors.New("sweep cancelled")
	err := j.Hint(cause)
	if !errors.Is(err, cause) {
		t.Error("hint lost the underlying error")
	}
	if !strings.Contains(err.Error(), "run.journal") {
		t.Errorf("hint %q does not name the journal file", err)
	}
	if (&Journal{}).Hint(cause) != cause {
		t.Error("hint without a checkpoint should pass the error through")
	}
	if j.Hint(nil) != nil {
		t.Error("nil error must stay nil")
	}
}
