package adversary

import (
	"math"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func deployFor(t *testing.T, pool, ring, q int, seed uint64) *wsn.Network {
	t.Helper()
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsn.Deploy(wsn.Config{
		Sensors: 150,
		Scheme:  scheme,
		Channel: channel.AlwaysOn{},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCaptureValidation(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 1)
	if _, err := Capture(net, []int32{-1}); err == nil {
		t.Error("out of range capture: want error")
	}
	if _, err := Capture(net, []int32{3, 3}); err == nil {
		t.Error("duplicate capture: want error")
	}
	r := rng.New(1)
	if _, err := CaptureRandom(net, r, -1); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := CaptureRandom(net, r, net.Sensors()+1); err == nil {
		t.Error("over-capture: want error")
	}
}

// TestCaptureRandomSkipsDeadSensors is the regression test for the liveness
// bug: CaptureRandom used to draw from ALL sensor IDs, so after failures it
// could spend capture budget on dead sensors (and Capture would credit the
// adversary with their rings against a link universe that excluded them).
func TestCaptureRandomSkipsDeadSensors(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 30)
	failed, err := net.FailRandom(rng.New(77), 60)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int32]bool{}
	for _, id := range failed {
		dead[id] = true
	}
	// Capture most of the survivors: with 60 of 150 sensors dead, the old
	// all-IDs draw hits a dead sensor with probability ≈ 1 here.
	for seed := uint64(0); seed < 10; seed++ {
		res, err := CaptureRandom(net, rng.New(seed), 80)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range res.Captured {
			if dead[id] {
				t.Fatalf("seed %d: captured dead sensor %d", seed, id)
			}
		}
	}
	// The alive count, not the sensor count, bounds the capture budget.
	if _, err := CaptureRandom(net, rng.New(1), net.AliveCount()+1); err == nil {
		t.Error("capturing more than alive count: want error")
	}
	if _, err := CaptureRandom(net, rng.New(1), net.AliveCount()); err != nil {
		t.Errorf("capturing exactly the alive count: %v", err)
	}
}

// TestCaptureRejectsDeadSensor: explicitly naming a failed sensor is an
// error, not a silent over-credit of its key ring.
func TestCaptureRejectsDeadSensor(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 31)
	if err := net.FailNodes(7); err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(net, []int32{7}); err == nil {
		t.Error("capturing a failed sensor: want error")
	}
	if _, err := Capture(net, []int32{3, 7, 9}); err == nil {
		t.Error("capturing a set containing a failed sensor: want error")
	}
	if _, err := Capture(net, []int32{3, 9}); err != nil {
		t.Errorf("capturing alive sensors after a failure: %v", err)
	}
}

// TestCaptureRandomPinnedOnFullyAliveNetwork: the alive-list Fisher–Yates
// must consume randomness draw-for-draw like the historical all-IDs code, so
// existing seeds keep producing the same captures on untouched networks.
func TestCaptureRandomPinnedOnFullyAliveNetwork(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 32)
	r := rng.New(13)
	res, err := CaptureRandom(net, r, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the historical implementation on a twin generator.
	legacy := rng.New(13)
	ids := make([]int32, net.Sensors())
	for i := range ids {
		ids[i] = int32(i)
	}
	for i := 0; i < 12; i++ {
		j := i + legacy.Intn(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	for i, id := range res.Captured {
		if id != ids[i] {
			t.Fatalf("draw %d diverged: got %d, legacy %d", i, id, ids[i])
		}
	}
	if a, b := r.Intn(1<<30), legacy.Intn(1<<30); a != b {
		t.Errorf("generator states diverged after capture: %d vs %d", a, b)
	}
}

func TestCaptureZeroNodes(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 2)
	res, err := Capture(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompromisedLinks != 0 || res.KeysLearned != 0 {
		t.Errorf("empty capture compromised something: %+v", res)
	}
	if res.TotalLinks != net.FullSecureTopology().M() {
		t.Errorf("TotalLinks = %d, want %d", res.TotalLinks, net.FullSecureTopology().M())
	}
	if res.Fraction() != 0 {
		t.Errorf("Fraction = %v", res.Fraction())
	}
}

func TestCaptureEverything(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 3)
	all := make([]int32, net.Sensors())
	for i := range all {
		all[i] = int32(i)
	}
	res, err := Capture(net, all)
	if err != nil {
		t.Fatal(err)
	}
	// No external links remain when everyone is captured.
	if res.TotalLinks != 0 || res.CompromisedLinks != 0 {
		t.Errorf("full capture: %+v", res)
	}
}

func TestCaptureCountsConsistent(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 4)
	r := rng.New(5)
	res, err := CaptureRandom(net, r, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) != 20 {
		t.Fatalf("captured %d", len(res.Captured))
	}
	if res.CompromisedLinks > res.TotalLinks {
		t.Errorf("compromised %d > total %d", res.CompromisedLinks, res.TotalLinks)
	}
	if res.KeysLearned > 20*25 || res.KeysLearned < 25 {
		t.Errorf("KeysLearned = %d implausible", res.KeysLearned)
	}
	if f := res.Fraction(); f < 0 || f > 1 {
		t.Errorf("Fraction = %v", f)
	}
	// External links = links not touching captured sensors.
	isCap := map[int32]bool{}
	for _, id := range res.Captured {
		isCap[id] = true
	}
	want := 0
	for _, l := range net.Links() {
		if !isCap[l.A] && !isCap[l.B] {
			want++
		}
	}
	if res.TotalLinks != want {
		t.Errorf("TotalLinks = %d, want %d", res.TotalLinks, want)
	}
}

func TestCaptureCompromiseRequiresAllSharedKeys(t *testing.T) {
	// Manual verification on a handful of links.
	net := deployFor(t, 300, 25, 2, 6)
	captured := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	res, err := Capture(net, captured)
	if err != nil {
		t.Fatal(err)
	}
	known := map[keys.ID]bool{}
	for _, id := range captured {
		ring, err := net.Ring(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ring.IDs() {
			known[k] = true
		}
	}
	isCap := map[int32]bool{}
	for _, id := range captured {
		isCap[id] = true
	}
	wantCompromised := 0
	for _, l := range net.Links() {
		if isCap[l.A] || isCap[l.B] {
			continue
		}
		all := true
		for _, k := range l.SharedKeys {
			if !known[k] {
				all = false
				break
			}
		}
		if all {
			wantCompromised++
		}
	}
	if res.CompromisedLinks != wantCompromised {
		t.Errorf("CompromisedLinks = %d, want %d", res.CompromisedLinks, wantCompromised)
	}
}

func TestAnalyticCompromiseFraction(t *testing.T) {
	// Zero captures → zero compromise.
	got, err := AnalyticCompromiseFraction(1000, 50, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("x=0 fraction = %v", got)
	}
	// Monotone in captures, bounded by 1, approaches 1.
	prev := -1.0
	for _, x := range []int{1, 5, 20, 100, 1000} {
		f, err := AnalyticCompromiseFraction(1000, 50, 2, x)
		if err != nil {
			t.Fatal(err)
		}
		if f < prev-1e-12 || f < 0 || f > 1 {
			t.Errorf("fraction not monotone/bounded at x=%d: %v after %v", x, f, prev)
		}
		prev = f
	}
	if prev < 0.999 {
		t.Errorf("fraction at x=1000 = %v, want ≈ 1", prev)
	}
	// Validation errors.
	if _, err := AnalyticCompromiseFraction(1000, 50, 2, -1); err == nil {
		t.Error("negative captures: want error")
	}
	if _, err := AnalyticCompromiseFraction(10, 50, 2, 1); err == nil {
		t.Error("ring > pool: want error")
	}
	if _, err := AnalyticCompromiseFraction(1000, 50, 0, 1); err == nil {
		t.Error("q = 0: want error")
	}
}

// TestQCompositeTradeOff reproduces the paper's motivating claim (Section I,
// citing Chan et al.): with schemes dimensioned to the SAME link probability
// (pool size adjusted per q, Chan et al.'s methodology), larger q
// compromises a smaller fraction of external links under small-scale
// capture, and the ordering flips under large-scale capture.
func TestQCompositeTradeOff(t *testing.T) {
	const (
		ring   = 60
		target = 0.33 // Chan et al.'s fixed link probability
	)
	pools := map[int]int{}
	for q := 1; q <= 3; q++ {
		pool, err := theory.PoolSizeForKeyShareProb(ring, q, target)
		if err != nil {
			t.Fatal(err)
		}
		pools[q] = pool
	}
	// Larger q needs a smaller pool to keep the same link probability.
	if !(pools[3] < pools[2] && pools[2] < pools[1]) {
		t.Fatalf("pool sizes not decreasing in q: %v", pools)
	}
	frac := func(q, captured int) float64 {
		f, err := AnalyticCompromiseFraction(pools[q], ring, q, captured)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// Small-scale capture: q3 strongest.
	if !(frac(3, 3) < frac(2, 3) && frac(2, 3) < frac(1, 3)) {
		t.Errorf("small-scale: want q3 < q2 < q1, got %v, %v, %v",
			frac(3, 3), frac(2, 3), frac(1, 3))
	}
	// Large-scale capture: ordering flips.
	if !(frac(2, 100) > frac(1, 100)) {
		t.Errorf("large-scale: want q2 > q1, got q2=%v q1=%v", frac(2, 100), frac(1, 100))
	}
}

// TestSimulationMatchesAnalytic cross-validates the simulated attack against
// the closed form.
func TestSimulationMatchesAnalytic(t *testing.T) {
	const (
		pool     = 500
		ring     = 30
		q        = 2
		captured = 10
		trials   = 40
	)
	var fracSum float64
	links := 0
	for seed := uint64(0); seed < trials; seed++ {
		net := deployFor(t, pool, ring, q, 100+seed)
		res, err := CaptureRandom(net, rng.New(seed), captured)
		if err != nil {
			t.Fatal(err)
		}
		fracSum += res.Fraction()
		links += res.TotalLinks
	}
	if links == 0 {
		t.Fatal("no external links across trials")
	}
	got := fracSum / trials
	want, err := AnalyticCompromiseFraction(pool, ring, q, captured)
	if err != nil {
		t.Fatal(err)
	}
	// The closed form treats key leaks as independent (asymptotic in P);
	// allow a coarse but directional tolerance.
	if math.Abs(got-want) > 0.25*want+0.01 {
		t.Errorf("simulated fraction %v vs analytic %v", got, want)
	}
}

func BenchmarkCapture(b *testing.B) {
	scheme, err := keys.NewQComposite(1000, 50, 2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := wsn.Deploy(wsn.Config{Sensors: 300, Scheme: scheme, Channel: channel.AlwaysOn{}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CaptureRandom(net, r, 30); err != nil {
			b.Fatal(err)
		}
	}
}
