package adversary

import (
	"reflect"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestParseTimeline(t *testing.T) {
	tl, err := ParseTimeline("capture:10, fail:5,capture-targeted:2,jam:3,revoke:10,fail-targeted:1")
	if err != nil {
		t.Fatal(err)
	}
	want := Timeline{
		{StepCapture, 10}, {StepFailRandom, 5}, {StepCaptureTargeted, 2},
		{StepJam, 3}, {StepRevoke, 10}, {StepFailTargeted, 1},
	}
	if !reflect.DeepEqual(tl, want) {
		t.Fatalf("parsed %v, want %v", tl, want)
	}
	if got := tl.String(); got != "capture:10,fail:5,capture-targeted:2,jam:3,revoke:10,fail-targeted:1" {
		t.Errorf("String() = %q", got)
	}
	if tl.TotalBudget() != 31 {
		t.Errorf("TotalBudget = %d", tl.TotalBudget())
	}
	for _, bad := range []string{"", "capture", "capture:0", "capture:-3", "capture:x", "steal:5", "capture:5:6"} {
		if _, err := ParseTimeline(bad); err == nil {
			t.Errorf("ParseTimeline(%q): want error", bad)
		}
	}
}

func TestTimelinePrefix(t *testing.T) {
	tl := Timeline{{StepCapture, 10}, {StepFailRandom, 5}, {StepCapture, 10}}
	cases := []struct {
		budget int
		want   Timeline
	}{
		{0, nil},
		{-1, nil},
		{3, Timeline{{StepCapture, 3}}},
		{10, Timeline{{StepCapture, 10}}},
		{12, Timeline{{StepCapture, 10}, {StepFailRandom, 2}}},
		{15, Timeline{{StepCapture, 10}, {StepFailRandom, 5}}},
		{18, Timeline{{StepCapture, 10}, {StepFailRandom, 5}, {StepCapture, 3}}},
		{25, tl},
		{99, tl},
	}
	for _, c := range cases {
		if got := tl.Prefix(c.budget); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Prefix(%d) = %v, want %v", c.budget, got, c.want)
		}
	}
}

func TestRunCampaignEmptyTimeline(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 50)
	res, err := RunCampaign(net, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("empty timeline ran %d steps", len(res.Steps))
	}
	b := res.Final()
	if b.TotalLinks != net.FullSecureTopology().M() {
		t.Errorf("baseline TotalLinks = %d, want %d", b.TotalLinks, net.FullSecureTopology().M())
	}
	if b.CompromisedLinks != 0 || b.KeysLearned != 0 || b.CapturedTotal != 0 {
		t.Errorf("baseline shows adversary progress: %+v", b)
	}
	if b.Alive != net.Sensors() {
		t.Errorf("baseline Alive = %d", b.Alive)
	}
	if b.SecureFraction <= 0 || b.SecureFraction > 1 {
		t.Errorf("baseline SecureFraction = %v", b.SecureFraction)
	}
	if b.SecureGiant > b.Alive {
		t.Errorf("SecureGiant %d > Alive %d", b.SecureGiant, b.Alive)
	}
}

// TestCampaignSingleStepMatchesCaptureRandom pins the equivalence the sweep
// family relies on: a one-step capture:x campaign is byte-identical to
// CaptureRandom at the same seed — same captured set, same link accounting,
// and the SAME number of randomness draws (verified by comparing the next
// value both generators produce).
func TestCampaignSingleStepMatchesCaptureRandom(t *testing.T) {
	const x = 25
	netA := deployFor(t, 300, 25, 2, 51)
	rA := rng.New(7)
	want, err := CaptureRandom(netA, rA, x)
	if err != nil {
		t.Fatal(err)
	}

	netB := deployFor(t, 300, 25, 2, 51)
	rB := rng.New(7)
	res, err := RunCampaign(netB, rB, Timeline{{StepCapture, x}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Final()
	if !reflect.DeepEqual(got.Captured, want.Captured) {
		t.Fatalf("captured sets diverge:\ncampaign %v\ncapture  %v", got.Captured, want.Captured)
	}
	if got.KeysLearned != want.KeysLearned || got.NewKeys != want.KeysLearned {
		t.Errorf("KeysLearned = %d (new %d), want %d", got.KeysLearned, got.NewKeys, want.KeysLearned)
	}
	if got.CompromisedLinks != want.CompromisedLinks || got.TotalLinks != want.TotalLinks {
		t.Errorf("links = %d/%d, want %d/%d",
			got.CompromisedLinks, got.TotalLinks, want.CompromisedLinks, want.TotalLinks)
	}
	if got.Acted != x || got.CapturedTotal != x {
		t.Errorf("Acted = %d, CapturedTotal = %d, want %d", got.Acted, got.CapturedTotal, x)
	}
	// Draw-for-draw: both generators must be in the same state afterwards.
	if a, b := rA.Intn(1<<30), rB.Intn(1<<30); a != b {
		t.Errorf("randomness consumption diverged: next draws %d vs %d", a, b)
	}
}

// TestCampaignCompromisePropagates verifies the defining property of the
// engine: keys learned in step i compromise links evaluated after step j > i.
// A two-step capture campaign must end in exactly the state of a one-shot
// Capture of the union set.
func TestCampaignCompromisePropagates(t *testing.T) {
	netA := deployFor(t, 300, 25, 2, 52)
	res, err := RunCampaign(netA, rng.New(9), Timeline{{StepCapture, 12}, {StepCapture, 13}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("ran %d steps", len(res.Steps))
	}
	s1, s2 := res.Steps[0], res.Steps[1]
	if s1.KeysLearned >= s2.KeysLearned {
		t.Errorf("knowledge did not grow: %d then %d", s1.KeysLearned, s2.KeysLearned)
	}
	if s2.NewKeys != s2.KeysLearned-s1.KeysLearned {
		t.Errorf("NewKeys = %d, want %d", s2.NewKeys, s2.KeysLearned-s1.KeysLearned)
	}
	union := append(append([]int32(nil), s1.Captured...), s2.Captured...)
	netB := deployFor(t, 300, 25, 2, 52)
	want, err := Capture(netB, union)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final()
	if final.CompromisedLinks != want.CompromisedLinks || final.TotalLinks != want.TotalLinks {
		t.Errorf("two-step campaign = %d/%d links, one-shot union = %d/%d",
			final.CompromisedLinks, final.TotalLinks, want.CompromisedLinks, want.TotalLinks)
	}
	if final.KeysLearned != want.KeysLearned {
		t.Errorf("KeysLearned = %d, want %d", final.KeysLearned, want.KeysLearned)
	}
}

// TestCampaignCaptureAfterFailure: sensors failed in an earlier step must
// never be captured by a later one, for both capture kinds. (The converse is
// allowed — a captured sensor keeps operating and may fail later.)
func TestCampaignCaptureAfterFailure(t *testing.T) {
	for _, kind := range []StepKind{StepCapture, StepCaptureTargeted} {
		t.Run(kind.String(), func(t *testing.T) {
			net := deployFor(t, 300, 25, 2, 53)
			res, err := RunCampaign(net, rng.New(3), Timeline{
				{StepFailRandom, 30}, {kind, 40}, {StepFailRandom, 20}, {kind, 25},
			})
			if err != nil {
				t.Fatal(err)
			}
			deadBefore := map[int32]bool{}
			captured := map[int32]bool{}
			for i, sr := range res.Steps {
				for _, id := range sr.Captured {
					if captured[id] {
						t.Fatalf("sensor %d captured twice", id)
					}
					if deadBefore[id] {
						t.Errorf("step %d captured sensor %d, failed in an earlier step", i, id)
					}
					captured[id] = true
				}
				for _, id := range sr.Failed {
					deadBefore[id] = true
				}
			}
			if len(deadBefore) != 50 {
				t.Errorf("Failed reporting covered %d sensors, want 50", len(deadBefore))
			}
			final := res.Final()
			if final.Alive != net.AliveCount() || final.Alive != 150-50 {
				t.Errorf("Alive = %d (net %d), want %d", final.Alive, net.AliveCount(), 150-50)
			}
			if final.CapturedTotal != 65 || len(captured) != 65 {
				t.Errorf("CapturedTotal = %d, distinct = %d", final.CapturedTotal, len(captured))
			}
		})
	}
}

func TestCampaignJamShrinksLinkBudget(t *testing.T) {
	const j = 30
	net := deployFor(t, 300, 25, 2, 54)
	res, err := RunCampaign(net, rng.New(5), Timeline{{StepJam, j}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Final()
	if s.Acted != j {
		t.Fatalf("Acted = %d, want %d", s.Acted, j)
	}
	if s.TotalLinks != res.Baseline.TotalLinks-j {
		t.Errorf("TotalLinks = %d, want %d - %d", s.TotalLinks, res.Baseline.TotalLinks, j)
	}
	if net.FailedLinkCount() != j {
		t.Errorf("network FailedLinkCount = %d", net.FailedLinkCount())
	}
	if s.KeysLearned != 0 || s.CapturedTotal != 0 {
		t.Errorf("jamming leaked keys: %+v", s)
	}
}

// TestCampaignRevokeClearsCompromise: after revoking every captured sensor,
// the keys the adversary learned are all revoked, so every surviving link's
// shared set is unknown — CompromisedLinks must drop to zero, and the
// revoked sensors are retired.
func TestCampaignRevokeClearsCompromise(t *testing.T) {
	const x = 40
	net := deployFor(t, 300, 25, 2, 55)
	res, err := RunCampaign(net, rng.New(8), Timeline{{StepCapture, x}, {StepRevoke, x}})
	if err != nil {
		t.Fatal(err)
	}
	afterCapture, afterRevoke := res.Steps[0], res.Steps[1]
	if afterCapture.CompromisedLinks == 0 {
		t.Fatal("capture step compromised nothing; test parameters too weak")
	}
	if afterRevoke.Acted != x {
		t.Errorf("revoke Acted = %d, want %d", afterRevoke.Acted, x)
	}
	if afterRevoke.CompromisedLinks != 0 {
		t.Errorf("CompromisedLinks = %d after full revocation", afterRevoke.CompromisedLinks)
	}
	if afterRevoke.Alive != 150-x {
		t.Errorf("Alive = %d, want %d", afterRevoke.Alive, 150-x)
	}
	if len(afterRevoke.Failed) != x {
		t.Errorf("revoke reported %d retired sensors, want %d", len(afterRevoke.Failed), x)
	}
	for _, id := range afterCapture.Captured {
		if net.Alive(id) {
			t.Errorf("revoked sensor %d still alive", id)
		}
	}
	// Revoking with nothing left to revoke is a no-op, not an error.
	res2, err := RunCampaign(deployFor(t, 300, 25, 2, 55), rng.New(8),
		Timeline{{StepRevoke, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if s := res2.Final(); s.Acted != 0 || s.TornLinks != 0 {
		t.Errorf("revoke with no captives acted: %+v", s)
	}
}

func TestCampaignClampsBudgets(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 56)
	res, err := RunCampaign(net, rng.New(2), Timeline{{StepCapture, 10_000}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Final()
	if s.Acted != 150 || s.CapturedTotal != 150 {
		t.Errorf("clamped capture acted %d, captured %d, want 150", s.Acted, s.CapturedTotal)
	}
	if s.TotalLinks != 0 || s.SecureGiant != 0 || s.SecureFraction != 0 {
		t.Errorf("everyone captured but accounting shows survivors: %+v", s)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	tl, err := ParseTimeline("capture:15,fail:10,jam:5,capture-targeted:5,revoke:20,fail-targeted:3")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *CampaignResult {
		res, err := RunCampaign(deployFor(t, 300, 25, 2, 57), rng.New(4), tl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign not deterministic:\n%+v\n%+v", a, b)
	}
	// Step echo: results must report the timeline entries in order.
	for i, sr := range a.Steps {
		if sr.Step != tl[i] {
			t.Errorf("step %d echoes %+v, want %+v", i, sr.Step, tl[i])
		}
	}
}

func TestCampaignStepOrderingMatters(t *testing.T) {
	// fail-then-capture spends the capture budget on survivors only, so the
	// adversary's knowledge (and the captured sets) differ from
	// capture-then-fail at the same seed.
	resA, err := RunCampaign(deployFor(t, 300, 25, 2, 58), rng.New(6),
		Timeline{{StepFailRandom, 50}, {StepCapture, 30}})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := RunCampaign(deployFor(t, 300, 25, 2, 58), rng.New(6),
		Timeline{{StepCapture, 30}, {StepFailRandom, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(resA.Final().Captured, resB.Steps[0].Captured) &&
		resA.Final().KeysLearned == resB.Final().KeysLearned {
		t.Error("step order had no effect on identical seeds; ordering is not threaded through")
	}
	// Both orders end with the same liveness, though.
	if resA.Final().Alive != resB.Final().Alive {
		t.Errorf("alive counts diverge: %d vs %d", resA.Final().Alive, resB.Final().Alive)
	}
}

func TestCampaignValidation(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 59)
	if _, err := RunCampaign(net, rng.New(1), Timeline{{StepCapture, 0}}); err == nil {
		t.Error("zero-count step: want error")
	}
	if _, err := RunCampaign(net, rng.New(1), Timeline{{StepKind(99), 5}}); err == nil {
		t.Error("invalid kind: want error")
	}
}

func TestCampaignSecureFractionMonotoneUnderCapture(t *testing.T) {
	// Under pure capture the securely-connected fraction can only fall: each
	// step removes sensors from the eligible set and compromises more links.
	net := deployFor(t, 300, 25, 2, 60)
	res, err := RunCampaign(net, rng.New(11), Timeline{
		{StepCapture, 20}, {StepCapture, 20}, {StepCapture, 20}, {StepCapture, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := res.Baseline
	for i, sr := range res.Steps {
		if sr.SecureGiant > prev.SecureGiant {
			t.Errorf("step %d: SecureGiant grew %d → %d under capture", i, prev.SecureGiant, sr.SecureGiant)
		}
		if sr.CompromisedLinks < 0 || sr.CompromisedLinks > sr.TotalLinks {
			t.Errorf("step %d: compromised %d of %d", i, sr.CompromisedLinks, sr.TotalLinks)
		}
		prev = sr
	}
}
