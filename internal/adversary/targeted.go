package adversary

import (
	"fmt"
	"sort"

	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// CaptureTargeted evaluates a degree-targeted node-capture attack: the
// adversary observes the secure topology and captures the count
// highest-degree sensors (ties broken by sensor ID for determinism).
//
// Note a property of the q-composite scheme this attack exposes: because
// every ring holds exactly K uniform keys, high degree reflects sampling
// luck rather than key-material concentration, so the targeted attack does
// NOT eavesdrop meaningfully better than random capture (the compromised
// fraction of external links is statistically indistinguishable — verified
// in tests). Its advantage is topological: removing the highest-degree
// sensors fragments the surviving network much faster, which is why the
// paper's k-connectivity margin (surviving ANY k−1 failures, not just
// random ones) is the right design target.
func CaptureTargeted(net *wsn.Network, count int) (CaptureResult, error) {
	n := net.Sensors()
	if count < 0 || count > n {
		return CaptureResult{}, fmt.Errorf("adversary: cannot capture %d of %d sensors", count, n)
	}
	topo := net.FullSecureTopology()
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := topo.Degree(ids[i]), topo.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return Capture(net, append([]int32(nil), ids[:count]...))
}

// CompareCaptureStrategies runs both the random and the degree-targeted
// attack at the same scale and reports the two compromised fractions —
// targeted ≥ random in expectation, with the gap quantifying how much the
// topology leaks about key material concentration.
type StrategyComparison struct {
	Random   CaptureResult
	Targeted CaptureResult
}

// CompareCaptureStrategies evaluates both attacks on the same network. The
// random attack uses the provided generator.
func CompareCaptureStrategies(net *wsn.Network, r *rng.Rand, count int) (StrategyComparison, error) {
	random, err := CaptureRandom(net, r, count)
	if err != nil {
		return StrategyComparison{}, err
	}
	targeted, err := CaptureTargeted(net, count)
	if err != nil {
		return StrategyComparison{}, err
	}
	return StrategyComparison{Random: random, Targeted: targeted}, nil
}
