package adversary

import (
	"fmt"
	"sort"

	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// CaptureTargeted evaluates a degree-targeted node-capture attack: the
// adversary observes the secure topology and captures the count
// highest-degree sensors (ties broken by sensor ID for determinism).
//
// Note a property of the q-composite scheme this attack exposes: because
// every ring holds exactly K uniform keys, high degree reflects sampling
// luck rather than key-material concentration, so the targeted attack does
// NOT eavesdrop meaningfully better than random capture (the compromised
// fraction of external links is statistically indistinguishable — verified
// in tests). Its advantage is topological: removing the highest-degree
// sensors fragments the surviving network much faster, which is why the
// paper's k-connectivity margin (surviving ANY k−1 failures, not just
// random ones) is the right design target.
//
// Degrees are ranked over the ALIVE-induced secure topology, not the full
// graph G_{n,q}: a failed sensor contributes no usable links (its edges are
// already excluded from TotalLinks), so ranking the full topology would
// spend capture budget on dead sensors — and count edges INTO dead sensors
// when ranking the live ones. Only alive sensors are capturable, mirroring
// CaptureRandom.
func CaptureTargeted(net *wsn.Network, count int) (CaptureResult, error) {
	ids, err := rankAliveByDegree(net)
	if err != nil {
		return CaptureResult{}, err
	}
	if count < 0 || count > len(ids) {
		return CaptureResult{}, fmt.Errorf("adversary: cannot capture %d of %d alive sensors", count, len(ids))
	}
	return Capture(net, append([]int32(nil), ids[:count]...))
}

// rankAliveByDegree returns the alive sensor IDs ordered by descending degree
// in the alive-induced secure topology, ties broken by ascending sensor ID
// for determinism.
func rankAliveByDegree(net *wsn.Network) ([]int32, error) {
	sub, orig, err := net.SecureTopology()
	if err != nil {
		return nil, fmt.Errorf("adversary: targeted ranking: %w", err)
	}
	deg := make(map[int32]int, len(orig))
	for i, id := range orig {
		deg[id] = sub.Degree(int32(i))
	}
	ids := append([]int32(nil), orig...)
	sort.Slice(ids, func(i, j int) bool {
		di, dj := deg[ids[i]], deg[ids[j]]
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids, nil
}

// StrategyComparison pairs the outcomes of the random and the degree-targeted
// attack at the same scale on the same network.
type StrategyComparison struct {
	Random   CaptureResult
	Targeted CaptureResult
}

// CompareCaptureStrategies evaluates both attacks on the same network. The
// random attack uses the provided generator. Expect the two compromised
// FRACTIONS to agree within Monte Carlo noise (uniform rings mean degree
// carries no key-material signal — see CaptureTargeted; the tests pin the
// gap near zero). The strategies separate only when the captured sensors are
// also removed: targeted capture fragments the surviving topology faster.
func CompareCaptureStrategies(net *wsn.Network, r *rng.Rand, count int) (StrategyComparison, error) {
	random, err := CaptureRandom(net, r, count)
	if err != nil {
		return StrategyComparison{}, err
	}
	targeted, err := CaptureTargeted(net, count)
	if err != nil {
		return StrategyComparison{}, err
	}
	return StrategyComparison{Random: random, Targeted: targeted}, nil
}
