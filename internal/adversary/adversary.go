// Package adversary implements the node-capture attack model that motivates
// the q-composite scheme (paper Section I, after Chan–Perrig–Song): an
// adversary physically captures x sensors, learns every key they hold, and
// can then eavesdrop on any other link whose full shared-key set it knows —
// the link key is a hash of all shared keys, so one unknown shared key keeps
// the link safe.
//
// The package provides both the simulated attack against a deployed
// wsn.Network and the closed-form compromise probability, enabling the E7
// experiment: q ≥ 2 beats q = 1 against small-scale capture and loses at
// large scale.
package adversary

import (
	"fmt"
	"math"

	"github.com/secure-wsn/qcomposite/internal/bitset"
	"github.com/secure-wsn/qcomposite/internal/combin"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// CaptureResult reports the outcome of a node-capture attack.
type CaptureResult struct {
	// Captured lists the captured sensor IDs.
	Captured []int32
	// KeysLearned is the number of distinct pool keys the adversary holds.
	KeysLearned int
	// CompromisedLinks counts secure links between two NON-captured sensors
	// whose entire shared-key set is known to the adversary.
	CompromisedLinks int
	// TotalLinks counts all secure links between non-captured sensors.
	TotalLinks int
}

// Fraction returns the compromised fraction of external links (0 when the
// network has no such links).
func (c CaptureResult) Fraction() float64 {
	if c.TotalLinks == 0 {
		return 0
	}
	return float64(c.CompromisedLinks) / float64(c.TotalLinks)
}

// CaptureRandom captures count uniformly chosen ALIVE sensors of the network
// and evaluates which external secure links become compromised. The network
// is not mutated (capture is eavesdropping, not failure injection).
//
// Only alive sensors can be captured: a failed sensor is physically gone, so
// there is no device to seize and no link of it left in TotalLinks — spending
// capture budget on it would silently weaken the attack. The draw is a
// partial Fisher–Yates over the alive-ID list, mirroring wsn.FailRandom; on
// a fully-alive network that list is 0..n−1, so the randomness consumption
// (count Intn draws) and the captured set are draw-for-draw identical to the
// historical all-sensors implementation.
func CaptureRandom(net *wsn.Network, r *rng.Rand, count int) (CaptureResult, error) {
	ids := net.AppendAliveIDs(make([]int32, 0, net.AliveCount()))
	if count < 0 || count > len(ids) {
		return CaptureResult{}, fmt.Errorf("adversary: cannot capture %d of %d alive sensors", count, len(ids))
	}
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	captured := append([]int32(nil), ids[:count]...)
	return Capture(net, captured)
}

// Capture evaluates a node-capture attack on the given sensors. Every
// captured sensor must be alive: capturing a failed sensor is rejected, so
// its keys are never counted as learned — a dead sensor's links are already
// excluded from TotalLinks, and crediting the adversary with its ring would
// overstate the attack against the links that remain.
func Capture(net *wsn.Network, captured []int32) (CaptureResult, error) {
	n := net.Sensors()
	isCaptured := make([]bool, n)
	for _, id := range captured {
		if int(id) < 0 || int(id) >= n {
			return CaptureResult{}, fmt.Errorf("adversary: captured sensor %d out of range", id)
		}
		if !net.Alive(id) {
			return CaptureResult{}, fmt.Errorf("adversary: cannot capture failed sensor %d", id)
		}
		if isCaptured[id] {
			return CaptureResult{}, fmt.Errorf("adversary: sensor %d captured twice", id)
		}
		isCaptured[id] = true
	}
	// Collect the adversary's key set over the scheme's pool.
	known := bitset.New(net.Scheme().PoolSize())
	for _, id := range captured {
		ring, err := net.Ring(id)
		if err != nil {
			return CaptureResult{}, fmt.Errorf("adversary: capture: %w", err)
		}
		for _, k := range ring.IDs() {
			known.Add(int(k))
		}
	}

	res := CaptureResult{
		Captured:    captured,
		KeysLearned: known.Count(),
	}
	for _, link := range net.Links() {
		if isCaptured[link.A] || isCaptured[link.B] {
			continue // links touching captured nodes are trivially lost
		}
		res.TotalLinks++
		compromised := true
		for _, k := range link.SharedKeys {
			if !known.Contains(int(k)) {
				compromised = false
				break
			}
		}
		if compromised {
			res.CompromisedLinks++
		}
	}
	return res, nil
}

// AnalyticCompromiseFraction returns the Chan–Perrig–Song closed form for
// the probability that a secure link between two non-captured sensors is
// compromised after x random captures:
//
//	Σ_{i=q}^{K} (1 − (1 − K/P)^x)^i · P[shared = i | link established]
//
// where P[shared = i | link] is the hypergeometric overlap pmf conditioned
// on overlap ≥ q. Each of the i shared keys must have leaked; a key leaks
// iff any captured ring holds it, which happens with probability
// 1 − (1 − K/P)^x independently per key (asymptotically, for rings drawn
// from a large pool).
func AnalyticCompromiseFraction(pool, ring, q, captured int) (float64, error) {
	if captured < 0 {
		return 0, fmt.Errorf("adversary: negative capture count %d", captured)
	}
	if q < 1 || ring < q || pool < ring {
		return 0, fmt.Errorf("adversary: invalid scheme parameters pool=%d ring=%d q=%d", pool, ring, q)
	}
	if captured == 0 {
		return 0, nil
	}
	pLeak := 1 - math.Pow(1-float64(ring)/float64(pool), float64(captured))
	tail, err := combin.HypergeomTail(pool, ring, q)
	if err != nil {
		return 0, fmt.Errorf("adversary: analytic compromise: %w", err)
	}
	if tail == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := q; i <= ring; i++ {
		pmf, err := combin.HypergeomPMF(pool, ring, i)
		if err != nil {
			return 0, fmt.Errorf("adversary: analytic compromise: %w", err)
		}
		if pmf == 0 {
			continue
		}
		sum += math.Pow(pLeak, float64(i)) * pmf / tail
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}
