package adversary

import (
	"testing"

	"github.com/secure-wsn/qcomposite/internal/rng"
)

func TestCaptureTargetedPicksHighestDegrees(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 41)
	res, err := CaptureTargeted(net, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captured) != 10 {
		t.Fatalf("captured %d", len(res.Captured))
	}
	topo := net.FullSecureTopology()
	minCaptured := topo.N()
	capturedSet := map[int32]bool{}
	for _, id := range res.Captured {
		capturedSet[id] = true
		if d := topo.Degree(id); d < minCaptured {
			minCaptured = d
		}
	}
	// No uncaptured sensor may have strictly higher degree than the lowest
	// captured one.
	for v := int32(0); int(v) < topo.N(); v++ {
		if !capturedSet[v] && topo.Degree(v) > minCaptured {
			t.Fatalf("sensor %d (deg %d) outranks a captured sensor (deg %d)",
				v, topo.Degree(v), minCaptured)
		}
	}
}

// TestCaptureTargetedSkipsDeadSensors is the regression test for the ranking
// bug: degrees used to be ranked over the FULL secure topology, so the
// highest-degree sensor stayed at the top of the target list even after it
// failed — and the attack would capture the dead hub. Ranking must follow the
// alive-induced topology.
func TestCaptureTargetedSkipsDeadSensors(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 44)
	// Find and fail the full-topology hub.
	topo := net.FullSecureTopology()
	hub := int32(0)
	for v := int32(1); int(v) < topo.N(); v++ {
		if topo.Degree(v) > topo.Degree(hub) {
			hub = v
		}
	}
	if err := net.FailNodes(hub); err != nil {
		t.Fatal(err)
	}
	res, err := CaptureTargeted(net, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Captured {
		if id == hub {
			t.Fatalf("captured the failed hub %d", hub)
		}
	}
	// The alive count, not the sensor count, bounds the capture budget.
	if _, err := CaptureTargeted(net, net.AliveCount()+1); err == nil {
		t.Error("capturing more than alive count: want error")
	}
	if _, err := CaptureTargeted(net, net.AliveCount()); err != nil {
		t.Errorf("capturing exactly the alive count: %v", err)
	}
}

func TestCaptureTargetedValidation(t *testing.T) {
	net := deployFor(t, 200, 20, 1, 42)
	if _, err := CaptureTargeted(net, -1); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := CaptureTargeted(net, net.Sensors()+1); err == nil {
		t.Error("over-capture: want error")
	}
	res, err := CaptureTargeted(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompromisedLinks != 0 {
		t.Error("empty targeted capture compromised links")
	}
}

func TestCaptureTargetedDeterministic(t *testing.T) {
	net := deployFor(t, 300, 25, 2, 43)
	a, err := CaptureTargeted(net, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureTargeted(net, 15)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompromisedLinks != b.CompromisedLinks || a.KeysLearned != b.KeysLearned {
		t.Error("targeted capture not deterministic")
	}
	for i := range a.Captured {
		if a.Captured[i] != b.Captured[i] {
			t.Fatal("targeted capture order not deterministic")
		}
	}
}

func TestTargetedVsRandomEavesdropIndistinguishable(t *testing.T) {
	// The q-composite property the targeted attack exposes: uniform rings
	// mean high degree carries no extra key material, so the compromised
	// fractions of the two strategies agree within Monte Carlo noise.
	const trials = 25
	var randSum, targSum float64
	for seed := uint64(0); seed < trials; seed++ {
		net := deployFor(t, 500, 30, 2, 200+seed)
		cmp, err := CompareCaptureStrategies(net, rng.NewStream(9, seed), 25)
		if err != nil {
			t.Fatal(err)
		}
		randSum += cmp.Random.Fraction()
		targSum += cmp.Targeted.Fraction()
	}
	randMean, targMean := randSum/trials, targSum/trials
	if diff := targMean - randMean; diff > 0.05 || diff < -0.05 {
		t.Errorf("eavesdrop fractions diverged: targeted %v vs random %v", targMean, randMean)
	}
}

func TestTargetedDestroysMoreTopology(t *testing.T) {
	// Where the targeted attack IS stronger: treating the captured sensors
	// as destroyed, the surviving topology keeps fewer secure links (and no
	// larger a giant component) than under random capture. Parameters put
	// the network in the connected regime (mean degree ≈ 8) where hub
	// removal matters.
	const (
		trials   = 20
		captured = 40
	)
	var randLinks, targLinks, randLargest, targLargest float64
	for seed := uint64(0); seed < trials; seed++ {
		// Random destruction.
		netR := deployFor(t, 10000, 46, 2, 300+seed)
		resR, err := CaptureRandom(netR, rng.NewStream(11, seed), captured)
		if err != nil {
			t.Fatal(err)
		}
		if err := netR.FailNodes(resR.Captured...); err != nil {
			t.Fatal(err)
		}
		repR, err := netR.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		randLinks += float64(repR.SecureLinks)
		randLargest += float64(repR.LargestComp)

		// Targeted destruction on an identically distributed network.
		netT := deployFor(t, 10000, 46, 2, 300+seed)
		resT, err := CaptureTargeted(netT, captured)
		if err != nil {
			t.Fatal(err)
		}
		if err := netT.FailNodes(resT.Captured...); err != nil {
			t.Fatal(err)
		}
		repT, err := netT.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		targLinks += float64(repT.SecureLinks)
		targLargest += float64(repT.LargestComp)
	}
	if targLinks >= randLinks {
		t.Errorf("targeted destruction kept more links (%v) than random (%v)",
			targLinks/trials, randLinks/trials)
	}
	if targLargest > randLargest {
		t.Errorf("targeted destruction left a larger component (%v) than random (%v)",
			targLargest/trials, randLargest/trials)
	}
}
