package adversary

// Attack campaigns: an ordered timeline of composable attack (and defender)
// steps executed against ONE deployment, with per-step accounting. This is
// the q-composite resilience story run forward in time — the adversary
// captures sensors and learns keys, the environment fails nodes and jams
// links, the defender revokes compromised key material — and after every
// step the campaign reports how much of the network is still securely
// connected (the zero–one curve of arXiv:1206.1531 / arXiv:1612.02466, with
// the x axis an attack budget instead of a design parameter).
//
// Compromise state PROPAGATES across steps: keys learned by a capture in
// step i compromise links evaluated in any step j > i. The engine keeps an
// amortized bitset of the adversary's key knowledge plus a key→link
// incidence index over a one-time link snapshot, so learning a key
// re-classifies exactly the links that hold it (an O(incidence) decrement)
// instead of re-walking net.Links() — with its per-link shared-set copies
// and SHA-256 key derivations — once per step.

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/bitset"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// StepKind enumerates the composable campaign step kinds.
type StepKind uint8

const (
	// StepCapture captures uniformly chosen alive, not-yet-captured sensors
	// (eavesdropping: the adversary learns their rings; the sensors keep
	// operating).
	StepCapture StepKind = iota
	// StepCaptureTargeted captures the highest-degree alive, not-yet-captured
	// sensors, degrees ranked over the alive-induced secure topology.
	StepCaptureTargeted
	// StepFailRandom fails uniformly chosen alive sensors (environmental
	// loss, not adversarial knowledge: no keys are learned).
	StepFailRandom
	// StepFailTargeted fails the highest-degree alive sensors.
	StepFailTargeted
	// StepJam fails uniformly chosen usable secure links — jamming perturbs
	// the channel mask under the secure topology without touching sensors or
	// key material.
	StepJam
	// StepRevoke is the defender's move: revoke the key rings of captured
	// sensors (oldest capture first) network-wide via wsn.RevokeNodeKeys.
	// Links left with fewer than q unrevoked shared keys are torn down and
	// the revoked sensors are retired from the network.
	StepRevoke
)

var stepKindNames = [...]string{
	StepCapture:         "capture",
	StepCaptureTargeted: "capture-targeted",
	StepFailRandom:      "fail",
	StepFailTargeted:    "fail-targeted",
	StepJam:             "jam",
	StepRevoke:          "revoke",
}

// String returns the timeline-spec name of the kind ("capture", "fail", ...).
func (k StepKind) String() string {
	if int(k) < len(stepKindNames) {
		return stepKindNames[k]
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one timeline entry: a step kind and its budget (sensors to capture
// or fail, links to jam, captured sensors to revoke).
type Step struct {
	Kind  StepKind
	Count int
}

// Timeline is an ordered sequence of campaign steps.
type Timeline []Step

// ParseTimeline parses a comma-separated timeline spec such as
// "capture:10,fail:5,capture:10". Each entry is kind:count with a positive
// count; kinds are the StepKind names (capture, capture-targeted, fail,
// fail-targeted, jam, revoke).
func ParseTimeline(spec string) (Timeline, error) {
	var tl Timeline
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, countStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("adversary: timeline step %q: want kind:count", part)
		}
		kind, err := parseStepKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, fmt.Errorf("adversary: timeline step %q: %w", part, err)
		}
		count, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("adversary: timeline step %q: count must be a positive integer", part)
		}
		tl = append(tl, Step{Kind: kind, Count: count})
	}
	if len(tl) == 0 {
		return nil, fmt.Errorf("adversary: empty timeline %q", spec)
	}
	return tl, nil
}

func parseStepKind(name string) (StepKind, error) {
	for k, n := range stepKindNames {
		if n == name {
			return StepKind(k), nil
		}
	}
	return 0, fmt.Errorf("unknown step kind %q (have %s)", name, strings.Join(stepKindNames[:], ", "))
}

// String renders the timeline in ParseTimeline syntax.
func (tl Timeline) String() string {
	parts := make([]string, len(tl))
	for i, s := range tl {
		parts[i] = fmt.Sprintf("%s:%d", s.Kind, s.Count)
	}
	return strings.Join(parts, ",")
}

// TotalBudget returns the sum of all step counts — the campaign's total
// attack budget, the natural x axis of a resilience curve.
func (tl Timeline) TotalBudget() int {
	total := 0
	for _, s := range tl {
		total += s.Count
	}
	return total
}

// Prefix returns the timeline truncated to the first budget actions: whole
// leading steps, plus a shortened copy of the step the budget runs out in.
// A non-positive budget yields an empty timeline (the untouched network); a
// budget of at least TotalBudget() yields the timeline itself re-sliced.
// Sweeping Prefix over a budget axis traces one campaign unfolding.
func (tl Timeline) Prefix(budget int) Timeline {
	var out Timeline
	for _, s := range tl {
		if budget <= 0 {
			break
		}
		if s.Count > budget {
			s.Count = budget
		}
		out = append(out, s)
		budget -= s.Count
	}
	return out
}

// StepResult is the accounting after one campaign step. Counters labelled
// cumulative reflect the whole campaign up to and including this step.
type StepResult struct {
	// Step echoes the timeline entry that produced this result.
	Step Step
	// Acted is the number of actions actually performed: a step's Count is
	// clamped to the eligible targets left (alive uncaptured sensors, usable
	// links, unrevoked captured sensors).
	Acted int
	// Captured lists the sensors captured by THIS step (capture kinds only).
	Captured []int32
	// Failed lists the sensors retired by THIS step (fail and revoke kinds).
	Failed []int32
	// KeysLearned is the cumulative number of distinct pool keys the
	// adversary holds; NewKeys is this step's contribution.
	KeysLearned int
	NewKeys     int
	// CompromisedLinks counts external links (below) whose full shared-key
	// set the adversary knows — including via keys learned in EARLIER steps.
	CompromisedLinks int
	// TotalLinks counts the external links: secure links between two alive,
	// uncaptured sensors that are not jammed.
	TotalLinks int
	// TornLinks is the number of links torn down by this step's revocations.
	TornLinks int
	// Alive and CapturedTotal are the cumulative liveness and capture counts.
	Alive         int
	CapturedTotal int
	// SecureGiant is the size of the largest component of the uncompromised
	// secure subgraph: external links minus compromised ones, over alive
	// uncaptured sensors. SecureFraction is SecureGiant over the alive count
	// — the "fraction of the network still securely connected" statistic (a
	// captured sensor is alive but never securely connected).
	SecureGiant    int
	SecureFraction float64
}

// Fraction returns the compromised fraction of external links after this
// step (0 when none remain).
func (s StepResult) Fraction() float64 {
	if s.TotalLinks == 0 {
		return 0
	}
	return float64(s.CompromisedLinks) / float64(s.TotalLinks)
}

// CampaignResult is the outcome of a full campaign run: the pre-attack
// baseline plus one StepResult per executed timeline step.
type CampaignResult struct {
	Timeline Timeline
	// Baseline is the accounting of the untouched deployment (zero Step).
	Baseline StepResult
	Steps    []StepResult
}

// Final returns the last step's accounting, or the baseline for an empty
// timeline.
func (c *CampaignResult) Final() StepResult {
	if len(c.Steps) == 0 {
		return c.Baseline
	}
	return c.Steps[len(c.Steps)-1]
}

// campaign is the engine state threaded through one RunCampaign call.
type campaign struct {
	net *wsn.Network
	r   *rng.Rand

	known    *bitset.Set // adversary's key knowledge over the scheme's pool
	captured []bool
	order    []int32 // capture order — the revoke hand-off queue
	revoked  int     // prefix of order already revoked

	// Link snapshot with incremental classification: links[i].unknown counts
	// the shared keys of snapshot link i the adversary does NOT yet know;
	// learning key k decrements it for exactly the links in k's incidence
	// list keyLinks[keyOffs[k]:keyOffs[k+1]]. Rebuilt only when revocation
	// replaces the secure topology.
	links    []campLink
	linkIdx  map[[2]int32]int32
	keyOffs  []int32
	keyLinks []int32
	jammed   map[[2]int32]bool

	uf       *graphalgo.UnionFind
	eligible []bool // scratch: alive && !captured
}

type campLink struct {
	a, b    int32
	unknown int32
	jammed  bool
}

// RunCampaign executes the timeline against the deployed network, mutating
// it (failures, jamming, revocations) as the steps demand, and returns the
// per-step accounting. Randomized steps draw from r in timeline order, so a
// campaign is reproducible from (deployment seed, campaign seed, timeline).
// An empty timeline is valid and reports only the baseline.
func RunCampaign(net *wsn.Network, r *rng.Rand, tl Timeline) (*CampaignResult, error) {
	for _, s := range tl {
		if int(s.Kind) >= len(stepKindNames) {
			return nil, fmt.Errorf("adversary: campaign: invalid step kind %d", s.Kind)
		}
		if s.Count <= 0 {
			return nil, fmt.Errorf("adversary: campaign: step %s has non-positive count %d", s.Kind, s.Count)
		}
	}
	c := &campaign{
		net:      net,
		r:        r,
		known:    bitset.New(net.Scheme().PoolSize()),
		captured: make([]bool, net.Sensors()),
		jammed:   make(map[[2]int32]bool),
		uf:       graphalgo.NewUnionFind(net.Sensors()),
		eligible: make([]bool, net.Sensors()),
	}
	c.snapshot()
	res := &CampaignResult{Timeline: tl, Baseline: c.account(Step{})}
	for _, s := range tl {
		sr, err := c.step(s)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, sr)
	}
	return res, nil
}

// snapshot (re)builds the link table and the key→link incidence index from
// the network's current secure topology. Called once at campaign start and
// again after each revocation step (the only step that replaces the
// topology); capture, failure and jamming reuse the standing snapshot.
func (c *campaign) snapshot() {
	links := c.net.Links()
	pool := c.net.Scheme().PoolSize()
	c.links = c.links[:0]
	c.linkIdx = make(map[[2]int32]int32, len(links))

	counts := make([]int32, pool+1)
	for _, l := range links {
		for _, k := range l.SharedKeys {
			counts[k]++
		}
	}
	offs := make([]int32, pool+1)
	total := int32(0)
	for k := 0; k < pool; k++ {
		offs[k] = total
		total += counts[k]
	}
	offs[pool] = total
	cur := append([]int32(nil), offs...)
	keyLinks := make([]int32, total)

	for i, l := range links {
		unknown := 0
		for _, k := range l.SharedKeys {
			keyLinks[cur[k]] = int32(i)
			cur[k]++
			if !c.known.Contains(int(k)) {
				unknown++
			}
		}
		edge := [2]int32{l.A, l.B}
		c.links = append(c.links, campLink{a: l.A, b: l.B, unknown: int32(unknown), jammed: c.jammed[edge]})
		c.linkIdx[edge] = int32(i)
	}
	c.keyOffs, c.keyLinks = offs, keyLinks
}

// learnKey adds k to the adversary's knowledge and re-classifies exactly the
// snapshot links holding it.
func (c *campaign) learnKey(k keys.ID) {
	if c.known.Contains(int(k)) {
		return
	}
	c.known.Add(int(k))
	for _, li := range c.keyLinks[c.keyOffs[k]:c.keyOffs[k+1]] {
		c.links[li].unknown--
	}
}

// capture marks the sensors captured and learns their rings.
func (c *campaign) capture(ids []int32) error {
	for _, id := range ids {
		ring, err := c.net.Ring(id)
		if err != nil {
			return fmt.Errorf("adversary: campaign capture: %w", err)
		}
		c.captured[id] = true
		c.order = append(c.order, id)
		ring.ForEachID(func(k keys.ID) bool {
			c.learnKey(k)
			return true
		})
	}
	return nil
}

// eligibleIDs returns the alive, not-yet-captured sensor IDs ascending — the
// capture sampling universe (CaptureRandom's alive list, minus sensors the
// campaign already holds).
func (c *campaign) eligibleIDs() []int32 {
	ids := c.net.AppendAliveIDs(make([]int32, 0, c.net.AliveCount()))
	w := 0
	for _, id := range ids {
		if !c.captured[id] {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

func (c *campaign) step(s Step) (StepResult, error) {
	keysBefore := c.known.Count()
	var capturedNow, failedNow []int32
	acted, torn := 0, 0
	switch s.Kind {
	case StepCapture:
		// Partial Fisher–Yates over the eligible list: on an untouched
		// network this is draw-for-draw identical to CaptureRandom.
		ids := c.eligibleIDs()
		acted = min(s.Count, len(ids))
		for i := 0; i < acted; i++ {
			j := i + c.r.Intn(len(ids)-i)
			ids[i], ids[j] = ids[j], ids[i]
		}
		capturedNow = append([]int32(nil), ids[:acted]...)
		if err := c.capture(capturedNow); err != nil {
			return StepResult{}, err
		}
	case StepCaptureTargeted:
		ranked, err := rankAliveByDegree(c.net)
		if err != nil {
			return StepResult{}, err
		}
		w := 0
		for _, id := range ranked {
			if !c.captured[id] {
				ranked[w] = id
				w++
			}
		}
		acted = min(s.Count, w)
		capturedNow = append([]int32(nil), ranked[:acted]...)
		if err := c.capture(capturedNow); err != nil {
			return StepResult{}, err
		}
	case StepFailRandom:
		acted = min(s.Count, c.net.AliveCount())
		failed, err := c.net.FailRandom(c.r, acted)
		if err != nil {
			return StepResult{}, fmt.Errorf("adversary: campaign fail: %w", err)
		}
		failedNow = failed
	case StepFailTargeted:
		ranked, err := rankAliveByDegree(c.net)
		if err != nil {
			return StepResult{}, err
		}
		acted = min(s.Count, len(ranked))
		failedNow = append([]int32(nil), ranked[:acted]...)
		if err := c.net.FailNodes(failedNow...); err != nil {
			return StepResult{}, fmt.Errorf("adversary: campaign fail-targeted: %w", err)
		}
	case StepJam:
		acted = min(s.Count, c.net.UsableLinkCount())
		chosen, err := c.net.FailRandomLinks(c.r, acted)
		if err != nil {
			return StepResult{}, fmt.Errorf("adversary: campaign jam: %w", err)
		}
		for _, edge := range chosen {
			c.jammed[edge] = true
			if idx, ok := c.linkIdx[edge]; ok {
				c.links[idx].jammed = true
			}
		}
	case StepRevoke:
		acted = min(s.Count, len(c.order)-c.revoked)
		if acted > 0 {
			ids := c.order[c.revoked : c.revoked+acted]
			// Revocation retires the revoked sensors; report only the ones
			// that were still alive going in.
			for _, id := range ids {
				if c.net.Alive(id) {
					failedNow = append(failedNow, id)
				}
			}
			t, err := c.net.RevokeNodeKeys(ids...)
			if err != nil {
				return StepResult{}, fmt.Errorf("adversary: campaign revoke: %w", err)
			}
			torn = t
			c.revoked += acted
			// Revocation replaced the secure topology; re-index against it.
			c.snapshot()
		}
	}
	res := c.account(s)
	res.Acted = acted
	res.Captured = capturedNow
	res.Failed = failedNow
	res.NewKeys = c.known.Count() - keysBefore
	res.TornLinks = torn
	return res, nil
}

// account classifies every snapshot link against the current campaign state
// and measures the uncompromised secure subgraph. The pass is O(links) with
// no shared-key walks: compromise is the standing unknown == 0 counter kept
// incrementally by learnKey.
func (c *campaign) account(s Step) StepResult {
	res := StepResult{
		Step:          s,
		KeysLearned:   c.known.Count(),
		Alive:         c.net.AliveCount(),
		CapturedTotal: len(c.order),
	}
	c.uf.Reset(c.net.Sensors())
	for i := range c.links {
		l := &c.links[i]
		if l.jammed || !c.net.Alive(l.a) || !c.net.Alive(l.b) {
			continue
		}
		if c.captured[l.a] || c.captured[l.b] {
			continue // trivially lost: an endpoint is in adversary hands
		}
		res.TotalLinks++
		if l.unknown == 0 {
			res.CompromisedLinks++
			continue
		}
		c.uf.Union(l.a, l.b)
	}
	for v := range c.eligible {
		c.eligible[v] = c.net.Alive(int32(v)) && !c.captured[v]
	}
	res.SecureGiant = c.uf.LargestAmong(c.eligible)
	if res.Alive > 0 {
		res.SecureFraction = float64(res.SecureGiant) / float64(res.Alive)
	}
	return res
}
