// Package combin provides the combinatorial and special-function kernel used
// by the analytical results of the paper: log-gamma based binomial
// coefficients, exact big-integer binomials for validation, the
// hypergeometric distribution (the law of |S_i ∩ S_j| for two random key
// rings, eq. (4) of the paper), and factorials.
//
// All floating-point computations are carried out in log space so that the
// huge binomials arising from realistic pool sizes (P ~ 10^4..10^6) never
// overflow.
package combin

import (
	"fmt"
	"math"
	"math/big"
)

// LogFactorial returns ln(n!) computed via the log-gamma function.
// It panics for negative n (programmer error).
func LogFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("combin: LogFactorial of negative %d", n))
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// Factorial returns n! as a float64, +Inf on overflow (n > 170).
func Factorial(n int) float64 {
	return math.Exp(LogFactorial(n))
}

// LogBinomial returns ln C(n, k). It returns -Inf when the coefficient is
// zero (k < 0 or k > n), matching the convention C(n,k) = 0 there.
// n must be non-negative.
func LogBinomial(n, k int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("combin: LogBinomial with negative n = %d", n))
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64 (possibly +Inf for huge values).
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// BigBinomial returns C(n, k) exactly. It is used by tests to validate the
// log-space fast path. Out-of-range k yields zero.
func BigBinomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// HypergeomLogPMF returns ln P[X = u] where X is the size of the overlap
// between two independent uniform K-subsets of a P-element universe:
//
//	P[X = u] = C(K,u)·C(P−K, K−u) / C(P,K)
//
// This is eq. (4) of the paper. It returns -Inf when the outcome u is
// impossible. It reports an error for invalid parameters (K < 0, P < K).
func HypergeomLogPMF(pool, ring, u int) (float64, error) {
	return HypergeomLogPMF2(pool, ring, ring, u)
}

// HypergeomLogPMF2 generalises HypergeomLogPMF to rings of unequal sizes —
// the overlap law of the heterogeneous key predistribution scheme, where a
// class-i and a class-j sensor draw K_i- and K_j-subsets of the same pool:
//
//	P[X = u] = C(K₁,u)·C(P−K₁, K₂−u) / C(P,K₂)
func HypergeomLogPMF2(pool, ring1, ring2, u int) (float64, error) {
	if ring1 < 0 || ring2 < 0 || pool < ring1 || pool < ring2 {
		return 0, fmt.Errorf("combin: invalid hypergeometric parameters pool=%d rings=%d,%d", pool, ring1, ring2)
	}
	if u < 0 || u > ring1 || u > ring2 || ring2-u > pool-ring1 {
		return math.Inf(-1), nil
	}
	return LogBinomial(ring1, u) +
		LogBinomial(pool-ring1, ring2-u) -
		LogBinomial(pool, ring2), nil
}

// HypergeomPMF returns P[X = u] for the overlap distribution of eq. (4).
func HypergeomPMF(pool, ring, u int) (float64, error) {
	lp, err := HypergeomLogPMF(pool, ring, u)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// HypergeomPMF2 returns P[X = u] for the unequal-ring overlap distribution.
func HypergeomPMF2(pool, ring1, ring2, u int) (float64, error) {
	lp, err := HypergeomLogPMF2(pool, ring1, ring2, u)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// HypergeomTail returns P[X ≥ q] — the probability that two independent
// uniform K-subsets of a P-element pool share at least q elements. This is
// exactly s(K, P, q) from eqs. (3)–(4) of the paper.
//
// Numerics: the mean overlap is K²/P. In the dense regime (mean ≥ q) the
// tail is computed as 1 − P[X < q], a sum of at most q accurately evaluated
// terms, which keeps the result monotone in K to near machine precision even
// when s ≈ 1. In the sparse regime (mean < q) — the one the paper's
// conditions enforce — the tail is summed directly from u = q upward, where
// the pmf decays super-geometrically, stopping once further terms cannot
// move the sum at double precision.
func HypergeomTail(pool, ring, q int) (float64, error) {
	return HypergeomTail2(pool, ring, ring, q)
}

// HypergeomTail2 generalises HypergeomTail to rings of unequal sizes: the
// probability that a K₁-subset and an independent K₂-subset of a P-element
// pool share at least q elements — s(K₁, K₂, P, q) of the heterogeneous
// scheme (Eletreby–Yağan). The same dense/sparse regime split as
// HypergeomTail keeps both ends accurate.
func HypergeomTail2(pool, ring1, ring2, q int) (float64, error) {
	if ring1 < 0 || ring2 < 0 || pool < ring1 || pool < ring2 {
		return 0, fmt.Errorf("combin: invalid hypergeometric parameters pool=%d rings=%d,%d", pool, ring1, ring2)
	}
	if q <= 0 {
		return 1, nil
	}
	maxOverlap := ring1
	if ring2 < maxOverlap {
		maxOverlap = ring2
	}
	if q > maxOverlap {
		// The overlap can never exceed the smaller ring.
		return 0, nil
	}
	lo := 0
	if min := ring1 + ring2 - pool; lo < min {
		lo = min // overlap cannot be smaller than K₁+K₂−P
	}
	if HypergeomMean2(pool, ring1, ring2) >= float64(q) {
		// Dense regime: complement of the short head sum.
		head := 0.0
		for u := lo; u < q; u++ {
			p, err := HypergeomPMF2(pool, ring1, ring2, u)
			if err != nil {
				return 0, err
			}
			head += p
		}
		s := 1 - head
		if s < 0 {
			s = 0
		}
		return s, nil
	}
	// Sparse regime: direct tail sum with early exit past the mode.
	sum := 0.0
	for u := q; u <= maxOverlap; u++ {
		p, err := HypergeomPMF2(pool, ring1, ring2, u)
		if err != nil {
			return 0, err
		}
		sum += p
		if p > 0 && p < sum*1e-18 {
			break
		}
	}
	if sum > 1 {
		sum = 1 // guard against accumulated rounding slightly above 1
	}
	return sum, nil
}

// HypergeomMean returns E[X] = K²/P for the overlap distribution.
func HypergeomMean(pool, ring int) float64 {
	return HypergeomMean2(pool, ring, ring)
}

// HypergeomMean2 returns E[X] = K₁·K₂/P for the unequal-ring overlap.
func HypergeomMean2(pool, ring1, ring2 int) float64 {
	if pool <= 0 {
		return 0
	}
	return float64(ring1) * float64(ring2) / float64(pool)
}

// LogChoose2 returns ln C(n,2) = ln(n(n−1)/2), −Inf for n < 2.
func LogChoose2(n int) float64 {
	if n < 2 {
		return math.Inf(-1)
	}
	return math.Log(float64(n)) + math.Log(float64(n-1)) - math.Ln2
}
