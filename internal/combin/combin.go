// Package combin provides the combinatorial and special-function kernel used
// by the analytical results of the paper: log-gamma based binomial
// coefficients, exact big-integer binomials for validation, the
// hypergeometric distribution (the law of |S_i ∩ S_j| for two random key
// rings, eq. (4) of the paper), and factorials.
//
// All floating-point computations are carried out in log space so that the
// huge binomials arising from realistic pool sizes (P ~ 10^4..10^6) never
// overflow.
package combin

import (
	"fmt"
	"math"
	"math/big"
)

// LogFactorial returns ln(n!) computed via the log-gamma function.
// It panics for negative n (programmer error).
func LogFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("combin: LogFactorial of negative %d", n))
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// Factorial returns n! as a float64, +Inf on overflow (n > 170).
func Factorial(n int) float64 {
	return math.Exp(LogFactorial(n))
}

// LogBinomial returns ln C(n, k). It returns -Inf when the coefficient is
// zero (k < 0 or k > n), matching the convention C(n,k) = 0 there.
// n must be non-negative.
func LogBinomial(n, k int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("combin: LogBinomial with negative n = %d", n))
	}
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64 (possibly +Inf for huge values).
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// BigBinomial returns C(n, k) exactly. It is used by tests to validate the
// log-space fast path. Out-of-range k yields zero.
func BigBinomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// HypergeomLogPMF returns ln P[X = u] where X is the size of the overlap
// between two independent uniform K-subsets of a P-element universe:
//
//	P[X = u] = C(K,u)·C(P−K, K−u) / C(P,K)
//
// This is eq. (4) of the paper. It returns -Inf when the outcome u is
// impossible. It reports an error for invalid parameters (K < 0, P < K).
func HypergeomLogPMF(pool, ring, u int) (float64, error) {
	if ring < 0 || pool < ring {
		return 0, fmt.Errorf("combin: invalid hypergeometric parameters pool=%d ring=%d", pool, ring)
	}
	if u < 0 || u > ring || ring-u > pool-ring {
		return math.Inf(-1), nil
	}
	return LogBinomial(ring, u) +
		LogBinomial(pool-ring, ring-u) -
		LogBinomial(pool, ring), nil
}

// HypergeomPMF returns P[X = u] for the overlap distribution of eq. (4).
func HypergeomPMF(pool, ring, u int) (float64, error) {
	lp, err := HypergeomLogPMF(pool, ring, u)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// HypergeomTail returns P[X ≥ q] — the probability that two independent
// uniform K-subsets of a P-element pool share at least q elements. This is
// exactly s(K, P, q) from eqs. (3)–(4) of the paper.
//
// Numerics: the mean overlap is K²/P. In the dense regime (mean ≥ q) the
// tail is computed as 1 − P[X < q], a sum of at most q accurately evaluated
// terms, which keeps the result monotone in K to near machine precision even
// when s ≈ 1. In the sparse regime (mean < q) — the one the paper's
// conditions enforce — the tail is summed directly from u = q upward, where
// the pmf decays super-geometrically, stopping once further terms cannot
// move the sum at double precision.
func HypergeomTail(pool, ring, q int) (float64, error) {
	if ring < 0 || pool < ring {
		return 0, fmt.Errorf("combin: invalid hypergeometric parameters pool=%d ring=%d", pool, ring)
	}
	if q <= 0 {
		return 1, nil
	}
	if q > ring {
		// The overlap of two K-subsets can never exceed K.
		return 0, nil
	}
	lo := 0
	if min := 2*ring - pool; lo < min {
		lo = min // overlap cannot be smaller than 2K−P
	}
	if HypergeomMean(pool, ring) >= float64(q) {
		// Dense regime: complement of the short head sum.
		head := 0.0
		for u := lo; u < q; u++ {
			p, err := HypergeomPMF(pool, ring, u)
			if err != nil {
				return 0, err
			}
			head += p
		}
		s := 1 - head
		if s < 0 {
			s = 0
		}
		return s, nil
	}
	// Sparse regime: direct tail sum with early exit past the mode.
	sum := 0.0
	for u := q; u <= ring; u++ {
		p, err := HypergeomPMF(pool, ring, u)
		if err != nil {
			return 0, err
		}
		sum += p
		if p > 0 && p < sum*1e-18 {
			break
		}
	}
	if sum > 1 {
		sum = 1 // guard against accumulated rounding slightly above 1
	}
	return sum, nil
}

// HypergeomMean returns E[X] = K²/P for the overlap distribution.
func HypergeomMean(pool, ring int) float64 {
	if pool <= 0 {
		return 0
	}
	return float64(ring) * float64(ring) / float64(pool)
}

// LogChoose2 returns ln C(n,2) = ln(n(n−1)/2), −Inf for n < 2.
func LogChoose2(n int) float64 {
	if n < 2 {
		return math.Inf(-1)
	}
	return math.Log(float64(n)) + math.Log(float64(n-1)) - math.Ln2
}
