package combin

import (
	"math"
	"testing"
)

// FuzzHypergeomTail drives the overlap-law tail through arbitrary
// parameters, checking the probability axioms and the tail/pmf consistency
// that the analytical layer depends on.
func FuzzHypergeomTail(f *testing.F) {
	f.Add(uint16(10000), uint16(50), uint8(2))
	f.Add(uint16(10), uint16(3), uint8(1))
	f.Add(uint16(100), uint16(100), uint8(5))
	f.Add(uint16(2), uint16(1), uint8(0))
	f.Fuzz(func(t *testing.T, poolRaw, ringRaw uint16, qRaw uint8) {
		pool := int(poolRaw)%5000 + 1
		ring := int(ringRaw) % (pool + 1)
		q := int(qRaw) % (ring + 2)
		tail, err := HypergeomTail(pool, ring, q)
		if err != nil {
			t.Fatalf("valid parameters rejected: pool=%d ring=%d q=%d: %v", pool, ring, q, err)
		}
		if tail < 0 || tail > 1 || math.IsNaN(tail) {
			t.Fatalf("tail out of range: %v (pool=%d ring=%d q=%d)", tail, pool, ring, q)
		}
		// Tail at q must equal tail at q+1 plus pmf at q.
		if q >= 0 && q <= ring {
			next, err := HypergeomTail(pool, ring, q+1)
			if err != nil {
				t.Fatal(err)
			}
			pmf, err := HypergeomPMF(pool, ring, q)
			if err != nil {
				t.Fatal(err)
			}
			if q > 0 {
				if diff := math.Abs(tail - (next + pmf)); diff > 1e-9 {
					t.Fatalf("tail recurrence broken by %v at pool=%d ring=%d q=%d", diff, pool, ring, q)
				}
			}
		}
	})
}

// FuzzLogBinomial checks Pascal's rule in log space over arbitrary inputs.
func FuzzLogBinomial(f *testing.F) {
	f.Add(uint16(10), uint16(4))
	f.Add(uint16(1000), uint16(999))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint16) {
		n := int(nRaw)%2000 + 1
		k := int(kRaw) % (n + 1)
		if k == 0 || k == n {
			return // Pascal needs interior cells
		}
		// C(n,k) = C(n−1,k−1) + C(n−1,k): compare in linear space via the
		// larger term to preserve precision.
		a := LogBinomial(n-1, k-1)
		b := LogBinomial(n-1, k)
		sum := math.Exp(a) + math.Exp(b)
		got := math.Exp(LogBinomial(n, k))
		if math.IsInf(got, 1) || math.IsInf(sum, 1) {
			return // beyond float range; covered by log-space tests
		}
		if math.Abs(got-sum) > 1e-9*sum {
			t.Fatalf("Pascal rule broken at n=%d k=%d: %v vs %v", n, k, got, sum)
		}
	})
}
