package combin

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := math.Exp(LogFactorial(n)); math.Abs(got-w) > 1e-9*w {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestFactorial(t *testing.T) {
	if got := Factorial(5); math.Abs(got-120) > 1e-9 {
		t.Errorf("Factorial(5) = %v", got)
	}
	if got := Factorial(171); !math.IsInf(got, 1) {
		t.Errorf("Factorial(171) = %v, want +Inf", got)
	}
}

func TestLogFactorialPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LogFactorial(-1) did not panic")
		}
	}()
	LogFactorial(-1)
}

func TestBinomialAgainstBig(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			exact := BigBinomial(n, k)
			exactF, _ := new(big.Float).SetInt(exact).Float64()
			got := Binomial(n, k)
			if math.Abs(got-exactF) > 1e-9*exactF+1e-9 {
				t.Fatalf("Binomial(%d,%d) = %v, want %v", n, k, got, exactF)
			}
		}
	}
}

func TestBinomialOutOfRange(t *testing.T) {
	if got := Binomial(5, -1); got != 0 {
		t.Errorf("Binomial(5,-1) = %v, want 0", got)
	}
	if got := Binomial(5, 6); got != 0 {
		t.Errorf("Binomial(5,6) = %v, want 0", got)
	}
	if got := BigBinomial(5, 6); got.Sign() != 0 {
		t.Errorf("BigBinomial(5,6) = %v, want 0", got)
	}
	if got := BigBinomial(-2, 1); got.Sign() != 0 {
		t.Errorf("BigBinomial(-2,1) = %v, want 0", got)
	}
}

func TestLogBinomialLarge(t *testing.T) {
	// C(10000, 50) computed exactly with big.Int, compared in log space.
	exact := BigBinomial(10000, 50)
	wantLog := bigLog(exact)
	got := LogBinomial(10000, 50)
	if math.Abs(got-wantLog) > 1e-8*math.Abs(wantLog) {
		t.Errorf("LogBinomial(10000,50) = %v, want %v", got, wantLog)
	}
}

// bigLog returns the natural log of a positive big.Int.
func bigLog(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	mant := new(big.Float)
	exp := f.MantExp(mant)
	m, _ := mant.Float64()
	return math.Log(m) + float64(exp)*math.Ln2
}

func TestHypergeomPMFInvalid(t *testing.T) {
	if _, err := HypergeomPMF(5, 6, 1); err == nil {
		t.Error("ring > pool: want error")
	}
	if _, err := HypergeomPMF(5, -1, 1); err == nil {
		t.Error("negative ring: want error")
	}
}

func TestHypergeomPMFImpossibleOutcomes(t *testing.T) {
	tests := []struct {
		name          string
		pool, ring, u int
	}{
		{name: "negative overlap", pool: 10, ring: 3, u: -1},
		{name: "overlap beyond ring", pool: 10, ring: 3, u: 4},
		{name: "overlap below forced min", pool: 4, ring: 3, u: 1}, // 2K−P = 2 forces u ≥ 2
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := HypergeomPMF(tt.pool, tt.ring, tt.u)
			if err != nil {
				t.Fatal(err)
			}
			if p != 0 {
				t.Errorf("PMF(%d,%d,%d) = %v, want 0", tt.pool, tt.ring, tt.u, p)
			}
		})
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	tests := []struct{ pool, ring int }{
		{pool: 10, ring: 3},
		{pool: 100, ring: 10},
		{pool: 10000, ring: 50},
		{pool: 7, ring: 7},
		{pool: 5, ring: 0},
		{pool: 9, ring: 6}, // 2K > P regime
	}
	for _, tt := range tests {
		sum := 0.0
		for u := 0; u <= tt.ring; u++ {
			p, err := HypergeomPMF(tt.pool, tt.ring, u)
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PMF over pool=%d ring=%d sums to %v", tt.pool, tt.ring, sum)
		}
	}
}

func TestHypergeomPMFExactSmall(t *testing.T) {
	// pool=6, ring=3: P[X=u] = C(3,u)C(3,3-u)/C(6,3), C(6,3)=20.
	want := []float64{1.0 / 20, 9.0 / 20, 9.0 / 20, 1.0 / 20}
	for u, w := range want {
		got, err := HypergeomPMF(6, 3, u)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("PMF(6,3,%d) = %v, want %v", u, got, w)
		}
	}
}

func TestHypergeomTailBasics(t *testing.T) {
	// q <= 0 is certain.
	for _, q := range []int{0, -3} {
		got, err := HypergeomTail(100, 10, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("Tail(q=%d) = %v, want 1", q, got)
		}
	}
	// q > ring is impossible.
	got, err := HypergeomTail(100, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Tail(q=11) = %v, want 0", got)
	}
	if _, err := HypergeomTail(5, 9, 1); err == nil {
		t.Error("ring > pool: want error")
	}
}

func TestHypergeomTailMatchesDirectSum(t *testing.T) {
	tests := []struct{ pool, ring, q int }{
		{pool: 10000, ring: 35, q: 2},
		{pool: 10000, ring: 60, q: 3},
		{pool: 10000, ring: 88, q: 2},
		{pool: 1000, ring: 40, q: 1},
		{pool: 50, ring: 10, q: 4},
		{pool: 9, ring: 6, q: 3},
	}
	for _, tt := range tests {
		want := 0.0
		for u := tt.q; u <= tt.ring; u++ {
			p, err := HypergeomPMF(tt.pool, tt.ring, u)
			if err != nil {
				t.Fatal(err)
			}
			want += p
		}
		got, err := HypergeomTail(tt.pool, tt.ring, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12+1e-9*want {
			t.Errorf("Tail(%d,%d,%d) = %v, want %v", tt.pool, tt.ring, tt.q, got, want)
		}
	}
}

func TestHypergeomTailForcedOverlap(t *testing.T) {
	// pool=4, ring=3: overlap is at least 2, so P[X ≥ 2] = 1.
	got, err := HypergeomTail(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Tail(4,3,2) = %v, want 1", got)
	}
}

func TestHypergeomTailAsymptotic(t *testing.T) {
	// Lemma 2 of the paper: s(K,P,q) ~ (K²/P)^q / q! when K=ω(1), K²/P=o(1).
	const pool = 1 << 22
	for _, tt := range []struct {
		ring, q int
	}{
		{ring: 200, q: 1},
		{ring: 200, q: 2},
		{ring: 200, q: 3},
	} {
		got, err := HypergeomTail(pool, tt.ring, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		approx := math.Pow(float64(tt.ring)*float64(tt.ring)/pool, float64(tt.q)) / Factorial(tt.q)
		if math.Abs(got-approx) > 0.05*approx {
			t.Errorf("Tail(P=%d,K=%d,q=%d) = %v, asymptotic %v (should be within 5%%)",
				pool, tt.ring, tt.q, got, approx)
		}
	}
}

func TestHypergeomMean(t *testing.T) {
	if got := HypergeomMean(10000, 50); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("HypergeomMean = %v, want 0.25", got)
	}
	if got := HypergeomMean(0, 5); got != 0 {
		t.Errorf("HypergeomMean zero pool = %v", got)
	}
}

func TestLogChoose2(t *testing.T) {
	if got := LogChoose2(1000); math.Abs(got-math.Log(499500)) > 1e-12 {
		t.Errorf("LogChoose2(1000) = %v", got)
	}
	if got := LogChoose2(1); !math.IsInf(got, -1) {
		t.Errorf("LogChoose2(1) = %v, want -Inf", got)
	}
}

func TestQuickTailMonotoneInQ(t *testing.T) {
	// P[X ≥ q] is non-increasing in q and always within [0,1].
	f := func(poolRaw, ringRaw uint16) bool {
		pool := 2 + int(poolRaw)%2000
		ring := int(ringRaw) % (pool + 1)
		prev := 1.0
		for q := 0; q <= ring+1; q++ {
			got, err := HypergeomTail(pool, ring, q)
			if err != nil {
				return false
			}
			if got < 0 || got > 1 || got > prev+1e-12 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPMFAgainstBigExact(t *testing.T) {
	// Validate the log-space pmf against exact rational arithmetic.
	f := func(poolRaw, ringRaw, uRaw uint8) bool {
		pool := 1 + int(poolRaw)%200
		ring := int(ringRaw) % (pool + 1)
		u := int(uRaw) % (ring + 1)
		got, err := HypergeomPMF(pool, ring, u)
		if err != nil {
			return false
		}
		num := new(big.Int).Mul(BigBinomial(ring, u), BigBinomial(pool-ring, ring-u))
		den := BigBinomial(pool, ring)
		want, _ := new(big.Rat).SetFrac(num, den).Float64()
		return math.Abs(got-want) <= 1e-9*want+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHypergeomTailPaperScale(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := HypergeomTail(10000, 58, 2); err != nil {
			b.Fatal(err)
		}
	}
}
