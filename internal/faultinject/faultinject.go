// Package faultinject is a deterministic fault-injection harness for the
// sweep runtime: it wraps a sweep's build closures so that panics, transient
// errors, delays and mid-grid cancellation strike at configurable rates —
// while leaving the experiment's OWN randomness untouched, so a faulted,
// retried, resumed sweep still produces results bit-identical to a clean run.
//
// Determinism comes from giving the injector its own rng sub-stream
// hierarchy, parallel to the experiment's: fault decisions for one trial are
// drawn from a stream derived from (injector seed, point parameters, attempt
// number, trial index), never from the experiment's generator and never from
// wall-clock or scheduling. Faults are decided BEFORE the wrapped trial runs,
// so an attempt that survives its fault draws executes the user's trial on
// exactly the generator state a clean run would have used. Each retry of a
// point bumps the point's attempt counter, so retries redraw their faults —
// a point that panics on attempt 0 can complete cleanly on attempt 1, which
// is what makes the supervisor's bounded retry converge under injection.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// ErrInjected is the root cause of every error the harness injects. Injected
// errors are additionally marked montecarlo.ErrTransient, so the sweep
// supervisor's default retry policy retries them.
var ErrInjected = errors.New("faultinject: injected fault")

// IsInjected reports whether err was produced by the harness: an injected
// transient error (wraps ErrInjected) or an injected panic (a
// montecarlo.PanicError whose value carries the harness marker). Tests and
// harness drivers use it as the sweep's RetryIf policy — injected build
// panics are not transient-marked (panic values do not wrap errors), so the
// default policy alone would not retry them.
func IsInjected(err error) bool {
	if errors.Is(err, ErrInjected) {
		return true
	}
	var pe *montecarlo.PanicError
	if errors.As(err, &pe) {
		if s, ok := pe.Value.(string); ok {
			return strings.HasPrefix(s, "faultinject:")
		}
	}
	return false
}

// Config sets the fault mix. All probabilities are per-draw (per build call
// or per trial); zero disables that fault class.
type Config struct {
	// Seed roots the injector's private rng stream hierarchy. Two injectors
	// with the same Seed and Config fault the same (point, attempt, trial)
	// coordinates, regardless of scheduling.
	Seed uint64

	// BuildPanicProb is the probability that one build call panics.
	BuildPanicProb float64
	// BuildErrProb is the probability that one build call returns an
	// injected transient error.
	BuildErrProb float64

	// TrialPanicProb is the probability that one trial panics before the
	// user's trial function runs.
	TrialPanicProb float64
	// TrialErrProb is the probability that one trial returns an injected
	// transient error.
	TrialErrProb float64
	// TrialDelayProb is the probability that one trial sleeps Delay before
	// running — the ingredient for exercising per-point timeouts.
	TrialDelayProb float64
	// Delay is the sleep injected on a delay fault.
	Delay time.Duration

	// CancelAfter, when positive, calls Cancel once after that many wrapped
	// trials have completed across the whole run — a deterministic-ish way
	// to kill a sweep mid-grid. (The trial COUNT at cancellation is exact;
	// which points were in flight depends on scheduling, which is fine:
	// resume merges whatever completed.)
	CancelAfter int64
	// Cancel is the function CancelAfter invokes, typically the sweep
	// context's CancelFunc.
	Cancel context.CancelFunc
}

// Counts reports how many faults of each class actually fired.
type Counts struct {
	BuildPanics int64
	BuildErrs   int64
	TrialPanics int64
	TrialErrs   int64
	Delays      int64
	Cancelled   bool
}

// Injector wraps sweep build closures with deterministic fault injection.
// One Injector serves one sweep run; it is safe for use from every shard and
// trial worker concurrently.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[pointID]uint64

	trialsDone  atomic.Int64
	cancelOnce  sync.Once
	cancelled   atomic.Bool
	buildPanics atomic.Int64
	buildErrs   atomic.Int64
	trialPanics atomic.Int64
	trialErrs   atomic.Int64
	delays      atomic.Int64
}

// pointID mirrors the parameter identity experiment.SweepConfig.PointSeed
// seeds from: the injector's attempt counters and fault streams key on what
// the point IS, not where the grid put it.
type pointID struct {
	k, q int
	p, x uint64
}

// New returns an Injector for one sweep run.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, attempts: make(map[pointID]uint64)}
}

// Counts snapshots the faults fired so far.
func (in *Injector) Counts() Counts {
	return Counts{
		BuildPanics: in.buildPanics.Load(),
		BuildErrs:   in.buildErrs.Load(),
		TrialPanics: in.trialPanics.Load(),
		TrialErrs:   in.trialErrs.Load(),
		Delays:      in.delays.Load(),
		Cancelled:   in.cancelled.Load(),
	}
}

// attemptSeed derives the fault stream root for the next attempt of pt,
// bumping the point's attempt counter: attempt n of a point always draws the
// same faults, and retries draw fresh ones.
func (in *Injector) attemptSeed(pt experiment.GridPoint) uint64 {
	id := pointID{k: pt.K, q: pt.Q, p: math.Float64bits(pt.P), x: math.Float64bits(pt.X)}
	in.mu.Lock()
	attempt := in.attempts[id]
	in.attempts[id] = attempt + 1
	in.mu.Unlock()
	s := rng.StreamSeed(in.cfg.Seed, uint64(int64(pt.K)))
	s = rng.StreamSeed(s, uint64(int64(pt.Q)))
	s = rng.StreamSeed(s, math.Float64bits(pt.P))
	s = rng.StreamSeed(s, math.Float64bits(pt.X))
	return rng.StreamSeed(s, attempt)
}

// buildFault draws this attempt's build-level fault, returning a non-nil
// error (or panicking) when one fires. Stream 0 of the attempt seed is the
// build draw; streams 1+trial are the per-trial draws.
func (in *Injector) buildFault(pt experiment.GridPoint, seed uint64) error {
	r := rng.NewStream(seed, 0)
	if r.Bernoulli(in.cfg.BuildPanicProb) {
		in.buildPanics.Add(1)
		panic(fmt.Sprintf("faultinject: injected build panic at point %v", pt))
	}
	if r.Bernoulli(in.cfg.BuildErrProb) {
		in.buildErrs.Add(1)
		return montecarlo.Transient(fmt.Errorf("build at point %v: %w", pt, ErrInjected))
	}
	return nil
}

// trialFault draws one trial's faults: panic, error, or delay — decided from
// the injector's private stream before the user's trial function runs. The
// returned error (if any) is transient-marked.
func (in *Injector) trialFault(pt experiment.GridPoint, seed uint64, trial int) error {
	var r rng.Rand
	r.ReseedStream(seed, 1+uint64(trial))
	if r.Bernoulli(in.cfg.TrialPanicProb) {
		in.trialPanics.Add(1)
		panic(fmt.Sprintf("faultinject: injected trial panic at point %v trial %d", pt, trial))
	}
	if r.Bernoulli(in.cfg.TrialErrProb) {
		in.trialErrs.Add(1)
		return montecarlo.Transient(fmt.Errorf("trial %d at point %v: %w", trial, pt, ErrInjected))
	}
	if r.Bernoulli(in.cfg.TrialDelayProb) {
		in.delays.Add(1)
		time.Sleep(in.cfg.Delay)
	}
	return nil
}

// trialDone counts a completed wrapped trial and fires the mid-grid
// cancellation once the configured budget is spent.
func (in *Injector) trialDone() {
	done := in.trialsDone.Add(1)
	if in.cfg.CancelAfter > 0 && done >= in.cfg.CancelAfter && in.cfg.Cancel != nil {
		in.cancelOnce.Do(func() {
			in.cancelled.Store(true)
			in.cfg.Cancel()
		})
	}
}

// ProportionBuild wraps a SweepProportion build closure with fault
// injection.
func (in *Injector) ProportionBuild(build func(pt experiment.GridPoint) (montecarlo.Trial, error)) func(pt experiment.GridPoint) (montecarlo.Trial, error) {
	return func(pt experiment.GridPoint) (montecarlo.Trial, error) {
		seed := in.attemptSeed(pt)
		if err := in.buildFault(pt, seed); err != nil {
			return nil, err
		}
		fn, err := build(pt)
		if err != nil {
			return nil, err
		}
		return func(trial int, r *rng.Rand) (bool, error) {
			if err := in.trialFault(pt, seed, trial); err != nil {
				return false, err
			}
			ok, err := fn(trial, r)
			if err == nil {
				in.trialDone()
			}
			return ok, err
		}, nil
	}
}

// SampleBuild wraps a SweepMean build closure with fault injection.
func (in *Injector) SampleBuild(build func(pt experiment.GridPoint) (montecarlo.Sample, error)) func(pt experiment.GridPoint) (montecarlo.Sample, error) {
	return func(pt experiment.GridPoint) (montecarlo.Sample, error) {
		seed := in.attemptSeed(pt)
		if err := in.buildFault(pt, seed); err != nil {
			return nil, err
		}
		fn, err := build(pt)
		if err != nil {
			return nil, err
		}
		return func(trial int, r *rng.Rand) (float64, error) {
			if err := in.trialFault(pt, seed, trial); err != nil {
				return 0, err
			}
			v, err := fn(trial, r)
			if err == nil {
				in.trialDone()
			}
			return v, err
		}, nil
	}
}

// SampleVecBuild wraps a SweepMeanVec build closure with fault injection.
func (in *Injector) SampleVecBuild(build func(pt experiment.GridPoint) (montecarlo.SampleVec, error)) func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
	return func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
		seed := in.attemptSeed(pt)
		if err := in.buildFault(pt, seed); err != nil {
			return nil, err
		}
		fn, err := build(pt)
		if err != nil {
			return nil, err
		}
		return func(trial int, r *rng.Rand) ([]float64, error) {
			if err := in.trialFault(pt, seed, trial); err != nil {
				return nil, err
			}
			v, err := fn(trial, r)
			if err == nil {
				in.trialDone()
			}
			return v, err
		}, nil
	}
}
