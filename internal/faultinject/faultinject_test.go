package faultinject

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

// matrixGrid is the small grid every matrix cell sweeps.
func matrixGrid() experiment.Grid {
	return experiment.Grid{Ks: []int{20, 30}, Qs: []int{1}, Ps: []float64{0.3, 0.7}}
}

// matrixConfig is the base sweep configuration: fixed seed, sharded points,
// retries generous enough for the injection rates below to converge.
func matrixConfig() experiment.SweepConfig {
	return experiment.SweepConfig{
		Trials:       40,
		Workers:      2,
		PointWorkers: 3,
		Seed:         42,
		PointRetries: 10,
		RetryBackoff: time.Millisecond,
		RetryIf: func(err error) bool {
			return IsInjected(err) || errors.Is(err, context.DeadlineExceeded)
		},
	}
}

// proportionBuild is a deterministic toy sweep: the trial's success
// probability is the point's P, drawn from the trial's own stream.
func proportionBuild(pt experiment.GridPoint) (montecarlo.Trial, error) {
	p := pt.P
	return func(trial int, r *rng.Rand) (bool, error) {
		return r.Bernoulli(p), nil
	}, nil
}

func sampleBuild(pt experiment.GridPoint) (montecarlo.Sample, error) {
	k := float64(pt.K)
	return func(trial int, r *rng.Rand) (float64, error) {
		return r.Float64() * k, nil
	}, nil
}

func sampleVecBuild(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
	k := float64(pt.K)
	return func(trial int, r *rng.Rand) ([]float64, error) {
		u := r.Float64()
		return []float64{u * k, u * u}, nil
	}, nil
}

// runVariant runs one sweep variant, optionally through an injector, and
// returns its results as a comparable value.
func runVariant(t *testing.T, ctx context.Context, variant string, cfg experiment.SweepConfig, in *Injector) (any, error) {
	t.Helper()
	grid := matrixGrid()
	switch variant {
	case "proportion":
		build := proportionBuild
		if in != nil {
			build = in.ProportionBuild(build)
		}
		return asAny(experiment.SweepProportion(ctx, grid, cfg, build))
	case "mean":
		build := sampleBuild
		if in != nil {
			build = in.SampleBuild(build)
		}
		return asAny(experiment.SweepMean(ctx, grid, cfg, build))
	case "meanvec":
		build := sampleVecBuild
		if in != nil {
			build = in.SampleVecBuild(build)
		}
		return asAny(experiment.SweepMeanVec(ctx, grid, cfg, 2, build))
	default:
		t.Fatalf("unknown variant %q", variant)
		return nil, nil
	}
}

func asAny[R any](rs []R, err error) (any, error) { return rs, err }

// fired selects the Counts field a fault class must have incremented.
type fired func(c Counts) int64

// TestFaultMatrix runs every fault class against every sweep variant at a
// fixed seed: the faulted, retried sweep must produce results bit-identical
// to the clean sweep, and the class's faults must actually have fired.
func TestFaultMatrix(t *testing.T) {
	classes := []struct {
		name  string
		inj   Config
		sweep func(cfg *experiment.SweepConfig)
		fired fired
	}{
		{
			name:  "build-panic",
			inj:   Config{Seed: 7, BuildPanicProb: 0.5},
			fired: func(c Counts) int64 { return c.BuildPanics },
		},
		{
			name:  "build-error",
			inj:   Config{Seed: 7, BuildErrProb: 0.5},
			fired: func(c Counts) int64 { return c.BuildErrs },
		},
		{
			name:  "trial-panic",
			inj:   Config{Seed: 7, TrialPanicProb: 0.015},
			fired: func(c Counts) int64 { return c.TrialPanics },
		},
		{
			name:  "trial-error",
			inj:   Config{Seed: 7, TrialErrProb: 0.015},
			fired: func(c Counts) int64 { return c.TrialErrs },
		},
		{
			name: "trial-delay-timeout",
			inj:  Config{Seed: 7, TrialDelayProb: 0.01, Delay: 5 * time.Second},
			sweep: func(cfg *experiment.SweepConfig) {
				cfg.PointTimeout = 500 * time.Millisecond
			},
			fired: func(c Counts) int64 { return c.Delays },
		},
	}
	for _, variant := range []string{"proportion", "mean", "meanvec"} {
		clean, err := runVariant(t, context.Background(), variant, matrixConfig(), nil)
		if err != nil {
			t.Fatalf("%s: clean sweep failed: %v", variant, err)
		}
		for _, class := range classes {
			t.Run(variant+"/"+class.name, func(t *testing.T) {
				t.Parallel()
				cfg := matrixConfig()
				if class.sweep != nil {
					class.sweep(&cfg)
				}
				in := New(class.inj)
				got, err := runVariant(t, context.Background(), variant, cfg, in)
				if err != nil {
					t.Fatalf("faulted sweep failed: %v\ncounts: %+v", err, in.Counts())
				}
				if n := class.fired(in.Counts()); n == 0 {
					t.Fatalf("fault class never fired; counts: %+v", in.Counts())
				}
				if !reflect.DeepEqual(got, clean) {
					t.Fatalf("faulted sweep results differ from clean run\nclean: %+v\nfaulted: %+v\ncounts: %+v",
						clean, got, in.Counts())
				}
			})
		}
	}
}

// TestCancelMidGridAndResume exercises the cancellation fault class end to
// end: the injector kills the sweep after a trial budget, the checkpoint
// journal captures the completed points, and a clean resumed run merges to
// results bit-identical to an uninterrupted sweep.
func TestCancelMidGridAndResume(t *testing.T) {
	cfg := matrixConfig()
	clean, err := runVariant(t, context.Background(), "proportion", cfg, nil)
	if err != nil {
		t.Fatalf("clean sweep failed: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var journal bytes.Buffer
	killCfg := cfg
	killCfg.Checkpoint = &journal
	in := New(Config{Seed: 9, CancelAfter: 55, Cancel: cancel})
	if _, err := runVariant(t, ctx, "proportion", killCfg, in); err == nil {
		t.Fatal("cancelled sweep unexpectedly succeeded")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep failed with %v, want context.Canceled", err)
	}
	if !in.Counts().Cancelled {
		t.Fatalf("injector never cancelled; counts: %+v", in.Counts())
	}

	resumeCfg := cfg
	resumeCfg.Resume = bytes.NewReader(journal.Bytes())
	got, err := runVariant(t, context.Background(), "proportion", resumeCfg, nil)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatalf("resumed sweep differs from clean run\nclean: %+v\nresumed: %+v", clean, got)
	}
}

// TestInjectorDeterminism: two injectors with the same seed fault the same
// coordinates, so two faulted runs of the same sweep agree fault count for
// fault count.
func TestInjectorDeterminism(t *testing.T) {
	run := func() Counts {
		cfg := matrixConfig()
		cfg.PointWorkers = 0 // sequential: attempt order is deterministic
		in := New(Config{Seed: 3, BuildErrProb: 0.5, TrialErrProb: 0.01})
		if _, err := runVariant(t, context.Background(), "proportion", cfg, in); err != nil {
			t.Fatalf("faulted sweep failed: %v", err)
		}
		return in.Counts()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed injectors diverged: %+v vs %+v", a, b)
	}
}

// TestIsInjected pins the retry-policy helper's contract.
func TestIsInjected(t *testing.T) {
	if !IsInjected(montecarlo.Transient(ErrInjected)) {
		t.Error("transient-wrapped ErrInjected not recognized")
	}
	if !IsInjected(montecarlo.NewPanicError("faultinject: injected build panic at point {K=1 q=1 p=0 x=0 #0}")) {
		t.Error("injected panic not recognized")
	}
	if IsInjected(montecarlo.NewPanicError("index out of range")) {
		t.Error("user panic misclassified as injected")
	}
	if IsInjected(errors.New("plain failure")) {
		t.Error("plain error misclassified as injected")
	}
	if IsInjected(nil) {
		t.Error("nil misclassified as injected")
	}
}
